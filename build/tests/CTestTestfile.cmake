# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;8;add_pse_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(catalog_test "/root/repo/build/tests/catalog_test")
set_tests_properties(catalog_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;15;add_pse_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(storage_test "/root/repo/build/tests/storage_test")
set_tests_properties(storage_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;22;add_pse_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(engine_test "/root/repo/build/tests/engine_test")
set_tests_properties(engine_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;34;add_pse_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sql_test "/root/repo/build/tests/sql_test")
set_tests_properties(sql_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;44;add_pse_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ga_test "/root/repo/build/tests/ga_test")
set_tests_properties(ga_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;52;add_pse_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;57;add_pse_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tpcw_test "/root/repo/build/tests/tpcw_test")
set_tests_properties(tpcw_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;75;add_pse_test;/root/repo/tests/CMakeLists.txt;0;")
