
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/executor_simulation_test.cc" "tests/CMakeFiles/core_test.dir/core/executor_simulation_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/executor_simulation_test.cc.o.d"
  "/root/repo/tests/core/logical_query_test.cc" "tests/CMakeFiles/core_test.dir/core/logical_query_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/logical_query_test.cc.o.d"
  "/root/repo/tests/core/logical_schema_test.cc" "tests/CMakeFiles/core_test.dir/core/logical_schema_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/logical_schema_test.cc.o.d"
  "/root/repo/tests/core/mapping_test.cc" "tests/CMakeFiles/core_test.dir/core/mapping_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/mapping_test.cc.o.d"
  "/root/repo/tests/core/migration_io_test.cc" "tests/CMakeFiles/core_test.dir/core/migration_io_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/migration_io_test.cc.o.d"
  "/root/repo/tests/core/operators_test.cc" "tests/CMakeFiles/core_test.dir/core/operators_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/operators_test.cc.o.d"
  "/root/repo/tests/core/physical_schema_test.cc" "tests/CMakeFiles/core_test.dir/core/physical_schema_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/physical_schema_test.cc.o.d"
  "/root/repo/tests/core/planner_test.cc" "tests/CMakeFiles/core_test.dir/core/planner_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/planner_test.cc.o.d"
  "/root/repo/tests/core/rewriter_test.cc" "tests/CMakeFiles/core_test.dir/core/rewriter_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/rewriter_test.cc.o.d"
  "/root/repo/tests/core/schema_advisor_test.cc" "tests/CMakeFiles/core_test.dir/core/schema_advisor_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/schema_advisor_test.cc.o.d"
  "/root/repo/tests/core/virtual_catalog_test.cc" "tests/CMakeFiles/core_test.dir/core/virtual_catalog_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/virtual_catalog_test.cc.o.d"
  "/root/repo/tests/core/workload_collector_test.cc" "tests/CMakeFiles/core_test.dir/core/workload_collector_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/workload_collector_test.cc.o.d"
  "/root/repo/tests/core/workload_test.cc" "tests/CMakeFiles/core_test.dir/core/workload_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tpcw/CMakeFiles/pse_tpcw.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pse_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/pse_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/pse_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/ga/CMakeFiles/pse_ga.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/pse_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/pse_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pse_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
