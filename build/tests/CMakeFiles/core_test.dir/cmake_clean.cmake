file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/executor_simulation_test.cc.o"
  "CMakeFiles/core_test.dir/core/executor_simulation_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/logical_query_test.cc.o"
  "CMakeFiles/core_test.dir/core/logical_query_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/logical_schema_test.cc.o"
  "CMakeFiles/core_test.dir/core/logical_schema_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/mapping_test.cc.o"
  "CMakeFiles/core_test.dir/core/mapping_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/migration_io_test.cc.o"
  "CMakeFiles/core_test.dir/core/migration_io_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/operators_test.cc.o"
  "CMakeFiles/core_test.dir/core/operators_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/physical_schema_test.cc.o"
  "CMakeFiles/core_test.dir/core/physical_schema_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/planner_test.cc.o"
  "CMakeFiles/core_test.dir/core/planner_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/rewriter_test.cc.o"
  "CMakeFiles/core_test.dir/core/rewriter_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/schema_advisor_test.cc.o"
  "CMakeFiles/core_test.dir/core/schema_advisor_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/virtual_catalog_test.cc.o"
  "CMakeFiles/core_test.dir/core/virtual_catalog_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/workload_collector_test.cc.o"
  "CMakeFiles/core_test.dir/core/workload_collector_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/workload_test.cc.o"
  "CMakeFiles/core_test.dir/core/workload_test.cc.o.d"
  "core_test"
  "core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
