
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/storage/bplus_tree_test.cc" "tests/CMakeFiles/storage_test.dir/storage/bplus_tree_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/bplus_tree_test.cc.o.d"
  "/root/repo/tests/storage/buffer_pool_test.cc" "tests/CMakeFiles/storage_test.dir/storage/buffer_pool_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/buffer_pool_test.cc.o.d"
  "/root/repo/tests/storage/clock_policy_test.cc" "tests/CMakeFiles/storage_test.dir/storage/clock_policy_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/clock_policy_test.cc.o.d"
  "/root/repo/tests/storage/database_test.cc" "tests/CMakeFiles/storage_test.dir/storage/database_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/database_test.cc.o.d"
  "/root/repo/tests/storage/disk_manager_test.cc" "tests/CMakeFiles/storage_test.dir/storage/disk_manager_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/disk_manager_test.cc.o.d"
  "/root/repo/tests/storage/failure_injection_test.cc" "tests/CMakeFiles/storage_test.dir/storage/failure_injection_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/failure_injection_test.cc.o.d"
  "/root/repo/tests/storage/persistence_test.cc" "tests/CMakeFiles/storage_test.dir/storage/persistence_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/persistence_test.cc.o.d"
  "/root/repo/tests/storage/table_heap_test.cc" "tests/CMakeFiles/storage_test.dir/storage/table_heap_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/table_heap_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/pse_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/pse_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pse_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
