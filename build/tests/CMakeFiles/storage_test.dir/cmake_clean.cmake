file(REMOVE_RECURSE
  "CMakeFiles/storage_test.dir/storage/bplus_tree_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/bplus_tree_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/buffer_pool_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/buffer_pool_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/clock_policy_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/clock_policy_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/database_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/database_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/disk_manager_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/disk_manager_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/failure_injection_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/failure_injection_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/persistence_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/persistence_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/table_heap_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/table_heap_test.cc.o.d"
  "storage_test"
  "storage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
