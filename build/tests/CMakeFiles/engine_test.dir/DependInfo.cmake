
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/engine/cost_model_test.cc" "tests/CMakeFiles/engine_test.dir/engine/cost_model_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/cost_model_test.cc.o.d"
  "/root/repo/tests/engine/differential_test.cc" "tests/CMakeFiles/engine_test.dir/engine/differential_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/differential_test.cc.o.d"
  "/root/repo/tests/engine/expr_test.cc" "tests/CMakeFiles/engine_test.dir/engine/expr_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/expr_test.cc.o.d"
  "/root/repo/tests/engine/inlj_test.cc" "tests/CMakeFiles/engine_test.dir/engine/inlj_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/inlj_test.cc.o.d"
  "/root/repo/tests/engine/planner_executor_test.cc" "tests/CMakeFiles/engine_test.dir/engine/planner_executor_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/planner_executor_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/pse_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/pse_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/pse_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pse_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
