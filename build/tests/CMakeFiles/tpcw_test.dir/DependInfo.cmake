
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tpcw/tpcw_integration_test.cc" "tests/CMakeFiles/tpcw_test.dir/tpcw/tpcw_integration_test.cc.o" "gcc" "tests/CMakeFiles/tpcw_test.dir/tpcw/tpcw_integration_test.cc.o.d"
  "/root/repo/tests/tpcw/tpcw_test.cc" "tests/CMakeFiles/tpcw_test.dir/tpcw/tpcw_test.cc.o" "gcc" "tests/CMakeFiles/tpcw_test.dir/tpcw/tpcw_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tpcw/CMakeFiles/pse_tpcw.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pse_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/pse_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/pse_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/ga/CMakeFiles/pse_ga.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/pse_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/pse_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pse_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
