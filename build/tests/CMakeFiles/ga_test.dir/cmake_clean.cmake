file(REMOVE_RECURSE
  "CMakeFiles/ga_test.dir/ga/genetic_test.cc.o"
  "CMakeFiles/ga_test.dir/ga/genetic_test.cc.o.d"
  "ga_test"
  "ga_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ga_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
