# Empty dependencies file for bench_cost_estimator.
# This may be replaced when dependencies are built.
