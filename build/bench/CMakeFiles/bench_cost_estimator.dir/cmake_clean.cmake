file(REMOVE_RECURSE
  "CMakeFiles/bench_cost_estimator.dir/bench_cost_estimator.cc.o"
  "CMakeFiles/bench_cost_estimator.dir/bench_cost_estimator.cc.o.d"
  "bench_cost_estimator"
  "bench_cost_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cost_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
