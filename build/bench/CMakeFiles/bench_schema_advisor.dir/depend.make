# Empty dependencies file for bench_schema_advisor.
# This may be replaced when dependencies are built.
