file(REMOVE_RECURSE
  "CMakeFiles/bench_schema_advisor.dir/bench_schema_advisor.cc.o"
  "CMakeFiles/bench_schema_advisor.dir/bench_schema_advisor.cc.o.d"
  "bench_schema_advisor"
  "bench_schema_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_schema_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
