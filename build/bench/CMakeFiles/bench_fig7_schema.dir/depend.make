# Empty dependencies file for bench_fig7_schema.
# This may be replaced when dependencies are built.
