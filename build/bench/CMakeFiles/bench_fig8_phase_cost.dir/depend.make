# Empty dependencies file for bench_fig8_phase_cost.
# This may be replaced when dependencies are built.
