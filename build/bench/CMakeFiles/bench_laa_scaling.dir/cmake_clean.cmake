file(REMOVE_RECURSE
  "CMakeFiles/bench_laa_scaling.dir/bench_laa_scaling.cc.o"
  "CMakeFiles/bench_laa_scaling.dir/bench_laa_scaling.cc.o.d"
  "bench_laa_scaling"
  "bench_laa_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_laa_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
