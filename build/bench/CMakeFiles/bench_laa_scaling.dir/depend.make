# Empty dependencies file for bench_laa_scaling.
# This may be replaced when dependencies are built.
