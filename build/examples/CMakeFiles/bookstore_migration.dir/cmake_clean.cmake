file(REMOVE_RECURSE
  "CMakeFiles/bookstore_migration.dir/bookstore_migration.cpp.o"
  "CMakeFiles/bookstore_migration.dir/bookstore_migration.cpp.o.d"
  "bookstore_migration"
  "bookstore_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bookstore_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
