# Empty dependencies file for bookstore_migration.
# This may be replaced when dependencies are built.
