# Empty compiler generated dependencies file for workload_planner.
# This may be replaced when dependencies are built.
