file(REMOVE_RECURSE
  "CMakeFiles/workload_planner.dir/workload_planner.cpp.o"
  "CMakeFiles/workload_planner.dir/workload_planner.cpp.o.d"
  "workload_planner"
  "workload_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
