file(REMOVE_RECURSE
  "CMakeFiles/pse_tpcw.dir/datagen.cc.o"
  "CMakeFiles/pse_tpcw.dir/datagen.cc.o.d"
  "CMakeFiles/pse_tpcw.dir/queries.cc.o"
  "CMakeFiles/pse_tpcw.dir/queries.cc.o.d"
  "CMakeFiles/pse_tpcw.dir/schema.cc.o"
  "CMakeFiles/pse_tpcw.dir/schema.cc.o.d"
  "CMakeFiles/pse_tpcw.dir/workloads.cc.o"
  "CMakeFiles/pse_tpcw.dir/workloads.cc.o.d"
  "libpse_tpcw.a"
  "libpse_tpcw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pse_tpcw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
