
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tpcw/datagen.cc" "src/tpcw/CMakeFiles/pse_tpcw.dir/datagen.cc.o" "gcc" "src/tpcw/CMakeFiles/pse_tpcw.dir/datagen.cc.o.d"
  "/root/repo/src/tpcw/queries.cc" "src/tpcw/CMakeFiles/pse_tpcw.dir/queries.cc.o" "gcc" "src/tpcw/CMakeFiles/pse_tpcw.dir/queries.cc.o.d"
  "/root/repo/src/tpcw/schema.cc" "src/tpcw/CMakeFiles/pse_tpcw.dir/schema.cc.o" "gcc" "src/tpcw/CMakeFiles/pse_tpcw.dir/schema.cc.o.d"
  "/root/repo/src/tpcw/workloads.cc" "src/tpcw/CMakeFiles/pse_tpcw.dir/workloads.cc.o" "gcc" "src/tpcw/CMakeFiles/pse_tpcw.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pse_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/pse_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/pse_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/ga/CMakeFiles/pse_ga.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/pse_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/pse_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pse_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
