# Empty dependencies file for pse_tpcw.
# This may be replaced when dependencies are built.
