file(REMOVE_RECURSE
  "libpse_tpcw.a"
)
