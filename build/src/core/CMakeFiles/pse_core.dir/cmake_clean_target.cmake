file(REMOVE_RECURSE
  "libpse_core.a"
)
