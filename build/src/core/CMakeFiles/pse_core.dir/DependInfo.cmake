
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/logical_database.cc" "src/core/CMakeFiles/pse_core.dir/logical_database.cc.o" "gcc" "src/core/CMakeFiles/pse_core.dir/logical_database.cc.o.d"
  "/root/repo/src/core/logical_query.cc" "src/core/CMakeFiles/pse_core.dir/logical_query.cc.o" "gcc" "src/core/CMakeFiles/pse_core.dir/logical_query.cc.o.d"
  "/root/repo/src/core/logical_schema.cc" "src/core/CMakeFiles/pse_core.dir/logical_schema.cc.o" "gcc" "src/core/CMakeFiles/pse_core.dir/logical_schema.cc.o.d"
  "/root/repo/src/core/mapping.cc" "src/core/CMakeFiles/pse_core.dir/mapping.cc.o" "gcc" "src/core/CMakeFiles/pse_core.dir/mapping.cc.o.d"
  "/root/repo/src/core/migration_executor.cc" "src/core/CMakeFiles/pse_core.dir/migration_executor.cc.o" "gcc" "src/core/CMakeFiles/pse_core.dir/migration_executor.cc.o.d"
  "/root/repo/src/core/migration_planner.cc" "src/core/CMakeFiles/pse_core.dir/migration_planner.cc.o" "gcc" "src/core/CMakeFiles/pse_core.dir/migration_planner.cc.o.d"
  "/root/repo/src/core/operators.cc" "src/core/CMakeFiles/pse_core.dir/operators.cc.o" "gcc" "src/core/CMakeFiles/pse_core.dir/operators.cc.o.d"
  "/root/repo/src/core/physical_schema.cc" "src/core/CMakeFiles/pse_core.dir/physical_schema.cc.o" "gcc" "src/core/CMakeFiles/pse_core.dir/physical_schema.cc.o.d"
  "/root/repo/src/core/rewriter.cc" "src/core/CMakeFiles/pse_core.dir/rewriter.cc.o" "gcc" "src/core/CMakeFiles/pse_core.dir/rewriter.cc.o.d"
  "/root/repo/src/core/schema_advisor.cc" "src/core/CMakeFiles/pse_core.dir/schema_advisor.cc.o" "gcc" "src/core/CMakeFiles/pse_core.dir/schema_advisor.cc.o.d"
  "/root/repo/src/core/simulation.cc" "src/core/CMakeFiles/pse_core.dir/simulation.cc.o" "gcc" "src/core/CMakeFiles/pse_core.dir/simulation.cc.o.d"
  "/root/repo/src/core/virtual_catalog.cc" "src/core/CMakeFiles/pse_core.dir/virtual_catalog.cc.o" "gcc" "src/core/CMakeFiles/pse_core.dir/virtual_catalog.cc.o.d"
  "/root/repo/src/core/workload.cc" "src/core/CMakeFiles/pse_core.dir/workload.cc.o" "gcc" "src/core/CMakeFiles/pse_core.dir/workload.cc.o.d"
  "/root/repo/src/core/workload_collector.cc" "src/core/CMakeFiles/pse_core.dir/workload_collector.cc.o" "gcc" "src/core/CMakeFiles/pse_core.dir/workload_collector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sql/CMakeFiles/pse_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/pse_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/ga/CMakeFiles/pse_ga.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/pse_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/pse_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pse_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
