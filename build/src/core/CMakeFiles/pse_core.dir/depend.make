# Empty dependencies file for pse_core.
# This may be replaced when dependencies are built.
