file(REMOVE_RECURSE
  "CMakeFiles/pse_core.dir/logical_database.cc.o"
  "CMakeFiles/pse_core.dir/logical_database.cc.o.d"
  "CMakeFiles/pse_core.dir/logical_query.cc.o"
  "CMakeFiles/pse_core.dir/logical_query.cc.o.d"
  "CMakeFiles/pse_core.dir/logical_schema.cc.o"
  "CMakeFiles/pse_core.dir/logical_schema.cc.o.d"
  "CMakeFiles/pse_core.dir/mapping.cc.o"
  "CMakeFiles/pse_core.dir/mapping.cc.o.d"
  "CMakeFiles/pse_core.dir/migration_executor.cc.o"
  "CMakeFiles/pse_core.dir/migration_executor.cc.o.d"
  "CMakeFiles/pse_core.dir/migration_planner.cc.o"
  "CMakeFiles/pse_core.dir/migration_planner.cc.o.d"
  "CMakeFiles/pse_core.dir/operators.cc.o"
  "CMakeFiles/pse_core.dir/operators.cc.o.d"
  "CMakeFiles/pse_core.dir/physical_schema.cc.o"
  "CMakeFiles/pse_core.dir/physical_schema.cc.o.d"
  "CMakeFiles/pse_core.dir/rewriter.cc.o"
  "CMakeFiles/pse_core.dir/rewriter.cc.o.d"
  "CMakeFiles/pse_core.dir/schema_advisor.cc.o"
  "CMakeFiles/pse_core.dir/schema_advisor.cc.o.d"
  "CMakeFiles/pse_core.dir/simulation.cc.o"
  "CMakeFiles/pse_core.dir/simulation.cc.o.d"
  "CMakeFiles/pse_core.dir/virtual_catalog.cc.o"
  "CMakeFiles/pse_core.dir/virtual_catalog.cc.o.d"
  "CMakeFiles/pse_core.dir/workload.cc.o"
  "CMakeFiles/pse_core.dir/workload.cc.o.d"
  "CMakeFiles/pse_core.dir/workload_collector.cc.o"
  "CMakeFiles/pse_core.dir/workload_collector.cc.o.d"
  "libpse_core.a"
  "libpse_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pse_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
