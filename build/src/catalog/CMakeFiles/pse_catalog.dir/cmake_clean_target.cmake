file(REMOVE_RECURSE
  "libpse_catalog.a"
)
