# Empty compiler generated dependencies file for pse_catalog.
# This may be replaced when dependencies are built.
