file(REMOVE_RECURSE
  "CMakeFiles/pse_catalog.dir/schema.cc.o"
  "CMakeFiles/pse_catalog.dir/schema.cc.o.d"
  "CMakeFiles/pse_catalog.dir/tuple.cc.o"
  "CMakeFiles/pse_catalog.dir/tuple.cc.o.d"
  "CMakeFiles/pse_catalog.dir/type.cc.o"
  "CMakeFiles/pse_catalog.dir/type.cc.o.d"
  "CMakeFiles/pse_catalog.dir/value.cc.o"
  "CMakeFiles/pse_catalog.dir/value.cc.o.d"
  "libpse_catalog.a"
  "libpse_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pse_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
