file(REMOVE_RECURSE
  "CMakeFiles/pse_common.dir/rng.cc.o"
  "CMakeFiles/pse_common.dir/rng.cc.o.d"
  "CMakeFiles/pse_common.dir/status.cc.o"
  "CMakeFiles/pse_common.dir/status.cc.o.d"
  "CMakeFiles/pse_common.dir/string_util.cc.o"
  "CMakeFiles/pse_common.dir/string_util.cc.o.d"
  "libpse_common.a"
  "libpse_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pse_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
