file(REMOVE_RECURSE
  "libpse_common.a"
)
