# Empty compiler generated dependencies file for pse_common.
# This may be replaced when dependencies are built.
