# Empty compiler generated dependencies file for pse_engine.
# This may be replaced when dependencies are built.
