file(REMOVE_RECURSE
  "CMakeFiles/pse_engine.dir/bound_query.cc.o"
  "CMakeFiles/pse_engine.dir/bound_query.cc.o.d"
  "CMakeFiles/pse_engine.dir/cost_model.cc.o"
  "CMakeFiles/pse_engine.dir/cost_model.cc.o.d"
  "CMakeFiles/pse_engine.dir/executor.cc.o"
  "CMakeFiles/pse_engine.dir/executor.cc.o.d"
  "CMakeFiles/pse_engine.dir/expr.cc.o"
  "CMakeFiles/pse_engine.dir/expr.cc.o.d"
  "CMakeFiles/pse_engine.dir/plan.cc.o"
  "CMakeFiles/pse_engine.dir/plan.cc.o.d"
  "CMakeFiles/pse_engine.dir/planner.cc.o"
  "CMakeFiles/pse_engine.dir/planner.cc.o.d"
  "libpse_engine.a"
  "libpse_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pse_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
