file(REMOVE_RECURSE
  "libpse_engine.a"
)
