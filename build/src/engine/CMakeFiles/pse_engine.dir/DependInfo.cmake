
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/bound_query.cc" "src/engine/CMakeFiles/pse_engine.dir/bound_query.cc.o" "gcc" "src/engine/CMakeFiles/pse_engine.dir/bound_query.cc.o.d"
  "/root/repo/src/engine/cost_model.cc" "src/engine/CMakeFiles/pse_engine.dir/cost_model.cc.o" "gcc" "src/engine/CMakeFiles/pse_engine.dir/cost_model.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/engine/CMakeFiles/pse_engine.dir/executor.cc.o" "gcc" "src/engine/CMakeFiles/pse_engine.dir/executor.cc.o.d"
  "/root/repo/src/engine/expr.cc" "src/engine/CMakeFiles/pse_engine.dir/expr.cc.o" "gcc" "src/engine/CMakeFiles/pse_engine.dir/expr.cc.o.d"
  "/root/repo/src/engine/plan.cc" "src/engine/CMakeFiles/pse_engine.dir/plan.cc.o" "gcc" "src/engine/CMakeFiles/pse_engine.dir/plan.cc.o.d"
  "/root/repo/src/engine/planner.cc" "src/engine/CMakeFiles/pse_engine.dir/planner.cc.o" "gcc" "src/engine/CMakeFiles/pse_engine.dir/planner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/pse_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/pse_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pse_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
