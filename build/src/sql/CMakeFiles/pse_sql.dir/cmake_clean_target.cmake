file(REMOVE_RECURSE
  "libpse_sql.a"
)
