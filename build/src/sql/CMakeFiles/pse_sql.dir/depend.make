# Empty dependencies file for pse_sql.
# This may be replaced when dependencies are built.
