file(REMOVE_RECURSE
  "CMakeFiles/pse_sql.dir/binder.cc.o"
  "CMakeFiles/pse_sql.dir/binder.cc.o.d"
  "CMakeFiles/pse_sql.dir/lexer.cc.o"
  "CMakeFiles/pse_sql.dir/lexer.cc.o.d"
  "CMakeFiles/pse_sql.dir/parser.cc.o"
  "CMakeFiles/pse_sql.dir/parser.cc.o.d"
  "CMakeFiles/pse_sql.dir/session.cc.o"
  "CMakeFiles/pse_sql.dir/session.cc.o.d"
  "libpse_sql.a"
  "libpse_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pse_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
