# Empty compiler generated dependencies file for pse_ga.
# This may be replaced when dependencies are built.
