file(REMOVE_RECURSE
  "libpse_ga.a"
)
