file(REMOVE_RECURSE
  "CMakeFiles/pse_ga.dir/genetic.cc.o"
  "CMakeFiles/pse_ga.dir/genetic.cc.o.d"
  "libpse_ga.a"
  "libpse_ga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pse_ga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
