file(REMOVE_RECURSE
  "CMakeFiles/pse_storage.dir/bplus_tree.cc.o"
  "CMakeFiles/pse_storage.dir/bplus_tree.cc.o.d"
  "CMakeFiles/pse_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/pse_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/pse_storage.dir/database.cc.o"
  "CMakeFiles/pse_storage.dir/database.cc.o.d"
  "CMakeFiles/pse_storage.dir/disk_manager.cc.o"
  "CMakeFiles/pse_storage.dir/disk_manager.cc.o.d"
  "CMakeFiles/pse_storage.dir/persistence.cc.o"
  "CMakeFiles/pse_storage.dir/persistence.cc.o.d"
  "CMakeFiles/pse_storage.dir/table_heap.cc.o"
  "CMakeFiles/pse_storage.dir/table_heap.cc.o.d"
  "libpse_storage.a"
  "libpse_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pse_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
