file(REMOVE_RECURSE
  "libpse_storage.a"
)
