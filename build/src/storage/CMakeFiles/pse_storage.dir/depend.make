# Empty dependencies file for pse_storage.
# This may be replaced when dependencies are built.
