// The paper's Fig 1 scenario, narrated end to end on the TPC-W bookstore:
// an online store upgrades its application while both versions serve users.
// At every migration point LAA inspects the observed workload mix and
// evolves the schema; the program reports what moved, what it cost, and how
// the progressive system compares to the dual-system (Opt) and one-shot
// (Obj) alternatives.
//
// Usage: bookstore_migration [points (default 5)]
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "core/mapping.h"

using namespace pse;

int main(int argc, char** argv) {
  size_t points = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 5;
  if (points < 2 || points > 8) points = 5;

  bench::TpcwInstance inst = bench::MakeInstance("100mb");
  std::printf("TPC-W bookstore, %s: %zu items, %zu customers, %zu orders\n\n",
              inst.scale.label.c_str(), inst.scale.num_items, inst.scale.num_customers,
              inst.scale.num_orders());

  auto opset = ComputeOperatorSet(inst.schema->source, inst.schema->object);
  if (!opset.ok()) {
    std::fprintf(stderr, "%s\n", opset.status().ToString().c_str());
    return 1;
  }
  std::printf("The new application version needs %zu schema-evolution steps:\n%s\n",
              opset->size(), opset->ToString(inst.schema->logical).c_str());

  auto freqs = IrregularFrequencies(points);
  SimulationConfig config = bench::DefaultConfig(PlannerKind::kLaa);
  MigrationSimulation sim(&inst.schema->source, &inst.schema->object, &inst.queries, freqs,
                          inst.data.get(), config);

  std::printf("Running the progressive migration over %zu phases...\n\n", points);
  auto pro = sim.Run(Situation::kProSchema);
  if (!pro.ok()) {
    std::fprintf(stderr, "%s\n", pro.status().ToString().c_str());
    return 1;
  }
  for (size_t p = 0; p < pro->phases.size(); ++p) {
    const PhaseReport& phase = pro->phases[p];
    std::printf("Migration point %zu:\n", p);
    if (phase.ops_applied.empty()) {
      std::printf("  schema unchanged (current layout still optimal for the mix)\n");
    } else {
      for (int op : phase.ops_applied) {
        std::printf("  applied %s\n",
                    opset->ops[static_cast<size_t>(op)].ToString(inst.schema->logical).c_str());
      }
      std::printf("  data movement: %.0f pages\n", phase.migration_io);
    }
    std::printf("  phase P%zu-P%zu workload cost: %.0f page I/Os (%s)\n\n", p, p + 1,
                phase.query_cost, phase.schema_desc.c_str());
  }
  std::printf("End of schedule: remaining operators applied in the completion step "
              "(%.0f pages) — the store now runs the object schema only.\n\n",
              pro->final_migration_io);

  auto opt = sim.Run(Situation::kOptSchema);
  auto obj = sim.Run(Situation::kObjSchema);
  if (!opt.ok() || !obj.ok()) {
    std::fprintf(stderr, "baseline run failed\n");
    return 1;
  }
  std::printf("How the alternatives would have fared on the same workload:\n");
  bench::PrintPhaseCostTable(*opt, *pro, *obj);
  return 0;
}
