// Minimal SQL shell over the embedded engine — shows that the substrate
// under the migration machinery is a usable database on its own.
//
// Usage:
//   sql_shell                    # in-memory, interactive (stdin)
//   sql_shell "SQL" "SQL" ...    # executes the given statements and exits
//   sql_shell --db=FILE [...]    # persistent: opens/creates FILE, restores
//                                # its catalog, checkpoints on exit
//
// Statements end with ';' (or end of line in argv mode). EXPLAIN SELECT ...
// prints the physical plan. ".tables" lists tables, ".verify" statically
// verifies the built-in TPC-W source->object migration (operator set,
// information preservation, workload answerability), ".interactions" prints
// the operator-interaction analysis of that migration (footprints,
// interference clusters, plan-space reduction), ".coststats" runs cached +
// parallel LAA planning over that migration twice and prints the cost-cache
// hit/miss/collision counters, ".writability" prints the per-version DML
// writability matrix over that migration's trajectory (operator lenses,
// per-step Safe/NeedsPropagation/Unservable cells, WRITE_* findings),
// ".migrate" executes that migration *online* (batched, journaled, with a
// simulated crash + resume) on a scratch database, ".serve" runs it again
// under live concurrent mixed-version sessions and prints throughput +
// latency quantiles, ".lockgraph" analyzes the latch-acquisition-order
// graph recorded so far (build with -DPROGSCHEMA_LOCKDEP=ON and run ".serve"
// first for a live graph; otherwise the canonical DESIGN.md section 17
// hierarchy is shown) and dumps it as GraphViz DOT, ".quit" exits.
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "analysis/interaction.h"
#include "analysis/lockorder.h"
#include "analysis/verifier.h"
#include "analysis/writability.h"
#include "common/lock_registry.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/mapping.h"
#include "core/migration_executor.h"
#include "core/migration_planner.h"
#include "core/serving.h"
#include "engine/cost_cache.h"
#include "sql/session.h"
#include "tpcw/datagen.h"
#include "tpcw/queries.h"
#include "tpcw/schema.h"

using namespace pse;

namespace {

void PrintResult(const ExecResult& result) {
  if (!result.columns.empty()) {
    for (size_t i = 0; i < result.columns.size(); ++i) {
      std::printf("%s%s", i ? " | " : "", result.columns[i].c_str());
    }
    std::printf("\n");
    for (const auto& row : result.rows) {
      for (size_t i = 0; i < row.size(); ++i) {
        std::printf("%s%s", i ? " | " : "", row[i].ToString().c_str());
      }
      std::printf("\n");
    }
    std::printf("(%zu rows)\n", result.rows.size());
  } else {
    std::printf("OK (%llu rows affected)\n", static_cast<unsigned long long>(result.affected));
  }
}

/// `.verify`: statically verify the built-in TPC-W source->object migration.
int RunVerifyDemo() {
  std::unique_ptr<TpcwSchema> schema = BuildTpcwSchema();
  auto queries = BuildTpcwWorkload(*schema);
  if (!queries.ok()) {
    std::printf("error: %s\n", queries.status().ToString().c_str());
    return 1;
  }
  auto opset = ComputeOperatorSet(schema->source, schema->object);
  if (!opset.ok()) {
    std::printf("error: %s\n", opset.status().ToString().c_str());
    return 1;
  }
  VerifyInput input;
  input.source = &schema->source;
  input.object = &schema->object;
  input.opset = &*opset;
  input.queries = &*queries;
  DiagnosticReport report = VerifyMigration(input);
  std::printf("TPC-W source -> object migration: %zu operators, %zu queries\n",
              opset->size(), queries->size());
  if (report.diagnostics().empty()) {
    std::printf("verifies clean: no diagnostics\n");
  } else {
    std::printf("%s", report.ToString().c_str());
  }
  return report.ok() ? 0 : 1;
}

/// `.interactions`: operator-interaction analysis of the TPC-W migration.
int RunInteractionsDemo() {
  std::unique_ptr<TpcwSchema> schema = BuildTpcwSchema();
  auto queries = BuildTpcwWorkload(*schema);
  if (!queries.ok()) {
    std::printf("error: %s\n", queries.status().ToString().c_str());
    return 1;
  }
  auto opset = ComputeOperatorSet(schema->source, schema->object);
  if (!opset.ok()) {
    std::printf("error: %s\n", opset.status().ToString().c_str());
    return 1;
  }
  std::vector<bool> applied(opset->size(), false);
  auto analysis = AnalyzeInteractions(*opset, schema->source, applied, &*queries);
  if (!analysis.ok()) {
    std::printf("error: %s\n", analysis.status().ToString().c_str());
    return 1;
  }
  std::printf("TPC-W source -> object migration: %zu operators, %zu queries\n",
              opset->size(), queries->size());
  std::printf("%s", analysis->ToString(*opset, schema->logical, &*queries).c_str());
  DiagnosticReport report;
  ReportCostIrrelevantOps(*analysis, *opset, schema->logical, &report);
  if (!report.diagnostics().empty()) std::printf("%s", report.ToString().c_str());
  return 0;
}

/// `.coststats`: cached + parallel LAA over the TPC-W migration. Two rounds
/// against one shared cache show the cold-run miss population and the warm
/// run served entirely from memoized estimates.
int RunCostStatsDemo() {
  std::unique_ptr<TpcwSchema> schema = BuildTpcwSchema();
  auto queries = BuildTpcwWorkload(*schema);
  if (!queries.ok()) {
    std::printf("error: %s\n", queries.status().ToString().c_str());
    return 1;
  }
  auto opset = ComputeOperatorSet(schema->source, schema->object);
  if (!opset.ok()) {
    std::printf("error: %s\n", opset.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<LogicalDatabase> data = GenerateTpcwData(*schema, ScaleTiny());
  std::vector<LogicalStats> stats{data->ComputeStats()};
  std::vector<std::vector<double>> freqs{std::vector<double>(queries->size(), 1.0)};
  MigrationContext ctx;
  ctx.current = &schema->source;
  ctx.object = &schema->object;
  ctx.opset = &*opset;
  ctx.applied.assign(opset->size(), false);
  ctx.phase_freqs = &freqs;
  ctx.phase_stats = &stats;
  ctx.queries = &*queries;

  QueryCostCache cache;
  ThreadPool pool;
  AnalysisOptions analysis;
  analysis.cost_cache = &cache;
  analysis.pool = &pool;
  std::printf("TPC-W source -> object migration: %zu operators, %zu queries\n", opset->size(),
              queries->size());
  for (int round = 1; round <= 2; ++round) {
    auto laa = SelectOpsLaa(ctx, 0, 0, /*max_ops=*/30, analysis);
    if (!laa.ok()) {
      std::printf("error: %s\n", laa.status().ToString().c_str());
      return 1;
    }
    std::printf("LAA round %d: %zu schemas costed in %.2f ms on %zu threads\n  %s\n", round,
                laa->schemas_evaluated, laa->wall_ms, laa->threads,
                laa->cache_stats.ToString().c_str());
  }
  std::printf("cache holds %zu distinct (query, layout, stats) entries\n", cache.size());
  return 0;
}

/// `.writability`: the per-version DML writability matrix of the TPC-W
/// migration. The trajectory groups operators by interference cluster (the
/// clusters are dependency-closed, so each is a legal publish step), then the
/// information-flow pass classifies every (version, table, DML-kind) cell on
/// every intermediate schema and reports the WRITE_* findings.
int RunWritabilityDemo() {
  std::unique_ptr<TpcwSchema> schema = BuildTpcwSchema();
  auto queries = BuildTpcwWorkload(*schema);
  if (!queries.ok()) {
    std::printf("error: %s\n", queries.status().ToString().c_str());
    return 1;
  }
  auto opset = ComputeOperatorSet(schema->source, schema->object);
  if (!opset.ok()) {
    std::printf("error: %s\n", opset.status().ToString().c_str());
    return 1;
  }
  std::vector<bool> applied(opset->size(), false);
  auto analysis = AnalyzeInteractions(*opset, schema->source, applied, &*queries);
  if (!analysis.ok()) {
    std::printf("error: %s\n", analysis.status().ToString().c_str());
    return 1;
  }
  WritabilityInput input;
  input.old_schema = &schema->source;
  input.new_schema = &schema->object;
  input.opset = &*opset;
  for (const InteractionCluster& cluster : analysis->clusters) {
    input.trajectory.push_back(cluster.ops);
  }
  DiagnosticReport report;
  auto wa = AnalyzeWritability(input, &report);
  if (!wa.ok()) {
    std::printf("error: %s\n", wa.status().ToString().c_str());
    return 1;
  }
  std::printf("TPC-W source -> object migration: %zu operators, one step per "
              "interference cluster\n",
              opset->size());
  std::printf("%s", wa->ToString(*opset, schema->logical).c_str());
  if (!report.diagnostics().empty()) std::printf("%s", report.ToString().c_str());
  std::printf("%zu live unservable cell(s) across the trajectory\n", wa->unservable_cells);
  return 0;
}

/// `.migrate`: run the built-in TPC-W source -> object migration *online* on
/// a scratch in-memory database — batched data movement with a journaled
/// cursor — including a simulated crash mid-operator and a resume from the
/// journal.
int RunMigrateDemo(Database* session_db) {
  if (session_db->HasPendingMigration()) {
    std::printf("session database has a pending migration journal:\n  %s\n",
                session_db->migration_journal().ToString().c_str());
  }
  std::unique_ptr<TpcwSchema> schema = BuildTpcwSchema();
  auto opset = ComputeOperatorSet(schema->source, schema->object);
  if (!opset.ok()) {
    std::printf("error: %s\n", opset.status().ToString().c_str());
    return 1;
  }
  auto topo = opset->TopologicalOrder();
  if (!topo.ok()) {
    std::printf("error: %s\n", topo.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<LogicalDatabase> data = GenerateTpcwData(*schema, ScaleTiny());
  Database db(2048);
  Status mat = data->Materialize(&db, schema->source);
  if (!mat.ok()) {
    std::printf("error: %s\n", mat.ToString().c_str());
    return 1;
  }

  MigrationExecutor exec(&db, data.get());
  MigrationOptions options;
  options.batch_rows = 128;
  options.rollback_on_error = false;  // keep the journal for the resume demo
  uint64_t batches_seen = 0;
  bool inject = true;
  options.on_batch = [&](const MigrationBatchEvent& e) -> Status {
    ++batches_seen;
    if (inject && batches_seen == 3) {
      inject = false;
      return Status::IOError("injected crash after batch " +
                             std::to_string(e.batch_index) + " (demo)");
    }
    return Status::OK();
  };
  exec.set_options(options);

  std::printf("TPC-W source -> object, online: %zu operators, %llu-row batches\n",
              opset->size(), static_cast<unsigned long long>(options.batch_rows));
  PhysicalSchema current = schema->source;
  uint64_t total_io = 0;
  for (int idx : *topo) {
    const MigrationOperator& op = opset->ops[static_cast<size_t>(idx)];
    auto io = exec.Apply(op, &current);
    if (!io.ok()) {
      std::printf("  op#%d interrupted: %s\n", op.id, io.status().message().c_str());
      std::printf("    journal: %s\n", db.migration_journal().ToString().c_str());
      io = exec.Resume(op, &current);
      if (!io.ok()) {
        std::printf("error: resume failed: %s\n", io.status().ToString().c_str());
        return 1;
      }
      std::printf("  op#%d resumed from the journal and finished (+%llu page I/O)\n", op.id,
                  static_cast<unsigned long long>(*io));
    } else {
      std::printf("  op#%d done (%llu page I/O), journal %s\n", op.id,
                  static_cast<unsigned long long>(*io),
                  db.HasPendingMigration() ? "STILL ACTIVE?" : "cleared");
    }
    total_io += *io;
  }
  std::printf("migrated to the object schema: %zu tables, %llu total page I/O, %llu batches\n",
              db.TableNames().size(), static_cast<unsigned long long>(total_io),
              static_cast<unsigned long long>(batches_seen));
  return 0;
}

/// `.serve`: run the TPC-W source -> object migration on a scratch database
/// while four concurrent sessions execute the mixed-version workload against
/// live schema snapshots, then print the serve-window metrics.
int RunServeDemo() {
  std::unique_ptr<TpcwSchema> schema = BuildTpcwSchema();
  auto queries = BuildTpcwWorkload(*schema);
  if (!queries.ok()) {
    std::printf("error: %s\n", queries.status().ToString().c_str());
    return 1;
  }
  auto opset = ComputeOperatorSet(schema->source, schema->object);
  if (!opset.ok()) {
    std::printf("error: %s\n", opset.status().ToString().c_str());
    return 1;
  }
  auto topo = opset->TopologicalOrder();
  if (!topo.ok()) {
    std::printf("error: %s\n", topo.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<LogicalDatabase> data = GenerateTpcwData(*schema, ScaleTiny());
  Database db(2048);
  Status mat = data->Materialize(&db, schema->source);
  if (!mat.ok()) {
    std::printf("error: %s\n", mat.ToString().c_str());
    return 1;
  }

  ServingSchema serving(schema->source);
  MigrationExecutor exec(&db, data.get());
  MigrationOptions options;
  options.batch_rows = 128;
  options.on_publish = [&](const PhysicalSchema& s) { serving.Publish(s); };
  exec.set_options(options);

  ServeOptions serve;
  serve.sessions = 4;
  serve.min_queries_per_lane = 8;
  std::vector<double> freqs(queries->size(), 1.0);
  std::printf("TPC-W source -> object under load: %zu operators, %zu sessions\n", opset->size(),
              serve.sessions);
  auto metrics = ServeDuringMigration(&db, &serving, *queries, freqs, serve, [&]() -> Status {
    PhysicalSchema current = schema->source;
    for (int idx : *topo) {
      auto io = exec.Apply(opset->ops[static_cast<size_t>(idx)], &current);
      if (!io.ok()) return io.status();
    }
    return Status::OK();
  });
  if (!metrics.ok()) {
    std::printf("error: %s\n", metrics.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "served %llu queries (%llu unservable on an intermediate, %llu errors) in %.1f ms\n"
      "throughput %.1f q/s, latency p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n",
      static_cast<unsigned long long>(metrics->queries),
      static_cast<unsigned long long>(metrics->unservable),
      static_cast<unsigned long long>(metrics->errors), metrics->wall_ms,
      metrics->throughput_qps, metrics->p50_ms, metrics->p95_ms, metrics->p99_ms);
  return metrics->errors == 0 ? 0 : 1;
}

/// `.lockgraph`: offline lock-order analysis of whatever the instrumented
/// latches recorded in this process, DOT graph included. Nonzero exit when
/// the analysis finds violations, so scripts/check.sh can gate on it.
int RunLockGraphDemo() {
  LockOrderGraph graph = LockRegistry::Instance().Snapshot();
  if (graph.acquisitions == 0) {
    std::printf(
        "no latch acquisitions recorded (build with -DPROGSCHEMA_LOCKDEP=ON and run .serve "
        "or .migrate first); showing the canonical hierarchy\n");
    graph = CanonicalLockGraph();
  } else {
    std::printf("recorded %llu acquisitions over %zu lock classes, %zu ordered pairs\n",
                static_cast<unsigned long long>(graph.acquisitions), graph.classes.size(),
                graph.edges.size());
  }
  DiagnosticReport report = AnalyzeLockOrder(graph);
  if (report.diagnostics().empty()) {
    std::printf("clean: no diagnostics\n");
  } else {
    std::printf("%s\n", report.ToString().c_str());
  }
  std::printf("%s", LockGraphToDot(graph).c_str());
  return static_cast<int>(report.errors());
}

int RunStatement(Session* session, const std::string& stmt) {
  std::string trimmed(Trim(stmt));
  if (trimmed.empty()) return 0;
  if (trimmed == ".tables") {
    for (const auto& name : session->db()->TableNames()) std::printf("%s\n", name.c_str());
    return 0;
  }
  if (trimmed == ".verify") return RunVerifyDemo();
  if (trimmed == ".interactions") return RunInteractionsDemo();
  if (trimmed == ".coststats") return RunCostStatsDemo();
  if (trimmed == ".writability") return RunWritabilityDemo();
  if (trimmed == ".migrate") return RunMigrateDemo(session->db());
  if (trimmed == ".serve") return RunServeDemo();
  if (trimmed == ".lockgraph") return RunLockGraphDemo();
  if (StartsWith(ToUpper(trimmed), "EXPLAIN ")) {
    auto plan = session->Explain(trimmed.substr(8));
    if (!plan.ok()) {
      std::printf("error: %s\n", plan.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", plan->c_str());
    return 0;
  }
  auto result = session->Execute(trimmed);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  PrintResult(*result);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::unique_ptr<Database> owned;
  std::string db_path;
  int first_stmt = 1;
  if (argc > 1 && StartsWith(argv[1], "--db=")) {
    db_path = argv[1] + 5;
    first_stmt = 2;
    auto opened = Database::Open(db_path);
    if (!opened.ok()) {
      std::fprintf(stderr, "open %s failed: %s\n", db_path.c_str(),
                   opened.status().ToString().c_str());
      return 1;
    }
    owned = opened.MoveValueUnsafe();
  } else {
    owned = std::make_unique<Database>(4096);
  }
  Database& db = *owned;
  Session session(&db);

  // A little starter catalog so the in-memory shell is useful immediately;
  // persistent databases keep whatever they already contain.
  if (!db.HasTable("book") && db_path.empty()) {
    const char* bootstrap[] = {
        "CREATE TABLE book (b_id BIGINT NOT NULL, title VARCHAR(40), author VARCHAR(20), "
        "price DOUBLE, PRIMARY KEY (b_id))",
        "INSERT INTO book VALUES (1, 'A Relational Model of Data', 'Codd', 10.0), "
        "(2, 'The Design of Postgres', 'Stonebraker', 12.5), "
        "(3, 'Access Path Selection', 'Selinger', 9.5)",
        "ANALYZE",
    };
    for (const char* stmt : bootstrap) {
      auto r = session.Execute(stmt);
      if (!r.ok()) {
        std::fprintf(stderr, "bootstrap failed: %s\n", r.status().ToString().c_str());
        return 1;
      }
    }
  }
  auto finish = [&]() {
    if (!db_path.empty()) {
      Status s = db.Checkpoint();
      if (!s.ok()) std::fprintf(stderr, "checkpoint failed: %s\n", s.ToString().c_str());
    }
  };

  if (argc > first_stmt) {
    int rc = 0;
    for (int i = first_stmt; i < argc; ++i) rc |= RunStatement(&session, argv[i]);
    finish();
    return rc;
  }

  std::printf(
      "ProgSchema SQL shell — try: SELECT * FROM book; (.tables, .verify, .interactions, "
      ".coststats, .writability, .migrate, .serve, .lockgraph, .quit)\n");
  std::string buffer, line;
  while (true) {
    std::printf(buffer.empty() ? "sql> " : "...> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string trimmed(Trim(line));
    if (trimmed == ".quit" || trimmed == ".exit") break;
    if (!trimmed.empty() && trimmed[0] == '.') {
      RunStatement(&session, trimmed);
      continue;
    }
    buffer += line + "\n";
    if (trimmed.size() >= 1 && trimmed.back() == ';') {
      RunStatement(&session, buffer);
      buffer.clear();
    }
  }
  finish();
  return 0;
}
