// Migration planning tool: given a predicted workload trend, runs GAA once
// up front (the paper's global adaptive model) and prints the full operator
// -> migration-point schedule with its predicted cost, next to the
// exhaustive optimum (when small enough) and the one-shot plan.
//
// Usage: workload_planner [points (default 4)]
#include <cstdio>
#include <cstdlib>

#include "analysis/verifier.h"
#include "bench/bench_util.h"
#include "core/mapping.h"

using namespace pse;

int main(int argc, char** argv) {
  size_t points = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;
  if (points < 2 || points > 8) points = 4;

  bench::TpcwInstance inst = bench::MakeInstance("100mb");
  auto opset = ComputeOperatorSet(inst.schema->source, inst.schema->object);
  if (!opset.ok()) {
    std::fprintf(stderr, "%s\n", opset.status().ToString().c_str());
    return 1;
  }
  auto freqs = RegularFrequencies(points);
  std::vector<LogicalStats> stats{inst.data->ComputeStats()};

  // Static verification before any planning: an ill-formed operator set or
  // an unanswerable workload should be rejected here, not at execution time.
  VerifyInput verify;
  verify.source = &inst.schema->source;
  verify.object = &inst.schema->object;
  verify.opset = &*opset;
  verify.queries = &inst.queries;
  verify.phase_freqs = &freqs;
  DiagnosticReport report = VerifyMigration(verify);
  if (!report.diagnostics().empty()) {
    std::printf("static verification of the migration plan:\n%s\n",
                report.ToString().c_str());
  }
  if (!report.ok()) {
    std::fprintf(stderr, "refusing to plan an unverifiable migration\n");
    return 1;
  }

  MigrationContext ctx;
  ctx.current = &inst.schema->source;
  ctx.object = &inst.schema->object;
  ctx.opset = &*opset;
  ctx.applied.assign(opset->size(), false);
  ctx.phase_freqs = &freqs;
  ctx.phase_stats = &stats;
  ctx.queries = &inst.queries;

  GaaOptions options;
  options.ga.population_size = 48;
  options.ga.generations = 60;
  options.include_migration_cost = true;

  auto gaa = PlanGaa(ctx, 0, options);
  if (!gaa.ok()) {
    std::fprintf(stderr, "%s\n", gaa.status().ToString().c_str());
    return 1;
  }

  std::printf("GAA migration schedule over %zu points (predicted workload trend: regular):\n\n",
              points);
  for (size_t off = 0; off <= points; ++off) {
    if (off < points) {
      std::printf("migration point %zu:\n", off);
    } else {
      std::printf("completion step (after the last phase):\n");
    }
    bool any = false;
    for (size_t i = 0; i < gaa->assignment.size(); ++i) {
      if (gaa->assignment[i] == static_cast<int>(off)) {
        int op = gaa->remaining_ops[i];
        std::printf("  %s\n",
                    opset->ops[static_cast<size_t>(op)].ToString(inst.schema->logical).c_str());
        any = true;
      }
    }
    if (!any) std::printf("  (no schema change)\n");
  }
  std::printf("\npredicted total cost (query + movement estimates): %.0f  [%zu GA evaluations]\n",
              gaa->best_cost, gaa->evaluations);

  // One-shot comparison: everything at point 0 (the classical migration).
  std::vector<int> one_shot(gaa->remaining_ops.size(), 0);
  auto one_shot_cost = EvaluateAssignment(ctx, 0, gaa->remaining_ops, one_shot, options);
  if (one_shot_cost.ok()) {
    std::printf("one-shot (everything at point 0) would cost:   %.0f  (%+.1f%%)\n",
                *one_shot_cost, (*one_shot_cost / gaa->best_cost - 1.0) * 100.0);
  }
  // Defer-everything comparison.
  std::vector<int> defer_all(gaa->remaining_ops.size(), static_cast<int>(points));
  auto defer_cost = EvaluateAssignment(ctx, 0, gaa->remaining_ops, defer_all, options);
  if (defer_cost.ok()) {
    std::printf("defer-everything-to-completion would cost:     %.0f  (%+.1f%%)\n", *defer_cost,
                (*defer_cost / gaa->best_cost - 1.0) * 100.0);
  }
  if (opset->size() <= 10) {
    auto exhaustive = PlanExhaustiveGlobal(ctx, 0, options);
    if (exhaustive.ok()) {
      std::printf("exhaustive global optimum:                      %.0f  (GAA gap %+.2f%%)\n",
                  exhaustive->best_cost,
                  (gaa->best_cost / exhaustive->best_cost - 1.0) * 100.0);
    }
  }
  return 0;
}
