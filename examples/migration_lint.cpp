// migration_lint — static verification of migration plans from the command
// line. Runs the analysis verifier (operator-set well-formedness,
// information preservation, workload lint) over a chosen scenario and
// prints every diagnostic; the exit code is the number of errors (capped),
// so it slots into shell pipelines and CI gates.
//
// Usage: migration_lint [scenario]
//   tpcw        TPC-W source -> object migration + 20-query workload (default)
//   bookstore   the paper's Fig 7 miniature bookstore migration
//   bad-fd      seeded-invalid: CreateTable with a dangling FD reference
//   bad-split   seeded-invalid: SplitTable that is not lossless-join
//   bad-query   seeded-invalid: workload query unanswerable on the object
//               schema (and at every intermediate)
//   dead-op     operator no workload query ever touches: the interaction
//               analysis flags it ANALYSIS_COST_IRRELEVANT_OP (note)
//   lossy-combine  seeded write-unsafe plan: both versions live across a
//               trajectory whose cross-entity combine is lossy forward and
//               whose CreateTable publishes late — WRITE_LOSSY_COMBINE,
//               WRITE_UNSERVABLE_WINDOW, WRITE_PROVENANCE_REQUIRED
//   lock-order  seeded latch-discipline violations: an inverted two-table
//               acquisition closing a cycle plus a shared->exclusive
//               upgrade — LOCK_ORDER_INVERSION, LOCK_UPGRADE, LOCK_CYCLE
//               (the offline half of DESIGN.md section 17's lockdep)
//   all         every scenario in sequence
//
// Scenarios with a workload also print the operator-interaction analysis
// (footprints, interference clusters, plan-space reduction) as a section;
// the tpcw scenario adds a write-safety section (the per-version DML
// writability matrix of analysis/writability.h). Diagnostics print in
// sorted order (severity, code, location, message) so output is stable and
// diffable regardless of analyzer traversal order.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "analysis/concurrency.h"
#include "analysis/interaction.h"
#include "analysis/lockorder.h"
#include "analysis/verifier.h"
#include "analysis/writability.h"
#include "core/mapping.h"
#include "tpcw/queries.h"
#include "tpcw/schema.h"
#include "tpcw/workloads.h"

using namespace pse;

namespace {

/// The paper's Fig 7 miniature: author/book/user with a combine, a split,
/// and a new attribute. Mirrors the shared test fixture but stays
/// self-contained so the example builds without the test tree.
struct Bookstore {
  LogicalSchema logical;
  EntityId author = kInvalidId, book = kInvalidId, user = kInvalidId;
  AttrId a_name{}, a_bio{}, b_title{}, b_cost{}, b_a_id{}, b_abstract{};
  AttrId u_name{}, u_bday{}, u_addr{};
  PhysicalSchema source;
  PhysicalSchema object;

  static std::unique_ptr<Bookstore> Make() {
    auto out = std::make_unique<Bookstore>();
    Bookstore& s = *out;
    LogicalSchema& L = s.logical;
    s.author = L.AddEntity("author", "a_id");
    s.book = L.AddEntity("book", "b_id");
    s.user = L.AddEntity("user", "u_id");
    s.a_name = *L.AddAttribute(s.author, "a_name", TypeId::kVarchar, 16);
    s.a_bio = *L.AddAttribute(s.author, "a_bio", TypeId::kVarchar, 40);
    s.b_title = *L.AddAttribute(s.book, "b_title", TypeId::kVarchar, 24);
    s.b_cost = *L.AddAttribute(s.book, "b_cost", TypeId::kDouble);
    s.b_a_id = *L.AddForeignKey(s.book, "b_a_id", s.author);
    s.b_abstract = *L.AddAttribute(s.book, "b_abstract", TypeId::kVarchar, 60, /*is_new=*/true);
    s.u_name = *L.AddAttribute(s.user, "u_name", TypeId::kVarchar, 16);
    s.u_bday = *L.AddAttribute(s.user, "u_bday", TypeId::kInt64);
    s.u_addr = *L.AddAttribute(s.user, "u_addr", TypeId::kVarchar, 32);
    s.source = PhysicalSchema(&L);
    (void)s.source.AddTable("author", s.author, {s.a_name, s.a_bio});
    (void)s.source.AddTable("book", s.book, {s.b_title, s.b_cost, s.b_a_id});
    (void)s.source.AddTable("user", s.user, {s.u_name, s.u_bday, s.u_addr});
    s.object = PhysicalSchema(&L);
    (void)s.object.AddTable("glossary", s.book,
                            {s.b_title, s.b_cost, s.b_a_id, s.a_name, s.a_bio, s.b_abstract});
    (void)s.object.AddTable("user_gen", s.user, {s.u_name, s.u_bday});
    (void)s.object.AddTable("user_rest", s.user, {s.u_addr});
    return out;
  }
};

/// Prints a report's findings in deterministic sorted order — severity,
/// then code name, location, message. Analyzer traversal order is an
/// implementation detail (multi-cluster plans interleave their findings),
/// so sorting here keeps example output stable and diffable in CI.
void PrintSorted(const DiagnosticReport& report) {
  std::vector<Diagnostic> sorted = report.diagnostics();
  std::stable_sort(sorted.begin(), sorted.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.severity != b.severity) return a.severity < b.severity;
    int c = std::strcmp(DiagCodeName(a.code), DiagCodeName(b.code));
    if (c != 0) return c < 0;
    if (a.location != b.location) return a.location < b.location;
    return a.message < b.message;
  });
  for (const Diagnostic& d : sorted) std::printf("%s\n", d.ToString().c_str());
  std::printf("%zu error(s), %zu warning(s), %zu note(s)\n", report.errors(),
              report.warnings(), report.notes());
}

int Report(const char* title, const DiagnosticReport& report) {
  std::printf("== %s ==\n", title);
  if (report.diagnostics().empty()) {
    std::printf("clean: no diagnostics\n\n");
  } else {
    PrintSorted(report);
    std::printf("\n");
  }
  return static_cast<int>(report.errors());
}

/// Operator-interaction section: the analysis report plus cost-irrelevance
/// notes, merged into the printed diagnostics. Notes never affect the exit
/// code.
int ReportInteractions(const char* title, const LogicalSchema& logical,
                       const PhysicalSchema& source, const OperatorSet& opset,
                       const std::vector<WorkloadQuery>& queries) {
  std::printf("== %s: operator interactions ==\n", title);
  std::vector<bool> applied(opset.size(), false);
  auto analysis = AnalyzeInteractions(opset, source, applied, &queries);
  if (!analysis.ok()) {
    std::printf("analysis failed: %s\n\n", analysis.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", analysis->ToString(opset, logical, &queries).c_str());
  DiagnosticReport notes;
  ReportCostIrrelevantOps(*analysis, opset, logical, &notes);
  if (!notes.diagnostics().empty()) {
    std::printf("%s", notes.ToString().c_str());
  }
  std::printf("\n");
  return 0;
}

/// Write-safety section: the information-flow pass over the plan's default
/// trajectory. WRITE_* findings are warnings and notes — the writability
/// matrix is advice for the planner knob and the PR-7 DML rewriter, not a
/// verification failure — so this section never contributes to the exit
/// code; a replay failure (broken plan) does.
int ReportWritability(const char* title, const LogicalSchema& logical,
                      const PhysicalSchema& source, const PhysicalSchema& object,
                      const OperatorSet& opset, bool old_live = true, bool new_live = true) {
  std::printf("== %s: write safety ==\n", title);
  WritabilityInput input;
  input.old_schema = &source;
  input.new_schema = &object;
  input.opset = &opset;
  input.old_live = old_live;
  input.new_live = new_live;
  DiagnosticReport report;
  auto analysis = AnalyzeWritability(input, &report);
  if (!analysis.ok()) {
    std::printf("analysis failed: %s\n\n", analysis.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", analysis->ToString(opset, logical).c_str());
  if (!report.diagnostics().empty()) PrintSorted(report);
  std::printf("\n");
  return 0;
}

int LintTpcw() {
  std::unique_ptr<TpcwSchema> schema = BuildTpcwSchema();
  auto queries = BuildTpcwWorkload(*schema);
  auto opset = ComputeOperatorSet(schema->source, schema->object);
  if (!queries.ok() || !opset.ok()) {
    std::fprintf(stderr, "scenario setup failed\n");
    return 1;
  }
  VerifyInput input;
  input.source = &schema->source;
  input.object = &schema->object;
  input.opset = &*opset;
  input.queries = &*queries;
  int errors = Report("tpcw: source -> object with the 20-query workload",
                      VerifyMigration(input));
  errors += ReportInteractions("tpcw", schema->logical, schema->source, *opset, *queries);
  errors += ReportWritability("tpcw", schema->logical, schema->source, schema->object, *opset);

  // Concurrency lint for a 4-session serve window at the first phase mix.
  // With `object` set the report also carries the WRITE_* findings, so the
  // serving lint covers writes as well as reads.
  ConcurrencyInput cin;
  cin.source = &schema->source;
  cin.opset = &*opset;
  cin.queries = &*queries;
  cin.object = &schema->object;
  std::vector<double> phase0 = Fig9IrregularFrequencies().front();
  cin.freqs = &phase0;
  cin.sessions = 4;
  errors += Report("tpcw: concurrent serving, 4 sessions at the phase-0 mix (reads + writes)",
                   AnalyzeConcurrency(cin));
  return errors;
}

int LintBookstore() {
  auto bs = Bookstore::Make();
  auto opset = ComputeOperatorSet(bs->source, bs->object);
  if (!opset.ok()) {
    std::fprintf(stderr, "scenario setup failed: %s\n", opset.status().ToString().c_str());
    return 1;
  }
  VerifyInput input;
  input.source = &bs->source;
  input.object = &bs->object;
  input.opset = &*opset;
  return Report("bookstore: the paper's Fig 7 migration", VerifyMigration(input));
}

int LintBadFd() {
  auto bs = Bookstore::Make();
  auto opset = ComputeOperatorSet(bs->source, bs->object);
  if (!opset.ok()) return 1;
  // Corrupt the first create: point its FD at an attribute of another
  // entity, plus one attribute id outside the logical schema entirely.
  for (auto& op : opset->ops) {
    if (op.kind == OperatorKind::kCreateTable) {
      op.create_attrs = {bs->u_addr, bs->logical.num_attributes() + 7};
      break;
    }
  }
  VerifyInput input;
  input.source = &bs->source;
  input.object = &bs->object;
  input.opset = &*opset;
  return Report("bad-fd: CreateTable whose FD references dangle", VerifyMigration(input));
}

int LintBadSplit() {
  auto bs = Bookstore::Make();
  // A split of the user table whose moved fragment is anchored at `author`:
  // author's key does not determine u_addr, so the split cannot be joined
  // back losslessly.
  OperatorSet opset;
  MigrationOperator op;
  op.kind = OperatorKind::kSplitTable;
  op.id = 0;
  op.split_moved = {bs->u_addr};
  op.split_moved_anchor = bs->author;
  opset.ops.push_back(op);
  opset.deps.emplace_back();
  VerifyInput input;
  input.source = &bs->source;
  input.object = &bs->object;
  input.opset = &opset;
  return Report("bad-split: SplitTable that is not lossless-join", VerifyMigration(input));
}

int LintBadQuery() {
  auto bs = Bookstore::Make();
  // b_extra exists in the logical schema but no physical schema stores it:
  // any query touching it is unanswerable everywhere.
  AttrId b_extra = *bs->logical.AddAttribute(bs->book, "b_extra", TypeId::kInt64, 0,
                                             /*is_new=*/true);
  (void)b_extra;
  auto opset = ComputeOperatorSet(bs->source, bs->object);
  if (!opset.ok()) return 1;
  LogicalQuery q;
  q.name = "Nx";
  q.anchor = bs->book;
  q.select.emplace_back(std::make_unique<ColumnRefExpr>("b_extra"), AggFunc::kNone, "b_extra");
  std::vector<WorkloadQuery> queries;
  queries.emplace_back(std::move(q), /*old=*/false);
  VerifyInput input;
  input.source = &bs->source;
  input.object = &bs->object;
  input.opset = &*opset;
  input.queries = &queries;
  return Report("bad-query: workload query no schema can answer", VerifyMigration(input));
}

int LintDeadOp() {
  auto bs = Bookstore::Make();
  auto opset = ComputeOperatorSet(bs->source, bs->object);
  if (!opset.ok()) return 1;
  // The workload reads only book/author attributes; the user-table split is
  // pure data movement no query's cost can ever observe.
  std::vector<WorkloadQuery> queries;
  LogicalQuery o1;
  o1.name = "O1";
  o1.anchor = bs->book;
  o1.select.emplace_back(std::make_unique<ColumnRefExpr>("b_title"), AggFunc::kNone, "b_title");
  o1.select.emplace_back(std::make_unique<ColumnRefExpr>("b_cost"), AggFunc::kNone, "b_cost");
  queries.emplace_back(std::move(o1), /*old=*/true);
  LogicalQuery n1;
  n1.name = "N1";
  n1.anchor = bs->book;
  n1.select.emplace_back(std::make_unique<ColumnRefExpr>("b_abstract"), AggFunc::kNone,
                         "b_abstract");
  queries.emplace_back(std::move(n1), /*old=*/false);
  return ReportInteractions("dead-op: user split untouched by the workload", bs->logical,
                            bs->source, *opset, queries);
}

int LintLossyCombine() {
  auto bs = Bookstore::Make();
  auto opset = ComputeOperatorSet(bs->source, bs->object);
  if (!opset.ok()) return 1;
  // Seeded write-unsafe deployment: both application versions accept DML for
  // the whole trajectory. The glossary combine folds author rows into book
  // rows (lossy forward: old-version writes to the collapsed fragments need
  // row provenance), and the new version's glossary table cannot accept any
  // writes until the b_abstract CreateTable publishes — a write-unservable
  // window the planner knob would have penalized away.
  return ReportWritability("lossy-combine: both versions live across a lossy plan",
                           bs->logical, bs->source, bs->object, *opset,
                           /*old_live=*/true, /*new_live=*/true);
}

int LintLockOrder() {
  // Seeded acquisition-order graph, the shape the instrumented latches
  // (common/lock_registry.h) record in a PROGSCHEMA_LOCKDEP run: one lane
  // took table 'aa_dst' before 'zz_src' (canonical sorted-name order), a
  // second lane took them reversed — together a deadlock-capable cycle —
  // and a third upgraded a shared hold in place.
  LockOrderGraph g;
  g.classes = {
      {"table:aa_dst", kLockRankTable, /*allows_io=*/true},
      {"table:zz_src", kLockRankTable, /*allows_io=*/true},
  };
  auto edge = [&g](size_t from, size_t to, const char* from_site, const char* to_site) {
    LockEdge e;
    e.from = from;
    e.to = to;
    e.from_site = from_site;
    e.to_site = to_site;
    e.count = 1;
    g.edges.push_back(e);
  };
  edge(0, 1, "lane1:copy", "lane1:copy");      // canonical direction
  edge(1, 0, "lane2:insert", "lane2:insert");  // inverted: closes the cycle
  LockViolation upgrade;
  upgrade.kind = LockViolationKind::kUpgrade;
  upgrade.held_lock = "table:aa_dst";
  upgrade.held_site = "lane3:scan";
  upgrade.held_mode = LockMode::kShared;
  upgrade.acquired_lock = "table:aa_dst";
  upgrade.acquired_site = "lane3:mutate";
  upgrade.acquired_mode = LockMode::kExclusive;
  g.violations.push_back(upgrade);
  g.acquisitions = 6;
  int errors = Report("lock-order: seeded inverted acquisition + upgrade + cycle",
                      AnalyzeLockOrder(g));
  std::printf("%s\n", LockGraphToDot(g).c_str());
  return errors;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario = argc > 1 ? argv[1] : "tpcw";
  int errors = 0;
  bool known = false;
  if (scenario == "tpcw" || scenario == "all") {
    errors += LintTpcw();
    known = true;
  }
  if (scenario == "bookstore" || scenario == "all") {
    errors += LintBookstore();
    known = true;
  }
  if (scenario == "bad-fd" || scenario == "all") {
    errors += LintBadFd();
    known = true;
  }
  if (scenario == "bad-split" || scenario == "all") {
    errors += LintBadSplit();
    known = true;
  }
  if (scenario == "bad-query" || scenario == "all") {
    errors += LintBadQuery();
    known = true;
  }
  if (scenario == "dead-op" || scenario == "all") {
    errors += LintDeadOp();
    known = true;
  }
  if (scenario == "lossy-combine" || scenario == "all") {
    errors += LintLossyCombine();
    known = true;
  }
  if (scenario == "lock-order" || scenario == "all") {
    errors += LintLockOrder();
    known = true;
  }
  if (!known) {
    std::fprintf(stderr,
                 "unknown scenario '%s' (expected tpcw, bookstore, bad-fd, bad-split, "
                 "bad-query, dead-op, lossy-combine, lock-order, or all)\n",
                 scenario.c_str());
    return 2;
  }
  return errors > 100 ? 100 : errors;
}
