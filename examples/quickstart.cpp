// Quickstart: the whole ProgSchema pipeline on a toy bookstore, in ~100
// lines of API use:
//   1. declare the logical schema (entities / attributes / relationships),
//   2. declare the source and object physical schemas,
//   3. derive the basic operator set from the schema mapping,
//   4. load data, run a query, migrate one operator at a time, and show the
//      query still answers identically on every intermediate schema.
#include <cstdio>

#include "core/logical_database.h"
#include "core/mapping.h"
#include "core/migration_executor.h"
#include "core/rewriter.h"
#include "engine/executor.h"
#include "engine/planner.h"

using namespace pse;

#define CHECK_OK(expr)                                             \
  do {                                                             \
    ::pse::Status _st = (expr);                                    \
    if (!_st.ok()) {                                               \
      std::fprintf(stderr, "FAILED: %s\n", _st.ToString().c_str()); \
      return 1;                                                    \
    }                                                              \
  } while (0)

int main() {
  // 1. Logical schema: books reference authors; the new application version
  //    adds a book abstract (an object-schema-only attribute).
  LogicalSchema logical;
  EntityId author = logical.AddEntity("author", "a_id");
  EntityId book = logical.AddEntity("book", "b_id");
  AttrId a_name = *logical.AddAttribute(author, "a_name", TypeId::kVarchar, 16);
  AttrId b_title = *logical.AddAttribute(book, "b_title", TypeId::kVarchar, 24);
  AttrId b_a_id = *logical.AddForeignKey(book, "b_a_id", author);
  AttrId b_abstract =
      *logical.AddAttribute(book, "b_abstract", TypeId::kVarchar, 60, /*is_new=*/true);

  // 2. Physical schemas: normalized source; denormalized "glossary" object.
  PhysicalSchema source(&logical);
  CHECK_OK(source.AddTable("author", author, {a_name}));
  CHECK_OK(source.AddTable("book", book, {b_title, b_a_id}));
  PhysicalSchema object(&logical);
  CHECK_OK(object.AddTable("glossary", book, {b_title, b_a_id, a_name, b_abstract}));

  // 3. Operator set: one CreateTable (abstract) + two CombineTable steps.
  auto opset = ComputeOperatorSet(source, object);
  CHECK_OK(opset.status());
  std::printf("Derived operator set:\n%s\n", opset->ToString(logical).c_str());

  // 4. Data, migration, and the invariant.
  LogicalDatabase data(&logical);
  for (int a = 0; a < 3; ++a) {
    CHECK_OK(data.AddRow(author, {Value::Int(a), Value::Varchar("author-" + std::to_string(a))}));
  }
  for (int b = 0; b < 9; ++b) {
    CHECK_OK(data.AddRow(book, {Value::Int(b), Value::Varchar("title-" + std::to_string(b)),
                                Value::Int(b % 3),
                                Value::Varchar("abstract-" + std::to_string(b))}));
  }

  Database db(256);
  CHECK_OK(data.Materialize(&db, source));
  PhysicalSchema current = source;
  MigrationExecutor executor(&db, &data);

  // The old application's query, written once against logical attributes.
  LogicalQuery q;
  q.anchor = book;
  q.name = "book-with-author";
  q.select.emplace_back(Col("b_title"), AggFunc::kNone, "title");
  q.select.emplace_back(Col("a_name"), AggFunc::kNone, "author");
  q.filters.push_back(Cmp(CompareOp::kLt, Col("b_id"), Const(Value::Int(3))));

  auto run_query = [&]() -> int {
    auto bound = RewriteQuery(q, current);
    CHECK_OK(bound.status());
    DatabaseCatalogView view(&db);
    auto plan = PlanQuery(*bound, view);
    CHECK_OK(plan.status());
    auto rows = ExecutePlan(**plan, &db);
    CHECK_OK(rows.status());
    std::printf("  query '%s' -> %zu rows:", q.name.c_str(), rows->size());
    for (const auto& row : *rows) std::printf(" %s", RowToString(row).c_str());
    std::printf("\n");
    return 0;
  };

  std::printf("On the source schema:\n");
  if (run_query() != 0) return 1;

  auto order = opset->TopologicalOrder();
  CHECK_OK(order.status());
  for (int i : *order) {
    const MigrationOperator& op = opset->ops[static_cast<size_t>(i)];
    auto io = executor.Apply(op, &current);
    CHECK_OK(io.status());
    std::printf("\nApplied %s (%llu pages of data movement); schema is now:\n%s",
                op.ToString(logical).c_str(), static_cast<unsigned long long>(*io),
                current.ToString().c_str());
    if (run_query() != 0) return 1;  // identical rows on every intermediate
  }

  std::printf("\nMigration complete; schema %s the object schema.\n",
              current.EquivalentTo(object) ? "matches" : "DOES NOT match");
  return 0;
}
