// Workload-driven physical design (the paper's Section VI future work):
// given a workload mix, ask the advisor for the best schema reachable by
// the basic operators, then plan the migration to it with GAA.
//
// Usage: design_advisor [phase (0-4, default 4: the new-version-heavy mix)]
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "core/mapping.h"
#include "core/schema_advisor.h"

using namespace pse;

int main(int argc, char** argv) {
  size_t phase = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;
  if (phase > 4) phase = 4;

  bench::TpcwInstance inst = bench::MakeInstance("100mb");
  LogicalStats stats = inst.data->ComputeStats();
  auto freqs = Fig9IrregularFrequencies();

  std::printf("Designing for the P%zu-P%zu workload mix...\n\n", phase, phase + 1);
  auto advised = AdviseSchema(inst.schema->source, stats, inst.queries, freqs[phase]);
  if (!advised.ok()) {
    std::fprintf(stderr, "%s\n", advised.status().ToString().c_str());
    return 1;
  }

  CostOptions pricing;
  pricing.fallback_schema = &inst.schema->object;
  auto source_cost =
      EstimateWorkloadCost(inst.schema->source, stats, inst.queries, freqs[phase], pricing);
  auto object_cost =
      EstimateWorkloadCost(inst.schema->object, stats, inst.queries, freqs[phase], pricing);
  std::printf("estimated phase cost:\n");
  std::printf("  source schema (normalized TPC-W):   %10.0f\n",
              source_cost.ok() ? *source_cost : -1.0);
  std::printf("  object schema (new app's target):   %10.0f\n",
              object_cost.ok() ? *object_cost : -1.0);
  std::printf("  advisor's design:                   %10.0f  (%zu improving steps, %zu "
              "candidates scored)\n\n",
              advised->final_cost, advised->steps.size(), advised->candidates_evaluated);

  std::printf("recommended design:\n%s\n", advised->schema.ToString().c_str());

  // The recommendation is itself a migration target: derive the operator
  // set and let GAA schedule it over 3 migration points with the regular
  // workload trend.
  auto opset = ComputeOperatorSet(inst.schema->source, advised->schema);
  if (!opset.ok()) {
    std::fprintf(stderr, "operator set: %s\n", opset.status().ToString().c_str());
    return 1;
  }
  std::printf("migration to the recommendation takes %zu basic operators:\n%s\n", opset->size(),
              opset->ToString(inst.schema->logical).c_str());

  auto trend = RegularFrequencies(3);
  std::vector<LogicalStats> phase_stats{stats};
  MigrationContext ctx;
  ctx.current = &inst.schema->source;
  ctx.object = &advised->schema;
  ctx.opset = &*opset;
  ctx.applied.assign(opset->size(), false);
  ctx.phase_freqs = &trend;
  ctx.phase_stats = &phase_stats;
  ctx.queries = &inst.queries;
  GaaOptions options;
  options.ga.population_size = 32;
  options.ga.generations = 40;
  auto gaa = PlanGaa(ctx, 0, options);
  if (gaa.ok()) {
    std::printf("GAA schedule toward the recommendation (predicted cost %.0f):\n",
                gaa->best_cost);
    for (size_t off = 0; off <= trend.size(); ++off) {
      bool any = false;
      for (size_t i = 0; i < gaa->assignment.size(); ++i) {
        if (gaa->assignment[i] == static_cast<int>(off)) {
          if (!any) {
            std::printf(off < trend.size() ? "  point %zu:\n" : "  completion:\n", off);
          }
          any = true;
          int op = gaa->remaining_ops[i];
          std::printf("    %s\n",
                      opset->ops[static_cast<size_t>(op)].ToString(inst.schema->logical).c_str());
        }
      }
    }
  }
  return 0;
}
