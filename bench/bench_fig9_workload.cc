// Reproduces Fig 9: the irregular workload-frequency table between
// migration points (the 5-point table verbatim from the paper), plus the
// derived 3-point irregular and the regular (determinate-rate) schedules.
#include <cstdio>

#include "tpcw/queries.h"
#include "tpcw/workloads.h"

int main() {
  using namespace pse;
  std::printf("=== Fig 9: workload frequency between migration points (irregular, 5 points; "
              "verbatim) ===\n%s\n",
              FrequenciesToTable(Fig9IrregularFrequencies()).c_str());
  std::printf("--- irregular, 3 points (subsampled, volume-preserving) ---\n%s\n",
              FrequenciesToTable(IrregularFrequencies(3)).c_str());
  std::printf("--- regular (determinate rate), 5 points ---\n%s\n",
              FrequenciesToTable(RegularFrequencies(5)).c_str());

  std::printf("--- the twenty queries (O = old version on source schema, N = new version on "
              "object schema) ---\n");
  for (const auto& [name, sql] : TpcwOldQuerySql()) {
    std::printf("%-4s %s\n", name.c_str(), sql.c_str());
  }
  for (const auto& [name, sql] : TpcwNewQuerySql()) {
    std::printf("%-4s %s\n", name.c_str(), sql.c_str());
  }
  return 0;
}
