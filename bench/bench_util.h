// Shared plumbing for the figure-reproduction benches.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "core/simulation.h"
#include "tpcw/datagen.h"
#include "tpcw/queries.h"
#include "tpcw/schema.h"
#include "tpcw/workloads.h"

namespace pse {
namespace bench {

/// Everything one experiment instance needs.
struct TpcwInstance {
  std::unique_ptr<TpcwSchema> schema;
  std::unique_ptr<LogicalDatabase> data;
  std::vector<WorkloadQuery> queries;
  TpcwScale scale;
};

inline TpcwInstance MakeInstance(const std::string& scale_name, uint64_t seed = 42) {
  TpcwInstance inst;
  inst.schema = BuildTpcwSchema();
  inst.scale = ResolveScale(scale_name);
  inst.data = GenerateTpcwData(*inst.schema, inst.scale, seed);
  auto workload = BuildTpcwWorkload(*inst.schema);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload build failed: %s\n", workload.status().ToString().c_str());
    std::exit(1);
  }
  inst.queries = std::move(*workload);
  return inst;
}

inline SimulationConfig DefaultConfig(PlannerKind planner) {
  SimulationConfig config;
  config.planner = planner;
  config.buffer_pool_pages = 1024;  // deliberately smaller than the data
  config.gaa.ga.population_size = 32;
  config.gaa.ga.generations = 40;
  config.gaa.ga.stall_generations = 12;
  return config;
}

/// Prints the per-phase comparison table used by Fig 8(a)-(d).
inline void PrintPhaseCostTable(const SituationReport& opt, const SituationReport& pro,
                                const SituationReport& obj) {
  std::printf("%-8s %14s %14s %14s %9s %9s\n", "Phase", "Opt-Schema", "Pro-Schema",
              "Obj-Schema", "Pro/Opt", "Obj/Pro");
  for (size_t p = 0; p < opt.phases.size(); ++p) {
    double o = opt.phases[p].query_cost;
    double pr = pro.phases[p].query_cost;
    double ob = obj.phases[p].query_cost;
    std::printf("P%zu-P%zu   %14.0f %14.0f %14.0f %9.2f %9.2f\n", p, p + 1, o, pr, ob,
                o > 0 ? pr / o : 0.0, pr > 0 ? ob / pr : 0.0);
  }
  double o = opt.OverallCost(), pr = pro.OverallCost(), ob = obj.OverallCost();
  std::printf("%-8s %14.0f %14.0f %14.0f %9.2f %9.2f\n", "Overall", o, pr, ob,
              o > 0 ? pr / o : 0.0, pr > 0 ? ob / pr : 0.0);
  std::printf("Pro-Schema migration I/O: %.0f pages (incl. final completion %.0f)\n",
              pro.TotalMigrationIo(), pro.final_migration_io);
  std::printf("Gain of Pro over Obj (the paper's 'existing system'): %.0f%%\n",
              pr > 0 ? (ob / pr - 1.0) * 100.0 : 0.0);
}

}  // namespace bench
}  // namespace pse
