// Cost-model validation: for each of the 20 TPC-W queries, the analytical
// estimate vs the actual measured I/O on both endpoint schemas. The paper's
// method trusts MaxDB's optimizer estimates to pick intermediate schemas;
// this bench shows our substitute estimator tracks reality (rank-wise).
#include <algorithm>
#include <cmath>

#include "bench/bench_util.h"
#include "core/rewriter.h"
#include "core/virtual_catalog.h"
#include "engine/cost_model.h"
#include "engine/executor.h"
#include "engine/planner.h"

namespace pse {
namespace {

struct QueryCosts {
  double est_source = -1, act_source = -1;
  double est_object = -1, act_object = -1;
};

double EstimateOn(const LogicalQuery& q, const PhysicalSchema& schema,
                  const LogicalStats& stats) {
  auto cost = EstimateQueryCost(q, schema, stats);
  return cost.ok() ? *cost : -1;
}

double MeasureOn(const LogicalQuery& q, const PhysicalSchema& schema, Database* db) {
  auto bound = RewriteQuery(q, schema);
  if (!bound.ok()) return -1;
  DatabaseCatalogView view(db);
  auto plan = PlanQuery(*bound, view);
  if (!plan.ok()) return -1;
  if (!db->pool()->EvictAll().ok()) return -1;
  uint64_t before = db->TotalIo();
  auto rows = ExecutePlan(**plan, db);
  if (!rows.ok()) return -1;
  return static_cast<double>(db->TotalIo() - before);
}

}  // namespace
}  // namespace pse

int main() {
  using namespace pse;
  bench::TpcwInstance inst = bench::MakeInstance("100mb");
  LogicalStats stats = inst.data->ComputeStats();

  Database source_db(1024), object_db(1024);
  if (!inst.data->Materialize(&source_db, inst.schema->source).ok() ||
      !inst.data->Materialize(&object_db, inst.schema->object).ok()) {
    std::fprintf(stderr, "materialization failed\n");
    return 1;
  }

  std::printf("=== Cost estimator validation, %s (pages of I/O; -1 = not servable) ===\n",
              inst.scale.label.c_str());
  std::printf("%-5s %12s %12s %12s %12s %10s\n", "Query", "est(src)", "act(src)", "est(obj)",
              "act(obj)", "native");
  std::vector<double> est_all, act_all;
  for (const auto& wq : inst.queries) {
    QueryCosts c;
    c.est_source = EstimateOn(wq.query, inst.schema->source, stats);
    c.act_source = MeasureOn(wq.query, inst.schema->source, &source_db);
    c.est_object = EstimateOn(wq.query, inst.schema->object, stats);
    c.act_object = MeasureOn(wq.query, inst.schema->object, &object_db);
    std::printf("%-5s %12.0f %12.0f %12.0f %12.0f %10s\n", wq.query.name.c_str(), c.est_source,
                c.act_source, c.est_object, c.act_object, wq.is_old ? "source" : "object");
    for (double e : {c.est_source, c.est_object}) {
      if (e >= 0) est_all.push_back(e);
    }
    for (double a : {c.act_source, c.act_object}) {
      if (a >= 0) act_all.push_back(a);
    }
  }
  // Rank correlation (Spearman) between estimates and measurements.
  if (est_all.size() == act_all.size() && est_all.size() > 2) {
    auto ranks = [](std::vector<double> v) {
      std::vector<size_t> idx(v.size());
      for (size_t i = 0; i < v.size(); ++i) idx[i] = i;
      std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) { return v[a] < v[b]; });
      std::vector<double> r(v.size());
      for (size_t i = 0; i < idx.size(); ++i) r[idx[i]] = static_cast<double>(i);
      return r;
    };
    std::vector<double> re = ranks(est_all), ra = ranks(act_all);
    double n = static_cast<double>(re.size());
    double d2 = 0;
    for (size_t i = 0; i < re.size(); ++i) d2 += (re[i] - ra[i]) * (re[i] - ra[i]);
    double rho = 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
    std::printf("\nSpearman rank correlation (estimate vs actual): %.3f over %zu points\n", rho,
                re.size());
  }
  return 0;
}
