// Reproduces Fig 7 (the schema instance): prints the TPC-W source and
// object schemas, the schema mapping's derived operator set with its
// dependency DAG, and per-table size estimates at the default scale.
#include "bench/bench_util.h"
#include "core/mapping.h"
#include "core/virtual_catalog.h"
#include "engine/cost_model.h"

int main() {
  using namespace pse;
  auto schema = BuildTpcwSchema();
  TpcwScale scale = ResolveScale("100mb");
  auto data = GenerateTpcwData(*schema, scale, 42);
  LogicalStats stats = data->ComputeStats();

  std::printf("=== Fig 7: TPC-W schema instance (%s) ===\n\n", scale.label.c_str());
  auto print_schema = [&](const char* title, const PhysicalSchema& phys) {
    std::printf("--- %s ---\n", title);
    VirtualSchemaCatalog catalog(&phys, &stats);
    for (size_t i = 0; i < phys.tables().size(); ++i) {
      const PhysicalTable& t = phys.tables()[i];
      auto table_stats = catalog.GetStats(t.name);
      std::printf("%-18s anchor=%-11s rows=%-9llu pages=%-6.0f cols=%zu\n", t.name.c_str(),
                  schema->logical.entity(t.anchor).name.c_str(),
                  table_stats.ok() ? static_cast<unsigned long long>((*table_stats)->row_count)
                                   : 0ull,
                  table_stats.ok() ? CostModel::TablePages(**table_stats) : 0.0,
                  t.attrs.size());
    }
    std::printf("%s\n", phys.ToString().c_str());
  };
  print_schema("source schema (old application version)", schema->source);
  print_schema("object schema (new application version)", schema->object);

  auto opset = ComputeOperatorSet(schema->source, schema->object);
  if (!opset.ok()) {
    std::fprintf(stderr, "operator set failed: %s\n", opset.status().ToString().c_str());
    return 1;
  }
  std::printf("--- derived basic operator set (%zu operators) ---\n%s", opset->size(),
              opset->ToString(schema->logical).c_str());

  std::printf("\n--- DDL of both schema versions ---\n");
  for (const PhysicalSchema* phys : {&schema->source, &schema->object}) {
    for (size_t i = 0; i < phys->tables().size(); ++i) {
      std::printf("%s;\n", phys->ToTableSchema(i).ToDdl().c_str());
    }
    std::printf("\n");
  }
  return 0;
}
