// Reproduces Fig 8(a)-(d): Phase-Cost of Opt-Schema / Pro-Schema (LAA) /
// Obj-Schema under the irregular-frequency workload, for {5, 3} migration
// points x {100MB, 1GB} databases.
//
// Usage: bench_fig8_phase_cost [--points=3|5] [--scale=100mb|1gb]
// Without flags, all four paper configurations run. Set PSE_FULL_SCALE=1
// for the paper's raw data sizes (defaults are a 1:20 scale-down; costs are
// page counts and scale linearly, so the figure *shapes* are unchanged).
#include <cstring>

#include "bench/bench_util.h"

namespace pse {
namespace {

void RunOne(const std::string& scale_name, size_t points, char figure) {
  bench::TpcwInstance inst = bench::MakeInstance(scale_name);
  auto freqs = IrregularFrequencies(points);
  SimulationConfig config = bench::DefaultConfig(PlannerKind::kLaa);

  std::printf("=== Fig 8(%c): Phase-Cost, LAA, %zu migration points, %s, irregular ===\n",
              figure, points, inst.scale.label.c_str());
  Stopwatch timer;
  MigrationSimulation sim(&inst.schema->source, &inst.schema->object, &inst.queries, freqs,
                          inst.data.get(), config);
  auto opt = sim.Run(Situation::kOptSchema);
  auto pro = sim.Run(Situation::kProSchema);
  auto obj = sim.Run(Situation::kObjSchema);
  if (!opt.ok() || !pro.ok() || !obj.ok()) {
    std::fprintf(stderr, "simulation failed: %s %s %s\n", opt.status().ToString().c_str(),
                 pro.status().ToString().c_str(), obj.status().ToString().c_str());
    std::exit(1);
  }
  bench::PrintPhaseCostTable(*opt, *pro, *obj);
  std::printf("(wall time %.1fs, LAA schemas estimated: %zu)\n\n", timer.ElapsedSeconds(),
              sim.last_planner_evaluations());
}

}  // namespace
}  // namespace pse

int main(int argc, char** argv) {
  std::string scale;
  size_t points = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--points=", 9) == 0) points = std::stoul(argv[i] + 9);
    if (std::strncmp(argv[i], "--scale=", 8) == 0) scale = argv[i] + 8;
  }
  if (points != 0 && !scale.empty()) {
    char figure = points == 5 ? (scale == "1gb" ? 'b' : 'a') : (scale == "1gb" ? 'd' : 'c');
    pse::RunOne(scale, points, figure);
    return 0;
  }
  pse::RunOne("100mb", 5, 'a');
  pse::RunOne("1gb", 5, 'b');
  pse::RunOne("100mb", 3, 'c');
  pse::RunOne("1gb", 3, 'd');
  return 0;
}
