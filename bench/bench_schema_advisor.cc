// Future-work extension (Section VI): workload-driven physical design,
// free of the object-schema target. For each stage of the migration window
// this bench asks the advisor for the best design reachable by the basic
// operators and compares it against both endpoint schemas — showing that
// the paper's intermediate schemas are not a compromise but often the
// genuine optimum for the mixed workload.
#include "bench/bench_util.h"
#include "core/schema_advisor.h"

int main() {
  using namespace pse;
  bench::TpcwInstance inst = bench::MakeInstance("100mb");
  LogicalStats stats = inst.data->ComputeStats();
  auto freqs = Fig9IrregularFrequencies();

  std::printf("=== Workload-driven schema design (the paper's future work) ===\n");
  std::printf("Costs are estimated C(S) = sum C_i x F_i for the given phase mix.\n\n");
  std::printf("%-8s %12s %12s %12s %8s %8s %s\n", "Mix", "C(source)", "C(object)",
              "C(advised)", "steps", "tables", "advised == object?");

  const size_t mixes[] = {0, 2, 4};
  for (size_t p : mixes) {
    CostOptions pricing;
    pricing.fallback_schema = &inst.schema->object;
    auto source_cost =
        EstimateWorkloadCost(inst.schema->source, stats, inst.queries, freqs[p], pricing);
    auto object_cost =
        EstimateWorkloadCost(inst.schema->object, stats, inst.queries, freqs[p], pricing);
    auto advised = AdviseSchema(inst.schema->source, stats, inst.queries, freqs[p]);
    if (!source_cost.ok() || !object_cost.ok() || !advised.ok()) {
      std::fprintf(stderr, "failed: %s\n", advised.status().ToString().c_str());
      return 1;
    }
    std::printf("P%zu-P%zu   %12.0f %12.0f %12.0f %8zu %8zu %s\n", p, p + 1, *source_cost,
                *object_cost, advised->final_cost, advised->steps.size(),
                advised->schema.tables().size(),
                advised->schema.EquivalentTo(inst.schema->object) ? "yes" : "no");
  }

  // Show the design the advisor picks for the final (new-dominated) mix.
  auto final_design = AdviseSchema(inst.schema->source, stats, inst.queries, freqs[4]);
  if (final_design.ok()) {
    std::printf("\nAdvised design for the P4-P5 mix (%zu candidate evaluations):\n%s",
                final_design->candidates_evaluated, final_design->schema.ToString().c_str());
    std::printf("Steps taken:\n");
    for (const auto& step : final_design->steps) {
      std::printf("  %-55s %10.0f -> %.0f\n",
                  step.op.ToString(inst.schema->logical).c_str(), step.cost_before,
                  step.cost_after);
    }
  }
  return 0;
}
