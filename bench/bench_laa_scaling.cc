// The paper's complexity argument made observable: LAA's exhaustive search
// estimates O(2^m) candidate schemas per migration point, while GAA's
// population x generations budget is flat — and the operator-interaction
// analysis (src/analysis/interaction.h) collapses the exhaustive sweep to a
// sum of per-cluster enumerations while staying exact.
//
// Two synthetic families are swept:
//   independent  m entities, one 2-attr split each — m singleton clusters,
//                so pruning turns 2^m into m*2 + 1.
//   clustered    4 entities x 5 attrs, object = single-attr fragments — 4
//                interference clusters of 4 dependency-free splits each
//                (m = 16), the acceptance shape for pruned LAA.
//
// For each point the bench runs pruned LAA, brute-force LAA (where feasible),
// and GAA, checks the pruned and brute costs agree, and prints a table.
// --json=PATH additionally emits machine-readable rows (BENCH_laa_scaling.json
// via scripts/bench.sh).
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "core/mapping.h"
#include "core/migration_executor.h"
#include "core/serving.h"
#include "core/simulation.h"
#include "engine/cost_cache.h"

namespace pse {
namespace {

/// Synthetic universe builder output.
struct Synthetic {
  std::unique_ptr<LogicalSchema> logical;
  PhysicalSchema source, object;
  LogicalStats stats;
  std::vector<WorkloadQuery> queries;
  std::unique_ptr<LogicalDatabase> data;  ///< filled by FillData for online runs
};

void FillStats(Synthetic* s) {
  s->stats.Resize(*s->logical);
  for (size_t e = 0; e < s->logical->num_entities(); ++e) s->stats.entity_rows[e] = 10000;
  for (size_t a = 0; a < s->logical->num_attributes(); ++a) {
    s->stats.attrs[a].num_distinct = 10000;
    s->stats.attrs[a].min = 0;
    s->stats.attrs[a].max = 9999;
  }
}

/// `m` independent entities, each with two attributes; the object schema
/// splits every entity's table, giving exactly m independent split operators.
Synthetic MakeIndependent(size_t m) {
  Synthetic s;
  s.logical = std::make_unique<LogicalSchema>();
  s.source = PhysicalSchema(s.logical.get());
  s.object = PhysicalSchema(s.logical.get());
  for (size_t i = 0; i < m; ++i) {
    std::string n = std::to_string(i);
    EntityId e = s.logical->AddEntity("e" + n, "e" + n + "_id");
    AttrId a = *s.logical->AddAttribute(e, "e" + n + "_a", TypeId::kVarchar, 40);
    AttrId b = *s.logical->AddAttribute(e, "e" + n + "_b", TypeId::kVarchar, 40);
    (void)s.source.AddTable("t" + n, e, {a, b});
    (void)s.object.AddTable("t" + n + "_a", e, {a});
    (void)s.object.AddTable("t" + n + "_b", e, {b});
    // One old query per entity wanting both halves; one new wanting one.
    LogicalQuery old_q;
    old_q.anchor = e;
    old_q.name = "O" + n;
    old_q.select.emplace_back(Col("e" + n + "_a"), AggFunc::kNone, "a");
    old_q.select.emplace_back(Col("e" + n + "_b"), AggFunc::kNone, "b");
    s.queries.emplace_back(std::move(old_q), true);
    LogicalQuery new_q;
    new_q.anchor = e;
    new_q.name = "N" + n;
    new_q.select.emplace_back(Col("e" + n + "_a"), AggFunc::kNone, "a");
    s.queries.emplace_back(std::move(new_q), false);
  }
  FillStats(&s);
  return s;
}

/// `entities` entities with `attrs_per_entity` attributes each; the object
/// schema shatters every table into single-attribute fragments. All splits
/// of one entity share the source table, so each entity is one interference
/// cluster of attrs_per_entity - 1 dependency-free splits.
Synthetic MakeClustered(size_t entities, size_t attrs_per_entity) {
  Synthetic s;
  s.logical = std::make_unique<LogicalSchema>();
  s.source = PhysicalSchema(s.logical.get());
  s.object = PhysicalSchema(s.logical.get());
  for (size_t i = 0; i < entities; ++i) {
    std::string n = std::to_string(i);
    EntityId e = s.logical->AddEntity("c" + n, "c" + n + "_id");
    std::vector<AttrId> attrs;
    for (size_t j = 0; j < attrs_per_entity; ++j) {
      std::string an = "c" + n + "_x" + std::to_string(j);
      attrs.push_back(*s.logical->AddAttribute(e, an, TypeId::kVarchar, 40));
      (void)s.object.AddTable("t" + n + "_" + std::to_string(j), e, {attrs.back()});
    }
    (void)s.source.AddTable("t" + n, e, attrs);
    // Old query reads the whole row; new query reads the first two attrs.
    LogicalQuery old_q;
    old_q.anchor = e;
    old_q.name = "O" + n;
    for (size_t j = 0; j < attrs_per_entity; ++j) {
      std::string an = "c" + n + "_x" + std::to_string(j);
      old_q.select.emplace_back(Col(an), AggFunc::kNone, an);
    }
    s.queries.emplace_back(std::move(old_q), true);
    LogicalQuery new_q;
    new_q.anchor = e;
    new_q.name = "N" + n;
    for (size_t j = 0; j < 2 && j < attrs_per_entity; ++j) {
      std::string an = "c" + n + "_x" + std::to_string(j);
      new_q.select.emplace_back(Col(an), AggFunc::kNone, an);
    }
    s.queries.emplace_back(std::move(new_q), false);
  }
  FillStats(&s);
  return s;
}

/// Populates `rows` entity rows per entity so the online-migration
/// simulation has real data to move (the planner sweeps above only need
/// statistics, not rows).
void FillData(Synthetic* s, size_t rows) {
  s->data = std::make_unique<LogicalDatabase>(s->logical.get());
  for (size_t e = 0; e < s->logical->num_entities(); ++e) {
    const LogicalEntity& ent = s->logical->entity(e);
    for (size_t k = 0; k < rows; ++k) {
      Row row;
      for (AttrId a : ent.attributes) {
        const LogicalAttribute& attr = s->logical->attr(a);
        row.push_back(attr.is_key ? Value::Int(static_cast<int64_t>(k))
                                  : Value::Varchar(attr.name + "-" + std::to_string(k)));
      }
      (void)s->data->AddRow(static_cast<EntityId>(e), std::move(row));
    }
  }
}

/// One (configuration, phase) measurement of the online-migration mode:
/// batched data movement with foreground probe queries interleaved between
/// batches (the paper's "both versions stay live" scenario).
struct OnlineRow {
  uint64_t batch_rows = 0;
  uint64_t io_budget = 0;
  size_t phase = 0;
  double query_cost = 0;    ///< the phase's Phase-Cost (sum C_i * F_i)
  double migration_io = 0;  ///< data-movement I/O at this migration point
  double probe_io = 0;      ///< I/O of probe queries run between batches
  uint64_t batches = 0;     ///< migration batches committed this phase
  uint64_t probes = 0;      ///< probe queries executed this phase
};

/// Runs the Pro-Schema situation online over a small independent instance
/// for each (batch size, I/O budget) configuration.
int RunOnline(std::vector<OnlineRow>* out) {
  Synthetic s = MakeIndependent(4);
  FillData(&s, 512);
  std::vector<std::vector<double>> freqs(3, std::vector<double>(s.queries.size()));
  for (size_t p = 0; p < 3; ++p) {
    for (size_t q = 0; q < s.queries.size(); ++q) {
      bool old_q = s.queries[q].is_old;
      freqs[p][q] = old_q ? 30.0 - 10.0 * static_cast<double>(p)
                          : 10.0 + 10.0 * static_cast<double>(p);
    }
  }
  struct Cfg {
    uint64_t batch_rows, io_budget;
  };
  for (Cfg cfg : {Cfg{64, 0}, Cfg{256, 0}, Cfg{64, 64}}) {
    SimulationConfig config;
    config.buffer_pool_pages = 256;
    config.online_migration = true;
    config.migration_batch_rows = cfg.batch_rows;
    config.migration_io_budget = cfg.io_budget;
    MigrationSimulation sim(&s.source, &s.object, &s.queries, freqs, s.data.get(), config);
    auto pro = sim.Run(Situation::kProSchema);
    if (!pro.ok()) {
      std::fprintf(stderr, "online Pro: %s\n", pro.status().ToString().c_str());
      return 1;
    }
    for (size_t p = 0; p < pro->phases.size(); ++p) {
      const PhaseReport& ph = pro->phases[p];
      OnlineRow row;
      row.batch_rows = cfg.batch_rows;
      row.io_budget = cfg.io_budget;
      row.phase = p;
      row.query_cost = ph.query_cost;
      row.migration_io = ph.migration_io;
      row.probe_io = ph.online_probe_io;
      row.batches = ph.online_batches;
      row.probes = ph.online_probes;
      out->push_back(row);
    }
  }
  return 0;
}

/// One (session count, phase) measurement of concurrent mixed-version
/// serving: foreground SQL sessions execute the phase's query mix against
/// live snapshots while the migration executor moves data in batches.
struct ServeRow {
  size_t sessions = 0;
  size_t phase = 0;
  bool vectorized = false;   ///< sessions ran the vectorized batch engine
  uint64_t queries = 0;      ///< foreground queries answered this phase
  uint64_t unservable = 0;   ///< BindError on the intermediate (counted, not failed)
  uint64_t batches = 0;      ///< migration batches committed this phase
  double wall_ms = 0;        ///< serve-window wall clock
  double throughput_qps = 0; ///< answered queries / wall seconds
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;  ///< per-query latency quantiles
};

/// Runs the Pro-Schema situation with live concurrent sessions for each
/// (session count, engine) pair; every phase migrates under a real
/// mixed-version read load, once through the row iterators and once through
/// the vectorized batch engine.
int RunServe(std::vector<ServeRow>* out) {
  for (bool vectorized : {false, true}) {
    for (size_t sessions : {4u, 8u}) {
      Synthetic s = MakeIndependent(4);
      FillData(&s, 512);
      std::vector<std::vector<double>> freqs(3, std::vector<double>(s.queries.size()));
      for (size_t p = 0; p < 3; ++p) {
        for (size_t q = 0; q < s.queries.size(); ++q) {
          bool old_q = s.queries[q].is_old;
          freqs[p][q] = old_q ? 30.0 - 10.0 * static_cast<double>(p)
                              : 10.0 + 10.0 * static_cast<double>(p);
        }
      }
      SimulationConfig config;
      config.buffer_pool_pages = 256;
      config.migration_batch_rows = 64;
      config.serve_sessions = sessions;
      config.serve_min_queries = 8;
      config.vectorized_execution = vectorized;
      MigrationSimulation sim(&s.source, &s.object, &s.queries, freqs, s.data.get(), config);
      auto pro = sim.Run(Situation::kProSchema);
      if (!pro.ok()) {
        std::fprintf(stderr, "serve Pro: %s\n", pro.status().ToString().c_str());
        return 1;
      }
      for (size_t p = 0; p < pro->phases.size(); ++p) {
        const PhaseReport& ph = pro->phases[p];
        ServeRow row;
        row.sessions = sessions;
        row.phase = p;
        row.vectorized = vectorized;
        row.queries = ph.serve_queries;
        row.unservable = ph.serve_unservable;
        row.batches = ph.online_batches;
        row.wall_ms = ph.serve_wall_ms;
        row.throughput_qps = ph.serve_throughput_qps;
        row.p50_ms = ph.serve_p50_ms;
        row.p95_ms = ph.serve_p95_ms;
        row.p99_ms = ph.serve_p99_ms;
        out->push_back(row);
      }
    }
  }
  return 0;
}

/// One (session count, engine) measurement of mixed read/write serving:
/// lanes issue the query mix plus random DML from both version eras through
/// the DmlRouter while the executor migrates (writes landing on a live copy
/// frontier dual-apply into the in-flight targets).
struct MixedRwRow {
  size_t sessions = 0;
  double write_fraction = 0;
  bool vectorized = false;
  uint64_t queries = 0;            ///< foreground reads answered
  uint64_t writes = 0;             ///< foreground statements applied
  uint64_t unservable = 0;         ///< reads+writes skipped on the intermediate
  uint64_t unservable_writes = 0;  ///< the write share of `unservable`
  uint64_t errors = 0;             ///< non-bind failures (must stay 0)
  uint64_t fragment_writes = 0;    ///< physical row writes the fan-out did
  uint64_t dual_applied = 0;       ///< statements also applied to live targets
  double wall_ms = 0;
  double throughput_qps = 0;  ///< (queries + writes) / wall seconds
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;
};

/// Runs the full migration under a mixed read/write foreground load for each
/// (session count, engine) pair, routing every write through RewriteDml.
int RunMixedRw(std::vector<MixedRwRow>* out) {
  for (bool vectorized : {false, true}) {
    for (size_t sessions : {4u, 8u}) {
      Synthetic s = MakeIndependent(4);
      FillData(&s, 512);
      Database db(2048);
      if (!s.data->Materialize(&db, s.source).ok() || !db.AnalyzeAll().ok()) {
        std::fprintf(stderr, "mixed-rw: materialize failed\n");
        return 1;
      }
      PhysicalSchema current = s.source;
      ServingSchema serving(current);
      DmlRouter router(&db);

      MigrationExecutor exec(&db, s.data.get());
      MigrationOptions mopts;
      mopts.batch_rows = 64;
      mopts.dml_router = &router;
      mopts.on_publish = [&](const PhysicalSchema& sch) { serving.Publish(sch); };
      exec.set_options(std::move(mopts));

      auto opset = ComputeOperatorSet(s.source, s.object);
      if (!opset.ok()) {
        std::fprintf(stderr, "mixed-rw opset: %s\n", opset.status().ToString().c_str());
        return 1;
      }
      auto topo = opset->TopologicalOrder();
      if (!topo.ok()) {
        std::fprintf(stderr, "mixed-rw topo: %s\n", topo.status().ToString().c_str());
        return 1;
      }

      std::vector<VersionTable> tables = VersionTablesOf(s.source);
      {
        std::vector<VersionTable> object_tables = VersionTablesOf(s.object);
        tables.insert(tables.end(), object_tables.begin(), object_tables.end());
      }
      const LogicalSchema* lg = s.logical.get();
      ServeOptions serve;
      serve.sessions = sessions;
      serve.min_queries_per_lane = 32;
      serve.vectorized = vectorized;
      serve.router = &router;
      serve.write_fraction = 0.3;
      serve.make_write = [&tables, lg](uint64_t i, std::mt19937_64& rng) {
        LogicalDml dml;
        dml.table = tables[rng() % tables.size()];
        uint64_t roll = rng() % 10;
        dml.kind = roll < 5 ? DmlKind::kInsert : roll < 8 ? DmlKind::kUpdate : DmlKind::kDelete;
        // Early statements hit seeded rows (both sides of a copy frontier);
        // later ones append fresh keys.
        dml.key = static_cast<int64_t>(i < 16 ? rng() % 512 : 10000 + rng() % 4096);
        if (dml.kind != DmlKind::kDelete) {
          for (AttrId a : dml.table.attrs) {
            if (rng() % 2 != 0) continue;
            dml.set_attrs.push_back(a);
            dml.set_values.push_back(
                Value::Varchar(lg->attr(a).name + "-w" + std::to_string(rng() % 1000)));
          }
        }
        return dml;
      };

      std::vector<double> freqs(s.queries.size(), 10.0);
      auto metrics = ServeDuringMigration(&db, &serving, s.queries, freqs, serve,
                                          [&]() -> Status {
                                            for (int op : *topo) {
                                              auto io = exec.Apply(
                                                  opset->ops[static_cast<size_t>(op)], &current);
                                              if (!io.ok()) return io.status();
                                            }
                                            return Status::OK();
                                          });
      if (!metrics.ok()) {
        std::fprintf(stderr, "mixed-rw serve: %s\n", metrics.status().ToString().c_str());
        return 1;
      }
      MixedRwRow row;
      row.sessions = sessions;
      row.write_fraction = serve.write_fraction;
      row.vectorized = vectorized;
      row.queries = metrics->queries;
      row.writes = metrics->writes;
      row.unservable = metrics->unservable;
      row.unservable_writes = metrics->unservable_writes;
      row.errors = metrics->errors;
      row.fragment_writes = router.stats().fragment_writes;
      row.dual_applied = router.stats().dual_applied;
      row.wall_ms = metrics->wall_ms;
      row.throughput_qps = metrics->throughput_qps;
      row.p50_ms = metrics->p50_ms;
      row.p95_ms = metrics->p95_ms;
      row.p99_ms = metrics->p99_ms;
      out->push_back(row);
    }
  }
  return 0;
}

struct BenchRow {
  std::string family;
  size_t m = 0;
  size_t clusters = 0;
  size_t pruned_evals = 0;
  double pruned_ms = 0;
  double brute_closed = 0;  ///< closed subsets brute force would cost
  long long exhaustive_evals = -1;
  double exhaustive_ms = -1;
  bool exhaustive_run = false;
  bool cost_equal = true;
  size_t gaa_evals = 0;
  double gaa_ms = 0;
  /// Cached + pooled repeat of the row's most expensive serial sweep (the
  /// brute sweep when it ran, else the pruned one).
  double cached_ms = 0;
  double cache_hit_pct = 0;
  size_t threads = 1;
};

/// Runs pruned LAA, optionally brute-force LAA, and GAA on one instance.
int RunPoint(const std::string& family, Synthetic* s, bool run_exhaustive, BenchRow* row) {
  auto opset = ComputeOperatorSet(s->source, s->object);
  if (!opset.ok()) {
    std::fprintf(stderr, "opset: %s\n", opset.status().ToString().c_str());
    return 1;
  }
  std::vector<std::vector<double>> freqs(3, std::vector<double>(s->queries.size()));
  for (size_t p = 0; p < 3; ++p) {
    for (size_t q = 0; q < s->queries.size(); ++q) {
      bool old_q = s->queries[q].is_old;
      freqs[p][q] = old_q ? 30.0 - 10.0 * static_cast<double>(p)
                          : 10.0 + 10.0 * static_cast<double>(p);
    }
  }
  std::vector<LogicalStats> stats{s->stats};
  MigrationContext ctx;
  ctx.current = &s->source;
  ctx.object = &s->object;
  ctx.opset = &*opset;
  ctx.applied.assign(opset->size(), false);
  ctx.phase_freqs = &freqs;
  ctx.phase_stats = &stats;
  ctx.queries = &s->queries;

  row->family = family;
  row->m = opset->size();

  Stopwatch pruned_timer;
  auto pruned = SelectOpsLaa(ctx, 0, 0, /*max_ops=*/20);
  row->pruned_ms = pruned_timer.ElapsedSeconds() * 1000.0;
  if (!pruned.ok()) {
    std::fprintf(stderr, "pruned LAA: %s\n", pruned.status().ToString().c_str());
    return 1;
  }
  row->pruned_evals = pruned->schemas_evaluated;
  row->clusters = pruned->clusters.size();
  row->brute_closed = pruned->schemas_exhaustive;

  double serial_best = pruned->best_cost;
  if (run_exhaustive) {
    AnalysisOptions brute_options;
    brute_options.prune_laa = false;
    Stopwatch brute_timer;
    auto brute = SelectOpsLaa(ctx, 0, 0, /*max_ops=*/20, brute_options);
    row->exhaustive_ms = brute_timer.ElapsedSeconds() * 1000.0;
    if (!brute.ok()) {
      std::fprintf(stderr, "brute LAA: %s\n", brute.status().ToString().c_str());
      return 1;
    }
    row->exhaustive_run = true;
    row->exhaustive_evals = static_cast<long long>(brute->schemas_evaluated);
    double tol = 1e-6 * std::max(1.0, std::fabs(brute->best_cost));
    row->cost_equal = std::fabs(pruned->best_cost - brute->best_cost) <= tol;
    serial_best = brute->best_cost;
  }

  // Cached + pooled repeat of the row's most expensive serial sweep: same
  // enumeration, with candidate costing fanned across a thread pool and
  // memoized by layout fingerprint. The chosen plan's cost must be
  // bit-identical to the serial run (deterministic reduction, exact cache).
  {
    QueryCostCache cache;
    ThreadPool pool;
    AnalysisOptions cached_options;
    cached_options.prune_laa = !run_exhaustive;
    cached_options.cost_cache = &cache;
    cached_options.pool = &pool;
    auto cached = SelectOpsLaa(ctx, 0, 0, /*max_ops=*/20, cached_options);
    if (!cached.ok()) {
      std::fprintf(stderr, "cached LAA: %s\n", cached.status().ToString().c_str());
      return 1;
    }
    row->cached_ms = cached->wall_ms;
    row->cache_hit_pct = cached->cache_stats.hit_pct();
    row->threads = cached->threads;
    double tol = 1e-6 * std::max(1.0, std::fabs(serial_best));
    row->cost_equal = row->cost_equal && std::fabs(cached->best_cost - serial_best) <= tol;
  }

  GaaOptions options;
  options.ga.population_size = 32;
  options.ga.generations = 40;
  options.ga.stall_generations = 12;
  Stopwatch gaa_timer;
  auto gaa = PlanGaa(ctx, 0, options);
  row->gaa_ms = gaa_timer.ElapsedSeconds() * 1000.0;
  row->gaa_evals = gaa.ok() ? gaa->evaluations : 0;
  return 0;
}

void PrintRow(const BenchRow& r) {
  std::printf("%-12s %-4zu %8zu %13zu %16.0f", r.family.c_str(), r.m, r.clusters,
              r.pruned_evals, r.brute_closed);
  if (r.exhaustive_run) {
    std::printf(" %13lld %8s", r.exhaustive_evals, r.cost_equal ? "yes" : "NO");
  } else {
    std::printf(" %13s %8s", "-", r.cost_equal ? "yes" : "NO");
  }
  std::printf(" %10.1f %10.1f %10.1f %6.1f%% %4zu %12zu %10.1f\n", r.pruned_ms,
              r.exhaustive_run ? r.exhaustive_ms : 0.0, r.cached_ms, r.cache_hit_pct, r.threads,
              r.gaa_evals, r.gaa_ms);
}

void PrintOnline(const std::vector<OnlineRow>& rows) {
  std::printf(
      "\n=== online migration (Pro-Schema, m=4 independent, 512 rows/entity) ===\n"
      "%-10s %-9s %-5s %12s %12s %10s %8s %7s\n",
      "batch-rows", "io-budget", "phase", "query-cost", "migration-io", "probe-io", "batches",
      "probes");
  for (const OnlineRow& r : rows) {
    std::printf("%-10llu %-9llu %-5zu %12.1f %12.1f %10.1f %8llu %7llu\n",
                static_cast<unsigned long long>(r.batch_rows),
                static_cast<unsigned long long>(r.io_budget), r.phase, r.query_cost,
                r.migration_io, r.probe_io, static_cast<unsigned long long>(r.batches),
                static_cast<unsigned long long>(r.probes));
  }
}

void PrintServe(const std::vector<ServeRow>& rows) {
  std::printf(
      "\n=== concurrent serving (Pro-Schema, m=4 independent, 512 rows/entity) ===\n"
      "%-8s %-5s %-10s %8s %10s %8s %9s %10s %8s %8s %8s\n",
      "sessions", "phase", "engine", "queries", "unservable", "batches", "wall-ms", "thr-qps",
      "p50-ms", "p95-ms", "p99-ms");
  for (const ServeRow& r : rows) {
    std::printf("%-8zu %-5zu %-10s %8llu %10llu %8llu %9.1f %10.1f %8.2f %8.2f %8.2f\n",
                r.sessions, r.phase, r.vectorized ? "vectorized" : "row",
                static_cast<unsigned long long>(r.queries),
                static_cast<unsigned long long>(r.unservable),
                static_cast<unsigned long long>(r.batches), r.wall_ms, r.throughput_qps,
                r.p50_ms, r.p95_ms, r.p99_ms);
  }
}

void PrintMixedRw(const std::vector<MixedRwRow>& rows) {
  std::printf(
      "\n=== mixed read/write serving (Pro-Schema, m=4 independent, 512 rows/entity) ===\n"
      "%-8s %-6s %-10s %8s %7s %10s %8s %7s %9s %10s %8s %8s %8s\n",
      "sessions", "w-frac", "engine", "queries", "writes", "unservable", "unsrv-w", "errors",
      "wall-ms", "thr-qps", "p50-ms", "p95-ms", "p99-ms");
  for (const MixedRwRow& r : rows) {
    std::printf("%-8zu %-6.2f %-10s %8llu %7llu %10llu %8llu %7llu %9.1f %10.1f %8.2f %8.2f "
                "%8.2f\n",
                r.sessions, r.write_fraction, r.vectorized ? "vectorized" : "row",
                static_cast<unsigned long long>(r.queries),
                static_cast<unsigned long long>(r.writes),
                static_cast<unsigned long long>(r.unservable),
                static_cast<unsigned long long>(r.unservable_writes),
                static_cast<unsigned long long>(r.errors), r.wall_ms, r.throughput_qps, r.p50_ms,
                r.p95_ms, r.p99_ms);
  }
}

void WriteJson(const std::string& path, const std::vector<BenchRow>& rows,
               const std::vector<OnlineRow>& online, const std::vector<ServeRow>& serve,
               const std::vector<MixedRwRow>& mixed) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"laa_scaling\",\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    // Rows whose brute sweep was skipped carry JSON null — not a numeric
    // sentinel that downstream tooling could mistake for a measurement.
    std::string brute_evals = "null", brute_ms = "null";
    if (r.exhaustive_run) {
      brute_evals = std::to_string(r.exhaustive_evals);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f", r.exhaustive_ms);
      brute_ms = buf;
    }
    std::fprintf(f,
                 "    {\"family\": \"%s\", \"m\": %zu, \"clusters\": %zu, "
                 "\"schemas_evaluated_pruned\": %zu, \"schemas_exhaustive\": %.0f, "
                 "\"pruned_pct_of_exhaustive\": %.4f, "
                 "\"schemas_evaluated_brute_run\": %s, \"cost_equal_to_brute\": %s, "
                 "\"pruned_ms\": %.2f, \"exhaustive_ms\": %s, "
                 "\"cached_ms\": %.2f, \"cache_hit_pct\": %.1f, \"threads\": %zu, "
                 "\"gaa_evaluations\": %zu, \"gaa_ms\": %.2f}%s\n",
                 r.family.c_str(), r.m, r.clusters, r.pruned_evals, r.brute_closed,
                 r.brute_closed > 0
                     ? 100.0 * static_cast<double>(r.pruned_evals) / r.brute_closed
                     : 0.0,
                 brute_evals.c_str(),
                 r.exhaustive_run ? (r.cost_equal ? "true" : "false") : "null",
                 r.pruned_ms, brute_ms.c_str(), r.cached_ms, r.cache_hit_pct, r.threads,
                 r.gaa_evals, r.gaa_ms, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"online_migration\": [\n");
  for (size_t i = 0; i < online.size(); ++i) {
    const OnlineRow& r = online[i];
    std::fprintf(f,
                 "    {\"batch_rows\": %llu, \"io_budget\": %llu, \"phase\": %zu, "
                 "\"query_cost\": %.2f, \"migration_io\": %.2f, \"probe_io\": %.2f, "
                 "\"batches\": %llu, \"probes\": %llu}%s\n",
                 static_cast<unsigned long long>(r.batch_rows),
                 static_cast<unsigned long long>(r.io_budget), r.phase, r.query_cost,
                 r.migration_io, r.probe_io, static_cast<unsigned long long>(r.batches),
                 static_cast<unsigned long long>(r.probes), i + 1 < online.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"concurrent_serving\": [\n");
  for (size_t i = 0; i < serve.size(); ++i) {
    const ServeRow& r = serve[i];
    std::fprintf(f,
                 "    {\"sessions\": %zu, \"phase\": %zu, \"queries\": %llu, "
                 "\"unservable\": %llu, \"batches\": %llu, \"wall_ms\": %.2f, "
                 "\"throughput_qps\": %.2f, \"p50_ms\": %.3f, \"p95_ms\": %.3f, "
                 "\"p99_ms\": %.3f, \"vectorized\": %s}%s\n",
                 r.sessions, r.phase, static_cast<unsigned long long>(r.queries),
                 static_cast<unsigned long long>(r.unservable),
                 static_cast<unsigned long long>(r.batches), r.wall_ms, r.throughput_qps,
                 r.p50_ms, r.p95_ms, r.p99_ms, r.vectorized ? "true" : "false",
                 i + 1 < serve.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"mixed_rw_serving\": [\n");
  for (size_t i = 0; i < mixed.size(); ++i) {
    const MixedRwRow& r = mixed[i];
    std::fprintf(f,
                 "    {\"sessions\": %zu, \"write_fraction\": %.2f, \"queries\": %llu, "
                 "\"writes\": %llu, \"unservable\": %llu, \"unservable_writes\": %llu, "
                 "\"errors\": %llu, \"fragment_writes\": %llu, \"dual_applied\": %llu, "
                 "\"wall_ms\": %.2f, \"throughput_qps\": %.2f, \"p50_ms\": %.3f, "
                 "\"p95_ms\": %.3f, \"p99_ms\": %.3f, \"vectorized\": %s}%s\n",
                 r.sessions, r.write_fraction, static_cast<unsigned long long>(r.queries),
                 static_cast<unsigned long long>(r.writes),
                 static_cast<unsigned long long>(r.unservable),
                 static_cast<unsigned long long>(r.unservable_writes),
                 static_cast<unsigned long long>(r.errors),
                 static_cast<unsigned long long>(r.fragment_writes),
                 static_cast<unsigned long long>(r.dual_applied), r.wall_ms, r.throughput_qps,
                 r.p50_ms, r.p95_ms, r.p99_ms, r.vectorized ? "true" : "false",
                 i + 1 < mixed.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace
}  // namespace pse

int main(int argc, char** argv) {
  using namespace pse;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
  }

  std::printf("=== LAA pruned (interaction clusters) vs brute force vs cached vs GAA ===\n");
  std::printf("%-12s %-4s %8s %13s %16s %13s %8s %10s %10s %10s %7s %4s %12s %10s\n", "family",
              "m", "clusters", "pruned-evals", "brute-closed", "brute-evals", "equal",
              "pruned-ms", "brute-ms", "cached-ms", "hit", "thr", "GAA-evals", "GAA-ms");
  std::vector<BenchRow> rows;
  int rc = 0;
  for (size_t m : {4u, 6u, 8u, 10u, 12u, 14u, 16u}) {
    Synthetic s = MakeIndependent(m);
    BenchRow row;
    // Brute force doubles per operator; cap the comparison runs at m = 12.
    rc |= RunPoint("independent", &s, /*run_exhaustive=*/m <= 12, &row);
    PrintRow(row);
    rows.push_back(std::move(row));
  }
  {
    // The acceptance shape: m = 16 in 4 interference clusters.
    Synthetic s = MakeClustered(/*entities=*/4, /*attrs_per_entity=*/5);
    BenchRow row;
    rc |= RunPoint("clustered", &s, /*run_exhaustive=*/true, &row);
    PrintRow(row);
    rows.push_back(std::move(row));
  }
  std::printf(
      "\nBrute-force LAA doubles per operator (the paper's 2^m); cluster-wise LAA pays the\n"
      "sum of the clusters instead of their product, at identical chosen-plan cost; the\n"
      "cached column repeats the row's most expensive sweep with layout-fingerprint\n"
      "memoization + a thread pool, again at identical cost; GAA stays within its GA\n"
      "budget.\n");
  std::vector<OnlineRow> online;
  rc |= RunOnline(&online);
  PrintOnline(online);
  std::printf(
      "\nOnline mode moves data in journaled batches and runs one foreground probe query\n"
      "between batches; probe I/O is the price live traffic pays during movement and is\n"
      "excluded from migration-io. Smaller batches (or an I/O budget) trade total batches\n"
      "for shorter foreground stalls.\n");
  std::vector<ServeRow> serve;
  rc |= RunServe(&serve);
  PrintServe(serve);
  std::printf(
      "\nConcurrent serving runs real SQL sessions against live schema snapshots while\n"
      "the executor migrates; unservable counts new-version queries that bind only after\n"
      "their attributes materialize. Latency quantiles are per answered query.\n");
  std::vector<MixedRwRow> mixed;
  rc |= RunMixedRw(&mixed);
  PrintMixedRw(mixed);
  std::printf(
      "\nMixed read/write serving adds writer traffic to the same window: each lane's\n"
      "iterations issue random DML from both version eras through the write rewriter\n"
      "(RewriteDml), dual-applying onto live copy frontiers. An unservable write window\n"
      "counts under unservable (unsrv-w), never errors.\n");
  if (!json_path.empty()) WriteJson(json_path, rows, online, serve, mixed);
  return rc;
}
