// The paper's complexity argument made observable: LAA's exhaustive search
// estimates O(2^m) candidate schemas per migration point, while GAA's
// population x generations budget is flat. This bench sweeps the operator
// count m on synthetic schemas (one splittable table per operator) and
// reports schemas-estimated and wall time for both.
#include <memory>

#include "bench/bench_util.h"
#include "core/mapping.h"

namespace pse {
namespace {

/// Synthetic universe: `m` independent entities, each with two attributes;
/// the object schema splits every entity's table, giving exactly m
/// independent split operators.
struct Synthetic {
  std::unique_ptr<LogicalSchema> logical;
  PhysicalSchema source, object;
  LogicalStats stats;
  std::vector<WorkloadQuery> queries;
};

Synthetic MakeSynthetic(size_t m) {
  Synthetic s;
  s.logical = std::make_unique<LogicalSchema>();
  s.source = PhysicalSchema(s.logical.get());
  s.object = PhysicalSchema(s.logical.get());
  for (size_t i = 0; i < m; ++i) {
    std::string n = std::to_string(i);
    EntityId e = s.logical->AddEntity("e" + n, "e" + n + "_id");
    AttrId a = *s.logical->AddAttribute(e, "e" + n + "_a", TypeId::kVarchar, 40);
    AttrId b = *s.logical->AddAttribute(e, "e" + n + "_b", TypeId::kVarchar, 40);
    (void)s.source.AddTable("t" + n, e, {a, b});
    (void)s.object.AddTable("t" + n + "_a", e, {a});
    (void)s.object.AddTable("t" + n + "_b", e, {b});
    // One old query per entity wanting both halves; one new wanting one.
    LogicalQuery old_q;
    old_q.anchor = e;
    old_q.name = "O" + n;
    old_q.select.emplace_back(Col("e" + n + "_a"), AggFunc::kNone, "a");
    old_q.select.emplace_back(Col("e" + n + "_b"), AggFunc::kNone, "b");
    s.queries.emplace_back(std::move(old_q), true);
    LogicalQuery new_q;
    new_q.anchor = e;
    new_q.name = "N" + n;
    new_q.select.emplace_back(Col("e" + n + "_a"), AggFunc::kNone, "a");
    s.queries.emplace_back(std::move(new_q), false);
  }
  s.stats.Resize(*s.logical);
  for (size_t e = 0; e < s.logical->num_entities(); ++e) s.stats.entity_rows[e] = 10000;
  for (size_t a = 0; a < s.logical->num_attributes(); ++a) {
    s.stats.attrs[a].num_distinct = 10000;
    s.stats.attrs[a].min = 0;
    s.stats.attrs[a].max = 9999;
  }
  return s;
}

}  // namespace
}  // namespace pse

int main() {
  using namespace pse;
  std::printf("=== LAA exhaustive blow-up vs GAA flat budget (per migration point) ===\n");
  std::printf("%-4s %16s %12s %14s %12s\n", "m", "LAA schemas", "LAA ms", "GAA schemas",
              "GAA ms");
  for (size_t m : {4u, 6u, 8u, 10u, 12u, 14u, 16u}) {
    Synthetic s = MakeSynthetic(m);
    auto opset = ComputeOperatorSet(s.source, s.object);
    if (!opset.ok()) {
      std::fprintf(stderr, "opset: %s\n", opset.status().ToString().c_str());
      return 1;
    }
    std::vector<std::vector<double>> freqs(3, std::vector<double>(s.queries.size()));
    for (size_t p = 0; p < 3; ++p) {
      for (size_t q = 0; q < s.queries.size(); ++q) {
        bool old_q = s.queries[q].is_old;
        freqs[p][q] = old_q ? 30.0 - 10.0 * static_cast<double>(p)
                            : 10.0 + 10.0 * static_cast<double>(p);
      }
    }
    std::vector<LogicalStats> stats{s.stats};
    MigrationContext ctx;
    ctx.current = &s.source;
    ctx.object = &s.object;
    ctx.opset = &*opset;
    ctx.applied.assign(opset->size(), false);
    ctx.phase_freqs = &freqs;
    ctx.phase_stats = &stats;
    ctx.queries = &s.queries;

    Stopwatch laa_timer;
    auto laa = SelectOpsLaa(ctx, 0, 0, /*max_ops=*/20);
    double laa_ms = laa_timer.ElapsedSeconds() * 1000.0;
    size_t laa_evals = laa.ok() ? laa->schemas_evaluated : 0;

    GaaOptions options;
    options.ga.population_size = 32;
    options.ga.generations = 40;
    options.ga.stall_generations = 12;
    Stopwatch gaa_timer;
    auto gaa = PlanGaa(ctx, 0, options);
    double gaa_ms = gaa_timer.ElapsedSeconds() * 1000.0;
    size_t gaa_evals = gaa.ok() ? gaa->evaluations : 0;

    std::printf("%-4zu %16zu %12.1f %14zu %12.1f\n", m, laa_evals, laa_ms, gaa_evals, gaa_ms);
  }
  std::printf("\nLAA doubles per operator (the paper's 2^m); GAA stays within its GA budget.\n");
  return 0;
}
