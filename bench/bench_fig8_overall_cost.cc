// Reproduces Fig 8(e)/(f): Overall-Cost of Pro-Schema under LAA vs GAA as
// the number of migration points goes 2 -> 5, with the regular
// (determinate-rate) frequency schedule. Paper claims: overall cost falls
// as migration points increase; GAA <= LAA (the forward scan exploits the
// predicted trend).
//
// Usage: bench_fig8_overall_cost [--scale=100mb|1gb]  (default: both)
#include <cstring>

#include "bench/bench_util.h"

namespace pse {
namespace {

void RunOne(const std::string& scale_name, char figure) {
  bench::TpcwInstance inst = bench::MakeInstance(scale_name);
  std::printf("=== Fig 8(%c): Overall-Cost, LAA vs GAA, regular frequency, %s ===\n", figure,
              inst.scale.label.c_str());
  std::printf("Overall = estimated query I/O + data-movement I/O; the orders family "
              "grows 50%%->100%% across the migration.\n");
  std::printf("%-8s %14s %14s %14s %10s %12s\n", "Points", "LAA", "GAA", "GAA(fcst)",
              "GAA/LAA", "GAA evals");
  Stopwatch timer;
  for (size_t points = 2; points <= 5; ++points) {
    auto freqs = RegularFrequencies(points);
    double cost[3];
    size_t evals[3];
    for (int which = 0; which < 3; ++which) {
      SimulationConfig config =
          bench::DefaultConfig(which == 0 ? PlannerKind::kLaa : PlannerKind::kGaa);
      config.visible_rows = TpcwGrowthPlan(*inst.schema, inst.scale, points, 0.5);
      // GAA's forward scan optimizes query AND data-movement cost; LAA is
      // the paper's purely local query-cost greedy, adapting to the
      // *observed* (previous-phase) workload. The third column plans from
      // collector forecasts only (the paper's imprecise-trend setting).
      config.gaa.include_migration_cost = true;
      config.forecast_from_observations = which == 2;
      // Overall-Cost here is accounted in optimizer cost-estimate units (the
      // paper's MaxDB I/O estimates); Fig 8(a)-(d) use measured I/O instead.
      config.measure_actual = false;
      MigrationSimulation sim(&inst.schema->source, &inst.schema->object, &inst.queries, freqs,
                              inst.data.get(), config);
      auto pro = sim.Run(Situation::kProSchema);
      if (!pro.ok()) {
        std::fprintf(stderr, "simulation failed: %s\n", pro.status().ToString().c_str());
        std::exit(1);
      }
      cost[which] = pro->OverallCost() + pro->TotalMigrationIo();
      evals[which] = sim.last_planner_evaluations();
    }
    std::printf("%-8zu %14.0f %14.0f %14.0f %10.3f %12zu\n", points, cost[0], cost[1],
                cost[2], cost[0] > 0 ? cost[1] / cost[0] : 0.0, evals[1]);
  }
  std::printf("(wall time %.1fs)\n\n", timer.ElapsedSeconds());
}

}  // namespace
}  // namespace pse

int main(int argc, char** argv) {
  std::string scale;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) scale = argv[i] + 8;
  }
  if (!scale.empty()) {
    pse::RunOne(scale, scale == "1gb" ? 'f' : 'e');
    return 0;
  }
  pse::RunOne("100mb", 'e');
  pse::RunOne("1gb", 'f');
  return 0;
}
