// GA design ablation (Fig 6's machinery): on the TPC-W migration instance,
// compares GAA configurations — population size, generation budget,
// crossover scheme (two-point assignment vs the paper's order-based
// permutation recombination applied to assignment strings), mutation
// scheme — against the exhaustive global optimum of the same objective.
#include "bench/bench_util.h"
#include "core/mapping.h"

namespace pse {
namespace {

struct AblationCase {
  std::string name;
  GaConfig ga;
  bool order_crossover = false;
  bool point_mutation_only = false;
};  // selection scheme rides in ga.selection

}  // namespace
}  // namespace pse

int main() {
  using namespace pse;
  bench::TpcwInstance inst = bench::MakeInstance("100mb");
  auto freqs = RegularFrequencies(3);
  auto opset = ComputeOperatorSet(inst.schema->source, inst.schema->object);
  if (!opset.ok()) return 1;
  std::vector<LogicalStats> stats{inst.data->ComputeStats()};

  MigrationContext ctx;
  ctx.current = &inst.schema->source;
  ctx.object = &inst.schema->object;
  ctx.opset = &*opset;
  ctx.applied.assign(opset->size(), false);
  ctx.phase_freqs = &freqs;
  ctx.phase_stats = &stats;
  ctx.queries = &inst.queries;

  GaaOptions base;
  base.include_migration_cost = true;

  auto exhaustive = PlanExhaustiveGlobal(ctx, 0, base, /*max_ops=*/10);
  if (!exhaustive.ok()) {
    std::fprintf(stderr, "exhaustive: %s\n", exhaustive.status().ToString().c_str());
    return 1;
  }
  std::printf("=== GAA ablation on the TPC-W instance (%zu ops x 3 points) ===\n",
              opset->size());
  std::printf("Exhaustive optimum: %.0f (%zu assignments scored)\n\n", exhaustive->best_cost,
              exhaustive->evaluations);
  std::printf("%-26s %12s %12s %10s\n", "configuration", "cost", "evals", "gap%");

  std::vector<AblationCase> cases;
  for (size_t pop : {8u, 16u, 32u, 64u}) {
    AblationCase c;
    c.name = "two-point pop=" + std::to_string(pop);
    c.ga.population_size = pop;
    c.ga.generations = 40;
    cases.push_back(c);
  }
  {
    AblationCase c;
    c.name = "order-crossover pop=32";
    c.ga.population_size = 32;
    c.ga.generations = 40;
    c.order_crossover = true;
    cases.push_back(c);
    AblationCase d;
    d.name = "point-mutation-only pop=32";
    d.ga.population_size = 32;
    d.ga.generations = 40;
    d.point_mutation_only = true;
    cases.push_back(d);
    AblationCase e;
    e.name = "tiny budget pop=8 gen=8";
    e.ga.population_size = 8;
    e.ga.generations = 8;
    cases.push_back(e);
    AblationCase f;
    f.name = "roulette pop=32";
    f.ga.population_size = 32;
    f.ga.generations = 40;
    f.ga.selection = GaSelection::kRoulette;
    cases.push_back(f);
  }

  for (const auto& c : cases) {
    GaaOptions options = base;
    options.ga = c.ga;
    options.use_order_crossover = c.order_crossover;
    options.point_mutation_only = c.point_mutation_only;
    // Average over seeds for stability.
    double cost_sum = 0;
    size_t eval_sum = 0;
    const int kSeeds = 5;
    for (int seed = 0; seed < kSeeds; ++seed) {
      options.seed = 1000 + static_cast<uint64_t>(seed);
      auto gaa = PlanGaa(ctx, 0, options);
      if (!gaa.ok()) {
        std::fprintf(stderr, "gaa: %s\n", gaa.status().ToString().c_str());
        return 1;
      }
      cost_sum += gaa->best_cost;
      eval_sum += gaa->evaluations;
    }
    double avg_cost = cost_sum / kSeeds;
    double gap = (avg_cost / exhaustive->best_cost - 1.0) * 100.0;
    std::printf("%-26s %12.0f %12zu %9.2f%%\n", c.name.c_str(), avg_cost,
                eval_sum / kSeeds, gap);
  }
  std::printf("\n(gap%% = average cost above the exhaustive optimum; 0%% = optimal)\n");
  return 0;
}
