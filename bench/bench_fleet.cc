// Fleet-scale bench: a thousand-plus tenant shards walk the shared
// bookstore trajectory under one FleetScheduler while serve lanes drive
// mixed-version reads and writes across the fleet. Reports end-to-end
// rollout wall time, fleet-wide foreground throughput with latency
// quantiles, I/O-budget adherence, and SharedPlanCache amortization —
// including a dedicated same-step measurement pass where N tenants at one
// step must hit (N-1)/N.
//
// --json=PATH emits the machine-readable section (BENCH_fleet.json in CI;
// scripts/bench.sh gates on it). --tenants=N overrides the fleet size.
#include <cstdint>
#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "analysis/writability.h"
#include "fleet/plan_cache.h"
#include "fleet/schedule.h"
#include "fleet/scheduler.h"
#include "fleet/tenant_shard.h"
#include "tests/common/test_db_builder.h"

namespace pse {
namespace {

using testutil::Bookstore;

std::vector<WorkloadQuery> MakeQueries(const Bookstore& bs) {
  std::vector<WorkloadQuery> queries;
  LogicalQuery book;
  book.name = "old-book-author";
  book.anchor = bs.book;
  book.select.emplace_back(Col("b_title"), AggFunc::kNone, "t");
  book.select.emplace_back(Col("a_name"), AggFunc::kNone, "a");
  queries.emplace_back(std::move(book), /*is_old=*/true);
  LogicalQuery user;
  user.name = "old-user";
  user.anchor = bs.user;
  user.select.emplace_back(Col("u_name"), AggFunc::kNone, "n");
  user.select.emplace_back(Col("u_addr"), AggFunc::kNone, "ad");
  queries.emplace_back(std::move(user), /*is_old=*/true);
  LogicalQuery abstract_q;
  abstract_q.name = "new-abstract";
  abstract_q.anchor = bs.book;
  abstract_q.select.emplace_back(Col("b_title"), AggFunc::kNone, "t");
  abstract_q.select.emplace_back(Col("b_abstract"), AggFunc::kNone, "ab");
  queries.emplace_back(std::move(abstract_q), /*is_old=*/false);
  return queries;
}

struct SameStepRow {
  size_t tenants = 0;
  size_t queries = 0;
  PlanCacheStats stats;
};

/// The amortization pass: every tenant parked at `step` issues the whole
/// read workload once against a fresh cache.
SameStepRow MeasureSameStep(size_t tenants, size_t step, const PhysicalSchema& schema,
                            const std::vector<WorkloadQuery>& queries) {
  SharedPlanCache cache;
  SameStepRow row;
  row.tenants = tenants;
  row.queries = queries.size();
  for (size_t t = 0; t < tenants; ++t) {
    for (const WorkloadQuery& wq : queries) {
      Result<BoundQuery> bound = cache.GetOrRewrite(step, wq.query, schema);
      if (!bound.ok() && !bound.status().IsBindError()) {
        std::fprintf(stderr, "same-step rewrite failed: %s\n",
                     bound.status().ToString().c_str());
        std::exit(1);
      }
    }
  }
  row.stats = cache.Snapshot();
  return row;
}

void WriteJson(const std::string& path, const FleetMetrics& m, size_t steps,
               const char* policy, const SameStepRow& same_step) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"fleet\",\n");
  std::fprintf(f, "  \"fleet\": {\"tenants\": %zu, \"tenants_migrated\": %zu, ", m.tenants,
               m.tenants_migrated);
  std::fprintf(f, "\"policy\": \"%s\", \"steps\": %zu, \"ops_applied\": %llu, ", policy, steps,
               static_cast<unsigned long long>(m.ops_applied));
  std::fprintf(f, "\"batches\": %llu, \"migration_io\": %llu, ",
               static_cast<unsigned long long>(m.batches),
               static_cast<unsigned long long>(m.migration_io));
  std::fprintf(f, "\"io_capacity\": %llu, \"io_peak_outstanding\": %llu, ",
               static_cast<unsigned long long>(m.io_capacity),
               static_cast<unsigned long long>(m.io_peak_outstanding));
  std::fprintf(f, "\"wall_ms\": %.2f, \"queries\": %llu, \"writes\": %llu, ", m.wall_ms,
               static_cast<unsigned long long>(m.queries),
               static_cast<unsigned long long>(m.writes));
  std::fprintf(f, "\"unservable\": %llu, \"unservable_writes\": %llu, \"errors\": %llu, ",
               static_cast<unsigned long long>(m.unservable),
               static_cast<unsigned long long>(m.unservable_writes),
               static_cast<unsigned long long>(m.errors));
  std::fprintf(f, "\"throughput_qps\": %.1f, \"p50_ms\": %.4f, \"p95_ms\": %.4f, "
               "\"p99_ms\": %.4f, ",
               m.throughput_qps, m.p50_ms, m.p95_ms, m.p99_ms);
  std::fprintf(f, "\"plan_cache_hits\": %llu, \"plan_cache_misses\": %llu, "
               "\"plan_cache_hit_pct\": %.2f},\n",
               static_cast<unsigned long long>(m.plan_cache.hits),
               static_cast<unsigned long long>(m.plan_cache.misses), m.plan_cache.hit_pct());
  std::fprintf(f, "  \"same_step_plan_cache\": {\"tenants\": %zu, \"queries\": %zu, "
               "\"lookups\": %llu, \"hits\": %llu, \"misses\": %llu, "
               "\"same_step_hit_pct\": %.2f}\n}\n",
               same_step.tenants, same_step.queries,
               static_cast<unsigned long long>(same_step.stats.lookups()),
               static_cast<unsigned long long>(same_step.stats.hits),
               static_cast<unsigned long long>(same_step.stats.misses),
               same_step.stats.hit_pct());
  std::fclose(f);
}

}  // namespace
}  // namespace pse

int main(int argc, char** argv) {
  using namespace pse;
  std::string json_path;
  size_t tenants = 1024;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
    if (arg.rfind("--tenants=", 0) == 0) tenants = std::stoul(arg.substr(10));
  }

  auto bs = Bookstore::Make();
  std::vector<WorkloadQuery> queries = MakeQueries(*bs);
  std::vector<double> freqs = {10, 10, 5};

  // A handful of distinct tenant instances shared read-only across the
  // fleet (shards never mutate their entity source).
  std::vector<std::unique_ptr<LogicalDatabase>> instances;
  for (int v = 0; v < 8; ++v) instances.push_back(bs->MakeData(3, 2, 8 + 2 * v));
  LogicalStats stats = instances[0]->ComputeStats();

  // The shared trajectory, LAA-ordered against the predicted workload; the
  // candidate costings memoize in the fleet cache's QueryCostCache.
  SharedPlanCache cache;
  std::vector<std::vector<double>> phase_freqs = {freqs};
  FleetScheduleInputs inputs;
  inputs.queries = &queries;
  inputs.phase_freqs = &phase_freqs;
  inputs.stats = &stats;
  auto schedule = PlanFleetSchedule(bs->source, bs->object, inputs, cache.cost_cache());
  if (!schedule.ok()) {
    std::fprintf(stderr, "schedule: %s\n", schedule.status().ToString().c_str());
    return 1;
  }

  FleetScheduler fleet(*schedule, &cache);
  for (size_t t = 0; t < tenants; ++t) {
    ShardOptions options;
    options.pool_pages = 64;  // frames allocate lazily; tiny tenants stay tiny
    auto shard =
        TenantShard::Create(t, bs->source, instances[t % instances.size()].get(),
                            std::move(options));
    if (!shard.ok()) {
      std::fprintf(stderr, "shard %zu: %s\n", t, shard.status().ToString().c_str());
      return 1;
    }
    fleet.AddShard(std::move(*shard));
  }

  // Mixed-version writes over the user-era tables of both schema versions.
  std::vector<VersionTable> write_tables;
  for (const VersionTable& vt : VersionTablesOf(bs->source)) {
    if (vt.anchor == bs->user) write_tables.push_back(vt);
  }
  for (const VersionTable& vt : VersionTablesOf(bs->object)) {
    if (vt.anchor == bs->user) write_tables.push_back(vt);
  }

  FleetOptions options;
  options.policy = FleetPolicy::kRoundRobin;
  options.migration_lanes = 2;
  options.serve_lanes = 2;
  options.io_tokens = 8;
  options.min_queries_per_lane = 500;
  options.seed = 20260808;
  options.write_fraction = 0.2;
  options.migration.batch_rows = 64;
  options.make_write = [&](size_t shard, uint64_t, std::mt19937_64& rng) {
    const VersionTable& vt = write_tables[rng() % write_tables.size()];
    LogicalDml dml;
    uint64_t roll = rng() % 10;
    dml.kind = roll < 6 ? DmlKind::kInsert : roll < 9 ? DmlKind::kUpdate : DmlKind::kDelete;
    dml.table = vt;
    dml.key = static_cast<int64_t>(100 * shard + rng() % 30);
    if (dml.kind != DmlKind::kDelete) {
      for (AttrId a : vt.attrs) {
        if (rng() % 10 >= 6) continue;
        dml.set_attrs.push_back(a);
        const LogicalAttribute& attr = bs->logical.attr(a);
        dml.set_values.push_back(attr.type == TypeId::kInt64
                                     ? Value::Int(static_cast<int64_t>(rng() % 1000))
                                     : Value::Varchar("w" + std::to_string(rng() % 100)));
      }
    }
    return dml;
  };

  std::printf("=== fleet rollout: %zu tenants x %zu steps, policy %s ===\n", tenants,
              schedule->steps(), FleetPolicyName(options.policy));
  auto metrics = fleet.Run(queries, freqs, options);
  if (!metrics.ok()) {
    std::fprintf(stderr, "fleet run: %s\n", metrics.status().ToString().c_str());
    return 1;
  }
  const FleetMetrics& m = *metrics;
  std::printf("tenants migrated  %zu/%zu (ops %llu, batches %llu, migration-io %llu)\n",
              m.tenants_migrated, m.tenants, static_cast<unsigned long long>(m.ops_applied),
              static_cast<unsigned long long>(m.batches),
              static_cast<unsigned long long>(m.migration_io));
  std::printf("wall              %.1f ms (io budget %llu, peak outstanding %llu)\n", m.wall_ms,
              static_cast<unsigned long long>(m.io_capacity),
              static_cast<unsigned long long>(m.io_peak_outstanding));
  std::printf("foreground        %llu reads + %llu writes, %llu unservable, %llu errors\n",
              static_cast<unsigned long long>(m.queries),
              static_cast<unsigned long long>(m.writes),
              static_cast<unsigned long long>(m.unservable),
              static_cast<unsigned long long>(m.errors));
  std::printf("throughput        %.0f qps   p50 %.3f ms   p95 %.3f ms   p99 %.3f ms\n",
              m.throughput_qps, m.p50_ms, m.p95_ms, m.p99_ms);
  std::printf("plan cache        %llu hits / %llu misses (%.1f%% hit rate during rollout)\n",
              static_cast<unsigned long long>(m.plan_cache.hits),
              static_cast<unsigned long long>(m.plan_cache.misses), m.plan_cache.hit_pct());

  SameStepRow same_step =
      MeasureSameStep(tenants, schedule->steps(), schedule->at(schedule->steps()), queries);
  std::printf("same-step cache   %zu tenants x %zu queries -> %.2f%% hits (want >= %.2f%%)\n",
              same_step.tenants, same_step.queries, same_step.stats.hit_pct(),
              100.0 * static_cast<double>(tenants - 1) / static_cast<double>(tenants));

  if (!json_path.empty()) {
    WriteJson(json_path, m, schedule->steps(), FleetPolicyName(options.policy), same_step);
  }
  return 0;
}
