// Engine micro-benchmarks (google-benchmark): the storage/executor
// primitives everything above is built on — B+ tree inserts/lookups, heap
// scans, hash vs index-nested-loop joins, and the analytical cost estimator
// itself (which LAA/GAA call thousands of times per migration point).
#include <benchmark/benchmark.h>

#include "core/rewriter.h"
#include "core/virtual_catalog.h"
#include "engine/cost_model.h"
#include "engine/executor.h"
#include "engine/planner.h"
#include "tests/engine/engine_test_util.h"
#include "tpcw/datagen.h"
#include "tpcw/queries.h"
#include "tpcw/schema.h"

namespace pse {
namespace {

void BM_BPlusTreeInsert(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    InMemoryDiskManager dm;
    BufferPool pool(&dm, 4096);
    auto tree = BPlusTree::Create(&pool);
    state.ResumeTiming();
    for (int64_t k = 0; k < state.range(0); ++k) {
      benchmark::DoNotOptimize(tree->Insert(k, Rid{static_cast<PageId>(k % 1000), 0}));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BPlusTreeInsert)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BPlusTreePointLookup(benchmark::State& state) {
  InMemoryDiskManager dm;
  BufferPool pool(&dm, 4096);
  auto tree = BPlusTree::Create(&pool);
  const int64_t n = state.range(0);
  for (int64_t k = 0; k < n; ++k) {
    (void)tree->Insert(k, Rid{static_cast<PageId>(k % 1000), 0});
  }
  int64_t key = 0;
  std::vector<Rid> out;
  for (auto _ : state) {
    out.clear();
    benchmark::DoNotOptimize(tree->ScanEqual(key, &out));
    key = (key + 7919) % n;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BPlusTreePointLookup)->Arg(10000)->Arg(100000);

void BM_HeapScan(benchmark::State& state) {
  auto db = testutil::MakeBookstore(4096);
  // Widen the dataset: more sales rows.
  for (int64_t s = 300; s < state.range(0); ++s) {
    (void)db->Insert("sale", {Value::Int(s), Value::Int(s % 100), Value::Int(1)});
  }
  auto t = db->GetTable("sale");
  for (auto _ : state) {
    uint64_t rows = 0;
    for (auto it = (*t)->heap->Begin(); !it.AtEnd();) {
      ++rows;
      (void)it.Next();
    }
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HeapScan)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_HashJoinExec(benchmark::State& state) {
  auto db = testutil::MakeBookstore(4096);
  BoundQuery q;
  q.tables.push_back(TableAccess("sale", {"sale_id", "book_id"}));
  q.tables.push_back(TableAccess("book", {"book_id", "title"}));
  q.joins.push_back(EquiJoin{0, 1, "book_id", "book_id"});
  q.select_items.emplace_back(Col("sale.sale_id"), AggFunc::kNone, "id");
  DatabaseCatalogView view(db.get());
  auto plan = PlanQuery(q, view);
  for (auto _ : state) {
    auto rows = ExecutePlan(**plan, db.get());
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_HashJoinExec);

void BM_TpcwQueryRewrite(benchmark::State& state) {
  auto schema = BuildTpcwSchema();
  auto workload = BuildTpcwWorkload(*schema);
  size_t i = 0;
  for (auto _ : state) {
    const auto& q = (*workload)[i % workload->size()].query;
    auto bound = RewriteQuery(q, schema->object);
    benchmark::DoNotOptimize(bound);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TpcwQueryRewrite);

void BM_CostEstimateQuery(benchmark::State& state) {
  // The estimator is the inner loop of LAA (2^m calls) and GAA — its speed
  // bounds the whole planning layer.
  auto schema = BuildTpcwSchema();
  auto data = GenerateTpcwData(*schema, ScaleTiny(), 7);
  LogicalStats stats = data->ComputeStats();
  auto workload = BuildTpcwWorkload(*schema);
  VirtualSchemaCatalog catalog(&schema->object, &stats);
  CostModel model(&catalog);
  size_t i = 0;
  for (auto _ : state) {
    const auto& q = (*workload)[i % workload->size()].query;
    auto bound = RewriteQuery(q, schema->object);
    auto plan = PlanQuery(*bound, catalog);
    auto est = model.Estimate(**plan);
    benchmark::DoNotOptimize(est);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CostEstimateQuery);

}  // namespace
}  // namespace pse

BENCHMARK_MAIN();
