// Engine micro-benchmarks: the storage/executor primitives everything above
// is built on — B+ tree inserts/lookups, heap scans, hash vs
// index-nested-loop joins, and the analytical cost estimator itself (which
// LAA/GAA call thousands of times per migration point), via
// google-benchmark; plus a row-vs-vectorized engine comparison harness.
//
// Invoked with --json=PATH the binary skips the google-benchmark suite and
// instead times the same scan->filter->project plan through both engines
// (and the row engine's zero-copy projection fast path on and off), prints
// a side-by-side table, and emits BENCH_engine_micro.json for
// scripts/bench.sh, which asserts the vectorized engine's >= 2x throughput
// floor.
#include <benchmark/benchmark.h>

#include <string>

#include "common/stopwatch.h"
#include "core/rewriter.h"
#include "core/virtual_catalog.h"
#include "engine/cost_model.h"
#include "engine/executor.h"
#include "engine/planner.h"
#include "tests/engine/engine_test_util.h"
#include "tpcw/datagen.h"
#include "tpcw/queries.h"
#include "tpcw/schema.h"

namespace pse {
namespace {

void BM_BPlusTreeInsert(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    InMemoryDiskManager dm;
    BufferPool pool(&dm, 4096);
    auto tree = BPlusTree::Create(&pool);
    state.ResumeTiming();
    for (int64_t k = 0; k < state.range(0); ++k) {
      benchmark::DoNotOptimize(tree->Insert(k, Rid{static_cast<PageId>(k % 1000), 0}));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BPlusTreeInsert)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BPlusTreePointLookup(benchmark::State& state) {
  InMemoryDiskManager dm;
  BufferPool pool(&dm, 4096);
  auto tree = BPlusTree::Create(&pool);
  const int64_t n = state.range(0);
  for (int64_t k = 0; k < n; ++k) {
    (void)tree->Insert(k, Rid{static_cast<PageId>(k % 1000), 0});
  }
  int64_t key = 0;
  std::vector<Rid> out;
  for (auto _ : state) {
    out.clear();
    benchmark::DoNotOptimize(tree->ScanEqual(key, &out));
    key = (key + 7919) % n;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BPlusTreePointLookup)->Arg(10000)->Arg(100000);

void BM_HeapScan(benchmark::State& state) {
  auto db = testutil::MakeBookstore(4096);
  // Widen the dataset: more sales rows.
  for (int64_t s = 300; s < state.range(0); ++s) {
    (void)db->Insert("sale", {Value::Int(s), Value::Int(s % 100), Value::Int(1)});
  }
  auto t = db->GetTable("sale");
  for (auto _ : state) {
    uint64_t rows = 0;
    for (auto it = (*t)->heap->Begin(); !it.AtEnd();) {
      ++rows;
      (void)it.Next();
    }
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HeapScan)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_HashJoinExec(benchmark::State& state) {
  auto db = testutil::MakeBookstore(4096);
  BoundQuery q;
  q.tables.push_back(TableAccess("sale", {"sale_id", "book_id"}));
  q.tables.push_back(TableAccess("book", {"book_id", "title"}));
  q.joins.push_back(EquiJoin{0, 1, "book_id", "book_id"});
  q.select_items.emplace_back(Col("sale.sale_id"), AggFunc::kNone, "id");
  DatabaseCatalogView view(db.get());
  auto plan = PlanQuery(q, view);
  ExecOptions eo;
  eo.vectorized = state.range(0) != 0;
  for (auto _ : state) {
    auto rows = ExecutePlan(**plan, db.get(), eo);
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_HashJoinExec)->Arg(0)->Arg(1)->ArgNames({"vectorized"});

void BM_TpcwQueryRewrite(benchmark::State& state) {
  auto schema = BuildTpcwSchema();
  auto workload = BuildTpcwWorkload(*schema);
  size_t i = 0;
  for (auto _ : state) {
    const auto& q = (*workload)[i % workload->size()].query;
    auto bound = RewriteQuery(q, schema->object);
    benchmark::DoNotOptimize(bound);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TpcwQueryRewrite);

void BM_CostEstimateQuery(benchmark::State& state) {
  // The estimator is the inner loop of LAA (2^m calls) and GAA — its speed
  // bounds the whole planning layer.
  auto schema = BuildTpcwSchema();
  auto data = GenerateTpcwData(*schema, ScaleTiny(), 7);
  LogicalStats stats = data->ComputeStats();
  auto workload = BuildTpcwWorkload(*schema);
  VirtualSchemaCatalog catalog(&schema->object, &stats);
  CostModel model(&catalog);
  size_t i = 0;
  for (auto _ : state) {
    const auto& q = (*workload)[i % workload->size()].query;
    auto bound = RewriteQuery(q, schema->object);
    auto plan = PlanQuery(*bound, catalog);
    auto est = model.Estimate(**plan);
    benchmark::DoNotOptimize(est);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CostEstimateQuery);

// --- row vs vectorized comparison harness (--json mode) ---

/// One engine-vs-engine measurement: the same plan executed `reps` times
/// through each configuration.
struct EngineCompare {
  size_t rows = 0;          ///< rows the scan feeds into the pipeline
  size_t out_rows = 0;      ///< rows surviving the filter (sanity cross-check)
  size_t reps = 0;
  double base_ms = 0;       ///< baseline configuration wall time
  double contender_ms = 0;  ///< contender configuration wall time
  double speedup() const { return contender_ms > 0 ? base_ms / contender_ms : 0.0; }
};

/// Builds t(id, a, b, s) with `rows` rows in an in-memory pool big enough
/// to hold it (the comparison targets CPU execution cost, not I/O).
std::unique_ptr<Database> MakeWideTable(size_t rows) {
  auto db = std::make_unique<Database>(16384);
  TableSchema t("t",
                {Column("id", TypeId::kInt64, 0, false), Column("a", TypeId::kInt64),
                 Column("b", TypeId::kInt64), Column("s", TypeId::kVarchar, 16)},
                {"id"});
  if (!db->CreateTable(t).ok()) return nullptr;
  for (size_t i = 0; i < rows; ++i) {
    int64_t k = static_cast<int64_t>(i);
    auto s = db->Insert("t", {Value::Int(k), Value::Int(k % 97), Value::Int(k % 13),
                              Value::Varchar("s" + std::to_string(k % 31))});
    if (!s.ok()) return nullptr;
  }
  if (!db->AnalyzeAll().ok()) return nullptr;
  return db;
}

/// Times `plan` under `eo`, returning total wall ms over `reps` runs and
/// checking every run returns `want_rows` rows.
double TimePlan(const PlanNode& plan, Database* db, const ExecOptions& eo, size_t reps,
                size_t want_rows, int* rc) {
  Stopwatch timer;
  for (size_t r = 0; r < reps; ++r) {
    auto rows = ExecutePlan(plan, db, eo);
    if (!rows.ok() || rows->size() != want_rows) {
      std::fprintf(stderr, "engine micro run failed: %s (%zu rows, want %zu)\n",
                   rows.ok() ? "row-count mismatch" : rows.status().ToString().c_str(),
                   rows.ok() ? rows->size() : 0, want_rows);
      *rc = 1;
    }
  }
  return timer.ElapsedSeconds() * 1000.0;
}

/// scan -> filter -> project through both engines: SELECT id, a+b FROM t
/// WHERE a < 48 (about half the rows survive).
int RunScanFilterProject(size_t rows, size_t reps, EngineCompare* out) {
  auto db = MakeWideTable(rows);
  if (db == nullptr) return 1;
  BoundQuery q;
  // Projection pushdown as the rewriter emits it: only referenced columns
  // reach the TableAccess, so the wide varchar column stays behind.
  TableAccess t("t", {"id", "a", "b"});
  t.filters.push_back(Cmp(CompareOp::kLt, Col("a"), Const(Value::Int(48))));
  q.tables.push_back(std::move(t));
  q.select_items.emplace_back(Col("t.id"), AggFunc::kNone, "id");
  q.select_items.emplace_back(
      std::make_unique<ArithExpr>(ArithOp::kAdd, Col("t.a"), Col("t.b")), AggFunc::kNone, "ab");
  DatabaseCatalogView view(db.get());
  auto plan = PlanQuery(q, view);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  ExecOptions row_eo;
  row_eo.vectorized = false;
  auto want = ExecutePlan(**plan, db.get(), row_eo);
  if (!want.ok()) {
    std::fprintf(stderr, "row run: %s\n", want.status().ToString().c_str());
    return 1;
  }
  int rc = 0;
  out->rows = rows;
  out->out_rows = want->size();
  out->reps = reps;
  out->base_ms = TimePlan(**plan, db.get(), row_eo, reps, want->size(), &rc);
  ExecOptions vec_eo;
  vec_eo.vectorized = true;
  out->contender_ms = TimePlan(**plan, db.get(), vec_eo, reps, want->size(), &rc);
  return rc;
}

/// The row engine's zero-copy projection fast path on vs off: SELECT id, a
/// FROM t (every projection is a pass-through column reference).
int RunZeroCopyProject(size_t rows, size_t reps, EngineCompare* out) {
  auto db = MakeWideTable(rows);
  if (db == nullptr) return 1;
  BoundQuery q;
  q.tables.push_back(TableAccess("t", {"id", "a"}));
  q.select_items.emplace_back(Col("t.id"), AggFunc::kNone, "id");
  q.select_items.emplace_back(Col("t.a"), AggFunc::kNone, "a");
  DatabaseCatalogView view(db.get());
  auto plan = PlanQuery(q, view);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  int rc = 0;
  ExecOptions off;
  off.vectorized = false;
  off.zero_copy_project = false;
  ExecOptions on;
  on.vectorized = false;
  on.zero_copy_project = true;
  out->rows = rows;
  out->out_rows = rows;
  out->reps = reps;
  out->base_ms = TimePlan(**plan, db.get(), off, reps, rows, &rc);
  out->contender_ms = TimePlan(**plan, db.get(), on, reps, rows, &rc);
  return rc;
}

void WriteEngineJson(const std::string& path, const EngineCompare& sfp,
                     const EngineCompare& zc) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  double row_rps = sfp.base_ms > 0
                       ? static_cast<double>(sfp.rows) * static_cast<double>(sfp.reps) /
                             (sfp.base_ms / 1000.0)
                       : 0.0;
  double vec_rps = sfp.contender_ms > 0
                       ? static_cast<double>(sfp.rows) * static_cast<double>(sfp.reps) /
                             (sfp.contender_ms / 1000.0)
                       : 0.0;
  std::fprintf(f,
               "{\n  \"bench\": \"engine_micro\",\n"
               "  \"scan_filter_project\": {\"rows\": %zu, \"out_rows\": %zu, \"reps\": %zu, "
               "\"row_ms\": %.2f, \"vectorized_ms\": %.2f, \"row_rows_per_s\": %.0f, "
               "\"vectorized_rows_per_s\": %.0f, \"speedup\": %.3f},\n"
               "  \"zero_copy_project\": {\"rows\": %zu, \"reps\": %zu, \"off_ms\": %.2f, "
               "\"on_ms\": %.2f, \"speedup\": %.3f}\n}\n",
               sfp.rows, sfp.out_rows, sfp.reps, sfp.base_ms, sfp.contender_ms, row_rps,
               vec_rps, sfp.speedup(), zc.rows, zc.reps, zc.base_ms, zc.contender_ms,
               zc.speedup());
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

/// Entry point of the --json comparison mode.
int RunEngineCompare(const std::string& json_path) {
  constexpr size_t kRows = 100000;
  constexpr size_t kReps = 20;
  EngineCompare sfp;
  int rc = RunScanFilterProject(kRows, kReps, &sfp);
  EngineCompare zc;
  rc |= RunZeroCopyProject(kRows, kReps, &zc);

  std::printf("=== engine micro: row vs vectorized (scan->filter->project, %zu rows x %zu) "
              "===\n%-24s %10s %10s %8s\n",
              kRows, kReps, "pipeline", "row-ms", "vec-ms", "speedup");
  std::printf("%-24s %10.1f %10.1f %7.2fx\n", "scan-filter-project", sfp.base_ms,
              sfp.contender_ms, sfp.speedup());
  std::printf("\n=== row engine: zero-copy projection fast path (SELECT id, a, %zu rows x %zu) "
              "===\n%-24s %10s %10s %8s\n",
              kRows, kReps, "pipeline", "off-ms", "on-ms", "speedup");
  std::printf("%-24s %10.1f %10.1f %7.2fx\n", "scan-project", zc.base_ms, zc.contender_ms,
              zc.speedup());
  if (!json_path.empty()) WriteEngineJson(json_path, sfp, zc);
  return rc;
}

}  // namespace
}  // namespace pse

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
  }
  if (!json_path.empty()) return pse::RunEngineCompare(json_path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
