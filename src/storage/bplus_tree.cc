#include "storage/bplus_tree.h"

#include <cstring>

namespace pse {

namespace {
constexpr uint8_t kLeaf = 1;
constexpr uint8_t kInternal = 2;

constexpr size_t kLeafHeader = 8;
constexpr size_t kLeafEntrySize = 16;
constexpr size_t kLeafCapacity = (kPageSize - kLeafHeader) / kLeafEntrySize;  // 511

constexpr size_t kInternalHeader = 12;  // type/count + child0
constexpr size_t kInternalEntrySize = 20;
constexpr size_t kInternalCapacity = (kPageSize - kInternalHeader) / kInternalEntrySize;  // 408

struct Composite {
  int64_t key;
  uint64_t rid;
  bool operator<(const Composite& o) const {
    return key != o.key ? key < o.key : rid < o.rid;
  }
  bool operator==(const Composite& o) const { return key == o.key && rid == o.rid; }
};

uint8_t NodeType(const char* p) { return static_cast<uint8_t>(p[0]); }
void SetNodeType(char* p, uint8_t t) { p[0] = static_cast<char>(t); }
uint16_t Count(const char* p) {
  uint16_t v;
  std::memcpy(&v, p + 2, 2);
  return v;
}
void SetCount(char* p, uint16_t v) { std::memcpy(p + 2, &v, 2); }

// -- leaf accessors --
PageId NextLeaf(const char* p) {
  PageId v;
  std::memcpy(&v, p + 4, 4);
  return v;
}
void SetNextLeaf(char* p, PageId v) { std::memcpy(p + 4, &v, 4); }
Composite LeafEntry(const char* p, size_t i) {
  Composite c;
  std::memcpy(&c.key, p + kLeafHeader + i * kLeafEntrySize, 8);
  std::memcpy(&c.rid, p + kLeafHeader + i * kLeafEntrySize + 8, 8);
  return c;
}
void SetLeafEntry(char* p, size_t i, Composite c) {
  std::memcpy(p + kLeafHeader + i * kLeafEntrySize, &c.key, 8);
  std::memcpy(p + kLeafHeader + i * kLeafEntrySize + 8, &c.rid, 8);
}
/// First index with entry >= c.
size_t LeafLowerBound(const char* p, Composite c) {
  size_t lo = 0, hi = Count(p);
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (LeafEntry(p, mid) < c) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// -- internal accessors --
PageId Child0(const char* p) {
  PageId v;
  std::memcpy(&v, p + 8, 4);
  return v;
}
void SetChild0(char* p, PageId v) { std::memcpy(p + 8, &v, 4); }
Composite InternalKey(const char* p, size_t i) {
  Composite c;
  std::memcpy(&c.key, p + kInternalHeader + i * kInternalEntrySize, 8);
  std::memcpy(&c.rid, p + kInternalHeader + i * kInternalEntrySize + 8, 8);
  return c;
}
PageId InternalChild(const char* p, size_t i) {
  // Child to the right of separator i (i in [0, count)); child 0 is Child0.
  PageId v;
  std::memcpy(&v, p + kInternalHeader + i * kInternalEntrySize + 16, 4);
  return v;
}
void SetInternalEntry(char* p, size_t i, Composite c, PageId child) {
  std::memcpy(p + kInternalHeader + i * kInternalEntrySize, &c.key, 8);
  std::memcpy(p + kInternalHeader + i * kInternalEntrySize + 8, &c.rid, 8);
  std::memcpy(p + kInternalHeader + i * kInternalEntrySize + 16, &child, 4);
}
/// Child index to descend into for composite c: number of separators <= c.
/// (Separator s sits between children; keys < s go left, keys >= s go right.)
size_t InternalChildIndex(const char* p, Composite c) {
  size_t lo = 0, hi = Count(p);
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    Composite k = InternalKey(p, mid);
    if (k < c || k == c) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;  // descend Child(lo); Child(0)==Child0
}
PageId ChildAt(const char* p, size_t idx) {
  return idx == 0 ? Child0(p) : InternalChild(p, idx - 1);
}
}  // namespace

Result<BPlusTree> BPlusTree::Create(BufferPool* pool) {
  BPlusTree tree(pool);
  PSE_ASSIGN_OR_RETURN(PageGuard g, pool->NewPage());
  char* p = g.mutable_data();
  SetNodeType(p, kLeaf);
  SetCount(p, 0);
  SetNextLeaf(p, kInvalidPageId);
  tree.root_ = g.page_id();
  return tree;
}

BPlusTree BPlusTree::Attach(BufferPool* pool, PageId root, uint32_t height,
                            uint64_t num_entries) {
  BPlusTree tree(pool);
  tree.root_ = root;
  tree.height_ = height;
  tree.num_entries_ = num_entries;
  return tree;
}

Status BPlusTree::Insert(int64_t key, Rid rid) {
  std::optional<SplitResult> split;
  PSE_RETURN_NOT_OK(InsertRec(root_, key, rid.Pack(), &split));
  if (split.has_value()) {
    PSE_ASSIGN_OR_RETURN(PageGuard g, pool_->NewPage());
    char* p = g.mutable_data();
    SetNodeType(p, kInternal);
    SetCount(p, 1);
    SetChild0(p, root_);
    SetInternalEntry(p, 0, Composite{split->key, split->rid}, split->right);
    root_ = g.page_id();
    ++height_;
  }
  ++num_entries_;
  return Status::OK();
}

Status BPlusTree::InsertRec(PageId node, int64_t key, uint64_t rid,
                            std::optional<SplitResult>* split) {
  split->reset();
  Composite c{key, rid};
  PSE_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(node));
  if (NodeType(g.data()) == kLeaf) {
    char* p = g.mutable_data();
    uint16_t n = Count(p);
    size_t pos = LeafLowerBound(p, c);
    if (pos < n && LeafEntry(p, pos) == c) {
      return Status::AlreadyExists("duplicate (key,rid) in index");
    }
    if (n < kLeafCapacity) {
      std::memmove(p + kLeafHeader + (pos + 1) * kLeafEntrySize,
                   p + kLeafHeader + pos * kLeafEntrySize, (n - pos) * kLeafEntrySize);
      SetLeafEntry(p, pos, c);
      SetCount(p, static_cast<uint16_t>(n + 1));
      return Status::OK();
    }
    // Split leaf: left keeps [0, half), right gets [half, n); then insert.
    PSE_ASSIGN_OR_RETURN(PageGuard rg, pool_->NewPage());
    char* rp = rg.mutable_data();
    SetNodeType(rp, kLeaf);
    size_t half = n / 2;
    size_t right_n = n - half;
    std::memcpy(rp + kLeafHeader, p + kLeafHeader + half * kLeafEntrySize,
                right_n * kLeafEntrySize);
    SetCount(rp, static_cast<uint16_t>(right_n));
    SetNextLeaf(rp, NextLeaf(p));
    SetCount(p, static_cast<uint16_t>(half));
    SetNextLeaf(p, rg.page_id());
    // Insert into the proper half.
    Composite sep = LeafEntry(rp, 0);
    char* target = (c < sep) ? p : rp;
    uint16_t tn = Count(target);
    size_t tpos = LeafLowerBound(target, c);
    std::memmove(target + kLeafHeader + (tpos + 1) * kLeafEntrySize,
                 target + kLeafHeader + tpos * kLeafEntrySize, (tn - tpos) * kLeafEntrySize);
    SetLeafEntry(target, tpos, c);
    SetCount(target, static_cast<uint16_t>(tn + 1));
    sep = LeafEntry(rp, 0);
    *split = SplitResult{sep.key, sep.rid, rg.page_id()};
    return Status::OK();
  }

  // Internal node.
  size_t idx = InternalChildIndex(g.data(), c);
  PageId child = ChildAt(g.data(), idx);
  std::optional<SplitResult> child_split;
  // Keep parent pinned during recursion: fine, pool capacity >> height.
  PSE_RETURN_NOT_OK(InsertRec(child, key, rid, &child_split));
  if (!child_split.has_value()) return Status::OK();

  char* p = g.mutable_data();
  uint16_t n = Count(p);
  Composite sep{child_split->key, child_split->rid};
  PageId right = child_split->right;
  if (n < kInternalCapacity) {
    std::memmove(p + kInternalHeader + (idx + 1) * kInternalEntrySize,
                 p + kInternalHeader + idx * kInternalEntrySize,
                 (n - idx) * kInternalEntrySize);
    SetInternalEntry(p, idx, sep, right);
    SetCount(p, static_cast<uint16_t>(n + 1));
    return Status::OK();
  }
  // Split internal node. Build the full entry list (n+1 entries) in a
  // scratch buffer, promote the middle.
  std::vector<char> scratch((n + 1) * kInternalEntrySize);
  std::memcpy(scratch.data(), p + kInternalHeader, idx * kInternalEntrySize);
  {
    char tmp[kInternalEntrySize];
    std::memcpy(tmp, &sep.key, 8);
    std::memcpy(tmp + 8, &sep.rid, 8);
    std::memcpy(tmp + 16, &right, 4);
    std::memcpy(scratch.data() + idx * kInternalEntrySize, tmp, kInternalEntrySize);
  }
  std::memcpy(scratch.data() + (idx + 1) * kInternalEntrySize,
              p + kInternalHeader + idx * kInternalEntrySize, (n - idx) * kInternalEntrySize);
  size_t total = n + 1;
  size_t mid = total / 2;
  auto entry_at = [&](size_t i) {
    Composite e;
    PageId ch;
    std::memcpy(&e.key, scratch.data() + i * kInternalEntrySize, 8);
    std::memcpy(&e.rid, scratch.data() + i * kInternalEntrySize + 8, 8);
    std::memcpy(&ch, scratch.data() + i * kInternalEntrySize + 16, 4);
    return std::pair<Composite, PageId>(e, ch);
  };
  PSE_ASSIGN_OR_RETURN(PageGuard rg, pool_->NewPage());
  char* rp = rg.mutable_data();
  SetNodeType(rp, kInternal);
  auto [mid_entry, mid_child] = entry_at(mid);
  // Left keeps entries [0, mid); right gets (mid, total) with child0 = child
  // of the promoted separator.
  std::memcpy(p + kInternalHeader, scratch.data(), mid * kInternalEntrySize);
  SetCount(p, static_cast<uint16_t>(mid));
  SetChild0(rp, mid_child);
  size_t right_n = total - mid - 1;
  std::memcpy(rp + kInternalHeader, scratch.data() + (mid + 1) * kInternalEntrySize,
              right_n * kInternalEntrySize);
  SetCount(rp, static_cast<uint16_t>(right_n));
  *split = SplitResult{mid_entry.key, mid_entry.rid, rg.page_id()};
  return Status::OK();
}

Result<PageId> BPlusTree::FindLeaf(int64_t key, uint64_t rid) const {
  Composite c{key, rid};
  PageId node = root_;
  while (true) {
    PSE_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(node));
    if (NodeType(g.data()) == kLeaf) return node;
    node = ChildAt(g.data(), InternalChildIndex(g.data(), c));
  }
}

Status BPlusTree::Delete(int64_t key, Rid rid) {
  Composite c{key, rid.Pack()};
  PSE_ASSIGN_OR_RETURN(PageId leaf, FindLeaf(key, rid.Pack()));
  PSE_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(leaf));
  char* p = g.mutable_data();
  uint16_t n = Count(p);
  size_t pos = LeafLowerBound(p, c);
  if (pos >= n || !(LeafEntry(p, pos) == c)) {
    return Status::NotFound("(key,rid) not in index");
  }
  std::memmove(p + kLeafHeader + pos * kLeafEntrySize,
               p + kLeafHeader + (pos + 1) * kLeafEntrySize, (n - pos - 1) * kLeafEntrySize);
  SetCount(p, static_cast<uint16_t>(n - 1));
  --num_entries_;
  return Status::OK();
}

Status BPlusTree::ScanEqual(int64_t key, std::vector<Rid>* out) const {
  return ScanRange(key, key, out);
}

Status BPlusTree::ScanRange(int64_t lo, int64_t hi, std::vector<Rid>* out) const {
  if (lo > hi) return Status::OK();
  PSE_ASSIGN_OR_RETURN(PageId leaf, FindLeaf(lo, 0));
  Composite start{lo, 0};
  PageId pid = leaf;
  while (pid != kInvalidPageId) {
    PSE_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(pid));
    const char* p = g.data();
    uint16_t n = Count(p);
    size_t i = LeafLowerBound(p, start);
    for (; i < n; ++i) {
      Composite e = LeafEntry(p, i);
      if (e.key > hi) return Status::OK();
      out->push_back(Rid::Unpack(e.rid));
    }
    pid = NextLeaf(p);
    start = Composite{INT64_MIN, 0};  // from the next leaf on, take everything
  }
  return Status::OK();
}

Result<uint64_t> BPlusTree::CheckInvariants() const {
  uint32_t leaf_depth = 0;
  return CheckNode(root_, false, 0, 0, false, 0, 0, 1, &leaf_depth);
}

Result<uint64_t> BPlusTree::CheckNode(PageId node, bool has_lo, int64_t lo_key, uint64_t lo_rid,
                                      bool has_hi, int64_t hi_key, uint64_t hi_rid,
                                      uint32_t depth, uint32_t* leaf_depth) const {
  PSE_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(node));
  const char* p = g.data();
  Composite lo{lo_key, lo_rid}, hi{hi_key, hi_rid};
  if (NodeType(p) == kLeaf) {
    if (*leaf_depth == 0) *leaf_depth = depth;
    if (*leaf_depth != depth) return Status::Internal("leaves at different depths");
    uint16_t n = Count(p);
    for (uint16_t i = 0; i < n; ++i) {
      Composite e = LeafEntry(p, i);
      if (i > 0 && !(LeafEntry(p, i - 1) < e)) return Status::Internal("leaf not sorted");
      if (has_lo && e < lo) return Status::Internal("leaf entry below lower bound");
      if (has_hi && !(e < hi)) return Status::Internal("leaf entry above upper bound");
    }
    return static_cast<uint64_t>(n);
  }
  uint16_t n = Count(p);
  if (n == 0) return Status::Internal("empty internal node");
  uint64_t total = 0;
  for (uint16_t i = 0; i <= n; ++i) {
    Composite child_lo = (i == 0) ? lo : InternalKey(p, i - 1);
    bool child_has_lo = (i == 0) ? has_lo : true;
    Composite child_hi = (i == n) ? hi : InternalKey(p, i);
    bool child_has_hi = (i == n) ? has_hi : true;
    if (i > 0 && i < n && !(InternalKey(p, i - 1) < InternalKey(p, i))) {
      return Status::Internal("internal separators not sorted");
    }
    PSE_ASSIGN_OR_RETURN(
        uint64_t sub,
        CheckNode(ChildAt(p, i), child_has_lo, child_lo.key, child_lo.rid, child_has_hi,
                  child_hi.key, child_hi.rid, depth + 1, leaf_depth));
    total += sub;
  }
  return total;
}

}  // namespace pse
