// MigrationJournal: durable record of an in-flight migration operator.
//
// The journal is part of the Database catalog and rides the superblock
// chain: every Checkpoint() persists it, and Database::Open restores it, so
// a process that dies mid-migration can either resume the operator from its
// last committed batch or roll the half-built tables back (the
// MigrationExecutor implements both protocols — see DESIGN.md §14).
//
// The record is storage-level on purpose: it names tables and row cursors,
// never core-level schema objects, so the storage layer stays independent
// of the migration machinery that writes it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pse {

/// \brief Per-operator progress of an online migration.
struct MigrationJournal {
  /// Execution phases of one operator, in order. Before kDropSources the
  /// operator can be rolled back (sources are untouched); from kDropSources
  /// on it can only roll forward.
  enum class Phase : uint8_t {
    kCreateTargets = 0,  ///< destination tables + indexes being created
    kCopy = 1,           ///< batched data movement in progress
    kDropSources = 2,    ///< copy durable; superseded source tables dropping
    kFinalize = 3,       ///< sources gone; re-ANALYZE and clear the journal
  };

  /// Copy progress of one destination table.
  struct Target {
    std::string table;
    bool completed = false;   ///< fully copied and made durable
    uint64_t src_cursor = 0;  ///< source rows consumed (scan order = insert order)
    uint64_t dest_rows = 0;   ///< rows inserted (== cursor unless deduplicating)
  };

  bool active = false;
  int32_t op_id = 0;
  uint8_t op_kind = 0;  ///< OperatorKind of the in-flight operator
  Phase phase = Phase::kCreateTargets;
  /// Source tables to drop once every target is complete.
  std::vector<std::string> drop_tables;
  std::vector<Target> targets;
  /// Index into `targets` of the in-flight destination.
  uint32_t target_pos = 0;
  /// Batches committed so far (reporting/fault-injection bookkeeping).
  uint64_t batches_committed = 0;

  void Clear() { *this = MigrationJournal{}; }

  /// One-line human-readable summary ("inactive" when !active).
  std::string ToString() const;
};

const char* MigrationPhaseName(MigrationJournal::Phase phase);

}  // namespace pse
