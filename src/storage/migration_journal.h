// MigrationJournal: durable record of an in-flight migration operator.
//
// The journal is part of the Database catalog and rides the superblock
// chain: every Checkpoint() persists it, and Database::Open restores it, so
// a process that dies mid-migration can either resume the operator from its
// last committed batch or roll the half-built tables back (the
// MigrationExecutor implements both protocols — see DESIGN.md §14).
//
// The record is storage-level on purpose: it names tables and row cursors,
// never core-level schema objects, so the storage layer stays independent
// of the migration machinery that writes it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pse {

/// \brief Per-operator progress of an online migration.
struct MigrationJournal {
  /// Execution phases of one operator, in order. Before kDropSources the
  /// operator can be rolled back (sources are untouched); from kDropSources
  /// on it can only roll forward.
  enum class Phase : uint8_t {
    kCreateTargets = 0,  ///< destination tables + indexes being created
    kCopy = 1,           ///< batched data movement in progress
    kDropSources = 2,    ///< copy durable; superseded source tables dropping
    kFinalize = 3,       ///< sources gone; re-ANALYZE and clear the journal
  };

  /// Copy progress of one destination table.
  struct Target {
    std::string table;
    bool completed = false;  ///< fully copied and made durable
    /// Source rows consumed, as a *count*. Sufficient on its own only while
    /// the source is frozen: scan order is insert order (heap tail-append),
    /// but concurrent DML makes a count ambiguous — a delete behind the
    /// cursor shifts later rows under it, and an insert behind it would be
    /// skipped. Kept as the resume fallback for journals without a frontier.
    uint64_t src_cursor = 0;
    uint64_t dest_rows = 0;  ///< rows inserted (== cursor unless deduplicating)
    /// Copy frontier: packed Rid (rid.Pack()) of the first source row NOT
    /// yet consumed. Resume semantics: re-scan the source and consume every
    /// row with rid.Pack() >= frontier. Rids are tail-append-monotone, so
    /// rows *behind* the frontier were all scanned, whatever concurrent DML
    /// did to the count — an insert behind an already-valid frontier must be
    /// propagated by the writer itself (the DmlRouter's dual-apply), never
    /// by the copy loop.
    uint64_t frontier = 0;
    bool frontier_valid = false;  ///< false on pre-frontier journals (use src_cursor)
  };

  bool active = false;
  int32_t op_id = 0;
  uint8_t op_kind = 0;  ///< OperatorKind of the in-flight operator
  Phase phase = Phase::kCreateTargets;
  /// Source tables to drop once every target is complete.
  std::vector<std::string> drop_tables;
  std::vector<Target> targets;
  /// Index into `targets` of the in-flight destination.
  uint32_t target_pos = 0;
  /// Batches committed so far (reporting/fault-injection bookkeeping).
  uint64_t batches_committed = 0;

  void Clear() { *this = MigrationJournal{}; }

  /// One-line human-readable summary ("inactive" when !active).
  std::string ToString() const;
};

const char* MigrationPhaseName(MigrationJournal::Phase phase);

}  // namespace pse
