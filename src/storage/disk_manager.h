// Page-granular storage backends. Every physical read/write in the system
// funnels through a DiskManager, which counts them — these counters are the
// experiments' "I/O number".
//
// Thread safety: all DiskManager implementations are safe for concurrent
// use. Counters are atomics (readable without a latch, e.g. by the
// per-phase measurement code while foreground sessions run), and the
// concrete backends serialize their page-store access internally. See
// DESIGN.md §15 for the full latching hierarchy.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/storage_defs.h"

namespace pse {

/// Raw physical I/O counters. Atomic so concurrent sessions can bump and
/// read them without a latch; copies/assignments snapshot the values
/// (relaxed — the counters are statistics, not synchronization).
struct IoStats {
  std::atomic<uint64_t> page_reads{0};
  std::atomic<uint64_t> page_writes{0};
  std::atomic<uint64_t> pages_allocated{0};

  IoStats() = default;
  IoStats(const IoStats& o) { *this = o; }
  IoStats& operator=(const IoStats& o) {
    if (this != &o) {
      page_reads.store(o.page_reads.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      page_writes.store(o.page_writes.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
      pages_allocated.store(o.pages_allocated.load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    }
    return *this;
  }

  uint64_t TotalIo() const {
    return page_reads.load(std::memory_order_relaxed) +
           page_writes.load(std::memory_order_relaxed);
  }
  void Reset() {
    page_reads.store(0, std::memory_order_relaxed);
    page_writes.store(0, std::memory_order_relaxed);
    pages_allocated.store(0, std::memory_order_relaxed);
  }
};

/// \brief Abstract page store.
///
/// Implementations must tolerate reads of never-written pages (return
/// zeroed bytes) because the buffer pool news pages lazily.
class DiskManager {
 public:
  virtual ~DiskManager() = default;

  /// Allocates a fresh page id.
  virtual PageId AllocatePage() = 0;
  /// Reads a full page into `out` (kPageSize bytes).
  virtual Status ReadPage(PageId page_id, char* out) = 0;
  /// Writes a full page from `data` (kPageSize bytes).
  virtual Status WritePage(PageId page_id, const char* data) = 0;
  /// Marks a page free (best effort; ids are not reused).
  virtual void DeallocatePage(PageId page_id) = 0;
  /// Number of pages ever allocated.
  virtual uint64_t NumAllocatedPages() const = 0;

  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 protected:
  IoStats stats_;
};

/// Heap-backed page store. Fast and deterministic; the default for tests and
/// benchmarks (the experiments measure I/O *counts*, not device latency).
/// A single mutex serializes page-vector growth and page copies.
class InMemoryDiskManager : public DiskManager {
 public:
  PageId AllocatePage() override;
  Status ReadPage(PageId page_id, char* out) override;
  Status WritePage(PageId page_id, const char* data) override;
  void DeallocatePage(PageId page_id) override;
  uint64_t NumAllocatedPages() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return pages_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<char[]>> pages_;
};

/// \brief Fault-injecting decorator over any page store.
///
/// Delegates to `inner` until a configured limit is reached, then fails
/// every further operation of that kind with kIOError — modeling a device
/// that dies after the K-th page write (or read, or total I/O). Successful
/// operations are counted in this manager's own stats so Database::TotalIo
/// keeps working through the wrapper. Used by the crash-recovery and
/// failure-injection test suites; inert (all limits off) by default.
/// Counters are atomic; under concurrency a budget may be overshot by the
/// number of in-flight operations (budgets are configured while the
/// database is quiescent, so the tests never see that window).
class FaultInjectionDiskManager : public DiskManager {
 public:
  static constexpr uint64_t kNoLimit = ~uint64_t{0};

  explicit FaultInjectionDiskManager(std::unique_ptr<DiskManager> inner)
      : inner_(std::move(inner)) {}

  /// Fails every write once `n` writes have succeeded (kNoLimit = never).
  void set_write_budget(uint64_t n) { write_budget_ = n; }
  /// Fails every read once `n` reads have succeeded.
  void set_read_budget(uint64_t n) { read_budget_ = n; }
  /// Fails everything once `n` reads+writes have succeeded.
  void set_io_budget(uint64_t n) { io_budget_ = n; }

  uint64_t reads_done() const { return reads_.load(std::memory_order_relaxed); }
  uint64_t writes_done() const { return writes_.load(std::memory_order_relaxed); }
  DiskManager* inner() { return inner_.get(); }

  PageId AllocatePage() override {
    stats_.pages_allocated.fetch_add(1, std::memory_order_relaxed);
    return inner_->AllocatePage();
  }
  Status ReadPage(PageId page_id, char* out) override {
    uint64_t reads = reads_.load(std::memory_order_relaxed);
    if (reads >= read_budget_ ||
        reads + writes_.load(std::memory_order_relaxed) >= io_budget_) {
      return Status::IOError("injected read failure at page " + std::to_string(page_id));
    }
    PSE_RETURN_NOT_OK(inner_->ReadPage(page_id, out));
    reads_.fetch_add(1, std::memory_order_relaxed);
    stats_.page_reads.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  Status WritePage(PageId page_id, const char* data) override {
    uint64_t writes = writes_.load(std::memory_order_relaxed);
    if (writes >= write_budget_ ||
        reads_.load(std::memory_order_relaxed) + writes >= io_budget_) {
      return Status::IOError("injected write failure at page " + std::to_string(page_id));
    }
    PSE_RETURN_NOT_OK(inner_->WritePage(page_id, data));
    writes_.fetch_add(1, std::memory_order_relaxed);
    stats_.page_writes.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  void DeallocatePage(PageId page_id) override { inner_->DeallocatePage(page_id); }
  uint64_t NumAllocatedPages() const override { return inner_->NumAllocatedPages(); }

 private:
  std::unique_ptr<DiskManager> inner_;
  uint64_t write_budget_ = kNoLimit;
  uint64_t read_budget_ = kNoLimit;
  uint64_t io_budget_ = kNoLimit;
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
};

/// File-backed page store (single file, page_id * kPageSize offsets). Used
/// by the durability-oriented examples/tests. A mutex serializes the
/// seek+read/write pairs on the shared FILE handle.
class FileDiskManager : public DiskManager {
 public:
  /// Opens (creating if needed) the backing file.
  static Result<std::unique_ptr<FileDiskManager>> Open(const std::string& path);
  ~FileDiskManager() override;

  PageId AllocatePage() override;
  Status ReadPage(PageId page_id, char* out) override;
  Status WritePage(PageId page_id, const char* data) override;
  void DeallocatePage(PageId page_id) override;
  uint64_t NumAllocatedPages() const override {
    return next_page_id_.load(std::memory_order_relaxed);
  }

 private:
  FileDiskManager(std::FILE* f, uint64_t existing_pages)
      : file_(f), next_page_id_(existing_pages) {}
  mutable std::mutex mu_;
  std::FILE* file_;
  std::atomic<uint64_t> next_page_id_;
};

}  // namespace pse
