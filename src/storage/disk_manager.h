// Page-granular storage backends. Every physical read/write in the system
// funnels through a DiskManager, which counts them — these counters are the
// experiments' "I/O number".
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/storage_defs.h"

namespace pse {

/// Raw physical I/O counters.
struct IoStats {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t pages_allocated = 0;

  uint64_t TotalIo() const { return page_reads + page_writes; }
  void Reset() { *this = IoStats{}; }
};

/// \brief Abstract page store.
///
/// Implementations must tolerate reads of never-written pages (return
/// zeroed bytes) because the buffer pool news pages lazily.
class DiskManager {
 public:
  virtual ~DiskManager() = default;

  /// Allocates a fresh page id.
  virtual PageId AllocatePage() = 0;
  /// Reads a full page into `out` (kPageSize bytes).
  virtual Status ReadPage(PageId page_id, char* out) = 0;
  /// Writes a full page from `data` (kPageSize bytes).
  virtual Status WritePage(PageId page_id, const char* data) = 0;
  /// Marks a page free (best effort; ids are not reused).
  virtual void DeallocatePage(PageId page_id) = 0;
  /// Number of pages ever allocated.
  virtual uint64_t NumAllocatedPages() const = 0;

  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 protected:
  IoStats stats_;
};

/// Heap-backed page store. Fast and deterministic; the default for tests and
/// benchmarks (the experiments measure I/O *counts*, not device latency).
class InMemoryDiskManager : public DiskManager {
 public:
  PageId AllocatePage() override;
  Status ReadPage(PageId page_id, char* out) override;
  Status WritePage(PageId page_id, const char* data) override;
  void DeallocatePage(PageId page_id) override;
  uint64_t NumAllocatedPages() const override { return pages_.size(); }

 private:
  std::vector<std::unique_ptr<char[]>> pages_;
};

/// \brief Fault-injecting decorator over any page store.
///
/// Delegates to `inner` until a configured limit is reached, then fails
/// every further operation of that kind with kIOError — modeling a device
/// that dies after the K-th page write (or read, or total I/O). Successful
/// operations are counted in this manager's own stats so Database::TotalIo
/// keeps working through the wrapper. Used by the crash-recovery and
/// failure-injection test suites; inert (all limits off) by default.
class FaultInjectionDiskManager : public DiskManager {
 public:
  static constexpr uint64_t kNoLimit = ~uint64_t{0};

  explicit FaultInjectionDiskManager(std::unique_ptr<DiskManager> inner)
      : inner_(std::move(inner)) {}

  /// Fails every write once `n` writes have succeeded (kNoLimit = never).
  void set_write_budget(uint64_t n) { write_budget_ = n; }
  /// Fails every read once `n` reads have succeeded.
  void set_read_budget(uint64_t n) { read_budget_ = n; }
  /// Fails everything once `n` reads+writes have succeeded.
  void set_io_budget(uint64_t n) { io_budget_ = n; }

  uint64_t reads_done() const { return reads_; }
  uint64_t writes_done() const { return writes_; }
  DiskManager* inner() { return inner_.get(); }

  PageId AllocatePage() override {
    ++stats_.pages_allocated;
    return inner_->AllocatePage();
  }
  Status ReadPage(PageId page_id, char* out) override {
    if (reads_ >= read_budget_ || reads_ + writes_ >= io_budget_) {
      return Status::IOError("injected read failure at page " + std::to_string(page_id));
    }
    PSE_RETURN_NOT_OK(inner_->ReadPage(page_id, out));
    ++reads_;
    ++stats_.page_reads;
    return Status::OK();
  }
  Status WritePage(PageId page_id, const char* data) override {
    if (writes_ >= write_budget_ || reads_ + writes_ >= io_budget_) {
      return Status::IOError("injected write failure at page " + std::to_string(page_id));
    }
    PSE_RETURN_NOT_OK(inner_->WritePage(page_id, data));
    ++writes_;
    ++stats_.page_writes;
    return Status::OK();
  }
  void DeallocatePage(PageId page_id) override { inner_->DeallocatePage(page_id); }
  uint64_t NumAllocatedPages() const override { return inner_->NumAllocatedPages(); }

 private:
  std::unique_ptr<DiskManager> inner_;
  uint64_t write_budget_ = kNoLimit;
  uint64_t read_budget_ = kNoLimit;
  uint64_t io_budget_ = kNoLimit;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
};

/// File-backed page store (single file, page_id * kPageSize offsets). Used
/// by the durability-oriented examples/tests.
class FileDiskManager : public DiskManager {
 public:
  /// Opens (creating if needed) the backing file.
  static Result<std::unique_ptr<FileDiskManager>> Open(const std::string& path);
  ~FileDiskManager() override;

  PageId AllocatePage() override;
  Status ReadPage(PageId page_id, char* out) override;
  Status WritePage(PageId page_id, const char* data) override;
  void DeallocatePage(PageId page_id) override;
  uint64_t NumAllocatedPages() const override { return next_page_id_; }

 private:
  FileDiskManager(std::FILE* f, uint64_t existing_pages)
      : file_(f), next_page_id_(existing_pages) {}
  std::FILE* file_;
  uint64_t next_page_id_;
};

}  // namespace pse
