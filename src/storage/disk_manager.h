// Page-granular storage backends. Every physical read/write in the system
// funnels through a DiskManager, which counts them — these counters are the
// experiments' "I/O number".
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/storage_defs.h"

namespace pse {

/// Raw physical I/O counters.
struct IoStats {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t pages_allocated = 0;

  uint64_t TotalIo() const { return page_reads + page_writes; }
  void Reset() { *this = IoStats{}; }
};

/// \brief Abstract page store.
///
/// Implementations must tolerate reads of never-written pages (return
/// zeroed bytes) because the buffer pool news pages lazily.
class DiskManager {
 public:
  virtual ~DiskManager() = default;

  /// Allocates a fresh page id.
  virtual PageId AllocatePage() = 0;
  /// Reads a full page into `out` (kPageSize bytes).
  virtual Status ReadPage(PageId page_id, char* out) = 0;
  /// Writes a full page from `data` (kPageSize bytes).
  virtual Status WritePage(PageId page_id, const char* data) = 0;
  /// Marks a page free (best effort; ids are not reused).
  virtual void DeallocatePage(PageId page_id) = 0;
  /// Number of pages ever allocated.
  virtual uint64_t NumAllocatedPages() const = 0;

  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 protected:
  IoStats stats_;
};

/// Heap-backed page store. Fast and deterministic; the default for tests and
/// benchmarks (the experiments measure I/O *counts*, not device latency).
class InMemoryDiskManager : public DiskManager {
 public:
  PageId AllocatePage() override;
  Status ReadPage(PageId page_id, char* out) override;
  Status WritePage(PageId page_id, const char* data) override;
  void DeallocatePage(PageId page_id) override;
  uint64_t NumAllocatedPages() const override { return pages_.size(); }

 private:
  std::vector<std::unique_ptr<char[]>> pages_;
};

/// File-backed page store (single file, page_id * kPageSize offsets). Used
/// by the durability-oriented examples/tests.
class FileDiskManager : public DiskManager {
 public:
  /// Opens (creating if needed) the backing file.
  static Result<std::unique_ptr<FileDiskManager>> Open(const std::string& path);
  ~FileDiskManager() override;

  PageId AllocatePage() override;
  Status ReadPage(PageId page_id, char* out) override;
  Status WritePage(PageId page_id, const char* data) override;
  void DeallocatePage(PageId page_id) override;
  uint64_t NumAllocatedPages() const override { return next_page_id_; }

 private:
  FileDiskManager(std::FILE* f, uint64_t existing_pages)
      : file_(f), next_page_id_(existing_pages) {}
  std::FILE* file_;
  uint64_t next_page_id_;
};

}  // namespace pse
