// Heap file of slotted pages storing variable-length tuples.
//
// Page layout (kPageSize bytes):
//   [0..4)   u32 next_page_id (kInvalidPageId at tail)
//   [4..6)   u16 slot_count
//   [6..8)   u16 free_end     (tuple bytes occupy [free_end, kPageSize))
//   [8..)    slot array: per slot {u16 offset, u16 size}; offset==0 marks a
//            deleted slot (tuple offsets are always >= header size, so 0 is
//            a safe sentinel).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "catalog/schema.h"
#include "catalog/tuple.h"
#include "common/status.h"
#include "storage/buffer_pool.h"

namespace pse {

/// \brief Unordered collection of rows for one table.
///
/// Rows are serialized with TupleCodec. Updates that no longer fit in place
/// are relocated (the returned Rid changes); callers owning indexes must
/// re-index in that case.
class TableHeap {
 public:
  /// Creates an empty heap (allocates the first page).
  static Result<TableHeap> Create(BufferPool* pool, const TableSchema* schema);
  /// Re-attaches to an existing heap.
  static TableHeap Attach(BufferPool* pool, const TableSchema* schema, PageId first_page,
                          PageId last_page, uint64_t num_pages = 0);

  /// Appends a row; returns its Rid.
  Result<Rid> Insert(const Row& row);
  /// Reads the row at `rid`. NotFound for deleted/invalid slots.
  Status Get(const Rid& rid, Row* out) const;
  /// Deletes the row at `rid`.
  Status Delete(const Rid& rid);
  /// Replaces the row at `rid`; returns the (possibly new) Rid.
  Result<Rid> Update(const Rid& rid, const Row& row);

  PageId first_page() const { return first_page_; }
  PageId last_page() const { return last_page_; }
  /// Pages currently in the heap chain.
  uint64_t NumPages() const { return num_pages_; }
  const TableSchema* schema() const { return schema_; }

  /// \brief Forward scan over live tuples.
  ///
  /// Usage: for (auto it = heap.Begin(); !it.AtEnd(); it.Next()) { it.row() }
  /// Iteration pins one page at a time.
  class Iterator {
   public:
    /// An already-exhausted iterator (placeholder before assignment).
    Iterator() : at_end_(true) {}

    bool AtEnd() const { return at_end_; }
    /// Advances to the next live tuple.
    Status Next();
    const Row& row() const { return row_; }
    Rid rid() const { return rid_; }

    /// \brief Appends up to `max_rows` live tuples to `out`, advancing past
    /// them.
    ///
    /// Equivalent to repeating { out->push_back(row()); Next(); } but pins
    /// each heap page once instead of once per tuple — the storage half of
    /// the vectorized scan. Starts with the current tuple; afterwards the
    /// iterator is positioned on the first unconsumed tuple (or AtEnd()).
    /// Returns the number appended (0 at end of stream).
    Result<size_t> FillBatch(size_t max_rows, std::vector<Row>* out);

    /// \brief Column-pruned FillBatch feeding the vectorized scan directly.
    ///
    /// Decodes only the columns named by `wanted` (strictly ascending
    /// positions), appending one value per consumed tuple to each matching
    /// `cols[k]` vector — no intermediate Row and no allocation for skipped
    /// columns (see TupleCodec::DeserializeColumns). Advances exactly like
    /// FillBatch and returns the number of tuples consumed.
    Result<size_t> FillBatchColumns(size_t max_rows, const std::vector<size_t>& wanted,
                                    const std::vector<std::vector<Value>*>& cols);

   private:
    friend class TableHeap;
    Iterator(const TableHeap* heap) : heap_(heap) {}
    Status LoadFirst();
    /// Scans forward from current position (exclusive) to the next live slot.
    Status Advance(bool include_current);

    const TableHeap* heap_ = nullptr;
    bool at_end_ = false;
    Rid rid_;
    Row row_;
  };

  /// Iterator positioned at the first live tuple. Errors surface through
  /// Next(); a Begin() on an unreadable heap yields AtEnd().
  Iterator Begin() const;

  /// \brief Counts live tuples without deserializing them, defensively.
  ///
  /// Walks at most `max_pages` pages of the chain and validates every slot
  /// (offsets inside the page, tuple bytes in bounds) before trusting it.
  /// Returns Internal on any anomaly — a longer-than-expected chain, a
  /// malformed slot, an out-of-bounds tuple. Crash recovery uses this to
  /// decide whether an interrupted copy can continue from its journaled
  /// cursor or the destination must be rebuilt: pages flushed after the
  /// last checkpoint make the count (or the chain) disagree with the
  /// checkpointed catalog.
  Result<uint64_t> CountRowsBounded(uint64_t max_pages) const;

  /// \brief Clamps the page chain to its first `keep_pages` pages.
  ///
  /// Rewrites the next-pointer of the keep_pages-th page to end the chain
  /// there (pages beyond it are orphaned; page ids are never reused). Crash
  /// recovery uses this before dropping a heap whose chain grew past the
  /// checkpointed catalog — the un-checkpointed tail may contain a
  /// never-written (zeroed) page whose next-pointer cannot be trusted, so
  /// the regular drop walk must not cross into it.
  Status TruncateChain(uint64_t keep_pages);

 private:
  TableHeap(BufferPool* pool, const TableSchema* schema)
      : pool_(pool), schema_(schema) {}

  static uint16_t SlotCount(const char* page);
  static uint16_t FreeEnd(const char* page);
  static PageId NextPage(const char* page);

  BufferPool* pool_ = nullptr;
  const TableSchema* schema_ = nullptr;
  PageId first_page_ = kInvalidPageId;
  PageId last_page_ = kInvalidPageId;
  uint64_t num_pages_ = 0;
};

}  // namespace pse
