#include "storage/migration_journal.h"

namespace pse {

const char* MigrationPhaseName(MigrationJournal::Phase phase) {
  switch (phase) {
    case MigrationJournal::Phase::kCreateTargets:
      return "create-targets";
    case MigrationJournal::Phase::kCopy:
      return "copy";
    case MigrationJournal::Phase::kDropSources:
      return "drop-sources";
    case MigrationJournal::Phase::kFinalize:
      return "finalize";
  }
  return "?";
}

std::string MigrationJournal::ToString() const {
  if (!active) return "inactive";
  std::string out = "op#" + std::to_string(op_id) + " phase=" + MigrationPhaseName(phase) +
                    " batches=" + std::to_string(batches_committed) + " targets=[";
  for (size_t i = 0; i < targets.size(); ++i) {
    const Target& t = targets[i];
    if (i > 0) out += ", ";
    out += t.table + (t.completed ? " done" : " @" + std::to_string(t.src_cursor) + "/" +
                                                  std::to_string(t.dest_rows));
  }
  out += "]";
  if (!drop_tables.empty()) {
    out += " drop=[";
    for (size_t i = 0; i < drop_tables.size(); ++i) {
      if (i > 0) out += ", ";
      out += drop_tables[i];
    }
    out += "]";
  }
  return out;
}

}  // namespace pse
