// Catalog persistence: Database::Open / Checkpoint.
//
// The catalog (table schemas, heap extents, row counts, index roots) is
// serialized into a chain of "superblock" pages starting at page 0 of the
// backing file:
//   page layout: [0..4) u32 next_page (kInvalidPageId ends the chain),
//                [4..8) u32 payload bytes in this page, [8..) payload.
// Checkpoint reuses the existing chain pages and extends it as needed (a
// shrinking catalog orphans tail pages; ids are never reused, which is the
// DiskManager's general policy anyway). Data pages need no special handling:
// they are already written through the buffer pool, and FlushAll() at
// checkpoint makes them durable.
#include <cstring>

#include "storage/database.h"

namespace pse {

namespace {

constexpr uint32_t kMagic = 0x50534543;  // "PSEC"
// v1: tables only; v2 appends the migration-journal section; v3 appends the
// per-target copy frontier (migration_journal.h) to each journal target.
// Older files are still readable (journal defaults to inactive; frontier
// defaults to invalid, falling back to src_cursor count-skip on resume).
constexpr uint32_t kVersion = 3;
constexpr size_t kChainHeader = 8;
constexpr size_t kChainPayload = kPageSize - kChainHeader;

class BufWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    buf_.append(s);
  }
  const std::string& buffer() const { return buf_; }

 private:
  void Raw(const void* p, size_t n) { buf_.append(static_cast<const char*>(p), n); }
  std::string buf_;
};

class BufReader {
 public:
  BufReader(const char* data, size_t size) : data_(data), size_(size) {}

  Result<uint8_t> U8() {
    if (pos_ + 1 > size_) return Truncated();
    return static_cast<uint8_t>(data_[pos_++]);
  }
  Result<uint32_t> U32() {
    if (pos_ + 4 > size_) return Truncated();
    uint32_t v;
    std::memcpy(&v, data_ + pos_, 4);
    pos_ += 4;
    return v;
  }
  Result<uint64_t> U64() {
    if (pos_ + 8 > size_) return Truncated();
    uint64_t v;
    std::memcpy(&v, data_ + pos_, 8);
    pos_ += 8;
    return v;
  }
  Result<std::string> Str() {
    PSE_ASSIGN_OR_RETURN(uint32_t len, U32());
    if (pos_ + len > size_) return Truncated();
    std::string s(data_ + pos_, len);
    pos_ += len;
    return s;
  }

 private:
  Status Truncated() const { return Status::Internal("superblock truncated"); }
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<Database>> Database::Open(const std::string& path, size_t pool_pages) {
  PSE_ASSIGN_OR_RETURN(std::unique_ptr<FileDiskManager> disk, FileDiskManager::Open(path));
  return Open(std::unique_ptr<DiskManager>(std::move(disk)), pool_pages);
}

Result<std::unique_ptr<Database>> Database::Open(std::unique_ptr<DiskManager> disk,
                                                size_t pool_pages) {
  bool fresh = disk->NumAllocatedPages() == 0;
  auto db = std::make_unique<Database>(pool_pages, std::move(disk));
  if (fresh) {
    // Reserve page 0 for the superblock before anything else claims it.
    PSE_ASSIGN_OR_RETURN(PageGuard g, db->pool_->NewPage());
    if (g.page_id() != 0) {
      return Status::Internal("superblock must be page 0");
    }
    char* p = g.mutable_data();
    PageId invalid = kInvalidPageId;
    std::memcpy(p, &invalid, 4);
    uint32_t zero = 0;
    std::memcpy(p + 4, &zero, 4);
    db->superblock_head_ = 0;
    g.Release();
    PSE_RETURN_NOT_OK(db->Checkpoint());
    return db;
  }
  db->superblock_head_ = 0;
  PSE_RETURN_NOT_OK(db->LoadSuperblock());
  return db;
}

Status Database::Checkpoint() {
  if (superblock_head_ != kInvalidPageId) {
    PSE_RETURN_NOT_OK(WriteSuperblock());
  }
  return pool_->FlushAll();
}

Status Database::WriteSuperblock() {
  BufWriter w;
  w.U32(kMagic);
  w.U32(kVersion);
  w.U32(static_cast<uint32_t>(tables_.size()));
  for (const auto& [key, info] : tables_) {
    const TableSchema& schema = *info->schema;
    w.Str(schema.name());
    w.U32(static_cast<uint32_t>(schema.num_columns()));
    for (const Column& c : schema.columns()) {
      w.Str(c.name);
      w.U8(static_cast<uint8_t>(c.type));
      w.U32(c.avg_width);
      w.U8(c.nullable ? 1 : 0);
    }
    w.U32(static_cast<uint32_t>(schema.key_columns().size()));
    for (const auto& k : schema.key_columns()) w.Str(k);
    w.U32(info->heap->first_page());
    w.U32(info->heap->last_page());
    w.U64(info->heap->NumPages());
    w.U64(info->row_count);
    w.U32(static_cast<uint32_t>(info->indexes.size()));
    for (const auto& idx : info->indexes) {
      w.Str(idx->name);
      w.Str(idx->column);
      w.U32(static_cast<uint32_t>(idx->column_idx));
      w.U32(idx->tree->root());
      w.U32(idx->tree->height());
      w.U64(idx->tree->num_entries());
    }
  }

  // Migration journal (v2 section).
  w.U8(journal_.active ? 1 : 0);
  if (journal_.active) {
    w.U32(static_cast<uint32_t>(journal_.op_id));
    w.U8(journal_.op_kind);
    w.U8(static_cast<uint8_t>(journal_.phase));
    w.U32(static_cast<uint32_t>(journal_.drop_tables.size()));
    for (const auto& name : journal_.drop_tables) w.Str(name);
    w.U32(static_cast<uint32_t>(journal_.targets.size()));
    for (const auto& t : journal_.targets) {
      w.Str(t.table);
      w.U8(t.completed ? 1 : 0);
      w.U64(t.src_cursor);
      w.U64(t.dest_rows);
      w.U64(t.frontier);
      w.U8(t.frontier_valid ? 1 : 0);
    }
    w.U32(journal_.target_pos);
    w.U64(journal_.batches_committed);
  }

  // Spill the buffer across the chain.
  const std::string& buf = w.buffer();
  size_t offset = 0;
  PageId page = superblock_head_;
  while (true) {
    PSE_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(page));
    char* p = g.mutable_data();
    uint32_t chunk = static_cast<uint32_t>(std::min(kChainPayload, buf.size() - offset));
    std::memcpy(p + 8, buf.data() + offset, chunk);
    uint32_t len = chunk;
    std::memcpy(p + 4, &len, 4);
    offset += chunk;
    if (offset >= buf.size()) {
      PageId invalid = kInvalidPageId;
      std::memcpy(p, &invalid, 4);
      break;
    }
    PageId next;
    std::memcpy(&next, p, 4);
    if (next == kInvalidPageId) {
      PSE_ASSIGN_OR_RETURN(PageGuard fresh, pool_->NewPage());
      next = fresh.page_id();
      PageId invalid = kInvalidPageId;
      std::memcpy(fresh.mutable_data(), &invalid, 4);
      std::memcpy(p, &next, 4);
    }
    page = next;
  }
  return Status::OK();
}

Status Database::LoadSuperblock() {
  // Gather the chain into one buffer.
  std::string buf;
  PageId page = superblock_head_;
  while (page != kInvalidPageId) {
    PSE_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(page));
    const char* p = g.data();
    PageId next;
    std::memcpy(&next, p, 4);
    uint32_t len;
    std::memcpy(&len, p + 4, 4);
    if (len > kChainPayload) return Status::Internal("corrupt superblock chunk");
    buf.append(p + 8, len);
    page = next;
  }
  BufReader r(buf.data(), buf.size());
  PSE_ASSIGN_OR_RETURN(uint32_t magic, r.U32());
  if (magic != kMagic) return Status::Internal("bad superblock magic");
  PSE_ASSIGN_OR_RETURN(uint32_t version, r.U32());
  if (version < 1 || version > kVersion) {
    return Status::NotImplemented("superblock version " + std::to_string(version));
  }
  PSE_ASSIGN_OR_RETURN(uint32_t table_count, r.U32());
  for (uint32_t t = 0; t < table_count; ++t) {
    PSE_ASSIGN_OR_RETURN(std::string name, r.Str());
    PSE_ASSIGN_OR_RETURN(uint32_t col_count, r.U32());
    std::vector<Column> columns;
    for (uint32_t c = 0; c < col_count; ++c) {
      Column col;
      PSE_ASSIGN_OR_RETURN(col.name, r.Str());
      PSE_ASSIGN_OR_RETURN(uint8_t type, r.U8());
      col.type = static_cast<TypeId>(type);
      PSE_ASSIGN_OR_RETURN(col.avg_width, r.U32());
      PSE_ASSIGN_OR_RETURN(uint8_t nullable, r.U8());
      col.nullable = nullable != 0;
      columns.push_back(std::move(col));
    }
    PSE_ASSIGN_OR_RETURN(uint32_t key_count, r.U32());
    std::vector<std::string> keys;
    for (uint32_t k = 0; k < key_count; ++k) {
      PSE_ASSIGN_OR_RETURN(std::string key_col, r.Str());
      keys.push_back(std::move(key_col));
    }
    auto info = std::make_unique<TableInfo>();
    info->schema = std::make_unique<TableSchema>(name, std::move(columns), std::move(keys));
    PSE_ASSIGN_OR_RETURN(uint32_t first_page, r.U32());
    PSE_ASSIGN_OR_RETURN(uint32_t last_page, r.U32());
    PSE_ASSIGN_OR_RETURN(uint64_t num_pages, r.U64());
    PSE_ASSIGN_OR_RETURN(info->row_count, r.U64());
    info->heap = std::make_unique<TableHeap>(
        TableHeap::Attach(pool_.get(), info->schema.get(), first_page, last_page, num_pages));
    PSE_ASSIGN_OR_RETURN(uint32_t index_count, r.U32());
    for (uint32_t i = 0; i < index_count; ++i) {
      auto idx = std::make_unique<IndexInfo>();
      PSE_ASSIGN_OR_RETURN(idx->name, r.Str());
      PSE_ASSIGN_OR_RETURN(idx->column, r.Str());
      PSE_ASSIGN_OR_RETURN(uint32_t column_idx, r.U32());
      idx->column_idx = column_idx;
      PSE_ASSIGN_OR_RETURN(uint32_t root, r.U32());
      PSE_ASSIGN_OR_RETURN(uint32_t height, r.U32());
      PSE_ASSIGN_OR_RETURN(uint64_t entries, r.U64());
      idx->tree = std::make_unique<BPlusTree>(
          BPlusTree::Attach(pool_.get(), root, height, entries));
      info->indexes.push_back(std::move(idx));
    }
    std::string lowered;
    for (char ch : name) {
      lowered.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(ch))));
    }
    info->latch.LockdepRegister("table:" + lowered, kLockRankTable, /*allows_io=*/true);
    tables_[lowered] = std::move(info);
  }

  journal_.Clear();
  if (version >= 2) {
    PSE_ASSIGN_OR_RETURN(uint8_t active, r.U8());
    if (active != 0) {
      journal_.active = true;
      PSE_ASSIGN_OR_RETURN(uint32_t op_id, r.U32());
      journal_.op_id = static_cast<int32_t>(op_id);
      PSE_ASSIGN_OR_RETURN(journal_.op_kind, r.U8());
      PSE_ASSIGN_OR_RETURN(uint8_t phase, r.U8());
      if (phase > static_cast<uint8_t>(MigrationJournal::Phase::kFinalize)) {
        return Status::Internal("corrupt migration journal: phase " + std::to_string(phase));
      }
      journal_.phase = static_cast<MigrationJournal::Phase>(phase);
      PSE_ASSIGN_OR_RETURN(uint32_t drop_count, r.U32());
      for (uint32_t i = 0; i < drop_count; ++i) {
        PSE_ASSIGN_OR_RETURN(std::string name, r.Str());
        journal_.drop_tables.push_back(std::move(name));
      }
      PSE_ASSIGN_OR_RETURN(uint32_t target_count, r.U32());
      for (uint32_t i = 0; i < target_count; ++i) {
        MigrationJournal::Target t;
        PSE_ASSIGN_OR_RETURN(t.table, r.Str());
        PSE_ASSIGN_OR_RETURN(uint8_t completed, r.U8());
        t.completed = completed != 0;
        PSE_ASSIGN_OR_RETURN(t.src_cursor, r.U64());
        PSE_ASSIGN_OR_RETURN(t.dest_rows, r.U64());
        if (version >= 3) {
          PSE_ASSIGN_OR_RETURN(t.frontier, r.U64());
          PSE_ASSIGN_OR_RETURN(uint8_t frontier_valid, r.U8());
          t.frontier_valid = frontier_valid != 0;
        }
        journal_.targets.push_back(std::move(t));
      }
      PSE_ASSIGN_OR_RETURN(journal_.target_pos, r.U32());
      PSE_ASSIGN_OR_RETURN(journal_.batches_committed, r.U64());
    }
  }
  return Status::OK();
}

}  // namespace pse
