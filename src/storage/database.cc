#include "storage/database.h"

#include <cstring>
#include <unordered_set>

#include "common/lock_registry.h"
#include "common/string_util.h"

namespace pse {

const IndexInfo* TableInfo::FindIndex(const std::string& column) const {
  for (const auto& idx : indexes) {
    if (EqualsIgnoreCase(idx->column, column)) return idx.get();
  }
  return nullptr;
}

Database::Database(size_t pool_pages, std::unique_ptr<DiskManager> disk)
    : disk_(disk ? std::move(disk) : std::make_unique<InMemoryDiskManager>()),
      pool_(std::make_unique<BufferPool>(disk_.get(), pool_pages)) {
  // The catalog latch legitimately covers page I/O: quiesce windows
  // checkpoint and scans fault pages while holding it.
  schema_latch_.LockdepRegister("catalog", kLockRankCatalog, /*allows_io=*/true);
}

Status Database::CreateTable(const TableSchema& schema, bool auto_key_index) {
  std::string key = ToLower(schema.name());
  if (tables_.count(key) != 0) {
    return Status::AlreadyExists("table '" + schema.name() + "' already exists");
  }
  auto info = std::make_unique<TableInfo>();
  // Lock classes are per-name: dropping and recreating a table maps back to
  // the same class, so ordering history survives schema churn.
  info->latch.LockdepRegister("table:" + key, kLockRankTable, /*allows_io=*/true);
  info->schema = std::make_unique<TableSchema>(schema);
  PSE_ASSIGN_OR_RETURN(TableHeap heap, TableHeap::Create(pool_.get(), info->schema.get()));
  info->heap = std::make_unique<TableHeap>(std::move(heap));
  tables_[key] = std::move(info);
  if (auto_key_index && !schema.key_columns().empty()) {
    auto idx_res = schema.ColumnIndex(schema.key_columns()[0]);
    if (idx_res.ok() && schema.column(*idx_res).type == TypeId::kInt64) {
      PSE_RETURN_NOT_OK(CreateIndex(schema.name(), schema.key_columns()[0]));
    }
  }
  return Status::OK();
}

Status Database::DropTable(const std::string& name) {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) return Status::NotFound("table '" + name + "' does not exist");
  // Free the heap chain.
  PageId pid = it->second->heap->first_page();
  while (pid != kInvalidPageId) {
    PageId next;
    {
      PSE_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(pid));
      uint32_t v;
      std::memcpy(&v, g.data(), 4);
      next = v;
    }
    PSE_RETURN_NOT_OK(pool_->DeletePage(pid));
    pid = next;
  }
  tables_.erase(it);
  return Status::OK();
}

bool Database::HasTable(const std::string& name) const {
  return tables_.count(ToLower(name)) != 0;
}

Result<TableInfo*> Database::GetTable(const std::string& name) {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) return Status::NotFound("table '" + name + "' does not exist");
  return it->second.get();
}

Result<const TableInfo*> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) return Status::NotFound("table '" + name + "' does not exist");
  return static_cast<const TableInfo*>(it->second.get());
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, info] : tables_) out.push_back(info->schema->name());
  return out;
}

Status Database::CreateIndex(const std::string& table, const std::string& column) {
  PSE_ASSIGN_OR_RETURN(TableInfo * t, GetTable(table));
  PSE_ASSIGN_OR_RETURN(size_t col_idx, t->schema->ColumnIndex(column));
  if (t->schema->column(col_idx).type != TypeId::kInt64) {
    return Status::InvalidArgument("index column '" + column + "' must be BIGINT");
  }
  if (t->FindIndex(column) != nullptr) {
    return Status::AlreadyExists("index on '" + table + "." + column + "' already exists");
  }
  auto idx = std::make_unique<IndexInfo>();
  idx->name = table + "_" + column + "_idx";
  idx->column = column;
  idx->column_idx = col_idx;
  PSE_ASSIGN_OR_RETURN(BPlusTree tree, BPlusTree::Create(pool_.get()));
  idx->tree = std::make_unique<BPlusTree>(std::move(tree));
  // Backfill from existing rows.
  for (auto it = t->heap->Begin(); !it.AtEnd();) {
    const Value& v = it.row()[col_idx];
    if (!v.is_null()) {
      PSE_RETURN_NOT_OK(idx->tree->Insert(v.AsInt(), it.rid()));
    }
    PSE_RETURN_NOT_OK(it.Next());
  }
  t->indexes.push_back(std::move(idx));
  return Status::OK();
}

Status Database::RebuildIndexes(const std::string& table) {
  PSE_ASSIGN_OR_RETURN(TableInfo * t, GetTable(table));
  for (auto& idx : t->indexes) {
    PSE_ASSIGN_OR_RETURN(BPlusTree tree, BPlusTree::Create(pool_.get()));
    auto fresh = std::make_unique<BPlusTree>(std::move(tree));
    for (auto it = t->heap->Begin(); !it.AtEnd();) {
      const Value& v = it.row()[idx->column_idx];
      if (!v.is_null()) {
        PSE_RETURN_NOT_OK(fresh->Insert(v.AsInt(), it.rid()));
      }
      PSE_RETURN_NOT_OK(it.Next());
    }
    // Old tree pages are orphaned rather than freed: page ids are never
    // reused (DiskManager policy), and after a crash the old tree cannot be
    // walked safely to enumerate them.
    idx->tree = std::move(fresh);
  }
  return Status::OK();
}

Status Database::MaintainIndexesInsert(TableInfo* t, const Row& row, Rid rid) {
  for (auto& idx : t->indexes) {
    const Value& v = row[idx->column_idx];
    if (!v.is_null()) PSE_RETURN_NOT_OK(idx->tree->Insert(v.AsInt(), rid));
  }
  return Status::OK();
}

Status Database::MaintainIndexesDelete(TableInfo* t, const Row& row, Rid rid) {
  for (auto& idx : t->indexes) {
    const Value& v = row[idx->column_idx];
    if (!v.is_null()) PSE_RETURN_NOT_OK(idx->tree->Delete(v.AsInt(), rid));
  }
  return Status::OK();
}

Result<Rid> Database::Insert(const std::string& table, const Row& row) {
  PSE_LOCKDEP_SCOPE("Database::Insert");
  PSE_ASSIGN_OR_RETURN(TableInfo * t, GetTable(table));
  std::unique_lock<SharedMutex> table_lock(t->latch);
  PSE_ASSIGN_OR_RETURN(Rid rid, t->heap->Insert(row));
  PSE_RETURN_NOT_OK(MaintainIndexesInsert(t, row, rid));
  ++t->row_count;
  t->stats_valid = false;
  return rid;
}

Status Database::Delete(const std::string& table, const Rid& rid) {
  PSE_LOCKDEP_SCOPE("Database::Delete");
  PSE_ASSIGN_OR_RETURN(TableInfo * t, GetTable(table));
  std::unique_lock<SharedMutex> table_lock(t->latch);
  Row old_row;
  PSE_RETURN_NOT_OK(t->heap->Get(rid, &old_row));
  PSE_RETURN_NOT_OK(t->heap->Delete(rid));
  PSE_RETURN_NOT_OK(MaintainIndexesDelete(t, old_row, rid));
  if (t->row_count > 0) --t->row_count;
  t->stats_valid = false;
  return Status::OK();
}

Result<Rid> Database::Update(const std::string& table, const Rid& rid, const Row& row) {
  PSE_LOCKDEP_SCOPE("Database::Update");
  PSE_ASSIGN_OR_RETURN(TableInfo * t, GetTable(table));
  std::unique_lock<SharedMutex> table_lock(t->latch);
  Row old_row;
  PSE_RETURN_NOT_OK(t->heap->Get(rid, &old_row));
  PSE_ASSIGN_OR_RETURN(Rid new_rid, t->heap->Update(rid, row));
  PSE_RETURN_NOT_OK(MaintainIndexesDelete(t, old_row, rid));
  PSE_RETURN_NOT_OK(MaintainIndexesInsert(t, row, new_rid));
  t->stats_valid = false;
  return new_rid;
}

Status Database::Analyze(const std::string& table) {
  PSE_ASSIGN_OR_RETURN(TableInfo * t, GetTable(table));
  TableStatistics stats;
  const TableSchema& schema = *t->schema;
  std::vector<std::unordered_set<size_t>> distinct(schema.num_columns());
  std::vector<ColumnStatistics> cols(schema.num_columns());
  uint64_t rows = 0;
  double width_sum = 0;
  for (auto it = t->heap->Begin(); !it.AtEnd();) {
    const Row& row = it.row();
    ++rows;
    width_sum += static_cast<double>(TupleCodec::SerializedSize(schema, row));
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      const Value& v = row[i];
      if (v.is_null()) {
        ++cols[i].null_count;
        continue;
      }
      distinct[i].insert(v.Hash());
      if (!cols[i].min.has_value() || v.Compare(*cols[i].min) < 0) cols[i].min = v;
      if (!cols[i].max.has_value() || v.Compare(*cols[i].max) > 0) cols[i].max = v;
    }
    PSE_RETURN_NOT_OK(it.Next());
  }
  stats.row_count = rows;
  stats.page_count = t->heap->NumPages();
  stats.avg_tuple_width = rows > 0 ? width_sum / static_cast<double>(rows) : 0.0;
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    cols[i].num_distinct = distinct[i].size();
    stats.columns[schema.column(i).name] = cols[i];
  }
  t->stats = std::move(stats);
  t->stats_valid = true;
  t->row_count = rows;
  return Status::OK();
}

Status Database::AnalyzeAll() {
  for (auto& [name, info] : tables_) {
    PSE_RETURN_NOT_OK(Analyze(info->schema->name()));
  }
  return Status::OK();
}

void Database::ResetIoStats() {
  disk_->ResetStats();
  pool_->ResetStats();
}

}  // namespace pse
