#include "storage/buffer_pool.h"

#include <cstring>

namespace pse {

PageGuard& PageGuard::operator=(PageGuard&& o) noexcept {
  if (this != &o) {
    Release();
    pool_ = o.pool_;
    page_id_ = o.page_id_;
    data_ = o.data_;
    dirty_ = o.dirty_;
    o.pool_ = nullptr;
    o.data_ = nullptr;
  }
  return *this;
}

void PageGuard::Release() {
  if (pool_ != nullptr && data_ != nullptr) {
    pool_->Unpin(page_id_, dirty_);
  }
  pool_ = nullptr;
  data_ = nullptr;
  dirty_ = false;
}

BufferPool::BufferPool(DiskManager* disk, size_t capacity, ReplacementPolicy policy)
    : disk_(disk), capacity_(capacity), policy_(policy), frames_(capacity) {
  // Leaf of the latch hierarchy; the miss path does disk I/O under mu_ by
  // design, hence allows_io.
  mu_.LockdepRegister("bufferpool", kLockRankBufferPool, /*allows_io=*/true);
  free_frames_.reserve(capacity);
  for (size_t i = 0; i < capacity; ++i) free_frames_.push_back(capacity - 1 - i);
}

Result<size_t> BufferPool::GetFreeFrame() {
  if (!free_frames_.empty()) {
    size_t f = free_frames_.back();
    free_frames_.pop_back();
    if (frames_[f].data == nullptr) frames_[f].data = std::make_unique<char[]>(kPageSize);
    return f;
  }
  size_t victim = capacity_;
  if (policy_ == ReplacementPolicy::kLru) {
    if (lru_.empty()) {
      return Status::ResourceExhausted("buffer pool: all frames pinned");
    }
    victim = lru_.back();
    lru_.pop_back();
    frames_[victim].in_lru = false;
  } else {
    // Clock sweep: skip pinned frames; clear a set ref bit (second chance),
    // evict the first unpinned frame whose bit is already clear. Two full
    // sweeps guarantee progress unless everything is pinned.
    for (size_t step = 0; step < capacity_ * 2 + 1; ++step) {
      Frame& cand = frames_[clock_hand_];
      size_t idx = clock_hand_;
      clock_hand_ = (clock_hand_ + 1) % capacity_;
      if (cand.page_id == kInvalidPageId || cand.pin_count > 0) continue;
      if (cand.ref) {
        cand.ref = false;
        continue;
      }
      victim = idx;
      break;
    }
    if (victim == capacity_) {
      return Status::ResourceExhausted("buffer pool: all frames pinned");
    }
  }
  Frame& fr = frames_[victim];
  stats_.evictions.fetch_add(1, std::memory_order_relaxed);
  if (fr.dirty) {
    PSE_RETURN_NOT_OK(disk_->WritePage(fr.page_id, fr.data.get()));
    stats_.dirty_writebacks.fetch_add(1, std::memory_order_relaxed);
    fr.dirty = false;
  }
  page_table_.erase(fr.page_id);
  fr.page_id = kInvalidPageId;
  return victim;
}

Result<PageGuard> BufferPool::NewPage() {
  std::lock_guard<Mutex> lock(mu_);
  PSE_ASSIGN_OR_RETURN(size_t f, GetFreeFrame());
  PageId pid = disk_->AllocatePage();
  Frame& fr = frames_[f];
  fr.page_id = pid;
  fr.pin_count = 1;
  fr.dirty = true;  // a new page must eventually reach disk
  std::memset(fr.data.get(), 0, kPageSize);
  page_table_[pid] = f;
  return PageGuard(this, pid, fr.data.get());
}

Result<PageGuard> BufferPool::FetchPage(PageId page_id) {
  if (page_id == kInvalidPageId) return Status::InvalidArgument("fetch of invalid page id");
  std::lock_guard<Mutex> lock(mu_);
  auto it = page_table_.find(page_id);
  if (it != page_table_.end()) {
    stats_.hits.fetch_add(1, std::memory_order_relaxed);
    Frame& fr = frames_[it->second];
    if (policy_ == ReplacementPolicy::kLru && fr.pin_count == 0 && fr.in_lru) {
      lru_.erase(fr.lru_it);
      fr.in_lru = false;
    }
    fr.ref = true;
    ++fr.pin_count;
    return PageGuard(this, page_id, fr.data.get());
  }
  stats_.misses.fetch_add(1, std::memory_order_relaxed);
  // The latch is held across the miss-path read on purpose: it keeps two
  // threads from racing the same page into two frames, at the cost of
  // serializing physical I/O (fine — the experiments count I/Os, they do
  // not overlap device latency).
  PSE_ASSIGN_OR_RETURN(size_t f, GetFreeFrame());
  Frame& fr = frames_[f];
  PSE_RETURN_NOT_OK(disk_->ReadPage(page_id, fr.data.get()));
  fr.page_id = page_id;
  fr.pin_count = 1;
  fr.dirty = false;
  page_table_[page_id] = f;
  return PageGuard(this, page_id, fr.data.get());
}

void BufferPool::Unpin(PageId page_id, bool dirty) {
  std::lock_guard<Mutex> lock(mu_);
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) return;
  Frame& fr = frames_[it->second];
  if (dirty) fr.dirty = true;
  if (fr.pin_count > 0) --fr.pin_count;
  fr.ref = true;
  if (policy_ == ReplacementPolicy::kLru && fr.pin_count == 0 && !fr.in_lru) {
    lru_.push_front(it->second);
    fr.lru_it = lru_.begin();
    fr.in_lru = true;
  }
}

Status BufferPool::DeletePage(PageId page_id) {
  std::lock_guard<Mutex> lock(mu_);
  auto it = page_table_.find(page_id);
  if (it != page_table_.end()) {
    Frame& fr = frames_[it->second];
    if (fr.pin_count > 0) return Status::Internal("DeletePage on pinned page");
    if (fr.in_lru) {
      lru_.erase(fr.lru_it);
      fr.in_lru = false;
    }
    fr.page_id = kInvalidPageId;
    free_frames_.push_back(it->second);
    page_table_.erase(it);
  }
  disk_->DeallocatePage(page_id);
  return Status::OK();
}

Status BufferPool::FlushAll() {
  std::lock_guard<Mutex> lock(mu_);
  for (auto& [pid, f] : page_table_) {
    Frame& fr = frames_[f];
    if (fr.dirty) {
      PSE_RETURN_NOT_OK(disk_->WritePage(fr.page_id, fr.data.get()));
      stats_.dirty_writebacks.fetch_add(1, std::memory_order_relaxed);
      fr.dirty = false;
    }
  }
  return Status::OK();
}

Status BufferPool::EvictAll() {
  std::lock_guard<Mutex> lock(mu_);
  for (auto& [pid, f] : page_table_) {
    Frame& fr = frames_[f];
    if (fr.dirty) {
      PSE_RETURN_NOT_OK(disk_->WritePage(fr.page_id, fr.data.get()));
      stats_.dirty_writebacks.fetch_add(1, std::memory_order_relaxed);
      fr.dirty = false;
    }
  }
  for (auto it = page_table_.begin(); it != page_table_.end();) {
    Frame& fr = frames_[it->second];
    if (fr.pin_count == 0) {
      if (fr.in_lru) {
        lru_.erase(fr.lru_it);
        fr.in_lru = false;
      }
      fr.page_id = kInvalidPageId;
      free_frames_.push_back(it->second);
      it = page_table_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::OK();
}

}  // namespace pse
