// LRU buffer pool. Physical I/O happens only on miss (read) and on eviction
// or flush of a dirty frame (write); the hit/miss counters feed the
// experiments' actual-I/O measurements.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/lock_registry.h"
#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/storage_defs.h"

namespace pse {

class BufferPool;

/// \brief RAII pin on a buffered page.
///
/// Unpins (propagating the dirty flag) on destruction. Movable, not
/// copyable.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, PageId page_id, char* data)
      : pool_(pool), page_id_(page_id), data_(data) {}
  PageGuard(PageGuard&& o) noexcept { *this = std::move(o); }
  PageGuard& operator=(PageGuard&& o) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard() { Release(); }

  bool Valid() const { return data_ != nullptr; }
  PageId page_id() const { return page_id_; }
  const char* data() const { return data_; }
  /// Grants write access and marks the frame dirty.
  char* mutable_data() {
    dirty_ = true;
    return data_;
  }

  /// Explicit early unpin.
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  PageId page_id_ = kInvalidPageId;
  char* data_ = nullptr;
  bool dirty_ = false;
};

/// Buffer pool statistics (logical accesses; physical I/O is in IoStats).
/// Atomic so they can be sampled without the pool latch; copies snapshot.
struct BufferPoolStats {
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> evictions{0};
  std::atomic<uint64_t> dirty_writebacks{0};

  BufferPoolStats() = default;
  BufferPoolStats(const BufferPoolStats& o) { *this = o; }
  BufferPoolStats& operator=(const BufferPoolStats& o) {
    if (this != &o) {
      hits.store(o.hits.load(std::memory_order_relaxed), std::memory_order_relaxed);
      misses.store(o.misses.load(std::memory_order_relaxed), std::memory_order_relaxed);
      evictions.store(o.evictions.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
      dirty_writebacks.store(o.dirty_writebacks.load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
    }
    return *this;
  }
  void Reset() {
    hits.store(0, std::memory_order_relaxed);
    misses.store(0, std::memory_order_relaxed);
    evictions.store(0, std::memory_order_relaxed);
    dirty_writebacks.store(0, std::memory_order_relaxed);
  }
};

/// Page-replacement policies.
enum class ReplacementPolicy {
  kLru,    ///< exact LRU via an access-ordered list (default)
  kClock,  ///< second-chance clock sweep (cheaper bookkeeping)
};

/// \brief Fixed-capacity page cache with pluggable replacement.
///
/// Thread-safe: a single internal mutex guards the page table, frame
/// metadata, and replacement state, and is held across the miss-path disk
/// I/O so two threads can never race a fetch of the same page into two
/// frames. Pinned frames are never evicted and frame buffers are allocated
/// once and never freed, so the `char*` handed out inside a PageGuard stays
/// valid after the latch drops — page *content* synchronization is the
/// caller's job (the table-level latches in Database; DESIGN.md §15).
class BufferPool {
 public:
  /// `capacity` is the number of resident frames.
  BufferPool(DiskManager* disk, size_t capacity,
             ReplacementPolicy policy = ReplacementPolicy::kLru);

  /// Allocates a new page and returns it pinned (zeroed, dirty).
  Result<PageGuard> NewPage();
  /// Fetches an existing page, reading from disk on miss. Returns pinned.
  Result<PageGuard> FetchPage(PageId page_id);
  /// Drops a page from the cache and deallocates it. Must be unpinned.
  Status DeletePage(PageId page_id);
  /// Writes back all dirty frames.
  Status FlushAll();
  /// Drops every unpinned frame (writing back dirty ones). Used to model a
  /// cold cache between experiment phases.
  Status EvictAll();

  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }
  DiskManager* disk() const { return disk_; }
  size_t capacity() const { return capacity_; }

 private:
  friend class PageGuard;

  struct Frame {
    PageId page_id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    bool ref = false;  // clock second-chance bit
    std::unique_ptr<char[]> data;
    std::list<size_t>::iterator lru_it;  // valid iff pin_count == 0 and resident
    bool in_lru = false;
  };

  void Unpin(PageId page_id, bool dirty);
  /// Finds a free frame, evicting the LRU unpinned frame if needed.
  /// Caller must hold mu_.
  Result<size_t> GetFreeFrame();

  DiskManager* disk_;
  size_t capacity_;
  ReplacementPolicy policy_;
  mutable Mutex mu_;
  size_t clock_hand_ = 0;
  std::vector<Frame> frames_;
  std::vector<size_t> free_frames_;
  std::unordered_map<PageId, size_t> page_table_;
  std::list<size_t> lru_;  // front = most recent
  BufferPoolStats stats_;
};

}  // namespace pse
