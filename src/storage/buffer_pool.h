// LRU buffer pool. Physical I/O happens only on miss (read) and on eviction
// or flush of a dirty frame (write); the hit/miss counters feed the
// experiments' actual-I/O measurements.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/storage_defs.h"

namespace pse {

class BufferPool;

/// \brief RAII pin on a buffered page.
///
/// Unpins (propagating the dirty flag) on destruction. Movable, not
/// copyable.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, PageId page_id, char* data)
      : pool_(pool), page_id_(page_id), data_(data) {}
  PageGuard(PageGuard&& o) noexcept { *this = std::move(o); }
  PageGuard& operator=(PageGuard&& o) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard() { Release(); }

  bool Valid() const { return data_ != nullptr; }
  PageId page_id() const { return page_id_; }
  const char* data() const { return data_; }
  /// Grants write access and marks the frame dirty.
  char* mutable_data() {
    dirty_ = true;
    return data_;
  }

  /// Explicit early unpin.
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  PageId page_id_ = kInvalidPageId;
  char* data_ = nullptr;
  bool dirty_ = false;
};

/// Buffer pool statistics (logical accesses; physical I/O is in IoStats).
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;
  void Reset() { *this = BufferPoolStats{}; }
};

/// Page-replacement policies.
enum class ReplacementPolicy {
  kLru,    ///< exact LRU via an access-ordered list (default)
  kClock,  ///< second-chance clock sweep (cheaper bookkeeping)
};

/// \brief Fixed-capacity page cache with pluggable replacement.
///
/// Single-threaded by design (the whole engine is): no latching.
class BufferPool {
 public:
  /// `capacity` is the number of resident frames.
  BufferPool(DiskManager* disk, size_t capacity,
             ReplacementPolicy policy = ReplacementPolicy::kLru);

  /// Allocates a new page and returns it pinned (zeroed, dirty).
  Result<PageGuard> NewPage();
  /// Fetches an existing page, reading from disk on miss. Returns pinned.
  Result<PageGuard> FetchPage(PageId page_id);
  /// Drops a page from the cache and deallocates it. Must be unpinned.
  Status DeletePage(PageId page_id);
  /// Writes back all dirty frames.
  Status FlushAll();
  /// Drops every unpinned frame (writing back dirty ones). Used to model a
  /// cold cache between experiment phases.
  Status EvictAll();

  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }
  DiskManager* disk() const { return disk_; }
  size_t capacity() const { return capacity_; }

 private:
  friend class PageGuard;

  struct Frame {
    PageId page_id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    bool ref = false;  // clock second-chance bit
    std::unique_ptr<char[]> data;
    std::list<size_t>::iterator lru_it;  // valid iff pin_count == 0 and resident
    bool in_lru = false;
  };

  void Unpin(PageId page_id, bool dirty);
  /// Finds a free frame, evicting the LRU unpinned frame if needed.
  Result<size_t> GetFreeFrame();

  DiskManager* disk_;
  size_t capacity_;
  ReplacementPolicy policy_;
  size_t clock_hand_ = 0;
  std::vector<Frame> frames_;
  std::vector<size_t> free_frames_;
  std::unordered_map<PageId, size_t> page_table_;
  std::list<size_t> lru_;  // front = most recent
  BufferPoolStats stats_;
};

}  // namespace pse
