// Database: the storage-level catalog. Owns the buffer pool and, per table,
// the schema, heap file, and any B+ tree indexes; maintains indexes on
// writes and computes optimizer statistics (ANALYZE).
#pragma once

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "catalog/statistics.h"
#include "catalog/tuple.h"
#include "common/rw_latch.h"
#include "common/status.h"
#include "storage/bplus_tree.h"
#include "storage/buffer_pool.h"
#include "storage/migration_journal.h"
#include "storage/table_heap.h"

namespace pse {

/// One secondary (or primary) index over a single BIGINT column.
struct IndexInfo {
  std::string name;
  std::string column;
  size_t column_idx = 0;
  std::unique_ptr<BPlusTree> tree;
};

/// Runtime state of one table.
struct TableInfo {
  std::unique_ptr<TableSchema> schema;
  std::unique_ptr<TableHeap> heap;
  std::vector<std::unique_ptr<IndexInfo>> indexes;
  uint64_t row_count = 0;
  TableStatistics stats;
  bool stats_valid = false;
  /// Table-level content latch: scans hold it shared, row mutations
  /// (Database::Insert/Delete/Update and the migration copy loop) hold it
  /// exclusive. Ordered *under* Database::schema_latch() — always acquire
  /// the schema latch first (DESIGN.md §15).
  mutable SharedMutex latch;

  /// Finds an index on `column`, or nullptr.
  const IndexInfo* FindIndex(const std::string& column) const;
};

/// \brief An embedded relational database instance.
///
/// Concurrency model: many reader threads may execute queries while one
/// migration thread evolves the schema. Readers hold schema_latch() shared
/// for the whole query so the catalog (table map, schemas, indexes) they
/// planned against cannot change underneath them; catalog mutations
/// (CreateTable/DropTable/CreateIndex/Analyze and the migration executor's
/// publish windows) hold it exclusive. Row-level reader/writer conflicts on
/// one table are covered by TableInfo::latch. The buffer pool and disk
/// managers latch themselves.
class Database {
 public:
  /// `pool_pages` is the buffer pool capacity in frames.
  explicit Database(size_t pool_pages = 4096,
                    std::unique_ptr<DiskManager> disk = nullptr);

  /// Opens (creating if needed) a file-backed database. An existing file's
  /// catalog — table schemas, heap extents, index roots — is restored from
  /// the superblock chain written by Checkpoint(); data pages are then
  /// demand-paged through the buffer pool.
  static Result<std::unique_ptr<Database>> Open(const std::string& path,
                                                size_t pool_pages = 4096);

  /// Opens a database over an arbitrary page store (same fresh-vs-restore
  /// protocol as the path overload). Used to wrap the backing store with
  /// fault injection in crash-recovery tests.
  static Result<std::unique_ptr<Database>> Open(std::unique_ptr<DiskManager> disk,
                                                size_t pool_pages = 4096);

  /// True once the superblock exists: Checkpoint() persists the catalog and
  /// a reopened instance restores it. Purely in-memory databases are not.
  bool persistent() const { return superblock_head_ != kInvalidPageId; }

  /// Durably persists the catalog (superblock chain at page 0) and flushes
  /// every dirty page. A database reopened after Checkpoint() sees exactly
  /// the checkpointed state. Only meaningful for file-backed databases but
  /// harmless (a no-op catalog write) in memory.
  Status Checkpoint();

  /// Creates an empty table. AlreadyExists if the name is taken. Key columns
  /// declared in the schema automatically get a primary index when the first
  /// key column is BIGINT.
  Status CreateTable(const TableSchema& schema, bool auto_key_index = true);
  /// Drops a table, freeing its heap pages.
  Status DropTable(const std::string& name);
  /// True if the table exists.
  bool HasTable(const std::string& name) const;
  /// Looks up a table. NotFound if absent.
  Result<TableInfo*> GetTable(const std::string& name);
  Result<const TableInfo*> GetTable(const std::string& name) const;
  /// Names of all tables, sorted.
  std::vector<std::string> TableNames() const;

  /// Builds a B+ tree index over an existing BIGINT column.
  Status CreateIndex(const std::string& table, const std::string& column);

  /// Rebuilds every index of `table` from its heap (fresh trees, full
  /// backfill). Crash recovery uses this: after a restart the checkpointed
  /// tree metadata may trail pages written since, so the in-flight table's
  /// indexes are re-derived from the (verified) heap instead of trusted.
  Status RebuildIndexes(const std::string& table);

  /// Inserts a row, maintaining all indexes.
  Result<Rid> Insert(const std::string& table, const Row& row);
  /// Deletes by rid, maintaining indexes.
  Status Delete(const std::string& table, const Rid& rid);
  /// Updates by rid, maintaining indexes; returns the new rid.
  Result<Rid> Update(const std::string& table, const Rid& rid, const Row& row);

  /// Recomputes statistics for one table (full scan).
  Status Analyze(const std::string& table);
  /// Recomputes statistics for every table.
  Status AnalyzeAll();

  BufferPool* pool() { return pool_.get(); }
  const BufferPool* pool() const { return pool_.get(); }
  DiskManager* disk() { return disk_.get(); }

  /// Total physical I/O so far (page reads + writes).
  uint64_t TotalIo() const { return disk_->stats().TotalIo(); }
  /// Resets both disk and buffer-pool counters (per-phase measurement).
  void ResetIoStats();

  /// In-flight migration record. Persisted by Checkpoint(), restored by
  /// Open(); the MigrationExecutor owns its contents and lifecycle.
  const MigrationJournal& migration_journal() const { return journal_; }
  MigrationJournal* mutable_migration_journal() { return &journal_; }
  /// True when a migration operator crashed (or errored) mid-flight and its
  /// journal was restored from disk — resume or roll back before trusting
  /// the affected tables.
  bool HasPendingMigration() const { return journal_.active; }

  /// Catalog latch. Readers (Session::Execute, any code that holds
  /// TableInfo* across calls) take it shared; schema changes take it
  /// exclusive. Exposed rather than wrapped because a reader must span
  /// rewrite + plan + execute with one shared acquisition.
  SharedMutex& schema_latch() const { return schema_latch_; }

 private:
  Status MaintainIndexesInsert(TableInfo* t, const Row& row, Rid rid);
  Status MaintainIndexesDelete(TableInfo* t, const Row& row, Rid rid);

  Status WriteSuperblock();
  Status LoadSuperblock();

  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  mutable SharedMutex schema_latch_;
  std::map<std::string, std::unique_ptr<TableInfo>> tables_;
  MigrationJournal journal_;
  /// Head of the catalog superblock chain (kInvalidPageId until the first
  /// Checkpoint on a fresh database).
  PageId superblock_head_ = kInvalidPageId;
};

}  // namespace pse
