#include "storage/disk_manager.h"

#include <cstring>

#include "common/lock_registry.h"

namespace pse {

PageId InMemoryDiskManager::AllocatePage() {
  std::lock_guard<std::mutex> lock(mu_);
  pages_.push_back(nullptr);  // materialized on first write
  stats_.pages_allocated.fetch_add(1, std::memory_order_relaxed);
  return static_cast<PageId>(pages_.size() - 1);
}

Status InMemoryDiskManager::ReadPage(PageId page_id, char* out) {
  PSE_LOCKDEP_IO();
  std::lock_guard<std::mutex> lock(mu_);
  if (page_id >= pages_.size()) {
    return Status::IOError("read of unallocated page " + std::to_string(page_id));
  }
  stats_.page_reads.fetch_add(1, std::memory_order_relaxed);
  if (pages_[page_id] == nullptr) {
    std::memset(out, 0, kPageSize);
  } else {
    std::memcpy(out, pages_[page_id].get(), kPageSize);
  }
  return Status::OK();
}

Status InMemoryDiskManager::WritePage(PageId page_id, const char* data) {
  PSE_LOCKDEP_IO();
  std::lock_guard<std::mutex> lock(mu_);
  if (page_id >= pages_.size()) {
    return Status::IOError("write of unallocated page " + std::to_string(page_id));
  }
  stats_.page_writes.fetch_add(1, std::memory_order_relaxed);
  if (pages_[page_id] == nullptr) {
    pages_[page_id] = std::make_unique<char[]>(kPageSize);
  }
  std::memcpy(pages_[page_id].get(), data, kPageSize);
  return Status::OK();
}

void InMemoryDiskManager::DeallocatePage(PageId page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (page_id < pages_.size()) pages_[page_id].reset();
}

Result<std::unique_ptr<FileDiskManager>> FileDiskManager::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) f = std::fopen(path.c_str(), "w+b");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  uint64_t pages = size > 0 ? static_cast<uint64_t>(size) / kPageSize : 0;
  return std::unique_ptr<FileDiskManager>(new FileDiskManager(f, pages));
}

FileDiskManager::~FileDiskManager() {
  if (file_ != nullptr) std::fclose(file_);
}

PageId FileDiskManager::AllocatePage() {
  stats_.pages_allocated.fetch_add(1, std::memory_order_relaxed);
  return static_cast<PageId>(next_page_id_.fetch_add(1, std::memory_order_relaxed));
}

Status FileDiskManager::ReadPage(PageId page_id, char* out) {
  PSE_LOCKDEP_IO();
  std::lock_guard<std::mutex> lock(mu_);
  stats_.page_reads.fetch_add(1, std::memory_order_relaxed);
  if (std::fseek(file_, static_cast<long>(page_id) * static_cast<long>(kPageSize), SEEK_SET) !=
      0) {
    return Status::IOError("seek failed");
  }
  size_t n = std::fread(out, 1, kPageSize, file_);
  if (n < kPageSize) {
    // Page beyond current EOF (allocated but never written): zero-fill.
    std::memset(out + n, 0, kPageSize - n);
  }
  return Status::OK();
}

Status FileDiskManager::WritePage(PageId page_id, const char* data) {
  PSE_LOCKDEP_IO();
  std::lock_guard<std::mutex> lock(mu_);
  stats_.page_writes.fetch_add(1, std::memory_order_relaxed);
  if (std::fseek(file_, static_cast<long>(page_id) * static_cast<long>(kPageSize), SEEK_SET) !=
      0) {
    return Status::IOError("seek failed");
  }
  if (std::fwrite(data, 1, kPageSize, file_) != kPageSize) {
    return Status::IOError("short write");
  }
  return Status::OK();
}

void FileDiskManager::DeallocatePage(PageId) {}

}  // namespace pse
