// Paged B+ tree index mapping int64 keys to tuple Rids.
//
// Duplicate keys are supported by making every stored key the composite
// (key, packed rid), which is unique; internal separators carry the full
// composite, so the tree is a textbook unique-key B+ tree.
//
// Deletes remove leaf entries without rebalancing (pages may underflow but
// never violate ordering); the workloads here are insert/scan heavy, and the
// cost model charges index height, which merging would not change much.
//
// Page layouts:
//   common  [0] u8 node_type (1=leaf, 2=internal); [2..4) u16 entry count
//   leaf    [4..8) u32 next_leaf; entries at 8+i*16: {i64 key, u64 rid}
//   internal[8..12) u32 child0; entries at 12+i*20: {i64 key, u64 rid,
//            u32 child}; entry i separates child i and child i+1.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/storage_defs.h"

namespace pse {

/// \brief B+ tree over (int64 key, Rid) pairs.
class BPlusTree {
 public:
  /// Creates an empty tree (allocates the root leaf).
  static Result<BPlusTree> Create(BufferPool* pool);

  /// Re-attaches to a persisted tree (root/height/entries from the
  /// catalog superblock).
  static BPlusTree Attach(BufferPool* pool, PageId root, uint32_t height,
                          uint64_t num_entries);

  /// Inserts (key, rid). Duplicate (key, rid) pairs are rejected.
  Status Insert(int64_t key, Rid rid);
  /// Removes (key, rid). NotFound if absent.
  Status Delete(int64_t key, Rid rid);
  /// Collects the rids of all entries with exactly `key`.
  Status ScanEqual(int64_t key, std::vector<Rid>* out) const;
  /// Collects rids for key in [lo, hi] (inclusive).
  Status ScanRange(int64_t lo, int64_t hi, std::vector<Rid>* out) const;

  /// Number of levels (1 = root is a leaf).
  uint32_t height() const { return height_; }
  uint64_t num_entries() const { return num_entries_; }
  PageId root() const { return root_; }

  /// Verifies ordering and child-separator invariants; returns the number
  /// of entries seen. Test helper.
  Result<uint64_t> CheckInvariants() const;

 private:
  explicit BPlusTree(BufferPool* pool) : pool_(pool) {}

  struct SplitResult {
    int64_t key;
    uint64_t rid;
    PageId right;
  };

  Status InsertRec(PageId node, int64_t key, uint64_t rid,
                   std::optional<SplitResult>* split);
  /// Descends to the leaf that may contain the first entry >= (key, rid).
  Result<PageId> FindLeaf(int64_t key, uint64_t rid) const;
  Result<uint64_t> CheckNode(PageId node, bool has_lo, int64_t lo_key, uint64_t lo_rid,
                             bool has_hi, int64_t hi_key, uint64_t hi_rid,
                             uint32_t depth, uint32_t* leaf_depth) const;

  BufferPool* pool_;
  PageId root_ = kInvalidPageId;
  uint32_t height_ = 1;
  uint64_t num_entries_ = 0;
};

}  // namespace pse
