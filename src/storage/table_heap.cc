#include "storage/table_heap.h"

#include <cstring>

namespace pse {

namespace {
constexpr size_t kHeaderSize = 8;
constexpr size_t kSlotSize = 4;

uint16_t GetU16(const char* p, size_t off) {
  uint16_t v;
  std::memcpy(&v, p + off, 2);
  return v;
}
void PutU16(char* p, size_t off, uint16_t v) { std::memcpy(p + off, &v, 2); }
uint32_t GetU32(const char* p, size_t off) {
  uint32_t v;
  std::memcpy(&v, p + off, 4);
  return v;
}
void PutU32(char* p, size_t off, uint32_t v) { std::memcpy(p + off, &v, 4); }

void InitPage(char* p) {
  PutU32(p, 0, kInvalidPageId);
  PutU16(p, 4, 0);
  PutU16(p, 6, static_cast<uint16_t>(kPageSize));
}

struct Slot {
  uint16_t offset;
  uint16_t size;
};
Slot GetSlot(const char* p, uint16_t i) {
  return Slot{GetU16(p, kHeaderSize + i * kSlotSize), GetU16(p, kHeaderSize + i * kSlotSize + 2)};
}
void PutSlot(char* p, uint16_t i, Slot s) {
  PutU16(p, kHeaderSize + i * kSlotSize, s.offset);
  PutU16(p, kHeaderSize + i * kSlotSize + 2, s.size);
}

/// Free contiguous bytes available for one more tuple + slot entry.
size_t FreeSpace(const char* p) {
  size_t slots_end = kHeaderSize + GetU16(p, 4) * kSlotSize;
  size_t free_end = GetU16(p, 6) == 0 ? kPageSize : GetU16(p, 6);
  if (free_end < slots_end + kSlotSize) return 0;
  return free_end - slots_end - kSlotSize;
}
}  // namespace

uint16_t TableHeap::SlotCount(const char* page) { return GetU16(page, 4); }
uint16_t TableHeap::FreeEnd(const char* page) { return GetU16(page, 6); }
PageId TableHeap::NextPage(const char* page) { return GetU32(page, 0); }

Result<TableHeap> TableHeap::Create(BufferPool* pool, const TableSchema* schema) {
  TableHeap heap(pool, schema);
  PSE_ASSIGN_OR_RETURN(PageGuard guard, pool->NewPage());
  InitPage(guard.mutable_data());
  heap.first_page_ = guard.page_id();
  heap.last_page_ = guard.page_id();
  heap.num_pages_ = 1;
  return heap;
}

TableHeap TableHeap::Attach(BufferPool* pool, const TableSchema* schema, PageId first_page,
                            PageId last_page, uint64_t num_pages) {
  TableHeap heap(pool, schema);
  heap.first_page_ = first_page;
  heap.last_page_ = last_page;
  heap.num_pages_ = num_pages;
  return heap;
}

Result<Rid> TableHeap::Insert(const Row& row) {
  std::string bytes;
  PSE_RETURN_NOT_OK(TupleCodec::Serialize(*schema_, row, &bytes));
  if (bytes.size() + kSlotSize + kHeaderSize > kPageSize) {
    return Status::InvalidArgument("tuple of " + std::to_string(bytes.size()) +
                                   " bytes exceeds page capacity");
  }
  PSE_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(last_page_));
  if (FreeSpace(guard.data()) < bytes.size()) {
    // Link and switch to a fresh page.
    PSE_ASSIGN_OR_RETURN(PageGuard fresh, pool_->NewPage());
    InitPage(fresh.mutable_data());
    PutU32(guard.mutable_data(), 0, fresh.page_id());
    last_page_ = fresh.page_id();
    ++num_pages_;
    guard = std::move(fresh);
  }
  char* p = guard.mutable_data();
  uint16_t slot_count = GetU16(p, 4);
  uint16_t free_end = GetU16(p, 6);
  uint16_t offset = static_cast<uint16_t>(free_end - bytes.size());
  std::memcpy(p + offset, bytes.data(), bytes.size());
  PutSlot(p, slot_count, Slot{offset, static_cast<uint16_t>(bytes.size())});
  PutU16(p, 4, static_cast<uint16_t>(slot_count + 1));
  PutU16(p, 6, offset);
  return Rid{guard.page_id(), slot_count};
}

Status TableHeap::Get(const Rid& rid, Row* out) const {
  PSE_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(rid.page_id));
  const char* p = guard.data();
  if (rid.slot >= GetU16(p, 4)) return Status::NotFound("rid slot out of range");
  Slot s = GetSlot(p, rid.slot);
  if (s.offset == 0) return Status::NotFound("tuple deleted");
  return TupleCodec::Deserialize(*schema_, p + s.offset, s.size, out);
}

Status TableHeap::Delete(const Rid& rid) {
  PSE_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(rid.page_id));
  char* p = guard.mutable_data();
  if (rid.slot >= GetU16(p, 4)) return Status::NotFound("rid slot out of range");
  Slot s = GetSlot(p, rid.slot);
  if (s.offset == 0) return Status::NotFound("tuple already deleted");
  PutSlot(p, rid.slot, Slot{0, 0});
  return Status::OK();
}

Result<Rid> TableHeap::Update(const Rid& rid, const Row& row) {
  std::string bytes;
  PSE_RETURN_NOT_OK(TupleCodec::Serialize(*schema_, row, &bytes));
  {
    PSE_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(rid.page_id));
    char* p = guard.mutable_data();
    if (rid.slot >= GetU16(p, 4)) return Status::NotFound("rid slot out of range");
    Slot s = GetSlot(p, rid.slot);
    if (s.offset == 0) return Status::NotFound("tuple deleted");
    if (bytes.size() <= s.size) {
      // In-place: keep the slot, shrink logical size.
      std::memcpy(p + s.offset, bytes.data(), bytes.size());
      PutSlot(p, rid.slot, Slot{s.offset, static_cast<uint16_t>(bytes.size())});
      return rid;
    }
    PutSlot(p, rid.slot, Slot{0, 0});
  }
  return Insert(row);
}

Result<uint64_t> TableHeap::CountRowsBounded(uint64_t max_pages) const {
  uint64_t count = 0;
  uint64_t pages = 0;
  PageId pid = first_page_;
  while (pid != kInvalidPageId) {
    if (++pages > max_pages) {
      return Status::Internal("heap chain longer than the " + std::to_string(max_pages) +
                              " pages the catalog records");
    }
    PSE_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(pid));
    const char* p = guard.data();
    uint16_t slot_count = GetU16(p, 4);
    size_t slots_end = kHeaderSize + static_cast<size_t>(slot_count) * kSlotSize;
    if (slots_end > kPageSize) {
      return Status::Internal("heap page " + std::to_string(pid) + " has a malformed slot count");
    }
    for (uint16_t i = 0; i < slot_count; ++i) {
      Slot s = GetSlot(p, i);
      if (s.offset == 0) continue;  // deleted
      if (s.offset < slots_end || static_cast<size_t>(s.offset) + s.size > kPageSize) {
        return Status::Internal("heap page " + std::to_string(pid) + " slot " +
                                std::to_string(i) + " is out of bounds");
      }
      ++count;
    }
    pid = GetU32(p, 0);
  }
  return count;
}

Status TableHeap::TruncateChain(uint64_t keep_pages) {
  if (keep_pages == 0) return Status::InvalidArgument("cannot truncate a heap to zero pages");
  PageId pid = first_page_;
  for (uint64_t i = 1; i < keep_pages; ++i) {
    PSE_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(pid));
    PageId next = GetU32(guard.data(), 0);
    if (next == kInvalidPageId) {
      // Chain is already shorter than requested; nothing to cut.
      last_page_ = pid;
      num_pages_ = i;
      return Status::OK();
    }
    pid = next;
  }
  PSE_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(pid));
  PutU32(guard.mutable_data(), 0, kInvalidPageId);
  last_page_ = pid;
  num_pages_ = keep_pages;
  return Status::OK();
}

TableHeap::Iterator TableHeap::Begin() const {
  Iterator it(this);
  Status s = it.LoadFirst();
  if (!s.ok()) it.at_end_ = true;
  return it;
}

Status TableHeap::Iterator::LoadFirst() {
  rid_ = Rid{heap_->first_page_, 0};
  return Advance(/*include_current=*/true);
}

Status TableHeap::Iterator::Next() { return Advance(/*include_current=*/false); }

Result<size_t> TableHeap::Iterator::FillBatch(size_t max_rows, std::vector<Row>* out) {
  if (at_end_ || max_rows == 0) return size_t{0};
  // The current tuple is already deserialized; hand it over directly.
  out->push_back(std::move(row_));
  size_t added = 1;
  PageId pid = rid_.page_id;
  uint32_t slot = rid_.slot + 1u;
  while (pid != kInvalidPageId) {
    PSE_ASSIGN_OR_RETURN(PageGuard guard, heap_->pool_->FetchPage(pid));
    const char* p = guard.data();
    uint16_t slot_count = GetU16(p, 4);
    while (slot < slot_count) {
      Slot s = GetSlot(p, static_cast<uint16_t>(slot));
      if (s.offset != 0) {
        if (added == max_rows) {
          // Batch full: this tuple becomes the iterator's current row.
          rid_ = Rid{pid, static_cast<uint16_t>(slot)};
          PSE_RETURN_NOT_OK(TupleCodec::Deserialize(*heap_->schema_, p + s.offset, s.size, &row_));
          return added;
        }
        Row r;
        PSE_RETURN_NOT_OK(TupleCodec::Deserialize(*heap_->schema_, p + s.offset, s.size, &r));
        out->push_back(std::move(r));
        ++added;
      }
      ++slot;
    }
    pid = GetU32(p, 0);
    slot = 0;
  }
  at_end_ = true;
  return added;
}

Result<size_t> TableHeap::Iterator::FillBatchColumns(size_t max_rows,
                                                     const std::vector<size_t>& wanted,
                                                     const std::vector<std::vector<Value>*>& cols) {
  if (at_end_ || max_rows == 0) return size_t{0};
  // The current tuple is already a deserialized Row; scatter its wanted
  // columns (row_ is re-established before this batch ends, see below).
  for (size_t k = 0; k < wanted.size(); ++k) {
    cols[k]->push_back(std::move(row_[wanted[k]]));
  }
  size_t added = 1;
  PageId pid = rid_.page_id;
  uint32_t slot = rid_.slot + 1u;
  while (pid != kInvalidPageId) {
    PSE_ASSIGN_OR_RETURN(PageGuard guard, heap_->pool_->FetchPage(pid));
    const char* p = guard.data();
    uint16_t slot_count = GetU16(p, 4);
    while (slot < slot_count) {
      Slot s = GetSlot(p, static_cast<uint16_t>(slot));
      if (s.offset != 0) {
        if (added == max_rows) {
          // Batch full: this tuple becomes the iterator's current row.
          rid_ = Rid{pid, static_cast<uint16_t>(slot)};
          PSE_RETURN_NOT_OK(TupleCodec::Deserialize(*heap_->schema_, p + s.offset, s.size, &row_));
          return added;
        }
        PSE_RETURN_NOT_OK(
            TupleCodec::DeserializeColumns(*heap_->schema_, p + s.offset, s.size, wanted, cols));
        ++added;
      }
      ++slot;
    }
    pid = GetU32(p, 0);
    slot = 0;
  }
  at_end_ = true;
  return added;
}

Status TableHeap::Iterator::Advance(bool include_current) {
  PageId pid = rid_.page_id;
  uint32_t slot = include_current ? rid_.slot : rid_.slot + 1u;
  while (pid != kInvalidPageId) {
    PSE_ASSIGN_OR_RETURN(PageGuard guard, heap_->pool_->FetchPage(pid));
    const char* p = guard.data();
    uint16_t slot_count = GetU16(p, 4);
    while (slot < slot_count) {
      Slot s = GetSlot(p, static_cast<uint16_t>(slot));
      if (s.offset != 0) {
        rid_ = Rid{pid, static_cast<uint16_t>(slot)};
        return TupleCodec::Deserialize(*heap_->schema_, p + s.offset, s.size, &row_);
      }
      ++slot;
    }
    pid = GetU32(p, 0);
    slot = 0;
  }
  at_end_ = true;
  return Status::OK();
}

}  // namespace pse
