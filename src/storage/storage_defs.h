// Shared storage-layer constants and identifiers.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace pse {

/// Size of one page in bytes. All I/O accounting is in units of pages.
constexpr size_t kPageSize = 8192;

using PageId = uint32_t;
constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// Physical address of a stored tuple: (page, slot).
struct Rid {
  PageId page_id = kInvalidPageId;
  uint16_t slot = 0;

  bool Valid() const { return page_id != kInvalidPageId; }
  bool operator==(const Rid& o) const { return page_id == o.page_id && slot == o.slot; }
  bool operator<(const Rid& o) const {
    return page_id != o.page_id ? page_id < o.page_id : slot < o.slot;
  }
  uint64_t Pack() const { return (static_cast<uint64_t>(page_id) << 16) | slot; }
  static Rid Unpack(uint64_t v) {
    return Rid{static_cast<PageId>(v >> 16), static_cast<uint16_t>(v & 0xFFFF)};
  }
  std::string ToString() const {
    return "(" + std::to_string(page_id) + "," + std::to_string(slot) + ")";
  }
};

struct RidHash {
  size_t operator()(const Rid& r) const { return std::hash<uint64_t>()(r.Pack()); }
};

}  // namespace pse
