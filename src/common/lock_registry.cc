#include "common/lock_registry.h"

#include <algorithm>
#include <iterator>

namespace pse {

/// One active acquisition on the calling thread. Class metadata is cached at
/// acquire time so OnIo and the order checks can read it without taking the
/// registry mutex; the name pointer stays valid because classes_ is a
/// std::map (node-stable) and classes are never unregistered.
struct LockRegistry::HeldLock {
  uint32_t cls = 0;
  LockMode mode = LockMode::kShared;
  int rank = 0;
  const std::string* name = nullptr;
  bool allows_io = false;
  const char* site = "";
};

namespace {

thread_local std::vector<LockRegistry::HeldLock> t_held;  // acquisition stack
thread_local std::vector<const char*> t_sites;            // PSE_LOCKDEP_SCOPE stack

const char* CurrentSite() { return t_sites.empty() ? "(unannotated)" : t_sites.back(); }

}  // namespace

const char* LockModeName(LockMode mode) {
  return mode == LockMode::kShared ? "shared" : "exclusive";
}

const char* LockViolationKindName(LockViolationKind kind) {
  switch (kind) {
    case LockViolationKind::kOrderInversion:
      return "order-inversion";
    case LockViolationKind::kUpgrade:
      return "upgrade";
    case LockViolationKind::kRecursive:
      return "recursive";
    case LockViolationKind::kHeldAcrossIo:
      return "held-across-io";
  }
  return "unknown";
}

std::string LockViolation::ToString() const {
  std::string out = LockViolationKindName(kind);
  out += ": ";
  switch (kind) {
    case LockViolationKind::kOrderInversion:
      out += "acquired '" + acquired_lock + "' (" + LockModeName(acquired_mode) + ", at " +
             acquired_site + ") while holding '" + held_lock + "' (" + LockModeName(held_mode) +
             ", at " + held_site + "); rank order requires '" + acquired_lock + "' before '" +
             held_lock + "'";
      break;
    case LockViolationKind::kUpgrade:
      out += "'" + held_lock + "' upgraded shared->exclusive (held at " + held_site +
             ", upgraded at " + acquired_site + "); two threads racing this upgrade deadlock";
      break;
    case LockViolationKind::kRecursive:
      out += "'" + held_lock + "' re-acquired " + LockModeName(acquired_mode) +
             " while already held " + LockModeName(held_mode) + " (held at " + held_site +
             ", re-acquired at " + acquired_site +
             "); writer-preferring latches deadlock on self-nesting";
      break;
    case LockViolationKind::kHeldAcrossIo:
      out += "disk I/O at " + acquired_site + " while holding no-I/O lock '" + held_lock + "' (" +
             LockModeName(held_mode) + ", at " + held_site + ")";
      break;
  }
  return out;
}

LockRegistry& LockRegistry::Instance() {
  static LockRegistry* instance = new LockRegistry();
  return *instance;
}

uint32_t LockRegistry::RegisterClass(const std::string& name, int rank, bool allows_io) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(classes_.size()) + 1;
  classes_[id] = LockClassDesc{name, rank, allows_io};
  by_name_[name] = id;
  return id;
}

void LockRegistry::RecordViolation(LockViolationKind kind, const HeldLock& held,
                                   const std::string& acquired_lock, const char* acquired_site,
                                   LockMode acquired_mode, uint32_t acquired_cls) {
  // mu_ is held by the caller.
  auto key = std::make_tuple(static_cast<uint8_t>(kind), held.cls, acquired_cls);
  if (!reported_.insert(key).second) return;
  LockViolation v;
  v.kind = kind;
  v.held_lock = *held.name;
  v.held_site = held.site;
  v.held_mode = held.mode;
  v.acquired_lock = acquired_lock;
  v.acquired_site = acquired_site;
  v.acquired_mode = acquired_mode;
  violations_.push_back(std::move(v));
}

void LockRegistry::OnAcquire(uint32_t cls, LockMode mode, bool try_acquire) {
  if (cls == 0) return;
  HeldLock h;
  h.cls = cls;
  h.mode = mode;
  h.site = CurrentSite();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = classes_.find(cls);
    if (it == classes_.end()) return;
    h.rank = it->second.rank;
    h.name = &it->second.name;
    h.allows_io = it->second.allows_io;
    ++acquisitions_;
    // A trylock cannot block, so it cannot close a wait cycle: push held
    // state for downstream I/O checks but record no edges or violations.
    if (!try_acquire) {
      for (const HeldLock& held : t_held) {
        if (held.cls == cls) {
          LockViolationKind kind =
              (held.mode == LockMode::kShared && mode == LockMode::kExclusive)
                  ? LockViolationKind::kUpgrade
                  : LockViolationKind::kRecursive;
          RecordViolation(kind, held, *h.name, h.site, mode, cls);
          continue;
        }
        LockEdge& e = edges_[{held.cls, cls}];
        if (e.count == 0) {
          e.from = held.cls - 1;
          e.to = cls - 1;
          e.from_site = held.site;
          e.to_site = h.site;
        }
        ++e.count;
        if (std::tie(h.rank, *h.name) <= std::tie(held.rank, *held.name)) {
          RecordViolation(LockViolationKind::kOrderInversion, held, *h.name, h.site, mode, cls);
        }
      }
    }
  }
  t_held.push_back(h);
}

void LockRegistry::OnRelease(uint32_t cls) {
  if (cls == 0) return;
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->cls == cls) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
  // Unmatched release: the latch was acquired before registration or the
  // events were cleared mid-hold. Bookkeeping only — ignore.
}

void LockRegistry::OnIo() {
  if (t_held.empty()) return;
  for (const HeldLock& held : t_held) {
    if (held.allows_io) continue;
    std::lock_guard<std::mutex> lock(mu_);
    RecordViolation(LockViolationKind::kHeldAcrossIo, held, "", CurrentSite(),
                    LockMode::kExclusive, 0);
  }
}

void LockRegistry::PushSite(const char* site) { t_sites.push_back(site); }

void LockRegistry::PopSite() {
  if (!t_sites.empty()) t_sites.pop_back();
}

LockOrderGraph LockRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  LockOrderGraph g;
  g.classes.reserve(classes_.size());
  for (const auto& [id, desc] : classes_) g.classes.push_back(desc);
  g.edges.reserve(edges_.size());
  for (const auto& [key, edge] : edges_) g.edges.push_back(edge);
  g.violations = violations_;
  g.acquisitions = acquisitions_;
  return g;
}

size_t LockRegistry::violation_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return violations_.size();
}

void LockRegistry::ClearEvents() {
  std::lock_guard<std::mutex> lock(mu_);
  edges_.clear();
  violations_.clear();
  reported_.clear();
  acquisitions_ = 0;
  t_held.clear();
  t_sites.clear();
}

}  // namespace pse
