#include "common/status.h"

namespace pse {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kConstraintViolation:
      return "ConstraintViolation";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace pse
