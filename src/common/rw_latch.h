// Writer-preferring reader-writer latch.
//
// std::shared_mutex gives no fairness guarantee; on glibc its writers can
// starve indefinitely under a stream of readers that release and immediately
// re-acquire — exactly what a pool of foreground query sessions does to the
// catalog latch while a migration waits to quiesce. This latch makes the
// writer's acquisition a barrier: once a writer is waiting, new readers
// queue behind it, so the quiesce window begins as soon as the in-flight
// readers drain (bounded by one query's latency, not by the arrival rate).
//
// Writer preference has a sharp edge: a thread that already holds the latch
// shared and tries to take it shared *again* can deadlock behind a waiting
// writer (the writer waits for the first hold, the re-acquisition waits for
// the writer). Acquisitions of this latch must therefore never nest —
// DESIGN.md §15's latching protocol is written so they don't.
//
// Satisfies SharedLockable: use with std::shared_lock<SharedMutex> /
// std::unique_lock<SharedMutex>.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/lock_registry.h"

namespace pse {

class SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  /// Registers this latch with the lockdep hierarchy (no-op unless built
  /// with PROGSCHEMA_LOCKDEP). Call once, before the latch is contended.
  void LockdepRegister(const std::string& name, int rank, bool allows_io) {
#ifdef PSE_LOCKDEP
    lockdep_class_ = LockRegistry::Instance().RegisterClass(name, rank, allows_io);
#else
    static_cast<void>(name);
    static_cast<void>(rank);
    static_cast<void>(allows_io);
#endif
  }

  void lock() {
    // Hook fires before blocking: lockdep flags the deadlock-to-be at the
    // acquisition site instead of after the hang.
    PSE_LOCKDEP_ACQUIRE(lockdep_class_, LockMode::kExclusive);
    std::unique_lock<std::mutex> lock(mu_);
    ++writers_waiting_;
    writer_cv_.wait(lock, [&] { return !writer_ && readers_ == 0; });
    --writers_waiting_;
    writer_ = true;
  }

  bool try_lock() {
    std::unique_lock<std::mutex> lock(mu_);
    if (writer_ || readers_ != 0) return false;
    writer_ = true;
    PSE_LOCKDEP_TRY_ACQUIRED(lockdep_class_, LockMode::kExclusive);
    return true;
  }

  void unlock() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      writer_ = false;
    }
    // Waiting writers go first (preference); readers wake when none remain.
    writer_cv_.notify_one();
    reader_cv_.notify_all();
    PSE_LOCKDEP_RELEASE(lockdep_class_);
  }

  void lock_shared() {
    PSE_LOCKDEP_ACQUIRE(lockdep_class_, LockMode::kShared);
    std::unique_lock<std::mutex> lock(mu_);
    reader_cv_.wait(lock, [&] { return !writer_ && writers_waiting_ == 0; });
    ++readers_;
  }

  bool try_lock_shared() {
    std::unique_lock<std::mutex> lock(mu_);
    if (writer_ || writers_waiting_ != 0) return false;
    ++readers_;
    PSE_LOCKDEP_TRY_ACQUIRED(lockdep_class_, LockMode::kShared);
    return true;
  }

  void unlock_shared() {
    uint64_t left;
    {
      std::lock_guard<std::mutex> lock(mu_);
      left = --readers_;
    }
    if (left == 0) writer_cv_.notify_one();
    PSE_LOCKDEP_RELEASE(lockdep_class_);
  }

 private:
  std::mutex mu_;
  std::condition_variable reader_cv_;
  std::condition_variable writer_cv_;
  uint64_t readers_ = 0;
  uint64_t writers_waiting_ = 0;
  bool writer_ = false;
#ifdef PSE_LOCKDEP
  uint32_t lockdep_class_ = 0;
#endif
};

}  // namespace pse
