// Writer-preferring reader-writer latch.
//
// std::shared_mutex gives no fairness guarantee; on glibc its writers can
// starve indefinitely under a stream of readers that release and immediately
// re-acquire — exactly what a pool of foreground query sessions does to the
// catalog latch while a migration waits to quiesce. This latch makes the
// writer's acquisition a barrier: once a writer is waiting, new readers
// queue behind it, so the quiesce window begins as soon as the in-flight
// readers drain (bounded by one query's latency, not by the arrival rate).
//
// Writer preference has a sharp edge: a thread that already holds the latch
// shared and tries to take it shared *again* can deadlock behind a waiting
// writer (the writer waits for the first hold, the re-acquisition waits for
// the writer). Acquisitions of this latch must therefore never nest —
// DESIGN.md §15's latching protocol is written so they don't.
//
// Satisfies SharedLockable: use with std::shared_lock<SharedMutex> /
// std::unique_lock<SharedMutex>.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace pse {

class SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() {
    std::unique_lock<std::mutex> lock(mu_);
    ++writers_waiting_;
    writer_cv_.wait(lock, [&] { return !writer_ && readers_ == 0; });
    --writers_waiting_;
    writer_ = true;
  }

  bool try_lock() {
    std::unique_lock<std::mutex> lock(mu_);
    if (writer_ || readers_ != 0) return false;
    writer_ = true;
    return true;
  }

  void unlock() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      writer_ = false;
    }
    // Waiting writers go first (preference); readers wake when none remain.
    writer_cv_.notify_one();
    reader_cv_.notify_all();
  }

  void lock_shared() {
    std::unique_lock<std::mutex> lock(mu_);
    reader_cv_.wait(lock, [&] { return !writer_ && writers_waiting_ == 0; });
    ++readers_;
  }

  bool try_lock_shared() {
    std::unique_lock<std::mutex> lock(mu_);
    if (writer_ || writers_waiting_ != 0) return false;
    ++readers_;
    return true;
  }

  void unlock_shared() {
    uint64_t left;
    {
      std::lock_guard<std::mutex> lock(mu_);
      left = --readers_;
    }
    if (left == 0) writer_cv_.notify_one();
  }

 private:
  std::mutex mu_;
  std::condition_variable reader_cv_;
  std::condition_variable writer_cv_;
  uint64_t readers_ = 0;
  uint64_t writers_waiting_ = 0;
  bool writer_ = false;
};

}  // namespace pse
