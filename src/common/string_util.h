// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pse {

/// Lowercases ASCII characters; non-ASCII bytes pass through.
std::string ToLower(std::string_view s);
/// Uppercases ASCII characters.
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Splits on a delimiter character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// SQL LIKE matching with '%' (any run) and '_' (any one char) wildcards.
/// Case-sensitive, no escape character.
bool LikeMatch(std::string_view value, std::string_view pattern);

/// Formats a byte count as "12.3 MiB" style.
std::string FormatBytes(uint64_t bytes);

/// Formats an integer with thousands separators ("1,234,567").
std::string FormatCount(uint64_t n);

}  // namespace pse
