// Deterministic pseudo-random number generation. All randomized components
// (data generator, GA, property tests) take an explicit Rng so that every
// run is reproducible from a seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pse {

/// \brief xoshiro256** generator: fast, high-quality, deterministic.
///
/// Satisfies the UniformRandomBitGenerator concept so it can be used with
/// <random> distributions as well.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds via SplitMix64 expansion of a single 64-bit seed.
  void Seed(uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  uint64_t operator()() { return Next(); }
  uint64_t Next();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);
  /// Uniform double in [0, 1).
  double UniformDouble();
  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Random index in [0, n). Requires n > 0.
  size_t Index(size_t n) { return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1)); }

  /// Random lowercase alpha string of the given length.
  std::string AlphaString(size_t length);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = Index(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Picks a uniformly random element. Requires non-empty.
  template <typename T>
  const T& Choice(const std::vector<T>& v) {
    return v[Index(v.size())];
  }

 private:
  uint64_t s_[4];
};

}  // namespace pse
