#include "common/rng.h"

namespace pse {

namespace {
inline uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

void Rng::Seed(uint64_t seed) {
  for (auto& s : s_) s = SplitMix64(&seed);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Lemire's rejection method for unbiased bounded integers.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * range;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < range) {
    uint64_t t = (0 - range) % range;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * range;
      l = static_cast<uint64_t>(m);
    }
  }
  return lo + static_cast<int64_t>(m >> 64);
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

std::string Rng::AlphaString(size_t length) {
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out.push_back(static_cast<char>('a' + UniformInt(0, 25)));
  }
  return out;
}

}  // namespace pse
