#include "common/thread_pool.h"

#include <algorithm>

namespace pse {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t lanes = num_threads == 0 ? DefaultThreadCount() : num_threads;
  workers_.reserve(lanes - 1);
  for (size_t i = 1; i < lanes; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

size_t ThreadPool::DefaultThreadCount() {
  const size_t hw = std::thread::hardware_concurrency();
  return std::clamp<size_t>(hw, 1, 16);
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    RunJob();
  }
}

void ThreadPool::RunJob() {
  while (true) {
    size_t index;
    const std::function<void(size_t)>* fn;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (job_next_ >= job_n_) return;
      index = job_next_++;
      fn = job_fn_;
    }
    (*fn)(index);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--job_remaining_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::lock_guard<std::mutex> serial(job_serial_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_fn_ = &fn;
    job_n_ = n;
    job_next_ = 0;
    job_remaining_ = n;
    ++generation_;
  }
  work_cv_.notify_all();
  RunJob();  // the calling thread is a lane too
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return job_remaining_ == 0; });
  job_fn_ = nullptr;
}

}  // namespace pse
