// Status and Result<T>: error handling without exceptions, in the style of
// Apache Arrow / RocksDB. Core library code returns Status (or Result<T>)
// instead of throwing; callers are expected to check.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>

namespace pse {

/// Error categories used across the library.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kNotImplemented,
  kInternal,
  kIOError,
  kResourceExhausted,
  kParseError,
  kBindError,
  kConstraintViolation,
};

/// Returns a human-readable name for a status code ("OK", "NotFound", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: a code plus, when not OK, a message.
///
/// An OK status carries no allocation. Statuses are cheap to move and copy
/// (copying a non-OK status copies the message).
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string msg)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_unique<State>(State{code, std::move(msg)})) {}

  Status(const Status& other)
      : state_(other.state_ ? std::make_unique<State>(*other.state_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
    }
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  /// Message text; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsBindError() const { return code() == StatusCode::kBindError; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::unique_ptr<State> state_;  // null == OK
};

/// \brief Either a value of type T or a non-OK Status.
///
/// Modeled after arrow::Result. Access via ValueOrDie()/operator* only after
/// checking ok(); MoveValueUnsafe() transfers ownership out.
template <typename T>
class Result {
 public:
  /// Implicit from value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  // Unchecked by contract: callers gate on ok() first (see class comment).
  // NOLINTBEGIN(bugprone-unchecked-optional-access)
  const T& ValueOrDie() const& { return *value_; }
  T& ValueOrDie() & { return *value_; }
  T&& MoveValueUnsafe() { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }
  // NOLINTEND(bugprone-unchecked-optional-access)

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace pse

/// Propagates a non-OK Status to the caller.
#define PSE_RETURN_NOT_OK(expr)          \
  do {                                   \
    ::pse::Status _st = (expr);          \
    if (!_st.ok()) return _st;           \
  } while (0)

#define PSE_CONCAT_IMPL(a, b) a##b
#define PSE_CONCAT(a, b) PSE_CONCAT_IMPL(a, b)

/// Evaluates a Result<T> expression; assigns the value on success, returns
/// the error status otherwise.
#define PSE_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  auto PSE_CONCAT(_res_, __LINE__) = (rexpr);                 \
  if (!PSE_CONCAT(_res_, __LINE__).ok())                      \
    return PSE_CONCAT(_res_, __LINE__).status();              \
  lhs = PSE_CONCAT(_res_, __LINE__).MoveValueUnsafe()
