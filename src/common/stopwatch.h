// Wall-clock stopwatch for benchmark harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace pse {

/// Measures elapsed wall time; starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction/Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in microseconds.
  uint64_t ElapsedMicros() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start_).count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pse
