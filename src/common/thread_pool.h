// Small fixed-size thread pool for fan-out/join parallelism.
//
// The planners cost thousands of independent candidate schemas per migration
// point; each estimation is pure (rewrite -> plan -> cost with per-call
// scratch state), so the only shared mutable state in a parallel sweep is the
// (mutex-guarded) query-cost cache. ParallelFor is the single primitive: it
// runs fn(0..n-1) across the workers plus the calling thread and returns when
// every index completed. Callers own determinism by writing results into
// index-addressed slots and reducing serially afterwards.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pse {

/// \brief A fixed set of worker threads executing index-sharded jobs.
///
/// One job runs at a time; concurrent ParallelFor calls from different
/// threads serialize on an internal mutex. The pool is *not* reentrant:
/// calling ParallelFor from inside a job deadlocks by construction (workers
/// are all busy), so nested parallelism must stay at one level.
class ThreadPool {
 public:
  /// Creates a pool of `num_threads` total execution lanes (workers plus the
  /// calling thread, which always participates in ParallelFor). 0 picks
  /// DefaultThreadCount(). num_threads == 1 spawns no workers at all.
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (spawned workers + the calling thread).
  size_t num_threads() const { return workers_.size() + 1; }

  /// Runs fn(i) for every i in [0, n), sharded dynamically across the
  /// workers and the calling thread; returns once all n calls finished.
  /// fn must not throw and must not call back into this pool.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Hardware concurrency clamped to [1, 16] (the planners' sweeps are
  /// memory-light but cache-coupled; more lanes than that just contend).
  static size_t DefaultThreadCount();

 private:
  void WorkerLoop();
  /// Pulls indices from the current job until it is drained.
  void RunJob();

  std::mutex job_serial_mu_;  ///< serializes whole ParallelFor calls

  std::mutex mu_;  ///< guards the job fields + generation below
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(size_t)>* job_fn_ = nullptr;
  size_t job_n_ = 0;
  size_t job_next_ = 0;
  size_t job_remaining_ = 0;
  uint64_t generation_ = 0;
  bool stop_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace pse
