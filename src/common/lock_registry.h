// Lockdep-style latch instrumentation (tentpole of the lock-order analyzer).
//
// Every latch in the system registers with the LockRegistry under a *class*
// keyed by name — "catalog", "servingschema", "table:<name>", "bufferpool" —
// with a rank from the canonical hierarchy (DESIGN.md §17). Classes are
// per-name, not per-instance (Linux-lockdep style): a table dropped and
// recreated under the same name maps back to the same class, and edges
// recorded across different Database instances merge into one global
// acquisition-order graph.
//
// In a PROGSCHEMA_LOCKDEP build, every blocking acquire records an edge from
// each lock the calling thread already holds to the lock being acquired, and
// flags violations *at acquire time* — before the thread can actually
// deadlock:
//
//   - order inversion: acquiring a lock whose (rank, name) does not sort
//     strictly after every held lock's (rank, name);
//   - shared→exclusive upgrade of an already-held latch (classic deadlock
//     when two threads race the upgrade);
//   - recursive acquisition of an already-held latch (pse::SharedMutex is
//     writer-preferring, so even shared→shared self-nesting can deadlock
//     behind a waiting writer — see rw_latch.h);
//   - disk I/O performed while a no-I/O class is held (OnIo, fired by the
//     leaf DiskManager backends). Classes that legitimately do page I/O
//     under their latch — the buffer pool's miss path, the catalog latch
//     across quiesce-window checkpoints — register with allows_io=true.
//
// Trylock acquisitions push held state but record no edges and raise no
// order violations: a non-blocking acquire cannot participate in a deadlock.
//
// The registry API itself is always compiled (tests seed violations through
// it directly in any build); only the *hooks* in the latch classes are
// compiled under PSE_LOCKDEP, so a normal build pays nothing — see the
// bench.sh qps floor check.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

namespace pse {

/// Canonical latch ranks (DESIGN.md §17). Acquisition must ascend in
/// (rank, class-name) order; ties within kLockRankTable are broken by the
/// sorted table name, which is why ExecutePlan sorts its latch set.
enum LockRank : int {
  kLockRankFleet = 4,        // FleetScheduler pick/busy state (pre-catalog)
  kLockRankShard = 6,        // TenantShard trajectory state ("shard:<id>")
  kLockRankFleetIo = 8,      // IoTokenBucket global migration-I/O budget
  kLockRankCatalog = 10,     // Database::schema_latch()
  kLockRankServing = 20,     // ServingSchema snapshot mutex (no I/O allowed)
  kLockRankDmlRouter = 25,   // DmlRouter write mutex (statement/batch scope)
  kLockRankProvenance = 26,  // ProvenanceStore map mutex (no I/O allowed)
  kLockRankPlanCache = 28,   // SharedPlanCache map mutex (no I/O allowed)
  kLockRankTable = 30,       // per-TableInfo latches, sorted-name order
  kLockRankBufferPool = 40,  // BufferPool mutex (leaf; I/O on miss path)
};

enum class LockMode : uint8_t { kShared, kExclusive };

const char* LockModeName(LockMode mode);

struct LockClassDesc {
  std::string name;
  int rank = 0;
  // True when the class may legitimately perform page I/O while held.
  bool allows_io = false;
};

/// One observed "held A, then acquired B" ordering, merged over all threads
/// and runs since the last ClearEvents(). Sites are the PSE_LOCKDEP_SCOPE
/// annotations active at first observation.
struct LockEdge {
  size_t from = 0;  // index into LockOrderGraph::classes
  size_t to = 0;
  std::string from_site;
  std::string to_site;
  uint64_t count = 0;
};

enum class LockViolationKind : uint8_t {
  kOrderInversion,
  kUpgrade,
  kRecursive,
  kHeldAcrossIo,
};

const char* LockViolationKindName(LockViolationKind kind);

struct LockViolation {
  LockViolationKind kind = LockViolationKind::kOrderInversion;
  std::string held_lock;
  std::string held_site;
  LockMode held_mode = LockMode::kShared;
  std::string acquired_lock;  // empty for kHeldAcrossIo ("disk I/O")
  std::string acquired_site;
  LockMode acquired_mode = LockMode::kExclusive;

  std::string ToString() const;
};

/// Immutable snapshot of the registry, consumed by AnalyzeLockOrder and the
/// DOT renderer (src/analysis/lockorder.{h,cc}).
struct LockOrderGraph {
  std::vector<LockClassDesc> classes;
  std::vector<LockEdge> edges;
  std::vector<LockViolation> violations;
  uint64_t acquisitions = 0;
};

class LockRegistry {
 public:
  static LockRegistry& Instance();

  LockRegistry(const LockRegistry&) = delete;
  LockRegistry& operator=(const LockRegistry&) = delete;

  /// Returns the class id (>= 1; 0 means "unregistered" and is ignored by
  /// the hooks). Re-registering an existing name returns the same id.
  uint32_t RegisterClass(const std::string& name, int rank, bool allows_io);

  /// Called before a blocking acquire (or after a successful try-acquire,
  /// with try_acquire=true). Records edges from all locks held by the
  /// calling thread and flags violations; then pushes the lock onto the
  /// thread's held stack.
  void OnAcquire(uint32_t cls, LockMode mode, bool try_acquire = false);

  /// Pops the most recent hold of `cls` from the calling thread's stack.
  void OnRelease(uint32_t cls);

  /// Called by leaf DiskManager backends around page I/O: flags every held
  /// lock whose class has allows_io=false.
  void OnIo();

  /// Site-annotation stack (see ScopedLockSite / PSE_LOCKDEP_SCOPE).
  void PushSite(const char* site);
  void PopSite();

  LockOrderGraph Snapshot() const;
  size_t violation_count() const;

  /// Drops recorded edges/violations/counters and the *calling thread's*
  /// held/site stacks; registered classes persist. Call between test
  /// scenarios, from a point where this thread holds no latches.
  void ClearEvents();

  // Implementation detail (defined in lock_registry.cc); public only so the
  // thread-local held-stack storage can live at namespace scope.
  struct HeldLock;

 private:
  LockRegistry() = default;

  void RecordViolation(LockViolationKind kind, const HeldLock& held,
                       const std::string& acquired_lock, const char* acquired_site,
                       LockMode acquired_mode, uint32_t acquired_cls);

  mutable std::mutex mu_;
  // Class storage must not invalidate references on growth: held-lock
  // entries cache `const std::string*` into these descriptors.
  std::map<uint32_t, LockClassDesc> classes_;
  std::unordered_map<std::string, uint32_t> by_name_;
  std::map<std::pair<uint32_t, uint32_t>, LockEdge> edges_;
  std::vector<LockViolation> violations_;
  // Dedup: one violation per (kind, held class, acquired class).
  std::set<std::tuple<uint8_t, uint32_t, uint32_t>> reported_;
  uint64_t acquisitions_ = 0;
};

/// Annotates the code region a latch acquisition happens in, so violations
/// name "MigrationExecutor::CopyTarget" rather than a line in rw_latch.h.
/// Always compiled (trivially cheap); the PSE_LOCKDEP_SCOPE macro below
/// compiles away entirely in non-lockdep builds.
class ScopedLockSite {
 public:
  explicit ScopedLockSite(const char* site) { LockRegistry::Instance().PushSite(site); }
  ~ScopedLockSite() { LockRegistry::Instance().PopSite(); }
  ScopedLockSite(const ScopedLockSite&) = delete;
  ScopedLockSite& operator=(const ScopedLockSite&) = delete;
};

/// Instrumented std::mutex. Drop-in for the buffer-pool / serving-schema
/// mutexes: satisfies Lockable, adds lockdep registration. With PSE_LOCKDEP
/// off the hooks expand to nothing and the class is exactly a std::mutex.
class Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void LockdepRegister(const std::string& name, int rank, bool allows_io);

  void lock();
  bool try_lock();
  void unlock();

 private:
  std::mutex mu_;
#ifdef PSE_LOCKDEP
  uint32_t lockdep_class_ = 0;
#endif
};

#ifdef PSE_LOCKDEP
#define PSE_LOCKDEP_CONCAT2(a, b) a##b
#define PSE_LOCKDEP_CONCAT(a, b) PSE_LOCKDEP_CONCAT2(a, b)
#define PSE_LOCKDEP_SCOPE(site) \
  ::pse::ScopedLockSite PSE_LOCKDEP_CONCAT(pse_lockdep_scope_, __LINE__)(site)
#define PSE_LOCKDEP_ACQUIRE(cls, mode) \
  ::pse::LockRegistry::Instance().OnAcquire((cls), (mode))
#define PSE_LOCKDEP_TRY_ACQUIRED(cls, mode) \
  ::pse::LockRegistry::Instance().OnAcquire((cls), (mode), /*try_acquire=*/true)
#define PSE_LOCKDEP_RELEASE(cls) ::pse::LockRegistry::Instance().OnRelease(cls)
#define PSE_LOCKDEP_IO() ::pse::LockRegistry::Instance().OnIo()
#else
#define PSE_LOCKDEP_SCOPE(site) static_cast<void>(0)
#define PSE_LOCKDEP_ACQUIRE(cls, mode) static_cast<void>(0)
#define PSE_LOCKDEP_TRY_ACQUIRED(cls, mode) static_cast<void>(0)
#define PSE_LOCKDEP_RELEASE(cls) static_cast<void>(0)
#define PSE_LOCKDEP_IO() static_cast<void>(0)
#endif

// The hook macros swallow their arguments textually, so these bodies
// reference lockdep_class_ only in PSE_LOCKDEP builds; otherwise each method
// is exactly its std::mutex counterpart.
inline void Mutex::lock() {
  PSE_LOCKDEP_ACQUIRE(lockdep_class_, LockMode::kExclusive);
  mu_.lock();
}

inline bool Mutex::try_lock() {
  if (!mu_.try_lock()) return false;
  PSE_LOCKDEP_TRY_ACQUIRED(lockdep_class_, LockMode::kExclusive);
  return true;
}

inline void Mutex::unlock() {
  mu_.unlock();
  PSE_LOCKDEP_RELEASE(lockdep_class_);
}

inline void Mutex::LockdepRegister(const std::string& name, int rank, bool allows_io) {
#ifdef PSE_LOCKDEP
  lockdep_class_ = LockRegistry::Instance().RegisterClass(name, rank, allows_io);
#else
  static_cast<void>(name);
  static_cast<void>(rank);
  static_cast<void>(allows_io);
#endif
}

}  // namespace pse
