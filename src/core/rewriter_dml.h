// Write rewriter: bidirectional DML on intermediate schemas.
//
// RewriteQuery (rewriter.h) lets both application versions *read* any
// physical layout; this module is the write half. A version's DML statement
// is expressed against one of its VersionTables (writability.h) in entity
// terms — anchor key plus attribute assignments — and RewriteDml lowers it
// onto the current intermediate PhysicalSchema as a fan-out of fragment
// writes across already-applied CombineTable/SplitTable boundaries:
//
//   INSERT  one kAnchorInsert per fragment anchored at the statement's
//           entity (denormalized parent columns filled through the
//           resolution ladder below), preceded by one kParentMerge per
//           parent entity the statement provides attributes for —
//           create-or-merge with *existing wins* semantics, mirroring the
//           bidirectional-lens treatment of cross-entity combines (BiDEL;
//           Tanaka & Kato, PAPERS.md);
//   UPDATE  keyed updates on fragments anchored at the entity, fan-out
//           updates on fragments that denormalize the touched attributes
//           under a descendant anchor (matched on the stored FK column, so
//           dangling references heal), and parent-row updates located by
//           resolving the anchor row's FK chain; updating an FK attribute
//           refreshes every denormalized column that depends on it;
//   DELETE  keyed deletes on the entity's anchored fragments plus fan-out
//           kFanClear writes that NULL the entity's columns out of
//           denormalized fragments. Parent attribute values carried only by
//           deleted rows are snapshotted into the ProvenanceStore first —
//           the provenance rows AnalyzeWritability's
//           kRecoverableWithProvenance lens class calls for.
//
// Resolution ladder for a denormalized parent column at insert/refresh
// time: (1) keyed row in a fragment anchored at the parent, (2) a sibling
// row in the same fragment referencing the same parent, (3) the provenance
// store, (4) the statement-provided value, (5) NULL.
//
// Servability agrees with the static analyzer by construction: RewriteDml
// returns BindError exactly when ClassifyVersionTable's cell for the
// statement's DML kind is kUnservable (property-tested in
// tests/core/rewriter_dml_test.cc).
//
// The DmlRouter executes bound statements and integrates with a live
// migration (always-dual-apply protocol, DESIGN.md §19): while an operator
// copies, every statement fully applies to the current schema — the source
// side stays authoritative until kDropSources — and is re-rewritten against
// the operator's post-op schema, applying only the fragment writes that
// land on journal targets. Per-target key sets shared with the copy loop
// make the dual writes and the batched copy idempotent with respect to each
// other, whichever side of the copy frontier a row is on.
//
// Locking (DESIGN.md §17/§19): the router's write mutex ranks at
// kLockRankDmlRouter (25) — above the catalog and serving-schema latches its
// callers hold, below every table latch it acquires — and serializes whole
// statements against whole copy batches. The provenance map mutex ranks at
// kLockRankProvenance (26) and never does I/O.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "analysis/writability.h"
#include "catalog/tuple.h"
#include "catalog/value.h"
#include "common/lock_registry.h"
#include "common/status.h"
#include "core/physical_schema.h"
#include "sql/dml_hook.h"
#include "storage/database.h"

namespace pse {

/// One entity-level DML statement, as an application version issues it
/// against one of its VersionTables. INSERT provides the new anchor key and
/// any attribute values (unset attributes become NULL); UPDATE/DELETE
/// address the row by anchor key.
struct LogicalDml {
  DmlKind kind = DmlKind::kInsert;
  VersionTable table;
  int64_t key = 0;
  /// Assigned attributes (INSERT: provided columns; UPDATE: SET list), each
  /// a member of `table.attrs`. Unused for DELETE.
  std::vector<AttrId> set_attrs;
  std::vector<Value> set_values;  ///< parallel to set_attrs

  std::string ToString() const;
};

/// How one planned fragment write locates and mutates its physical rows.
enum class FragmentWriteOp : uint8_t {
  kAnchorInsert,  ///< insert one row into a fragment anchored at the entity
  kKeyedUpdate,   ///< update rows matched on a stored key column
  kKeyedDelete,   ///< delete rows matched on the anchor key column
  kFanUpdate,     ///< update rows matched on the stored FK column into the entity
  kFanClear,      ///< NULL the entity's columns out of matching rows (DELETE fan-out)
  kParentMerge,   ///< create-or-merge a parent entity row (existing wins)
};
const char* FragmentWriteOpName(FragmentWriteOp op);

/// One physical write of the fan-out. Columns are positions into the
/// fragment's TableSchema (attribute order). `resolve_match` marks writes
/// whose match key is a parent key found at apply time by walking the
/// anchor row's FK chain; `resolve_cols` marks insert columns filled at
/// apply time through the resolution ladder.
struct FragmentWrite {
  FragmentWriteOp op = FragmentWriteOp::kAnchorInsert;
  size_t table_idx = 0;  ///< index into PhysicalSchema::tables()
  std::string table;     ///< that fragment's name
  EntityId entity = kInvalidId;  ///< entity whose row(s) this write touches

  size_t match_col = 0;  ///< row-match column (not used by kAnchorInsert)
  Value match_value;     ///< anchor key, or unset when resolve_match
  bool resolve_match = false;

  std::vector<size_t> cols;   ///< columns written (update/clear/merge)
  std::vector<Value> values;  ///< parallel to cols
  /// kAnchorInsert / kParentMerge row creation: the full row image; columns
  /// listed in resolve_cols hold NULL until the ladder resolves them.
  Row row;
  std::vector<size_t> resolve_cols;
  std::vector<AttrId> resolve_attrs;  ///< parallel to resolve_cols
};

/// A DML statement bound to one physical schema: its writability class and
/// the fragment writes it fans out to, in application order.
struct BoundDml {
  LogicalDml dml;
  Writability level = Writability::kSafe;
  std::vector<FragmentWrite> writes;
};

/// Lowers `dml` onto `schema`. BindError exactly when ClassifyVersionTable
/// reports the statement's DML kind kUnservable on this schema;
/// InvalidArgument when the statement itself is malformed (an assigned
/// attribute outside the version table, SELECT kind, arity mismatch).
Result<BoundDml> RewriteDml(const LogicalDml& dml, const PhysicalSchema& schema);

/// \brief Row provenance: attribute values whose only physical storage a
/// write destroyed or could not reach.
///
/// Two producers: DELETE snapshots the parent-entity values its deleted
/// rows carried (a cross-entity combine stores the parent only inside its
/// children's rows), and INSERT of a bare parent row on a schema with no
/// parent-anchored fragment and no covering child rows. Consumers: the
/// resolution ladder, and the migration executor's pre-publish backfill,
/// which materializes provenance-only parent rows into split targets so no
/// information is lost across the operator (the
/// kRecoverableWithProvenance contract). In-memory only — scoped to the
/// serving process, like the ServingSchema it travels with.
class ProvenanceStore {
 public:
  ProvenanceStore() { mu_.LockdepRegister("provenance", kLockRankProvenance, /*allows_io=*/false); }

  /// Records `attr` of entity row (entity, key); creates the row entry.
  void Put(EntityId entity, int64_t key, AttrId attr, const Value& v);
  /// Marks the entity row as existing without recording any attribute.
  void EnsureRow(EntityId entity, int64_t key);
  std::optional<Value> Get(EntityId entity, int64_t key, AttrId attr) const;
  bool Has(EntityId entity, int64_t key) const;
  void Erase(EntityId entity, int64_t key);
  /// All rows of `entity`: (key, attr values) pairs, key-ascending.
  std::vector<std::pair<int64_t, std::map<AttrId, Value>>> RowsOf(EntityId entity) const;
  size_t NumRows() const;

 private:
  mutable Mutex mu_;
  std::map<std::pair<EntityId, int64_t>, std::map<AttrId, Value>> rows_;
};

struct DmlExecOptions {
  /// Route the row-matching scans through the batched heap reads.
  bool vectorized = false;
};

/// Cumulative counters of one router (read without synchronization —
/// inspect them from quiesced code or accept approximate values).
struct DmlStats {
  uint64_t statements = 0;        ///< statements fully applied
  uint64_t fragment_writes = 0;   ///< physical row writes performed
  uint64_t provenance_rows = 0;   ///< provenance entries written
  uint64_t dual_applied = 0;      ///< statements additionally applied to targets
};

/// \brief Executes rewritten DML against a Database, dual-applying onto the
/// in-flight migration operator's targets while one is attached.
///
/// Callers must hold the database catalog latch shared across Execute (the
/// same discipline as query lanes), or be the migration thread inside one
/// of its own windows. Execute serializes on the write mutex against other
/// statements and against whole copy batches.
class DmlRouter {
 public:
  /// `provenance` may be null: the router then owns a private store.
  explicit DmlRouter(Database* db, ProvenanceStore* provenance = nullptr);

  /// Rewrites `dml` against `current` and applies every fragment write;
  /// with an operator attached, re-rewrites against the post-op schema and
  /// applies the target-table writes too. BindError when unservable on
  /// `current` (callers count it unservable, not an error).
  Status Execute(const LogicalDml& dml, const PhysicalSchema& current,
                 const DmlExecOptions& opts = {});

  ProvenanceStore* provenance() { return provenance_; }
  const DmlStats& stats() const { return stats_; }

  // -- migration integration (called by MigrationExecutor; see
  //    migration_executor.cc for the call sites and DESIGN.md §19) --

  /// Copy state of one journal target, shared between the router's dual
  /// writes and the copy loop. `keys` holds every anchor key present in the
  /// destination heap; both sides consult and extend it under the write
  /// mutex, which is what makes "already in the destination" a stable
  /// predicate across the copy frontier.
  struct TargetState {
    std::string table;
    size_t after_idx = 0;    ///< index into the post-op schema's tables
    size_t key_col = 0;      ///< destination key column position
    size_t journal_idx = 0;  ///< index into MigrationJournal::targets
    std::unordered_set<Value, ValueHash, ValueEq> keys;
  };

  /// Attaches the in-flight operator: `after` is its post-op schema (must
  /// outlive the attachment). Rebuilds every target's key set from the
  /// destination heaps (missing tables mean an empty set — the fresh path
  /// attaches before kCreateTargets).
  Status AttachOp(const PhysicalSchema* after, std::vector<TargetState> targets);
  /// Re-derives every key set from the destination heaps. The executor
  /// calls this after crash recovery may have rebuilt torn targets.
  Status RebuildKeys();
  void DetachOp();
  bool attached() const;

  /// Copy state for destination `table`; nullptr when not attached or not a
  /// target. The copy loop reads/extends `keys` under the write mutex.
  TargetState* FindTarget(const std::string& table);

  /// Materializes provenance-only parent rows into every attached target
  /// (key not yet present). Called by the executor inside the pre-publish
  /// quiesce window so split targets keep rows whose source storage was
  /// deleted mid-copy.
  Status BackfillProvenance();

  /// Statement/batch-scope write mutex (kLockRankDmlRouter). The copy loop
  /// holds it across one whole batch; Execute across one whole statement.
  Mutex& write_mutex() { return write_mu_; }

 private:
  /// Applies the fan-out onto `schema`'s tables; the resolution ladder reads
  /// `truth` (the authoritative current schema). `parent_exists` is the
  /// pre-statement existence snapshot per parent entity (existing-wins merges
  /// must not be fooled by the bare-parent provenance rows the statement
  /// itself wrote). In dest mode only journal targets are written and the
  /// shared key sets / journal row counts are maintained.
  Status ApplyBound(const BoundDml& bound, const PhysicalSchema& schema,
                    const PhysicalSchema& truth, const std::map<EntityId, bool>& parent_exists,
                    const DmlExecOptions& opts, bool dest_mode);

  Database* db_;
  ProvenanceStore owned_provenance_;
  ProvenanceStore* provenance_;
  Mutex write_mu_;
  DmlStats stats_;

  // Attached-operator state (mutated only under write_mu_).
  const PhysicalSchema* after_ = nullptr;
  std::vector<TargetState> targets_;
};

/// \brief SessionDmlHook implementation: lifts parsed SQL DML against a
/// version table into a LogicalDml and routes it through a DmlRouter.
///
/// The session's Execute already holds the catalog latch shared; this
/// bridge only adds the router's own latches (ranks 25+), keeping the
/// canonical order. A statement naming a table outside `tables` is not
/// handled (returns false) and falls through to the session's physical
/// path. Because version-table DML is entity-level, UPDATE/DELETE must
/// address one row as `WHERE <key> = <literal>` and assignments must be
/// literals; anything else is InvalidArgument, not a fall-through (the
/// version table has no physical counterpart to fall through to).
class SqlDmlBridge : public SessionDmlHook {
 public:
  /// Returns the schema snapshot a statement executes against — typically
  /// ServingSchema::Get, so the bridge follows live migration publishes.
  using SchemaProvider = std::function<std::shared_ptr<const PhysicalSchema>()>;

  SqlDmlBridge(DmlRouter* router, std::vector<VersionTable> tables, SchemaProvider current,
               DmlExecOptions opts = {})
      : router_(router), tables_(std::move(tables)), current_(std::move(current)), opts_(opts) {}

  Result<bool> OnInsert(const InsertStmt& stmt, uint64_t* affected) override;
  Result<bool> OnUpdate(const UpdateStmt& stmt, uint64_t* affected) override;
  Result<bool> OnDelete(const DeleteStmt& stmt, uint64_t* affected) override;

 private:
  const VersionTable* Find(const std::string& name) const;
  Result<std::shared_ptr<const PhysicalSchema>> Snapshot() const;

  DmlRouter* router_;
  std::vector<VersionTable> tables_;
  SchemaProvider current_;
  DmlExecOptions opts_;
};

}  // namespace pse
