// VirtualSchemaCatalog: presents a candidate (not materialized) physical
// schema to the planner/cost model. This is what lets LAA/GAA price the
// exponentially many intermediate schemas "virtually listed" in the paper
// without ever loading data.
#pragma once

#include <map>
#include <string>

#include "core/logical_schema.h"
#include "core/physical_schema.h"
#include "engine/catalog_view.h"

namespace pse {

/// \brief CatalogView over a PhysicalSchema + LogicalStats snapshot.
///
/// Statistics are synthesized: a table anchored at entity E has
/// entity_rows[E] rows; embedded attributes keep their logical NDV/min/max,
/// with null counts scaled to the anchor cardinality. Every table is assumed
/// to carry a B+ tree index on its anchor key (the Database's auto key
/// index), matching what the migration executor actually builds.
class VirtualSchemaCatalog : public CatalogView {
 public:
  VirtualSchemaCatalog(const PhysicalSchema* schema, const LogicalStats* stats);

  Result<const TableSchema*> GetSchema(const std::string& table) const override;
  Result<const TableStatistics*> GetStats(const std::string& table) const override;
  bool HasIndex(const std::string& table, const std::string& column) const override;

  const PhysicalSchema& physical() const { return *schema_; }

 private:
  const PhysicalSchema* schema_;
  const LogicalStats* stats_;
  // Lowercased table name -> synthesized metadata.
  std::map<std::string, TableSchema> table_schemas_;
  std::map<std::string, TableStatistics> table_stats_;
  std::map<std::string, std::string> key_column_;
};

}  // namespace pse
