#include "core/operators.h"

#include <algorithm>

namespace pse {

namespace {

/// Non-key attributes of a table.
std::vector<AttrId> NonKeyAttrs(const LogicalSchema& L, const PhysicalTable& t) {
  std::vector<AttrId> out;
  for (AttrId a : t.attrs) {
    if (!L.attr(a).is_key) out.push_back(a);
  }
  return out;
}

std::string AttrList(const LogicalSchema& L, const std::vector<AttrId>& attrs) {
  std::string out;
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) out += ", ";
    out += L.attr(attrs[i]).name;
  }
  return out;
}

}  // namespace

std::string MigrationOperator::ToString(const LogicalSchema& logical) const {
  switch (kind) {
    case OperatorKind::kCreateTable:
      return "Create#" + std::to_string(id) + "(" + logical.entity(create_entity).name + ": " +
             AttrList(logical, create_attrs) + ")";
    case OperatorKind::kSplitTable:
      return "Split#" + std::to_string(id) + "(move " + AttrList(logical, split_moved) +
             " -> anchor " + logical.entity(split_moved_anchor).name + ")";
    case OperatorKind::kCombineTable:
      return "Combine#" + std::to_string(id) + "(" + logical.attr(combine_left_rep).name +
             " side + " + logical.attr(combine_right_rep).name + " side)";
  }
  return "?";
}

std::string OperatorResultName(const MigrationOperator& op, const LogicalSchema& logical,
                               bool split_right_side) {
  switch (op.kind) {
    case OperatorKind::kCreateTable:
      return "m" + std::to_string(op.id) + "_" + logical.entity(op.create_entity).name + "_new";
    case OperatorKind::kSplitTable:
      return "m" + std::to_string(op.id) + (split_right_side ? "b_" : "a_") +
             logical.entity(op.split_moved_anchor).name;
    case OperatorKind::kCombineTable:
      return "m" + std::to_string(op.id) + "_comb";
  }
  return "m" + std::to_string(op.id);
}

Status ApplyOperator(const MigrationOperator& op, PhysicalSchema* schema) {
  const LogicalSchema& L = *schema->logical();
  PhysicalSchema candidate = *schema;  // copy; commit only on success

  switch (op.kind) {
    case OperatorKind::kCreateTable: {
      if (op.create_attrs.empty()) return Status::InvalidArgument("create with no attributes");
      for (AttrId a : op.create_attrs) {
        if (candidate.TableOfNonKeyAttr(a).ok()) {
          return Status::InvalidArgument("create: attr '" + L.attr(a).name +
                                         "' already stored");
        }
        if (L.attr(a).entity != op.create_entity) {
          return Status::InvalidArgument("create: attr '" + L.attr(a).name +
                                         "' does not belong to entity '" +
                                         L.entity(op.create_entity).name + "'");
        }
      }
      // The entity's key values must be obtainable somewhere for loading.
      if (candidate.TablesWithAttr(L.entity(op.create_entity).key).empty()) {
        return Status::InvalidArgument("create: no table carries the key of entity '" +
                                       L.entity(op.create_entity).name + "'");
      }
      PSE_RETURN_NOT_OK(candidate.AddTable(OperatorResultName(op, L), op.create_entity,
                                           op.create_attrs));
      break;
    }
    case OperatorKind::kSplitTable: {
      if (op.split_moved.empty()) return Status::InvalidArgument("split with no moved attrs");
      PSE_ASSIGN_OR_RETURN(size_t ti, candidate.TableOfNonKeyAttr(op.split_moved[0]));
      const PhysicalTable table = candidate.tables()[ti];
      for (AttrId a : op.split_moved) {
        if (!table.Contains(a)) {
          return Status::InvalidArgument("split: attrs not co-located ('" + L.attr(a).name +
                                         "' is elsewhere)");
        }
        if (L.attr(a).is_key) {
          return Status::InvalidArgument("split: cannot move key attr '" + L.attr(a).name + "'");
        }
      }
      std::vector<AttrId> nonkey = NonKeyAttrs(L, table);
      std::vector<AttrId> rest;
      for (AttrId a : nonkey) {
        if (std::find(op.split_moved.begin(), op.split_moved.end(), a) ==
            op.split_moved.end()) {
          rest.push_back(a);
        }
      }
      if (rest.empty()) {
        return Status::InvalidArgument("split: would leave an empty table");
      }
      candidate.RemoveTable(ti);
      PSE_RETURN_NOT_OK(
          candidate.AddTable(OperatorResultName(op, L, false), table.anchor, rest));
      PSE_RETURN_NOT_OK(candidate.AddTable(OperatorResultName(op, L, true),
                                           op.split_moved_anchor, op.split_moved));
      break;
    }
    case OperatorKind::kCombineTable: {
      PSE_ASSIGN_OR_RETURN(size_t ai, candidate.TableOfNonKeyAttr(op.combine_left_rep));
      PSE_ASSIGN_OR_RETURN(size_t bi, candidate.TableOfNonKeyAttr(op.combine_right_rep));
      if (ai == bi) return Status::InvalidArgument("combine: sides are the same table");
      const PhysicalTable ta = candidate.tables()[ai];
      const PhysicalTable tb = candidate.tables()[bi];
      EntityId anchor;
      if (ta.anchor == tb.anchor) {
        anchor = ta.anchor;
      } else if (L.Reaches(ta.anchor, tb.anchor)) {
        anchor = ta.anchor;
      } else if (L.Reaches(tb.anchor, ta.anchor)) {
        anchor = tb.anchor;
      } else {
        return Status::InvalidArgument("combine: anchors are unrelated entities");
      }
      std::vector<AttrId> merged = NonKeyAttrs(L, ta);
      std::vector<AttrId> b_nonkey = NonKeyAttrs(L, tb);
      merged.insert(merged.end(), b_nonkey.begin(), b_nonkey.end());
      // Remove higher index first.
      candidate.RemoveTable(std::max(ai, bi));
      candidate.RemoveTable(std::min(ai, bi));
      PSE_RETURN_NOT_OK(candidate.AddTable(OperatorResultName(op, L), anchor, merged));
      break;
    }
  }
  PSE_RETURN_NOT_OK(candidate.Validate());
  *schema = std::move(candidate);
  return Status::OK();
}

Status ApplyOperators(const std::vector<MigrationOperator>& ops, PhysicalSchema* schema) {
  for (const auto& op : ops) {
    Status s = ApplyOperator(op, schema);
    if (!s.ok()) {
      return Status(s.code(),
                    op.ToString(*schema->logical()) + " failed: " + s.message());
    }
  }
  return Status::OK();
}

}  // namespace pse
