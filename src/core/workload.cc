#include "core/workload.h"

#include <algorithm>

#include "core/rewriter.h"
#include "core/virtual_catalog.h"
#include "engine/cost_model.h"
#include "engine/planner.h"

namespace pse {

Result<double> EstimateQueryCost(const LogicalQuery& query, const PhysicalSchema& schema,
                                 const LogicalStats& stats) {
  VirtualSchemaCatalog catalog(&schema, &stats);
  PSE_ASSIGN_OR_RETURN(BoundQuery bound, RewriteQuery(query, schema));
  PSE_ASSIGN_OR_RETURN(PlanPtr plan, PlanQuery(bound, catalog));
  CostModel model(&catalog);
  PSE_ASSIGN_OR_RETURN(CostEstimate est, model.Estimate(*plan));
  return est.io_pages;
}

Result<double> EstimateWorkloadCost(const PhysicalSchema& schema, const LogicalStats& stats,
                                    const std::vector<WorkloadQuery>& queries,
                                    const std::vector<double>& freqs,
                                    const CostOptions& options) {
  if (freqs.size() != queries.size()) {
    return Status::InvalidArgument("frequency vector does not match query count");
  }
  if (std::none_of(freqs.begin(), freqs.end(), [](double f) { return f > 0; })) {
    return 0.0;  // silent phase: nothing to estimate
  }
  double total = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (freqs[i] <= 0) continue;
    Result<double> cost = EstimateQueryCost(queries[i].query, schema, stats);
    if (!cost.ok()) {
      if (cost.status().IsBindError() && options.fallback_schema != nullptr) {
        PSE_ASSIGN_OR_RETURN(
            double fb, EstimateQueryCost(queries[i].query, *options.fallback_schema, stats));
        total += options.unservable_penalty * fb * freqs[i];
        continue;
      }
      return cost.status();
    }
    total += *cost * freqs[i];
  }
  return total;
}

Result<double> CostValue(const PhysicalSchema& candidate, const PhysicalSchema& object,
                         const LogicalStats& stats, const std::vector<WorkloadQuery>& queries,
                         const std::vector<double>& freqs) {
  if (freqs.size() != queries.size()) {
    return Status::InvalidArgument("frequency vector does not match query count");
  }
  if (std::none_of(freqs.begin(), freqs.end(), [](double f) { return f > 0; })) {
    // Zero-frequency phase: both schemas trivially cost 0, so skip building
    // the fallback options and the two workload sweeps entirely.
    return 0.0;
  }
  CostOptions options;
  options.fallback_schema = &object;
  PSE_ASSIGN_OR_RETURN(double object_cost,
                       EstimateWorkloadCost(object, stats, queries, freqs, options));
  PSE_ASSIGN_OR_RETURN(double candidate_cost,
                       EstimateWorkloadCost(candidate, stats, queries, freqs, options));
  return object_cost - candidate_cost;
}

}  // namespace pse
