// MigrationSimulation: the experiment harness of Section IV. Runs the three
// situations the paper compares under one workload schedule:
//   Opt-Schema  — source and object databases coexist; old queries run on
//                 source, new queries on object (the ideal lower bound);
//   Obj-Schema  — one database already migrated to the object schema; every
//                 query is rewritten onto it (the classical one-shot
//                 migration / "existing system" upper bound);
//   Pro-Schema  — the paper's progressive migration: one database whose
//                 schema evolves at every migration point as chosen by LAA
//                 or GAA.
//
// Phase-Cost is measured as the paper does: C_i x F_i per query, with C_i
// the page I/O of one cold-cache execution of query i on the current
// schema, F_i its frequency in the phase.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/logical_database.h"
#include "core/migration_planner.h"
#include "core/workload.h"
#include "storage/database.h"

namespace pse {

enum class Situation { kOptSchema, kProSchema, kObjSchema };
enum class PlannerKind { kLaa, kGaa };

const char* SituationName(Situation s);

struct SimulationConfig {
  size_t buffer_pool_pages = 4096;
  PlannerKind planner = PlannerKind::kLaa;
  GaaOptions gaa;
  /// Execute queries for real and count buffer I/O (true), or use the cost
  /// model's estimates only (false; much faster, used by big sweeps).
  bool measure_actual = true;
  /// GAA re-plans at every migration point (the paper's imprecision-of-
  /// forecast argument); false commits to the first plan.
  bool replan_each_point = true;
  /// Penalty multiplier for queries not yet servable on an intermediate
  /// schema (priced via the object schema).
  double unservable_penalty = 3.0;
  /// LAA exhaustive-search guard.
  size_t laa_max_ops = 22;
  /// Plan from a WorkloadCollector's observations instead of the true
  /// schedule: at each migration point the planner sees only the phases
  /// measured so far and a least-squares forecast of the rest (the paper's
  /// "predicted trend may not be very precise" setting). The first point
  /// uses the true first-phase mix (the customer-predefined estimate).
  bool forecast_from_observations = false;
  /// Data growth: visible_rows[p][e] = rows of entity e visible during
  /// phase p (monotone per entity; last phase <= generated rows). Empty =
  /// static data. Growth inserts happen between phases and are not charged
  /// to query or migration I/O.
  std::vector<std::vector<size_t>> visible_rows;
  /// Online migration: move data in bounded batches and run one workload
  /// probe query (cycling through the phase's active queries, warm cache)
  /// between batches, the way foreground traffic interleaves with an online
  /// schema change. Probe I/O is reported per phase and excluded from
  /// migration_io. Requires measure_actual for the probes to execute.
  bool online_migration = false;
  /// Rows per migration batch in online mode.
  uint64_t migration_batch_rows = 256;
  /// Per-batch physical I/O budget in online mode (0 = unlimited).
  uint64_t migration_io_budget = 0;
  /// Concurrent serving (Pro only): run this many foreground query sessions
  /// on worker threads *while* each migration point applies its operators,
  /// and report per-phase throughput and latency percentiles. 0 = off (the
  /// single-threaded probe interleaving above). Requires measure_actual.
  /// With serving on, migration_io becomes approximate: foreground I/O and
  /// migration I/O share the physical counters, so the split between them
  /// is attributed by timing, not exactly. Probe hooks are disabled (the
  /// sessions *are* the foreground traffic) — probe-I/O numbers stay exact
  /// only in the single-threaded mode.
  size_t serve_sessions = 0;
  /// Minimum queries each serving session attempts per phase, so op-less
  /// phases still produce latency samples.
  uint64_t serve_min_queries = 4;
  /// Base RNG seed for the per-session query mix.
  uint64_t serve_seed = 42;
  /// Run measured queries, online-migration probes, and serving sessions
  /// through the vectorized batch engine (PSE_VECTORIZED=1 also forces it).
  bool vectorized_execution = false;
};

struct PhaseReport {
  double query_cost = 0;     ///< the paper's Phase-Cost (sum C_i * F_i)
  double migration_io = 0;   ///< data-movement I/O at this migration point
  std::vector<int> ops_applied;
  std::string schema_desc;
  // Online-migration instrumentation (zero unless config.online_migration).
  double online_probe_io = 0;   ///< I/O of probe queries run between batches
  uint64_t online_batches = 0;  ///< migration batches committed this phase
  uint64_t online_probes = 0;   ///< probe queries executed this phase
  // Concurrent-serving instrumentation (zero unless config.serve_sessions).
  uint64_t serve_queries = 0;      ///< foreground queries served this phase
  uint64_t serve_unservable = 0;   ///< skipped: not yet servable mid-phase
  double serve_wall_ms = 0;        ///< serve-window duration
  double serve_throughput_qps = 0; ///< queries per second across sessions
  double serve_p50_ms = 0;         ///< median foreground query latency
  double serve_p95_ms = 0;
  double serve_p99_ms = 0;
};

struct SituationReport {
  Situation situation = Situation::kProSchema;
  std::vector<PhaseReport> phases;
  /// I/O of the forced completion step after the last phase (Pro only).
  double final_migration_io = 0;

  double OverallCost() const;
  double TotalMigrationIo() const;
  double TotalOnlineProbeIo() const;
  uint64_t TotalOnlineBatches() const;
};

/// \brief Experiment driver for one (schedule, data) instance.
class MigrationSimulation {
 public:
  /// `phase_freqs[p][q]` is the frequency of queries[q] during phase p.
  /// `phase_stats` holds one entry (static data) or one per phase.
  MigrationSimulation(const PhysicalSchema* source, const PhysicalSchema* object,
                      const std::vector<WorkloadQuery>* queries,
                      std::vector<std::vector<double>> phase_freqs,
                      const LogicalDatabase* data, SimulationConfig config);

  /// Runs one situation end to end on a fresh database.
  Result<SituationReport> Run(Situation situation);

  /// Last Pro run's planner search effort (schemas estimated / GA evals).
  size_t last_planner_evaluations() const { return last_planner_evaluations_; }

  /// Data statistics in effect during `phase`.
  const LogicalStats& StatsAt(size_t phase) const {
    return phase_stats_.size() == 1 ? phase_stats_[0]
                                    : phase_stats_[std::min(phase, phase_stats_.size() - 1)];
  }

 private:
  /// Measures sum C_i*F_i for one phase on `schema` materialized in `db`.
  Result<double> MeasurePhase(Database* db, const PhysicalSchema& schema,
                              const std::vector<double>& freqs, const LogicalStats& stats);
  /// One query's cold-cache execution I/O (or estimate).
  Result<double> MeasureQuery(Database* db, const PhysicalSchema& schema,
                              const LogicalQuery& query, const LogicalStats& stats);

  const PhysicalSchema* source_;
  const PhysicalSchema* object_;
  const std::vector<WorkloadQuery>* queries_;
  std::vector<std::vector<double>> phase_freqs_;
  const LogicalDatabase* data_;
  SimulationConfig config_;
  std::vector<LogicalStats> phase_stats_;
  size_t last_planner_evaluations_ = 0;
};

}  // namespace pse
