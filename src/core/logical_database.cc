#include "core/logical_database.h"

#include <algorithm>
#include <unordered_set>

namespace pse {

Status EnsureSecondaryIndexes(Database* db, const PhysicalSchema& schema, size_t table_idx) {
  const LogicalSchema& L = *schema.logical();
  const PhysicalTable& t = schema.tables()[table_idx];
  for (AttrId a : t.attrs) {
    const LogicalAttribute& attr = L.attr(a);
    if (!attr.references.has_value()) continue;
    Status s = db->CreateIndex(t.name, attr.name);
    if (!s.ok() && !s.IsAlreadyExists()) return s;
  }
  return Status::OK();
}

LogicalDatabase::LogicalDatabase(const LogicalSchema* logical)
    : logical_(logical),
      rows_(logical->num_entities()),
      key_index_(logical->num_entities()) {}

Status LogicalDatabase::AddRow(EntityId entity, Row row) {
  const LogicalEntity& e = logical_->entity(entity);
  if (row.size() != e.attributes.size()) {
    return Status::InvalidArgument("entity row arity mismatch for '" + e.name + "'");
  }
  // Key = position of the key attribute within the entity's attribute list.
  size_t key_pos = 0;
  for (size_t i = 0; i < e.attributes.size(); ++i) {
    if (e.attributes[i] == e.key) key_pos = i;
  }
  const Value& key = row[key_pos];
  if (key.is_null() || key.type() != TypeId::kInt64) {
    return Status::InvalidArgument("entity key must be a non-null BIGINT");
  }
  auto [it, fresh] = key_index_[entity].try_emplace(key.AsInt(), rows_[entity].size());
  if (!fresh) {
    return Status::AlreadyExists("duplicate key " + key.ToString() + " in entity '" + e.name +
                                 "'");
  }
  rows_[entity].push_back(std::move(row));
  return Status::OK();
}

Status LogicalDatabase::UpdateRow(EntityId entity, int64_t key,
                                  const std::vector<AttrId>& attrs,
                                  const std::vector<Value>& values) {
  if (attrs.size() != values.size()) {
    return Status::InvalidArgument("UpdateRow attr/value arity mismatch");
  }
  const LogicalEntity& e = logical_->entity(entity);
  auto it = key_index_[entity].find(key);
  if (it == key_index_[entity].end()) {
    return Status::NotFound("no row with key " + std::to_string(key) + " in entity '" + e.name +
                            "'");
  }
  Row& row = rows_[entity][it->second];
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (attrs[i] == e.key) {
      return Status::InvalidArgument("cannot update the key of entity '" + e.name + "'");
    }
    bool found = false;
    for (size_t pos = 0; pos < e.attributes.size(); ++pos) {
      if (e.attributes[pos] == attrs[i]) {
        row[pos] = values[i];
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument("attr '" + logical_->attr(attrs[i]).name +
                                     "' does not belong to entity '" + e.name + "'");
    }
  }
  return Status::OK();
}

Status LogicalDatabase::DeleteRow(EntityId entity, int64_t key) {
  const LogicalEntity& e = logical_->entity(entity);
  auto it = key_index_[entity].find(key);
  if (it == key_index_[entity].end()) {
    return Status::NotFound("no row with key " + std::to_string(key) + " in entity '" + e.name +
                            "'");
  }
  // Swap-pop: move the tail row into the vacated slot and repoint its index
  // entry, so deletion stays O(1) and other rows keep their positions.
  size_t pos = it->second;
  key_index_[entity].erase(it);
  std::vector<Row>& rows = rows_[entity];
  size_t last = rows.size() - 1;
  if (pos != last) {
    rows[pos] = std::move(rows[last]);
    size_t key_pos = 0;
    for (size_t i = 0; i < e.attributes.size(); ++i) {
      if (e.attributes[i] == e.key) key_pos = i;
    }
    key_index_[entity][rows[pos][key_pos].AsInt()] = pos;
  }
  rows.pop_back();
  return Status::OK();
}

const Row* LogicalDatabase::FindByKey(EntityId entity, int64_t key) const {
  auto it = key_index_[entity].find(key);
  if (it == key_index_[entity].end()) return nullptr;
  return &rows_[entity][it->second];
}

Result<Value> LogicalDatabase::AttrOfRow(EntityId entity, const Row& row, AttrId attr) const {
  const LogicalEntity& e = logical_->entity(entity);
  for (size_t i = 0; i < e.attributes.size(); ++i) {
    if (e.attributes[i] == attr) return row[i];
  }
  return Status::InvalidArgument("attr '" + logical_->attr(attr).name +
                                 "' does not belong to entity '" + e.name + "'");
}

Result<Value> LogicalDatabase::ResolveAttr(EntityId anchor, const Row& anchor_row,
                                           AttrId attr) const {
  EntityId target = logical_->attr(attr).entity;
  if (target == anchor) return AttrOfRow(anchor, anchor_row, attr);
  PSE_ASSIGN_OR_RETURN(std::vector<AttrId> path, logical_->FkPath(anchor, target));
  EntityId cur_entity = anchor;
  const Row* cur_row = &anchor_row;
  for (AttrId fk : path) {
    PSE_ASSIGN_OR_RETURN(Value fk_value, AttrOfRow(cur_entity, *cur_row, fk));
    if (fk_value.is_null()) return Value::Null(logical_->attr(attr).type);
    EntityId next = *logical_->attr(fk).references;
    const Row* next_row = FindByKey(next, fk_value.AsInt());
    if (next_row == nullptr) return Value::Null(logical_->attr(attr).type);
    cur_entity = next;
    cur_row = next_row;
  }
  return AttrOfRow(cur_entity, *cur_row, attr);
}

LogicalStats LogicalDatabase::ComputeStats() const {
  std::vector<size_t> all(logical_->num_entities());
  for (EntityId e = 0; e < logical_->num_entities(); ++e) all[e] = rows_[e].size();
  return ComputeStatsPrefix(all);
}

LogicalStats LogicalDatabase::ComputeStatsPrefix(const std::vector<size_t>& visible) const {
  LogicalStats stats;
  stats.Resize(*logical_);
  for (EntityId e = 0; e < logical_->num_entities(); ++e) {
    size_t limit = e < visible.size() ? std::min(visible[e], rows_[e].size())
                                      : rows_[e].size();
    stats.entity_rows[e] = limit;
    const LogicalEntity& entity = logical_->entity(e);
    for (size_t i = 0; i < entity.attributes.size(); ++i) {
      AttrId a = entity.attributes[i];
      LogicalAttrStats& as = stats.attrs[a];
      std::unordered_set<size_t> distinct;
      uint64_t nulls = 0;
      for (size_t r = 0; r < limit; ++r) {
        const Row& row = rows_[e][r];
        const Value& v = row[i];
        if (v.is_null()) {
          ++nulls;
          continue;
        }
        distinct.insert(v.Hash());
        if (v.type() == TypeId::kInt64) {
          int64_t x = v.AsInt();
          if (!as.min.has_value() || x < *as.min) as.min = x;
          if (!as.max.has_value() || x > *as.max) as.max = x;
        }
      }
      as.num_distinct = distinct.size();
      as.null_fraction =
          limit == 0 ? 0.0 : static_cast<double>(nulls) / static_cast<double>(limit);
    }
  }
  return stats;
}

Result<Row> LogicalDatabase::BuildTableRow(const PhysicalSchema& schema, size_t table_idx,
                                           const Row& anchor_row) const {
  const PhysicalTable& t = schema.tables()[table_idx];
  TableSchema ts = schema.ToTableSchema(table_idx);
  Row out;
  out.reserve(ts.num_columns());
  for (const Column& col : ts.columns()) {
    PSE_ASSIGN_OR_RETURN(AttrId a, logical_->AttrByName(col.name));
    PSE_ASSIGN_OR_RETURN(Value v, ResolveAttr(t.anchor, anchor_row, a));
    out.push_back(std::move(v));
  }
  return out;
}

Status LogicalDatabase::Materialize(Database* db, const PhysicalSchema& schema) const {
  return MaterializePrefix(db, schema, {});
}

Status LogicalDatabase::MaterializePrefix(Database* db, const PhysicalSchema& schema,
                                          const std::vector<size_t>& visible) const {
  for (size_t i = 0; i < schema.tables().size(); ++i) {
    TableSchema ts = schema.ToTableSchema(i);
    PSE_RETURN_NOT_OK(db->CreateTable(ts));
    PSE_RETURN_NOT_OK(EnsureSecondaryIndexes(db, schema, i));
    const PhysicalTable& t = schema.tables()[i];
    size_t limit = t.anchor < visible.size() ? std::min(visible[t.anchor], rows_[t.anchor].size())
                                             : rows_[t.anchor].size();
    for (size_t r = 0; r < limit; ++r) {
      PSE_ASSIGN_OR_RETURN(Row row, BuildTableRow(schema, i, rows_[t.anchor][r]));
      PSE_RETURN_NOT_OK(db->Insert(ts.name(), row).status());
    }
    PSE_RETURN_NOT_OK(db->Analyze(ts.name()));
  }
  return Status::OK();
}

Status LogicalDatabase::MaterializeRange(Database* db, const PhysicalSchema& schema,
                                         const std::vector<size_t>& from,
                                         const std::vector<size_t>& to) const {
  for (size_t i = 0; i < schema.tables().size(); ++i) {
    const PhysicalTable& t = schema.tables()[i];
    const std::string& name = schema.tables()[i].name;
    size_t start = t.anchor < from.size() ? from[t.anchor] : 0;
    size_t end = t.anchor < to.size() ? std::min(to[t.anchor], rows_[t.anchor].size())
                                      : rows_[t.anchor].size();
    if (start >= end) continue;
    for (size_t r = start; r < end; ++r) {
      PSE_ASSIGN_OR_RETURN(Row row, BuildTableRow(schema, i, rows_[t.anchor][r]));
      PSE_RETURN_NOT_OK(db->Insert(name, row).status());
    }
    PSE_RETURN_NOT_OK(db->Analyze(name));
  }
  return Status::OK();
}

Status LogicalDatabase::MaterializeDelta(Database* db, const PhysicalSchema& schema,
                                         const std::vector<size_t>& first_row) const {
  std::vector<size_t> to(logical_->num_entities());
  for (EntityId e = 0; e < logical_->num_entities(); ++e) to[e] = rows_[e].size();
  return MaterializeRange(db, schema, first_row, to);
}

}  // namespace pse
