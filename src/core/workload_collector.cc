#include "core/workload_collector.h"

#include <algorithm>
#include <cmath>

namespace pse {

Status WorkloadCollector::Record(size_t query_idx, double count) {
  if (query_idx >= num_queries_) {
    return Status::InvalidArgument("query index " + std::to_string(query_idx) +
                                   " out of range");
  }
  if (count < 0) return Status::InvalidArgument("negative count");
  current_[query_idx] += count;
  return Status::OK();
}

void WorkloadCollector::CloseWindow() {
  windows_.push_back(current_);
  std::fill(current_.begin(), current_.end(), 0.0);
}

Result<std::vector<double>> WorkloadCollector::LastWindow() const {
  if (windows_.empty()) return Status::InvalidArgument("no closed windows yet");
  return windows_.back();
}

Result<std::vector<std::vector<double>>> WorkloadCollector::Forecast(size_t horizon) const {
  if (windows_.empty()) return Status::InvalidArgument("no closed windows yet");
  const size_t n = windows_.size();
  std::vector<std::vector<double>> out(horizon, std::vector<double>(num_queries_, 0.0));
  for (size_t q = 0; q < num_queries_; ++q) {
    double slope = 0.0, intercept = windows_.back()[q];
    if (n >= 2) {
      // Least squares over (x = window index, y = count).
      double sx = 0, sy = 0, sxx = 0, sxy = 0;
      for (size_t w = 0; w < n; ++w) {
        double x = static_cast<double>(w);
        double y = windows_[w][q];
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
      }
      double denom = static_cast<double>(n) * sxx - sx * sx;
      if (std::abs(denom) > 1e-12) {
        slope = (static_cast<double>(n) * sxy - sx * sy) / denom;
        intercept = (sy - slope * sx) / static_cast<double>(n);
      }
    }
    for (size_t h = 0; h < horizon; ++h) {
      double x = static_cast<double>(n + h);
      out[h][q] = std::max(0.0, intercept + slope * x);
    }
  }
  return out;
}

double WorkloadCollector::ForecastError(const std::vector<std::vector<double>>& forecast,
                                        const std::vector<std::vector<double>>& actual) {
  double err = 0;
  size_t count = 0;
  for (size_t p = 0; p < std::min(forecast.size(), actual.size()); ++p) {
    for (size_t q = 0; q < std::min(forecast[p].size(), actual[p].size()); ++q) {
      err += std::abs(forecast[p][q] - actual[p][q]);
      ++count;
    }
  }
  return count > 0 ? err / static_cast<double>(count) : 0.0;
}

}  // namespace pse
