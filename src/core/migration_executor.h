// MigrationExecutor: performs the physical side of a migration operator —
// the data movement the paper keeps "at the same level of data movement
// required by the migration". Structural application (operators.h) decides
// what the schema looks like; this class creates/loads/drops the actual
// tables on a Database and reports the I/O consumed.
//
// Execution is *online*: data moves in bounded batches, each batch is made
// durable (for persistent databases) together with a MigrationJournal record
// of the copy cursor, and an optional per-batch hook lets callers interleave
// foreground queries or inject faults between batches. A process that dies
// mid-operator can reopen the database and either Resume() the operator from
// its last committed batch or Rollback() the half-built tables. See
// DESIGN.md §14 for the full protocol.
//
// Concurrency: execution is also safe against foreground reader threads.
// Catalog-mutating phases (create-targets, drop-sources/finalize, recovery,
// rollback) run under the database's exclusive catalog latch — a brief
// quiesce that drains in-flight queries; the long copy phase holds no
// catalog latch at all (targets are invisible to readers) and takes only a
// per-batch shared content latch on the table it scans. Readers therefore
// always see either the pre-op or the post-op layout, never a torn one.
// See DESIGN.md §15.
#pragma once

#include <functional>
#include <vector>

#include "core/logical_database.h"
#include "core/operators.h"
#include "core/physical_schema.h"
#include "storage/database.h"

namespace pse {

class DmlRouter;  // core/rewriter_dml.h

/// Snapshot handed to MigrationOptions::on_batch after every committed batch.
struct MigrationBatchEvent {
  int op_id = 0;                ///< id of the in-flight operator
  uint64_t batch_index = 0;     ///< batches committed so far for this operator
  uint64_t rows_copied = 0;     ///< rows moved by this operator so far
  uint64_t io_so_far = 0;       ///< migration I/O so far (hook I/O excluded)
};

/// Tuning and instrumentation knobs for online execution.
struct MigrationOptions {
  /// When the per-batch journal commit runs. kAuto checkpoints every batch
  /// on persistent databases and only flushes once per operator on
  /// in-memory ones (whose journal could never survive a crash anyway,
  /// and whose I/O numbers feed the cost-model validation tests).
  enum class Durability { kAuto, kEveryBatch, kFinalOnly };

  /// Rows moved per batch before committing and yielding to the hook.
  uint64_t batch_rows = 1024;
  /// Physical I/O budget per batch; a batch closes early once its own reads
  /// and writes exceed this. 0 = unlimited (row count alone bounds batches).
  uint64_t batch_io_budget = 0;
  Durability durability = Durability::kAuto;
  /// Called after every committed batch. I/O performed inside the hook
  /// (foreground queries, probes) is excluded from the migration's reported
  /// I/O. A non-OK return aborts the operator — the fault-injection tests
  /// use this to simulate crashes between batches. Runs with no latches
  /// held, so the hook may execute queries freely.
  std::function<Status(const MigrationBatchEvent&)> on_batch;
  /// Called once per operator, inside the exclusive-catalog quiesce window,
  /// right after the sources are dropped and the targets analyzed — i.e. at
  /// the instant the post-op schema becomes the serving truth. Concurrent
  /// load generators use it to swap their schema snapshot atomically with
  /// the catalog: a query planned before the window sees the pre-op layout,
  /// one planned after sees the post-op layout, and nothing in between.
  /// Must not execute queries (the catalog latch is held exclusively).
  std::function<void(const PhysicalSchema&)> on_publish;
  /// On any error, drop the operator's half-built target tables and clear
  /// the journal before returning (the atomicity guarantee). Crash tests
  /// set this to false so the torn state survives for Resume().
  bool rollback_on_error = true;
  /// Foreground write router to co-operate with (DESIGN.md §19). When set,
  /// the executor attaches the in-flight operator to it so concurrent DML
  /// dual-applies onto the copy targets: each copy batch runs under the
  /// router's write mutex, consults the shared per-target key sets instead
  /// of private dedup state, and the pre-publish quiesce backfills
  /// provenance-only rows before detaching. The router must outlive the
  /// Apply/Resume call; the same router must serve every foreground writer.
  DmlRouter* dml_router = nullptr;
};

/// Progress accumulated by ApplyAll, reported even when a mid-sequence
/// operator fails (the I/O already spent is real and must not be lost).
struct MigrationProgress {
  size_t ops_applied = 0;  ///< operators fully applied
  uint64_t io = 0;         ///< migration I/O consumed by those operators
  uint64_t batches = 0;    ///< batches committed across all operators
};

/// \brief Applies migration operators to a materialized database.
class MigrationExecutor {
 public:
  /// `data` is the entity-level source of truth, used to materialize
  /// CreateTable fragments (values of new attributes).
  MigrationExecutor(Database* db, const LogicalDatabase* data) : db_(db), data_(data) {}

  /// Limits CreateTable loads to the first visible[e] rows of each entity
  /// (data-growth support); empty = everything.
  void set_visible_rows(std::vector<size_t> visible) { visible_ = std::move(visible); }

  void set_options(MigrationOptions options) { options_ = std::move(options); }
  const MigrationOptions& options() const { return options_; }

  /// Applies `op` physically and updates `schema` to the post-op schema.
  /// Returns the physical page I/O consumed by the data movement (I/O spent
  /// inside the on_batch hook excluded). On error the operator's partial
  /// work is rolled back (unless rollback_on_error is off) and `schema` is
  /// left untouched.
  Result<uint64_t> Apply(const MigrationOperator& op, PhysicalSchema* schema);

  /// Applies several operators (must already be dependency-ordered).
  /// `progress` (optional) receives the per-sequence totals even when a
  /// mid-sequence operator fails — the failure status is annotated with the
  /// operators applied and I/O spent before it.
  Result<uint64_t> ApplyAll(const std::vector<MigrationOperator>& ops, PhysicalSchema* schema,
                            MigrationProgress* progress = nullptr);

  /// \brief Continues a journaled operator after a crash + Database::Open.
  ///
  /// `op` must be the journaled operator (matched by id and kind) and
  /// `*schema` the physical schema as of *before* that operator. Validates
  /// the journal against the replanned operator, repairs any torn target
  /// heap (rebuilding it from its source when the row count disagrees with
  /// the journal), and finishes the remaining phases. Returns the additional
  /// I/O spent by the resumed portion.
  Result<uint64_t> Resume(const MigrationOperator& op, PhysicalSchema* schema);

  /// \brief Aborts the journaled operator, dropping its half-built targets.
  ///
  /// Only legal before the journal reaches the drop-sources phase (after
  /// that the sources are partially gone and the operator can only roll
  /// forward via Resume). Clears the journal and checkpoints.
  Status Rollback();

 private:
  struct OpPlan;

  Result<uint64_t> Run(const MigrationOperator& op, PhysicalSchema* schema, bool resume);
  Status RunPhases(const OpPlan& plan, bool resume);
  Status RecoverTargets(const OpPlan& plan);
  Status CopyTarget(const OpPlan& plan, size_t target_idx);
  Status CommitBatch();
  Status FireHook(uint64_t rows_copied);
  Status RollbackInternal();
  bool Durable() const;

  Result<OpPlan> BuildPlan(const MigrationOperator& op, const PhysicalSchema& before,
                           const PhysicalSchema& after) const;

  Database* db_;
  const LogicalDatabase* data_;
  std::vector<size_t> visible_;
  MigrationOptions options_;
  /// I/O consumed inside on_batch hooks during the current Apply/Resume
  /// (excluded from the reported migration I/O).
  uint64_t hook_io_ = 0;
  uint64_t io_start_ = 0;
  /// Batches committed by the most recent successful operator (the journal
  /// itself clears when an operator finishes).
  uint64_t last_op_batches_ = 0;
};

}  // namespace pse
