// MigrationExecutor: performs the physical side of a migration operator —
// the data movement the paper keeps "at the same level of data movement
// required by the migration". Structural application (operators.h) decides
// what the schema looks like; this class creates/loads/drops the actual
// tables on a Database and reports the I/O consumed.
#pragma once

#include "core/logical_database.h"
#include "core/operators.h"
#include "core/physical_schema.h"
#include "storage/database.h"

namespace pse {

/// \brief Applies migration operators to a materialized database.
class MigrationExecutor {
 public:
  /// `data` is the entity-level source of truth, used to materialize
  /// CreateTable fragments (values of new attributes).
  MigrationExecutor(Database* db, const LogicalDatabase* data) : db_(db), data_(data) {}

  /// Limits CreateTable loads to the first visible[e] rows of each entity
  /// (data-growth support); empty = everything.
  void set_visible_rows(std::vector<size_t> visible) { visible_ = std::move(visible); }

  /// Applies `op` physically and updates `schema` to the post-op schema.
  /// Returns the physical page I/O consumed by the data movement.
  Result<uint64_t> Apply(const MigrationOperator& op, PhysicalSchema* schema);

  /// Applies several operators (must already be dependency-ordered).
  Result<uint64_t> ApplyAll(const std::vector<MigrationOperator>& ops, PhysicalSchema* schema);

 private:
  Status ApplyCreate(const MigrationOperator& op, const PhysicalSchema& before,
                     const PhysicalSchema& after);
  Status ApplySplit(const PhysicalSchema& before, const PhysicalSchema& after);
  Status ApplyCombine(const PhysicalSchema& before, const PhysicalSchema& after);

  Database* db_;
  const LogicalDatabase* data_;
  std::vector<size_t> visible_;
};

}  // namespace pse
