// WorkloadCollector — the framework's component (3) in the paper's Fig 2:
// "Workload distribution is counted by a collector or predefined by
// customers."
//
// The collector tallies query executions during a phase; at each migration
// point the window is closed and becomes one observation. GAA's forward
// scan needs *predicted* future distributions — Forecast() extrapolates
// each query's per-window counts with a least-squares linear trend (clamped
// at zero), which is exact for the paper's "regular" (determinate-rate)
// schedules and a reasonable first-order guess for irregular ones. The
// paper's own caveat — "the predictive workload trend may not be very
// precise", hence re-planning at every point — is exactly how the
// simulation uses this class.
#pragma once

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace pse {

/// \brief Per-window query-frequency accounting with trend extrapolation.
class WorkloadCollector {
 public:
  explicit WorkloadCollector(size_t num_queries)
      : num_queries_(num_queries), current_(num_queries, 0.0) {}

  size_t num_queries() const { return num_queries_; }

  /// Tallies `count` executions of query `query_idx` in the open window.
  Status Record(size_t query_idx, double count = 1.0);

  /// Closes the open window (a migration point passed): its counts become
  /// one observation and the tally restarts.
  void CloseWindow();

  /// Closed windows, oldest first.
  const std::vector<std::vector<double>>& windows() const { return windows_; }

  /// The most recently closed window (the paper's "current status" W for
  /// LAA). InvalidArgument when no window has closed yet.
  Result<std::vector<double>> LastWindow() const;

  /// Least-squares linear extrapolation of each query's series over the
  /// next `horizon` windows; negative projections clamp to 0. With a single
  /// observation the forecast is flat. InvalidArgument with no windows.
  Result<std::vector<std::vector<double>>> Forecast(size_t horizon) const;

  /// Mean absolute error of `forecast` against `actual` (both [phase][q]),
  /// for evaluating forecast quality in tests/benches.
  static double ForecastError(const std::vector<std::vector<double>>& forecast,
                              const std::vector<std::vector<double>>& actual);

 private:
  size_t num_queries_;
  std::vector<double> current_;
  std::vector<std::vector<double>> windows_;
};

}  // namespace pse
