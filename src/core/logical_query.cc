#include "core/logical_query.h"

#include <set>

#include "core/virtual_catalog.h"
#include "sql/ast.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace pse {

LogicalQuery LogicalQuery::Clone() const {
  LogicalQuery out;
  out.name = name;
  out.anchor = anchor;
  for (const auto& s : select) out.select.push_back(s.Clone());
  for (const auto& f : filters) out.filters.push_back(f->Clone());
  for (const auto& g : group_by) out.group_by.push_back(g->Clone());
  out.order_by = order_by;
  out.limit = limit;
  out.distinct = distinct;
  return out;
}

std::string LogicalQuery::ToString(const LogicalSchema& logical) const {
  std::string out = name.empty() ? "query" : name;
  out += " [anchor=" + logical.entity(anchor).name + "] SELECT ";
  for (size_t i = 0; i < select.size(); ++i) {
    if (i > 0) out += ", ";
    if (select[i].agg == AggFunc::kCountStar) {
      out += "COUNT(*)";
    } else if (select[i].agg != AggFunc::kNone) {
      out += std::string(AggFuncToString(select[i].agg)) + "(" + select[i].expr->ToString() + ")";
    } else {
      out += select[i].expr->ToString();
    }
  }
  for (size_t i = 0; i < filters.size(); ++i) {
    out += i == 0 ? " WHERE " : " AND ";
    out += filters[i]->ToString();
  }
  return out;
}

namespace {
/// Strips "alias." qualifiers, leaving bare (globally unique) attr names.
void StripQualifiers(Expr* e) {
  e->VisitColumnRefs([](ColumnRefExpr* c) {
    size_t dot = c->name().find('.');
    if (dot != std::string::npos) c->set_name(c->name().substr(dot + 1));
  });
}
}  // namespace

Result<LogicalQuery> LiftSqlToLogical(const std::string& sql, const PhysicalSchema& reference,
                                      const std::string& query_name) {
  const LogicalSchema& L = *reference.logical();
  // Bind against the reference schema (stats irrelevant for binding).
  LogicalStats dummy_stats;
  dummy_stats.Resize(L);
  VirtualSchemaCatalog catalog(&reference, &dummy_stats);

  PSE_ASSIGN_OR_RETURN(Statement stmt, ParseSql(sql));
  if (stmt.kind != Statement::Kind::kSelect) {
    return Status::InvalidArgument("only SELECT statements lift to logical queries");
  }
  PSE_ASSIGN_OR_RETURN(BoundQuery bound, BindSelect(*stmt.select, catalog));

  LogicalQuery out;
  out.name = query_name;

  // Verify join structure and collect referenced entities.
  std::set<EntityId> entities;
  auto note_attr = [&](const std::string& name) -> Status {
    size_t dot = name.find('.');
    std::string bare = dot == std::string::npos ? name : name.substr(dot + 1);
    PSE_ASSIGN_OR_RETURN(AttrId a, L.AttrByName(bare));
    entities.insert(L.attr(a).entity);
    return Status::OK();
  };

  for (const auto& j : bound.joins) {
    PSE_ASSIGN_OR_RETURN(AttrId la, L.AttrByName(j.left_column));
    PSE_ASSIGN_OR_RETURN(AttrId ra, L.AttrByName(j.right_column));
    const LogicalAttribute& lattr = L.attr(la);
    const LogicalAttribute& rattr = L.attr(ra);
    bool ok = false;
    // fk = key(target)
    if (lattr.references.has_value() && rattr.is_key && rattr.entity == *lattr.references) {
      ok = true;
    }
    if (rattr.references.has_value() && lattr.is_key && lattr.entity == *rattr.references) {
      ok = true;
    }
    // key = key of the same entity (two fragments).
    if (lattr.is_key && rattr.is_key && lattr.entity == rattr.entity) ok = true;
    if (!ok) {
      return Status::InvalidArgument("join '" + j.left_column + " = " + j.right_column +
                                     "' does not follow a relationship; cannot lift");
    }
    entities.insert(lattr.entity);
    entities.insert(rattr.entity);
  }

  // Collect every referenced column (select, filters, group by) and convert.
  auto convert_expr = [&](const ExprPtr& src) -> Result<ExprPtr> {
    ExprPtr e = src->Clone();
    StripQualifiers(e.get());
    std::vector<std::string> cols;
    e->CollectColumns(&cols);
    for (const auto& c : cols) {
      PSE_RETURN_NOT_OK(note_attr(c));
    }
    return e;
  };

  for (const auto& s : bound.select_items) {
    LogicalSelectItem item;
    item.agg = s.agg;
    item.name = s.name;
    if (s.expr) {
      PSE_ASSIGN_OR_RETURN(item.expr, convert_expr(s.expr));
    }
    out.select.push_back(std::move(item));
  }
  for (const auto& t : bound.tables) {
    for (const auto& f : t.filters) {
      PSE_ASSIGN_OR_RETURN(ExprPtr e, convert_expr(f));
      out.filters.push_back(std::move(e));
    }
    // FROM-ed tables pull their anchor entity in even when no column of
    // theirs survives binding (e.g. bare joins for cardinality).
    auto ti = reference.TableByName(t.table);
    if (ti.ok()) entities.insert(reference.tables()[*ti].anchor);
  }
  for (const auto& f : bound.global_filters) {
    PSE_ASSIGN_OR_RETURN(ExprPtr e, convert_expr(f));
    out.filters.push_back(std::move(e));
  }
  for (const auto& g : bound.group_by) {
    PSE_ASSIGN_OR_RETURN(ExprPtr e, convert_expr(g));
    out.group_by.push_back(std::move(e));
  }
  out.order_by = bound.order_by;
  out.limit = bound.limit;
  out.distinct = bound.select_distinct;

  // Infer the anchor: the unique entity reaching all referenced entities.
  std::vector<EntityId> ents(entities.begin(), entities.end());
  auto anchor = L.CommonAnchor(ents);
  if (!anchor.ok()) {
    return Status::InvalidArgument("query references entities with no common anchor; not a "
                                   "many-to-one join tree");
  }
  out.anchor = *anchor;
  return out;
}

}  // namespace pse
