#include "core/migration_executor.h"

#include <unordered_set>

#include "common/string_util.h"

namespace pse {

namespace {

/// Names in `a` that are not in `b`.
std::vector<size_t> TablesOnlyIn(const PhysicalSchema& a, const PhysicalSchema& b) {
  std::vector<size_t> out;
  for (size_t i = 0; i < a.tables().size(); ++i) {
    if (!b.TableByName(a.tables()[i].name).ok()) out.push_back(i);
  }
  return out;
}

}  // namespace

Result<uint64_t> MigrationExecutor::Apply(const MigrationOperator& op, PhysicalSchema* schema) {
  PhysicalSchema after = *schema;
  PSE_RETURN_NOT_OK(ApplyOperator(op, &after));
  uint64_t io_before = db_->TotalIo();
  switch (op.kind) {
    case OperatorKind::kCreateTable:
      PSE_RETURN_NOT_OK(ApplyCreate(op, *schema, after));
      break;
    case OperatorKind::kSplitTable:
      PSE_RETURN_NOT_OK(ApplySplit(*schema, after));
      break;
    case OperatorKind::kCombineTable:
      PSE_RETURN_NOT_OK(ApplyCombine(*schema, after));
      break;
  }
  // Data movement must be durable before the migration point completes, so
  // the written pages count as physical I/O even when they fit in cache.
  PSE_RETURN_NOT_OK(db_->pool()->FlushAll());
  *schema = std::move(after);
  return db_->TotalIo() - io_before;
}

Result<uint64_t> MigrationExecutor::ApplyAll(const std::vector<MigrationOperator>& ops,
                                             PhysicalSchema* schema) {
  uint64_t total = 0;
  for (const auto& op : ops) {
    PSE_ASSIGN_OR_RETURN(uint64_t io, Apply(op, schema));
    total += io;
  }
  return total;
}

Status MigrationExecutor::ApplyCreate(const MigrationOperator& op, const PhysicalSchema& before,
                                      const PhysicalSchema& after) {
  (void)before;
  std::vector<size_t> added = TablesOnlyIn(after, before);
  if (added.size() != 1) return Status::Internal("create must add exactly one table");
  size_t idx = added[0];
  TableSchema ts = after.ToTableSchema(idx);
  PSE_RETURN_NOT_OK(db_->CreateTable(ts));
  PSE_RETURN_NOT_OK(EnsureSecondaryIndexes(db_, after, idx));
  // Load from the entity-level source of truth (new attribute values are
  // defined by the predeclared functional dependency key -> attrs, which the
  // LogicalDatabase realizes).
  const auto& entity_rows = data_->Rows(op.create_entity);
  size_t limit = op.create_entity < visible_.size()
                     ? std::min(visible_[op.create_entity], entity_rows.size())
                     : entity_rows.size();
  for (size_t r = 0; r < limit; ++r) {
    PSE_ASSIGN_OR_RETURN(Row row, data_->BuildTableRow(after, idx, entity_rows[r]));
    PSE_RETURN_NOT_OK(db_->Insert(ts.name(), row).status());
  }
  return db_->Analyze(ts.name());
}

Status MigrationExecutor::ApplySplit(const PhysicalSchema& before, const PhysicalSchema& after) {
  std::vector<size_t> removed = TablesOnlyIn(before, after);
  std::vector<size_t> added = TablesOnlyIn(after, before);
  if (removed.size() != 1 || added.size() != 2) {
    return Status::Internal("split must replace one table with two");
  }
  const PhysicalTable& old_table = before.tables()[removed[0]];
  TableSchema old_ts = before.ToTableSchema(removed[0]);
  PSE_ASSIGN_OR_RETURN(TableInfo * old_info, db_->GetTable(old_table.name));

  for (size_t target : added) {
    const PhysicalTable& t = after.tables()[target];
    TableSchema ts = after.ToTableSchema(target);
    PSE_RETURN_NOT_OK(db_->CreateTable(ts));
    PSE_RETURN_NOT_OK(EnsureSecondaryIndexes(db_, after, target));
    // Column mapping: target column -> position in the old table.
    std::vector<size_t> mapping;
    for (const Column& c : ts.columns()) {
      PSE_ASSIGN_OR_RETURN(size_t pos, old_ts.ColumnIndex(c.name));
      mapping.push_back(pos);
    }
    bool dedup = t.anchor != old_table.anchor;
    // Key column of the target is its first column (anchor key).
    std::unordered_set<int64_t> seen_keys;
    for (auto it = old_info->heap->Begin(); !it.AtEnd();) {
      const Row& src = it.row();
      Row dst;
      dst.reserve(mapping.size());
      for (size_t pos : mapping) dst.push_back(src[pos]);
      bool insert = true;
      if (dedup) {
        if (dst[0].is_null()) {
          insert = false;  // dangling/unknown parent
        } else {
          insert = seen_keys.insert(dst[0].AsInt()).second;
        }
      }
      if (insert) {
        PSE_RETURN_NOT_OK(db_->Insert(ts.name(), dst).status());
      }
      PSE_RETURN_NOT_OK(it.Next());
    }
    PSE_RETURN_NOT_OK(db_->Analyze(ts.name()));
  }
  return db_->DropTable(old_table.name);
}

Status MigrationExecutor::ApplyCombine(const PhysicalSchema& before,
                                       const PhysicalSchema& after) {
  std::vector<size_t> removed = TablesOnlyIn(before, after);
  std::vector<size_t> added = TablesOnlyIn(after, before);
  if (removed.size() != 2 || added.size() != 1) {
    return Status::Internal("combine must replace two tables with one");
  }
  const LogicalSchema& L = *before.logical();
  const PhysicalTable& result = after.tables()[added[0]];
  // Left = the side sharing the result anchor (drives the row set).
  size_t left_i = removed[0], right_i = removed[1];
  if (before.tables()[right_i].anchor == result.anchor &&
      before.tables()[left_i].anchor != result.anchor) {
    std::swap(left_i, right_i);
  }
  const PhysicalTable& left = before.tables()[left_i];
  const PhysicalTable& right = before.tables()[right_i];
  TableSchema left_ts = before.ToTableSchema(left_i);
  TableSchema right_ts = before.ToTableSchema(right_i);

  // Join columns.
  std::string left_join_col, right_join_col;
  if (left.anchor == right.anchor) {
    left_join_col = left_ts.key_columns()[0];
    right_join_col = right_ts.key_columns()[0];
  } else {
    PSE_ASSIGN_OR_RETURN(std::vector<AttrId> path, L.FkPath(left.anchor, right.anchor));
    left_join_col = L.attr(path.back()).name;
    right_join_col = right_ts.key_columns()[0];
  }
  PSE_ASSIGN_OR_RETURN(size_t left_join_pos, left_ts.ColumnIndex(left_join_col));
  PSE_ASSIGN_OR_RETURN(size_t right_join_pos, right_ts.ColumnIndex(right_join_col));

  TableSchema result_ts = after.ToTableSchema(added[0]);
  PSE_RETURN_NOT_OK(db_->CreateTable(result_ts));
  PSE_RETURN_NOT_OK(EnsureSecondaryIndexes(db_, after, added[0]));

  // Column mapping: result column -> (from_left?, position).
  struct ColSource {
    bool from_left;
    size_t pos;
  };
  std::vector<ColSource> mapping;
  for (const Column& c : result_ts.columns()) {
    auto lp = left_ts.ColumnIndex(c.name);
    if (lp.ok()) {
      mapping.push_back({true, *lp});
      continue;
    }
    PSE_ASSIGN_OR_RETURN(size_t rp, right_ts.ColumnIndex(c.name));
    mapping.push_back({false, rp});
  }

  // Build hash of the right side by its join key (unique: it is the key).
  PSE_ASSIGN_OR_RETURN(TableInfo * right_info, db_->GetTable(right.name));
  std::unordered_map<int64_t, Row> right_rows;
  for (auto it = right_info->heap->Begin(); !it.AtEnd();) {
    const Value& k = it.row()[right_join_pos];
    if (!k.is_null()) right_rows.emplace(k.AsInt(), it.row());
    PSE_RETURN_NOT_OK(it.Next());
  }

  // Scan left, emit left-outer-joined rows (anchor rows are preserved even
  // when the parent is missing — its attributes become NULL).
  PSE_ASSIGN_OR_RETURN(TableInfo * left_info, db_->GetTable(left.name));
  for (auto it = left_info->heap->Begin(); !it.AtEnd();) {
    const Row& lrow = it.row();
    const Row* rrow = nullptr;
    const Value& jk = lrow[left_join_pos];
    if (!jk.is_null()) {
      auto found = right_rows.find(jk.AsInt());
      if (found != right_rows.end()) rrow = &found->second;
    }
    Row dst;
    dst.reserve(mapping.size());
    for (size_t c = 0; c < mapping.size(); ++c) {
      if (mapping[c].from_left) {
        dst.push_back(lrow[mapping[c].pos]);
      } else if (rrow != nullptr) {
        dst.push_back((*rrow)[mapping[c].pos]);
      } else {
        dst.push_back(Value::Null(result_ts.column(c).type));
      }
    }
    PSE_RETURN_NOT_OK(db_->Insert(result_ts.name(), dst).status());
    PSE_RETURN_NOT_OK(it.Next());
  }
  PSE_RETURN_NOT_OK(db_->Analyze(result_ts.name()));
  PSE_RETURN_NOT_OK(db_->DropTable(left.name));
  return db_->DropTable(right.name);
}

}  // namespace pse
