#include "core/migration_executor.h"

#include <algorithm>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>

#include "common/lock_registry.h"
#include "common/string_util.h"
#include "core/rewriter_dml.h"
#include "engine/tuple_batch.h"

namespace pse {

namespace {

/// Indexes of tables present in `a` but not in `b`.
std::vector<size_t> TablesOnlyIn(const PhysicalSchema& a, const PhysicalSchema& b) {
  std::vector<size_t> out;
  for (size_t i = 0; i < a.tables().size(); ++i) {
    if (!b.TableByName(a.tables()[i].name).ok()) out.push_back(i);
  }
  return out;
}

}  // namespace

/// One destination table of an operator plus how to produce its rows. The
/// plan is fully deterministic given (op, before-schema), so a resumed
/// process replans and lands on the same targets the journal recorded.
struct MigrationExecutor::OpPlan {
  enum class Source { kEntity, kScan, kJoin };

  struct Target {
    TableSchema schema;
    size_t after_idx = 0;  ///< index in `after` (for EnsureSecondaryIndexes)
    Source source = Source::kScan;

    // kEntity (create): rows come from the LogicalDatabase.
    EntityId entity = kInvalidId;
    size_t entity_limit = 0;

    // kScan (split): project columns of one source table.
    std::string scan_table;
    std::vector<size_t> mapping;  ///< dest column -> source column
    bool dedup = false;           ///< keep first row per key (column 0)

    // kJoin (combine): left outer join of two source tables.
    std::string left_table, right_table;
    size_t left_join_pos = 0, right_join_pos = 0;
    /// dest column -> (from left side?, source column position)
    std::vector<std::pair<bool, size_t>> join_mapping;
  };

  std::vector<Target> targets;
  std::vector<std::string> drop_tables;  ///< sources dropped once copied
  const PhysicalSchema* after = nullptr;
};

bool MigrationExecutor::Durable() const {
  switch (options_.durability) {
    case MigrationOptions::Durability::kEveryBatch:
      return true;
    case MigrationOptions::Durability::kFinalOnly:
      return false;
    case MigrationOptions::Durability::kAuto:
      return db_->persistent();
  }
  return false;
}

Status MigrationExecutor::CommitBatch() {
  if (Durable()) return db_->Checkpoint();
  return Status::OK();
}

Status MigrationExecutor::FireHook(uint64_t rows_copied) {
  if (!options_.on_batch) return Status::OK();
  MigrationBatchEvent ev;
  const MigrationJournal& j = db_->migration_journal();
  ev.op_id = j.op_id;
  ev.batch_index = j.batches_committed;
  ev.rows_copied = rows_copied;
  ev.io_so_far = db_->TotalIo() - io_start_ - hook_io_;
  uint64_t before = db_->TotalIo();
  Status s = options_.on_batch(ev);
  hook_io_ += db_->TotalIo() - before;
  return s;
}

Result<MigrationExecutor::OpPlan> MigrationExecutor::BuildPlan(const MigrationOperator& op,
                                                               const PhysicalSchema& before,
                                                               const PhysicalSchema& after) const {
  OpPlan plan;
  std::vector<size_t> removed = TablesOnlyIn(before, after);
  std::vector<size_t> added = TablesOnlyIn(after, before);

  switch (op.kind) {
    case OperatorKind::kCreateTable: {
      if (added.size() != 1) return Status::Internal("create must add exactly one table");
      OpPlan::Target t;
      t.schema = after.ToTableSchema(added[0]);
      t.after_idx = added[0];
      t.source = OpPlan::Source::kEntity;
      t.entity = op.create_entity;
      const auto& entity_rows = data_->Rows(op.create_entity);
      t.entity_limit = op.create_entity < visible_.size()
                           ? std::min(visible_[op.create_entity], entity_rows.size())
                           : entity_rows.size();
      plan.targets.push_back(std::move(t));
      break;
    }

    case OperatorKind::kSplitTable: {
      if (removed.size() != 1 || added.size() != 2) {
        return Status::Internal("split must replace one table with two");
      }
      const PhysicalTable& old_table = before.tables()[removed[0]];
      TableSchema old_ts = before.ToTableSchema(removed[0]);
      for (size_t target : added) {
        OpPlan::Target t;
        t.schema = after.ToTableSchema(target);
        t.after_idx = target;
        t.source = OpPlan::Source::kScan;
        t.scan_table = old_table.name;
        for (const Column& c : t.schema.columns()) {
          PSE_ASSIGN_OR_RETURN(size_t pos, old_ts.ColumnIndex(c.name));
          t.mapping.push_back(pos);
        }
        // A side anchored at a different entity stores one row per distinct
        // key (the denormalized source repeats them).
        t.dedup = after.tables()[target].anchor != old_table.anchor;
        plan.targets.push_back(std::move(t));
      }
      plan.drop_tables.push_back(old_table.name);
      break;
    }

    case OperatorKind::kCombineTable: {
      if (removed.size() != 2 || added.size() != 1) {
        return Status::Internal("combine must replace two tables with one");
      }
      const LogicalSchema& L = *before.logical();
      const PhysicalTable& result = after.tables()[added[0]];
      // Left = the side sharing the result anchor (drives the row set).
      size_t left_i = removed[0], right_i = removed[1];
      if (before.tables()[right_i].anchor == result.anchor &&
          before.tables()[left_i].anchor != result.anchor) {
        std::swap(left_i, right_i);
      }
      const PhysicalTable& left = before.tables()[left_i];
      const PhysicalTable& right = before.tables()[right_i];
      TableSchema left_ts = before.ToTableSchema(left_i);
      TableSchema right_ts = before.ToTableSchema(right_i);

      std::string left_join_col, right_join_col;
      if (left.anchor == right.anchor) {
        left_join_col = left_ts.key_columns()[0];
        right_join_col = right_ts.key_columns()[0];
      } else {
        PSE_ASSIGN_OR_RETURN(std::vector<AttrId> path, L.FkPath(left.anchor, right.anchor));
        left_join_col = L.attr(path.back()).name;
        right_join_col = right_ts.key_columns()[0];
      }

      OpPlan::Target t;
      t.schema = after.ToTableSchema(added[0]);
      t.after_idx = added[0];
      t.source = OpPlan::Source::kJoin;
      t.left_table = left.name;
      t.right_table = right.name;
      PSE_ASSIGN_OR_RETURN(t.left_join_pos, left_ts.ColumnIndex(left_join_col));
      PSE_ASSIGN_OR_RETURN(t.right_join_pos, right_ts.ColumnIndex(right_join_col));
      for (const Column& c : t.schema.columns()) {
        auto lp = left_ts.ColumnIndex(c.name);
        if (lp.ok()) {
          t.join_mapping.emplace_back(true, *lp);
          continue;
        }
        PSE_ASSIGN_OR_RETURN(size_t rp, right_ts.ColumnIndex(c.name));
        t.join_mapping.emplace_back(false, rp);
      }
      plan.targets.push_back(std::move(t));
      plan.drop_tables.push_back(left.name);
      plan.drop_tables.push_back(right.name);
      break;
    }
  }
  plan.after = &after;
  return plan;
}

Status MigrationExecutor::CopyTarget(const OpPlan& plan, size_t target_idx) {
  PSE_LOCKDEP_SCOPE("MigrationExecutor::CopyTarget");
  const OpPlan::Target& t = plan.targets[target_idx];
  MigrationJournal* j = db_->mutable_migration_journal();

  // A completed target was checkpointed after its last batch; nothing left
  // to copy. Resume can land here when the crash hit after that final
  // commit but before the one that advances target_pos — the frontier is
  // stale then (it marks the *last* batch's start, never end-of-source), so
  // re-entering the copy loop would re-copy the final batch.
  if (j->targets[target_idx].completed) return Status::OK();

  // Foreground write co-operation (DESIGN.md §19): with a router attached,
  // the per-target key set shared with its dual-apply replaces the private
  // dedup state, every batch runs under the router's write mutex, and the
  // scan re-seeks from the journal frontier instead of trusting a live
  // iterator across batches (the router may relocate or delete rows in the
  // windows between them).
  DmlRouter* router = options_.dml_router;
  DmlRouter::TargetState* ts =
      router != nullptr && router->attached() ? router->FindTarget(t.schema.name()) : nullptr;

  // Rebuild transient copy state from the durable cursor. All of it is a
  // deterministic function of (sources, cursor), which is what makes the
  // cursor a sufficient resume point.
  std::unordered_set<Value, ValueHash, ValueEq> seen_keys;
  if (t.dedup && ts == nullptr && j->targets[target_idx].dest_rows > 0) {
    // The destination holds exactly the first-seen keys inserted so far;
    // its column 0 is the dedup key.
    PSE_ASSIGN_OR_RETURN(TableInfo * dest, db_->GetTable(t.schema.name()));
    for (auto it = dest->heap->Begin(); !it.AtEnd();) {
      seen_keys.insert(it.row()[0]);
      PSE_RETURN_NOT_OK(it.Next());
    }
  }

  std::unordered_map<Value, Row, ValueHash, ValueEq> right_rows;
  if (t.source == OpPlan::Source::kJoin && ts == nullptr) {
    // Hash the parent side by its join key (unique: it is the key). The
    // right table outlives the whole copy phase, so a resume can always
    // rebuild this. With a router attached the hash is rebuilt per batch
    // instead — a foreground write may change the parent side mid-copy.
    PSE_ASSIGN_OR_RETURN(TableInfo * right_info, db_->GetTable(t.right_table));
    std::shared_lock<SharedMutex> right_lock(right_info->latch);
    for (auto it = right_info->heap->Begin(); !it.AtEnd();) {
      const Value& k = it.row()[t.right_join_pos];
      if (!k.is_null()) right_rows.emplace(k, it.row());
      PSE_RETURN_NOT_OK(it.Next());
    }
  }

  // Position the source. The frontier (first unconsumed rid) is the
  // authoritative resume point: rids are tail-append-monotone, so it stays
  // correct when concurrent DML shifts row *counts* under the cursor. The
  // count-skip is the fallback for pre-frontier journals and the very first
  // batch. Heap scans have no random access, so a resume re-reads (but does
  // not re-copy) the skipped prefix once.
  uint64_t cursor = j->targets[target_idx].src_cursor;
  const std::vector<Row>* entity_rows = nullptr;
  TableHeap::Iterator it;
  TableInfo* src_info = nullptr;  // scanned source; content-latched per batch
  auto seek = [&]() -> Status {
    it = src_info->heap->Begin();
    if (j->targets[target_idx].frontier_valid) {
      const uint64_t frontier = j->targets[target_idx].frontier;
      while (!it.AtEnd() && it.rid().Pack() < frontier) {
        PSE_RETURN_NOT_OK(it.Next());
      }
      return Status::OK();
    }
    for (uint64_t skipped = 0; skipped < cursor && !it.AtEnd(); ++skipped) {
      PSE_RETURN_NOT_OK(it.Next());
    }
    return Status::OK();
  };
  if (t.source == OpPlan::Source::kEntity) {
    entity_rows = &data_->Rows(t.entity);
  } else {
    const std::string& src = t.source == OpPlan::Source::kScan ? t.scan_table : t.left_table;
    PSE_ASSIGN_OR_RETURN(src_info, db_->GetTable(src));
    if (ts == nullptr) {
      std::shared_lock<SharedMutex> skip_lock(src_info->latch);
      PSE_RETURN_NOT_OK(seek());
    }
  }

  bool src_exhausted = false;  // router path: refreshed at every batch end
  auto exhausted = [&]() {
    if (t.source == OpPlan::Source::kEntity) return cursor >= t.entity_limit;
    return ts != nullptr ? src_exhausted : it.AtEnd();
  };

  while (!exhausted()) {
    // With a router attached, the whole batch — scan through journal commit —
    // serializes against foreground statements on the router's write mutex
    // (rank kLockRankDmlRouter, below every table latch taken here), so the
    // shared key sets and the frontier stay consistent with dual-applies.
    std::unique_lock<Mutex> router_lock;
    if (ts != nullptr) {
      router_lock = std::unique_lock<Mutex>(router->write_mutex());
      if (t.source == OpPlan::Source::kJoin) {
        right_rows.clear();
        PSE_ASSIGN_OR_RETURN(TableInfo * right_info, db_->GetTable(t.right_table));
        std::shared_lock<SharedMutex> right_lock(right_info->latch);
        for (auto rit = right_info->heap->Begin(); !rit.AtEnd();) {
          const Value& k = rit.row()[t.right_join_pos];
          if (!k.is_null()) right_rows.emplace(k, rit.row());
          PSE_RETURN_NOT_OK(rit.Next());
        }
      }
    }

    // --- scan-batch: pull raw source rows. The shared content latch on the
    // scanned source covers the batch only — released before the transform,
    // the commit, and the hook so foreground statements (and the hook's own
    // queries) never stack behind a whole operator.
    uint64_t batch_io_start = db_->TotalIo();
    std::vector<Row> scanned;
    scanned.reserve(options_.batch_rows);
    if (t.source == OpPlan::Source::kEntity) {
      while (cursor + scanned.size() < t.entity_limit && scanned.size() < options_.batch_rows) {
        scanned.push_back((*entity_rows)[cursor + scanned.size()]);
      }
    } else {
      std::shared_lock<SharedMutex> batch_lock(src_info->latch);
      if (ts != nullptr) PSE_RETURN_NOT_OK(seek());
      if (options_.batch_io_budget == 0) {
        // One page pin per heap page instead of one per tuple.
        PSE_RETURN_NOT_OK(it.FillBatch(options_.batch_rows, &scanned).status());
      } else {
        // The budget is checked per scanned row, so the batch can stop
        // mid-page the moment its I/O allowance runs out.
        while (!it.AtEnd() && scanned.size() < options_.batch_rows &&
               db_->TotalIo() - batch_io_start < options_.batch_io_budget) {
          scanned.push_back(it.row());
          PSE_RETURN_NOT_OK(it.Next());
        }
      }
      // FillBatch leaves the iterator on the first unconsumed tuple: that
      // rid is the new frontier. At end-of-source the completed flag below
      // is the durable end-state instead.
      if (!it.AtEnd()) {
        j->targets[target_idx].frontier = it.rid().Pack();
        j->targets[target_idx].frontier_valid = true;
      }
      src_exhausted = it.AtEnd();
    }
    const size_t batch_rows = scanned.size();

    // --- transform-batch: move the scanned rows through a TupleBatch and
    // gather destination columns column-at-a-time, outside any latch. The
    // dedup filter is a selection vector over the destination key column.
    TupleBatch src_batch;
    src_batch.Reset(batch_rows == 0 ? 0 : scanned[0].size(), batch_rows);
    for (Row& r : scanned) src_batch.AppendRow(std::move(r));

    std::vector<Row> staged;
    staged.reserve(batch_rows);
    TupleBatch dst_batch;
    switch (t.source) {
      case OpPlan::Source::kEntity: {
        for (size_t i = 0; i < batch_rows; ++i) {
          Row src;
          src_batch.MoveRowOut(i, &src);
          PSE_ASSIGN_OR_RETURN(Row dst, data_->BuildTableRow(*plan.after, t.after_idx, src));
          staged.push_back(std::move(dst));
        }
        break;
      }
      case OpPlan::Source::kScan: {
        dst_batch.Reset(t.mapping.size(), batch_rows);
        // Mapping positions are distinct (one per destination column name),
        // so whole source columns move instead of copying value by value.
        for (size_t c = 0; c < t.mapping.size(); ++c) {
          dst_batch.col(c) = std::move(src_batch.col(t.mapping[c]));
        }
        dst_batch.SetNumRows(batch_rows);
        if (t.dedup) {
          // With a router attached the shared key set replaces the private
          // one, so keys the dual-apply already put in the destination are
          // deduped exactly like keys this loop copied itself.
          auto& key_set = ts != nullptr ? ts->keys : seen_keys;
          std::vector<uint32_t> sel;
          const std::vector<Value>& keys = dst_batch.col(0);
          for (uint32_t i = 0; i < batch_rows; ++i) {
            if (keys[i].is_null()) continue;  // dangling/unknown parent
            if (key_set.insert(keys[i]).second) sel.push_back(i);
          }
          dst_batch.SetSel(std::move(sel));
        }
        for (size_t i = 0; i < dst_batch.size(); ++i) {
          Row dst;
          dst_batch.MoveRowOut(dst_batch.SelIndex(i), &dst);
          staged.push_back(std::move(dst));
        }
        break;
      }
      case OpPlan::Source::kJoin: {
        // Resolve each left row's parent once, before the join-key column
        // may be moved out by the gather below.
        std::vector<const Row*> matched(batch_rows, nullptr);
        const std::vector<Value>& jks = src_batch.col(t.left_join_pos);
        for (size_t i = 0; i < batch_rows; ++i) {
          if (jks[i].is_null()) continue;
          auto found = right_rows.find(jks[i]);
          if (found != right_rows.end()) matched[i] = &found->second;
        }
        dst_batch.Reset(t.join_mapping.size(), batch_rows);
        for (size_t c = 0; c < t.join_mapping.size(); ++c) {
          const auto& [from_left, pos] = t.join_mapping[c];
          std::vector<Value>& out = dst_batch.col(c);
          if (from_left) {
            out = std::move(src_batch.col(pos));
          } else {
            out.reserve(batch_rows);
            for (size_t i = 0; i < batch_rows; ++i) {
              // Left outer join: anchor rows survive a missing parent.
              out.push_back(matched[i] != nullptr
                                ? (*matched[i])[pos]
                                : Value::Null(t.schema.column(c).type));
            }
          }
        }
        dst_batch.SetNumRows(batch_rows);
        for (size_t i = 0; i < batch_rows; ++i) {
          Row dst;
          dst_batch.MoveRowOut(i, &dst);
          staged.push_back(std::move(dst));
        }
        break;
      }
    }
    cursor += batch_rows;

    // Inserts take the destination's exclusive content latch; staging them
    // until the source's shared latch drops keeps this lane at one
    // table-rank latch at a time. Holding both inverts the canonical
    // sorted-name order whenever the destination sorts before the source
    // (lockdep regression: CopyBatchHoldsOneTableLatchAtATime).
    for (Row& dst : staged) {
      if (ts != nullptr && !t.dedup) {
        // Non-dedup target: a key already in the shared set was dual-applied
        // by the router (on whichever side of the frontier the write landed);
        // re-inserting it here would be the double-insert this set exists to
        // prevent. Dedup targets filtered through the set above already.
        const Value& k = dst[ts->key_col];
        if (!k.is_null()) {
          if (ts->keys.count(k) > 0) continue;
          ts->keys.insert(k);
        }
      }
      PSE_RETURN_NOT_OK(db_->Insert(t.schema.name(), dst).status());
      ++j->targets[target_idx].dest_rows;
    }

    // Commit point: data + journal cursor + frontier become durable
    // together. A crash after this survives with the cursor; a crash before
    // it re-runs the batch (detected by the dest-row count disagreeing with
    // the journal). The router lock (when held) covers the commit too, so
    // the checkpoint never races a dual-apply's journal bookkeeping — only
    // the hook runs outside it (it may execute foreground DML itself).
    j->targets[target_idx].src_cursor = cursor;
    if (exhausted()) j->targets[target_idx].completed = true;
    PSE_RETURN_NOT_OK(CommitBatch());
    ++j->batches_committed;

    uint64_t rows_copied = 0;
    for (const auto& jt : j->targets) rows_copied += jt.dest_rows;
    if (router_lock.owns_lock()) router_lock.unlock();
    PSE_RETURN_NOT_OK(FireHook(rows_copied));
  }
  if (!j->targets[target_idx].completed) {
    // Source was empty from the start: still mark the target done.
    j->targets[target_idx].completed = true;
    PSE_RETURN_NOT_OK(CommitBatch());
  }
  return Status::OK();
}

Status MigrationExecutor::RecoverTargets(const OpPlan& plan) {
  PSE_LOCKDEP_SCOPE("MigrationExecutor::RecoverTargets");
  // Recovery may drop and re-create torn targets — catalog mutations, so
  // the whole repair runs under the exclusive catalog latch.
  std::unique_lock<SharedMutex> schema_lock(db_->schema_latch());
  MigrationJournal* j = db_->mutable_migration_journal();
  for (size_t i = 0; i < plan.targets.size(); ++i) {
    const std::string& name = plan.targets[i].schema.name();
    auto info_res = db_->GetTable(name);
    if (!info_res.ok()) {
      return Status::Internal("journaled migration target '" + name +
                              "' missing from the reopened catalog");
    }
    TableInfo* info = *info_res;
    if (i < j->target_pos || j->targets[i].completed) {
      // Completed targets were checkpointed after their last batch; nothing
      // written to them since, so heap and indexes are consistent.
      continue;
    }
    // In-flight or not-yet-started target: pages flushed after the last
    // checkpoint may have left more rows (or a longer chain) than the
    // journal recorded. Count defensively and rebuild on any disagreement.
    auto counted = info->heap->CountRowsBounded(info->heap->NumPages());
    if (counted.ok() && *counted == j->targets[i].dest_rows) {
      // Heap agrees with the journal. Index trees may still trail or lead
      // the heap (they checkpoint as metadata but their pages flush
      // independently), so rebuild them from the heap.
      PSE_RETURN_NOT_OK(db_->RebuildIndexes(name));
      info->row_count = j->targets[i].dest_rows;
      continue;
    }
    // Torn state: cut the chain at the catalog's page count so the drop
    // walk cannot wander into never-written pages, then start this target
    // over from an empty table.
    PSE_RETURN_NOT_OK(info->heap->TruncateChain(info->heap->NumPages()));
    TableSchema schema = plan.targets[i].schema;
    PSE_RETURN_NOT_OK(db_->DropTable(name));
    PSE_RETURN_NOT_OK(db_->CreateTable(schema));
    PSE_RETURN_NOT_OK(EnsureSecondaryIndexes(db_, *plan.after, plan.targets[i].after_idx));
    j->targets[i].src_cursor = 0;
    j->targets[i].dest_rows = 0;
    j->targets[i].frontier = 0;
    j->targets[i].frontier_valid = false;
  }
  return CommitBatch();
}

Status MigrationExecutor::RunPhases(const OpPlan& plan, bool resume) {
  PSE_LOCKDEP_SCOPE("MigrationExecutor::RunPhases");
  MigrationJournal* j = db_->mutable_migration_journal();

  if (!resume) {
    // Phase kCreateTargets: journal the intent first, so a crash while the
    // targets are half-created still knows what to drop. The creates mutate
    // the catalog map, so they take the exclusive catalog latch — a brief
    // quiesce; the targets themselves stay invisible to readers (no query
    // binds to them) until the publish window below.
    PSE_RETURN_NOT_OK(CommitBatch());
    {
      std::unique_lock<SharedMutex> schema_lock(db_->schema_latch());
      for (const auto& t : plan.targets) {
        PSE_RETURN_NOT_OK(db_->CreateTable(t.schema));
        PSE_RETURN_NOT_OK(EnsureSecondaryIndexes(db_, *plan.after, t.after_idx));
      }
    }
    j->phase = MigrationJournal::Phase::kCopy;
    PSE_RETURN_NOT_OK(CommitBatch());
  }

  DmlRouter* router = options_.dml_router;
  if (j->phase == MigrationJournal::Phase::kCopy) {
    if (resume) {
      PSE_RETURN_NOT_OK(RecoverTargets(plan));
      // Recovery may have nuked a torn target back to empty: the router's
      // shared key sets must match the heaps again before any dual-apply.
      if (router != nullptr && router->attached()) {
        PSE_RETURN_NOT_OK(router->RebuildKeys());
      }
    }
    while (j->target_pos < j->targets.size()) {
      PSE_RETURN_NOT_OK(CopyTarget(plan, j->target_pos));
      ++j->target_pos;
      PSE_RETURN_NOT_OK(CommitBatch());
    }
    // Point of no return: every row is durably in place; from here the
    // operator only rolls forward.
    j->phase = MigrationJournal::Phase::kDropSources;
    PSE_RETURN_NOT_OK(CommitBatch());
  }

  // Quiesce window: drain in-flight readers, then drop the sources, analyze
  // the targets, and publish the post-op schema as one atomic step. A query
  // that started before this point planned against the pre-op layout and
  // has finished (the exclusive acquisition waits for it); one that starts
  // after sees the post-op layout. Nothing observes the in-between.
  std::unique_lock<SharedMutex> schema_lock(db_->schema_latch());

  if (j->phase == MigrationJournal::Phase::kDropSources) {
    for (const std::string& name : plan.drop_tables) {
      Status s = db_->DropTable(name);
      // A resumed drop phase may find some sources already gone.
      if (!s.ok() && !s.IsNotFound()) return s;
    }
    j->phase = MigrationJournal::Phase::kFinalize;
    PSE_RETURN_NOT_OK(CommitBatch());
  }

  if (router != nullptr && router->attached()) {
    // Last write window before publish: materialize parent rows that exist
    // only as provenance (every covering source row deleted mid-copy), then
    // detach — from here the post-op schema is the single serving truth and
    // statements apply to it directly, no dual writes.
    PSE_RETURN_NOT_OK(router->BackfillProvenance());
    router->DetachOp();
  }

  for (const auto& t : plan.targets) {
    PSE_RETURN_NOT_OK(db_->Analyze(t.schema.name()));
  }
  last_op_batches_ = j->batches_committed;
  j->Clear();
  if (options_.on_publish) options_.on_publish(*plan.after);
  // Data movement must be durable before the migration point completes, so
  // the written pages count as physical I/O even when they fit in cache.
  if (Durable()) return db_->Checkpoint();
  return db_->pool()->FlushAll();
}

Result<uint64_t> MigrationExecutor::Run(const MigrationOperator& op, PhysicalSchema* schema,
                                        bool resume) {
  if (options_.batch_rows == 0) {
    return Status::InvalidArgument("batch_rows must be positive (0 rows per batch cannot progress)");
  }
  PhysicalSchema after = *schema;
  PSE_RETURN_NOT_OK(ApplyOperator(op, &after));
  PSE_ASSIGN_OR_RETURN(OpPlan plan, BuildPlan(op, *schema, after));

  MigrationJournal* j = db_->mutable_migration_journal();
  if (resume) {
    if (!j->active) return Status::InvalidArgument("no migration journal to resume");
    if (j->op_id != op.id || j->op_kind != static_cast<uint8_t>(op.kind)) {
      return Status::InvalidArgument("journal records op#" + std::to_string(j->op_id) +
                                     ", not op#" + std::to_string(op.id));
    }
    if (j->targets.size() != plan.targets.size()) {
      return Status::Internal("journal does not match the replanned operator");
    }
    for (size_t i = 0; i < plan.targets.size(); ++i) {
      if (!EqualsIgnoreCase(j->targets[i].table, plan.targets[i].schema.name())) {
        return Status::Internal("journal target '" + j->targets[i].table +
                                "' does not match replanned '" + plan.targets[i].schema.name() +
                                "'");
      }
    }
    if (j->phase == MigrationJournal::Phase::kCreateTargets) {
      // Targets may only partially exist; cheapest correct recovery is to
      // roll the creation back and start the operator over.
      PSE_RETURN_NOT_OK(RollbackInternal());
      return Run(op, schema, /*resume=*/false);
    }
  } else {
    // Pre-flight: every target name must be free BEFORE anything is created
    // or journaled. This keeps rollback honest — it only ever drops tables
    // this executor created, never a pre-existing table that happened to
    // collide with a target name.
    for (const auto& t : plan.targets) {
      if (db_->HasTable(t.schema.name())) {
        return Status::AlreadyExists("migration target table '" + t.schema.name() +
                                     "' already exists");
      }
    }
    j->Clear();
    j->active = true;
    j->op_id = op.id;
    j->op_kind = static_cast<uint8_t>(op.kind);
    j->phase = MigrationJournal::Phase::kCreateTargets;
    j->drop_tables = plan.drop_tables;
    for (const auto& t : plan.targets) {
      MigrationJournal::Target jt;
      jt.table = t.schema.name();
      j->targets.push_back(std::move(jt));
    }
  }

  DmlRouter* router = options_.dml_router;
  if (router != nullptr) {
    // Attach the operator so foreground DML dual-applies onto the targets
    // from the very first batch. On the fresh path the targets don't exist
    // yet (empty key sets — correct, they're created empty); on resume the
    // sets rebuild from whatever the torn heaps hold, and RunPhases rebuilds
    // them again after recovery repairs.
    std::vector<DmlRouter::TargetState> target_states;
    target_states.reserve(plan.targets.size());
    for (size_t i = 0; i < plan.targets.size(); ++i) {
      DmlRouter::TargetState ts;
      ts.table = plan.targets[i].schema.name();
      ts.after_idx = plan.targets[i].after_idx;
      ts.journal_idx = i;
      // ToTableSchema emits the anchor key as column 0 on every table.
      ts.key_col = 0;
      target_states.push_back(std::move(ts));
    }
    PSE_RETURN_NOT_OK(router->AttachOp(&after, std::move(target_states)));
  }

  io_start_ = db_->TotalIo();
  hook_io_ = 0;
  Status s = RunPhases(plan, resume);
  if (router != nullptr) router->DetachOp();  // no-op after the publish window
  if (!s.ok()) {
    uint64_t io_spent = db_->TotalIo() - io_start_ - hook_io_;
    if (options_.rollback_on_error && j->phase < MigrationJournal::Phase::kDropSources) {
      // Atomicity: an operator either fully applies or leaves no trace.
      // Best effort — if the rollback itself fails (e.g. the disk is gone)
      // the journal stays behind for the next Open to deal with.
      Status rb = RollbackInternal();
      if (!rb.ok()) {
        return Status(s.code(), s.message() + " (rollback also failed: " + rb.message() + ")");
      }
    }
    return Status(s.code(),
                  s.message() + " [op#" + std::to_string(op.id) + " io=" +
                      std::to_string(io_spent) + "]");
  }
  *schema = std::move(after);
  return db_->TotalIo() - io_start_ - hook_io_;
}

Result<uint64_t> MigrationExecutor::Apply(const MigrationOperator& op, PhysicalSchema* schema) {
  if (db_->HasPendingMigration()) {
    return Status::InvalidArgument("a migration is already journaled (op#" +
                                   std::to_string(db_->migration_journal().op_id) +
                                   "); Resume() or Rollback() it first");
  }
  return Run(op, schema, /*resume=*/false);
}

Result<uint64_t> MigrationExecutor::Resume(const MigrationOperator& op, PhysicalSchema* schema) {
  return Run(op, schema, /*resume=*/true);
}

Status MigrationExecutor::Rollback() {
  const MigrationJournal& j = db_->migration_journal();
  if (!j.active) return Status::InvalidArgument("no migration journal to roll back");
  if (j.phase >= MigrationJournal::Phase::kDropSources) {
    return Status::InvalidArgument(
        "migration already dropping its sources; it can only roll forward (Resume)");
  }
  return RollbackInternal();
}

Status MigrationExecutor::RollbackInternal() {
  PSE_LOCKDEP_SCOPE("MigrationExecutor::RollbackInternal");
  // Dropping half-built targets mutates the catalog: exclusive latch.
  std::unique_lock<SharedMutex> schema_lock(db_->schema_latch());
  MigrationJournal* j = db_->mutable_migration_journal();
  for (const auto& jt : j->targets) {
    if (!db_->HasTable(jt.table)) continue;
    PSE_ASSIGN_OR_RETURN(TableInfo * info, db_->GetTable(jt.table));
    // The heap may have grown past the last checkpoint; clamp the chain
    // before the drop walk (see RecoverTargets).
    PSE_RETURN_NOT_OK(info->heap->TruncateChain(info->heap->NumPages()));
    PSE_RETURN_NOT_OK(db_->DropTable(jt.table));
  }
  j->Clear();
  return CommitBatch();
}

Result<uint64_t> MigrationExecutor::ApplyAll(const std::vector<MigrationOperator>& ops,
                                             PhysicalSchema* schema,
                                             MigrationProgress* progress) {
  MigrationProgress local;
  for (size_t i = 0; i < ops.size(); ++i) {
    auto io = Apply(ops[i], schema);
    if (!io.ok()) {
      if (progress) *progress = local;
      const Status& s = io.status();
      return Status(s.code(), s.message() + " (after " + std::to_string(local.ops_applied) +
                                  " of " + std::to_string(ops.size()) + " ops, io=" +
                                  std::to_string(local.io) + ")");
    }
    local.ops_applied = i + 1;
    local.io += *io;
    local.batches += last_op_batches_;
  }
  if (progress) *progress = local;
  return local.io;
}

}  // namespace pse
