#include "core/physical_schema.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"

namespace pse {

bool PhysicalTable::Contains(AttrId a) const {
  return std::binary_search(attrs.begin(), attrs.end(), a);
}

std::vector<AttrId> PhysicalSchema::CompleteAttrSet(const LogicalSchema& logical,
                                                    EntityId anchor,
                                                    const std::vector<AttrId>& nonkey_attrs) {
  std::set<AttrId> out(nonkey_attrs.begin(), nonkey_attrs.end());
  out.insert(logical.entity(anchor).key);
  // Key of every entity with a non-key attribute present.
  for (AttrId a : nonkey_attrs) {
    out.insert(logical.entity(logical.attr(a).entity).key);
  }
  return std::vector<AttrId>(out.begin(), out.end());
}

Status PhysicalSchema::AddTable(const std::string& name, EntityId anchor,
                                const std::vector<AttrId>& nonkey_attrs) {
  for (AttrId a : nonkey_attrs) {
    if (logical_->attr(a).is_key) {
      return Status::InvalidArgument("attr '" + logical_->attr(a).name +
                                     "' is a key; pass only non-key attributes");
    }
  }
  PhysicalTable t;
  t.name = name;
  t.anchor = anchor;
  t.attrs = CompleteAttrSet(*logical_, anchor, nonkey_attrs);
  tables_.push_back(std::move(t));
  return Status::OK();
}

void PhysicalSchema::AddRawTable(PhysicalTable t) {
  std::sort(t.attrs.begin(), t.attrs.end());
  t.attrs.erase(std::unique(t.attrs.begin(), t.attrs.end()), t.attrs.end());
  tables_.push_back(std::move(t));
}

Status PhysicalSchema::Validate() const {
  const LogicalSchema& L = *logical_;
  std::map<AttrId, int> nonkey_count;
  std::set<std::string> names;
  for (const auto& t : tables_) {
    if (!names.insert(ToLower(t.name)).second) {
      return Status::Internal("duplicate table name '" + t.name + "'");
    }
    // 1. anchor key present.
    if (!t.Contains(L.entity(t.anchor).key)) {
      return Status::Internal("table '" + t.name + "' is missing its anchor key");
    }
    std::set<EntityId> nonkey_entities;
    for (AttrId a : t.attrs) {
      const LogicalAttribute& attr = L.attr(a);
      if (!attr.is_key) {
        ++nonkey_count[a];
        nonkey_entities.insert(attr.entity);
      }
      // 4. chain FKs present for every foreign entity attribute.
      if (attr.entity != t.anchor) {
        auto path = L.FkPath(t.anchor, attr.entity);
        if (!path.ok()) {
          return Status::Internal("table '" + t.name + "': attr '" + attr.name +
                                  "' of entity unreachable from anchor");
        }
        for (AttrId fk : *path) {
          if (!t.Contains(fk)) {
            return Status::Internal("table '" + t.name + "': missing chain FK '" +
                                    L.attr(fk).name + "' for attr '" + attr.name + "'");
          }
        }
      }
    }
    // 3. key attrs justified.
    for (AttrId a : t.attrs) {
      const LogicalAttribute& attr = L.attr(a);
      if (!attr.is_key) continue;
      if (attr.entity == t.anchor) continue;
      if (nonkey_entities.count(attr.entity) == 0) {
        return Status::Internal("table '" + t.name + "': unjustified key attr '" + attr.name +
                                "'");
      }
    }
    // 3b. keys present for all embedded entities.
    for (EntityId e : nonkey_entities) {
      if (!t.Contains(L.entity(e).key)) {
        return Status::Internal("table '" + t.name + "': missing key of embedded entity '" +
                                L.entity(e).name + "'");
      }
    }
  }
  // 2. non-key attrs appear at most once (not every attr must be placed —
  // "new" attributes are absent until their CreateTable runs).
  for (const auto& [a, count] : nonkey_count) {
    if (count > 1) {
      return Status::Internal("non-key attr '" + L.attr(a).name + "' stored in " +
                              std::to_string(count) + " tables");
    }
  }
  return Status::OK();
}

Result<size_t> PhysicalSchema::TableOfNonKeyAttr(AttrId a) const {
  for (size_t i = 0; i < tables_.size(); ++i) {
    if (tables_[i].Contains(a)) return i;
  }
  return Status::NotFound("attr '" + logical_->attr(a).name + "' not stored in any table");
}

std::vector<size_t> PhysicalSchema::TablesWithAttr(AttrId a) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < tables_.size(); ++i) {
    if (tables_[i].Contains(a)) out.push_back(i);
  }
  return out;
}

Result<size_t> PhysicalSchema::TableByName(const std::string& name) const {
  for (size_t i = 0; i < tables_.size(); ++i) {
    if (EqualsIgnoreCase(tables_[i].name, name)) return i;
  }
  return Status::NotFound("table '" + name + "' not in physical schema");
}

TableSchema PhysicalSchema::ToTableSchema(size_t idx) const {
  const PhysicalTable& t = tables_[idx];
  const LogicalSchema& L = *logical_;
  std::vector<Column> columns;
  // Anchor key first (matches Database auto-index expectations), then the
  // rest in AttrId order.
  AttrId key = L.entity(t.anchor).key;
  const LogicalAttribute& key_attr = L.attr(key);
  columns.emplace_back(key_attr.name, key_attr.type, key_attr.avg_width, /*nullable=*/false);
  for (AttrId a : t.attrs) {
    if (a == key) continue;
    const LogicalAttribute& attr = L.attr(a);
    columns.emplace_back(attr.name, attr.type, attr.avg_width);
  }
  return TableSchema(t.name, std::move(columns), {key_attr.name});
}

std::string PhysicalSchema::ToString() const {
  std::string out;
  for (size_t i = 0; i < tables_.size(); ++i) {
    const PhysicalTable& t = tables_[i];
    out += t.name + " [anchor=" + logical_->entity(t.anchor).name + "] (";
    bool first = true;
    for (AttrId a : t.attrs) {
      if (!first) out += ", ";
      out += logical_->attr(a).name;
      first = false;
    }
    out += ")\n";
  }
  return out;
}

bool PhysicalSchema::EquivalentTo(const PhysicalSchema& other) const {
  if (tables_.size() != other.tables_.size()) return false;
  std::vector<std::pair<EntityId, std::vector<AttrId>>> a, b;
  for (const auto& t : tables_) a.emplace_back(t.anchor, t.attrs);
  for (const auto& t : other.tables_) b.emplace_back(t.anchor, t.attrs);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

}  // namespace pse
