#include "core/rewriter.h"

#include <algorithm>
#include <map>
#include <set>

namespace pse {

namespace {

enum class TableClass { kDirect, kChildDenorm, kParent };

struct TableUse {
  TableClass cls = TableClass::kDirect;
  std::set<AttrId> cols;   // attributes to produce
  AttrId link_attr = kInvalidId;  // column carrying the join value
};

class Rewriter {
 public:
  Rewriter(const LogicalQuery& q, const PhysicalSchema& p)
      : q_(q), P_(p), L_(*p.logical()) {}

  Result<BoundQuery> Run();

 private:
  /// Ensures `attr` is available; returns the table it is read from.
  Result<size_t> ResolveAttr(AttrId attr);
  /// Classifies and links a newly used table.
  Status LinkTable(size_t t);

  const LogicalQuery& q_;
  const PhysicalSchema& P_;
  const LogicalSchema& L_;

  std::map<size_t, TableUse> used_;
  std::map<AttrId, size_t> attr_loc_;
  /// (fk attribute, parent table) joins discovered while linking.
  std::vector<std::pair<AttrId, size_t>> parent_joins_;
};

Result<size_t> Rewriter::ResolveAttr(AttrId attr) {
  auto it = attr_loc_.find(attr);
  if (it != attr_loc_.end()) return it->second;

  std::vector<size_t> candidates = P_.TablesWithAttr(attr);
  if (candidates.empty()) {
    return Status::BindError("attribute '" + L_.attr(attr).name +
                             "' is not stored in this schema");
  }
  size_t chosen = candidates[0];
  bool found = false;
  // Prefer a table already in use.
  for (size_t c : candidates) {
    if (used_.count(c)) {
      chosen = c;
      found = true;
      break;
    }
  }
  // Then a table anchored at the query anchor, then at the attr's entity.
  if (!found) {
    for (size_t c : candidates) {
      if (P_.tables()[c].anchor == q_.anchor) {
        chosen = c;
        found = true;
        break;
      }
    }
  }
  if (!found) {
    for (size_t c : candidates) {
      if (P_.tables()[c].anchor == L_.attr(attr).entity) {
        chosen = c;
        found = true;
        break;
      }
    }
  }
  attr_loc_[attr] = chosen;
  bool fresh = used_.count(chosen) == 0;
  used_[chosen].cols.insert(attr);
  if (fresh) {
    PSE_RETURN_NOT_OK(LinkTable(chosen));
  }
  return chosen;
}

Status Rewriter::LinkTable(size_t t) {
  const PhysicalTable& table = P_.tables()[t];
  TableUse& use = used_[t];
  AttrId anchor_key = L_.entity(q_.anchor).key;

  if (table.anchor == q_.anchor) {
    use.cls = TableClass::kDirect;
    use.link_attr = anchor_key;
    use.cols.insert(anchor_key);
    return Status::OK();
  }
  if (L_.Reaches(table.anchor, q_.anchor)) {
    // The query's entity is denormalized inside this deeper-anchored table.
    use.cls = TableClass::kChildDenorm;
    if (table.Contains(anchor_key)) {
      use.link_attr = anchor_key;
    } else {
      PSE_ASSIGN_OR_RETURN(std::vector<AttrId> path, L_.FkPath(table.anchor, q_.anchor));
      AttrId last_fk = path.back();
      if (!table.Contains(last_fk)) {
        return Status::Internal("denormalized table '" + table.name +
                                "' lacks the chain FK to the query anchor");
      }
      use.link_attr = last_fk;
    }
    use.cols.insert(use.link_attr);
    return Status::OK();
  }
  if (L_.Reaches(q_.anchor, table.anchor)) {
    use.cls = TableClass::kParent;
    AttrId parent_key = L_.entity(table.anchor).key;
    use.link_attr = parent_key;
    use.cols.insert(parent_key);
    // The FK carrying parent-key values per anchor row lives elsewhere;
    // resolve it recursively and record the join.
    PSE_ASSIGN_OR_RETURN(std::vector<AttrId> path, L_.FkPath(q_.anchor, table.anchor));
    AttrId last_fk = path.back();
    PSE_ASSIGN_OR_RETURN(size_t fk_table, ResolveAttr(last_fk));
    if (fk_table != t) {
      parent_joins_.emplace_back(last_fk, t);
    }
    return Status::OK();
  }
  return Status::BindError("table '" + table.name + "' anchored at '" +
                           L_.entity(table.anchor).name +
                           "' is unrelated to query anchor '" + L_.entity(q_.anchor).name + "'");
}

Result<BoundQuery> Rewriter::Run() {
  // 1. Collect needed attributes.
  std::vector<std::string> names;
  for (const auto& s : q_.select) {
    if (s.expr) s.expr->CollectColumns(&names);
  }
  for (const auto& f : q_.filters) f->CollectColumns(&names);
  for (const auto& g : q_.group_by) g->CollectColumns(&names);

  std::vector<AttrId> needed;
  for (const auto& n : names) {
    PSE_ASSIGN_OR_RETURN(AttrId a, L_.AttrByName(n));
    needed.push_back(a);
  }
  needed.push_back(L_.entity(q_.anchor).key);

  for (AttrId a : needed) {
    PSE_RETURN_NOT_OK(ResolveAttr(a).status());
  }

  // 2. Identify the anchor group and the join primary (a direct table when
  // one exists). The primary is emitted FIRST so the planner's left-deep
  // join tree grows outward from the (usually filtered) anchor access.
  std::vector<size_t> anchor_group;
  for (const auto& [t, use] : used_) {
    if (use.cls != TableClass::kParent) anchor_group.push_back(t);
  }
  if (anchor_group.empty()) {
    return Status::Internal("rewriter produced no anchor-side table");
  }
  size_t primary = anchor_group[0];
  for (size_t t : anchor_group) {
    if (used_[t].cls == TableClass::kDirect) {
      primary = t;
      break;
    }
  }

  // Seed the planner's join tree from a table that actually has a selective
  // local filter (the paper's queries filter on one side; starting there
  // lets every other table attach as an index-nested-loop inner). Key-only
  // filters land on the primary, so the primary wins ties.
  std::set<size_t> filtered_tables;
  for (const auto& f : q_.filters) {
    std::vector<std::string> cols;
    f->CollectColumns(&cols);
    std::set<size_t> refs;
    bool all_key = !cols.empty();
    for (const auto& c : cols) {
      auto attr = L_.AttrByName(c);
      if (!attr.ok()) continue;
      if (*attr != L_.entity(q_.anchor).key) all_key = false;
      auto loc = attr_loc_.find(*attr);
      if (loc != attr_loc_.end()) refs.insert(loc->second);
    }
    if (all_key) {
      filtered_tables.insert(primary);
    } else if (refs.size() == 1) {
      filtered_tables.insert(*refs.begin());
    }
  }
  size_t seed = primary;
  if (!filtered_tables.empty() && filtered_tables.count(primary) == 0) {
    seed = *filtered_tables.begin();
  }

  BoundQuery out;
  std::map<size_t, size_t> table_pos;  // schema table idx -> BoundQuery idx
  std::vector<size_t> emit_order{seed};
  for (const auto& [t, use] : used_) {
    if (t != seed) emit_order.push_back(t);
  }
  for (size_t t : emit_order) {
    const TableUse& use = used_[t];
    table_pos[t] = out.tables.size();
    TableAccess access;
    access.table = P_.tables()[t].name;
    access.alias = access.table;
    for (AttrId a : use.cols) access.columns.push_back(L_.attr(a).name);
    if (use.cls == TableClass::kChildDenorm) {
      access.distinct = true;
      access.distinct_key = L_.attr(use.link_attr).name;
    }
    out.tables.push_back(std::move(access));
  }

  // 3. Joins. Anchor group: direct + child tables joined on their link cols.
  for (size_t t : anchor_group) {
    if (t == primary) continue;
    EquiJoin j;
    j.left_table = table_pos[primary];
    j.right_table = table_pos[t];
    j.left_column = L_.attr(used_[primary].link_attr).name;
    j.right_column = L_.attr(used_[t].link_attr).name;
    out.joins.push_back(j);
  }
  // Parent joins: fk-side table joins the parent fragment.
  std::set<std::pair<size_t, size_t>> seen_joins;
  for (const auto& [fk, t] : parent_joins_) {
    size_t fk_table = attr_loc_.at(fk);
    if (!seen_joins.insert({fk_table, t}).second) continue;
    EquiJoin j;
    j.left_table = table_pos[fk_table];
    j.right_table = table_pos[t];
    j.left_column = L_.attr(fk).name;
    j.right_column = L_.attr(used_[t].link_attr).name;
    out.joins.push_back(j);
  }

  // 4. Expression placement. Qualify refs as "table.attr" per attr_loc.
  auto qualify = [this](Expr* e) {
    e->VisitColumnRefs([this](ColumnRefExpr* c) {
      auto attr = L_.AttrByName(c->name());
      if (!attr.ok()) return;  // already qualified or unknown (caught later)
      auto loc = attr_loc_.find(*attr);
      if (loc != attr_loc_.end()) {
        c->set_name(P_.tables()[loc->second].name + "." + L_.attr(*attr).name);
      }
    });
  };
  auto tables_of = [this](const Expr& e) {
    std::vector<std::string> cols;
    e.CollectColumns(&cols);
    std::set<size_t> out_tables;
    for (const auto& c : cols) {
      auto attr = L_.AttrByName(c);
      if (attr.ok()) out_tables.insert(attr_loc_.at(*attr));
    }
    return out_tables;
  };
  AttrId anchor_key = L_.entity(q_.anchor).key;
  for (const auto& f : q_.filters) {
    std::set<size_t> refs = tables_of(*f);
    // Filters that touch only the anchor key hold on EVERY anchor-side
    // fragment (they all carry the key / its FK image); replicating them
    // turns fragment joins into per-fragment index lookups.
    std::vector<std::string> cols;
    f->CollectColumns(&cols);
    bool key_only = !cols.empty();
    for (const auto& c : cols) {
      auto attr = L_.AttrByName(c);
      if (!attr.ok() || *attr != anchor_key) key_only = false;
    }
    if (key_only) {
      for (size_t t : anchor_group) {
        ExprPtr e = f->Clone();
        // The fragment's key column may be the anchor key itself or the FK
        // image of it (child-denormalized tables).
        const std::string link_name = L_.attr(used_[t].link_attr).name;
        e->VisitColumnRefs([&link_name](ColumnRefExpr* c) { c->set_name(link_name); });
        out.tables[table_pos[t]].filters.push_back(std::move(e));
      }
      continue;
    }
    ExprPtr e = f->Clone();
    if (refs.size() == 1) {
      out.tables[table_pos[*refs.begin()]].filters.push_back(std::move(e));  // unqualified
    } else {
      qualify(e.get());
      out.global_filters.push_back(std::move(e));
    }
  }
  for (const auto& g : q_.group_by) {
    ExprPtr e = g->Clone();
    qualify(e.get());
    out.group_by.push_back(std::move(e));
  }
  for (const auto& s : q_.select) {
    SelectItem item;
    item.agg = s.agg;
    item.name = s.name;
    if (s.expr) {
      item.expr = s.expr->Clone();
      qualify(item.expr.get());
    }
    out.select_items.push_back(std::move(item));
  }
  out.order_by = q_.order_by;
  out.limit = q_.limit;
  out.select_distinct = q_.distinct;
  return out;
}

}  // namespace

Result<BoundQuery> RewriteQuery(const LogicalQuery& query, const PhysicalSchema& schema) {
  Rewriter rewriter(query, schema);
  return rewriter.Run();
}

}  // namespace pse
