#include "core/logical_schema.h"

#include <algorithm>
#include <deque>

#include "common/string_util.h"

namespace pse {

EntityId LogicalSchema::AddEntity(const std::string& name, const std::string& key_attr_name,
                                  TypeId key_type, uint32_t key_width) {
  EntityId e = entities_.size();
  entities_.push_back(LogicalEntity{name, kInvalidId, {}});
  LogicalAttribute key;
  key.name = key_attr_name;
  key.type = key_type;
  key.avg_width = key_width;
  key.entity = e;
  key.is_key = true;
  AttrId a = attrs_.size();
  attrs_.push_back(std::move(key));
  entities_[e].key = a;
  entities_[e].attributes.push_back(a);
  return e;
}

Result<AttrId> LogicalSchema::AddAttribute(EntityId entity, const std::string& name, TypeId type,
                                           uint32_t avg_width, bool is_new) {
  if (entity >= entities_.size()) return Status::InvalidArgument("bad entity id");
  for (const auto& a : attrs_) {
    if (EqualsIgnoreCase(a.name, name)) {
      return Status::AlreadyExists("attribute '" + name + "' already exists");
    }
  }
  LogicalAttribute attr;
  attr.name = name;
  attr.type = type;
  attr.avg_width = avg_width;
  attr.entity = entity;
  attr.is_new = is_new;
  AttrId id = attrs_.size();
  attrs_.push_back(std::move(attr));
  entities_[entity].attributes.push_back(id);
  return id;
}

Result<AttrId> LogicalSchema::AddForeignKey(EntityId entity, const std::string& name,
                                            EntityId target) {
  if (target >= entities_.size()) return Status::InvalidArgument("bad target entity");
  PSE_ASSIGN_OR_RETURN(AttrId id, AddAttribute(entity, name, TypeId::kInt64, 0, false));
  attrs_[id].references = target;
  return id;
}

Result<EntityId> LogicalSchema::EntityByName(const std::string& name) const {
  for (EntityId e = 0; e < entities_.size(); ++e) {
    if (EqualsIgnoreCase(entities_[e].name, name)) return e;
  }
  return Status::NotFound("entity '" + name + "' not found");
}

Result<AttrId> LogicalSchema::AttrByName(const std::string& name) const {
  for (AttrId a = 0; a < attrs_.size(); ++a) {
    if (EqualsIgnoreCase(attrs_[a].name, name)) return a;
  }
  return Status::NotFound("attribute '" + name + "' not found");
}

bool LogicalSchema::Reaches(EntityId from, EntityId to) const {
  return FkPath(from, to).ok() || from == to;
}

Result<std::vector<AttrId>> LogicalSchema::FkPath(EntityId from, EntityId to) const {
  if (from == to) return std::vector<AttrId>{};
  // BFS over FK edges; entities are few, so simplicity wins.
  std::vector<AttrId> via(entities_.size(), kInvalidId);
  std::vector<EntityId> prev(entities_.size(), kInvalidId);
  std::vector<bool> seen(entities_.size(), false);
  std::deque<EntityId> frontier{from};
  seen[from] = true;
  while (!frontier.empty()) {
    EntityId cur = frontier.front();
    frontier.pop_front();
    // Deterministic order: attribute id order.
    for (AttrId a : entities_[cur].attributes) {
      const LogicalAttribute& attr = attrs_[a];
      if (!attr.references.has_value()) continue;
      EntityId next = *attr.references;
      if (seen[next]) continue;
      seen[next] = true;
      via[next] = a;
      prev[next] = cur;
      if (next == to) {
        std::vector<AttrId> path;
        for (EntityId e = to; e != from; e = prev[e]) path.push_back(via[e]);
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push_back(next);
    }
  }
  return Status::NotFound("no FK path from " + entities_[from].name + " to " +
                          entities_[to].name);
}

Result<EntityId> LogicalSchema::CommonAnchor(const std::vector<EntityId>& entities) const {
  if (entities.empty()) return Status::InvalidArgument("empty entity set");
  for (EntityId cand : entities) {
    bool ok = true;
    for (EntityId other : entities) {
      if (!Reaches(cand, other)) {
        ok = false;
        break;
      }
    }
    if (ok) return cand;
  }
  return Status::NotFound("attribute group has no common anchor entity");
}

}  // namespace pse
