// Concurrent multi-version serving: the load-generation side of the paper's
// premise that old- and new-version applications keep issuing queries while
// the schema evolves underneath them. ServeDuringMigration runs a migration
// step on one lane of a thread pool while N worker lanes execute a weighted
// query mix through the Rewriter against the currently *published* schema,
// and reports throughput plus latency percentiles for the window.
//
// The consistency contract (DESIGN.md §15): a worker acquires the
// database's catalog latch shared, snapshots the serving schema, and keeps
// the latch across rewrite + plan + execute. The migration executor
// publishes each operator's post-op schema from inside its exclusive-latch
// quiesce window (MigrationOptions::on_publish), so a worker's snapshot can
// never disagree with the catalog it executes against — every query sees
// either the pre-op or the post-op layout.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <random>
#include <vector>

#include "common/lock_registry.h"
#include "common/status.h"
#include "core/physical_schema.h"
#include "core/rewriter_dml.h"
#include "core/workload.h"
#include "storage/database.h"

namespace pse {

/// Load-generator knobs for one serve window.
struct ServeOptions {
  /// Concurrent query sessions (worker lanes). The migration itself runs on
  /// one extra lane.
  size_t sessions = 4;
  /// Each lane executes at least this many queries even if the migration
  /// finishes instantly, so op-less phases still produce latency samples.
  uint64_t min_queries_per_lane = 4;
  /// Base RNG seed; lane l draws from seed + l, so a window's query mix is
  /// reproducible given (seed, sessions).
  uint64_t seed = 42;
  /// Execute foreground queries through the vectorized batch engine instead
  /// of the row-at-a-time iterators. Either engine serves every rewritten
  /// query; the PSE_VECTORIZED environment variable forces this on.
  bool vectorized = false;

  // -- writer lanes (the write half of the serve mix; DESIGN.md §19) --

  /// Router the writer share of the mix executes through. Null keeps the
  /// window read-only (write_fraction is then ignored). Wire the same router
  /// into MigrationOptions::dml_router so live-frontier writes dual-apply.
  DmlRouter* router = nullptr;
  /// Probability a lane iteration issues a write instead of a query.
  double write_fraction = 0.0;
  /// Produces the i-th write of a lane (i counts that lane's writes; rng is
  /// the lane's own, so the workload stays reproducible per (seed, lane)).
  std::function<LogicalDml(uint64_t, std::mt19937_64&)> make_write;
};

/// What happened during one serve window. An unservable *write* window (the
/// writability cell for the statement's DML kind is kUnservable on the live
/// intermediate — a planned write-unsafe phase) counts under `unservable`
/// exactly like an unservable read, never under `errors`.
struct ServeMetrics {
  uint64_t queries = 0;      ///< successfully executed foreground queries
  uint64_t writes = 0;       ///< successfully executed foreground writes
  uint64_t unservable = 0;   ///< skipped: not yet servable on the live schema
  uint64_t unservable_writes = 0;  ///< the write share of `unservable`
  uint64_t errors = 0;       ///< non-bind failures (must stay 0)
  double wall_ms = 0;        ///< window duration (migration + drain)
  double throughput_qps = 0; ///< (queries + writes) / wall
  double p50_ms = 0;         ///< median statement latency
  double p95_ms = 0;
  double p99_ms = 0;
};

/// \brief Latched holder of the schema snapshot foreground sessions serve
/// against.
///
/// Readers take a cheap shared_ptr snapshot; the migration swaps it from
/// on_publish inside the exclusive-catalog quiesce window. Callers must read
/// it while holding the database catalog latch shared (see file comment)
/// for the snapshot to be consistent with the physical catalog.
class ServingSchema {
 public:
  explicit ServingSchema(const PhysicalSchema& initial)
      : current_(std::make_shared<PhysicalSchema>(initial)) {
    // Snapshot swaps are pointer moves; nothing under this mutex may fault
    // a page, so lockdep treats any I/O under it as a violation.
    mu_.LockdepRegister("servingschema", kLockRankServing, /*allows_io=*/false);
  }

  std::shared_ptr<const PhysicalSchema> Get() const {
    std::lock_guard<Mutex> lock(mu_);
    return current_;
  }
  void Publish(const PhysicalSchema& schema) {
    auto next = std::make_shared<PhysicalSchema>(schema);
    std::lock_guard<Mutex> lock(mu_);
    current_ = std::move(next);
  }

 private:
  mutable Mutex mu_;
  std::shared_ptr<const PhysicalSchema> current_;
};

/// \brief Runs `migrate` while `options.sessions` lanes serve `queries`.
///
/// Workers pick queries with probability proportional to `freqs` (entries
/// <= 0 never run — both application versions' active queries should carry
/// positive frequency). They loop until `migrate` returns *and* each lane
/// has executed min_queries_per_lane, then the merged metrics are computed.
/// A worker whose query is unservable on the live schema (BindError — its
/// new attribute has no physical home yet) counts it as `unservable` and
/// moves on; any other failure counts as an error and is also carried in
/// the returned status if `migrate` itself succeeded.
///
/// The caller wires `serving` to the executor via
/// MigrationOptions::on_publish before calling. `migrate` runs exactly once,
/// on one lane of an internal pool; it may apply any number of operators.
Result<ServeMetrics> ServeDuringMigration(Database* db, ServingSchema* serving,
                                          const std::vector<WorkloadQuery>& queries,
                                          const std::vector<double>& freqs,
                                          const ServeOptions& options,
                                          const std::function<Status()>& migrate);

}  // namespace pse
