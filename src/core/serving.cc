#include "core/serving.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <random>
#include <shared_mutex>

#include "common/lock_registry.h"
#include "common/thread_pool.h"
#include "core/rewriter.h"
#include "engine/catalog_view.h"
#include "engine/executor.h"
#include "engine/planner.h"

namespace pse {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// Sorted-sample percentile (nearest-rank on the closed [0,1] interpolation
/// grid); `sorted` must be non-empty and ascending.
double Percentile(const std::vector<double>& sorted, double q) {
  double pos = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/// Per-lane tallies, merged serially after the join.
struct LaneResult {
  std::vector<double> latencies_ms;  // reads and writes together
  uint64_t writes = 0;
  uint64_t unservable = 0;
  uint64_t unservable_writes = 0;
  uint64_t errors = 0;
  Status first_error;  // kept for the returned status message
};

}  // namespace

Result<ServeMetrics> ServeDuringMigration(Database* db, ServingSchema* serving,
                                          const std::vector<WorkloadQuery>& queries,
                                          const std::vector<double>& freqs,
                                          const ServeOptions& options,
                                          const std::function<Status()>& migrate) {
  if (options.sessions == 0) {
    return Status::InvalidArgument("serve window needs at least one session");
  }
  if (freqs.size() != queries.size()) {
    return Status::InvalidArgument("serve frequency vector does not match the workload");
  }
  // The mix: active queries of the phase, weighted by frequency. Both
  // versions' queries land here — old ones serve throughout, new ones start
  // serving the moment their operators publish.
  std::vector<size_t> active;
  std::vector<double> weights;
  for (size_t q = 0; q < queries.size(); ++q) {
    if (freqs[q] > 0) {
      active.push_back(q);
      weights.push_back(freqs[q]);
    }
  }

  ExecOptions exec_options = ExecOptions::Default();
  exec_options.vectorized = exec_options.vectorized || options.vectorized;

  const size_t lanes = options.sessions + 1;  // lane 0 drives the migration
  std::vector<LaneResult> results(lanes);
  std::atomic<bool> stop{false};
  Status migrate_status;

  Clock::time_point window_start = Clock::now();
  ThreadPool pool(lanes);
  pool.ParallelFor(lanes, [&](size_t lane) {
    if (lane == 0) {
      migrate_status = migrate();
      stop.store(true, std::memory_order_release);
      return;
    }
    LaneResult& r = results[lane];
    const bool writes_on =
        options.router != nullptr && options.write_fraction > 0 && options.make_write;
    if (active.empty() && !writes_on) return;
    std::mt19937_64 rng(options.seed + lane);
    std::discrete_distribution<size_t> pick;
    if (!active.empty()) {
      pick = std::discrete_distribution<size_t>(weights.begin(), weights.end());
    }
    std::bernoulli_distribution write_coin(writes_on ? options.write_fraction : 0.0);
    uint64_t lane_writes = 0;
    // The floor counts *attempts*, not successes: a phase whose every active
    // statement is still unservable must not spin a lane forever.
    uint64_t attempts = 0;
    while (!stop.load(std::memory_order_acquire) ||
           attempts < options.min_queries_per_lane) {
      ++attempts;
      const bool do_write = writes_on && (active.empty() || write_coin(rng));
      Clock::time_point t0 = Clock::now();
      Status failed;
      bool ran = false;
      if (do_write) {
        LogicalDml dml = options.make_write(lane_writes++, rng);
        PSE_LOCKDEP_SCOPE("ServeDuringMigration::writer");
        // Same latch discipline as the read path, then the router's write
        // mutex (rank 25) and table latches (rank 30) underneath — the
        // canonical ascending order.
        std::shared_lock<SharedMutex> schema_lock(db->schema_latch());
        std::shared_ptr<const PhysicalSchema> schema = serving->Get();
        DmlExecOptions dml_opts;
        dml_opts.vectorized = exec_options.vectorized;
        Status s = options.router->Execute(dml, *schema, dml_opts);
        if (!s.ok()) {
          if (s.IsBindError()) {
            // A planned write-unsafe window (writability cell kUnservable):
            // the statement is skipped, not failed — accounting parity with
            // unservable reads.
            ++r.unservable;
            ++r.unservable_writes;
            continue;
          }
          failed = s;
        } else {
          ran = true;
        }
        if (!ran) {
          ++r.errors;
          if (r.first_error.ok()) r.first_error = failed;
          continue;
        }
        ++r.writes;
        r.latencies_ms.push_back(MsSince(t0));
        continue;
      }
      const LogicalQuery& query = queries[active[pick(rng)]].query;
      {
        PSE_LOCKDEP_SCOPE("ServeDuringMigration::lane");
        // Catalog latch shared across rewrite+plan+execute; the snapshot is
        // taken under the same latch the migration publishes under, so it
        // always matches the physical catalog (file comment in serving.h).
        std::shared_lock<SharedMutex> schema_lock(db->schema_latch());
        std::shared_ptr<const PhysicalSchema> schema = serving->Get();
        Result<BoundQuery> bound = RewriteQuery(query, *schema);
        if (!bound.ok()) {
          if (bound.status().IsBindError()) {
            ++r.unservable;
            continue;
          }
          failed = bound.status();
        } else {
          DatabaseCatalogView view(db);
          Result<PlanPtr> plan = PlanQuery(*bound, view);
          if (!plan.ok()) {
            failed = plan.status();
          } else {
            Status s = ExecutePlan(**plan, db, exec_options).status();
            if (!s.ok()) {
              failed = s;
            } else {
              ran = true;
            }
          }
        }
      }
      if (!ran) {
        ++r.errors;
        if (r.first_error.ok()) r.first_error = failed;
        continue;
      }
      r.latencies_ms.push_back(MsSince(t0));
    }
  });

  ServeMetrics m;
  m.wall_ms = MsSince(window_start);
  std::vector<double> all;
  Status first_error;
  for (const LaneResult& r : results) {
    m.queries += r.latencies_ms.size() - r.writes;
    m.writes += r.writes;
    m.unservable += r.unservable;
    m.unservable_writes += r.unservable_writes;
    m.errors += r.errors;
    if (first_error.ok() && !r.first_error.ok()) first_error = r.first_error;
    all.insert(all.end(), r.latencies_ms.begin(), r.latencies_ms.end());
  }
  if (m.wall_ms > 0) {
    m.throughput_qps = static_cast<double>(m.queries + m.writes) / (m.wall_ms / 1000.0);
  }
  if (!all.empty()) {
    std::sort(all.begin(), all.end());
    m.p50_ms = Percentile(all, 0.50);
    m.p95_ms = Percentile(all, 0.95);
    m.p99_ms = Percentile(all, 0.99);
  }
  if (!migrate_status.ok()) return migrate_status;
  if (m.errors > 0) {
    return Status(first_error.code(),
                  "foreground session failed during migration: " + first_error.message() +
                      " (" + std::to_string(m.errors) + " errors)");
  }
  return m;
}

}  // namespace pse
