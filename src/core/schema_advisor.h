// SchemaAdvisor — the paper's future-work extension (Section VI): "the
// optimization of schema design for more general purpose, not under the
// limitation on object schema driven, but the best physical design of
// schema for system workload distribution and data statistic."
//
// Greedy hill-climbing over the same three basic operators: from a seed
// schema, repeatedly apply the operator (any legal split / combine / create)
// that most reduces C(S) = sum C_i * F_i under the given workload snapshot,
// until no operator improves it. Because the moves are exactly the paper's
// operators, the advisor's output is always reachable from the seed by a
// progressive migration — AdviseSchema composes directly with
// ComputeOperatorSet + LAA/GAA to plan the path to the recommended design.
#pragma once

#include <vector>

#include "analysis/interaction.h"
#include "core/operators.h"
#include "core/workload.h"
#include "engine/cost_cache.h"

namespace pse {

struct AdvisorOptions {
  /// Hill-climbing step limit (each step applies one operator).
  size_t max_steps = 64;
  /// Minimum relative improvement to keep climbing (guards oscillation on
  /// estimator noise).
  double min_improvement = 1e-6;
  /// Also propose CreateTable for workload-referenced attributes that the
  /// seed schema does not store yet.
  bool allow_creates = true;
  /// Interaction-analysis toggles; `analysis.advisor_query_relevance` scores
  /// each candidate operator by re-estimating only the queries whose support
  /// set intersects the attributes the operator moves (delta update), instead
  /// of re-costing the whole workload per candidate. Exact: the remaining
  /// queries' plans cannot change.
  AnalysisOptions analysis;
};

struct AdvisorStep {
  MigrationOperator op;
  double cost_before = 0;
  double cost_after = 0;
};

struct AdvisorResult {
  PhysicalSchema schema;          ///< the recommended design
  double initial_cost = 0;        ///< C(seed)
  double final_cost = 0;          ///< C(recommendation)
  std::vector<AdvisorStep> steps; ///< the improving operators, in order
  size_t candidates_evaluated = 0;
  /// Individual query-cost estimations performed while scoring candidates;
  /// with `analysis.advisor_query_relevance` this drops from
  /// candidates × queries to candidates × affected-queries.
  size_t queries_estimated = 0;
  /// Cost-cache activity of this run (all zeros when no cache was passed).
  CostCacheStats cache_stats;
  /// Execution lanes used for candidate scoring (1 = serial).
  size_t threads = 1;
  /// Wall-clock time of this advisory run, milliseconds.
  double wall_ms = 0;
  /// Write-safety penalty of the recommended design against the seed layout
  /// as the live version (analysis/writability.h). With
  /// `analysis.write_safety` every candidate is scored as C(S) + penalty, so
  /// initial_cost/final_cost include it; 0 when the knob is off.
  double write_penalty = 0;
};

/// Searches for the best physical design for (queries, freqs) reachable
/// from `seed`. The workload must be fully servable by the final design;
/// attributes it references that are missing from `seed` are added via
/// CreateTable when allow_creates is set (else the search fails).
Result<AdvisorResult> AdviseSchema(const PhysicalSchema& seed, const LogicalStats& stats,
                                   const std::vector<WorkloadQuery>& queries,
                                   const std::vector<double>& freqs,
                                   const AdvisorOptions& options = {});

}  // namespace pse
