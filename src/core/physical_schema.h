// Physical schema: one materialization of a LogicalSchema into tables.
//
// Each table has an *anchor entity* (the table holds one row per anchor-
// entity row; its primary key is the anchor's key) and a set of attributes,
// each functionally determined by the anchor key:
//   * the anchor's own attributes (a vertical fragment), and/or
//   * attributes of entities reachable over many-to-one FK chains whose FK
//     attributes are also stored in the table (denormalization).
//
// Invariants (checked by Validate):
//   1. every table stores its anchor's key attribute;
//   2. every non-key attribute (including FKs) is stored in exactly one
//      table across the schema;
//   3. a key attribute of entity E is stored in table T iff T is anchored at
//      E or T stores some non-key attribute of E;
//   4. for every stored attribute of entity E != anchor(T), the FK chain
//      anchor(T) -> E is stored in T as well.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "core/logical_schema.h"

namespace pse {

/// One physical table as an attribute fragment.
struct PhysicalTable {
  std::string name;
  EntityId anchor = kInvalidId;
  /// All stored attributes (keys, FKs, plain), sorted by AttrId.
  std::vector<AttrId> attrs;

  bool Contains(AttrId a) const;
};

/// \brief A set of physical tables over one LogicalSchema.
class PhysicalSchema {
 public:
  PhysicalSchema() = default;
  explicit PhysicalSchema(const LogicalSchema* logical) : logical_(logical) {}

  const LogicalSchema* logical() const { return logical_; }
  const std::vector<PhysicalTable>& tables() const { return tables_; }

  /// Adds a table from its anchor and NON-KEY attribute set; the needed key
  /// attributes are added automatically per the invariants. The resulting
  /// table still has to pass Validate() (chain FKs must be in the set).
  Status AddTable(const std::string& name, EntityId anchor,
                  const std::vector<AttrId>& nonkey_attrs);

  /// Checks all schema invariants.
  Status Validate() const;

  /// Index of the unique table storing non-key attribute `a`; NotFound when
  /// absent from this schema.
  Result<size_t> TableOfNonKeyAttr(AttrId a) const;
  /// Tables containing attribute `a` (multiple possible for key attrs).
  std::vector<size_t> TablesWithAttr(AttrId a) const;
  Result<size_t> TableByName(const std::string& name) const;

  /// Engine-level TableSchema for table `idx` (column per attribute, in
  /// AttrId order, named by attribute name; key = anchor key).
  TableSchema ToTableSchema(size_t idx) const;

  /// Display form listing every table.
  std::string ToString() const;

  /// Structural equality (same anchors + attr sets, names ignored), used to
  /// verify that applying all operators yields exactly the object schema.
  bool EquivalentTo(const PhysicalSchema& other) const;

  /// Mutators used by the migration operators.
  void RemoveTable(size_t idx) { tables_.erase(tables_.begin() + static_cast<long>(idx)); }
  void AddRawTable(PhysicalTable t);

  /// Computes the full attribute set (keys added) for an anchor + non-key
  /// attribute group.
  static std::vector<AttrId> CompleteAttrSet(const LogicalSchema& logical, EntityId anchor,
                                             const std::vector<AttrId>& nonkey_attrs);

 private:
  const LogicalSchema* logical_ = nullptr;
  std::vector<PhysicalTable> tables_;
};

}  // namespace pse
