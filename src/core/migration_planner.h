// LAA and GAA: the paper's two intermediate-schema selection algorithms.
//
// LAA (Algorithm 1) exhaustively scores every dependency-closed subset of
// the remaining operators against the *upcoming* phase's workload and
// applies the best — O(2^m) schema estimations per migration point.
//
// GAA (Section III.C) runs a genetic algorithm over assignment strings
// (gene g of operator o = "apply o at migration point g") whose evaluation
// function forward-scans all remaining phases with the predicted workload
// trend (Algorithm 2), optionally adding the data-movement I/O of each
// operator at its assigned point.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/interaction.h"
#include "core/cost_estimator.h"
#include "core/mapping.h"
#include "core/workload.h"
#include "engine/cost_cache.h"
#include "ga/genetic.h"

namespace pse {

/// Shared planning inputs at one migration point.
struct MigrationContext {
  const PhysicalSchema* current = nullptr;  ///< schema before this point
  const PhysicalSchema* object = nullptr;
  const OperatorSet* opset = nullptr;
  /// ops already applied in earlier points (size == opset->size()).
  std::vector<bool> applied;
  /// Predicted workload per phase: phase_freqs[p][q]. Phase indexes are
  /// global (0-based); planning at point p considers phases p..end.
  const std::vector<std::vector<double>>* phase_freqs = nullptr;
  /// Predicted data statistics per phase (size == phases, or 1 = static).
  const std::vector<LogicalStats>* phase_stats = nullptr;
  const std::vector<WorkloadQuery>* queries = nullptr;

  size_t num_phases() const { return phase_freqs->size(); }
  const LogicalStats& StatsAt(size_t phase) const {
    return phase_stats->size() == 1 ? (*phase_stats)[0]
                                    : (*phase_stats)[std::min(phase, phase_stats->size() - 1)];
  }
  /// Indices of not-yet-applied operators.
  std::vector<int> RemainingOps() const;
};

/// Rough data-movement I/O (pages read + written) of applying `op` when the
/// schema is `before` with statistics `stats`.
Result<double> EstimateOperatorIo(const MigrationOperator& op, const PhysicalSchema& before,
                                  const LogicalStats& stats);

// -- LAA --

/// One interference cluster's share of a pruned LAA run.
struct LaaClusterInfo {
  std::vector<int> ops;          ///< cluster members, topological order
  std::vector<int> chosen;       ///< the cluster-local winning subset
  double best_cost = 0;          ///< cluster-local cost (masked frequencies)
  size_t schemas_evaluated = 0;  ///< closed subsets enumerated in the cluster
};

struct LaaResult {
  std::vector<int> ops_to_apply;    ///< dependency-closed subset, topo order
  double best_cost = 0;             ///< estimated phase cost of the winner
  size_t schemas_evaluated = 0;     ///< schemas actually costed this run
  /// Dependency-closed subsets a brute-force sweep would cost — the paper's
  /// 2^m blow-up the interaction analysis avoids (== schemas_evaluated when
  /// pruning is off). Double: products of cluster counts can exceed 2^63.
  double schemas_exhaustive = 0;
  /// Cluster structure of the pruned run (empty when pruning is off).
  std::vector<LaaClusterInfo> clusters;
  /// Cost-cache activity of this run (all zeros when no cache was passed).
  CostCacheStats cache_stats;
  /// Execution lanes used for candidate costing (1 = serial).
  size_t threads = 1;
  /// Wall-clock time of this planning run, milliseconds.
  double wall_ms = 0;
  /// Write-safety penalty of the winning schema (analysis/writability.h);
  /// included in best_cost. 0 when AnalysisOptions::write_safety is off;
  /// +infinity when hard-reject left only rejected candidates.
  double write_penalty = 0;
};

/// Runs LAA at the migration point opening `current_phase`, scoring the
/// candidate schemas against the workload of `observed_phase` — what the
/// collector has measured so far. The paper's LAA adapts to the CURRENT
/// system status, so callers normally pass observed_phase = current_phase-1
/// (clamped); passing current_phase makes LAA clairvoyant (used by tests
/// and ablations).
///
/// With `analysis.prune_laa` (the default) the operator-interaction analysis
/// factorizes the enumeration into independent interference clusters — exact
/// (tests assert cost equality against brute force) and exponentially
/// cheaper, so `max_ops` guards the *largest cluster* instead of m and its
/// default is raised accordingly. With pruning off, the classic exhaustive
/// sweep runs and `max_ops` guards m itself.
Result<LaaResult> SelectOpsLaa(const MigrationContext& ctx, size_t current_phase,
                               size_t observed_phase, size_t max_ops = 30,
                               const AnalysisOptions& analysis = {});
/// Clairvoyant convenience overload (observed == upcoming).
inline Result<LaaResult> SelectOpsLaa(const MigrationContext& ctx, size_t current_phase) {
  return SelectOpsLaa(ctx, current_phase, current_phase);
}

// -- GAA --

struct GaaOptions {
  GaConfig ga;
  uint64_t seed = 12345;
  /// Recombination scheme: standard two-point crossover on assignment
  /// strings (default), or the paper's Fig 6 order-based recombination.
  bool use_order_crossover = false;
  /// Mutation: mixed segment-reversal + point (default) or point-only.
  bool point_mutation_only = false;
  /// Add EstimateOperatorIo of each op at its assigned point to the
  /// objective (the forward scan then also optimizes *when* to move data).
  bool include_migration_cost = false;
  double migration_io_weight = 1.0;
  /// Price queries that cannot run yet via the object schema (see
  /// CostOptions).
  double unservable_penalty = 3.0;
  /// Interaction-analysis toggles; `analysis.seed_gaa_from_clusters` seeds
  /// the GA population with the greedy trajectory of cluster-wise LAA
  /// (cluster-local optima per phase), accelerating convergence.
  AnalysisOptions analysis;
};

struct GaaResult {
  /// For each remaining op (in RemainingOps() order): the phase offset
  /// (0 = apply now) it is assigned to.
  std::vector<int> assignment;
  std::vector<int> remaining_ops;  ///< op indices matching `assignment`
  double best_cost = 0;            ///< estimated total cost of the plan
  size_t evaluations = 0;
  /// Cost-cache activity of this run (all zeros when no cache was passed).
  CostCacheStats cache_stats;
  /// Execution lanes used for candidate costing (1 = serial).
  size_t threads = 1;
  /// Wall-clock time of this planning run, milliseconds.
  double wall_ms = 0;
  /// Write-safety penalty summed over the plan's phase schemas (analysis/
  /// writability.h); included in best_cost. 0 when the knob is off.
  double write_penalty = 0;
  /// Ops assigned to offset 0, in dependency order — what to apply now.
  std::vector<int> ApplyNow() const;
};

/// Runs GAA at `current_phase`, planning all remaining phases.
Result<GaaResult> PlanGaa(const MigrationContext& ctx, size_t current_phase,
                          const GaaOptions& options);

/// Exhaustive global optimum over all c^m assignments (ablation baseline;
/// only feasible for tiny instances). Same output shape as GAA.
Result<GaaResult> PlanExhaustiveGlobal(const MigrationContext& ctx, size_t current_phase,
                                       const GaaOptions& options, size_t max_ops = 10);

/// Shared evaluation function (Algorithm 2): total cost of executing the
/// remaining phases under `assignment`. Exposed for tests and benches.
/// `estimator` optionally memoizes the per-phase workload costings (null =
/// uncached; results are identical either way).
Result<double> EvaluateAssignment(const MigrationContext& ctx, size_t current_phase,
                                  const std::vector<int>& remaining_ops,
                                  const std::vector<int>& assignment,
                                  const GaaOptions& options,
                                  CachedCostEstimator* estimator = nullptr);

}  // namespace pse
