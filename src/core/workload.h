// Workload model and snapshot cost estimation (Section III.B.3).
//
// A workload is a set of logical queries (old + new application versions)
// with per-phase frequencies. The cost of a schema for one phase is the
// paper's C(Schema) = sum_i C_i * F_i, with C_i the cost model's I/O
// estimate for query i rewritten onto that schema.
#pragma once

#include <vector>

#include "core/logical_query.h"
#include "core/physical_schema.h"

namespace pse {

/// One workload member.
struct WorkloadQuery {
  LogicalQuery query;
  bool is_old = true;  ///< written against source (true) or object schema

  WorkloadQuery() = default;
  WorkloadQuery(LogicalQuery q, bool old_flag) : query(std::move(q)), is_old(old_flag) {}
  WorkloadQuery Clone() const { return WorkloadQuery(query.Clone(), is_old); }
};

/// Options for snapshot cost estimation.
struct CostOptions {
  /// Schema used to price queries that cannot run on the candidate schema
  /// yet (e.g. they touch a new attribute whose CreateTable has not been
  /// applied); usually the object schema. Null = unservable queries are an
  /// error.
  const PhysicalSchema* fallback_schema = nullptr;
  /// Multiplier applied to the fallback cost of unservable queries (they
  /// must be served out-of-band, which is assumed more expensive).
  double unservable_penalty = 3.0;
};

/// Estimated I/O of one query on one schema (rewrite -> plan -> cost).
Result<double> EstimateQueryCost(const LogicalQuery& query, const PhysicalSchema& schema,
                                 const LogicalStats& stats);

/// C(Schema) = sum C_i * F_i for one phase. `freqs` indexes `queries`.
Result<double> EstimateWorkloadCost(const PhysicalSchema& schema, const LogicalStats& stats,
                                    const std::vector<WorkloadQuery>& queries,
                                    const std::vector<double>& freqs,
                                    const CostOptions& options = {});

/// The paper's CostValue: C(object) - C(candidate); larger means the
/// candidate is a bigger improvement over running on the object schema.
Result<double> CostValue(const PhysicalSchema& candidate, const PhysicalSchema& object,
                         const LogicalStats& stats, const std::vector<WorkloadQuery>& queries,
                         const std::vector<double>& freqs);

}  // namespace pse
