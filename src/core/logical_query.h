// LogicalQuery: a query expressed against logical *attributes*, independent
// of any physical schema. Old-version and new-version application queries
// are lifted into this form once (against the schema version they were
// written for); the rewriter (rewriter.h) then lowers them onto whatever
// intermediate schema is current — the paper's query rewriting component.
//
// Semantics: the query ranges over the rows of its *anchor entity*; every
// referenced attribute must belong to an entity reachable from the anchor
// over many-to-one FK chains (so each anchor row determines each attribute
// value). SQL queries whose FROM/JOIN structure follows FK joins lift
// exactly onto this model.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/logical_schema.h"
#include "core/physical_schema.h"
#include "engine/bound_query.h"

namespace pse {

/// One output column (expression over attribute names, optional aggregate).
struct LogicalSelectItem {
  ExprPtr expr;  // ColumnRefs are bare attribute names; null for COUNT(*)
  AggFunc agg = AggFunc::kNone;
  std::string name;

  LogicalSelectItem() = default;
  LogicalSelectItem(ExprPtr e, AggFunc a, std::string n)
      : expr(std::move(e)), agg(a), name(std::move(n)) {}
  LogicalSelectItem Clone() const {
    return LogicalSelectItem(expr ? expr->Clone() : nullptr, agg, name);
  }
};

/// \brief Physical-schema-independent query.
struct LogicalQuery {
  std::string name;  ///< display tag ("O1", "N7", ...)
  EntityId anchor = kInvalidId;
  std::vector<LogicalSelectItem> select;
  std::vector<ExprPtr> filters;   // ColumnRefs are bare attribute names
  std::vector<ExprPtr> group_by;  // likewise
  std::vector<OrderKey> order_by;
  std::optional<int64_t> limit;
  bool distinct = false;

  LogicalQuery() = default;
  LogicalQuery(LogicalQuery&&) = default;
  LogicalQuery& operator=(LogicalQuery&&) = default;
  LogicalQuery Clone() const;
  std::string ToString(const LogicalSchema& logical) const;
};

/// \brief Lifts a SQL SELECT into a LogicalQuery.
///
/// The SQL is bound against `reference` (the physical schema version the
/// query was written for — source for old queries, object for new ones).
/// Every join must follow an FK/key relationship or connect two fragments
/// of the same entity on their key; the lifter verifies this and infers the
/// anchor as the unique entity reaching all referenced entities.
Result<LogicalQuery> LiftSqlToLogical(const std::string& sql, const PhysicalSchema& reference,
                                      const std::string& query_name = "");

}  // namespace pse
