// Logical schema: the schema-version-independent description of the data
// that both the old and new application versions share.
//
// Entities (customer, order, item, ...) carry attributes; many-to-one
// relationships (order -> customer) are modeled as foreign-key attributes.
// A physical schema (physical_schema.h) is one particular materialization of
// this logical schema into tables; queries are written against *attributes*
// and survive any physical reorganization (the paper's query rewriting).
//
// Attribute names are globally unique (TPC-W style prefixes: c_name, o_date)
// so a physical column name identifies its logical attribute in any table.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "catalog/type.h"
#include "common/status.h"

namespace pse {

using EntityId = size_t;
using AttrId = size_t;
constexpr size_t kInvalidId = static_cast<size_t>(-1);

/// One logical attribute.
struct LogicalAttribute {
  std::string name;  ///< globally unique
  TypeId type = TypeId::kInt64;
  uint32_t avg_width = 0;  ///< average width for VARCHAR
  EntityId entity = kInvalidId;
  bool is_key = false;
  /// For foreign-key attributes: the referenced entity.
  std::optional<EntityId> references;
  /// True if this attribute exists only in the object schema (it must be
  /// introduced by a CreateTable operator during migration).
  bool is_new = false;
};

/// One logical entity.
struct LogicalEntity {
  std::string name;
  AttrId key = kInvalidId;
  std::vector<AttrId> attributes;  ///< includes the key and any FKs
};

/// \brief The attribute/entity/relationship universe.
class LogicalSchema {
 public:
  /// Adds an entity along with its key attribute (BIGINT by default; string
  /// keys are allowed for natural-key entities). Returns entity id.
  EntityId AddEntity(const std::string& name, const std::string& key_attr_name,
                     TypeId key_type = TypeId::kInt64, uint32_t key_width = 0);

  /// Adds a plain attribute; `is_new` marks object-schema-only attributes.
  Result<AttrId> AddAttribute(EntityId entity, const std::string& name, TypeId type,
                              uint32_t avg_width = 0, bool is_new = false);

  /// Adds a many-to-one foreign key attribute `entity -> target` (BIGINT).
  Result<AttrId> AddForeignKey(EntityId entity, const std::string& name, EntityId target);

  size_t num_entities() const { return entities_.size(); }
  size_t num_attributes() const { return attrs_.size(); }
  const LogicalEntity& entity(EntityId e) const { return entities_[e]; }
  const LogicalAttribute& attr(AttrId a) const { return attrs_[a]; }

  Result<EntityId> EntityByName(const std::string& name) const;
  Result<AttrId> AttrByName(const std::string& name) const;

  /// True if `from` reaches `to` through a chain of many-to-one FKs
  /// (or from == to).
  bool Reaches(EntityId from, EntityId to) const;

  /// The FK attributes along the (unique shortest) chain from -> to.
  /// Empty when from == to; NotFound when unreachable. When multiple chains
  /// exist the lexicographically-first shortest one is returned.
  Result<std::vector<AttrId>> FkPath(EntityId from, EntityId to) const;

  /// The unique entity among `entities` that reaches all the others, or
  /// NotFound. This is the natural anchor of an attribute group.
  Result<EntityId> CommonAnchor(const std::vector<EntityId>& entities) const;

 private:
  std::vector<LogicalEntity> entities_;
  std::vector<LogicalAttribute> attrs_;
};

/// Per-attribute statistics used to synthesize virtual-table statistics.
struct LogicalAttrStats {
  uint64_t num_distinct = 0;
  std::optional<int64_t> min;  ///< for BIGINT attributes
  std::optional<int64_t> max;
  double null_fraction = 0.0;
};

/// Snapshot of "data statistic" (the D in the paper): entity cardinalities
/// plus per-attribute stats. Changes across migration phases as data grows.
struct LogicalStats {
  std::vector<uint64_t> entity_rows;      ///< by EntityId
  std::vector<LogicalAttrStats> attrs;    ///< by AttrId

  void Resize(const LogicalSchema& schema) {
    entity_rows.resize(schema.num_entities(), 0);
    attrs.resize(schema.num_attributes());
  }
};

}  // namespace pse
