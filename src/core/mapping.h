// Operator-set calculation (Section III.B.1): derive, from the schema
// mapping between the source and object physical schemas, the minimal set of
// basic operators whose one-time application evolves source into object —
// plus the dependency DAG the paper leaves implicit (a combine cannot run
// before the splits/creates that isolate its input fragments).
#pragma once

#include <string>
#include <vector>

#include "core/operators.h"
#include "core/physical_schema.h"

namespace pse {

/// The derived operator set with dependencies.
struct OperatorSet {
  std::vector<MigrationOperator> ops;
  /// deps[i] = indexes of operators that must be applied before ops[i].
  std::vector<std::vector<int>> deps;

  size_t size() const { return ops.size(); }

  /// True if `subset` (indices into ops) together with `already_applied`
  /// satisfies every dependency of every member.
  bool IsClosed(const std::vector<int>& subset, const std::vector<bool>& already_applied) const;

  /// Indices in dependency-respecting order (input order preserved
  /// otherwise). InvalidArgument on a dependency cycle.
  Result<std::vector<int>> TopologicalOrder() const;

  std::string ToString(const LogicalSchema& logical) const;
};

/// \brief Computes the operator set transforming `source` into `object`.
///
/// Both schemas must be valid and share a LogicalSchema. Attributes marked
/// `is_new` may appear only in `object`; every other non-key attribute must
/// appear in both. Applying all returned operators (in any dependency-
/// respecting order) to `source` yields a schema structurally equivalent to
/// `object` — property-tested in tests/core/mapping_test.cc.
Result<OperatorSet> ComputeOperatorSet(const PhysicalSchema& source,
                                       const PhysicalSchema& object);

}  // namespace pse
