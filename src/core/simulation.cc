#include "core/simulation.h"

#include "core/migration_executor.h"
#include "core/serving.h"
#include "core/workload_collector.h"
#include "core/rewriter.h"
#include "core/virtual_catalog.h"
#include "engine/cost_model.h"
#include "engine/executor.h"
#include "engine/planner.h"

namespace pse {

const char* SituationName(Situation s) {
  switch (s) {
    case Situation::kOptSchema:
      return "Opt-Schema";
    case Situation::kProSchema:
      return "Pro-Schema";
    case Situation::kObjSchema:
      return "Obj-Schema";
  }
  return "?";
}

double SituationReport::OverallCost() const {
  double total = 0;
  for (const auto& p : phases) total += p.query_cost;
  return total;
}

double SituationReport::TotalMigrationIo() const {
  double total = final_migration_io;
  for (const auto& p : phases) total += p.migration_io;
  return total;
}

double SituationReport::TotalOnlineProbeIo() const {
  double total = 0;
  for (const auto& p : phases) total += p.online_probe_io;
  return total;
}

uint64_t SituationReport::TotalOnlineBatches() const {
  uint64_t total = 0;
  for (const auto& p : phases) total += p.online_batches;
  return total;
}

MigrationSimulation::MigrationSimulation(const PhysicalSchema* source,
                                         const PhysicalSchema* object,
                                         const std::vector<WorkloadQuery>* queries,
                                         std::vector<std::vector<double>> phase_freqs,
                                         const LogicalDatabase* data, SimulationConfig config)
    : source_(source),
      object_(object),
      queries_(queries),
      phase_freqs_(std::move(phase_freqs)),
      data_(data),
      config_(config) {
  if (config_.visible_rows.empty()) {
    phase_stats_.push_back(data_->ComputeStats());
  } else {
    for (const auto& visible : config_.visible_rows) {
      phase_stats_.push_back(data_->ComputeStatsPrefix(visible));
    }
  }
}

Result<double> MigrationSimulation::MeasureQuery(Database* db, const PhysicalSchema& schema,
                                                 const LogicalQuery& query,
                                                 const LogicalStats& stats) {
  Result<BoundQuery> bound = RewriteQuery(query, schema);
  if (!bound.ok()) {
    if (bound.status().IsBindError()) {
      // Not servable yet (new attribute missing): price via the object
      // schema with the configured penalty.
      PSE_ASSIGN_OR_RETURN(double est, EstimateQueryCost(query, *object_, stats));
      return config_.unservable_penalty * est;
    }
    return bound.status();
  }
  if (!config_.measure_actual) {
    VirtualSchemaCatalog catalog(&schema, &stats);
    PSE_ASSIGN_OR_RETURN(PlanPtr plan, PlanQuery(*bound, catalog));
    CostModel model(&catalog);
    PSE_ASSIGN_OR_RETURN(CostEstimate est, model.Estimate(*plan));
    return est.io_pages;
  }
  DatabaseCatalogView view(db);
  PSE_ASSIGN_OR_RETURN(PlanPtr plan, PlanQuery(*bound, view));
  PSE_RETURN_NOT_OK(db->pool()->EvictAll());
  uint64_t before = db->TotalIo();
  ExecOptions eo = ExecOptions::Default();
  eo.vectorized = eo.vectorized || config_.vectorized_execution;
  PSE_RETURN_NOT_OK(ExecutePlan(*plan, db, eo).status());
  return static_cast<double>(db->TotalIo() - before);
}

Result<double> MigrationSimulation::MeasurePhase(Database* db, const PhysicalSchema& schema,
                                                 const std::vector<double>& freqs,
                                                 const LogicalStats& stats) {
  double total = 0;
  for (size_t q = 0; q < queries_->size(); ++q) {
    if (freqs[q] <= 0) continue;
    PSE_ASSIGN_OR_RETURN(double io, MeasureQuery(db, schema, (*queries_)[q].query, stats));
    total += io * freqs[q];
  }
  return total;
}

Result<SituationReport> MigrationSimulation::Run(Situation situation) {
  SituationReport report;
  report.situation = situation;
  const size_t num_phases = phase_freqs_.size();

  if (situation == Situation::kOptSchema) {
    // Two coexisting systems; each query runs on its native schema. The
    // synchronization overhead the paper's introduction mentions is NOT
    // charged — Opt is the idealized lower bound.
    Database source_db(config_.buffer_pool_pages);
    Database object_db(config_.buffer_pool_pages);
    const bool grows = !config_.visible_rows.empty();
    if (grows) {
      PSE_RETURN_NOT_OK(data_->MaterializePrefix(&source_db, *source_, config_.visible_rows[0]));
      PSE_RETURN_NOT_OK(data_->MaterializePrefix(&object_db, *object_, config_.visible_rows[0]));
    } else {
      PSE_RETURN_NOT_OK(data_->Materialize(&source_db, *source_));
      PSE_RETURN_NOT_OK(data_->Materialize(&object_db, *object_));
    }
    for (size_t p = 0; p < num_phases; ++p) {
      if (grows && p > 0) {
        PSE_RETURN_NOT_OK(data_->MaterializeRange(&source_db, *source_,
                                                  config_.visible_rows[p - 1],
                                                  config_.visible_rows[p]));
        PSE_RETURN_NOT_OK(data_->MaterializeRange(&object_db, *object_,
                                                  config_.visible_rows[p - 1],
                                                  config_.visible_rows[p]));
      }
      PhaseReport phase;
      for (size_t q = 0; q < queries_->size(); ++q) {
        if (phase_freqs_[p][q] <= 0) continue;
        const WorkloadQuery& wq = (*queries_)[q];
        Database* db = wq.is_old ? &source_db : &object_db;
        const PhysicalSchema& schema = wq.is_old ? *source_ : *object_;
        PSE_ASSIGN_OR_RETURN(double io, MeasureQuery(db, schema, wq.query, StatsAt(p)));
        phase.query_cost += io * phase_freqs_[p][q];
      }
      phase.schema_desc = "source + object (dual)";
      report.phases.push_back(std::move(phase));
    }
    return report;
  }

  if (situation == Situation::kObjSchema) {
    Database db(config_.buffer_pool_pages);
    const bool grows = !config_.visible_rows.empty();
    if (grows) {
      PSE_RETURN_NOT_OK(data_->MaterializePrefix(&db, *object_, config_.visible_rows[0]));
    } else {
      PSE_RETURN_NOT_OK(data_->Materialize(&db, *object_));
    }
    for (size_t p = 0; p < num_phases; ++p) {
      if (grows && p > 0) {
        PSE_RETURN_NOT_OK(data_->MaterializeRange(&db, *object_, config_.visible_rows[p - 1],
                                                  config_.visible_rows[p]));
      }
      PhaseReport phase;
      PSE_ASSIGN_OR_RETURN(phase.query_cost,
                           MeasurePhase(&db, *object_, phase_freqs_[p], StatsAt(p)));
      phase.schema_desc = "object";
      report.phases.push_back(std::move(phase));
    }
    return report;
  }

  // Pro-Schema: progressive migration.
  if (config_.serve_sessions > 0 && !config_.measure_actual) {
    return Status::InvalidArgument(
        "serve_sessions requires measure_actual (the sessions execute real queries)");
  }
  Database db(config_.buffer_pool_pages);
  const bool grows = !config_.visible_rows.empty();
  if (grows) {
    PSE_RETURN_NOT_OK(data_->MaterializePrefix(&db, *source_, config_.visible_rows[0]));
  } else {
    PSE_RETURN_NOT_OK(data_->Materialize(&db, *source_));
  }
  PhysicalSchema current = *source_;
  PSE_ASSIGN_OR_RETURN(OperatorSet opset, ComputeOperatorSet(*source_, *object_));
  std::vector<bool> applied(opset.size(), false);
  MigrationExecutor executor(&db, data_);
  last_planner_evaluations_ = 0;

  MigrationContext ctx;
  ctx.object = object_;
  ctx.opset = &opset;
  ctx.phase_freqs = &phase_freqs_;
  ctx.phase_stats = &phase_stats_;
  ctx.queries = queries_;

  GaaResult committed_gaa;  // used when replan_each_point is false
  bool have_gaa_plan = false;
  WorkloadCollector collector(queries_->size());

  std::vector<std::vector<double>> planning_freqs = phase_freqs_;
  for (size_t p = 0; p < num_phases; ++p) {
    if (grows) {
      if (p > 0) {
        PSE_RETURN_NOT_OK(data_->MaterializeRange(&db, current, config_.visible_rows[p - 1],
                                                  config_.visible_rows[p]));
      }
      executor.set_visible_rows(config_.visible_rows[p]);
    }
    PhaseReport phase;
    ctx.current = &current;
    ctx.applied = applied;

    if (config_.forecast_from_observations && p > 0) {
      // Replace the unseen future (phases p..end) with the collector's
      // extrapolation of the phases measured so far.
      auto forecast = collector.Forecast(num_phases - p);
      if (forecast.ok()) {
        for (size_t f = 0; f < forecast->size(); ++f) {
          planning_freqs[p + f] = (*forecast)[f];
        }
      }
      ctx.phase_freqs = &planning_freqs;
    } else {
      ctx.phase_freqs = &phase_freqs_;
    }

    // --- migration point: choose and apply operators ---
    std::vector<int> to_apply;
    if (config_.planner == PlannerKind::kLaa) {
      // The paper's LAA adapts to the *measured* system status: at the
      // migration point opening phase p the collector has seen phase p-1.
      size_t observed = p == 0 ? 0 : p - 1;
      PSE_ASSIGN_OR_RETURN(LaaResult laa,
                           SelectOpsLaa(ctx, p, observed, config_.laa_max_ops));
      last_planner_evaluations_ += laa.schemas_evaluated;
      to_apply = laa.ops_to_apply;
    } else {
      GaaOptions gaa = config_.gaa;
      gaa.unservable_penalty = config_.unservable_penalty;
      if (config_.replan_each_point || !have_gaa_plan) {
        PSE_ASSIGN_OR_RETURN(GaaResult plan, PlanGaa(ctx, p, gaa));
        last_planner_evaluations_ += plan.evaluations;
        committed_gaa = std::move(plan);
        have_gaa_plan = true;
        to_apply = committed_gaa.ApplyNow();
      } else {
        // Follow the committed plan: ops assigned to offset (p - plan time).
        to_apply.clear();
        for (size_t i = 0; i < committed_gaa.assignment.size(); ++i) {
          int op = committed_gaa.remaining_ops[i];
          if (!applied[static_cast<size_t>(op)] &&
              committed_gaa.assignment[i] == static_cast<int>(p)) {
            to_apply.push_back(op);
          }
        }
      }
      // Dependency order.
      PSE_ASSIGN_OR_RETURN(std::vector<int> topo, opset.TopologicalOrder());
      std::vector<int> ordered;
      for (int i : topo) {
        if (std::find(to_apply.begin(), to_apply.end(), i) != to_apply.end()) {
          ordered.push_back(i);
        }
      }
      to_apply = ordered;
    }
    if (config_.serve_sessions > 0) {
      // Concurrent serving: real foreground sessions execute this phase's
      // query mix on worker threads while the operators apply. Each
      // operator's post-op schema is published to the sessions from the
      // executor's exclusive-latch quiesce window, so a session always
      // plans against exactly what the catalog holds. Migration I/O is
      // approximate here (foreground and migration share the physical
      // counters); the single-threaded probe mode keeps the exact numbers.
      ServingSchema serving(current);
      MigrationOptions mo;
      mo.batch_rows = config_.migration_batch_rows;
      mo.batch_io_budget = config_.migration_io_budget;
      mo.on_batch = [&phase](const MigrationBatchEvent&) -> Status {
        ++phase.online_batches;
        return Status::OK();
      };
      mo.on_publish = [&serving](const PhysicalSchema& s) { serving.Publish(s); };
      executor.set_options(std::move(mo));
      ServeOptions so;
      so.sessions = config_.serve_sessions;
      so.min_queries_per_lane = config_.serve_min_queries;
      so.seed = config_.serve_seed + p;
      so.vectorized = config_.vectorized_execution;
      uint64_t mig_io = 0;
      auto migrate = [&]() -> Status {
        for (int op : to_apply) {
          auto io = executor.Apply(opset.ops[static_cast<size_t>(op)], &current);
          if (!io.ok()) return io.status();
          mig_io += *io;
          applied[static_cast<size_t>(op)] = true;
        }
        return Status::OK();
      };
      PSE_ASSIGN_OR_RETURN(ServeMetrics sm,
                           ServeDuringMigration(&db, &serving, *queries_, phase_freqs_[p],
                                                so, migrate));
      phase.migration_io += static_cast<double>(mig_io);
      phase.serve_queries = sm.queries;
      phase.serve_unservable = sm.unservable;
      phase.serve_wall_ms = sm.wall_ms;
      phase.serve_throughput_qps = sm.throughput_qps;
      phase.serve_p50_ms = sm.p50_ms;
      phase.serve_p95_ms = sm.p95_ms;
      phase.serve_p99_ms = sm.p99_ms;
      // Detach the hooks (they capture this iteration's locals); batch
      // sizing stays in effect for the forced completion.
      MigrationOptions detached;
      detached.batch_rows = config_.migration_batch_rows;
      detached.batch_io_budget = config_.migration_io_budget;
      executor.set_options(std::move(detached));
      phase.ops_applied = to_apply;
      phase.schema_desc = std::to_string(current.tables().size()) + " tables";

      PSE_ASSIGN_OR_RETURN(phase.query_cost,
                           MeasurePhase(&db, current, phase_freqs_[p], StatsAt(p)));
      report.phases.push_back(std::move(phase));
      for (size_t q = 0; q < queries_->size(); ++q) {
        PSE_RETURN_NOT_OK(collector.Record(q, phase_freqs_[p][q]));
      }
      collector.CloseWindow();
      continue;
    }

    // Online mode: between batches, run one of the phase's queries against
    // the still-current schema (source tables stay live until the copy is
    // durable), warm-cache, the way foreground traffic sees an online
    // schema change. Probe I/O is tracked separately from migration I/O.
    std::vector<size_t> probe_queries;
    size_t next_probe = 0;
    if (config_.online_migration) {
      for (size_t q = 0; q < queries_->size(); ++q) {
        if (phase_freqs_[p][q] > 0) probe_queries.push_back(q);
      }
      MigrationOptions mo;
      mo.batch_rows = config_.migration_batch_rows;
      mo.batch_io_budget = config_.migration_io_budget;
      mo.on_batch = [&](const MigrationBatchEvent&) -> Status {
        ++phase.online_batches;
        if (probe_queries.empty() || !config_.measure_actual) return Status::OK();
        const WorkloadQuery& wq = (*queries_)[probe_queries[next_probe % probe_queries.size()]];
        ++next_probe;
        Result<BoundQuery> bound = RewriteQuery(wq.query, current);
        if (!bound.ok()) {
          // Queries not yet servable mid-migration are simply skipped.
          if (bound.status().IsBindError()) return Status::OK();
          return bound.status();
        }
        DatabaseCatalogView view(&db);
        PSE_ASSIGN_OR_RETURN(PlanPtr plan, PlanQuery(*bound, view));
        uint64_t before = db.TotalIo();
        ExecOptions eo = ExecOptions::Default();
        eo.vectorized = eo.vectorized || config_.vectorized_execution;
        PSE_RETURN_NOT_OK(ExecutePlan(*plan, &db, eo).status());
        phase.online_probe_io += static_cast<double>(db.TotalIo() - before);
        ++phase.online_probes;
        return Status::OK();
      };
      executor.set_options(std::move(mo));
    }
    for (int op : to_apply) {
      PSE_ASSIGN_OR_RETURN(uint64_t io,
                           executor.Apply(opset.ops[static_cast<size_t>(op)], &current));
      phase.migration_io += static_cast<double>(io);
      applied[static_cast<size_t>(op)] = true;
    }
    if (config_.online_migration) {
      // The hook captures this iteration's locals; detach it before they go
      // out of scope (batch sizing stays in effect for forced completion).
      MigrationOptions mo;
      mo.batch_rows = config_.migration_batch_rows;
      mo.batch_io_budget = config_.migration_io_budget;
      executor.set_options(std::move(mo));
    }
    phase.ops_applied = to_apply;
    phase.schema_desc = std::to_string(current.tables().size()) + " tables";

    // --- measure the phase under the current schema ---
    PSE_ASSIGN_OR_RETURN(phase.query_cost,
                         MeasurePhase(&db, current, phase_freqs_[p], StatsAt(p)));
    report.phases.push_back(std::move(phase));

    // The collector tallies what actually ran during this phase.
    for (size_t q = 0; q < queries_->size(); ++q) {
      PSE_RETURN_NOT_OK(collector.Record(q, phase_freqs_[p][q]));
    }
    collector.CloseWindow();
  }

  // Forced completion: whatever is left is applied after the last phase so
  // the system ends exactly on the object schema. ApplyAll reports partial
  // progress — if a mid-sequence operator fails, the I/O already spent is
  // still accounted in the report and named in the error.
  PSE_ASSIGN_OR_RETURN(std::vector<int> topo, opset.TopologicalOrder());
  std::vector<MigrationOperator> remaining;
  for (int i : topo) {
    if (!applied[static_cast<size_t>(i)]) {
      remaining.push_back(opset.ops[static_cast<size_t>(i)]);
      applied[static_cast<size_t>(i)] = true;
    }
  }
  MigrationProgress completion;
  auto final_io = executor.ApplyAll(remaining, &current, &completion);
  report.final_migration_io += static_cast<double>(completion.io);
  if (!final_io.ok()) {
    const Status& s = final_io.status();
    return Status(s.code(), "forced completion failed: " + s.message());
  }
  if (!current.EquivalentTo(*object_)) {
    return Status::Internal("progressive migration did not reach the object schema");
  }
  return report;
}

}  // namespace pse
