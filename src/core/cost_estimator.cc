#include "core/cost_estimator.h"

#include <algorithm>

#include "analysis/interaction.h"

namespace pse {

CachedCostEstimator::CachedCostEstimator(const std::vector<WorkloadQuery>* queries,
                                         const LogicalSchema* logical, QueryCostCache* cache)
    : queries_(queries), cache_(cache) {
  if (cache_ == nullptr || queries_ == nullptr || logical == nullptr) {
    cache_ = nullptr;  // incomplete inputs: degrade to the uncached path
    return;
  }
  support_.reserve(queries_->size());
  key_prefix_.reserve(queries_->size());
  for (size_t q = 0; q < queries_->size(); ++q) {
    support_.push_back(QuerySupportAttrs((*queries_)[q].query, *logical));
    // The prefix pins query identity (index + name) so two workloads sharing
    // one cache can never alias, even at equal support layouts.
    std::string prefix = "q";
    prefix += std::to_string(q);
    prefix += "|";
    prefix += (*queries_)[q].query.name;
    prefix += "|";
    key_prefix_.push_back(std::move(prefix));
  }
}

std::string CachedCostEstimator::StatsToken(const LogicalStats& stats) {
  std::lock_guard<std::mutex> lock(stats_fp_mu_);
  for (const auto& [ptr, token] : stats_tokens_) {
    if (ptr == &stats) return token;
  }
  std::string token = "s";
  token += std::to_string(StatsFingerprint(stats));
  token += "|";
  stats_tokens_.emplace_back(&stats, token);
  return token;
}

Result<double> CachedCostEstimator::QueryCost(size_t q, const PhysicalSchema& schema,
                                              const LogicalStats& stats) {
  if (queries_ == nullptr || q >= queries_->size()) {
    return Status::InvalidArgument("query index out of range");
  }
  const LogicalQuery& query = (*queries_)[q].query;
  if (cache_ == nullptr) return EstimateQueryCost(query, schema, stats);

  std::string key = key_prefix_[q] + StatsToken(stats) + LayoutKey(support_[q], schema);
  uint64_t fp = QueryCostCache::Fingerprint(key);
  if (std::optional<QueryCostCache::Outcome> hit = cache_->Lookup(fp, key)) {
    if (hit->bind_error) {
      return Status::BindError("query '" + query.name +
                               "' does not bind on this layout (cached)");
    }
    return hit->cost;
  }
  Result<double> cost = EstimateQueryCost(query, schema, stats);
  if (cost.ok()) {
    cache_->Insert(fp, key, {*cost, /*bind_error=*/false});
    return cost;
  }
  if (cost.status().IsBindError()) {
    // Unservability is a property of the layout too — memoize it so the
    // fallback path stops re-deriving the same bind failure.
    cache_->Insert(fp, key, {0.0, /*bind_error=*/true});
  }
  return cost;  // non-bind errors are not cached (should not recur)
}

Result<double> CachedCostEstimator::WorkloadCost(const PhysicalSchema& schema,
                                                 const LogicalStats& stats,
                                                 const std::vector<double>& freqs,
                                                 const CostOptions& options) {
  if (queries_ == nullptr) return Status::InvalidArgument("estimator has no workload");
  if (freqs.size() != queries_->size()) {
    return Status::InvalidArgument("frequency vector does not match query count");
  }
  if (std::none_of(freqs.begin(), freqs.end(), [](double f) { return f > 0; })) {
    return 0.0;  // silent phase: nothing to estimate (mirrors the free function)
  }
  double total = 0;
  for (size_t i = 0; i < queries_->size(); ++i) {
    if (freqs[i] <= 0) continue;
    Result<double> cost = QueryCost(i, schema, stats);
    if (!cost.ok()) {
      if (cost.status().IsBindError() && options.fallback_schema != nullptr) {
        PSE_ASSIGN_OR_RETURN(double fb, QueryCost(i, *options.fallback_schema, stats));
        total += options.unservable_penalty * fb * freqs[i];
        continue;
      }
      return cost.status();
    }
    total += *cost * freqs[i];
  }
  return total;
}

std::vector<Result<double>> ParallelCostEstimator::CostAll(
    size_t n, const std::function<Result<PhysicalSchema>(size_t)>& schema_at,
    const LogicalStats& stats, const std::vector<double>& freqs, const CostOptions& options) {
  std::vector<Result<double>> out(n, Result<double>(Status::Internal("candidate not costed")));
  auto cost_one = [&](size_t i) {
    Result<PhysicalSchema> schema = schema_at(i);
    if (!schema.ok()) {
      out[i] = schema.status();
      return;
    }
    out[i] = estimator_->WorkloadCost(*schema, stats, freqs, options);
  };
  if (pool_ == nullptr) {
    for (size_t i = 0; i < n; ++i) cost_one(i);
  } else {
    pool_->ParallelFor(n, cost_one);
  }
  return out;
}

}  // namespace pse
