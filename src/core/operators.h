// The paper's three basic migration operators (Section III.A).
//
// Operators are *content-addressed*: because non-key attributes always
// partition across tables, "the table storing attribute X" is unambiguous in
// every intermediate schema, so an operator identifies its operand tables by
// representative attributes rather than by (unstable) table names. Applying
// an operator to a PhysicalSchema is purely structural ("virtually listed"
// in the paper's words); the MigrationExecutor performs the matching data
// movement on a real Database.
#pragma once

#include <string>
#include <vector>

#include "core/physical_schema.h"

namespace pse {

enum class OperatorKind { kCreateTable, kSplitTable, kCombineTable };

/// \brief One schema-evolution step.
struct MigrationOperator {
  OperatorKind kind = OperatorKind::kCreateTable;
  /// Stable id; also used to derive deterministic names of result tables.
  int id = 0;

  // kCreateTable: introduce `create_attrs` (object-only attributes of
  // `create_entity`) as a fresh fragment keyed by the entity key. The
  // functional dependency key(entity) -> attrs is the paper's precondition.
  EntityId create_entity = kInvalidId;
  std::vector<AttrId> create_attrs;

  // kSplitTable: split the table containing `split_moved` (all co-located)
  // into (rest, moved); the moved fragment is anchored at
  // `split_moved_anchor`. The shared key column materialized on both sides
  // is the paper's created reference.
  std::vector<AttrId> split_moved;
  EntityId split_moved_anchor = kInvalidId;

  // kCombineTable: merge the table containing `combine_left_rep` with the
  // table containing `combine_right_rep` along the FK/key reference implied
  // by their anchors.
  AttrId combine_left_rep = kInvalidId;
  AttrId combine_right_rep = kInvalidId;

  /// Human-readable description ("Split(item: i_title | i_cost)" etc).
  std::string ToString(const LogicalSchema& logical) const;
};

/// Deterministic name for the table produced by an operator.
std::string OperatorResultName(const MigrationOperator& op, const LogicalSchema& logical,
                               bool split_right_side = false);

/// \brief Applies `op` to `schema` in place.
///
/// Fails (leaving schema untouched on precondition errors) when:
///   * create: some create_attr already stored, or no table carries the
///     entity's key values (needed for data loading);
///   * split: moved attrs not co-located, or the split would empty a side,
///     or a side would lose chain FKs it still needs;
///   * combine: sides not distinct tables, or neither anchor reaches the
///     other, or the reference FK chain is not stored on the many side.
Status ApplyOperator(const MigrationOperator& op, PhysicalSchema* schema);

/// Applies a sequence, stopping at the first error.
Status ApplyOperators(const std::vector<MigrationOperator>& ops, PhysicalSchema* schema);

}  // namespace pse
