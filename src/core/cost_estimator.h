// Memoized + parallel workload costing: the shared engine under SelectOpsLaa,
// PlanGaa, and AdviseSchema.
//
// CachedCostEstimator mirrors EstimateQueryCost / EstimateWorkloadCost
// semantics exactly (including fallback pricing of unservable queries) while
// memoizing each per-query estimate in a caller-owned QueryCostCache keyed by
// the query's layout fingerprint (analysis/interaction.h LayoutKey): the
// canonical serialization of just the tables storing the query's support
// attributes, plus a content hash of the statistics snapshot. Because a
// query's rewrite/plan/cost depends only on those tables (DESIGN.md §12/§13),
// candidate schemas that agree on them share one cached result — across
// enumeration subsets, GA generations, and migration points — and cached
// values are bit-identical to recomputation (the cache stores what the real
// estimator returned).
//
// ParallelCostEstimator fans independent candidate-schema costings across a
// ThreadPool. Each estimation already uses per-call scratch state (rewrite ->
// plan -> cost allocate locally; the engine is single-threaded by design), so
// the only shared mutable state is the mutex-guarded cache. Determinism:
// results land in index-addressed slots and callers reduce serially in
// enumeration order, so the parallel path picks the same winner as the
// serial one, ties included.
#pragma once

#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/workload.h"
#include "engine/cost_cache.h"

namespace pse {

/// \brief Workload costing with optional per-query memoization.
///
/// Thread-safe: QueryCost/WorkloadCost may be called concurrently (the cache
/// and the stats-fingerprint memo are mutex-guarded; everything else is
/// read-only after construction). The queries, logical schema, cache, and
/// every LogicalStats snapshot passed in must outlive the estimator and stay
/// unmodified while it is in use.
class CachedCostEstimator {
 public:
  /// `cache` may be null: the estimator then forwards to the uncached free
  /// functions, so planners need only one code path.
  CachedCostEstimator(const std::vector<WorkloadQuery>* queries, const LogicalSchema* logical,
                      QueryCostCache* cache);

  /// Memoized EstimateQueryCost for query index `q`.
  Result<double> QueryCost(size_t q, const PhysicalSchema& schema, const LogicalStats& stats);

  /// Memoized EstimateWorkloadCost: C(Schema) = sum C_i * F_i with the same
  /// fallback/penalty semantics and the same summation order as the free
  /// function (options.cache/estimator fields are ignored — this *is* the
  /// cached path).
  Result<double> WorkloadCost(const PhysicalSchema& schema, const LogicalStats& stats,
                              const std::vector<double>& freqs, const CostOptions& options);

  QueryCostCache* cache() const { return cache_; }
  bool caching() const { return cache_ != nullptr; }

 private:
  /// Key token ("s<fingerprint>|") of a stats snapshot's content hash,
  /// memoized by address (snapshots are caller-owned and immutable for the
  /// estimator's lifetime). Returned by value: the memo vector may grow
  /// concurrently.
  std::string StatsToken(const LogicalStats& stats);

  const std::vector<WorkloadQuery>* queries_;
  QueryCostCache* cache_;
  /// Per-query support sets + cache-key prefixes (only filled when caching).
  std::vector<std::set<AttrId>> support_;
  std::vector<std::string> key_prefix_;

  std::mutex stats_fp_mu_;
  std::vector<std::pair<const LogicalStats*, std::string>> stats_tokens_;
};

/// \brief Deterministic parallel fan-out of candidate-schema costing.
class ParallelCostEstimator {
 public:
  /// `pool` may be null (serial). The estimator must outlive this object.
  ParallelCostEstimator(CachedCostEstimator* estimator, ThreadPool* pool)
      : estimator_(estimator), pool_(pool) {}

  /// Costs `n` candidates: result[i] = WorkloadCost(schema_at(i), ...), with
  /// schema_at invoked inside the worker (candidate materialization is part
  /// of the fanned-out work). Results are positional, so any serial
  /// reduction over them is independent of worker scheduling.
  std::vector<Result<double>> CostAll(size_t n,
                                      const std::function<Result<PhysicalSchema>(size_t)>& schema_at,
                                      const LogicalStats& stats,
                                      const std::vector<double>& freqs,
                                      const CostOptions& options);

  /// Execution lanes used by CostAll (1 when no pool was given).
  size_t threads() const { return pool_ == nullptr ? 1 : pool_->num_threads(); }

 private:
  CachedCostEstimator* estimator_;
  ThreadPool* pool_;
};

}  // namespace pse
