#include "core/migration_planner.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <map>

#include "analysis/verifier.h"
#include "analysis/writability.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/virtual_catalog.h"
#include "engine/cost_model.h"

namespace pse {

namespace {

/// Cheap static gate run before any candidate costing: operator-set
/// well-formedness only (arity, cycles, dangling references, one clean
/// symbolic replay of the remaining operators, convergence to the object
/// schema). Preservation subset enumeration and workload lint are the
/// callers' concern (VerifyMigration with full options).
Status GateContext(const MigrationContext& ctx) {
  VerifyOptions gate;
  gate.check_preservation = false;
  gate.check_workload = false;
  return VerifyContext(ctx, gate).ToStatus();
}

}  // namespace

std::vector<int> MigrationContext::RemainingOps() const {
  std::vector<int> out;
  for (size_t i = 0; i < opset->size(); ++i) {
    if (!applied[i]) out.push_back(static_cast<int>(i));
  }
  return out;
}

namespace {

/// Winner of one closed-subset sweep (brute force over all remaining ops, or
/// one cluster's powerset).
struct SweepOutcome {
  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<int> best_subset;
  size_t evaluated = 0;
};

/// Enumerates the dependency-closed subsets of `ops` in ascending-mask order
/// and costs them in index-addressed batches (materialize + cost fan out
/// across the pool; memory stays bounded). The reduction is serial and keeps
/// the exhaustive sweep's tie rule — on equal cost the later (larger, more
/// progressed) subset wins — so scheduling cannot change the winner.
/// `extra_cost` (optional) prices each candidate schema beyond its workload
/// cost — the write-safety penalty; it is evaluated inside the fan-out but
/// lands in an index-addressed slot, so determinism is unaffected.
Result<SweepOutcome> SweepClosedSubsets(const MigrationContext& ctx, const std::vector<int>& ops,
                                        const LogicalStats& stats,
                                        const std::vector<double>& freqs,
                                        const CostOptions& cost_options,
                                        ParallelCostEstimator* parallel,
                                        const std::function<double(const PhysicalSchema&)>*
                                            extra_cost) {
  constexpr size_t kBatch = 4096;
  const size_t k = ops.size();
  SweepOutcome out;
  // One topological sort serves every candidate (ApplySubset would recompute
  // it per subset — measurable across a 2^m sweep).
  PSE_ASSIGN_OR_RETURN(std::vector<int> topo, ctx.opset->TopologicalOrder());
  auto apply = [&](const std::vector<int>& subset) -> Result<PhysicalSchema> {
    PhysicalSchema schema = *ctx.current;
    std::vector<bool> in_subset(ctx.opset->size(), false);
    for (int i : subset) in_subset[static_cast<size_t>(i)] = true;
    for (int i : topo) {
      if (in_subset[static_cast<size_t>(i)]) {
        PSE_RETURN_NOT_OK(ApplyOperator(ctx.opset->ops[static_cast<size_t>(i)], &schema));
      }
    }
    return schema;
  };
  std::vector<std::vector<int>> batch;
  batch.reserve(std::min(kBatch, size_t{1} << std::min<size_t>(k, 12)));
  auto flush = [&]() -> Status {
    if (batch.empty()) return Status::OK();
    std::vector<double> extra(batch.size(), 0.0);
    std::vector<Result<double>> costs = parallel->CostAll(
        batch.size(),
        [&](size_t i) {
          Result<PhysicalSchema> schema = apply(batch[i]);
          if (extra_cost != nullptr && schema.ok()) extra[i] = (*extra_cost)(*schema);
          return schema;
        },
        stats, freqs, cost_options);
    for (size_t i = 0; i < batch.size(); ++i) {
      if (!costs[i].ok()) return costs[i].status();
      ++out.evaluated;
      // Paper's Algorithm 1 uses Min >= TempCost: on ties, the later subset
      // wins, pushing the migration forward.
      if (*costs[i] + extra[i] <= out.best_cost) {
        out.best_cost = *costs[i] + extra[i];
        out.best_subset = std::move(batch[i]);
      }
    }
    batch.clear();
    return Status::OK();
  };
  for (uint64_t mask = 0; mask < (1ull << k); ++mask) {
    std::vector<int> subset;
    for (size_t b = 0; b < k; ++b) {
      if (mask & (1ull << b)) subset.push_back(ops[b]);
    }
    if (!ctx.opset->IsClosed(subset, ctx.applied)) continue;
    batch.push_back(std::move(subset));
    if (batch.size() == kBatch) PSE_RETURN_NOT_OK(flush());
  }
  PSE_RETURN_NOT_OK(flush());
  return out;
}

}  // namespace

Result<double> EstimateOperatorIo(const MigrationOperator& op, const PhysicalSchema& before,
                                  const LogicalStats& stats) {
  VirtualSchemaCatalog catalog(&before, &stats);
  const LogicalSchema& L = *before.logical();
  auto table_pages = [&](size_t table_idx) -> double {
    const std::string& name = before.tables()[table_idx].name;
    auto st = catalog.GetStats(name);
    if (!st.ok()) return 1.0;
    return CostModel::TablePages(**st);
  };
  // Pages of a hypothetical table anchored at `anchor` with `attrs`.
  auto fragment_pages = [&](EntityId anchor, const std::vector<AttrId>& attrs) -> double {
    double width = 12.0;  // key + overhead
    for (AttrId a : attrs) {
      const LogicalAttribute& attr = L.attr(a);
      width += attr.type == TypeId::kVarchar ? attr.avg_width + 4.0 : 8.0;
    }
    double rows =
        anchor < stats.entity_rows.size() ? static_cast<double>(stats.entity_rows[anchor]) : 0;
    return std::max(1.0, std::ceil(rows * width / (8192.0 * 0.85)));
  };
  switch (op.kind) {
    case OperatorKind::kCreateTable: {
      // Read key values from some carrier + write the new fragment.
      double write = fragment_pages(op.create_entity, op.create_attrs);
      return write * 2.0;
    }
    case OperatorKind::kSplitTable: {
      auto ti = before.TableOfNonKeyAttr(op.split_moved[0]);
      if (!ti.ok()) return 0.0;
      double src = table_pages(*ti);
      // Read the source once, write both halves (~ same total bytes).
      return 2.0 * src;
    }
    case OperatorKind::kCombineTable: {
      auto ai = before.TableOfNonKeyAttr(op.combine_left_rep);
      auto bi = before.TableOfNonKeyAttr(op.combine_right_rep);
      if (!ai.ok() || !bi.ok()) return 0.0;
      double a = table_pages(*ai), b = table_pages(*bi);
      // Read both, write the (denormalized, possibly larger) result.
      return a + b + std::max(a, b) * 1.5;
    }
  }
  return 0.0;
}

Result<LaaResult> SelectOpsLaa(const MigrationContext& ctx, size_t current_phase,
                               size_t observed_phase, size_t max_ops,
                               const AnalysisOptions& analysis) {
  std::vector<int> remaining = ctx.RemainingOps();
  const size_t m = remaining.size();
  if (current_phase >= ctx.num_phases() || observed_phase >= ctx.num_phases()) {
    return Status::InvalidArgument("phase out of range");
  }
  PSE_RETURN_NOT_OK(GateContext(ctx));
  Stopwatch wall;
  const std::vector<double>& freqs = (*ctx.phase_freqs)[observed_phase];
  const LogicalStats& stats = ctx.StatsAt(observed_phase);
  CostOptions cost_options;
  cost_options.fallback_schema = ctx.object;

  CachedCostEstimator estimator(ctx.queries, ctx.current->logical(), analysis.cost_cache);
  ParallelCostEstimator parallel(&estimator, analysis.pool);
  const CostCacheStats cache_before =
      analysis.cost_cache != nullptr ? analysis.cost_cache->Snapshot() : CostCacheStats{};

  // Write-safety pricing (off by default — zero behavioral change then).
  const bool write_safety = analysis.write_safety;
  const WriteSafetySpec write_spec = ResolveWriteSafety(analysis, ctx.current, ctx.object);

  LaaResult result;
  result.threads = parallel.threads();
  std::vector<int> best_subset;

  if (!analysis.prune_laa) {
    // Classic exhaustive sweep (Algorithm 1 verbatim).
    if (m > max_ops) {
      return Status::ResourceExhausted(
          "LAA is exhaustive (2^m); m=" + std::to_string(m) + " exceeds the guard of " +
          std::to_string(max_ops) + " — use GAA or enable interaction-analysis pruning");
    }
    std::function<double(const PhysicalSchema&)> penalty =
        [&write_spec](const PhysicalSchema& s) { return WriteSafetyPenalty(s, write_spec); };
    PSE_ASSIGN_OR_RETURN(SweepOutcome sweep,
                         SweepClosedSubsets(ctx, remaining, stats, freqs, cost_options,
                                            &parallel, write_safety ? &penalty : nullptr));
    result.schemas_evaluated = sweep.evaluated;
    result.best_cost = sweep.best_cost;
    best_subset = std::move(sweep.best_subset);
    result.schemas_exhaustive = static_cast<double>(result.schemas_evaluated);
  } else {
    // Cluster-wise enumeration: exact because C(Schema) decomposes over
    // queries and every query's cost term is confined to one interference
    // cluster (see interaction.h and DESIGN.md §12), so the argmin over the
    // product space factorizes into independent per-cluster argmins. With
    // write-safety on, the live versions' table attribute sets join the
    // coupling so each table's penalty term is cluster-confined too; tables
    // no remaining operator touches are priced once, like untouched queries.
    std::vector<std::set<AttrId>> coupling;
    if (write_safety) coupling = WriteSafetyCouplingGroups(write_spec);
    PSE_ASSIGN_OR_RETURN(
        InteractionAnalysis ia,
        AnalyzeInteractions(*ctx.opset, *ctx.current, ctx.applied, ctx.queries,
                            write_safety ? &coupling : nullptr));
    for (const InteractionCluster& cluster : ia.clusters) {
      if (cluster.ops.size() > max_ops || cluster.ops.size() > 63) {
        return Status::ResourceExhausted(
            "LAA cluster-wise enumeration: largest interference cluster has " +
            std::to_string(cluster.ops.size()) + " operators, exceeding the guard of " +
            std::to_string(max_ops) + " — use GAA");
      }
    }
    result.schemas_exhaustive = ia.closed_subsets_total;
    // Queries no remaining operator touches cost the same on every candidate
    // schema: estimate them once, on the current schema.
    std::vector<double> residual(freqs.size(), 0.0);
    for (size_t q : ia.untouched_queries) {
      if (q < residual.size()) residual[q] = freqs[q];
    }
    PSE_ASSIGN_OR_RETURN(double total,
                         estimator.WorkloadCost(*ctx.current, stats, residual, cost_options));
    ++result.schemas_evaluated;
    // Per-cluster union footprints, and their overall union: version tables
    // disjoint from every footprint keep a constant penalty (no remaining
    // operator can move their attributes), priced once on the current schema.
    std::map<int, size_t> position_of;
    for (size_t p = 0; p < ia.remaining.size(); ++p) position_of[ia.remaining[p]] = p;
    std::set<AttrId> touched_attrs;
    if (write_safety) {
      for (const OperatorFootprint& fp : ia.footprints) {
        touched_attrs.insert(fp.attrs.begin(), fp.attrs.end());
      }
      total += WriteSafetyPenalty(*ctx.current, write_spec, &touched_attrs, /*invert=*/true);
    }
    for (const InteractionCluster& cluster : ia.clusters) {
      std::vector<double> masked(freqs.size(), 0.0);
      for (size_t q : cluster.queries) {
        if (q < masked.size()) masked[q] = freqs[q];
      }
      std::set<AttrId> cluster_attrs;
      if (write_safety) {
        for (int op : cluster.ops) {
          const OperatorFootprint& fp = ia.footprints[position_of[op]];
          cluster_attrs.insert(fp.attrs.begin(), fp.attrs.end());
        }
      }
      std::function<double(const PhysicalSchema&)> penalty =
          [&write_spec, &cluster_attrs](const PhysicalSchema& s) {
            return WriteSafetyPenalty(s, write_spec, &cluster_attrs);
          };
      LaaClusterInfo info;
      info.ops = cluster.ops;
      // Dependencies never cross clusters, so closure is cluster-local.
      PSE_ASSIGN_OR_RETURN(SweepOutcome sweep,
                           SweepClosedSubsets(ctx, cluster.ops, stats, masked, cost_options,
                                              &parallel, write_safety ? &penalty : nullptr));
      info.schemas_evaluated = sweep.evaluated;
      info.best_cost = sweep.best_cost;
      info.chosen = sweep.best_subset;
      result.schemas_evaluated += info.schemas_evaluated;
      total += info.best_cost;
      best_subset.insert(best_subset.end(), sweep.best_subset.begin(), sweep.best_subset.end());
      result.clusters.push_back(std::move(info));
    }
    result.best_cost = total;
  }

  // Order the winner topologically for application.
  PSE_ASSIGN_OR_RETURN(std::vector<int> topo, ctx.opset->TopologicalOrder());
  std::vector<bool> in_subset(ctx.opset->size(), false);
  for (int i : best_subset) in_subset[static_cast<size_t>(i)] = true;
  for (int i : topo) {
    if (in_subset[static_cast<size_t>(i)]) result.ops_to_apply.push_back(i);
  }
  if (write_safety) {
    // Surface the penalty component of the winner (already inside best_cost).
    PhysicalSchema winner = *ctx.current;
    for (int i : result.ops_to_apply) {
      PSE_RETURN_NOT_OK(ApplyOperator(ctx.opset->ops[static_cast<size_t>(i)], &winner));
    }
    result.write_penalty = WriteSafetyPenalty(winner, write_spec);
  }
  if (analysis.cost_cache != nullptr) {
    result.cache_stats = analysis.cost_cache->Snapshot() - cache_before;
  }
  result.wall_ms = wall.ElapsedSeconds() * 1000.0;
  return result;
}

Result<double> EvaluateAssignment(const MigrationContext& ctx, size_t current_phase,
                                  const std::vector<int>& remaining_ops,
                                  const std::vector<int>& assignment,
                                  const GaaOptions& options, CachedCostEstimator* estimator) {
  const size_t phases_left = ctx.num_phases() - current_phase;
  CostOptions cost_options;
  cost_options.fallback_schema = ctx.object;
  cost_options.unservable_penalty = options.unservable_penalty;
  // Write-safety pricing: each phase schema adds its penalty for the live
  // versions. Operators deferred past the last phase (offset == phases_left)
  // never contribute — the old users are gone by the completion step.
  const bool write_safety = options.analysis.write_safety;
  const WriteSafetySpec write_spec =
      ResolveWriteSafety(options.analysis, ctx.current, ctx.object);

  if (assignment.size() != remaining_ops.size()) {
    return Status::InvalidArgument("assignment arity mismatch");
  }
  PSE_ASSIGN_OR_RETURN(std::vector<int> topo, ctx.opset->TopologicalOrder());
  std::vector<int> offset_of(ctx.opset->size(), -1);
  for (size_t i = 0; i < remaining_ops.size(); ++i) {
    offset_of[static_cast<size_t>(remaining_ops[i])] = assignment[i];
  }

  PhysicalSchema schema = *ctx.current;
  double total = 0;
  // Offsets run 0..phases_left; the value phases_left means "defer to the
  // completion step after the last phase" (old users are gone by then, so
  // deferred operators cost no measured query time). This matches the
  // paper's gene range of (0, c).
  for (size_t off = 0; off < phases_left; ++off) {
    // Apply the ops assigned to this offset, in topological order.
    for (int i : topo) {
      if (offset_of[static_cast<size_t>(i)] == static_cast<int>(off)) {
        if (options.include_migration_cost) {
          PSE_ASSIGN_OR_RETURN(
              double io, EstimateOperatorIo(ctx.opset->ops[static_cast<size_t>(i)], schema,
                                            ctx.StatsAt(current_phase + off)));
          total += options.migration_io_weight * io;
        }
        PSE_RETURN_NOT_OK(ApplyOperator(ctx.opset->ops[static_cast<size_t>(i)], &schema));
      }
    }
    if (write_safety) total += WriteSafetyPenalty(schema, write_spec);
    const std::vector<double>& freqs = (*ctx.phase_freqs)[current_phase + off];
    const LogicalStats& phase_stats = ctx.StatsAt(current_phase + off);
    double cost = 0;
    if (estimator != nullptr) {
      PSE_ASSIGN_OR_RETURN(cost, estimator->WorkloadCost(schema, phase_stats, freqs,
                                                         cost_options));
    } else {
      PSE_ASSIGN_OR_RETURN(cost, EstimateWorkloadCost(schema, phase_stats, *ctx.queries, freqs,
                                                      cost_options));
    }
    total += cost;
  }
  // Deferred operators (offset == phases_left) run in the completion step;
  // only their data movement can cost anything.
  if (options.include_migration_cost) {
    for (int i : topo) {
      if (offset_of[static_cast<size_t>(i)] == static_cast<int>(phases_left)) {
        PSE_ASSIGN_OR_RETURN(
            double io, EstimateOperatorIo(ctx.opset->ops[static_cast<size_t>(i)], schema,
                                          ctx.StatsAt(ctx.num_phases() - 1)));
        total += options.migration_io_weight * io;
        PSE_RETURN_NOT_OK(ApplyOperator(ctx.opset->ops[static_cast<size_t>(i)], &schema));
      }
    }
  }
  return total;
}

namespace {

/// The write-safety component of EvaluateAssignment's total for one
/// assignment — replayed separately so planners can surface it next to the
/// cost without disturbing the GA's memoized fitness path.
Result<double> AssignmentWritePenalty(const MigrationContext& ctx, size_t current_phase,
                                      const std::vector<int>& remaining_ops,
                                      const std::vector<int>& assignment,
                                      const WriteSafetySpec& write_spec) {
  const size_t phases_left = ctx.num_phases() - current_phase;
  PSE_ASSIGN_OR_RETURN(std::vector<int> topo, ctx.opset->TopologicalOrder());
  std::vector<int> offset_of(ctx.opset->size(), -1);
  for (size_t i = 0; i < remaining_ops.size(); ++i) {
    offset_of[static_cast<size_t>(remaining_ops[i])] = assignment[i];
  }
  PhysicalSchema schema = *ctx.current;
  double total = 0;
  for (size_t off = 0; off < phases_left; ++off) {
    for (int i : topo) {
      if (offset_of[static_cast<size_t>(i)] == static_cast<int>(off)) {
        PSE_RETURN_NOT_OK(ApplyOperator(ctx.opset->ops[static_cast<size_t>(i)], &schema));
      }
    }
    total += WriteSafetyPenalty(schema, write_spec);
  }
  return total;
}

/// Builds the dependency-clamping repair: offset(dependent) >= offset(prereq)
/// among remaining ops; prerequisites already applied impose nothing.
std::function<void(Chromosome*, Rng*)> MakeRepair(const MigrationContext& ctx,
                                                  const std::vector<int>& remaining_ops) {
  // Position of each op in the chromosome.
  std::vector<int> pos(ctx.opset->size(), -1);
  for (size_t i = 0; i < remaining_ops.size(); ++i) {
    pos[static_cast<size_t>(remaining_ops[i])] = static_cast<int>(i);
  }
  // Pre-compute (dependent_pos, prereq_pos) pairs in topological order so a
  // single forward pass propagates chains.
  std::vector<std::pair<int, int>> edges;
  auto topo = ctx.opset->TopologicalOrder();
  if (topo.ok()) {
    for (int i : *topo) {
      if (pos[static_cast<size_t>(i)] < 0) continue;
      for (int d : ctx.opset->deps[static_cast<size_t>(i)]) {
        if (pos[static_cast<size_t>(d)] >= 0) {
          edges.emplace_back(pos[static_cast<size_t>(i)], pos[static_cast<size_t>(d)]);
        }
      }
    }
  }
  return [edges](Chromosome* c, Rng*) {
    for (const auto& [dep, pre] : edges) {
      if ((*c)[static_cast<size_t>(dep)] < (*c)[static_cast<size_t>(pre)]) {
        (*c)[static_cast<size_t>(dep)] = (*c)[static_cast<size_t>(pre)];
      }
    }
  };
}

}  // namespace

Result<GaaResult> PlanGaa(const MigrationContext& ctx, size_t current_phase,
                          const GaaOptions& options) {
  if (current_phase >= ctx.num_phases()) {
    return Status::InvalidArgument("phase out of range");
  }
  PSE_RETURN_NOT_OK(GateContext(ctx));
  Stopwatch wall;
  GaaResult result;
  result.remaining_ops = ctx.RemainingOps();
  const size_t m = result.remaining_ops.size();
  const int phases_left = static_cast<int>(ctx.num_phases() - current_phase);

  CachedCostEstimator estimator(ctx.queries, ctx.current->logical(), options.analysis.cost_cache);
  ThreadPool* pool = options.analysis.pool;
  result.threads = pool != nullptr ? pool->num_threads() : 1;
  const CostCacheStats cache_before = options.analysis.cost_cache != nullptr
                                          ? options.analysis.cost_cache->Snapshot()
                                          : CostCacheStats{};
  if (m == 0) {
    result.best_cost = 0;
    return result;
  }

  // The GA minimizes cost; fitness = -cost. Repaired chromosomes recur
  // often, so evaluations are memoized. Evaluation errors (should not
  // happen for repaired chromosomes) surface as -inf fitness.
  Status eval_error;
  std::map<Chromosome, double> fitness_cache;
  GaProblem problem;
  problem.random_chromosome = [m, phases_left](Rng* rng) {
    Chromosome c(m);
    // Range [0, phases_left]: the top value defers past the last phase.
    for (auto& g : c) g = static_cast<int>(rng->UniformInt(0, phases_left));
    return c;
  };
  problem.repair = MakeRepair(ctx, result.remaining_ops);
  if (options.use_order_crossover) {
    // The paper's Fig 6 recombination is defined for permutations; on
    // assignment strings (which carry duplicates) it can change the child's
    // length, so fall back to two-point when that happens. This preserves
    // the scheme's spirit for the ablation while staying well-defined.
    problem.crossover = [](const Chromosome& a, const Chromosome& b, Rng* rng) {
      Chromosome child = OrderCrossover(a, b, rng);
      if (child.size() != a.size()) child = TwoPointCrossover(a, b, rng);
      return child;
    };
  }
  if (options.point_mutation_only) {
    problem.mutate = [phases_left](Chromosome* c, Rng* rng) {
      PointMutation(c, phases_left, rng);
    };
  } else {
    problem.mutate = [phases_left](Chromosome* c, Rng* rng) {
      if (rng->Bernoulli(0.5)) {
        SegmentReversalMutation(c, rng);
      } else {
        PointMutation(c, phases_left, rng);
      }
    };
  }
  // Turns one evaluation outcome into a fitness, recording the first error.
  auto to_fitness = [&eval_error](const Result<double>& cost) -> double {
    if (!cost.ok()) {
      if (eval_error.ok()) eval_error = cost.status();
      return -std::numeric_limits<double>::infinity();
    }
    return -*cost;
  };
  problem.fitness = [&](const Chromosome& c) -> double {
    auto cached = fitness_cache.find(c);
    if (cached != fitness_cache.end()) return cached->second;
    double fitness = to_fitness(
        EvaluateAssignment(ctx, current_phase, result.remaining_ops, c, options, &estimator));
    fitness_cache.emplace(c, fitness);
    return fitness;
  };
  if (pool != nullptr) {
    // Fan one generation's unseen chromosomes across the pool. The memo
    // cache is read and written only on this thread; workers touch nothing
    // but their own result slot (and the internally-locked cost cache), and
    // the serial fill-in order makes error reporting deterministic (first
    // failing cohort index wins, matching the element-wise path).
    problem.batch_fitness = [&](const std::vector<Chromosome>& cohort) {
      std::vector<double> fitnesses(cohort.size(), 0.0);
      std::vector<size_t> misses;                       // cohort indexes to evaluate
      std::map<Chromosome, std::vector<size_t>> dups;   // duplicate resolution
      for (size_t i = 0; i < cohort.size(); ++i) {
        auto cached = fitness_cache.find(cohort[i]);
        if (cached != fitness_cache.end()) {
          fitnesses[i] = cached->second;
          continue;
        }
        auto [it, inserted] = dups.try_emplace(cohort[i]);
        it->second.push_back(i);
        if (inserted) misses.push_back(i);
      }
      std::vector<Result<double>> outcomes(misses.size(),
                                           Result<double>(Status::Internal("not evaluated")));
      pool->ParallelFor(misses.size(), [&](size_t j) {
        outcomes[j] = EvaluateAssignment(ctx, current_phase, result.remaining_ops,
                                         cohort[misses[j]], options, &estimator);
      });
      for (size_t j = 0; j < misses.size(); ++j) {
        double fitness = to_fitness(outcomes[j]);
        const Chromosome& c = cohort[misses[j]];
        fitness_cache.emplace(c, fitness);
        for (size_t i : dups[c]) fitnesses[i] = fitness;
      }
      return fitnesses;
    };
  }

  if (options.analysis.seed_gaa_from_clusters) {
    // Seed the population with the greedy trajectory of cluster-wise LAA:
    // walk the remaining phases, at each point apply the (clairvoyant)
    // cluster-local optima, and record each op's chosen offset. The GA then
    // starts from a known-good plan instead of random noise. Best-effort:
    // when any LAA step fails (e.g. an uncuttable cluster exceeds the
    // guard), the GA simply starts unseeded.
    MigrationContext walk = ctx;
    PhysicalSchema walk_schema = *ctx.current;
    walk.current = &walk_schema;
    Chromosome seed_chrom(m, phases_left);  // default: defer past the last phase
    std::vector<int> pos(ctx.opset->size(), -1);
    for (size_t i = 0; i < m; ++i) {
      pos[static_cast<size_t>(result.remaining_ops[i])] = static_cast<int>(i);
    }
    bool seeded = true;
    for (int off = 0; off < phases_left && seeded; ++off) {
      Result<LaaResult> laa = SelectOpsLaa(walk, current_phase + static_cast<size_t>(off),
                                           current_phase + static_cast<size_t>(off),
                                           /*max_ops=*/30, options.analysis);
      if (!laa.ok()) {
        seeded = false;
        break;
      }
      for (int op : laa->ops_to_apply) {
        if (!ApplyOperator(ctx.opset->ops[static_cast<size_t>(op)], &walk_schema).ok()) {
          seeded = false;
          break;
        }
        seed_chrom[static_cast<size_t>(pos[static_cast<size_t>(op)])] = off;
        walk.applied[static_cast<size_t>(op)] = true;
      }
    }
    if (seeded) problem.seeds.push_back(std::move(seed_chrom));
  }

  Rng rng(options.seed + current_phase * 7919);
  GaResult ga = RunGa(problem, options.ga, &rng);
  if (!eval_error.ok() && std::isinf(ga.best_fitness)) return eval_error;
  result.assignment = ga.best;
  result.best_cost = -ga.best_fitness;
  result.evaluations = ga.evaluations;
  if (options.analysis.write_safety) {
    PSE_ASSIGN_OR_RETURN(
        result.write_penalty,
        AssignmentWritePenalty(ctx, current_phase, result.remaining_ops, result.assignment,
                               ResolveWriteSafety(options.analysis, ctx.current, ctx.object)));
  }
  if (options.analysis.cost_cache != nullptr) {
    result.cache_stats = options.analysis.cost_cache->Snapshot() - cache_before;
  }
  result.wall_ms = wall.ElapsedSeconds() * 1000.0;
  return result;
}

std::vector<int> GaaResult::ApplyNow() const {
  std::vector<int> out;
  for (size_t i = 0; i < assignment.size(); ++i) {
    if (assignment[i] == 0) out.push_back(remaining_ops[i]);
  }
  return out;
}

Result<GaaResult> PlanExhaustiveGlobal(const MigrationContext& ctx, size_t current_phase,
                                       const GaaOptions& options, size_t max_ops) {
  PSE_RETURN_NOT_OK(GateContext(ctx));
  GaaResult result;
  result.remaining_ops = ctx.RemainingOps();
  const size_t m = result.remaining_ops.size();
  const int phases_left = static_cast<int>(ctx.num_phases() - current_phase);
  if (m > max_ops) {
    return Status::ResourceExhausted("exhaustive global search over c^m assignments; m=" +
                                     std::to_string(m) + " too large");
  }
  if (m == 0) return result;
  CachedCostEstimator estimator(ctx.queries, ctx.current->logical(), options.analysis.cost_cache);
  std::vector<int> assignment(m, 0);
  double best = std::numeric_limits<double>::infinity();
  std::vector<int> best_assignment = assignment;
  // Only dependency-valid assignments are scored.
  auto valid = [&]() {
    std::vector<int> offset_of(ctx.opset->size(), -1);
    for (size_t i = 0; i < m; ++i) {
      offset_of[static_cast<size_t>(result.remaining_ops[i])] = assignment[i];
    }
    for (size_t i = 0; i < m; ++i) {
      int op = result.remaining_ops[i];
      for (int d : ctx.opset->deps[static_cast<size_t>(op)]) {
        int pre_off = offset_of[static_cast<size_t>(d)];
        if (pre_off < 0) continue;  // already applied earlier
        if (assignment[i] < pre_off) return false;
      }
    }
    return true;
  };
  while (true) {
    if (valid()) {
      PSE_ASSIGN_OR_RETURN(double cost,
                           EvaluateAssignment(ctx, current_phase, result.remaining_ops,
                                              assignment, options, &estimator));
      ++result.evaluations;
      if (cost < best) {
        best = cost;
        best_assignment = assignment;
      }
    }
    // Odometer increment (values 0..phases_left inclusive).
    size_t pos = 0;
    while (pos < m) {
      if (++assignment[pos] <= phases_left) break;
      assignment[pos] = 0;
      ++pos;
    }
    if (pos == m) break;
  }
  result.assignment = best_assignment;
  result.best_cost = best;
  if (options.analysis.write_safety) {
    PSE_ASSIGN_OR_RETURN(
        result.write_penalty,
        AssignmentWritePenalty(ctx, current_phase, result.remaining_ops, result.assignment,
                               ResolveWriteSafety(options.analysis, ctx.current, ctx.object)));
  }
  return result;
}

}  // namespace pse
