#include "core/rewriter_dml.h"

#include <algorithm>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rw_latch.h"
#include "common/string_util.h"
#include "engine/expr.h"
#include "sql/ast.h"

namespace pse {

namespace {

/// Column position of attribute `a` in fragment `t`. ToTableSchema emits
/// the ANCHOR KEY as column 0 and the remaining attributes in AttrId order
/// after it — NOT plain AttrId order. The distinction only matters on
/// multi-entity fragments where a parent key has a smaller AttrId than the
/// anchor key (e.g. a book-anchored glossary storing a_id < b_id).
Result<size_t> ColOf(const LogicalSchema& lg, const PhysicalTable& t, AttrId a) {
  AttrId key = lg.entity(t.anchor).key;
  if (a == key) return size_t{0};
  auto it = std::lower_bound(t.attrs.begin(), t.attrs.end(), a);
  if (it == t.attrs.end() || *it != a) {
    return Status::Internal("attribute not stored in fragment '" + t.name + "'");
  }
  size_t idx = static_cast<size_t>(it - t.attrs.begin());
  auto kit = std::lower_bound(t.attrs.begin(), t.attrs.end(), key);
  size_t kidx = static_cast<size_t>(kit - t.attrs.begin());
  // The key left its sorted slot for column 0: attrs before it shift right
  // by one, attrs after it keep their index.
  return idx < kidx ? idx + 1 : idx;
}

/// Inverse of ColOf: the attribute stored at physical column `c` of `t`.
AttrId AttrAtCol(const LogicalSchema& lg, const PhysicalTable& t, size_t c) {
  AttrId key = lg.entity(t.anchor).key;
  if (c == 0) return key;
  size_t i = 0;
  for (AttrId a : t.attrs) {
    if (a == key) continue;
    if (++i == c) return a;
  }
  return kInvalidId;
}

/// Column of the final FK in the chain t.anchor -> e (the FK that references
/// `e` directly). Invariant 4 guarantees it is stored whenever any attribute
/// of `e` is.
Result<size_t> FkColInto(const LogicalSchema& lg, const PhysicalTable& t, EntityId e) {
  PSE_ASSIGN_OR_RETURN(std::vector<AttrId> path, lg.FkPath(t.anchor, e));
  if (path.empty()) return Status::Internal("FK chain into own anchor");
  return ColOf(lg, t, path.back());
}

/// True when the resolution chain from `t.anchor` to `a`'s entity passes
/// through entity `via` (a write invalidating `via`'s row therefore
/// invalidates this column).
bool ChainVisits(const LogicalSchema& lg, const PhysicalTable& t, AttrId a, EntityId via) {
  EntityId target = lg.attr(a).entity;
  if (target == t.anchor || target == via) return false;
  auto path = lg.FkPath(t.anchor, target);
  if (!path.ok()) return false;
  for (AttrId fk : *path) {
    if (lg.attr(fk).references && *lg.attr(fk).references == via) return true;
  }
  return false;
}

/// (rid, row) of every live tuple in `table` whose `col` SqlEquals `v`.
/// Takes the table's content latch shared for the scan only; callers mutate
/// the collected rids afterwards (the router's write mutex serializes whole
/// statements, so the set cannot change in between).
Result<std::vector<std::pair<Rid, Row>>> MatchRows(Database* db, const std::string& table,
                                                   size_t col, const Value& v) {
  PSE_ASSIGN_OR_RETURN(TableInfo * info, db->GetTable(table));
  std::vector<std::pair<Rid, Row>> out;
  std::shared_lock<SharedMutex> latch(info->latch);
  for (auto it = info->heap->Begin(); !it.AtEnd();) {
    if (col < it.row().size() && it.row()[col].SqlEquals(v)) out.emplace_back(it.rid(), it.row());
    PSE_RETURN_NOT_OK(it.Next());
  }
  return out;
}

/// First row whose `col` SqlEquals `v` and (when `want_col` is set) whose
/// `*want_col` is non-NULL; values only. The vectorized flavour pulls rows
/// through the batched page decode (one pin per page) instead of one pin per
/// tuple — the lookup-side counterpart of the vectorized scan.
Result<std::optional<Row>> FindFirst(Database* db, const std::string& table, size_t col,
                                     const Value& v, std::optional<size_t> want_col,
                                     bool vectorized) {
  PSE_ASSIGN_OR_RETURN(TableInfo * info, db->GetTable(table));
  std::shared_lock<SharedMutex> latch(info->latch);
  auto hit = [&](const Row& row) {
    if (col >= row.size() || !row[col].SqlEquals(v)) return false;
    return !want_col || (*want_col < row.size() && !row[*want_col].is_null());
  };
  if (vectorized) {
    auto it = info->heap->Begin();
    std::vector<Row> batch;
    while (!it.AtEnd()) {
      batch.clear();
      PSE_ASSIGN_OR_RETURN(size_t n, it.FillBatch(256, &batch));
      if (n == 0) break;
      for (Row& row : batch) {
        if (hit(row)) return std::optional<Row>(std::move(row));
      }
    }
    return std::optional<Row>();
  }
  for (auto it = info->heap->Begin(); !it.AtEnd();) {
    if (hit(it.row())) return std::optional<Row>(it.row());
    PSE_RETURN_NOT_OK(it.Next());
  }
  return std::optional<Row>();
}

/// Everything a ladder lookup needs. `schema` is the ground-truth layout the
/// values are read from — the *current* schema even while dual-applying onto
/// migration targets.
struct ResolveCtx {
  Database* db = nullptr;
  const PhysicalSchema* schema = nullptr;
  const ProvenanceStore* prov = nullptr;
  const std::map<AttrId, Value>* provided = nullptr;  ///< statement values
  bool vectorized = false;
};

Result<Value> ResolveEntityAttr(const ResolveCtx& ctx, EntityId e, const Value& key, AttrId a);

/// Does entity row (e, key) exist on the ground-truth schema? True when a
/// fragment anchored at `e` holds the keyed row, when any covering row
/// carries the entity's key column non-NULL (dangling references keep it
/// NULL), or when the provenance store has the row.
Result<bool> EntityRowExists(const ResolveCtx& ctx, EntityId e, const Value& key) {
  if (key.is_null()) return false;
  const LogicalSchema& lg = *ctx.schema->logical();
  AttrId key_attr = lg.entity(e).key;
  for (const PhysicalTable& t : ctx.schema->tables()) {
    if (!t.Contains(key_attr)) continue;
    PSE_ASSIGN_OR_RETURN(size_t kc, ColOf(lg, t, key_attr));
    PSE_ASSIGN_OR_RETURN(auto row, FindFirst(ctx.db, t.name, kc, key, std::nullopt, ctx.vectorized));
    if (row.has_value()) return true;
  }
  if (ctx.prov && key.type() == TypeId::kInt64 && ctx.prov->Has(e, key.AsInt())) return true;
  return false;
}

/// The resolution ladder (header comment): anchored fragment, sibling row,
/// provenance, statement-provided value, NULL.
Result<Value> ResolveEntityAttr(const ResolveCtx& ctx, EntityId e, const Value& key, AttrId a) {
  const LogicalSchema& lg = *ctx.schema->logical();
  const LogicalAttribute& attr = lg.attr(a);
  Value null = Value::Null(attr.type);
  if (key.is_null()) return null;
  if (attr.is_key) {
    PSE_ASSIGN_OR_RETURN(bool exists, EntityRowExists(ctx, e, key));
    return exists ? key : null;
  }
  auto placed = ctx.schema->TableOfNonKeyAttr(a);
  if (placed.ok()) {
    const PhysicalTable& t = ctx.schema->tables()[*placed];
    PSE_ASSIGN_OR_RETURN(size_t kc, ColOf(lg, t, lg.entity(e).key));
    PSE_ASSIGN_OR_RETURN(size_t ac, ColOf(lg, t, a));
    // Anchored fragment: the keyed row. Denormalized: any sibling row that
    // references the same entity row (keyed on the entity's key column, so
    // dangling rows never contribute) and has the value.
    PSE_ASSIGN_OR_RETURN(auto row, FindFirst(ctx.db, t.name, kc, key,
                                             t.anchor == e ? std::nullopt : std::optional<size_t>(ac),
                                             ctx.vectorized));
    if (row.has_value()) return (*row)[ac];
  }
  if (ctx.prov && key.type() == TypeId::kInt64) {
    auto v = ctx.prov->Get(e, key.AsInt(), a);
    if (v.has_value()) return *v;
  }
  if (ctx.provided) {
    auto it = ctx.provided->find(a);
    if (it != ctx.provided->end()) return it->second;
  }
  return null;
}

/// Key of entity `to` as seen from row (from, from_key), following the FK
/// chain through stored values (overridden by statement values when given).
/// NULL when any hop is NULL or dangling.
Result<Value> ResolveChainKey(const ResolveCtx& ctx, EntityId from, const Value& from_key,
                              EntityId to, const std::map<AttrId, Value>* overrides) {
  if (from == to) return from_key;
  const LogicalSchema& lg = *ctx.schema->logical();
  PSE_ASSIGN_OR_RETURN(std::vector<AttrId> path, lg.FkPath(from, to));
  EntityId cur = from;
  Value cur_key = from_key;
  for (AttrId fk : path) {
    if (cur_key.is_null()) return Value::Null(TypeId::kInt64);
    Value v;
    auto ov = overrides ? overrides->find(fk) : std::map<AttrId, Value>::const_iterator{};
    if (overrides && ov != overrides->end()) {
      v = ov->second;
    } else {
      PSE_ASSIGN_OR_RETURN(v, ResolveEntityAttr(ctx, cur, cur_key, fk));
    }
    cur = *lg.attr(fk).references;
    cur_key = v;
  }
  return cur_key;
}

Result<Value> CastForColumn(const Value& v, const Column& col) {
  if (v.is_null()) return Value::Null(col.type);
  return v.CastTo(col.type);
}

}  // namespace

// ---------------------------------------------------------------------------
// LogicalDml / FragmentWrite display
// ---------------------------------------------------------------------------

const char* FragmentWriteOpName(FragmentWriteOp op) {
  switch (op) {
    case FragmentWriteOp::kAnchorInsert: return "anchor-insert";
    case FragmentWriteOp::kKeyedUpdate: return "keyed-update";
    case FragmentWriteOp::kKeyedDelete: return "keyed-delete";
    case FragmentWriteOp::kFanUpdate: return "fan-update";
    case FragmentWriteOp::kFanClear: return "fan-clear";
    case FragmentWriteOp::kParentMerge: return "parent-merge";
  }
  return "?";
}

std::string LogicalDml::ToString() const {
  std::string s = std::string(DmlKindName(kind)) + " " + table.name + " key=" + std::to_string(key);
  for (size_t i = 0; i < set_attrs.size(); ++i) {
    s += (i == 0 ? " set " : ", ") + std::to_string(set_attrs[i]) + "=" +
         (i < set_values.size() ? set_values[i].ToString() : "?");
  }
  return s;
}

// ---------------------------------------------------------------------------
// RewriteDml: statement -> fan-out plan
// ---------------------------------------------------------------------------

namespace {

struct PlanCtx {
  const PhysicalSchema* schema = nullptr;
  const LogicalSchema* lg = nullptr;
  const LogicalDml* dml = nullptr;
  std::map<AttrId, Value> provided;
};

/// Fragment indexes anchored at `e`, in table order.
std::vector<size_t> AnchoredAt(const PhysicalSchema& schema, EntityId e) {
  std::vector<size_t> out;
  for (size_t i = 0; i < schema.tables().size(); ++i) {
    if (schema.tables()[i].anchor == e) out.push_back(i);
  }
  return out;
}

/// The merge fan-out for entity `e` keyed by `match` (unset => resolved via
/// the FK chain at apply time): one full-row merge per fragment anchored at
/// `e`, one dangling-repair per fragment that denormalizes `e`'s attributes
/// under a descendant anchor. `attrs_of_e` restricts which attribute columns
/// the repairs touch (the merge-create rows always cover every column).
Status PlanMergesFor(const PlanCtx& p, EntityId e, std::optional<Value> match,
                     std::vector<FragmentWrite>* out) {
  const PhysicalSchema& schema = *p.schema;
  const LogicalSchema& lg = *p.lg;
  AttrId key_attr = lg.entity(e).key;
  for (size_t i : AnchoredAt(schema, e)) {
    const PhysicalTable& t = schema.tables()[i];
    FragmentWrite w;
    w.op = FragmentWriteOp::kParentMerge;
    w.table_idx = i;
    w.table = t.name;
    w.entity = e;
    w.resolve_match = !match.has_value();
    if (match) w.match_value = *match;
    w.row.assign(t.attrs.size(), Value());
    for (size_t c = 0; c < t.attrs.size(); ++c) {
      AttrId a = AttrAtCol(lg, t, c);
      if (a == key_attr) continue;  // filled with the resolved key
      w.resolve_cols.push_back(c);
      w.resolve_attrs.push_back(a);
    }
    out->push_back(std::move(w));
  }
  // Dangling-repair fragments: unique placements of e's non-key attributes
  // under some other anchor.
  std::vector<size_t> repair_tables;
  for (AttrId a : lg.entity(e).attributes) {
    if (lg.attr(a).is_key) continue;
    auto placed = schema.TableOfNonKeyAttr(a);
    if (!placed.ok()) continue;  // is_new attribute without storage yet
    if (schema.tables()[*placed].anchor == e) continue;
    if (std::find(repair_tables.begin(), repair_tables.end(), *placed) == repair_tables.end()) {
      repair_tables.push_back(*placed);
    }
  }
  for (size_t i : repair_tables) {
    const PhysicalTable& t = schema.tables()[i];
    FragmentWrite w;
    w.op = FragmentWriteOp::kParentMerge;
    w.table_idx = i;
    w.table = t.name;
    w.entity = e;
    w.resolve_match = !match.has_value();
    if (match) w.match_value = *match;
    PSE_ASSIGN_OR_RETURN(w.match_col, FkColInto(lg, t, e));
    PSE_ASSIGN_OR_RETURN(size_t kc, ColOf(lg, t, key_attr));
    w.cols.push_back(kc);        // the entity key column (repaired to the key)
    w.values.push_back(Value());  // placeholder; apply writes the resolved key
    for (AttrId a : lg.entity(e).attributes) {
      if (lg.attr(a).is_key || !t.Contains(a)) continue;
      if (lg.attr(a).entity != e) continue;
      PSE_ASSIGN_OR_RETURN(size_t c, ColOf(lg, t, a));
      w.cols.push_back(c);
      w.values.push_back(Value());
      w.resolve_cols.push_back(c);
      w.resolve_attrs.push_back(a);
    }
    out->push_back(std::move(w));
  }
  return Status::OK();
}

Status PlanInsert(const PlanCtx& p, BoundDml* out) {
  const PhysicalSchema& schema = *p.schema;
  const LogicalSchema& lg = *p.lg;
  EntityId anchor = p.dml->table.anchor;
  Value key = Value::Int(p.dml->key);

  // Parent entities the statement provides attribute values for: created
  // (existing wins) before the anchor rows so the ladder can see them.
  std::vector<EntityId> parents;
  for (AttrId a : p.dml->set_attrs) {
    EntityId e = lg.attr(a).entity;
    if (e == anchor) continue;
    if (std::find(parents.begin(), parents.end(), e) == parents.end()) parents.push_back(e);
  }
  for (EntityId parent : parents) {
    PSE_RETURN_NOT_OK(PlanMergesFor(p, parent, std::nullopt, &out->writes));
  }
  // The statement's own entity: merge semantics for every fragment that
  // denormalizes it (repairs rows that referenced the key before it existed;
  // provenance when nothing stores it), plus a plain insert per fragment
  // anchored at it.
  PSE_RETURN_NOT_OK(PlanMergesFor(p, anchor, key, &out->writes));
  // PlanMergesFor covers anchored fragments via kParentMerge full-row
  // creates; rewrite those as kAnchorInsert so the plan names the intent
  // (and tests can tell the two apart).
  for (FragmentWrite& w : out->writes) {
    if (w.entity == anchor && schema.tables()[w.table_idx].anchor == anchor) {
      w.op = FragmentWriteOp::kAnchorInsert;
    }
  }
  return Status::OK();
}

Status PlanUpdate(const PlanCtx& p, BoundDml* out) {
  const PhysicalSchema& schema = *p.schema;
  const LogicalSchema& lg = *p.lg;
  EntityId anchor = p.dml->table.anchor;
  Value key = Value::Int(p.dml->key);

  // Group assignments by placement fragment, anchor-entity attributes first
  // (FK updates must land before parent rows are located through them).
  struct Group {
    size_t table_idx = 0;
    EntityId entity = kInvalidId;
    std::vector<AttrId> attrs;
    std::vector<Value> values;
  };
  std::vector<Group> groups;
  auto group_for = [&](size_t table_idx, EntityId e) -> Group& {
    for (Group& g : groups) {
      if (g.table_idx == table_idx && g.entity == e) return g;
    }
    groups.push_back(Group{table_idx, e, {}, {}});
    return groups.back();
  };
  for (size_t i = 0; i < p.dml->set_attrs.size(); ++i) {
    AttrId a = p.dml->set_attrs[i];
    PSE_ASSIGN_OR_RETURN(size_t placed, schema.TableOfNonKeyAttr(a));
    Group& g = group_for(placed, lg.attr(a).entity);
    g.attrs.push_back(a);
    g.values.push_back(p.dml->set_values[i]);
  }
  std::stable_sort(groups.begin(), groups.end(), [&](const Group& a, const Group& b) {
    return (a.entity == anchor) > (b.entity == anchor);
  });

  for (const Group& g : groups) {
    const PhysicalTable& t = schema.tables()[g.table_idx];
    FragmentWrite w;
    w.table_idx = g.table_idx;
    w.table = t.name;
    w.entity = g.entity;
    // Rows representing entity row (entity, key): matched on the entity's
    // key column wherever it is stored — the anchored fragment's primary
    // key, or the denormalized copy (dangling rows keep it NULL and are
    // correctly left alone).
    PSE_ASSIGN_OR_RETURN(w.match_col, ColOf(lg, t, lg.entity(g.entity).key));
    w.op = t.anchor == g.entity ? FragmentWriteOp::kKeyedUpdate : FragmentWriteOp::kFanUpdate;
    if (g.entity == anchor) {
      w.match_value = key;
    } else {
      w.resolve_match = true;  // parent key via the (possibly updated) chain
    }
    for (size_t i = 0; i < g.attrs.size(); ++i) {
      PSE_ASSIGN_OR_RETURN(size_t c, ColOf(lg, t, g.attrs[i]));
      w.cols.push_back(c);
      w.values.push_back(g.values[i]);
    }
    out->writes.push_back(std::move(w));
  }
  return Status::OK();
}

Status PlanDelete(const PlanCtx& p, BoundDml* out) {
  const PhysicalSchema& schema = *p.schema;
  const LogicalSchema& lg = *p.lg;
  EntityId anchor = p.dml->table.anchor;
  Value key = Value::Int(p.dml->key);
  AttrId key_attr = lg.entity(anchor).key;

  for (size_t i : AnchoredAt(schema, anchor)) {
    const PhysicalTable& t = schema.tables()[i];
    FragmentWrite w;
    w.op = FragmentWriteOp::kKeyedDelete;
    w.table_idx = i;
    w.table = t.name;
    w.entity = anchor;
    PSE_ASSIGN_OR_RETURN(w.match_col, ColOf(lg, t, key_attr));
    w.match_value = key;
    out->writes.push_back(std::move(w));
  }
  // Fan-out: NULL the entity's columns (key + attributes) out of fragments
  // that denormalize it, along with every column whose resolution chain
  // passes through the deleted row (its grandparents become unreachable).
  for (size_t i = 0; i < schema.tables().size(); ++i) {
    const PhysicalTable& t = schema.tables()[i];
    if (t.anchor == anchor || !t.Contains(key_attr)) continue;
    FragmentWrite w;
    w.op = FragmentWriteOp::kFanClear;
    w.table_idx = i;
    w.table = t.name;
    w.entity = anchor;
    PSE_ASSIGN_OR_RETURN(w.match_col, ColOf(lg, t, key_attr));
    w.match_value = key;
    for (size_t c = 0; c < t.attrs.size(); ++c) {
      AttrId a = AttrAtCol(lg, t, c);
      bool own = lg.attr(a).entity == anchor;
      if (own || ChainVisits(lg, t, a, anchor)) {
        w.cols.push_back(c);
        w.values.push_back(Value::Null(lg.attr(a).type));
      }
    }
    out->writes.push_back(std::move(w));
  }
  return Status::OK();
}

}  // namespace

Result<BoundDml> RewriteDml(const LogicalDml& dml, const PhysicalSchema& schema) {
  if (dml.kind == DmlKind::kSelect) {
    return Status::InvalidArgument("RewriteDml handles INSERT/UPDATE/DELETE; use RewriteQuery");
  }
  if (dml.set_attrs.size() != dml.set_values.size()) {
    return Status::InvalidArgument("DML assignment attrs/values arity mismatch");
  }
  for (AttrId a : dml.set_attrs) {
    if (!std::binary_search(dml.table.attrs.begin(), dml.table.attrs.end(), a)) {
      return Status::InvalidArgument("attribute #" + std::to_string(a) +
                                     " is not part of version table '" + dml.table.name + "'");
    }
  }
  // Servability agrees with the static analyzer by construction: the same
  // classification decides both (tests/core/rewriter_dml_test.cc).
  auto cells = ClassifyVersionTable(dml.table, schema);
  const WritabilityCell& cell = cells[static_cast<size_t>(dml.kind)];
  if (cell.level == Writability::kUnservable) {
    return Status::BindError(std::string(DmlKindName(dml.kind)) + " on '" + dml.table.name +
                             "' unservable: " + cell.detail);
  }

  BoundDml out;
  out.dml = dml;
  out.level = cell.level;
  PlanCtx p;
  p.schema = &schema;
  p.lg = schema.logical();
  p.dml = &dml;
  for (size_t i = 0; i < dml.set_attrs.size(); ++i) p.provided[dml.set_attrs[i]] = dml.set_values[i];
  switch (dml.kind) {
    case DmlKind::kInsert:
      PSE_RETURN_NOT_OK(PlanInsert(p, &out));
      break;
    case DmlKind::kUpdate:
      PSE_RETURN_NOT_OK(PlanUpdate(p, &out));
      break;
    case DmlKind::kDelete:
      PSE_RETURN_NOT_OK(PlanDelete(p, &out));
      break;
    case DmlKind::kSelect:
      break;
  }
  return out;
}

// ---------------------------------------------------------------------------
// ProvenanceStore
// ---------------------------------------------------------------------------

void ProvenanceStore::Put(EntityId entity, int64_t key, AttrId attr, const Value& v) {
  std::lock_guard<Mutex> lock(mu_);
  rows_[{entity, key}][attr] = v;
}

void ProvenanceStore::EnsureRow(EntityId entity, int64_t key) {
  std::lock_guard<Mutex> lock(mu_);
  rows_.try_emplace({entity, key});
}

std::optional<Value> ProvenanceStore::Get(EntityId entity, int64_t key, AttrId attr) const {
  std::lock_guard<Mutex> lock(mu_);
  auto row = rows_.find({entity, key});
  if (row == rows_.end()) return std::nullopt;
  auto v = row->second.find(attr);
  if (v == row->second.end()) return std::nullopt;
  return v->second;
}

bool ProvenanceStore::Has(EntityId entity, int64_t key) const {
  std::lock_guard<Mutex> lock(mu_);
  return rows_.count({entity, key}) > 0;
}

void ProvenanceStore::Erase(EntityId entity, int64_t key) {
  std::lock_guard<Mutex> lock(mu_);
  rows_.erase({entity, key});
}

std::vector<std::pair<int64_t, std::map<AttrId, Value>>> ProvenanceStore::RowsOf(
    EntityId entity) const {
  std::lock_guard<Mutex> lock(mu_);
  std::vector<std::pair<int64_t, std::map<AttrId, Value>>> out;
  for (auto it = rows_.lower_bound({entity, INT64_MIN});
       it != rows_.end() && it->first.first == entity; ++it) {
    out.emplace_back(it->first.second, it->second);
  }
  return out;
}

size_t ProvenanceStore::NumRows() const {
  std::lock_guard<Mutex> lock(mu_);
  return rows_.size();
}

// ---------------------------------------------------------------------------
// DmlRouter
// ---------------------------------------------------------------------------

DmlRouter::DmlRouter(Database* db, ProvenanceStore* provenance)
    : db_(db), provenance_(provenance ? provenance : &owned_provenance_) {
  write_mu_.LockdepRegister("dmlrouter", kLockRankDmlRouter, /*allows_io=*/true);
}

DmlRouter::TargetState* DmlRouter::FindTarget(const std::string& table) {
  if (after_ == nullptr) return nullptr;
  for (TargetState& t : targets_) {
    if (t.table == table) return &t;
  }
  return nullptr;
}

Status DmlRouter::AttachOp(const PhysicalSchema* after, std::vector<TargetState> targets) {
  std::lock_guard<Mutex> lock(write_mu_);
  after_ = after;
  targets_ = std::move(targets);
  return Status::OK();
}

Status DmlRouter::RebuildKeys() {
  std::lock_guard<Mutex> lock(write_mu_);
  for (TargetState& t : targets_) {
    t.keys.clear();
    auto info = db_->GetTable(t.table);
    if (!info.ok()) continue;  // fresh path: target not created yet
    std::shared_lock<SharedMutex> latch((*info)->latch);
    for (auto it = (*info)->heap->Begin(); !it.AtEnd();) {
      if (t.key_col < it.row().size() && !it.row()[t.key_col].is_null()) {
        t.keys.insert(it.row()[t.key_col]);
      }
      PSE_RETURN_NOT_OK(it.Next());
    }
  }
  return Status::OK();
}

void DmlRouter::DetachOp() {
  std::lock_guard<Mutex> lock(write_mu_);
  after_ = nullptr;
  targets_.clear();
}

bool DmlRouter::attached() const { return after_ != nullptr; }

Status DmlRouter::BackfillProvenance() {
  if (after_ == nullptr) return Status::OK();
  PSE_LOCKDEP_SCOPE("DmlRouter::BackfillProvenance");
  std::lock_guard<Mutex> lock(write_mu_);
  const LogicalSchema& lg = *after_->logical();
  for (TargetState& ts : targets_) {
    const PhysicalTable& t = after_->tables()[ts.after_idx];
    EntityId e = t.anchor;
    AttrId key_attr = lg.entity(e).key;
    auto schema = after_->ToTableSchema(ts.after_idx);
    for (const auto& [key, attrs] : provenance_->RowsOf(e)) {
      Value kv = Value::Int(key);
      if (ts.keys.count(kv) > 0) continue;
      Row row(t.attrs.size());
      for (size_t c = 0; c < t.attrs.size(); ++c) {
        AttrId a = AttrAtCol(lg, t, c);
        Value v = Value::Null(lg.attr(a).type);
        if (a == key_attr) {
          v = kv;
        } else {
          auto found = attrs.find(a);
          if (found != attrs.end()) v = found->second;
        }
        PSE_ASSIGN_OR_RETURN(row[c], CastForColumn(v, schema.column(c)));
      }
      PSE_RETURN_NOT_OK(db_->Insert(ts.table, row).status());
      ts.keys.insert(kv);
      MigrationJournal* j = db_->mutable_migration_journal();
      if (j->active && ts.journal_idx < j->targets.size()) {
        ++j->targets[ts.journal_idx].dest_rows;
      }
      ++stats_.fragment_writes;
    }
  }
  return Status::OK();
}

Status DmlRouter::Execute(const LogicalDml& dml, const PhysicalSchema& current,
                          const DmlExecOptions& opts) {
  PSE_LOCKDEP_SCOPE("DmlRouter::Execute");
  // Rewriting is pure; only the applies need the statement-scope mutex.
  // BindError (unservable on the live schema) surfaces before any lock so
  // callers can count it without contending.
  PSE_ASSIGN_OR_RETURN(BoundDml bound, RewriteDml(dml, current));

  std::lock_guard<Mutex> lock(write_mu_);
  std::map<AttrId, Value> provided;
  for (size_t i = 0; i < dml.set_attrs.size(); ++i) provided[dml.set_attrs[i]] = dml.set_values[i];
  ResolveCtx ctx{db_, &current, provenance_, &provided, opts.vectorized};

  // Entity-level statement guards: UPDATE/DELETE of a row that does not
  // exist is a no-op; INSERT of an existing key is ignored (idempotent under
  // retries and under the dual-apply replay).
  PSE_ASSIGN_OR_RETURN(bool exists,
                       EntityRowExists(ctx, dml.table.anchor, Value::Int(dml.key)));
  if (dml.kind == DmlKind::kInsert ? exists : !exists) {
    ++stats_.statements;
    return Status::OK();
  }

  std::map<EntityId, bool> parent_exists;

  if (dml.kind == DmlKind::kInsert) {
    // Bare rows first: an entity row the statement creates but no fragment
    // will anchor must exist in the provenance store before the fan-out
    // resolves key and attribute columns through it — otherwise a new child
    // row would carry the parent's attributes with a NULL parent key. This
    // covers the statement's own entity (a schema that stores it only
    // denormalized) and every parent entity the statement provides values
    // for. `parent_exists` snapshots the pre-statement answer so the merge
    // writes below still see it (existing wins must not be fooled by the
    // provenance rows this very statement writes).
    const LogicalSchema& lg = *current.logical();
    auto bare_write = [&](EntityId e, const Value& pk) {
      provenance_->EnsureRow(e, pk.AsInt());
      for (size_t i = 0; i < dml.set_attrs.size(); ++i) {
        const LogicalAttribute& attr = lg.attr(dml.set_attrs[i]);
        if (attr.entity != e || attr.is_key) continue;
        provenance_->Put(e, pk.AsInt(), dml.set_attrs[i], dml.set_values[i]);
        ++stats_.provenance_rows;
      }
    };
    bool anchor_anchored = false;
    for (const PhysicalTable& t : current.tables()) {
      if (t.anchor == dml.table.anchor) anchor_anchored = true;
    }
    if (!anchor_anchored) bare_write(dml.table.anchor, Value::Int(dml.key));
    for (size_t i = 0; i < dml.set_attrs.size(); ++i) {
      EntityId e = lg.attr(dml.set_attrs[i]).entity;
      if (e == dml.table.anchor || parent_exists.count(e) > 0) continue;
      PSE_ASSIGN_OR_RETURN(
          Value pk, ResolveChainKey(ctx, dml.table.anchor, Value::Int(dml.key), e, &provided));
      if (pk.is_null() || pk.type() != TypeId::kInt64) continue;
      PSE_ASSIGN_OR_RETURN(bool pexists, EntityRowExists(ctx, e, pk));
      parent_exists[e] = pexists;
      if (pexists) continue;
      bool parent_anchored = false;
      for (const PhysicalTable& t : current.tables()) {
        if (t.anchor == e) parent_anchored = true;
      }
      // With an anchored fragment the merge-create stores the row
      // physically; provenance is only the bare-row fallback.
      if (!parent_anchored) bare_write(e, pk);
    }
  }

  PSE_RETURN_NOT_OK(ApplyBound(bound, current, current, parent_exists, opts,
                               /*dest_mode=*/false));
  if (after_ != nullptr) {
    // Always-dual-apply: the statement lands on the post-op layout too,
    // restricted to the journal targets (shared tables already got it).
    PSE_ASSIGN_OR_RETURN(BoundDml bound_after, RewriteDml(dml, *after_));
    PSE_RETURN_NOT_OK(ApplyBound(bound_after, *after_, current, parent_exists, opts,
                                 /*dest_mode=*/true));
    ++stats_.dual_applied;
  }
  if (dml.kind == DmlKind::kDelete) {
    provenance_->Erase(dml.table.anchor, dml.key);
  }
  ++stats_.statements;
  return Status::OK();
}

Status DmlRouter::ApplyBound(const BoundDml& bound, const PhysicalSchema& schema,
                             const PhysicalSchema& truth,
                             const std::map<EntityId, bool>& parent_exists,
                             const DmlExecOptions& opts, bool dest_mode) {
  const LogicalSchema& lg = *schema.logical();
  std::map<AttrId, Value> provided;
  for (size_t i = 0; i < bound.dml.set_attrs.size(); ++i) {
    provided[bound.dml.set_attrs[i]] = bound.dml.set_values[i];
  }
  if (bound.dml.kind == DmlKind::kInsert) {
    // Existing wins, end to end: when a parent row pre-existed, the merge is
    // skipped AND the statement's values for that parent's attributes must
    // not leak into the new anchor row through the ladder's provided rung —
    // the child carries the parent's actual values (NULL if unknown).
    for (auto it = provided.begin(); it != provided.end();) {
      EntityId e = lg.attr(it->first).entity;
      auto known = parent_exists.find(e);
      if (e != bound.dml.table.anchor && known != parent_exists.end() && known->second) {
        it = provided.erase(it);
      } else {
        ++it;
      }
    }
  }
  // The ladder always reads the *current* schema's data (`truth`) — during
  // dual-apply the source side stays authoritative until the operator
  // publishes, so dest writes resolve against it, not the post-op layout.
  ResolveCtx ctx{db_, &truth, provenance_, &provided, opts.vectorized};

  MigrationJournal* j = db_->mutable_migration_journal();
  auto bump_dest = [&](TargetState* ts, int64_t delta) {
    if (ts == nullptr || !j->active || ts->journal_idx >= j->targets.size()) return;
    uint64_t& n = j->targets[ts->journal_idx].dest_rows;
    n = delta >= 0 ? n + static_cast<uint64_t>(delta)
                   : n - std::min(n, static_cast<uint64_t>(-delta));
  };

  // Per-entity memo of (chain key, merge decision) so the merge writes of
  // one entity share a single create-vs-skip decision.
  struct MergeState {
    Value key;
    bool skip = false;  // entity already exists (existing wins)
  };
  std::map<EntityId, MergeState> merges;

  for (const FragmentWrite& w : bound.writes) {
    TargetState* ts = dest_mode ? FindTarget(w.table) : nullptr;
    if (dest_mode && ts == nullptr) continue;  // shared table: already applied
    // AttachOp precedes phase kCreateTargets, so a statement can land while
    // a target has no physical table yet. Skipping its dest write is
    // lossless: that target's copy hasn't started (batches serialize on the
    // write mutex) and will read the source side, which this statement just
    // updated.
    if (dest_mode && !db_->GetTable(w.table).ok()) continue;
    const PhysicalTable& frag = schema.tables()[w.table_idx];
    TableSchema frag_schema = schema.ToTableSchema(w.table_idx);

    // Resolve the row-match key (anchor key, or parent key via the chain).
    Value match = w.match_value;
    if (w.resolve_match) {
      PSE_ASSIGN_OR_RETURN(match, ResolveChainKey(ctx, bound.dml.table.anchor,
                                                  Value::Int(bound.dml.key), w.entity, &provided));
    }

    switch (w.op) {
      case FragmentWriteOp::kAnchorInsert:
      case FragmentWriteOp::kParentMerge: {
        if (match.is_null()) break;  // unreachable parent: nothing to merge
        MergeState* ms = nullptr;
        if (w.op == FragmentWriteOp::kParentMerge) {
          auto [it, fresh] = merges.try_emplace(w.entity);
          ms = &it->second;
          if (fresh) {
            ms->key = match;
            if (!dest_mode && w.entity != bound.dml.table.anchor) {
              // Existing wins: a parent row that already exists keeps its
              // values. Execute snapshots the answer before it writes the
              // bare-parent provenance rows; a live-check here would see the
              // statement's own provenance and always skip.
              auto known = parent_exists.find(w.entity);
              if (known != parent_exists.end()) {
                ms->skip = known->second;
              } else {
                PSE_ASSIGN_OR_RETURN(bool pexists, EntityRowExists(ctx, w.entity, match));
                ms->skip = pexists;
              }
            }
          }
          if (ms->skip) break;
        }
        if (frag.anchor == w.entity) {
          // Merge-create / anchor insert: one full row, ladder-resolved.
          if (dest_mode) {
            if (ts->keys.count(match) > 0) break;  // already on the dest side
          }
          Row row = w.row;
          row.resize(frag.attrs.size());
          AttrId key_attr = lg.entity(w.entity).key;
          for (size_t c = 0; c < frag.attrs.size(); ++c) {
            if (AttrAtCol(lg, frag, c) == key_attr) row[c] = match;
          }
          for (size_t i = 0; i < w.resolve_cols.size(); ++i) {
            AttrId a = w.resolve_attrs[i];
            EntityId ae = lg.attr(a).entity;
            Value v;
            if (ae == w.entity) {
              PSE_ASSIGN_OR_RETURN(v, ResolveEntityAttr(ctx, ae, match, a));
            } else {
              PSE_ASSIGN_OR_RETURN(Value pk, ResolveChainKey(ctx, w.entity, match, ae, &provided));
              PSE_ASSIGN_OR_RETURN(v, ResolveEntityAttr(ctx, ae, pk, a));
            }
            row[w.resolve_cols[i]] = v;
          }
          for (size_t c = 0; c < row.size(); ++c) {
            PSE_ASSIGN_OR_RETURN(row[c], CastForColumn(row[c], frag_schema.column(c)));
          }
          PSE_RETURN_NOT_OK(db_->Insert(w.table, row).status());
          ++stats_.fragment_writes;
          if (dest_mode) {
            ts->keys.insert(match);
            bump_dest(ts, 1);
          }
        } else {
          // Dangling repair: rows that referenced this key before the row
          // existed get its key column and values filled in.
          PSE_ASSIGN_OR_RETURN(auto rows, MatchRows(db_, w.table, w.match_col, match));
          for (auto& [rid, row] : rows) {
            AttrId key_attr = lg.entity(w.entity).key;
            Row next = row;
            for (size_t i = 0; i < w.cols.size(); ++i) {
              size_t c = w.cols[i];
              Value v = AttrAtCol(lg, frag, c) == key_attr ? match : w.values[i];
              // Attribute columns resolve through the ladder so an existing
              // row's values win over the statement's.
              for (size_t r = 0; r < w.resolve_cols.size(); ++r) {
                if (w.resolve_cols[r] == c) {
                  PSE_ASSIGN_OR_RETURN(v, ResolveEntityAttr(ctx, w.entity, match, w.resolve_attrs[r]));
                  break;
                }
              }
              PSE_ASSIGN_OR_RETURN(next[c], CastForColumn(v, frag_schema.column(c)));
            }
            PSE_RETURN_NOT_OK(db_->Update(w.table, rid, next).status());
            ++stats_.fragment_writes;
          }
        }
        break;
      }

      case FragmentWriteOp::kKeyedUpdate:
      case FragmentWriteOp::kFanUpdate: {
        if (match.is_null()) break;
        // Updating an FK refreshes every denormalized column that resolves
        // through it (the parent swap changes what the row denormalizes).
        // The refresh reads the parent's ACTUAL values — never the
        // statement's: those land via the parent's own update group, which
        // only runs when the parent row exists. A provided rung here would
        // smear statement values onto rows whose new parent is dangling.
        ResolveCtx refresh_ctx = ctx;
        refresh_ctx.provided = nullptr;
        std::vector<size_t> cols = w.cols;
        std::vector<Value> values = w.values;
        for (size_t i = 0; i < w.cols.size(); ++i) {
          AttrId fa = AttrAtCol(lg, frag, w.cols[i]);
          if (!lg.attr(fa).references) continue;
          EntityId q = *lg.attr(fa).references;
          Value qk = values[i];
          for (size_t c = 0; c < frag.attrs.size(); ++c) {
            AttrId a = AttrAtCol(lg, frag, c);
            EntityId ae = lg.attr(a).entity;
            bool depends = (ae == q && a != fa) || ChainVisits(lg, frag, a, q);
            if (!depends || std::find(cols.begin(), cols.end(), c) != cols.end()) continue;
            Value v;
            if (ae == q) {
              if (lg.attr(a).is_key) {
                PSE_ASSIGN_OR_RETURN(bool exists, EntityRowExists(refresh_ctx, q, qk));
                v = exists ? qk : Value::Null(lg.attr(a).type);
              } else {
                PSE_ASSIGN_OR_RETURN(v, ResolveEntityAttr(refresh_ctx, q, qk, a));
              }
            } else {
              PSE_ASSIGN_OR_RETURN(Value pk, ResolveChainKey(refresh_ctx, q, qk, ae, nullptr));
              if (lg.attr(a).is_key) {
                PSE_ASSIGN_OR_RETURN(bool exists, EntityRowExists(refresh_ctx, ae, pk));
                v = exists ? pk : Value::Null(lg.attr(a).type);
              } else {
                PSE_ASSIGN_OR_RETURN(v, ResolveEntityAttr(refresh_ctx, ae, pk, a));
              }
            }
            cols.push_back(c);
            values.push_back(v);
          }
        }
        PSE_ASSIGN_OR_RETURN(auto rows, MatchRows(db_, w.table, w.match_col, match));
        for (auto& [rid, row] : rows) {
          Row next = row;
          for (size_t i = 0; i < cols.size(); ++i) {
            PSE_ASSIGN_OR_RETURN(next[cols[i]], CastForColumn(values[i], frag_schema.column(cols[i])));
          }
          PSE_RETURN_NOT_OK(db_->Update(w.table, rid, next).status());
          ++stats_.fragment_writes;
        }
        // A row that lives only in provenance (no covering rows) is updated
        // there; and provenance copies are kept fresh either way.
        if (!dest_mode && match.type() == TypeId::kInt64 &&
            provenance_->Has(w.entity, match.AsInt())) {
          for (size_t i = 0; i < w.cols.size(); ++i) {
            AttrId a = AttrAtCol(lg, frag, w.cols[i]);
            if (lg.attr(a).entity != w.entity) continue;
            provenance_->Put(w.entity, match.AsInt(), a, w.values[i]);
            ++stats_.provenance_rows;
          }
        }
        break;
      }

      case FragmentWriteOp::kKeyedDelete: {
        PSE_ASSIGN_OR_RETURN(auto rows, MatchRows(db_, w.table, w.match_col, match));
        for (auto& [rid, row] : rows) {
          if (!dest_mode) {
            // Snapshot parent values this row is the storage of — the
            // provenance rows the combine lens class calls for.
            for (size_t c = 0; c < frag.attrs.size(); ++c) {
              AttrId a = AttrAtCol(lg, frag, c);
              const LogicalAttribute& attr = lg.attr(a);
              if (attr.entity == w.entity || attr.is_key) continue;
              auto kc = ColOf(lg, frag, lg.entity(attr.entity).key);
              if (!kc.ok() || (*kc) >= row.size()) continue;
              const Value& pk = row[*kc];
              if (pk.is_null() || pk.type() != TypeId::kInt64) continue;
              provenance_->EnsureRow(attr.entity, pk.AsInt());
              if (!row[c].is_null()) {
                provenance_->Put(attr.entity, pk.AsInt(), a, row[c]);
                ++stats_.provenance_rows;
              }
            }
          }
          PSE_RETURN_NOT_OK(db_->Delete(w.table, rid));
          ++stats_.fragment_writes;
          if (dest_mode) bump_dest(ts, -1);
        }
        // A later INSERT of the same key must reach the dest again.
        if (dest_mode) ts->keys.erase(match);
        break;
      }

      case FragmentWriteOp::kFanClear: {
        PSE_ASSIGN_OR_RETURN(auto rows, MatchRows(db_, w.table, w.match_col, match));
        for (auto& [rid, row] : rows) {
          Row next = row;
          for (size_t i = 0; i < w.cols.size(); ++i) next[w.cols[i]] = w.values[i];
          PSE_RETURN_NOT_OK(db_->Update(w.table, rid, next).status());
          ++stats_.fragment_writes;
        }
        break;
      }
    }
  }

  return Status::OK();
}

// ---------------------------------------------------------------------------
// SqlDmlBridge: parsed SQL -> LogicalDml
// ---------------------------------------------------------------------------

namespace {

std::string Unqualify(const std::string& n) {
  size_t dot = n.find('.');
  return dot == std::string::npos ? n : n.substr(dot + 1);
}

/// Lifts `WHERE <key> = <literal>` (either operand order) to the key value.
Result<int64_t> LiftKeyEq(const Expr* where, const std::string& key_name,
                          const std::string& table) {
  const Status reject = Status::InvalidArgument(
      "version-table DML on '" + table + "' must address one row as WHERE " + key_name +
      " = <literal>");
  const auto* cmp = dynamic_cast<const CompareExpr*>(where);
  if (cmp == nullptr || cmp->op() != CompareOp::kEq) return reject;
  const auto* col = dynamic_cast<const ColumnRefExpr*>(cmp->left());
  const auto* lit = dynamic_cast<const ConstantExpr*>(cmp->right());
  if (col == nullptr || lit == nullptr) {
    col = dynamic_cast<const ColumnRefExpr*>(cmp->right());
    lit = dynamic_cast<const ConstantExpr*>(cmp->left());
  }
  if (col == nullptr || lit == nullptr) return reject;
  if (!EqualsIgnoreCase(Unqualify(col->name()), key_name)) return reject;
  PSE_ASSIGN_OR_RETURN(Value key, lit->value().CastTo(TypeId::kInt64));
  if (key.is_null()) return reject;
  return key.AsInt();
}

}  // namespace

const VersionTable* SqlDmlBridge::Find(const std::string& name) const {
  for (const auto& t : tables_) {
    if (EqualsIgnoreCase(t.name, name)) return &t;
  }
  return nullptr;
}

Result<std::shared_ptr<const PhysicalSchema>> SqlDmlBridge::Snapshot() const {
  std::shared_ptr<const PhysicalSchema> schema = current_ ? current_() : nullptr;
  if (schema == nullptr) {
    return Status::Internal("SqlDmlBridge has no current schema snapshot");
  }
  return schema;
}

Result<bool> SqlDmlBridge::OnInsert(const InsertStmt& stmt, uint64_t* affected) {
  const VersionTable* vt = Find(stmt.table);
  if (vt == nullptr) return false;
  PSE_ASSIGN_OR_RETURN(std::shared_ptr<const PhysicalSchema> schema, Snapshot());
  const LogicalSchema& lg = *schema->logical();
  const AttrId key_attr = lg.entity(vt->anchor).key;
  const std::string& key_name = lg.attr(key_attr).name;

  // Resolve the column list; kInvalidId marks the key column. An empty list
  // is positional: key first, then the version table's attributes in order.
  std::vector<AttrId> cols;
  if (stmt.columns.empty()) {
    cols.push_back(kInvalidId);
    cols.insert(cols.end(), vt->attrs.begin(), vt->attrs.end());
  } else {
    for (const auto& c : stmt.columns) {
      std::string n = Unqualify(c);
      if (EqualsIgnoreCase(n, key_name)) {
        cols.push_back(kInvalidId);
        continue;
      }
      bool found = false;
      for (AttrId a : vt->attrs) {
        if (EqualsIgnoreCase(lg.attr(a).name, n)) {
          cols.push_back(a);
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::InvalidArgument("column '" + c + "' is not part of version table '" +
                                       vt->name + "'");
      }
    }
  }

  uint64_t done = 0;
  for (const auto& literals : stmt.rows) {
    if (literals.size() != cols.size()) {
      return Status::InvalidArgument("INSERT arity mismatch: got " +
                                     std::to_string(literals.size()) + ", want " +
                                     std::to_string(cols.size()));
    }
    LogicalDml dml;
    dml.kind = DmlKind::kInsert;
    dml.table = *vt;
    bool have_key = false;
    for (size_t i = 0; i < cols.size(); ++i) {
      if (cols[i] == kInvalidId) {
        PSE_ASSIGN_OR_RETURN(Value key, literals[i].CastTo(TypeId::kInt64));
        if (key.is_null()) {
          return Status::ConstraintViolation("key column '" + key_name + "' may not be NULL");
        }
        dml.key = key.AsInt();
        have_key = true;
      } else {
        dml.set_attrs.push_back(cols[i]);
        dml.set_values.push_back(literals[i]);
      }
    }
    if (!have_key) {
      return Status::InvalidArgument("INSERT into version table '" + vt->name +
                                     "' must provide the key column '" + key_name + "'");
    }
    PSE_RETURN_NOT_OK(router_->Execute(dml, *schema, opts_));
    ++done;
  }
  *affected = done;
  return true;
}

Result<bool> SqlDmlBridge::OnUpdate(const UpdateStmt& stmt, uint64_t* affected) {
  const VersionTable* vt = Find(stmt.table);
  if (vt == nullptr) return false;
  PSE_ASSIGN_OR_RETURN(std::shared_ptr<const PhysicalSchema> schema, Snapshot());
  const LogicalSchema& lg = *schema->logical();
  const AttrId key_attr = lg.entity(vt->anchor).key;
  const std::string& key_name = lg.attr(key_attr).name;
  if (stmt.where == nullptr) {
    return Status::InvalidArgument("version-table UPDATE on '" + vt->name +
                                   "' requires WHERE " + key_name + " = <literal>");
  }
  LogicalDml dml;
  dml.kind = DmlKind::kUpdate;
  dml.table = *vt;
  PSE_ASSIGN_OR_RETURN(dml.key, LiftKeyEq(stmt.where.get(), key_name, vt->name));
  for (const auto& [col, expr] : stmt.assignments) {
    const auto* lit = dynamic_cast<const ConstantExpr*>(expr.get());
    if (lit == nullptr) {
      return Status::InvalidArgument(
          "version-table UPDATE assignments must be literals (entity-level writes)");
    }
    std::string n = Unqualify(col);
    if (EqualsIgnoreCase(n, key_name)) {
      return Status::InvalidArgument("updating the key of version table '" + vt->name +
                                     "' is not supported");
    }
    bool found = false;
    for (AttrId a : vt->attrs) {
      if (EqualsIgnoreCase(lg.attr(a).name, n)) {
        dml.set_attrs.push_back(a);
        dml.set_values.push_back(lit->value());
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument("column '" + col + "' is not part of version table '" +
                                     vt->name + "'");
    }
  }
  PSE_RETURN_NOT_OK(router_->Execute(dml, *schema, opts_));
  *affected = 1;
  return true;
}

Result<bool> SqlDmlBridge::OnDelete(const DeleteStmt& stmt, uint64_t* affected) {
  const VersionTable* vt = Find(stmt.table);
  if (vt == nullptr) return false;
  PSE_ASSIGN_OR_RETURN(std::shared_ptr<const PhysicalSchema> schema, Snapshot());
  const LogicalSchema& lg = *schema->logical();
  const std::string& key_name = lg.attr(lg.entity(vt->anchor).key).name;
  if (stmt.where == nullptr) {
    return Status::InvalidArgument("version-table DELETE on '" + vt->name +
                                   "' requires WHERE " + key_name + " = <literal>");
  }
  LogicalDml dml;
  dml.kind = DmlKind::kDelete;
  dml.table = *vt;
  PSE_ASSIGN_OR_RETURN(dml.key, LiftKeyEq(stmt.where.get(), key_name, vt->name));
  PSE_RETURN_NOT_OK(router_->Execute(dml, *schema, opts_));
  *affected = 1;
  return true;
}

}  // namespace pse
