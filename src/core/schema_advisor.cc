#include "core/schema_advisor.h"

#include <map>
#include <set>

#include "analysis/interaction.h"
#include "analysis/verifier.h"
#include "analysis/writability.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/cost_estimator.h"

namespace pse {

namespace {

/// Candidate operators applicable to `schema` right now:
///  * split off any single non-key attribute of a multi-attribute table;
///  * split off any embedded entity's whole attribute group;
///  * combine any legal pair of tables.
std::vector<MigrationOperator> CandidateOps(const PhysicalSchema& schema, int* next_id) {
  const LogicalSchema& L = *schema.logical();
  std::vector<MigrationOperator> out;
  for (size_t t = 0; t < schema.tables().size(); ++t) {
    const PhysicalTable& table = schema.tables()[t];
    std::vector<AttrId> nonkey;
    std::map<EntityId, std::vector<AttrId>> by_entity;
    for (AttrId a : table.attrs) {
      if (L.attr(a).is_key) continue;
      nonkey.push_back(a);
      by_entity[L.attr(a).entity].push_back(a);
    }
    if (nonkey.size() >= 2) {
      // Single-attribute splits.
      for (AttrId a : nonkey) {
        MigrationOperator op;
        op.kind = OperatorKind::kSplitTable;
        op.id = (*next_id)++;
        op.split_moved = {a};
        op.split_moved_anchor = L.attr(a).entity;
        out.push_back(std::move(op));
      }
      // Embedded-entity splits (re-normalization).
      for (const auto& [entity, attrs] : by_entity) {
        if (entity == table.anchor || attrs.size() < 2) continue;
        MigrationOperator op;
        op.kind = OperatorKind::kSplitTable;
        op.id = (*next_id)++;
        op.split_moved = attrs;
        op.split_moved_anchor = entity;
        out.push_back(std::move(op));
      }
    }
  }
  // Combines: any pair; legality is checked by ApplyOperator.
  for (size_t a = 0; a < schema.tables().size(); ++a) {
    for (size_t b = a + 1; b < schema.tables().size(); ++b) {
      AttrId rep_a = kInvalidId, rep_b = kInvalidId;
      for (AttrId x : schema.tables()[a].attrs) {
        if (!L.attr(x).is_key) {
          rep_a = x;
          break;
        }
      }
      for (AttrId x : schema.tables()[b].attrs) {
        if (!L.attr(x).is_key) {
          rep_b = x;
          break;
        }
      }
      if (rep_a == kInvalidId || rep_b == kInvalidId) continue;
      MigrationOperator op;
      op.kind = OperatorKind::kCombineTable;
      op.id = (*next_id)++;
      op.combine_left_rep = rep_a;
      op.combine_right_rep = rep_b;
      out.push_back(std::move(op));
    }
  }
  return out;
}

}  // namespace

Result<AdvisorResult> AdviseSchema(const PhysicalSchema& seed, const LogicalStats& stats,
                                   const std::vector<WorkloadQuery>& queries,
                                   const std::vector<double>& freqs,
                                   const AdvisorOptions& options) {
  const LogicalSchema& L = *seed.logical();
  Stopwatch wall;
  AdvisorResult result;
  result.schema = seed;
  int next_id = 100000;

  CachedCostEstimator estimator(&queries, &L, options.analysis.cost_cache);
  ThreadPool* pool = options.analysis.pool;
  result.threads = pool != nullptr ? pool->num_threads() : 1;
  const CostCacheStats cache_before = options.analysis.cost_cache != nullptr
                                          ? options.analysis.cost_cache->Snapshot()
                                          : CostCacheStats{};

  // 1. Make the workload servable: create missing referenced attributes.
  std::set<AttrId> referenced;
  for (const auto& wq : queries) {
    std::vector<std::string> cols;
    for (const auto& item : wq.query.select) {
      if (item.expr) item.expr->CollectColumns(&cols);
    }
    for (const auto& f : wq.query.filters) f->CollectColumns(&cols);
    for (const auto& g : wq.query.group_by) g->CollectColumns(&cols);
    for (const auto& c : cols) {
      PSE_ASSIGN_OR_RETURN(AttrId a, L.AttrByName(c));
      referenced.insert(a);
    }
  }
  std::map<EntityId, std::vector<AttrId>> missing;
  for (AttrId a : referenced) {
    if (L.attr(a).is_key) continue;
    if (!result.schema.TableOfNonKeyAttr(a).ok()) {
      missing[L.attr(a).entity].push_back(a);
    }
  }
  if (!missing.empty() && !options.allow_creates) {
    return Status::InvalidArgument("workload references attributes absent from the seed schema");
  }
  for (const auto& [entity, attrs] : missing) {
    MigrationOperator op;
    op.kind = OperatorKind::kCreateTable;
    op.id = next_id++;
    op.create_entity = entity;
    op.create_attrs = attrs;
    double before = 0;  // cost undefined while unservable
    PSE_RETURN_NOT_OK(ApplyOperator(op, &result.schema));
    AdvisorStep step;
    step.op = op;
    step.cost_before = before;
    result.steps.push_back(std::move(step));
  }

  // Write-safety pricing: the seed's tables are the live version whose DML
  // the climb must keep cheap to translate. Every score below is then
  // C(S) + penalty(S), so accepted steps trade query cost against write
  // propagation on equal terms.
  const bool write_safety = options.analysis.write_safety;
  const WriteSafetySpec write_spec =
      ResolveWriteSafety(options.analysis, &seed, /*new_schema=*/nullptr);
  auto write_penalty_of = [&](const PhysicalSchema& s) {
    return write_safety ? WriteSafetyPenalty(s, write_spec) : 0.0;
  };

  PSE_ASSIGN_OR_RETURN(double cost,
                       estimator.WorkloadCost(result.schema, stats, freqs, CostOptions{}));
  cost += write_penalty_of(result.schema);
  result.initial_cost = cost;
  if (!result.steps.empty()) {
    // Back-fill the create steps' costs now that the workload is servable.
    for (auto& step : result.steps) step.cost_after = cost;
  }

  // Support sets are schema-independent: compute them once for the whole
  // climb (only used on the relevance-based scoring path).
  std::vector<std::set<AttrId>> support;
  if (options.analysis.advisor_query_relevance) {
    support.reserve(queries.size());
    for (const auto& wq : queries) support.push_back(QuerySupportAttrs(wq.query, L));
  }

  // 2. Greedy hill-climbing.
  for (size_t step_count = 0; step_count < options.max_steps; ++step_count) {
    std::vector<MigrationOperator> candidates = CandidateOps(result.schema, &next_id);
    double best_cost = cost;
    std::optional<MigrationOperator> best_op;
    size_t best_index = 0;
    // Relevance path: per-query base costs on the current schema, so each
    // candidate re-estimates only the queries whose support set intersects
    // the attributes the operator moves. Any estimation failure falls back
    // to whole-workload scoring for this step.
    std::vector<double> base(queries.size(), 0.0);
    bool use_relevance = options.analysis.advisor_query_relevance;
    for (size_t q = 0; use_relevance && q < queries.size(); ++q) {
      if (freqs[q] <= 0) continue;
      auto c = estimator.QueryCost(q, result.schema, stats);
      if (c.ok()) {
        base[q] = *c;
      } else {
        use_relevance = false;
      }
    }
    // Materialize the legal trial schemas serially (ApplyOperator is cheap),
    // then score them — fanned across the pool when one is provided. Every
    // score lands in its candidate's slot, and the reduction below is serial
    // with the serial path's rule (strict improvement, first candidate wins),
    // so threading cannot change the chosen operator.
    struct Scored {
      double value = 0;
      size_t queries_estimated = 0;
      bool estimable = false;
    };
    std::vector<std::pair<size_t, PhysicalSchema>> trials;  // (candidate idx, schema)
    for (size_t ci = 0; ci < candidates.size(); ++ci) {
      PhysicalSchema trial = result.schema;
      if (!ApplyOperator(candidates[ci], &trial).ok()) continue;  // illegal move
      trials.emplace_back(ci, std::move(trial));
    }
    std::vector<Scored> scores(trials.size());
    auto score_one = [&](size_t ti) {
      const PhysicalSchema& trial = trials[ti].second;
      Scored s;
      if (use_relevance) {
        std::set<AttrId> delta = SchemaDeltaAttrs(result.schema, trial);
        s.value = cost;
        s.estimable = true;
        if (write_safety) {
          s.value += write_penalty_of(trial) - write_penalty_of(result.schema);
        }
        for (size_t q = 0; q < queries.size() && s.estimable; ++q) {
          if (freqs[q] <= 0) continue;
          bool affected = false;
          for (AttrId a : support[q]) {
            if (delta.count(a)) {
              affected = true;
              break;
            }
          }
          if (!affected) continue;  // placement of everything q touches is unchanged
          auto c = estimator.QueryCost(q, trial, stats);
          ++s.queries_estimated;
          if (!c.ok()) {
            s.estimable = false;
            break;
          }
          s.value += (*c - base[q]) * freqs[q];
        }
      } else {
        auto trial_cost = estimator.WorkloadCost(trial, stats, freqs, CostOptions{});
        if (trial_cost.ok()) {
          for (double f : freqs) s.queries_estimated += f > 0 ? 1 : 0;
          s.value = *trial_cost + write_penalty_of(trial);
          s.estimable = true;
        }
      }
      scores[ti] = s;
    };
    if (pool != nullptr) {
      pool->ParallelFor(trials.size(), score_one);
    } else {
      for (size_t ti = 0; ti < trials.size(); ++ti) score_one(ti);
    }
    for (size_t ti = 0; ti < trials.size(); ++ti) {
      result.queries_estimated += scores[ti].queries_estimated;
      if (!scores[ti].estimable) continue;
      ++result.candidates_evaluated;
      if (scores[ti].value < best_cost) {
        best_cost = scores[ti].value;
        best_op = candidates[trials[ti].first];
        best_index = ti;
      }
    }
    if (!best_op.has_value() ||
        cost - best_cost < options.min_improvement * std::max(1.0, cost)) {
      break;
    }
    PhysicalSchema best_schema = std::move(trials[best_index].second);
    AdvisorStep step;
    step.op = *best_op;
    step.cost_before = cost;
    step.cost_after = best_cost;
    result.steps.push_back(std::move(step));
    result.schema = std::move(best_schema);
    cost = best_cost;
  }
  result.final_cost = cost;
  result.write_penalty = write_penalty_of(result.schema);
  if (options.analysis.cost_cache != nullptr) {
    result.cache_stats = options.analysis.cost_cache->Snapshot() - cache_before;
  }
  result.wall_ms = wall.ElapsedSeconds() * 1000.0;

  // 3. Static verification of the recommendation: the improving steps form a
  // sequential operator set from the seed; it must be well-formed, preserve
  // every seed attribute, and leave the whole workload answerable.
  OperatorSet step_opset;
  for (size_t i = 0; i < result.steps.size(); ++i) {
    step_opset.ops.push_back(result.steps[i].op);
    step_opset.deps.emplace_back();
    if (i > 0) step_opset.deps.back().push_back(static_cast<int>(i) - 1);
  }
  std::vector<std::vector<double>> one_phase{freqs};
  VerifyInput verify;
  verify.source = &seed;
  verify.object = &result.schema;
  verify.opset = &step_opset;
  verify.queries = &queries;
  verify.phase_freqs = &one_phase;
  VerifyOptions verify_options;
  verify_options.check_source_answerability = false;  // seed may lack created attrs
  DiagnosticReport report = VerifyMigration(verify, verify_options);
  if (!report.ok()) {
    return Status::Internal("advisor produced an unverifiable migration:\n" +
                            report.ToString());
  }
  return result;
}

}  // namespace pse
