#include "core/virtual_catalog.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "storage/storage_defs.h"

namespace pse {

namespace {
constexpr double kPageFill = 0.85;
}

VirtualSchemaCatalog::VirtualSchemaCatalog(const PhysicalSchema* schema,
                                           const LogicalStats* stats)
    : schema_(schema), stats_(stats) {
  const LogicalSchema& L = *schema->logical();
  for (size_t i = 0; i < schema->tables().size(); ++i) {
    const PhysicalTable& t = schema->tables()[i];
    TableSchema ts = schema->ToTableSchema(i);
    std::string key = ToLower(t.name);
    key_column_[key] = ts.key_columns().empty() ? "" : ts.key_columns()[0];

    TableStatistics st;
    uint64_t rows = t.anchor < stats->entity_rows.size() ? stats->entity_rows[t.anchor] : 0;
    st.row_count = rows;
    double width = static_cast<double>(ts.EstimatedTupleWidth());
    st.avg_tuple_width = width;
    st.page_count = static_cast<uint64_t>(std::max(
        1.0, std::ceil(static_cast<double>(rows) * width /
                       (static_cast<double>(kPageSize) * kPageFill))));
    for (AttrId a : t.attrs) {
      const LogicalAttribute& attr = L.attr(a);
      ColumnStatistics cs;
      if (a < stats->attrs.size()) {
        const LogicalAttrStats& as = stats->attrs[a];
        cs.num_distinct = std::min<uint64_t>(as.num_distinct, rows);
        cs.null_count = static_cast<uint64_t>(as.null_fraction * static_cast<double>(rows));
        if (as.min.has_value()) cs.min = Value::Int(*as.min);
        if (as.max.has_value()) cs.max = Value::Int(*as.max);
      }
      st.columns[attr.name] = cs;
    }
    table_schemas_.emplace(key, std::move(ts));
    table_stats_.emplace(key, std::move(st));
  }
}

Result<const TableSchema*> VirtualSchemaCatalog::GetSchema(const std::string& table) const {
  auto it = table_schemas_.find(ToLower(table));
  if (it == table_schemas_.end()) {
    return Status::NotFound("virtual schema has no table '" + table + "'");
  }
  return &it->second;
}

Result<const TableStatistics*> VirtualSchemaCatalog::GetStats(const std::string& table) const {
  auto it = table_stats_.find(ToLower(table));
  if (it == table_stats_.end()) {
    return Status::NotFound("virtual schema has no table '" + table + "'");
  }
  return &it->second;
}

bool VirtualSchemaCatalog::HasIndex(const std::string& table, const std::string& column) const {
  auto it = key_column_.find(ToLower(table));
  if (it == key_column_.end()) return false;
  if (EqualsIgnoreCase(it->second, column)) return true;
  // Foreign-key columns carry secondary indexes too (the materializer and
  // the migration executor build them — see EnsureSecondaryIndexes).
  auto attr = schema_->logical()->AttrByName(column);
  if (!attr.ok()) return false;
  auto ti = schema_->TableByName(table);
  if (!ti.ok() || !schema_->tables()[*ti].Contains(*attr)) return false;
  return schema_->logical()->attr(*attr).references.has_value();
}

}  // namespace pse
