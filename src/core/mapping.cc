#include "core/mapping.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

namespace pse {

namespace {

/// One refinement piece: a group of non-key attributes that moves together.
struct Piece {
  EntityId anchor = kInvalidId;
  std::vector<AttrId> attrs;            // non-key attrs
  int source_table = -1;                // index into source tables, or -1
  int create_op = -1;                   // index into ops, for created pieces
  int object_table = -1;                // index into object tables
  int isolating_split = -1;             // split op index, -1 if none needed
  bool is_leftover = false;             // last piece of its source table
};

std::vector<AttrId> NonKeyAttrs(const LogicalSchema& L, const PhysicalTable& t) {
  std::vector<AttrId> out;
  for (AttrId a : t.attrs) {
    if (!L.attr(a).is_key) out.push_back(a);
  }
  return out;
}

/// Splits one raw cell (attrs that share a source table and an object table)
/// into anchor-consistent pieces: group by FK connectivity inside the cell;
/// a group's anchor must reach every member entity via FK attrs stored in
/// the cell, else fall back to one piece per entity.
std::vector<Piece> RefineCell(const LogicalSchema& L, const std::vector<AttrId>& cell) {
  // Entities present and FK edges internal to the cell.
  std::set<EntityId> entities;
  for (AttrId a : cell) entities.insert(L.attr(a).entity);
  std::map<EntityId, std::vector<EntityId>> undirected;
  std::map<EntityId, std::set<EntityId>> direct;  // fk edges src -> dst
  for (AttrId a : cell) {
    const LogicalAttribute& attr = L.attr(a);
    if (attr.references.has_value() && entities.count(*attr.references)) {
      undirected[attr.entity].push_back(*attr.references);
      undirected[*attr.references].push_back(attr.entity);
      direct[attr.entity].insert(*attr.references);
    }
  }
  // Connected components over entities.
  std::map<EntityId, int> comp;
  int num_comp = 0;
  for (EntityId e : entities) {
    if (comp.count(e)) continue;
    std::deque<EntityId> frontier{e};
    comp[e] = num_comp;
    while (!frontier.empty()) {
      EntityId cur = frontier.front();
      frontier.pop_front();
      for (EntityId next : undirected[cur]) {
        if (!comp.count(next)) {
          comp[next] = num_comp;
          frontier.push_back(next);
        }
      }
    }
    ++num_comp;
  }
  // Per component, pick a root reaching all members via internal fk edges.
  auto root_of = [&](const std::set<EntityId>& members) -> EntityId {
    for (EntityId cand : members) {
      std::set<EntityId> seen{cand};
      std::deque<EntityId> frontier{cand};
      while (!frontier.empty()) {
        EntityId cur = frontier.front();
        frontier.pop_front();
        for (EntityId next : direct[cur]) {
          if (members.count(next) && seen.insert(next).second) frontier.push_back(next);
        }
      }
      if (seen.size() == members.size()) return cand;
    }
    return kInvalidId;
  };
  std::vector<Piece> out;
  for (int c = 0; c < num_comp; ++c) {
    std::set<EntityId> members;
    for (auto& [e, cc] : comp) {
      if (cc == c) members.insert(e);
    }
    EntityId root = root_of(members);
    if (root != kInvalidId) {
      Piece p;
      p.anchor = root;
      for (AttrId a : cell) {
        if (members.count(L.attr(a).entity)) p.attrs.push_back(a);
      }
      out.push_back(std::move(p));
    } else {
      // Fallback: one piece per entity (always valid standalone).
      for (EntityId e : members) {
        Piece p;
        p.anchor = e;
        for (AttrId a : cell) {
          if (L.attr(a).entity == e) p.attrs.push_back(a);
        }
        if (!p.attrs.empty()) out.push_back(std::move(p));
      }
    }
  }
  return out;
}

}  // namespace

bool OperatorSet::IsClosed(const std::vector<int>& subset,
                           const std::vector<bool>& already_applied) const {
  std::vector<bool> in_subset(ops.size(), false);
  for (int i : subset) in_subset[static_cast<size_t>(i)] = true;
  for (int i : subset) {
    for (int d : deps[static_cast<size_t>(i)]) {
      if (!in_subset[static_cast<size_t>(d)] && !already_applied[static_cast<size_t>(d)]) {
        return false;
      }
    }
  }
  return true;
}

Result<std::vector<int>> OperatorSet::TopologicalOrder() const {
  std::vector<int> indegree(ops.size(), 0);
  std::vector<std::vector<int>> forward(ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    for (int d : deps[i]) {
      forward[static_cast<size_t>(d)].push_back(static_cast<int>(i));
      ++indegree[i];
    }
  }
  std::vector<int> order;
  std::deque<int> ready;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (indegree[i] == 0) ready.push_back(static_cast<int>(i));
  }
  while (!ready.empty()) {
    int cur = ready.front();
    ready.pop_front();
    order.push_back(cur);
    for (int next : forward[static_cast<size_t>(cur)]) {
      if (--indegree[static_cast<size_t>(next)] == 0) ready.push_back(next);
    }
  }
  if (order.size() != ops.size()) {
    return Status::InvalidArgument("operator dependency cycle");
  }
  return order;
}

std::string OperatorSet::ToString(const LogicalSchema& logical) const {
  std::string out;
  for (size_t i = 0; i < ops.size(); ++i) {
    out += "[" + std::to_string(i) + "] " + ops[i].ToString(logical);
    if (!deps[i].empty()) {
      out += "  deps:";
      for (int d : deps[i]) out += " " + std::to_string(d);
    }
    out += "\n";
  }
  return out;
}

Result<OperatorSet> ComputeOperatorSet(const PhysicalSchema& source,
                                       const PhysicalSchema& object) {
  if (source.logical() != object.logical()) {
    return Status::InvalidArgument("schemas share no logical schema");
  }
  const LogicalSchema& L = *source.logical();
  PSE_RETURN_NOT_OK(source.Validate());
  PSE_RETURN_NOT_OK(object.Validate());

  OperatorSet result;
  int next_id = 0;
  std::map<size_t, std::vector<int>> leftover_splits;  // piece -> split ops

  // --- 1. CreateTable operators for object-only ("new") attributes. ---
  // Group new attrs by (object table, entity): one create per group, as in
  // the paper's bookID/abstract example.
  std::vector<Piece> pieces;
  for (size_t ot = 0; ot < object.tables().size(); ++ot) {
    std::map<EntityId, std::vector<AttrId>> groups;
    for (AttrId a : NonKeyAttrs(L, object.tables()[ot])) {
      if (!L.attr(a).is_new) continue;
      if (source.TableOfNonKeyAttr(a).ok()) {
        return Status::InvalidArgument("attr '" + L.attr(a).name +
                                       "' marked new but present in source");
      }
      groups[L.attr(a).entity].push_back(a);
    }
    for (auto& [entity, attrs] : groups) {
      MigrationOperator op;
      op.kind = OperatorKind::kCreateTable;
      op.id = next_id++;
      op.create_entity = entity;
      op.create_attrs = attrs;
      result.ops.push_back(op);
      result.deps.emplace_back();
      Piece p;
      p.anchor = entity;
      p.attrs = attrs;
      p.create_op = static_cast<int>(result.ops.size()) - 1;
      p.object_table = static_cast<int>(ot);
      pieces.push_back(std::move(p));
    }
  }

  // --- 2. Refinement pieces from source tables. ---
  // Every source non-key attr must land in exactly one object table.
  for (size_t st = 0; st < source.tables().size(); ++st) {
    std::map<int, std::vector<AttrId>> cells;  // object table -> attrs
    for (AttrId a : NonKeyAttrs(L, source.tables()[st])) {
      auto ot = object.TableOfNonKeyAttr(a);
      if (!ot.ok()) {
        return Status::InvalidArgument("attr '" + L.attr(a).name +
                                       "' in source but not placed in object schema");
      }
      cells[static_cast<int>(*ot)].push_back(a);
    }
    size_t first_piece = pieces.size();
    for (auto& [ot, attrs] : cells) {
      for (Piece& p : RefineCell(L, attrs)) {
        p.source_table = static_cast<int>(st);
        p.object_table = ot;
        pieces.push_back(std::move(p));
      }
    }
    size_t piece_count = pieces.size() - first_piece;
    if (piece_count > 1) {
      // --- 3. SplitTable operators: carve off all but one piece. ---
      // Keep as leftover a piece whose anchor equals the table anchor when
      // possible (so the remainder table keeps a valid anchor trivially).
      size_t leftover = first_piece;
      for (size_t p = first_piece; p < pieces.size(); ++p) {
        if (pieces[p].anchor == source.tables()[st].anchor) leftover = p;
      }
      std::vector<int> splits_of_table;
      for (size_t p = first_piece; p < pieces.size(); ++p) {
        if (p == leftover) continue;
        MigrationOperator op;
        op.kind = OperatorKind::kSplitTable;
        op.id = next_id++;
        op.split_moved = pieces[p].attrs;
        op.split_moved_anchor = pieces[p].anchor;
        result.ops.push_back(op);
        result.deps.emplace_back();
        pieces[p].isolating_split = static_cast<int>(result.ops.size()) - 1;
        splits_of_table.push_back(pieces[p].isolating_split);
      }
      pieces[leftover].is_leftover = true;
      // The leftover is isolated only once every sibling has been moved out;
      // record that as a dependency list on the piece (applied to combines).
      pieces[leftover].isolating_split = -2;  // marker: depends on all splits
      // Stash the split list on the leftover via a side map below.
      // (Handled with leftover_deps.)
      leftover_splits[leftover] = splits_of_table;
    }
  }

  // --- 4. CombineTable operators per object table. ---
  for (size_t ot = 0; ot < object.tables().size(); ++ot) {
    std::vector<size_t> members;
    for (size_t p = 0; p < pieces.size(); ++p) {
      if (pieces[p].object_table == static_cast<int>(ot)) members.push_back(p);
    }
    if (members.size() <= 1) continue;
    // Deps of "piece p is isolated".
    auto isolation_deps = [&](size_t p) {
      std::vector<int> out;
      if (pieces[p].create_op >= 0) out.push_back(pieces[p].create_op);
      if (pieces[p].isolating_split >= 0) out.push_back(pieces[p].isolating_split);
      if (pieces[p].isolating_split == -2) {
        auto it = leftover_splits.find(p);
        if (it != leftover_splits.end()) {
          out.insert(out.end(), it->second.begin(), it->second.end());
        }
      }
      return out;
    };
    // Greedy combine order: start from a piece anchored at the object
    // table's anchor (one must exist for a valid object table whose anchor
    // has attributes; otherwise take the piece whose anchor reaches all).
    EntityId target_anchor = object.tables()[ot].anchor;
    size_t start = members[0];
    for (size_t m : members) {
      if (pieces[m].anchor == target_anchor) {
        start = m;
        break;
      }
    }
    std::vector<size_t> remaining;
    for (size_t m : members) {
      if (m != start) remaining.push_back(m);
    }
    // Simulate merge feasibility on attr sets.
    std::set<AttrId> merged_attrs(pieces[start].attrs.begin(), pieces[start].attrs.end());
    EntityId merged_anchor = pieces[start].anchor;
    int prev_combine = -1;
    std::vector<int> start_deps = isolation_deps(start);
    while (!remaining.empty()) {
      bool progressed = false;
      for (size_t i = 0; i < remaining.size(); ++i) {
        size_t cand = remaining[i];
        // Combinable? same anchor, or merged reaches cand's anchor with the
        // chain FKs available in the union, or vice versa.
        EntityId a = merged_anchor, b = pieces[cand].anchor;
        EntityId new_anchor;
        bool ok = false;
        std::set<AttrId> union_attrs = merged_attrs;
        union_attrs.insert(pieces[cand].attrs.begin(), pieces[cand].attrs.end());
        auto chain_ok = [&](EntityId from, EntityId to) {
          auto path = L.FkPath(from, to);
          if (!path.ok()) return false;
          for (AttrId fk : *path) {
            if (union_attrs.count(fk) == 0) return false;
          }
          return true;
        };
        if (a == b) {
          new_anchor = a;
          ok = true;
        } else if (chain_ok(a, b)) {
          new_anchor = a;
          ok = true;
        } else if (chain_ok(b, a)) {
          new_anchor = b;
          ok = true;
        }
        if (!ok) continue;
        MigrationOperator op;
        op.kind = OperatorKind::kCombineTable;
        op.id = next_id++;
        op.combine_left_rep = pieces[start].attrs[0];
        op.combine_right_rep = pieces[cand].attrs[0];
        result.ops.push_back(op);
        std::vector<int> dep_list = isolation_deps(cand);
        if (prev_combine >= 0) {
          dep_list.push_back(prev_combine);
        } else {
          dep_list.insert(dep_list.end(), start_deps.begin(), start_deps.end());
        }
        std::sort(dep_list.begin(), dep_list.end());
        dep_list.erase(std::unique(dep_list.begin(), dep_list.end()), dep_list.end());
        result.deps.push_back(std::move(dep_list));
        prev_combine = static_cast<int>(result.ops.size()) - 1;
        merged_attrs = std::move(union_attrs);
        merged_anchor = new_anchor;
        remaining.erase(remaining.begin() + static_cast<long>(i));
        progressed = true;
        break;
      }
      if (!progressed) {
        return Status::Internal("no feasible combine order for object table '" +
                                object.tables()[ot].name + "'");
      }
    }
  }

  // --- 5. Sanity: applying everything must yield the object schema. ---
  PhysicalSchema check = source;
  PSE_ASSIGN_OR_RETURN(std::vector<int> order, result.TopologicalOrder());
  for (int i : order) {
    PSE_RETURN_NOT_OK(ApplyOperator(result.ops[static_cast<size_t>(i)], &check));
  }
  if (!check.EquivalentTo(object)) {
    return Status::Internal("operator set does not reproduce the object schema:\n" +
                            check.ToString() + "\nvs\n" + object.ToString());
  }
  return result;
}

}  // namespace pse
