// LogicalDatabase: entity-level data, independent of physical layout.
//
// The data generator (e.g. TPC-W) populates entity rows once; any physical
// schema can then be materialized from them, and the migration executor uses
// them as the source of truth for CreateTable operators (values of new
// attributes). This guarantees that every physical layout of the same
// LogicalDatabase returns identical query results — the invariant the
// equivalence property tests check.
#pragma once

#include <unordered_map>
#include <vector>

#include "catalog/tuple.h"
#include "core/logical_schema.h"
#include "core/physical_schema.h"
#include "storage/database.h"

namespace pse {

/// Builds the secondary (foreign-key) B+ tree indexes of one materialized
/// table; the primary-key index is created automatically by CreateTable.
/// Used by Materialize and by the MigrationExecutor so physical databases
/// always match VirtualSchemaCatalog::HasIndex.
Status EnsureSecondaryIndexes(Database* db, const PhysicalSchema& schema, size_t table_idx);

/// \brief Rows per entity, keyed by the entity's primary key.
class LogicalDatabase {
 public:
  explicit LogicalDatabase(const LogicalSchema* logical);

  const LogicalSchema& logical() const { return *logical_; }

  /// Adds one entity row; `row[i]` is the value of `entity.attributes[i]`.
  /// The key must be a non-null BIGINT, unique within the entity.
  Status AddRow(EntityId entity, Row row);

  size_t NumRows(EntityId entity) const { return rows_[entity].size(); }
  const std::vector<Row>& Rows(EntityId entity) const { return rows_[entity]; }

  /// Row of `entity` with the given key, or nullptr.
  const Row* FindByKey(EntityId entity, int64_t key) const;

  /// Sets `attrs[i] := values[i]` on the row of `entity` with `key`.
  /// Rewriting the key attribute itself is rejected; a missing key is
  /// NotFound (callers mirroring idempotent DML treat that as a no-op).
  Status UpdateRow(EntityId entity, int64_t key,
                   const std::vector<AttrId>& attrs,
                   const std::vector<Value>& values);

  /// Removes the row of `entity` with `key`; NotFound if absent. Dangling
  /// FKs in other entities are left as-is — resolution treats them as NULL,
  /// matching the physical rewriter's fan-clear semantics.
  Status DeleteRow(EntityId entity, int64_t key);

  /// Value of `attr` within an entity row (attr must belong to the entity).
  Result<Value> AttrOfRow(EntityId entity, const Row& row, AttrId attr) const;

  /// Value of `attr` as seen from an anchor row, following the FK chain.
  /// NULL if any FK on the way is NULL or dangling.
  Result<Value> ResolveAttr(EntityId anchor, const Row& anchor_row, AttrId attr) const;

  /// Computes entity cardinalities and per-attribute statistics.
  LogicalStats ComputeStats() const;

  /// Statistics over only the first visible[e] rows of each entity (data
  /// growth support: later phases see longer prefixes).
  LogicalStats ComputeStatsPrefix(const std::vector<size_t>& visible) const;

  /// Creates and loads every table of `schema` into `db`, then ANALYZEs.
  Status Materialize(Database* db, const PhysicalSchema& schema) const;

  /// Creates and loads `schema`, restricted to the first visible[e] rows of
  /// each entity (empty vector = everything).
  Status MaterializePrefix(Database* db, const PhysicalSchema& schema,
                           const std::vector<size_t>& visible) const;

  /// Loads rows [from[e], to[e]) of each entity into the already-
  /// materialized `schema` tables (incremental growth between phases).
  Status MaterializeRange(Database* db, const PhysicalSchema& schema,
                          const std::vector<size_t>& from,
                          const std::vector<size_t>& to) const;

  /// Deprecated alias: loads rows [first_row, end).
  Status MaterializeDelta(Database* db, const PhysicalSchema& schema,
                          const std::vector<size_t>& first_row) const;

  /// Builds the physical row of `schema` table `table_idx` for one anchor
  /// row (exposed for the migration executor).
  Result<Row> BuildTableRow(const PhysicalSchema& schema, size_t table_idx,
                            const Row& anchor_row) const;

 private:
  const LogicalSchema* logical_;
  std::vector<std::vector<Row>> rows_;  // by entity
  std::vector<std::unordered_map<int64_t, size_t>> key_index_;
};

}  // namespace pse
