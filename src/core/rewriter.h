// Query rewriter (Section II's "query rewriter" component): lowers a
// LogicalQuery onto an arbitrary physical schema, producing a BoundQuery the
// planner can cost (against a VirtualSchemaCatalog) or execute (against the
// materialized Database).
//
// Lowering rules, per table T that stores a needed attribute:
//   * anchor(T) == query anchor       -> direct fragment, joined on the
//     anchor key (the reference created by SplitTable);
//   * anchor(T) deeper (anchor(T) reaches the query anchor over FKs)
//     -> the query's entity was denormalized INTO T by CombineTable; access
//     T with a DISTINCT projection keyed by the query-anchor key column it
//     carries (each anchor row appears once per child row);
//   * anchor(T) is an ancestor (query anchor reaches anchor(T)) -> parent
//     fragment, joined fk = key along the relationship chain; the chain's
//     FK attribute is resolved recursively (it lives in some table too).
//
// Correctness invariant (property-tested): executing the rewritten query on
// any valid intermediate schema returns exactly the rows of the original
// query on the source schema, provided every parent entity is *covered*
// (has at least one child row) when denormalized — the documented
// precondition of CombineTable across entities.
#pragma once

#include "core/logical_query.h"
#include "core/physical_schema.h"
#include "engine/bound_query.h"

namespace pse {

/// Lowers `query` onto `schema`. BindError when a needed attribute is not
/// stored (e.g. a new attribute whose CreateTable has not run yet).
Result<BoundQuery> RewriteQuery(const LogicalQuery& query, const PhysicalSchema& schema);

}  // namespace pse
