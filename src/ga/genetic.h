// Generic genetic-algorithm framework used by the paper's GAA.
//
// Chromosomes are integer strings. The framework provides tournament
// selection with elitism, the paper's two recombination schemes (two-point
// crossover for assignment strings, order-based crossover for permutations,
// Fig 6), and the paper's unichromosome mutation (reverse a random segment).
#pragma once

#include <functional>
#include <vector>

#include "common/rng.h"

namespace pse {

using Chromosome = std::vector<int>;

/// Parent-selection schemes.
enum class GaSelection { kTournament, kRoulette };

/// Tuning knobs for RunGa.
struct GaConfig {
  size_t population_size = 64;
  size_t generations = 100;
  /// Parent selection: tournament (default) or fitness-proportional
  /// roulette (fitness is shifted to be non-negative per generation).
  GaSelection selection = GaSelection::kTournament;
  /// Probability a child is produced by crossover (else cloned parent).
  double crossover_rate = 0.9;
  /// Probability a child is mutated.
  double mutation_rate = 0.3;
  /// Top chromosomes copied unchanged into the next generation.
  size_t elite_count = 2;
  size_t tournament_size = 3;
  /// Record best fitness per generation in GaResult::history.
  bool track_history = false;
  /// Stop early after this many generations without improvement (0 = never).
  size_t stall_generations = 0;
};

/// Problem definition; fitness is maximized.
struct GaProblem {
  /// Chromosomes injected verbatim into the initial population (repaired and
  /// evaluated like any other individual). Lets callers seed the search with
  /// known-good solutions — e.g. GAA seeding from cluster-local LAA optima.
  /// Seeds beyond population_size are ignored.
  std::vector<Chromosome> seeds;
  /// Generates a random (valid) chromosome.
  std::function<Chromosome(Rng*)> random_chromosome;
  /// Fitness; higher is better. Called once per individual per generation.
  std::function<double(const Chromosome&)> fitness;
  /// Optional: evaluates one generation's chromosomes as a batch, returning
  /// their fitnesses in order; used instead of `fitness` when set (e.g. to
  /// fan evaluations across a thread pool). RunGa produces every offspring
  /// of a generation *before* evaluating any of them, and evaluation never
  /// consumes randomness, so batch and per-element runs draw the identical
  /// rng stream — results must therefore match element-wise `fitness`.
  std::function<std::vector<double>(const std::vector<Chromosome>&)> batch_fitness;
  /// Optional: coerce a chromosome back into validity after recombination.
  std::function<void(Chromosome*, Rng*)> repair;
  /// Optional: custom crossover; defaults to TwoPointCrossover.
  std::function<Chromosome(const Chromosome&, const Chromosome&, Rng*)> crossover;
  /// Optional: custom mutation; defaults to SegmentReversalMutation.
  std::function<void(Chromosome*, Rng*)> mutate;
};

struct GaResult {
  Chromosome best;
  double best_fitness = 0;
  /// Total fitness evaluations performed.
  size_t evaluations = 0;
  /// Best fitness after each generation (when track_history).
  std::vector<double> history;
};

/// Runs the GA and returns the best chromosome found.
GaResult RunGa(const GaProblem& problem, const GaConfig& config, Rng* rng);

// -- recombination / mutation building blocks --

/// Classic two-point crossover for assignment-coded strings: the child takes
/// the slice [i, j) from parent a and everything else from parent b.
Chromosome TwoPointCrossover(const Chromosome& a, const Chromosome& b, Rng* rng);

/// The paper's permutation-preserving recombination (Fig 6): copy a random
/// contiguous slice of parent a to the front of the child, then append the
/// remaining values in the order they appear in parent b. Both parents must
/// be permutations of the same value set.
Chromosome OrderCrossover(const Chromosome& a, const Chromosome& b, Rng* rng);

/// The paper's unichromosome mutation: reverse a random segment, inclusive.
void SegmentReversalMutation(Chromosome* c, Rng* rng);

/// Assignment-string point mutation: re-draw one gene uniformly in
/// [0, max_value].
void PointMutation(Chromosome* c, int max_value, Rng* rng);

}  // namespace pse
