#include "ga/genetic.h"

#include <algorithm>
#include <cassert>

namespace pse {

Chromosome TwoPointCrossover(const Chromosome& a, const Chromosome& b, Rng* rng) {
  if (a.empty()) return a;
  size_t n = a.size();
  size_t i = rng->Index(n);
  size_t j = rng->Index(n);
  if (i > j) std::swap(i, j);
  Chromosome child = b;
  for (size_t k = i; k <= j && k < n; ++k) child[k] = a[k];
  return child;
}

Chromosome OrderCrossover(const Chromosome& a, const Chromosome& b, Rng* rng) {
  if (a.empty()) return a;
  size_t n = a.size();
  size_t i = rng->Index(n);
  size_t j = rng->Index(n);
  if (i > j) std::swap(i, j);
  Chromosome child;
  child.reserve(n);
  std::vector<bool> taken_value;  // values are a permutation of 0..n-1 typically,
  // but support arbitrary ints via a sorted lookup.
  std::vector<int> slice(a.begin() + static_cast<long>(i), a.begin() + static_cast<long>(j) + 1);
  child.insert(child.end(), slice.begin(), slice.end());
  std::vector<int> sorted_slice = slice;
  std::sort(sorted_slice.begin(), sorted_slice.end());
  auto in_slice = [&sorted_slice](int v) {
    return std::binary_search(sorted_slice.begin(), sorted_slice.end(), v);
  };
  for (int v : b) {
    if (!in_slice(v)) child.push_back(v);
  }
  return child;
}

void SegmentReversalMutation(Chromosome* c, Rng* rng) {
  if (c->size() < 2) return;
  size_t i = rng->Index(c->size());
  size_t j = rng->Index(c->size());
  if (i > j) std::swap(i, j);
  std::reverse(c->begin() + static_cast<long>(i), c->begin() + static_cast<long>(j) + 1);
}

void PointMutation(Chromosome* c, int max_value, Rng* rng) {
  if (c->empty()) return;
  size_t i = rng->Index(c->size());
  (*c)[i] = static_cast<int>(rng->UniformInt(0, max_value));
}

GaResult RunGa(const GaProblem& problem, const GaConfig& config, Rng* rng) {
  GaResult result;
  struct Individual {
    Chromosome genes;
    double fitness;
  };
  auto crossover = problem.crossover
                       ? problem.crossover
                       : [](const Chromosome& a, const Chromosome& b, Rng* r) {
                           return TwoPointCrossover(a, b, r);
                         };
  auto mutate = problem.mutate ? problem.mutate
                               : [](Chromosome* c, Rng* r) { SegmentReversalMutation(c, r); };

  // Evaluates a whole cohort at once (batch hook or element-wise fitness).
  // Cohorts are fully generated before evaluation, so the rng stream is
  // identical either way — evaluation consumes no randomness.
  auto evaluate_all = [&](const std::vector<Chromosome>& cohort) {
    std::vector<double> fitnesses;
    if (problem.batch_fitness) {
      fitnesses = problem.batch_fitness(cohort);
    } else {
      fitnesses.reserve(cohort.size());
      for (const Chromosome& c : cohort) fitnesses.push_back(problem.fitness(c));
    }
    result.evaluations += cohort.size();
    return fitnesses;
  };

  std::vector<Individual> population;
  population.reserve(config.population_size);
  {
    std::vector<Chromosome> cohort;
    cohort.reserve(config.population_size);
    for (size_t i = 0; i < config.population_size; ++i) {
      Chromosome c = i < problem.seeds.size() ? problem.seeds[i] : problem.random_chromosome(rng);
      if (problem.repair) problem.repair(&c, rng);
      cohort.push_back(std::move(c));
    }
    std::vector<double> fitnesses = evaluate_all(cohort);
    for (size_t i = 0; i < cohort.size(); ++i) {
      population.push_back(Individual{std::move(cohort[i]), fitnesses[i]});
    }
  }

  auto by_fitness_desc = [](const Individual& x, const Individual& y) {
    return x.fitness > y.fitness;
  };
  std::sort(population.begin(), population.end(), by_fitness_desc);
  result.best = population.front().genes;
  result.best_fitness = population.front().fitness;

  size_t stall = 0;
  for (size_t gen = 0; gen < config.generations; ++gen) {
    std::vector<Individual> next;
    next.reserve(config.population_size);
    // Elitism.
    for (size_t e = 0; e < config.elite_count && e < population.size(); ++e) {
      next.push_back(population[e]);
    }
    auto tournament = [&]() -> const Individual& {
      const Individual* best = &population[rng->Index(population.size())];
      for (size_t t = 1; t < config.tournament_size; ++t) {
        const Individual& cand = population[rng->Index(population.size())];
        if (cand.fitness > best->fitness) best = &cand;
      }
      return *best;
    };
    // Roulette: cumulative fitness shifted so the minimum contributes ~0.
    std::vector<double> wheel;
    if (config.selection == GaSelection::kRoulette) {
      double min_fitness = population.back().fitness;  // sorted desc
      double acc = 0;
      wheel.reserve(population.size());
      for (const auto& ind : population) {
        acc += (ind.fitness - min_fitness) + 1e-12;
        wheel.push_back(acc);
      }
    }
    auto roulette = [&]() -> const Individual& {
      double target = rng->UniformDouble() * wheel.back();
      size_t lo = 0, hi = wheel.size() - 1;
      while (lo < hi) {
        size_t mid = (lo + hi) / 2;
        if (wheel[mid] < target) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      return population[lo];
    };
    auto select = [&]() -> const Individual& {
      return config.selection == GaSelection::kRoulette ? roulette() : tournament();
    };
    // Produce the whole offspring cohort first (selection only reads the
    // *current* population's fitnesses), then evaluate it in one batch.
    std::vector<Chromosome> cohort;
    cohort.reserve(config.population_size - next.size());
    while (next.size() + cohort.size() < config.population_size) {
      const Individual& p1 = select();
      Chromosome child;
      if (rng->Bernoulli(config.crossover_rate)) {
        const Individual& p2 = select();
        child = crossover(p1.genes, p2.genes, rng);
      } else {
        child = p1.genes;
      }
      if (rng->Bernoulli(config.mutation_rate)) mutate(&child, rng);
      if (problem.repair) problem.repair(&child, rng);
      cohort.push_back(std::move(child));
    }
    std::vector<double> fitnesses = evaluate_all(cohort);
    for (size_t i = 0; i < cohort.size(); ++i) {
      next.push_back(Individual{std::move(cohort[i]), fitnesses[i]});
    }
    population = std::move(next);
    std::sort(population.begin(), population.end(), by_fitness_desc);
    if (population.front().fitness > result.best_fitness) {
      result.best_fitness = population.front().fitness;
      result.best = population.front().genes;
      stall = 0;
    } else {
      ++stall;
    }
    if (config.track_history) result.history.push_back(result.best_fitness);
    if (config.stall_generations > 0 && stall >= config.stall_generations) break;
  }
  return result;
}

}  // namespace pse
