#include "analysis/diagnostic.h"

namespace pse {

const char* DiagCodeName(DiagCode code) {
  switch (code) {
    case DiagCode::kOpsetArity:
      return "OPSET_ARITY";
    case DiagCode::kOpsetDepCycle:
      return "OPSET_DEP_CYCLE";
    case DiagCode::kOpsetDanglingRef:
      return "OPSET_DANGLING_REF";
    case DiagCode::kOpsetNotApplicable:
      return "OPSET_NOT_APPLICABLE";
    case DiagCode::kOpsetReapply:
      return "OPSET_REAPPLY";
    case DiagCode::kOpsetNoConvergence:
      return "OPSET_NO_CONVERGENCE";
    case DiagCode::kSchemaInvalid:
      return "SCHEMA_INVALID";
    case DiagCode::kPreserveAttrLost:
      return "PRESERVE_ATTR_LOST";
    case DiagCode::kPreserveSplitLossy:
      return "PRESERVE_SPLIT_LOSSY";
    case DiagCode::kPreserveCombineCoverage:
      return "PRESERVE_COMBINE_COVERAGE";
    case DiagCode::kWorkloadArity:
      return "WORKLOAD_ARITY";
    case DiagCode::kWorkloadUnanswerableSource:
      return "WORKLOAD_UNANSWERABLE_SOURCE";
    case DiagCode::kWorkloadUnanswerableObject:
      return "WORKLOAD_UNANSWERABLE_OBJECT";
    case DiagCode::kWorkloadUnanswerableIntermediate:
      return "WORKLOAD_UNANSWERABLE_INTERMEDIATE";
    case DiagCode::kAnalysisCostIrrelevantOp:
      return "ANALYSIS_COST_IRRELEVANT_OP";
    case DiagCode::kResumeInvalidBatch:
      return "RESUME_INVALID_BATCH";
    case DiagCode::kResumeNondurable:
      return "RESUME_NONDURABLE";
    case DiagCode::kResumeLongOp:
      return "RESUME_LONG_OP";
    case DiagCode::kResumeBatchPlan:
      return "RESUME_BATCH_PLAN";
    case DiagCode::kConcurrencyQuiesceStall:
      return "CONCURRENCY_QUIESCE_STALL";
    case DiagCode::kConcurrencyHotSource:
      return "CONCURRENCY_HOT_SOURCE";
    case DiagCode::kConcurrencyUnservablePhase:
      return "CONCURRENCY_UNSERVABLE_PHASE";
    case DiagCode::kConcurrencySingleLane:
      return "CONCURRENCY_SINGLE_LANE";
    case DiagCode::kWriteLossyCombine:
      return "WRITE_LOSSY_COMBINE";
    case DiagCode::kWriteSplitRoutingAmbiguous:
      return "WRITE_SPLIT_ROUTING_AMBIGUOUS";
    case DiagCode::kWriteUnservableWindow:
      return "WRITE_UNSERVABLE_WINDOW";
    case DiagCode::kWriteProvenanceRequired:
      return "WRITE_PROVENANCE_REQUIRED";
    case DiagCode::kLockOrderInversion:
      return "LOCK_ORDER_INVERSION";
    case DiagCode::kLockUpgrade:
      return "LOCK_UPGRADE";
    case DiagCode::kLockRecursive:
      return "LOCK_RECURSIVE";
    case DiagCode::kLockHeldAcrossIo:
      return "LOCK_HELD_ACROSS_IO";
    case DiagCode::kLockCycle:
      return "LOCK_CYCLE";
    case DiagCode::kLockGraphClean:
      return "LOCK_GRAPH_CLEAN";
  }
  return "UNKNOWN";
}

const char* DiagSeverityName(DiagSeverity severity) {
  switch (severity) {
    case DiagSeverity::kError:
      return "error";
    case DiagSeverity::kWarning:
      return "warning";
    case DiagSeverity::kNote:
      return "note";
  }
  return "?";
}

std::string Diagnostic::ToString() const {
  std::string out = DiagSeverityName(severity);
  out += " ";
  out += DiagCodeName(code);
  if (!location.empty()) {
    out += " [" + location + "]";
  }
  out += ": " + message;
  return out;
}

void DiagnosticReport::Add(DiagSeverity severity, DiagCode code, std::string location,
                           std::string message) {
  if (severity == DiagSeverity::kError) {
    ++num_errors_;
  } else if (severity == DiagSeverity::kWarning) {
    ++num_warnings_;
  }
  diags_.push_back(Diagnostic{severity, code, std::move(location), std::move(message)});
}

void DiagnosticReport::Merge(const DiagnosticReport& other) {
  for (const Diagnostic& d : other.diags_) {
    Add(d.severity, d.code, d.location, d.message);
  }
}

bool DiagnosticReport::HasCode(DiagCode code) const {
  for (const Diagnostic& d : diags_) {
    if (d.code == code) return true;
  }
  return false;
}

std::vector<Diagnostic> DiagnosticReport::WithCode(DiagCode code) const {
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : diags_) {
    if (d.code == code) out.push_back(d);
  }
  return out;
}

std::string DiagnosticReport::ToString() const {
  if (diags_.empty()) return "";
  std::string out;
  for (const Diagnostic& d : diags_) {
    out += d.ToString() + "\n";
  }
  out += std::to_string(errors()) + " error(s), " + std::to_string(warnings()) +
         " warning(s), " + std::to_string(notes()) + " note(s)\n";
  return out;
}

Status DiagnosticReport::ToStatus() const {
  if (ok()) return Status::OK();
  for (const Diagnostic& d : diags_) {
    if (d.severity == DiagSeverity::kError) {
      return Status::InvalidArgument("migration verification failed (" +
                                     std::to_string(errors()) + " error(s)); first: " +
                                     d.ToString());
    }
  }
  return Status::InvalidArgument("migration verification failed");
}

}  // namespace pse
