// Operator-interaction analyzer: exact plan-space pruning for LAA and
// query/cost provenance for every planner.
//
// LAA enumerates every dependency-closed subset of the remaining operators —
// O(2^m) schema cost estimations per migration point. Most of that
// enumeration is provably redundant: the phase cost C(Schema) = sum C_i*F_i
// decomposes over queries, and each query's cost depends only on the tables
// that store the attributes its rewrite can touch. This analyzer computes:
//
//  (a) the *footprint* of each MigrationOperator — the non-key attributes of
//      every table the operator reads or writes, captured by symbolic replay
//      (like the verifier's) plus the operand tables in the source schema;
//  (b) a pairwise *interference graph* — two operators interfere iff their
//      footprints overlap, one depends on the other, or some workload query's
//      support set touches both;
//  (c) connected-component *clusters* whose dependency-closed subsets can be
//      enumerated independently and combined best-per-cluster — exact,
//      because no query's cost term spans two clusters (queries that would
//      are merged into one cluster by construction), so the argmin over the
//      product space factorizes;
//  (d) per-query *relevance sets* — which operators can affect a query's
//      rewrite or cost on any reachable intermediate schema — so planners
//      re-estimate cost deltas only for affected queries, and operators no
//      query ever touches surface as ANALYSIS_COST_IRRELEVANT_OP notes.
//
// The exactness argument is spelled out in DESIGN.md §12 and property-tested
// against brute-force SelectOpsLaa in tests/analysis/interaction_test.cc.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "core/mapping.h"
#include "core/workload.h"

namespace pse {

class QueryCostCache;
class ThreadPool;

/// Opt-in toggles for interaction-analysis-driven planning. Defaults keep
/// LAA pruning on (it is exact) and the heuristic consumers off.
struct AnalysisOptions {
  /// LAA: enumerate per-cluster powersets and combine best-per-cluster
  /// choices instead of the full 2^m sweep. Exact under the interference
  /// analysis; the max_ops guard then bounds the largest cluster, not m.
  bool prune_laa = true;
  /// GAA: seed the GA population with the greedy trajectory of cluster-wise
  /// LAA (cluster-local optima per phase), accelerating convergence.
  bool seed_gaa_from_clusters = false;
  /// SchemaAdvisor: when scoring a candidate operator, re-estimate only the
  /// queries whose support set intersects the operator's footprint.
  bool advisor_query_relevance = false;
  /// Shared memoized query-cost cache (engine/cost_cache.h), keyed by the
  /// layout fingerprints below. Caller-owned so it persists across subsets,
  /// GA generations, and migration points; null = no caching. Exact: two
  /// schemas share an entry only when the query's relevant tables agree
  /// (DESIGN.md §13), and results stay bit-identical to uncached runs.
  QueryCostCache* cost_cache = nullptr;
  /// Thread pool (common/thread_pool.h) for parallel candidate costing:
  /// per-cluster powersets in LAA, per-individual GA evaluation, per-
  /// candidate advisor scoring. Null = serial. Planning is deterministic
  /// either way: costs land in index-addressed slots and are reduced
  /// serially in enumeration order.
  ThreadPool* pool = nullptr;

  // -- write-safety planning dimension (analysis/writability.h) --
  /// Price each candidate schema by its writability matrix for the declared
  /// live versions: write_unservable_penalty per unservable write cell plus
  /// write_propagation_penalty per needs-propagation one, added to the
  /// phase cost C(Schema) and surfaced in the planner result's
  /// write_penalty. Off by default: results stay bit-identical to planning
  /// without the knob.
  bool write_safety = false;
  /// The old application's layout (defines the old version's tables). Null =
  /// the planner's starting schema — correct at migration start; pass the
  /// original source explicitly when planning resumes mid-migration.
  const PhysicalSchema* write_old_schema = nullptr;
  /// Which versions are live (drive whose matrices are priced). The new
  /// version's layout is the planner's object schema.
  bool write_old_live = true;
  bool write_new_live = true;
  double write_unservable_penalty = 1e6;
  double write_propagation_penalty = 0.0;
  /// Hard-reject: candidates opening a write-unservable window for a live
  /// version price as +infinity instead (they lose to any servable plan;
  /// when every candidate is rejected the least-bad one is still returned,
  /// recognizable by an infinite write_penalty).
  bool write_reject_unservable = false;
};

/// Read/write footprint of one operator, per (a) above.
struct OperatorFootprint {
  /// Non-key attributes of every table the operator can read or write.
  std::set<AttrId> attrs;
  /// Anchor entities of those tables (display/reporting only).
  std::set<EntityId> anchors;
};

/// One interference cluster, per (c) above.
struct InteractionCluster {
  std::vector<int> ops;        ///< member operator indices, topological order
  std::vector<size_t> queries; ///< workload query indices coupled to this cluster
  /// Dependency-closed subsets of `ops` (= schemas a per-cluster LAA costs);
  /// 0 when the cluster is too large to count by enumeration.
  uint64_t closed_subsets = 0;
};

/// \brief The full analysis over (OperatorSet, PhysicalSchema, workload).
struct InteractionAnalysis {
  std::vector<int> remaining;  ///< not-yet-applied operator indices
  /// Footprint of remaining[i], parallel to `remaining`.
  std::vector<OperatorFootprint> footprints;
  std::vector<InteractionCluster> clusters;
  /// cluster_of[op] = index into `clusters`, or -1 when already applied.
  std::vector<int> cluster_of;
  /// Relevance sets (d): query_ops[q] = remaining operators that can affect
  /// query q's rewrite/cost on any reachable intermediate schema. Empty when
  /// no workload was supplied.
  std::vector<std::vector<int>> query_ops;
  /// Queries no remaining operator can affect: their cost is constant across
  /// the whole plan space and needs estimating once per schema, not 2^m times.
  std::vector<size_t> untouched_queries;
  /// Product of per-cluster closed-subset counts = dependency-closed subsets
  /// a brute-force LAA would cost. Double: the whole point is that this can
  /// dwarf 2^63. Upper-bounded by 2^size for clusters too large to count.
  double closed_subsets_total = 1;

  /// Human-readable report: footprints, interference clusters, plan-space
  /// reduction, per-query relevance, cost-irrelevant operators.
  std::string ToString(const OperatorSet& opset, const LogicalSchema& logical,
                       const std::vector<WorkloadQuery>* queries) const;
};

/// Non-key attributes whose placement differs between `before` and `after`:
/// the union of non-key attrs of every table present in one schema but not
/// (identically) in the other. This is exactly what one operator application
/// touches when `after` = `before` + op.
std::set<AttrId> SchemaDeltaAttrs(const PhysicalSchema& before, const PhysicalSchema& after);

/// The non-key attributes `query`'s rewrite (and therefore cost) can depend
/// on: its referenced attributes plus the FK-chain attributes the rewriter
/// resolves to join parent fragments. An empty result means the query gives
/// the analysis nothing to anchor on (e.g. key-only selects) and callers
/// must treat it as coupled to everything.
std::set<AttrId> QuerySupportAttrs(const LogicalQuery& query, const LogicalSchema& logical);

/// Canonical serialization of the physical layout `schema` gives to the
/// attributes in `support`: the distinct tables storing them (anchor + full
/// attribute list, names ignored — cost is structural), sorted, plus an
/// explicit marker per absent attribute. Two schemas produce the same key
/// iff they agree on every relevant table, which is exactly when a query
/// with that support set rewrites, plans, and costs identically (DESIGN.md
/// §13). An empty support set serializes the *whole* schema — the same
/// conservative fallback the interference analysis uses for key-only
/// queries.
std::string LayoutKey(const std::set<AttrId>& support, const PhysicalSchema& schema);

/// Stable content hash of a statistics snapshot, folded into cost-cache keys
/// so phases with different predicted data statistics never share entries.
uint64_t StatsFingerprint(const LogicalStats& stats);

/// \brief Runs the analysis. `applied` marks operators already applied in
/// earlier migration points (excluded from the graph); `queries` is optional
/// (null disables query coupling and relevance sets — clusters then reflect
/// footprint overlap and dependencies only, which is still exact for any
/// workload whose every query couples at most one cluster... callers that
/// plan against a workload must pass it). `coupling` (optional) supplies
/// extra attribute groups that must not span clusters: all remaining
/// operators whose footprint intersects one group are united, exactly like a
/// query's support set. The write-safety planners pass the live versions'
/// per-table attribute sets here so each table's penalty term is confined to
/// one cluster (analysis/writability.h); null changes nothing.
///
/// Fails when the operator set cannot be replayed (cycle, inapplicable op) —
/// run VerifyMigration first; the planners' gate already does.
Result<InteractionAnalysis> AnalyzeInteractions(const OperatorSet& opset,
                                                const PhysicalSchema& source,
                                                const std::vector<bool>& applied,
                                                const std::vector<WorkloadQuery>* queries,
                                                const std::vector<std::set<AttrId>>* coupling =
                                                    nullptr);

/// Appends ANALYSIS_COST_IRRELEVANT_OP notes to `report`: one per remaining
/// operator whose footprint no workload query's support set touches. Such
/// operators cannot change C(Schema) in any phase — they are pure data
/// movement whose only scheduling constraint is the completion deadline.
void ReportCostIrrelevantOps(const InteractionAnalysis& analysis, const OperatorSet& opset,
                             const LogicalSchema& logical, DiagnosticReport* report);

}  // namespace pse
