#include "analysis/resumability.h"

#include "core/operators.h"

namespace pse {

namespace {

/// Rows `op` will write into its destination tables, from entity
/// cardinalities. `before` is the schema the operator applies to.
uint64_t EstimateRowsMoved(const MigrationOperator& op, const PhysicalSchema& before,
                           const LogicalStats& stats) {
  auto entity_rows = [&](EntityId e) -> uint64_t {
    return e < stats.entity_rows.size() ? stats.entity_rows[e] : 0;
  };
  switch (op.kind) {
    case OperatorKind::kCreateTable:
      return entity_rows(op.create_entity);
    case OperatorKind::kSplitTable: {
      auto ti = before.TableOfNonKeyAttr(op.split_moved[0]);
      if (!ti.ok()) return 0;
      uint64_t source_rows = entity_rows(before.tables()[*ti].anchor);
      // The rest side keeps every source row; the moved side stores one row
      // per key of its anchor (deduplicated when the anchors differ).
      uint64_t moved_rows = before.tables()[*ti].anchor == op.split_moved_anchor
                                ? source_rows
                                : entity_rows(op.split_moved_anchor);
      return source_rows + moved_rows;
    }
    case OperatorKind::kCombineTable: {
      auto ti = before.TableOfNonKeyAttr(op.combine_left_rep);
      if (!ti.ok()) return 0;
      // A left outer join preserves exactly the left (anchor) side's rows.
      return entity_rows(before.tables()[*ti].anchor);
    }
  }
  return 0;
}

}  // namespace

DiagnosticReport AnalyzeResumability(const ResumabilityInput& input,
                                     const ResumabilityOptions& options,
                                     std::vector<OpBatchEstimate>* estimates) {
  DiagnosticReport report;
  if (input.source == nullptr || input.opset == nullptr) {
    report.AddError(DiagCode::kResumeInvalidBatch, "input",
                    "resumability analysis needs a source schema and an operator set");
    return report;
  }
  const MigrationOptions& mo = input.options;

  if (mo.batch_rows == 0) {
    report.AddError(DiagCode::kResumeInvalidBatch, "options",
                    "batch_rows is 0: a batch can never make progress");
  }
  if (!input.persistent) {
    report.AddWarning(DiagCode::kResumeNondurable, "database",
                      "database is in-memory: the migration journal cannot survive a "
                      "crash; every operator restarts from zero");
  } else if (mo.durability == MigrationOptions::Durability::kFinalOnly) {
    report.AddWarning(DiagCode::kResumeNondurable, "options",
                      "durability=final-only: batches are not checkpointed, so a crash "
                      "mid-operator cannot resume from the journal");
  }

  // Replay the remaining operators structurally, estimating each one's batch
  // schedule on the schema it will actually see.
  auto topo = input.opset->TopologicalOrder();
  if (!topo.ok()) return report;  // cycles are the verifier's finding, not ours
  PhysicalSchema current = *input.source;
  for (int idx : *topo) {
    const MigrationOperator& op = input.opset->ops[static_cast<size_t>(idx)];
    PhysicalSchema after = current;
    if (!ApplyOperator(op, &after).ok()) break;  // verifier reports this
    if (input.applied != nullptr && static_cast<size_t>(idx) < input.applied->size() &&
        (*input.applied)[static_cast<size_t>(idx)]) {
      // Already applied: advance the schema it produced, but do not schedule
      // batches for it again.
      current = std::move(after);
      continue;
    }
    uint64_t rows = input.stats != nullptr ? EstimateRowsMoved(op, current, *input.stats) : 0;
    OpBatchEstimate est;
    est.op_id = op.id;
    est.rows_moved = rows;
    if (mo.batch_rows > 0) {
      // Even an empty source commits one (empty) batch.
      est.batches = rows == 0 ? 1 : (rows + mo.batch_rows - 1) / mo.batch_rows;
    }
    std::string loc = "op#" + std::to_string(op.id);
    if (est.batches > options.long_op_batches) {
      report.AddWarning(DiagCode::kResumeLongOp, loc,
                        "moves ~" + std::to_string(rows) + " rows in " +
                            std::to_string(est.batches) + " batches of " +
                            std::to_string(mo.batch_rows) +
                            "; sources and targets coexist for the whole window");
    } else if (options.note_batch_plan) {
      report.AddNote(DiagCode::kResumeBatchPlan, loc,
                     "moves ~" + std::to_string(rows) + " rows in " +
                         std::to_string(est.batches) + " batch(es) of " +
                         std::to_string(mo.batch_rows));
    }
    if (estimates != nullptr) estimates->push_back(est);
    current = std::move(after);
  }
  return report;
}

}  // namespace pse
