// Migration-plan static verifier: checks migration artifacts *before*
// anything executes, so ill-formed operator sets, lossy splits, and
// unanswerable workloads surface as structured Diagnostics instead of
// execution-time failures (or silent information loss).
//
// Three check families (each toggleable via VerifyOptions):
//
//  (a) operator-set well-formedness — dependency arity/cycles, dangling
//      table/attribute/FD references, each operator applicable exactly once
//      when the full set is replayed symbolically on the current schema, and
//      source -> object reachability (the replay must converge to a schema
//      structurally equivalent to the object schema);
//
//  (b) information preservation — every source attribute remains derivable
//      at every intermediate schema LAA may choose (dependency-closed
//      subsets when 2^m is affordable, topological prefixes otherwise);
//      every SplitTable is lossless-join (the moved fragment's anchor key
//      functionally determines the moved attributes and stays joinable to
//      the remainder); every cross-entity CombineTable is flagged with its
//      tuple-preservation precondition (parent rows without children);
//
//  (c) workload lint — every workload query must be answerable (rewritable)
//      on the object schema; old-version queries on the current schema;
//      queries unanswerable on a candidate intermediate schema are reported
//      so planners can reject candidates up front (expected deferrals of
//      new-attribute queries are notes, anything else a warning).
#pragma once

#include <vector>

#include "analysis/diagnostic.h"
#include "core/mapping.h"
#include "core/workload.h"

namespace pse {

struct MigrationContext;  // core/migration_planner.h

/// Tuning knobs for VerifyMigration.
struct VerifyOptions {
  bool check_opset = true;
  bool check_preservation = true;
  bool check_workload = true;
  /// Candidate intermediate schemas are enumerated exhaustively (every
  /// dependency-closed subset of the remaining operators, mirroring LAA)
  /// while m <= max_exhaustive_ops; above that, topological prefixes.
  size_t max_exhaustive_ops = 12;
  /// Emit a note when a query is unanswerable on an intermediate schema
  /// only because the CreateTable introducing a new attribute it needs has
  /// not been applied yet (the expected fallback-pricing case).
  bool note_expected_deferrals = true;
  /// Require old-version queries to be answerable on the current (source)
  /// schema. On by default; the schema advisor turns it off because its seed
  /// legitimately lacks the workload attributes it is about to create.
  bool check_source_answerability = true;
};

/// The artifacts under verification. `source` is the schema at the current
/// migration point; `applied` (optional, all-false when null) marks operators
/// already applied in earlier points, which are reference-checked but not
/// replayed. `queries`/`phase_freqs` are optional: null skips workload lint.
struct VerifyInput {
  const PhysicalSchema* source = nullptr;
  const PhysicalSchema* object = nullptr;
  const OperatorSet* opset = nullptr;
  const std::vector<bool>* applied = nullptr;
  const std::vector<WorkloadQuery>* queries = nullptr;
  const std::vector<std::vector<double>>* phase_freqs = nullptr;
};

/// \brief Runs all enabled checks; never fails — problems come back as
/// diagnostics (report.ok() == no errors).
DiagnosticReport VerifyMigration(const VerifyInput& input, const VerifyOptions& options = {});

/// Convenience gate: OK when the report carries no errors, else
/// InvalidArgument with the first error line.
Status VerifyMigrationOrError(const VerifyInput& input, const VerifyOptions& options = {});

/// Adapter: verifies a planner's MigrationContext (current schema, object,
/// opset, applied mask, workload). Used by SelectOpsLaa/PlanGaa as a cheap
/// well-formedness gate before costing candidates.
DiagnosticReport VerifyContext(const MigrationContext& ctx, const VerifyOptions& options = {});

/// The logical attributes a query references (select + filters + group by),
/// resolved by name. Unresolvable names are skipped and reported through
/// `report` (error kWorkloadUnanswerableObject) when it is non-null.
std::vector<AttrId> ReferencedAttrs(const LogicalQuery& query, const LogicalSchema& logical,
                                    DiagnosticReport* report = nullptr);

}  // namespace pse
