#include "analysis/interaction.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>

#include "analysis/verifier.h"
#include "core/operators.h"

namespace pse {

namespace {

/// Clusters above this size get closed_subsets = 0 (counting is itself a
/// 2^size enumeration; anything larger is un-enumerable for LAA anyway).
constexpr size_t kMaxCountableCluster = 24;

/// Collects the non-key attrs + anchor of table `ti` into a footprint.
void AddTable(const LogicalSchema& L, const PhysicalTable& table, OperatorFootprint* fp) {
  fp->anchors.insert(table.anchor);
  for (AttrId a : table.attrs) {
    if (!L.attr(a).is_key) fp->attrs.insert(a);
  }
}

/// The operand tables of `op` as they stand in `schema` (ignoring tables the
/// schema does not store — e.g. a combine rep not yet isolated).
void AddOperandTables(const LogicalSchema& L, const PhysicalSchema& schema,
                      const MigrationOperator& op, OperatorFootprint* fp) {
  switch (op.kind) {
    case OperatorKind::kCreateTable:
      // Creates only add a fresh fragment; they read key values from a
      // carrier but never change an existing table's contents.
      break;
    case OperatorKind::kSplitTable: {
      auto ti = schema.TableOfNonKeyAttr(op.split_moved[0]);
      if (ti.ok()) AddTable(L, schema.tables()[*ti], fp);
      break;
    }
    case OperatorKind::kCombineTable: {
      for (AttrId rep : {op.combine_left_rep, op.combine_right_rep}) {
        auto ti = schema.TableOfNonKeyAttr(rep);
        if (ti.ok()) AddTable(L, schema.tables()[*ti], fp);
      }
      break;
    }
  }
}

/// Tables of `a` that have no structurally identical counterpart in `b`.
void AddUnmatchedTables(const LogicalSchema& L, const PhysicalSchema& a,
                        const PhysicalSchema& b, OperatorFootprint* fp) {
  std::map<std::pair<EntityId, std::vector<AttrId>>, int> other;
  for (const PhysicalTable& t : b.tables()) ++other[{t.anchor, t.attrs}];
  for (const PhysicalTable& t : a.tables()) {
    auto it = other.find({t.anchor, t.attrs});
    if (it != other.end() && it->second > 0) {
      --it->second;
    } else {
      AddTable(L, t, fp);
    }
  }
}

struct UnionFind {
  std::vector<int> parent;
  explicit UnionFind(size_t n) : parent(n) {
    for (size_t i = 0; i < n; ++i) parent[i] = static_cast<int>(i);
  }
  int Find(int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  }
  void Unite(int a, int b) { parent[static_cast<size_t>(Find(a))] = Find(b); }
};

/// Dependency-closed subsets of one cluster by bitmask enumeration.
/// `depmask[i]` holds the within-cluster prerequisite bits of member i.
uint64_t CountClosedSubsets(const std::vector<uint64_t>& depmask) {
  const size_t k = depmask.size();
  uint64_t count = 0;
  for (uint64_t mask = 0; mask < (1ull << k); ++mask) {
    bool closed = true;
    for (size_t b = 0; b < k && closed; ++b) {
      if ((mask >> b) & 1) closed = (depmask[b] & ~mask) == 0;
    }
    if (closed) ++count;
  }
  return count;
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ", ";
    out += names[i];
  }
  return out;
}

}  // namespace

std::string LayoutKey(const std::set<AttrId>& support, const PhysicalSchema& schema) {
  std::string out;
  std::set<size_t> tables;
  if (support.empty()) {
    // Nothing to anchor on: the whole schema is the relevant layout.
    for (size_t t = 0; t < schema.tables().size(); ++t) tables.insert(t);
  } else {
    for (AttrId a : support) {
      auto ti = schema.TableOfNonKeyAttr(a);
      if (ti.ok()) {
        tables.insert(*ti);
      } else {
        out += '!';  // absent: the query cannot bind to it
        out += std::to_string(a);
        out += ';';
      }
    }
  }
  // Serialize the relevant tables structurally (anchor + attrs; names carry
  // no cost information), sorted so the key is schema-order independent.
  std::vector<std::string> parts;
  parts.reserve(tables.size());
  for (size_t t : tables) {
    const PhysicalTable& table = schema.tables()[t];
    std::string part = "T";
    part += std::to_string(table.anchor);
    part += ':';
    for (AttrId a : table.attrs) {
      part += std::to_string(a);
      part += ',';
    }
    parts.push_back(std::move(part));
  }
  std::sort(parts.begin(), parts.end());
  for (const std::string& part : parts) {
    out += part;
    out += ";";
  }
  return out;
}

uint64_t StatsFingerprint(const LogicalStats& stats) {
  uint64_t h = 14695981039346656037ULL;  // FNV-1a over the 8-byte snapshot fields
  auto mix = [&h](uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  mix(stats.entity_rows.size());
  for (uint64_t rows : stats.entity_rows) mix(rows);
  mix(stats.attrs.size());
  for (const LogicalAttrStats& a : stats.attrs) {
    mix(a.num_distinct);
    mix(a.min ? static_cast<uint64_t>(*a.min) : 0x5bd1e995ULL);
    mix(a.max ? static_cast<uint64_t>(*a.max) : 0x5bd1e995ULL);
    uint64_t null_bits = 0;
    static_assert(sizeof(a.null_fraction) == sizeof(null_bits));
    std::memcpy(&null_bits, &a.null_fraction, sizeof(null_bits));
    mix(null_bits);
  }
  return h;
}

std::set<AttrId> SchemaDeltaAttrs(const PhysicalSchema& before, const PhysicalSchema& after) {
  const LogicalSchema& L = *before.logical();
  OperatorFootprint fp;
  AddUnmatchedTables(L, before, after, &fp);
  AddUnmatchedTables(L, after, before, &fp);
  return std::move(fp.attrs);
}

std::set<AttrId> QuerySupportAttrs(const LogicalQuery& query, const LogicalSchema& logical) {
  std::set<AttrId> out;
  for (AttrId a : ReferencedAttrs(query, logical, nullptr)) {
    if (logical.attr(a).is_key) continue;  // keys ride along with their tables
    out.insert(a);
    EntityId e = logical.attr(a).entity;
    if (e == query.anchor) continue;
    // Parent fragment: the rewriter joins anchor -> e along the FK chain and
    // resolves each chain FK's own placement, so those attributes are part
    // of the query's support. (The denormalized direction — a table anchored
    // deeper that stores `a` — carries its chain FKs in the same table by
    // the physical-schema invariants, so `a` itself already covers it.)
    auto path = logical.FkPath(query.anchor, e);
    if (path.ok()) out.insert(path->begin(), path->end());
  }
  return out;
}

Result<InteractionAnalysis> AnalyzeInteractions(const OperatorSet& opset,
                                                const PhysicalSchema& source,
                                                const std::vector<bool>& applied,
                                                const std::vector<WorkloadQuery>* queries,
                                                const std::vector<std::set<AttrId>>* coupling) {
  if (source.logical() == nullptr) {
    return Status::InvalidArgument("source schema has no logical schema");
  }
  if (applied.size() != opset.size()) {
    return Status::InvalidArgument("applied mask arity does not match the operator set");
  }
  const LogicalSchema& L = *source.logical();
  PSE_ASSIGN_OR_RETURN(std::vector<int> topo, opset.TopologicalOrder());

  InteractionAnalysis out;
  std::vector<int> position(opset.size(), -1);
  for (int idx : topo) {
    if (!applied[static_cast<size_t>(idx)]) {
      position[static_cast<size_t>(idx)] = static_cast<int>(out.remaining.size());
      out.remaining.push_back(idx);
    }
  }
  const size_t m = out.remaining.size();
  out.footprints.resize(m);
  out.cluster_of.assign(opset.size(), -1);

  // --- (a) footprints via symbolic replay (+ source-state operands). ---
  PhysicalSchema state = source;
  for (int idx : topo) {
    const size_t i = static_cast<size_t>(idx);
    if (applied[i]) continue;
    OperatorFootprint& fp = out.footprints[static_cast<size_t>(position[i])];
    const MigrationOperator& op = opset.ops[i];
    AddOperandTables(L, source, op, &fp);  // earliest reachable operand state
    AddOperandTables(L, state, op, &fp);   // replay-point operand state
    PhysicalSchema next = state;
    Status s = ApplyOperator(op, &next);
    if (!s.ok()) {
      return Status::InvalidArgument("operator " + std::to_string(i) +
                                     " is not applicable during the analysis replay (" +
                                     s.message() + ") — verify the migration first");
    }
    AddUnmatchedTables(L, next, state, &fp);  // result tables
    AddUnmatchedTables(L, state, next, &fp);  // consumed tables
    state = std::move(next);
  }

  // --- (b) interference graph as a union-find. ---
  UnionFind uf(m == 0 ? 1 : m);
  std::map<AttrId, std::vector<int>> attr_positions;
  for (size_t p = 0; p < m; ++p) {
    for (AttrId a : out.footprints[p].attrs) attr_positions[a].push_back(static_cast<int>(p));
  }
  for (auto& [attr, positions] : attr_positions) {
    for (size_t k = 1; k < positions.size(); ++k) uf.Unite(positions[0], positions[k]);
  }
  for (size_t p = 0; p < m; ++p) {
    for (int d : opset.deps[static_cast<size_t>(out.remaining[p])]) {
      if (!applied[static_cast<size_t>(d)]) {
        uf.Unite(static_cast<int>(p), position[static_cast<size_t>(d)]);
      }
    }
  }
  // Caller-supplied coupling groups (e.g. the write-safety planners' per-
  // version-table attribute sets): like a query support set, every operator
  // touching one group must land in the same cluster.
  if (coupling != nullptr) {
    for (const std::set<AttrId>& group : *coupling) {
      int first = -1;
      for (AttrId a : group) {
        auto it = attr_positions.find(a);
        if (it == attr_positions.end()) continue;
        for (int p : it->second) {
          if (first < 0) {
            first = p;
          } else {
            uf.Unite(first, p);
          }
        }
      }
    }
  }

  // --- (d) per-query relevance sets; queries couple the operators they
  // touch into one cluster (their cost term must not span two). ---
  std::vector<std::vector<int>> query_positions;
  if (queries != nullptr) {
    out.query_ops.resize(queries->size());
    query_positions.resize(queries->size());
    for (size_t q = 0; q < queries->size(); ++q) {
      std::set<AttrId> support = QuerySupportAttrs((*queries)[q].query, L);
      std::set<int> touched;
      if (support.empty() && m > 0) {
        // Nothing to anchor the analysis on (e.g. key-only select):
        // conservatively couple the query to every remaining operator.
        for (size_t p = 0; p < m; ++p) touched.insert(static_cast<int>(p));
      } else {
        for (AttrId a : support) {
          auto it = attr_positions.find(a);
          if (it == attr_positions.end()) continue;
          touched.insert(it->second.begin(), it->second.end());
        }
      }
      query_positions[q].assign(touched.begin(), touched.end());
      for (int p : query_positions[q]) {
        out.query_ops[q].push_back(out.remaining[static_cast<size_t>(p)]);
        uf.Unite(query_positions[q][0], p);
      }
      std::sort(out.query_ops[q].begin(), out.query_ops[q].end());
      if (touched.empty()) out.untouched_queries.push_back(q);
    }
  }

  // --- (c) connected components -> clusters, in topological member order. ---
  std::map<int, int> root_to_cluster;
  for (size_t p = 0; p < m; ++p) {
    int root = uf.Find(static_cast<int>(p));
    auto [it, inserted] = root_to_cluster.emplace(root, static_cast<int>(out.clusters.size()));
    if (inserted) out.clusters.emplace_back();
    int c = it->second;
    out.clusters[static_cast<size_t>(c)].ops.push_back(out.remaining[p]);
    out.cluster_of[static_cast<size_t>(out.remaining[p])] = c;
  }
  if (queries != nullptr) {
    for (size_t q = 0; q < queries->size(); ++q) {
      if (query_positions[q].empty()) continue;
      int c = out.cluster_of[static_cast<size_t>(
          out.remaining[static_cast<size_t>(query_positions[q][0])])];
      out.clusters[static_cast<size_t>(c)].queries.push_back(q);
    }
  }
  for (InteractionCluster& cluster : out.clusters) {
    if (cluster.ops.size() <= kMaxCountableCluster) {
      std::map<int, size_t> member_bit;
      for (size_t b = 0; b < cluster.ops.size(); ++b) member_bit[cluster.ops[b]] = b;
      std::vector<uint64_t> depmask(cluster.ops.size(), 0);
      for (size_t b = 0; b < cluster.ops.size(); ++b) {
        for (int d : opset.deps[static_cast<size_t>(cluster.ops[b])]) {
          auto it = member_bit.find(d);
          if (it != member_bit.end()) depmask[b] |= 1ull << it->second;
        }
      }
      cluster.closed_subsets = CountClosedSubsets(depmask);
      out.closed_subsets_total *= static_cast<double>(cluster.closed_subsets);
    } else {
      cluster.closed_subsets = 0;  // not countable; bound by 2^size
      out.closed_subsets_total *= std::pow(2.0, static_cast<double>(cluster.ops.size()));
    }
  }
  return out;
}

std::string InteractionAnalysis::ToString(const OperatorSet& opset,
                                          const LogicalSchema& logical,
                                          const std::vector<WorkloadQuery>* queries) const {
  std::string out = "operator-interaction analysis: " + std::to_string(remaining.size()) +
                    " remaining operator(s), " + std::to_string(clusters.size()) +
                    " interference cluster(s)\n";
  double cluster_sum = 0;
  for (const InteractionCluster& c : clusters) cluster_sum += static_cast<double>(c.closed_subsets);
  char line[160];
  std::snprintf(line, sizeof(line),
                "plan space: %.0f dependency-closed subsets brute force; %.0f cluster-wise "
                "(%.2f%%)\n",
                closed_subsets_total, cluster_sum,
                closed_subsets_total > 0 ? 100.0 * cluster_sum / closed_subsets_total : 0.0);
  out += line;
  auto query_name = [&](size_t q) {
    if (queries != nullptr && q < queries->size() && !(*queries)[q].query.name.empty()) {
      return (*queries)[q].query.name;
    }
    std::string fallback = "q";
    fallback += std::to_string(q);
    return fallback;
  };
  for (size_t c = 0; c < clusters.size(); ++c) {
    const InteractionCluster& cluster = clusters[c];
    out += "cluster " + std::to_string(c) + ": " + std::to_string(cluster.ops.size()) +
           " op(s), " +
           (cluster.closed_subsets > 0 ? std::to_string(cluster.closed_subsets)
                                       : std::string(">2^24")) +
           " closed subset(s)";
    if (!cluster.queries.empty()) {
      std::vector<std::string> names;
      names.reserve(cluster.queries.size());
      for (size_t q : cluster.queries) names.push_back(query_name(q));
      out += "; queries: " + JoinNames(names);
    }
    out += "\n";
    for (int op : cluster.ops) {
      int pos = -1;
      for (size_t p = 0; p < remaining.size(); ++p) {
        if (remaining[p] == op) pos = static_cast<int>(p);
      }
      out += "  [" + std::to_string(op) + "] " +
             opset.ops[static_cast<size_t>(op)].ToString(logical) + "  footprint:";
      if (pos >= 0) {
        for (AttrId a : footprints[static_cast<size_t>(pos)].attrs) {
          out += " " + logical.attr(a).name;
        }
      }
      out += "\n";
    }
  }
  if (!untouched_queries.empty()) {
    std::vector<std::string> names;
    names.reserve(untouched_queries.size());
    for (size_t q : untouched_queries) names.push_back(query_name(q));
    out += "queries untouched by any remaining operator (cost constant): " +
           JoinNames(names) + "\n";
  }
  return out;
}

void ReportCostIrrelevantOps(const InteractionAnalysis& analysis, const OperatorSet& opset,
                             const LogicalSchema& logical, DiagnosticReport* report) {
  if (analysis.query_ops.empty()) return;  // no workload: irrelevance is undefined
  std::set<int> touched;
  for (const std::vector<int>& ops : analysis.query_ops) {
    touched.insert(ops.begin(), ops.end());
  }
  for (int op : analysis.remaining) {
    if (touched.count(op)) continue;
    report->AddNote(DiagCode::kAnalysisCostIrrelevantOp, "op#" + std::to_string(op),
                    opset.ops[static_cast<size_t>(op)].ToString(logical) +
                        " touches no attribute any workload query reads, so it cannot "
                        "change C(Schema) in any phase — schedule it purely for data-"
                        "movement convenience (e.g. defer to the completion step)");
  }
}

}  // namespace pse
