#include "analysis/lockorder.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

namespace pse {

namespace {

bool EdgeInverted(const LockOrderGraph& g, const LockEdge& e) {
  if (e.from >= g.classes.size() || e.to >= g.classes.size()) return true;
  const LockClassDesc& from = g.classes[e.from];
  const LockClassDesc& to = g.classes[e.to];
  return std::tie(to.rank, to.name) <= std::tie(from.rank, from.name);
}

/// Strongly connected components of the class graph (iterative Tarjan, so a
/// pathological graph cannot blow the stack). Returns components in a
/// deterministic order; singleton components without a self-loop are not
/// cycles and are dropped by the caller.
std::vector<std::vector<size_t>> StronglyConnectedComponents(size_t n,
                                                             const std::vector<LockEdge>& edges) {
  std::vector<std::vector<size_t>> adj(n);
  for (const LockEdge& e : edges) {
    if (e.from < n && e.to < n) adj[e.from].push_back(e.to);
  }
  for (auto& out : adj) std::sort(out.begin(), out.end());

  constexpr size_t kUnvisited = static_cast<size_t>(-1);
  std::vector<size_t> index(n, kUnvisited);
  std::vector<size_t> lowlink(n, kUnvisited);
  std::vector<bool> on_stack(n, false);
  std::vector<size_t> stack;
  std::vector<std::vector<size_t>> components;
  size_t next_index = 0;

  struct Frame {
    size_t v;
    size_t edge = 0;
  };
  for (size_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    std::vector<Frame> frames{{root}};
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.edge < adj[f.v].size()) {
        size_t w = adj[f.v][f.edge++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w});
        } else if (on_stack[w]) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
      } else {
        if (lowlink[f.v] == index[f.v]) {
          std::vector<size_t> component;
          size_t w;
          do {
            w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            component.push_back(w);
          } while (w != f.v);
          components.push_back(std::move(component));
        }
        size_t v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          lowlink[frames.back().v] = std::min(lowlink[frames.back().v], lowlink[v]);
        }
      }
    }
  }
  return components;
}

DiagCode CodeFor(LockViolationKind kind) {
  switch (kind) {
    case LockViolationKind::kOrderInversion:
      return DiagCode::kLockOrderInversion;
    case LockViolationKind::kUpgrade:
      return DiagCode::kLockUpgrade;
    case LockViolationKind::kRecursive:
      return DiagCode::kLockRecursive;
    case LockViolationKind::kHeldAcrossIo:
      return DiagCode::kLockHeldAcrossIo;
  }
  return DiagCode::kLockOrderInversion;
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

}  // namespace

LockOrderGraph CanonicalLockGraph() {
  LockOrderGraph g;
  g.classes = {
      {"catalog", kLockRankCatalog, /*allows_io=*/true},
      {"servingschema", kLockRankServing, /*allows_io=*/false},
      {"table:<name>", kLockRankTable, /*allows_io=*/true},
      {"bufferpool", kLockRankBufferPool, /*allows_io=*/true},
  };
  const char* site = "DESIGN.md section 17";
  auto edge = [&](size_t from, size_t to) {
    LockEdge e;
    e.from = from;
    e.to = to;
    e.from_site = site;
    e.to_site = site;
    e.count = 0;
    g.edges.push_back(e);
  };
  edge(0, 1);  // catalog -> servingschema (snapshot publish under quiesce)
  edge(0, 2);  // catalog -> table (scan under catalog latch)
  edge(0, 3);  // catalog -> bufferpool (quiesce-window checkpoint)
  edge(2, 3);  // table -> bufferpool (heap scan page fetch)
  return g;
}

DiagnosticReport AnalyzeLockOrder(const LockOrderGraph& graph) {
  DiagnosticReport report;

  // 1. Runtime violations, verbatim: the registry already attributed both
  //    acquisition sites and deduplicated per class pair.
  std::set<std::pair<std::string, std::string>> runtime_inversions;
  for (const LockViolation& v : graph.violations) {
    std::string location;
    switch (v.kind) {
      case LockViolationKind::kOrderInversion:
        location = "lock '" + v.acquired_lock + "'";
        runtime_inversions.insert({v.held_lock, v.acquired_lock});
        break;
      case LockViolationKind::kUpgrade:
      case LockViolationKind::kRecursive:
      case LockViolationKind::kHeldAcrossIo:
        location = "lock '" + v.held_lock + "'";
        break;
    }
    report.AddError(CodeFor(v.kind), std::move(location), v.ToString());
  }

  // 2. Rank-violating edges not already covered by a runtime inversion —
  //    this is what fires on hand-built or replayed graphs.
  for (const LockEdge& e : graph.edges) {
    if (e.from >= graph.classes.size() || e.to >= graph.classes.size()) {
      report.AddError(DiagCode::kLockOrderInversion, "edge",
                      "edge references an unknown lock class (from=" + std::to_string(e.from) +
                          ", to=" + std::to_string(e.to) + ")");
      continue;
    }
    if (!EdgeInverted(graph, e)) continue;
    const LockClassDesc& from = graph.classes[e.from];
    const LockClassDesc& to = graph.classes[e.to];
    if (runtime_inversions.count({from.name, to.name}) != 0) continue;
    report.AddError(DiagCode::kLockOrderInversion, "lock '" + to.name + "'",
                    "'" + to.name + "' (rank " + std::to_string(to.rank) + ", at " + e.to_site +
                        ") acquired while holding '" + from.name + "' (rank " +
                        std::to_string(from.rank) + ", at " + e.from_site +
                        "); canonical order requires '" + to.name + "' first");
  }

  // 3. Cycles. A strongly connected component of size > 1 (or a self-loop)
  //    is a potential deadlock even if every individual edge looked benign
  //    and no run ever hung.
  auto components = StronglyConnectedComponents(graph.classes.size(), graph.edges);
  for (const auto& component : components) {
    std::set<size_t> members(component.begin(), component.end());
    bool self_loop = false;
    if (component.size() == 1) {
      for (const LockEdge& e : graph.edges) {
        if (e.from == component[0] && e.to == component[0]) self_loop = true;
      }
      if (!self_loop) continue;
    }
    std::vector<std::string> names;
    names.reserve(component.size());
    for (size_t idx : component) names.push_back(graph.classes[idx].name);
    std::sort(names.begin(), names.end());

    std::string edges_desc;
    for (const LockEdge& e : graph.edges) {
      if (members.count(e.from) == 0 || members.count(e.to) == 0) continue;
      if (!edges_desc.empty()) edges_desc += ", ";
      edges_desc += graph.classes[e.from].name + " -> " + graph.classes[e.to].name + " (" +
                    e.from_site + " -> " + e.to_site + ")";
    }
    report.AddError(DiagCode::kLockCycle, "cycle [" + JoinNames(names) + "]",
                    "potential deadlock: " + std::to_string(names.size()) +
                        " lock class(es) form an acquisition cycle: " + edges_desc);
  }

  if (report.ok() && graph.acquisitions > 0) {
    report.AddNote(DiagCode::kLockGraphClean, "graph",
                   "acquisition-order graph is acyclic and rank-ordered (" +
                       std::to_string(graph.acquisitions) + " acquisitions, " +
                       std::to_string(graph.edges.size()) + " edges, " +
                       std::to_string(graph.classes.size()) + " lock classes)");
  }
  return report;
}

std::string LockGraphToDot(const LockOrderGraph& graph) {
  // Stable ordering: nodes by (rank, name), edges by (from name, to name).
  std::vector<size_t> order(graph.classes.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return std::tie(graph.classes[a].rank, graph.classes[a].name) <
           std::tie(graph.classes[b].rank, graph.classes[b].name);
  });

  std::string out = "digraph lockorder {\n";
  out += "  rankdir=LR;\n";
  out += "  node [shape=box, fontname=\"monospace\"];\n";
  for (size_t idx : order) {
    const LockClassDesc& c = graph.classes[idx];
    out += "  \"" + c.name + "\" [label=\"" + c.name + "\\nrank " + std::to_string(c.rank) +
           (c.allows_io ? "" : "\\nno-io") + "\"];\n";
  }

  std::vector<const LockEdge*> edges;
  edges.reserve(graph.edges.size());
  for (const LockEdge& e : graph.edges) {
    if (e.from < graph.classes.size() && e.to < graph.classes.size()) edges.push_back(&e);
  }
  std::sort(edges.begin(), edges.end(), [&](const LockEdge* a, const LockEdge* b) {
    return std::tie(graph.classes[a->from].name, graph.classes[a->to].name) <
           std::tie(graph.classes[b->from].name, graph.classes[b->to].name);
  });
  for (const LockEdge* e : edges) {
    bool inverted = EdgeInverted(graph, *e);
    out += "  \"" + graph.classes[e->from].name + "\" -> \"" + graph.classes[e->to].name +
           "\" [label=\"" + std::to_string(e->count) + "\"" +
           (inverted ? ", color=red, penwidth=2" : "") + "];\n";
  }
  for (const LockViolation& v : graph.violations) {
    out += "  // violation " + v.ToString() + "\n";
  }
  out += "}\n";
  return out;
}

}  // namespace pse
