#include "analysis/concurrency.h"

#include <algorithm>
#include <string>
#include <unordered_set>

#include "analysis/writability.h"
#include "common/string_util.h"
#include "core/operators.h"
#include "core/rewriter.h"

namespace pse {

namespace {

std::string QueryLocation(const LogicalQuery& q) {
  return "query '" + (q.name.empty() ? std::string("?") : q.name) + "'";
}

/// Rows a sequential scan of `table` touches, from entity cardinalities.
uint64_t TableRowsEstimate(const PhysicalTable& table, const LogicalStats& stats) {
  return table.anchor < stats.entity_rows.size() ? stats.entity_rows[table.anchor] : 0;
}

}  // namespace

DiagnosticReport AnalyzeConcurrency(const ConcurrencyInput& input,
                                    const ConcurrencyOptions& options) {
  DiagnosticReport report;
  if (input.source == nullptr || input.opset == nullptr || input.queries == nullptr ||
      input.freqs == nullptr) {
    report.AddError(DiagCode::kConcurrencyUnservablePhase, "input",
                    "concurrency analysis needs a source schema, an operator set, and a "
                    "workload with frequencies");
    return report;
  }
  if (input.freqs->size() != input.queries->size()) {
    report.AddError(DiagCode::kConcurrencyUnservablePhase, "input",
                    "frequency vector arity does not match the workload");
    return report;
  }

  if (input.sessions < 2) {
    report.AddNote(DiagCode::kConcurrencySingleLane, "options",
                   "serve window configured with " + std::to_string(input.sessions) +
                       " session(s): no reader concurrency is exercised");
  }

  // Active queries of this phase and their total frequency mass.
  std::vector<size_t> active;
  double total_freq = 0;
  for (size_t q = 0; q < input.queries->size(); ++q) {
    if ((*input.freqs)[q] > 0) {
      active.push_back(q);
      total_freq += (*input.freqs)[q];
    }
  }
  if (active.empty()) return report;

  auto topo = input.opset->TopologicalOrder();
  if (!topo.ok()) return report;  // cycles are the verifier's finding, not ours

  // Per active query: ops whose windows it cannot be served in.
  std::vector<std::vector<int>> unservable_at(active.size());

  PhysicalSchema current = *input.source;
  for (int idx : *topo) {
    const MigrationOperator& op = input.opset->ops[static_cast<size_t>(idx)];
    PhysicalSchema after = current;
    if (!ApplyOperator(op, &after).ok()) break;  // verifier reports this
    bool already_applied = input.applied != nullptr &&
                           static_cast<size_t>(idx) < input.applied->size() &&
                           (*input.applied)[static_cast<size_t>(idx)];
    if (already_applied) {
      current = std::move(after);
      continue;
    }
    std::string loc = "op#" + std::to_string(op.id);

    // Tables this operator copies out of and then drops: contention and
    // quiesce both center on them.
    std::unordered_set<std::string> dropped;
    for (const PhysicalTable& t : current.tables()) {
      if (!after.TableByName(t.name).ok()) dropped.insert(ToLower(t.name));
    }

    double hot_freq = 0;
    uint64_t worst_drain = 0;
    std::string worst_query;
    for (size_t a = 0; a < active.size(); ++a) {
      const WorkloadQuery& wq = (*input.queries)[active[a]];
      Result<BoundQuery> bound = RewriteQuery(wq.query, current);
      if (!bound.ok()) {
        unservable_at[a].push_back(op.id);
        continue;
      }
      bool reads_dropped = false;
      uint64_t drain = 0;
      for (const TableAccess& ta : bound->tables) {
        if (dropped.count(ToLower(ta.table)) != 0) reads_dropped = true;
        if (input.stats != nullptr) {
          auto ti = current.TableByName(ta.table);
          if (ti.ok()) drain += TableRowsEstimate(current.tables()[*ti], *input.stats);
        }
      }
      if (reads_dropped) hot_freq += (*input.freqs)[active[a]];
      if (drain > worst_drain) {
        worst_drain = drain;
        worst_query = QueryLocation(wq.query);
      }
    }

    if (input.stats != nullptr && worst_drain > options.quiesce_drain_rows) {
      report.AddWarning(DiagCode::kConcurrencyQuiesceStall, loc,
                        "publish window must drain in-flight readers; " + worst_query +
                            " scans ~" + std::to_string(worst_drain) +
                            " rows, and the writer-preferring latch queues new readers "
                            "behind the stalled quiesce");
    }
    if (!dropped.empty() && total_freq > 0 &&
        hot_freq / total_freq >= options.hot_source_share) {
      int share_pct = static_cast<int>(100.0 * hot_freq / total_freq + 0.5);
      report.AddNote(DiagCode::kConcurrencyHotSource, loc,
                     "source tables serve ~" + std::to_string(share_pct) +
                         "% of the live query mix; the copy loop's batch latch will "
                         "contend with those scans");
    }
    current = std::move(after);
  }

  for (size_t a = 0; a < active.size(); ++a) {
    if (unservable_at[a].empty()) continue;
    std::string ops;
    for (int id : unservable_at[a]) {
      if (!ops.empty()) ops += ", ";
      ops += "op#" + std::to_string(id);
    }
    report.AddWarning(DiagCode::kConcurrencyUnservablePhase,
                      QueryLocation((*input.queries)[active[a]].query),
                      "unservable while " + ops +
                          " execute(s): live sessions see BindError until the missing "
                          "attributes publish");
  }

  // Write-side lints: the writability matrix over the same operator walk.
  // Replay failures stay the verifier's finding, exactly like the read loop
  // above — AnalyzeWritability appends nothing on error.
  if (input.object != nullptr) {
    WritabilityInput writes;
    writes.old_schema = input.source;
    writes.new_schema = input.object;
    writes.opset = input.opset;
    if (input.applied != nullptr) writes.applied = *input.applied;
    (void)AnalyzeWritability(writes, &report);
  }
  return report;
}

}  // namespace pse
