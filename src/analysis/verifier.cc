#include "analysis/verifier.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "core/migration_planner.h"
#include "core/rewriter.h"

namespace pse {

namespace {

std::string OpLocation(size_t index) { return "op#" + std::to_string(index); }

std::string QueryLocation(const LogicalQuery& q) {
  return "query '" + (q.name.empty() ? std::string("?") : q.name) + "'";
}

std::string SubsetToString(const std::vector<int>& subset) {
  std::string out = "{";
  for (size_t i = 0; i < subset.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(subset[i]);
  }
  return out + "}";
}

bool ValidEntity(const LogicalSchema& L, EntityId e) { return e < L.num_entities(); }
bool ValidAttr(const LogicalSchema& L, AttrId a) { return a < L.num_attributes(); }

/// Reference-level checks of one operator against the logical schema alone
/// (no physical state needed): id ranges, FD/key resolvability, split
/// anchor determinacy. Returns false when the operator is too broken to
/// participate in a symbolic replay.
bool CheckOperatorRefs(const LogicalSchema& L, const MigrationOperator& op, size_t index,
                       DiagnosticReport* report) {
  bool usable = true;
  switch (op.kind) {
    case OperatorKind::kCreateTable: {
      if (!ValidEntity(L, op.create_entity)) {
        report->AddError(DiagCode::kOpsetDanglingRef, OpLocation(index),
                         "create references entity id " + std::to_string(op.create_entity) +
                             " outside the logical schema");
        return false;
      }
      if (op.create_attrs.empty()) {
        report->AddError(DiagCode::kOpsetDanglingRef, OpLocation(index),
                         "create with an empty attribute set");
        usable = false;
      }
      for (AttrId a : op.create_attrs) {
        if (!ValidAttr(L, a)) {
          report->AddError(DiagCode::kOpsetDanglingRef, OpLocation(index),
                           "create references attribute id " + std::to_string(a) +
                               " outside the logical schema (dangling FD)");
          usable = false;
          continue;
        }
        if (L.attr(a).is_key) {
          report->AddError(DiagCode::kOpsetDanglingRef, OpLocation(index),
                           "create cannot introduce key attribute '" + L.attr(a).name + "'");
          usable = false;
        } else if (L.attr(a).entity != op.create_entity) {
          report->AddError(
              DiagCode::kOpsetDanglingRef, OpLocation(index),
              "FD key(" + L.entity(op.create_entity).name + ") -> '" + L.attr(a).name +
                  "' is unresolvable: the attribute belongs to entity '" +
                  L.entity(L.attr(a).entity).name + "'");
          usable = false;
        }
      }
      break;
    }
    case OperatorKind::kSplitTable: {
      if (!ValidEntity(L, op.split_moved_anchor)) {
        report->AddError(DiagCode::kOpsetDanglingRef, OpLocation(index),
                         "split references anchor entity id " +
                             std::to_string(op.split_moved_anchor) +
                             " outside the logical schema");
        return false;
      }
      if (op.split_moved.empty()) {
        report->AddError(DiagCode::kOpsetDanglingRef, OpLocation(index),
                         "split with an empty moved-attribute set");
        usable = false;
      }
      for (AttrId a : op.split_moved) {
        if (!ValidAttr(L, a)) {
          report->AddError(DiagCode::kOpsetDanglingRef, OpLocation(index),
                           "split references attribute id " + std::to_string(a) +
                               " outside the logical schema");
          usable = false;
          continue;
        }
        if (L.attr(a).is_key) {
          report->AddError(DiagCode::kOpsetDanglingRef, OpLocation(index),
                           "split cannot move key attribute '" + L.attr(a).name + "'");
          usable = false;
        } else if (!L.Reaches(op.split_moved_anchor, L.attr(a).entity)) {
          // The moved fragment is keyed by the anchor's key; an attribute of
          // an entity the anchor does not determine cannot be re-joined
          // losslessly.
          report->AddError(
              DiagCode::kPreserveSplitLossy, OpLocation(index),
              "split is not lossless-join: anchor '" + L.entity(op.split_moved_anchor).name +
                  "' does not functionally determine moved attribute '" + L.attr(a).name +
                  "' (entity '" + L.entity(L.attr(a).entity).name + "')");
          usable = false;
        }
      }
      break;
    }
    case OperatorKind::kCombineTable: {
      for (AttrId a : {op.combine_left_rep, op.combine_right_rep}) {
        if (!ValidAttr(L, a)) {
          report->AddError(DiagCode::kOpsetDanglingRef, OpLocation(index),
                           "combine references attribute id " + std::to_string(a) +
                               " outside the logical schema");
          usable = false;
        } else if (L.attr(a).is_key) {
          report->AddError(DiagCode::kOpsetDanglingRef, OpLocation(index),
                           "combine representative '" + L.attr(a).name +
                               "' is a key attribute (must be a stored non-key attribute)");
          usable = false;
        }
      }
      break;
    }
  }
  return usable;
}

/// Pre-apply checks of one operator against the concrete schema state during
/// the symbolic replay: split lossless-join w.r.t. the carrying table, and
/// the combine tuple-preservation precondition. Returns false when a
/// preservation *error* was emitted (the subsequent ApplyOperator failure,
/// if any, is then redundant and suppressed by the caller).
bool CheckOperatorPreservation(const LogicalSchema& L, const PhysicalSchema& before,
                               const MigrationOperator& op, size_t index,
                               DiagnosticReport* report) {
  switch (op.kind) {
    case OperatorKind::kSplitTable: {
      auto ti = before.TableOfNonKeyAttr(op.split_moved[0]);
      if (!ti.ok()) return true;  // surfaces as OPSET_NOT_APPLICABLE
      const PhysicalTable& table = before.tables()[*ti];
      if (!L.Reaches(table.anchor, op.split_moved_anchor)) {
        report->AddError(
            DiagCode::kPreserveSplitLossy, OpLocation(index),
            "split of table '" + table.name + "' is not lossless-join: table anchor '" +
                L.entity(table.anchor).name + "' does not reach moved-fragment anchor '" +
                L.entity(op.split_moved_anchor).name +
                "' (no shared key reference between the two sides)");
        return false;
      }
      break;
    }
    case OperatorKind::kCombineTable: {
      auto ai = before.TableOfNonKeyAttr(op.combine_left_rep);
      auto bi = before.TableOfNonKeyAttr(op.combine_right_rep);
      if (!ai.ok() || !bi.ok() || *ai == *bi) return true;
      EntityId a = before.tables()[*ai].anchor;
      EntityId b = before.tables()[*bi].anchor;
      if (a == b) break;
      EntityId parent, child;
      if (L.Reaches(a, b)) {
        child = a;
        parent = b;
      } else if (L.Reaches(b, a)) {
        child = b;
        parent = a;
      } else {
        break;  // unrelated anchors: ApplyOperator rejects, replay reports
      }
      report->AddWarning(
          DiagCode::kPreserveCombineCoverage, OpLocation(index),
          "combine denormalizes '" + L.entity(parent).name + "' into '" +
              L.entity(child).name + "' rows; '" + L.entity(parent).name +
              "' rows without any '" + L.entity(child).name +
              "' child are not representable — tuple preservation requires every '" +
              L.entity(parent).name + "' row to be covered");
      break;
    }
    case OperatorKind::kCreateTable:
      break;
  }
  return true;
}

/// Non-key attributes stored anywhere in `schema`.
std::set<AttrId> StoredNonKeyAttrs(const PhysicalSchema& schema) {
  const LogicalSchema& L = *schema.logical();
  std::set<AttrId> out;
  for (const PhysicalTable& t : schema.tables()) {
    for (AttrId a : t.attrs) {
      if (!L.attr(a).is_key) out.insert(a);
    }
  }
  return out;
}

/// Structural checks shared by every verification family. Returns false when
/// the input is too broken to continue (missing pointers, invalid schemas,
/// arity mismatches, dependency cycles).
bool CheckFoundations(const VerifyInput& input, DiagnosticReport* report) {
  if (input.source == nullptr || input.object == nullptr || input.opset == nullptr) {
    report->AddError(DiagCode::kOpsetArity, "",
                     "source, object, and operator set are all required");
    return false;
  }
  if (input.source->logical() == nullptr ||
      input.source->logical() != input.object->logical()) {
    report->AddError(DiagCode::kSchemaInvalid, "",
                     "source and object schemas do not share a logical schema");
    return false;
  }
  Status s = input.source->Validate();
  if (!s.ok()) {
    report->AddError(DiagCode::kSchemaInvalid, "source", s.message());
  }
  s = input.object->Validate();
  if (!s.ok()) {
    report->AddError(DiagCode::kSchemaInvalid, "object", s.message());
  }
  if (!report->ok()) return false;

  const OperatorSet& opset = *input.opset;
  if (opset.deps.size() != opset.ops.size()) {
    report->AddError(DiagCode::kOpsetArity, "",
                     "operator set has " + std::to_string(opset.ops.size()) + " ops but " +
                         std::to_string(opset.deps.size()) + " dependency lists");
    return false;
  }
  if (input.applied != nullptr && input.applied->size() != opset.ops.size()) {
    report->AddError(DiagCode::kOpsetArity, "",
                     "applied mask arity (" + std::to_string(input.applied->size()) +
                         ") does not match the operator set (" +
                         std::to_string(opset.ops.size()) + ")");
    return false;
  }
  bool deps_ok = true;
  for (size_t i = 0; i < opset.deps.size(); ++i) {
    for (int d : opset.deps[i]) {
      if (d < 0 || static_cast<size_t>(d) >= opset.ops.size()) {
        report->AddError(DiagCode::kOpsetArity, OpLocation(i),
                         "dependency index " + std::to_string(d) + " is out of range");
        deps_ok = false;
      } else if (static_cast<size_t>(d) == i) {
        report->AddError(DiagCode::kOpsetArity, OpLocation(i), "operator depends on itself");
        deps_ok = false;
      }
    }
  }
  if (!deps_ok) return false;
  if (!opset.TopologicalOrder().ok()) {
    report->AddError(DiagCode::kOpsetDepCycle, "",
                     "operator dependency graph contains a cycle");
    return false;
  }
  return true;
}

/// Candidate intermediate schemas at the current migration point: the
/// dependency-closed subsets of the remaining operators (exactly what LAA
/// enumerates) when 2^m fits the budget, else the topological prefixes.
/// Each candidate is returned as op-index list in topological order.
std::vector<std::vector<int>> CandidateSubsets(const OperatorSet& opset,
                                               const std::vector<bool>& applied,
                                               size_t max_exhaustive_ops) {
  std::vector<int> remaining;
  for (size_t i = 0; i < opset.size(); ++i) {
    if (!applied[i]) remaining.push_back(static_cast<int>(i));
  }
  std::vector<int> topo_remaining;
  auto topo = opset.TopologicalOrder();
  if (topo.ok()) {
    for (int i : *topo) {
      if (!applied[static_cast<size_t>(i)]) topo_remaining.push_back(i);
    }
  } else {
    topo_remaining = remaining;
  }
  std::vector<std::vector<int>> out;
  const size_t m = remaining.size();
  if (m <= max_exhaustive_ops && m < 63) {
    for (uint64_t mask = 0; mask < (1ull << m); ++mask) {
      std::vector<int> subset;
      for (size_t b = 0; b < m; ++b) {
        if (mask & (1ull << b)) subset.push_back(remaining[b]);
      }
      if (!opset.IsClosed(subset, applied)) continue;
      // Topological order within the subset.
      std::vector<int> ordered;
      for (int i : topo_remaining) {
        if (std::find(subset.begin(), subset.end(), i) != subset.end()) ordered.push_back(i);
      }
      out.push_back(std::move(ordered));
    }
  } else {
    out.emplace_back();  // the empty prefix: the current schema itself
    for (size_t k = 1; k <= topo_remaining.size(); ++k) {
      out.emplace_back(topo_remaining.begin(),
                       topo_remaining.begin() + static_cast<long>(k));
    }
  }
  return out;
}

}  // namespace

std::vector<AttrId> ReferencedAttrs(const LogicalQuery& query, const LogicalSchema& logical,
                                    DiagnosticReport* report) {
  std::vector<std::string> cols;
  for (const auto& item : query.select) {
    if (item.expr) item.expr->CollectColumns(&cols);
  }
  for (const auto& f : query.filters) f->CollectColumns(&cols);
  for (const auto& g : query.group_by) g->CollectColumns(&cols);
  std::set<AttrId> seen;
  std::vector<AttrId> out;
  for (const std::string& c : cols) {
    auto a = logical.AttrByName(c);
    if (!a.ok()) {
      if (report != nullptr) {
        report->AddError(DiagCode::kWorkloadUnanswerableObject, QueryLocation(query),
                         "references unknown attribute '" + c + "'");
      }
      continue;
    }
    if (seen.insert(*a).second) out.push_back(*a);
  }
  return out;
}

DiagnosticReport VerifyMigration(const VerifyInput& input, const VerifyOptions& options) {
  DiagnosticReport report;
  if (!CheckFoundations(input, &report)) return report;

  const OperatorSet& opset = *input.opset;
  const LogicalSchema& L = *input.source->logical();
  std::vector<bool> applied =
      input.applied != nullptr ? *input.applied : std::vector<bool>(opset.size(), false);

  // --- (a) well-formedness: per-operator references. ---
  std::vector<bool> replayable(opset.size(), true);
  if (options.check_opset || options.check_preservation) {
    for (size_t i = 0; i < opset.size(); ++i) {
      replayable[i] = CheckOperatorRefs(L, opset.ops[i], i, &report);
    }
  }

  // --- (a)+(b): symbolic replay of the remaining operators, in topological
  // order, on a copy of the current schema. Each must apply exactly once.
  bool converged_check = true;
  if (options.check_opset) {
    PhysicalSchema schema = *input.source;
    auto topo = opset.TopologicalOrder();  // cycle excluded by CheckFoundations
    for (int idx : *topo) {
      const size_t i = static_cast<size_t>(idx);
      if (applied[i]) continue;
      if (!replayable[i]) {
        converged_check = false;  // cannot assess convergence past a broken op
        break;
      }
      const MigrationOperator& op = opset.ops[i];
      bool clean = true;
      if (options.check_preservation) {
        clean = CheckOperatorPreservation(L, schema, op, i, &report);
      }
      Status s = ApplyOperator(op, &schema);
      if (!s.ok()) {
        if (clean) {
          report.AddError(DiagCode::kOpsetNotApplicable, OpLocation(i),
                          op.ToString(L) + " is not applicable at its point in the "
                          "dependency order: " + s.message());
        }
        converged_check = false;
        break;
      }
      // Exactly-once: a second application must be rejected.
      PhysicalSchema scratch = schema;
      if (ApplyOperator(op, &scratch).ok()) {
        report.AddError(DiagCode::kOpsetReapply, OpLocation(i),
                        op.ToString(L) + " is applicable more than once — the operator set "
                        "does not identify its operand unambiguously");
      }
      if (options.check_preservation) {
        // No stored source attribute may vanish mid-replay.
        for (AttrId a : StoredNonKeyAttrs(*input.source)) {
          if (!schema.TableOfNonKeyAttr(a).ok()) {
            report.AddError(DiagCode::kPreserveAttrLost, OpLocation(i),
                            "source attribute '" + L.attr(a).name +
                                "' is no longer derivable after " + op.ToString(L));
          }
        }
      }
    }
    if (converged_check && !schema.EquivalentTo(*input.object)) {
      report.AddError(DiagCode::kOpsetNoConvergence, "",
                      "applying every remaining operator does not reproduce the object "
                      "schema; replay ended at:\n" + schema.ToString() + "object is:\n" +
                          input.object->ToString());
    }
  }

  // --- (b) preservation at the target: every source attribute must have a
  // placement in the object schema (else the migration forgets data). ---
  if (options.check_preservation) {
    for (AttrId a : StoredNonKeyAttrs(*input.source)) {
      if (!input.object->TableOfNonKeyAttr(a).ok()) {
        report.AddError(DiagCode::kPreserveAttrLost, "object",
                        "attribute '" + L.attr(a).name +
                            "' is stored in the source schema but has no placement in the "
                            "object schema — the migration would lose it");
      }
    }
  }

  // --- (c) workload lint. ---
  if (options.check_workload && input.queries != nullptr) {
    const std::vector<WorkloadQuery>& queries = *input.queries;
    if (input.phase_freqs != nullptr) {
      for (size_t p = 0; p < input.phase_freqs->size(); ++p) {
        if ((*input.phase_freqs)[p].size() != queries.size()) {
          report.AddError(DiagCode::kWorkloadArity, "phase " + std::to_string(p),
                          "frequency vector arity (" +
                              std::to_string((*input.phase_freqs)[p].size()) +
                              ") does not match the workload (" +
                              std::to_string(queries.size()) + " queries)");
        }
      }
    }
    // Answerability on the fixed endpoints.
    std::vector<bool> object_ok(queries.size(), false);
    for (size_t q = 0; q < queries.size(); ++q) {
      const LogicalQuery& query = queries[q].query;
      (void)ReferencedAttrs(query, L, &report);  // unknown-name errors
      auto on_object = RewriteQuery(query, *input.object);
      object_ok[q] = on_object.ok();
      if (!on_object.ok()) {
        report.AddError(DiagCode::kWorkloadUnanswerableObject, QueryLocation(query),
                        "not answerable on the object schema: " +
                            on_object.status().message());
      }
      if (queries[q].is_old && options.check_source_answerability) {
        auto on_source = RewriteQuery(query, *input.source);
        if (!on_source.ok()) {
          report.AddError(DiagCode::kWorkloadUnanswerableSource, QueryLocation(query),
                          "old-version query not answerable on the current schema: " +
                              on_source.status().message());
        }
      }
    }
    // Answerability on every candidate intermediate schema. Failures are
    // deduplicated per query: one diagnostic summarising how many candidates
    // reject it, with one example subset.
    struct Failure {
      size_t candidates = 0;
      std::string example;
      bool expected_deferral = true;
    };
    std::map<size_t, Failure> failures;
    size_t num_candidates = 0;
    for (const std::vector<int>& subset :
         CandidateSubsets(opset, applied, options.max_exhaustive_ops)) {
      PhysicalSchema schema = *input.source;
      bool apply_ok = true;
      for (int i : subset) {
        if (!replayable[static_cast<size_t>(i)] ||
            !ApplyOperator(opset.ops[static_cast<size_t>(i)], &schema).ok()) {
          apply_ok = false;
          break;
        }
      }
      if (!apply_ok) continue;  // already diagnosed by the replay pass
      ++num_candidates;
      for (size_t q = 0; q < queries.size(); ++q) {
        if (!object_ok[q]) continue;  // already an error above
        const LogicalQuery& query = queries[q].query;
        if (RewriteQuery(query, schema).ok()) continue;
        Failure& f = failures[q];
        ++f.candidates;
        if (f.example.empty()) f.example = SubsetToString(subset);
        // Expected deferral: the only missing attributes are new ones whose
        // CreateTable is simply not in this subset yet.
        bool expected = false;
        for (AttrId a : ReferencedAttrs(query, L, nullptr)) {
          if (L.attr(a).is_new && !schema.TableOfNonKeyAttr(a).ok()) {
            expected = true;
            break;
          }
        }
        if (!expected) f.expected_deferral = false;
      }
    }
    for (const auto& [q, f] : failures) {
      const LogicalQuery& query = queries[q].query;
      std::string msg = "not answerable on " + std::to_string(f.candidates) + " of " +
                        std::to_string(num_candidates) +
                        " candidate intermediate schemas (e.g. after ops " + f.example + ")";
      if (f.expected_deferral) {
        if (options.note_expected_deferrals) {
          report.AddNote(DiagCode::kWorkloadUnanswerableIntermediate, QueryLocation(query),
                         msg + " — expected: it needs a new attribute whose CreateTable is "
                         "deferred there; such candidates are priced via the fallback schema");
        }
      } else {
        report.AddWarning(DiagCode::kWorkloadUnanswerableIntermediate, QueryLocation(query),
                          msg + " — planners must reject these candidates or price the "
                          "query out-of-band");
      }
    }
  }
  return report;
}

Status VerifyMigrationOrError(const VerifyInput& input, const VerifyOptions& options) {
  return VerifyMigration(input, options).ToStatus();
}

DiagnosticReport VerifyContext(const MigrationContext& ctx, const VerifyOptions& options) {
  VerifyInput input;
  input.source = ctx.current;
  input.object = ctx.object;
  input.opset = ctx.opset;
  input.applied = &ctx.applied;
  input.queries = ctx.queries;
  input.phase_freqs = ctx.phase_freqs;
  return VerifyMigration(input, options);
}

}  // namespace pse
