// Resumable-plan diagnostics for online migration.
//
// Before an operator sequence executes online (batched data movement with a
// journaled cursor — migration_executor.h, DESIGN.md §14), this analyzer
// predicts the batch schedule per operator from entity cardinalities and
// flags configurations that defeat the crash-safety machinery:
//
//   RESUME_INVALID_BATCH (error)   batch sizing that cannot make progress
//                                  (zero rows per batch);
//   RESUME_NONDURABLE    (warning) the journal never reaches disk (in-memory
//                                  database or final-only durability), so a
//                                  crash restarts every operator from zero;
//   RESUME_LONG_OP       (warning) an operator spanning so many batches that
//                                  its copy window — during which source and
//                                  destination coexist and foreground probes
//                                  contend — dwarfs the configured threshold;
//   RESUME_BATCH_PLAN    (note)    per-operator schedule: rows to move and
//                                  the batch count at the configured size.
#pragma once

#include "analysis/diagnostic.h"
#include "core/mapping.h"
#include "core/migration_executor.h"

namespace pse {

struct ResumabilityOptions {
  /// Warn when one operator needs more than this many batches.
  uint64_t long_op_batches = 1000;
  /// Emit the per-operator RESUME_BATCH_PLAN notes.
  bool note_batch_plan = true;
};

/// The artifacts under analysis. `applied` (optional) marks operators
/// already executed, which are skipped. `stats` supplies the entity
/// cardinalities the row estimates come from.
struct ResumabilityInput {
  const PhysicalSchema* source = nullptr;
  const OperatorSet* opset = nullptr;
  const std::vector<bool>* applied = nullptr;
  const LogicalStats* stats = nullptr;
  MigrationOptions options;
  /// Whether the target database persists (Database::persistent()); the
  /// journal of an in-memory database cannot survive a crash.
  bool persistent = true;
};

/// Estimated data movement of one operator (exposed for tests/CLIs).
struct OpBatchEstimate {
  int op_id = 0;
  uint64_t rows_moved = 0;  ///< rows written into destination tables
  uint64_t batches = 0;     ///< at input.options.batch_rows rows per batch
};

/// \brief Predicts per-operator batch schedules and flags non-resumable
/// configurations. Never fails — problems come back as diagnostics.
DiagnosticReport AnalyzeResumability(const ResumabilityInput& input,
                                     const ResumabilityOptions& options = {},
                                     std::vector<OpBatchEstimate>* estimates = nullptr);

}  // namespace pse
