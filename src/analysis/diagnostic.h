// Structured diagnostics for the migration-plan static verifier.
//
// A Diagnostic is one finding: a severity, a stable machine-readable code
// (documented in DESIGN.md §"Static verification"), a location string
// ("op#3", "query 'N7'", "table 'user'"), and a human-readable message.
// A DiagnosticReport accumulates findings; callers gate on errors() == 0 or
// convert the report into a Status for Result-style plumbing.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace pse {

enum class DiagSeverity { kError, kWarning, kNote };

/// Stable diagnostic codes. The string form (DiagCodeName) is part of the
/// tool surface: tests, the migration_lint CLI, and DESIGN.md reference it.
enum class DiagCode {
  // -- operator-set well-formedness --
  kOpsetArity,          ///< OPSET_ARITY: deps/ops arity or dep index broken
  kOpsetDepCycle,       ///< OPSET_DEP_CYCLE: dependency graph has a cycle
  kOpsetDanglingRef,    ///< OPSET_DANGLING_REF: attr/entity/FD unresolvable
  kOpsetNotApplicable,  ///< OPSET_NOT_APPLICABLE: op fails to apply in order
  kOpsetReapply,        ///< OPSET_REAPPLY: op applicable more than once
  kOpsetNoConvergence,  ///< OPSET_NO_CONVERGENCE: replay != object schema
  kSchemaInvalid,       ///< SCHEMA_INVALID: source/object fails Validate()
  // -- information preservation --
  kPreserveAttrLost,        ///< PRESERVE_ATTR_LOST: source attr underivable
  kPreserveSplitLossy,      ///< PRESERVE_SPLIT_LOSSY: split not lossless-join
  kPreserveCombineCoverage, ///< PRESERVE_COMBINE_COVERAGE: parent rows may drop
  // -- workload lint --
  kWorkloadArity,                  ///< WORKLOAD_ARITY: freq vector mismatch
  kWorkloadUnanswerableSource,     ///< WORKLOAD_UNANSWERABLE_SOURCE
  kWorkloadUnanswerableObject,     ///< WORKLOAD_UNANSWERABLE_OBJECT
  kWorkloadUnanswerableIntermediate, ///< WORKLOAD_UNANSWERABLE_INTERMEDIATE
  // -- interaction analysis --
  kAnalysisCostIrrelevantOp,  ///< ANALYSIS_COST_IRRELEVANT_OP: no query touches op
  // -- online-migration resumability --
  kResumeInvalidBatch,  ///< RESUME_INVALID_BATCH: batch sizing cannot progress
  kResumeNondurable,    ///< RESUME_NONDURABLE: journal cannot survive a crash
  kResumeLongOp,        ///< RESUME_LONG_OP: operator spans very many batches
  kResumeBatchPlan,     ///< RESUME_BATCH_PLAN: per-op batch schedule (note)
  // -- concurrent serving --
  kConcurrencyQuiesceStall,    ///< CONCURRENCY_QUIESCE_STALL: publish waits on long scans
  kConcurrencyHotSource,       ///< CONCURRENCY_HOT_SOURCE: copy loop contends with hot reads
  kConcurrencyUnservablePhase, ///< CONCURRENCY_UNSERVABLE_PHASE: live query unservable mid-window
  kConcurrencySingleLane,      ///< CONCURRENCY_SINGLE_LANE: serve window has < 2 sessions
  // -- write-safety information flow --
  kWriteLossyCombine,          ///< WRITE_LOSSY_COMBINE: combine collapses/duplicates rows
  kWriteSplitRoutingAmbiguous, ///< WRITE_SPLIT_ROUTING_AMBIGUOUS: old inserts cannot route
  kWriteUnservableWindow,      ///< WRITE_UNSERVABLE_WINDOW: live version cannot write a table
  kWriteProvenanceRequired,    ///< WRITE_PROVENANCE_REQUIRED: writes need row provenance
  // -- lock-order (lockdep) analysis --
  kLockOrderInversion, ///< LOCK_ORDER_INVERSION: acquisition against rank order
  kLockUpgrade,        ///< LOCK_UPGRADE: shared->exclusive on a held latch
  kLockRecursive,      ///< LOCK_RECURSIVE: latch re-acquired while held
  kLockHeldAcrossIo,   ///< LOCK_HELD_ACROSS_IO: disk I/O under a no-I/O latch
  kLockCycle,          ///< LOCK_CYCLE: acquisition-order graph has a cycle
  kLockGraphClean,     ///< LOCK_GRAPH_CLEAN: recorded graph is violation-free
};

const char* DiagCodeName(DiagCode code);
const char* DiagSeverityName(DiagSeverity severity);

/// One verifier finding.
struct Diagnostic {
  DiagSeverity severity = DiagSeverity::kError;
  DiagCode code = DiagCode::kOpsetArity;
  std::string location;  ///< "op#3", "query 'N7'", "phase 2", ...
  std::string message;

  /// "error OPSET_DEP_CYCLE [op#3]: ..." — one line, no trailing newline.
  std::string ToString() const;
};

/// \brief Ordered collection of diagnostics with severity tallies.
class DiagnosticReport {
 public:
  void Add(DiagSeverity severity, DiagCode code, std::string location, std::string message);
  void AddError(DiagCode code, std::string location, std::string message) {
    Add(DiagSeverity::kError, code, std::move(location), std::move(message));
  }
  void AddWarning(DiagCode code, std::string location, std::string message) {
    Add(DiagSeverity::kWarning, code, std::move(location), std::move(message));
  }
  void AddNote(DiagCode code, std::string location, std::string message) {
    Add(DiagSeverity::kNote, code, std::move(location), std::move(message));
  }
  /// Appends all of `other`'s diagnostics.
  void Merge(const DiagnosticReport& other);

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  size_t errors() const { return num_errors_; }
  size_t warnings() const { return num_warnings_; }
  size_t notes() const { return diags_.size() - num_errors_ - num_warnings_; }
  /// True when the report carries no errors (warnings/notes allowed).
  bool ok() const { return num_errors_ == 0; }
  bool HasCode(DiagCode code) const;
  /// Diagnostics carrying `code`, in report order.
  std::vector<Diagnostic> WithCode(DiagCode code) const;

  /// One line per diagnostic plus a tally footer; "" when empty.
  std::string ToString() const;
  /// OK when ok(); otherwise InvalidArgument carrying the first error line
  /// and the error count.
  Status ToStatus() const;

 private:
  std::vector<Diagnostic> diags_;
  size_t num_errors_ = 0;
  size_t num_warnings_ = 0;
};

}  // namespace pse
