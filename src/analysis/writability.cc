#include "analysis/writability.h"

#include <algorithm>
#include <limits>
#include <map>

#include "core/operators.h"

namespace pse {

const char* DmlKindName(DmlKind kind) {
  switch (kind) {
    case DmlKind::kSelect:
      return "select";
    case DmlKind::kInsert:
      return "insert";
    case DmlKind::kUpdate:
      return "update";
    case DmlKind::kDelete:
      return "delete";
  }
  return "?";
}

const char* WritabilityName(Writability level) {
  switch (level) {
    case Writability::kSafe:
      return "safe";
    case Writability::kNeedsPropagation:
      return "needs-propagation";
    case Writability::kUnservable:
      return "unservable";
  }
  return "?";
}

const char* LensClassName(LensClass lens) {
  switch (lens) {
    case LensClass::kInvertible:
      return "invertible";
    case LensClass::kRecoverableWithProvenance:
      return "recoverable-with-provenance";
    case LensClass::kLossy:
      return "lossy";
  }
  return "?";
}

namespace {

constexpr std::array<DmlKind, 3> kWriteKinds = {DmlKind::kInsert, DmlKind::kUpdate,
                                                DmlKind::kDelete};

VersionTable MakeVersionTable(const PhysicalTable& table, const LogicalSchema& L) {
  VersionTable out;
  out.name = table.name;
  out.anchor = table.anchor;
  for (AttrId a : table.attrs) {
    if (!L.attr(a).is_key) out.attrs.push_back(a);
  }
  return out;
}

/// Classifies `op`'s lenses against the schema it is applied to. The operand
/// anchors decide everything: a split/combine within one entity is a pure
/// vertical repartition (invertible), while crossing entities collapses or
/// duplicates rows (provenance territory).
OperatorLens ClassifyLens(int op_index, const MigrationOperator& op, const PhysicalSchema& before,
                          const LogicalSchema& L) {
  OperatorLens lens;
  lens.op = op_index;
  switch (op.kind) {
    case OperatorKind::kCreateTable: {
      lens.forward = LensClass::kInvertible;
      lens.backward = LensClass::kLossy;
      lens.detail = "new attributes of '" + L.entity(op.create_entity).name +
                    "' have no storage before the create: old-version data is untouched "
                    "(forward invertible), but a new-version write of them cannot be "
                    "represented on the pre-create schema";
      break;
    }
    case OperatorKind::kSplitTable: {
      auto ti = before.TableOfNonKeyAttr(op.split_moved[0]);
      EntityId host = ti.ok() ? before.tables()[*ti].anchor : op.split_moved_anchor;
      if (op.split_moved_anchor == host) {
        lens.forward = LensClass::kInvertible;
        lens.backward = LensClass::kInvertible;
        lens.detail = "vertical partition within '" + L.entity(host).name +
                      "': both fragments keep one row per key, writes map 1:1 either way";
      } else {
        lens.forward = LensClass::kRecoverableWithProvenance;
        lens.backward = LensClass::kInvertible;
        lens.detail = "de-duplicates '" + L.entity(op.split_moved_anchor).name +
                      "' attributes out of a fragment anchored at '" + L.entity(host).name +
                      "': old-version inserts carried them per row and must create-or-merge "
                      "the shared row (provenance); new-version writes fan back losslessly";
      }
      break;
    }
    case OperatorKind::kCombineTable: {
      auto li = before.TableOfNonKeyAttr(op.combine_left_rep);
      auto ri = before.TableOfNonKeyAttr(op.combine_right_rep);
      EntityId la = li.ok() ? before.tables()[*li].anchor : kInvalidId;
      EntityId ra = ri.ok() ? before.tables()[*ri].anchor : kInvalidId;
      if (la != kInvalidId && la == ra) {
        lens.forward = LensClass::kInvertible;
        lens.backward = LensClass::kInvertible;
        lens.detail = "re-joins two fragments of '" + L.entity(la).name +
                      "' on their shared key: writes map 1:1 either way";
      } else {
        lens.forward = LensClass::kRecoverableWithProvenance;
        lens.backward = LensClass::kRecoverableWithProvenance;
        std::string left = la != kInvalidId ? L.entity(la).name : "?";
        std::string right = ra != kInvalidId ? L.entity(ra).name : "?";
        lens.detail = "cross-entity combine of '" + left + "' x '" + right +
                      "': the join duplicates one side's rows (and drops uncovered ones), "
                      "so translating writes across it needs row provenance in both "
                      "directions (duplicate on the way in, de-duplicate on the way out)";
      }
      break;
    }
  }
  return lens;
}

/// Non-key attributes of physical table `idx` of `schema`, sorted by AttrId.
std::vector<AttrId> NonKeyAttrsOf(const PhysicalSchema& schema, size_t idx) {
  const LogicalSchema& L = *schema.logical();
  std::vector<AttrId> out;
  for (AttrId a : schema.tables()[idx].attrs) {
    if (!L.attr(a).is_key) out.push_back(a);
  }
  return out;
}

}  // namespace

std::vector<VersionTable> VersionTablesOf(const PhysicalSchema& schema) {
  std::vector<VersionTable> out;
  out.reserve(schema.tables().size());
  for (const PhysicalTable& t : schema.tables()) {
    out.push_back(MakeVersionTable(t, *schema.logical()));
  }
  return out;
}

std::array<WritabilityCell, kNumDmlKinds> ClassifyVersionTable(const VersionTable& table,
                                                               const PhysicalSchema& schema) {
  const LogicalSchema& L = *schema.logical();
  std::array<WritabilityCell, kNumDmlKinds> cells;
  if (table.attrs.empty()) {
    for (auto& c : cells) c.detail = "key-only fragment";
    return cells;
  }

  std::vector<AttrId> missing;
  std::set<size_t> placements;
  for (AttrId a : table.attrs) {
    auto ti = schema.TableOfNonKeyAttr(a);
    if (ti.ok()) {
      placements.insert(*ti);
    } else {
      missing.push_back(a);
    }
  }

  // "Direct" = a single placement table that is exactly this version table:
  // same anchor, same non-key attribute set. Everything a statement touches
  // is then one exclusive fragment.
  bool direct = false;
  const PhysicalTable* p = nullptr;
  if (missing.empty() && placements.size() == 1) {
    size_t pi = *placements.begin();
    p = &schema.tables()[pi];
    direct = p->anchor == table.anchor && NonKeyAttrsOf(schema, pi) == table.attrs;
  }

  std::string missing_detail;
  if (!missing.empty()) {
    missing_detail = "attribute '" + L.attr(missing.front()).name + "'";
    if (missing.size() > 1) {
      missing_detail += " (+" + std::to_string(missing.size() - 1) + " more)";
    }
    missing_detail += " has no storage on this schema";
  }

  // Why a servable-but-indirect layout needs write propagation.
  std::string indirect_detail;
  if (missing.empty() && !direct) {
    if (placements.size() > 1) {
      indirect_detail =
          "row fans out across " + std::to_string(placements.size()) + " fragments";
    } else if (p != nullptr && p->anchor == table.anchor) {
      indirect_detail = "fragment '" + p->name +
                        "' also carries other attributes: the write must merge into the "
                        "wider row";
    } else if (p != nullptr && L.Reaches(p->anchor, table.anchor)) {
      indirect_detail = "attributes are denormalized into '" + p->name + "' (anchored at '" +
                        L.entity(p->anchor).name +
                        "'): one logical row spans many stored rows";
    } else if (p != nullptr) {
      indirect_detail = "attributes are de-duplicated into parent fragment '" + p->name +
                        "': the write must create-or-merge the shared row";
    }
  }

  auto classify_read_or_write = [&](WritabilityCell* cell) {
    if (!missing.empty()) {
      cell->level = Writability::kUnservable;
      cell->detail = missing_detail;
    } else if (direct) {
      cell->level = Writability::kSafe;
    } else {
      cell->level = Writability::kNeedsPropagation;
      cell->detail = indirect_detail;
    }
  };
  classify_read_or_write(&cells[static_cast<size_t>(DmlKind::kSelect)]);
  classify_read_or_write(&cells[static_cast<size_t>(DmlKind::kInsert)]);
  classify_read_or_write(&cells[static_cast<size_t>(DmlKind::kUpdate)]);

  // DELETE never becomes unservable: attributes with no storage yet have
  // nothing to remove. It stays a plain single-fragment delete only on a
  // direct layout (or when nothing is stored at all).
  WritabilityCell& del = cells[static_cast<size_t>(DmlKind::kDelete)];
  if (placements.empty()) {
    del.level = Writability::kSafe;
    del.detail = "no fragment stored on this schema";
  } else if (direct) {
    del.level = Writability::kSafe;
  } else {
    del.level = Writability::kNeedsPropagation;
    del.detail = !indirect_detail.empty()
                     ? indirect_detail
                     : "delete must clear " + std::to_string(placements.size()) +
                           " fragment(s) without dropping shared rows";
  }
  return cells;
}

namespace {

/// One operator's place in the replayed trajectory.
struct OpSchedule {
  size_t step = 0;   ///< 0 = before step 0; k = applied at step k; tail = last+1
  size_t order = 0;  ///< global application sequence number
  std::set<AttrId> delta;  ///< attributes whose placement the op changed
  bool scheduled = false;  ///< false = pending beyond the analyzed trajectory
};

/// Provenance rule: the old version blames the *last applied* operator
/// touching the table's attributes (its layout drifted away from the old
/// schema step by step); the new version blames the *first still-pending*
/// one (that operator is what the layout is still waiting for). Falls back
/// to the other side, then -1.
int AttributeProvenance(const std::vector<int>& touching, const std::vector<OpSchedule>& sched,
                        size_t step, bool old_version) {
  int last_applied = -1, first_pending = -1;
  size_t best_applied = 0, best_pending = std::numeric_limits<size_t>::max();
  for (int op : touching) {
    const OpSchedule& s = sched[static_cast<size_t>(op)];
    if (s.step <= step) {
      if (last_applied < 0 || s.order >= best_applied) {
        best_applied = s.order;
        last_applied = op;
      }
    } else {
      if (first_pending < 0 || s.order < best_pending) {
        best_pending = s.order;
        first_pending = op;
      }
    }
  }
  if (old_version) return last_applied >= 0 ? last_applied : first_pending;
  return first_pending >= 0 ? first_pending : last_applied;
}

}  // namespace

Result<WritabilityAnalysis> AnalyzeWritability(const WritabilityInput& input,
                                               DiagnosticReport* report) {
  if (input.old_schema == nullptr || input.new_schema == nullptr || input.opset == nullptr) {
    return Status::InvalidArgument(
        "writability analysis needs the old schema, the new schema, and an operator set");
  }
  if (input.old_schema->logical() == nullptr ||
      input.old_schema->logical() != input.new_schema->logical()) {
    return Status::InvalidArgument("old and new schemas must share one logical schema");
  }
  const LogicalSchema& L = *input.old_schema->logical();
  const OperatorSet& opset = *input.opset;
  const size_t m = opset.size();
  std::vector<bool> applied = input.applied;
  if (applied.empty()) applied.assign(m, false);
  if (applied.size() != m) {
    return Status::InvalidArgument("applied mask arity does not match the operator set");
  }
  PSE_ASSIGN_OR_RETURN(std::vector<int> topo, opset.TopologicalOrder());

  WritabilityAnalysis out;
  out.old_tables = VersionTablesOf(*input.old_schema);
  out.new_tables = VersionTablesOf(*input.new_schema);
  out.lenses.resize(m);

  // Resolve the trajectory: the given steps, or one per remaining operator
  // in topological order.
  std::vector<bool> seen = applied;
  if (input.trajectory.empty()) {
    for (int i : topo) {
      if (!applied[static_cast<size_t>(i)]) out.trajectory.push_back({i});
    }
  } else {
    out.trajectory = input.trajectory;
    for (const std::vector<int>& group : out.trajectory) {
      for (int i : group) {
        if (i < 0 || static_cast<size_t>(i) >= m) {
          return Status::InvalidArgument("trajectory references operator " + std::to_string(i) +
                                         " outside the operator set");
        }
        if (seen[static_cast<size_t>(i)]) {
          return Status::InvalidArgument("trajectory schedules operator " + std::to_string(i) +
                                         " twice (or it is already applied)");
        }
        seen[static_cast<size_t>(i)] = true;
      }
    }
  }
  const size_t num_steps = out.trajectory.size();

  // Full symbolic replay: pre-applied operators first, then each trajectory
  // step (members in topological order, so callers may pass groups in any
  // order), then the still-pending tail. Every operator gets its lens (at
  // its actual before-schema) and its placement delta; scheduled ones also
  // get a step index for provenance attribution.
  std::vector<OpSchedule> sched(m);
  std::vector<PhysicalSchema> schemas;
  schemas.reserve(num_steps + 1);
  PhysicalSchema state = *input.old_schema;
  size_t order = 0;
  std::vector<bool> done(m, false);
  auto replay_one = [&](int i, size_t step, bool scheduled) -> Status {
    const MigrationOperator& op = opset.ops[static_cast<size_t>(i)];
    for (int d : opset.deps[static_cast<size_t>(i)]) {
      if (!done[static_cast<size_t>(d)]) {
        return Status::InvalidArgument(
            "trajectory is not dependency-closed: operator " + std::to_string(i) +
            " runs before its prerequisite " + std::to_string(d));
      }
    }
    out.lenses[static_cast<size_t>(i)] = ClassifyLens(i, op, state, L);
    PhysicalSchema next = state;
    Status s = ApplyOperator(op, &next);
    if (!s.ok()) {
      return Status::InvalidArgument("operator " + std::to_string(i) +
                                     " is not applicable during the writability replay (" +
                                     s.message() + ") — verify the migration first");
    }
    OpSchedule& entry = sched[static_cast<size_t>(i)];
    entry.step = step;
    entry.order = order++;
    entry.delta = SchemaDeltaAttrs(state, next);
    entry.scheduled = scheduled;
    done[static_cast<size_t>(i)] = true;
    state = std::move(next);
    return Status::OK();
  };
  for (int i : topo) {
    if (applied[static_cast<size_t>(i)]) PSE_RETURN_NOT_OK(replay_one(i, 0, true));
  }
  schemas.push_back(state);
  for (size_t k = 0; k < num_steps; ++k) {
    std::vector<bool> in_group(m, false);
    for (int i : out.trajectory[k]) in_group[static_cast<size_t>(i)] = true;
    for (int i : topo) {
      if (in_group[static_cast<size_t>(i)]) PSE_RETURN_NOT_OK(replay_one(i, k + 1, true));
    }
    schemas.push_back(state);
  }
  for (int i : topo) {
    if (!done[static_cast<size_t>(i)]) {
      PSE_RETURN_NOT_OK(replay_one(i, num_steps + 1, false));
    }
  }

  // Which operators touch which version table (by placement delta) — the
  // provenance candidates.
  auto touching_ops = [&](const VersionTable& t) {
    std::vector<int> ops;
    for (size_t i = 0; i < m; ++i) {
      for (AttrId a : t.attrs) {
        if (sched[i].delta.count(a)) {
          ops.push_back(static_cast<int>(i));
          break;
        }
      }
    }
    return ops;
  };
  std::vector<std::vector<int>> old_touching, new_touching;
  old_touching.reserve(out.old_tables.size());
  for (const VersionTable& t : out.old_tables) old_touching.push_back(touching_ops(t));
  new_touching.reserve(out.new_tables.size());
  for (const VersionTable& t : out.new_tables) new_touching.push_back(touching_ops(t));

  // The matrices, one per intermediate schema.
  out.steps.resize(num_steps + 1);
  for (size_t s = 0; s <= num_steps; ++s) {
    StepWritability& step = out.steps[s];
    step.step = s;
    auto fill = [&](const std::vector<VersionTable>& tables,
                    const std::vector<std::vector<int>>& touching, bool old_version,
                    bool live, VersionMatrix* matrix) {
      matrix->cells.resize(tables.size());
      for (size_t t = 0; t < tables.size(); ++t) {
        matrix->cells[t] = ClassifyVersionTable(tables[t], schemas[s]);
        for (WritabilityCell& cell : matrix->cells[t]) {
          if (cell.level == Writability::kSafe) continue;
          cell.provenance_op = AttributeProvenance(touching[t], sched, s, old_version);
          if (live && cell.level == Writability::kUnservable) ++out.unservable_cells;
        }
      }
    };
    fill(out.old_tables, old_touching, /*old_version=*/true, input.old_live,
         &step.old_version);
    fill(out.new_tables, new_touching, /*old_version=*/false, input.new_live,
         &step.new_version);
  }

  if (report == nullptr) return out;

  // -- WRITE_* diagnostics, in deterministic order: per-operator lens
  // findings first (ascending index), then per-(version, table) findings. --
  for (size_t i = 0; i < m; ++i) {
    const OperatorLens& lens = out.lenses[i];
    const MigrationOperator& op = opset.ops[i];
    std::string loc = "op#" + std::to_string(i);
    if (op.kind == OperatorKind::kCombineTable &&
        lens.forward == LensClass::kRecoverableWithProvenance) {
      report->AddWarning(DiagCode::kWriteLossyCombine, loc,
                         op.ToString(L) + ": " + lens.detail);
    }
    if (op.kind == OperatorKind::kSplitTable &&
        lens.forward == LensClass::kRecoverableWithProvenance) {
      report->AddWarning(DiagCode::kWriteSplitRoutingAmbiguous, loc,
                         op.ToString(L) + ": " + lens.detail +
                             " — routing of old-version INSERTs is ambiguous without it");
    }
  }

  auto table_findings = [&](const std::vector<VersionTable>& tables, bool old_version,
                            bool live, const char* version_name) {
    for (size_t t = 0; t < tables.size(); ++t) {
      std::string loc = std::string(version_name) + " table '" + tables[t].name + "'";
      // Steps where some write kind is unservable, and the operator blamed.
      size_t first_bad = 0, last_bad = 0, bad_steps = 0;
      int blamed = -1;
      bool provenance_needed = false;
      int provenance_op = -1;
      for (size_t s = 0; s <= num_steps; ++s) {
        const VersionMatrix& matrix =
            old_version ? out.steps[s].old_version : out.steps[s].new_version;
        bool bad = false;
        for (DmlKind kind : kWriteKinds) {
          const WritabilityCell& cell = matrix.cells[t][static_cast<size_t>(kind)];
          if (cell.level == Writability::kUnservable) {
            bad = true;
            if (cell.provenance_op >= 0) blamed = cell.provenance_op;
          } else if (cell.level == Writability::kNeedsPropagation &&
                     cell.provenance_op >= 0) {
            const OperatorLens& lens = out.lenses[static_cast<size_t>(cell.provenance_op)];
            LensClass relevant = old_version ? lens.forward : lens.backward;
            if (relevant == LensClass::kRecoverableWithProvenance) {
              provenance_needed = true;
              provenance_op = cell.provenance_op;
            }
          }
        }
        if (bad) {
          if (bad_steps == 0) first_bad = s;
          last_bad = s;
          ++bad_steps;
        }
      }
      if (live && bad_steps > 0) {
        std::string window = bad_steps == 1 ? "step " + std::to_string(first_bad)
                                            : "steps " + std::to_string(first_bad) + ".." +
                                                  std::to_string(last_bad);
        std::string cause =
            blamed >= 0 ? " until op#" + std::to_string(blamed) + " publishes" : "";
        report->AddWarning(DiagCode::kWriteUnservableWindow, loc,
                           "cannot accept writes on " + window + " of the trajectory" +
                               cause + " — a live " + version_name +
                               "-version session would see its DML fail");
      }
      if (provenance_needed) {
        report->AddNote(DiagCode::kWriteProvenanceRequired, loc,
                        "writes are servable but must consult row provenance across op#" +
                            std::to_string(provenance_op) +
                            " (" + LensClassName(LensClass::kRecoverableWithProvenance) +
                            " lens) to stay lossless");
      }
    }
  };
  table_findings(out.old_tables, /*old_version=*/true, input.old_live, "old");
  table_findings(out.new_tables, /*old_version=*/false, input.new_live, "new");
  return out;
}

std::string WritabilityAnalysis::ToString(const OperatorSet& opset,
                                          const LogicalSchema& logical) const {
  std::string out = "write-safety analysis: " + std::to_string(steps.size()) +
                    " intermediate schema(s), old version " +
                    std::to_string(old_tables.size()) + " table(s), new version " +
                    std::to_string(new_tables.size()) + " table(s), " +
                    std::to_string(unservable_cells) + " unservable cell(s)\n";
  out += "operator lenses:\n";
  for (const OperatorLens& lens : lenses) {
    if (lens.op < 0) continue;
    out += "  [" + std::to_string(lens.op) + "] " +
           opset.ops[static_cast<size_t>(lens.op)].ToString(logical) +
           "  forward=" + LensClassName(lens.forward) +
           " backward=" + LensClassName(lens.backward) + "\n";
  }
  auto cell_str = [](const WritabilityCell& cell) {
    std::string s = WritabilityName(cell.level);
    if (cell.provenance_op >= 0 && cell.level != Writability::kSafe) {
      s += "(op#" + std::to_string(cell.provenance_op) + ")";
    }
    return s;
  };
  for (const StepWritability& step : steps) {
    out += "step " + std::to_string(step.step);
    if (step.step == 0) {
      out += " (starting schema)";
    } else if (step.step - 1 < trajectory.size()) {
      out += " (after";
      for (int op : trajectory[step.step - 1]) out += " op#" + std::to_string(op);
      out += ")";
    }
    out += ":\n";
    auto rows = [&](const std::vector<VersionTable>& tables, const VersionMatrix& matrix,
                    const char* version) {
      for (size_t t = 0; t < tables.size(); ++t) {
        out += "  ";
        out += version;
        out += " " + tables[t].name + ":";
        for (size_t k = 0; k < kNumDmlKinds; ++k) {
          out += " ";
          out += DmlKindName(static_cast<DmlKind>(k));
          out += "=" + cell_str(matrix.cells[t][k]);
        }
        out += "\n";
      }
    };
    rows(old_tables, step.old_version, "old");
    rows(new_tables, step.new_version, "new");
  }
  return out;
}

WriteSafetySpec ResolveWriteSafety(const AnalysisOptions& analysis,
                                   const PhysicalSchema* fallback_old,
                                   const PhysicalSchema* new_schema) {
  WriteSafetySpec spec;
  const PhysicalSchema* old_schema =
      analysis.write_old_schema != nullptr ? analysis.write_old_schema : fallback_old;
  spec.old_schema = analysis.write_old_live ? old_schema : nullptr;
  spec.new_schema = analysis.write_new_live ? new_schema : nullptr;
  spec.unservable_penalty = analysis.write_unservable_penalty;
  spec.propagation_penalty = analysis.write_propagation_penalty;
  spec.reject_unservable = analysis.write_reject_unservable;
  return spec;
}

double WriteSafetyPenalty(const PhysicalSchema& schema, const WriteSafetySpec& spec,
                          const std::set<AttrId>* filter, bool invert) {
  double total = 0;
  bool rejected = false;
  auto tally_version = [&](const PhysicalSchema* version) {
    if (version == nullptr) return;
    const LogicalSchema& L = *version->logical();
    for (const PhysicalTable& pt : version->tables()) {
      VersionTable t = MakeVersionTable(pt, L);
      if (filter != nullptr) {
        bool hit = false;
        for (AttrId a : t.attrs) {
          if (filter->count(a)) {
            hit = true;
            break;
          }
        }
        if (hit == invert) continue;
      }
      std::array<WritabilityCell, kNumDmlKinds> cells = ClassifyVersionTable(t, schema);
      for (DmlKind kind : kWriteKinds) {
        const WritabilityCell& cell = cells[static_cast<size_t>(kind)];
        if (cell.level == Writability::kUnservable) {
          total += spec.unservable_penalty;
          if (spec.reject_unservable) rejected = true;
        } else if (cell.level == Writability::kNeedsPropagation) {
          total += spec.propagation_penalty;
        }
      }
    }
  };
  tally_version(spec.old_schema);
  tally_version(spec.new_schema);
  if (rejected) return std::numeric_limits<double>::infinity();
  return total;
}

std::vector<std::set<AttrId>> WriteSafetyCouplingGroups(const WriteSafetySpec& spec) {
  std::vector<std::set<AttrId>> out;
  auto add_version = [&](const PhysicalSchema* version) {
    if (version == nullptr) return;
    const LogicalSchema& L = *version->logical();
    for (const PhysicalTable& pt : version->tables()) {
      std::set<AttrId> group;
      for (AttrId a : pt.attrs) {
        if (!L.attr(a).is_key) group.insert(a);
      }
      if (!group.empty()) out.push_back(std::move(group));
    }
  };
  add_version(spec.old_schema);
  add_version(spec.new_schema);
  return out;
}

}  // namespace pse
