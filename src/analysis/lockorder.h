// Offline lock-order ("lockdep") analysis over recorded latch-acquisition
// graphs (DESIGN.md §17).
//
// The runtime half lives in src/common/lock_registry.h: instrumented latches
// record which lock classes each thread held while acquiring others, plus
// at-acquire-time violations. This pass consumes a LockOrderGraph snapshot
// and turns it into LOCK_* diagnostics:
//
//   LOCK_ORDER_INVERSION  an acquisition (runtime-flagged, or an edge whose
//                         target does not sort after its source in
//                         (rank, name) order) against the canonical order
//   LOCK_UPGRADE          shared->exclusive upgrade of a held latch
//   LOCK_RECURSIVE        re-acquisition of a held latch
//   LOCK_HELD_ACROSS_IO   disk I/O under a no-I/O class
//   LOCK_CYCLE            a strongly connected component in the acquisition
//                         graph — a potential deadlock even if no run hung
//
// All LOCK_* findings are errors: migration_lint and check.sh --lockdep gate
// on report.ok().
#pragma once

#include <string>

#include "analysis/diagnostic.h"
#include "common/lock_registry.h"

namespace pse {

/// The designed latch hierarchy as a graph: catalog -> servingschema ->
/// table:<name> -> bufferpool. This is the reference picture `.lockgraph`
/// renders when no acquisitions were recorded (e.g. a build without
/// PROGSCHEMA_LOCKDEP).
LockOrderGraph CanonicalLockGraph();

/// Runs the offline pass: re-emits recorded runtime violations, derives
/// inversions from rank-violating edges the runtime did not already flag
/// (so hand-built graphs analyze cleanly without double-reporting live
/// ones), and runs Tarjan SCC cycle detection. A LOCK_CYCLE diagnostic is
/// emitted once per multi-node component with its sorted membership in the
/// location ("cycle [a, b]") and the component's edges with both
/// acquisition sites in the message.
DiagnosticReport AnalyzeLockOrder(const LockOrderGraph& graph);

/// GraphViz rendering of the graph: nodes grouped by rank, rank-violating
/// edges in red, edge labels carrying observation counts. Paste into `dot
/// -Tsvg` or a DOT viewer.
std::string LockGraphToDot(const LockOrderGraph& graph);

}  // namespace pse
