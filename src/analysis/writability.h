// Write-safety information-flow analyzer: per-version DML writability
// matrices over migration trajectories.
//
// The paper keeps two live application versions on one evolving schema, but
// only queries are rewritten; nothing answers "may app-version V issue an
// INSERT/UPDATE/DELETE against its logical table T while intermediate schema
// S_i is current?". Following the bidirectional-lens view of schema
// evolution (BiDEL's SMOs, bidirectional transformations), each of our three
// operators is classified by the information flow of its forward and
// backward lenses:
//
//   kInvertible                 no information is lost in either direction —
//                               a write through the lens maps to exactly one
//                               write on the other side (same-entity splits
//                               and re-combines);
//   kRecoverableWithProvenance  the mapping collapses or duplicates rows
//                               (cross-entity CombineTable join/dedup,
//                               SplitTable that de-duplicates parent
//                               attributes out of a denormalized fragment);
//                               writes remain translatable only if the
//                               system keeps per-row provenance;
//   kLossy                      the source side cannot represent the write
//                               at all (CreateTable backward: the new
//                               attributes have no pre-create storage).
//
// From the lenses and a trajectory (which operators run at which migration
// point), AnalyzeWritability derives for every intermediate schema a
// *writability matrix* — app-version x logical-table x DML-kind —
//
//   kSafe              the statement touches exactly one exclusive fragment
//                      with the table's own anchor: a plain 1:1 write;
//   kNeedsPropagation  servable, but the write must fan out to several
//                      fragments, merge into a shared/denormalized table, or
//                      consult provenance — the DML rewriter has work to do;
//   kUnservable        some attribute has no storage on this schema (not yet
//                      created): the statement cannot execute at all —
//
// with per-cell provenance naming the operator that caused the downgrade
// (for the old version: the last applied operator touching the table's
// attributes; for the new version: the first still-pending one). Findings
// surface as the WRITE_* diagnostic family through DiagnosticReport.
//
// The matrix is also a planning dimension: AnalysisOptions::write_safety
// makes SelectOpsLaa/PlanGaa/AdviseSchema price (or hard-reject) candidate
// schemas that open write-unservable windows for the declared live versions
// (WriteSafetyPenalty below), and AnalyzeConcurrency consumes the matrix so
// serving-phase lints cover writes, not just reads. The SELECT column of the
// matrix is computed statically (attribute-placement only) and agrees with
// Rewriter servability on valid schemas — property-tested in
// tests/analysis/writability_test.cc. DESIGN.md §16 spells out the rules.
#pragma once

#include <array>
#include <set>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/interaction.h"
#include "core/mapping.h"

namespace pse {

enum class DmlKind { kSelect = 0, kInsert = 1, kUpdate = 2, kDelete = 3 };
constexpr size_t kNumDmlKinds = 4;
const char* DmlKindName(DmlKind kind);

enum class Writability { kSafe, kNeedsPropagation, kUnservable };
const char* WritabilityName(Writability level);

enum class LensClass { kInvertible, kRecoverableWithProvenance, kLossy };
const char* LensClassName(LensClass lens);

/// Forward/backward information-flow classification of one operator.
/// Forward = translating an old-version write onto the post-operator schema;
/// backward = translating a new-version write onto the pre-operator schema.
struct OperatorLens {
  int op = -1;  ///< index into the OperatorSet
  LensClass forward = LensClass::kInvertible;
  LensClass backward = LensClass::kInvertible;
  std::string detail;  ///< one-line why
};

/// One matrix cell: (version, table, DML kind) on one intermediate schema.
struct WritabilityCell {
  Writability level = Writability::kSafe;
  /// OperatorSet index of the operator that caused the downgrade; -1 when
  /// the cell is kSafe or no single operator is responsible.
  int provenance_op = -1;
  std::string detail;  ///< one-line why (empty when kSafe)
};

/// A logical table as one application version sees it: the anchor entity and
/// the non-key attributes its rows carry. DML statements of that version are
/// written against exactly these tables.
struct VersionTable {
  std::string name;
  EntityId anchor = kInvalidId;
  std::vector<AttrId> attrs;  ///< non-key attributes, sorted by AttrId
};

/// The version tables of a physical schema (one per table, non-key attrs).
std::vector<VersionTable> VersionTablesOf(const PhysicalSchema& schema);

/// Classifies every DML kind of version table `table` against the physical
/// layout `schema`, from attribute placement alone (no provenance — see
/// AnalyzeWritability for trajectory-aware attribution). Indexed by DmlKind.
std::array<WritabilityCell, kNumDmlKinds> ClassifyVersionTable(const VersionTable& table,
                                                               const PhysicalSchema& schema);

/// The matrix of one application version on one intermediate schema:
/// cells[t][k] = (version table t, DmlKind k).
struct VersionMatrix {
  std::vector<std::array<WritabilityCell, kNumDmlKinds>> cells;
};

/// Both versions' matrices at one trajectory step.
struct StepWritability {
  size_t step = 0;  ///< 0 = the starting schema, k = after trajectory[k-1]
  VersionMatrix old_version;
  VersionMatrix new_version;
};

struct WritabilityInput {
  /// The old application's layout (the migration's original source schema —
  /// its tables define what old-version DML is written against).
  const PhysicalSchema* old_schema = nullptr;
  /// The new application's layout (the object schema).
  const PhysicalSchema* new_schema = nullptr;
  const OperatorSet* opset = nullptr;
  /// Operators applied before the trajectory starts (empty = none); their
  /// effect is part of step 0's schema.
  std::vector<bool> applied;
  /// trajectory[k] = operator indices applied at migration point k, in any
  /// dependency-respecting order. Empty = one step per remaining operator in
  /// topological order. May cover a prefix of the remaining operators;
  /// operators never scheduled still get lenses and provenance ("pending").
  std::vector<std::vector<int>> trajectory;
  /// Which versions are live (drive WRITE_UNSERVABLE_WINDOW and the
  /// unservable_cells tally; both matrices are always computed).
  bool old_live = true;
  bool new_live = true;
};

/// \brief The full analysis over one trajectory.
struct WritabilityAnalysis {
  std::vector<VersionTable> old_tables;
  std::vector<VersionTable> new_tables;
  /// Lens classification of every operator, indexed by OperatorSet index.
  std::vector<OperatorLens> lenses;
  /// The trajectory analyzed (resolved when the input left it empty).
  std::vector<std::vector<int>> trajectory;
  /// Matrices per intermediate schema: steps[0] = starting schema,
  /// steps[k] = after trajectory[k-1]; trajectory.size()+1 entries.
  std::vector<StepWritability> steps;
  /// kUnservable cells of *live* versions across all steps and DML kinds —
  /// the write-unservable-window mass planners penalize.
  size_t unservable_cells = 0;

  /// Human-readable matrices, one block per step, deterministic order.
  std::string ToString(const OperatorSet& opset, const LogicalSchema& logical) const;
};

/// \brief Runs the analysis; appends WRITE_* diagnostics to `report` (when
/// given): WRITE_LOSSY_COMBINE and WRITE_SPLIT_ROUTING_AMBIGUOUS per
/// operator whose lens needs provenance, WRITE_UNSERVABLE_WINDOW per live
/// (version, table) with an unservable write window, WRITE_PROVENANCE_
/// REQUIRED per (version, table) whose writes must consult provenance.
/// All WRITE_* diagnostics are warnings/notes, never errors.
///
/// Fails only on malformed input (missing schemas, arity mismatch, a
/// trajectory that is not dependency-closed or does not replay) — run
/// VerifyMigration first for a full report.
Result<WritabilityAnalysis> AnalyzeWritability(const WritabilityInput& input,
                                               DiagnosticReport* report = nullptr);

// -- planner integration (AnalysisOptions::write_safety) --

/// The resolved write-safety pricing the planners evaluate per candidate
/// schema. Null schema pointers mean "that version is not live".
struct WriteSafetySpec {
  const PhysicalSchema* old_schema = nullptr;
  const PhysicalSchema* new_schema = nullptr;
  double unservable_penalty = 1e6;
  double propagation_penalty = 0.0;
  bool reject_unservable = false;
};

/// Resolves the spec from planner options: old layout from
/// `analysis.write_old_schema` (falling back to `fallback_old`), new layout
/// `new_schema`, liveness/pricing from the write_* fields.
WriteSafetySpec ResolveWriteSafety(const AnalysisOptions& analysis,
                                   const PhysicalSchema* fallback_old,
                                   const PhysicalSchema* new_schema);

/// Write-safety penalty of `schema` for the live versions in `spec`:
/// unservable_penalty per kUnservable write cell (INSERT/UPDATE/DELETE) plus
/// propagation_penalty per kNeedsPropagation write cell. Returns +infinity
/// when reject_unservable is set and any counted cell is kUnservable. Never
/// fails. `filter` (optional) restricts the tally to version tables whose
/// attribute set intersects it — with `invert`, to tables disjoint from it —
/// which is how the pruned LAA decomposes the penalty per interference
/// cluster without losing exactness (DESIGN.md §16).
double WriteSafetyPenalty(const PhysicalSchema& schema, const WriteSafetySpec& spec,
                          const std::set<AttrId>* filter = nullptr, bool invert = false);

/// The live versions' table attribute sets — the coupling groups planners
/// pass to AnalyzeInteractions so every operator touching one version
/// table's attributes lands in a single cluster, keeping the per-cluster
/// penalty decomposition exact.
std::vector<std::set<AttrId>> WriteSafetyCouplingGroups(const WriteSafetySpec& spec);

}  // namespace pse
