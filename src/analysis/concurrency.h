// Concurrency diagnostics for serving mixed-version load during migration.
//
// When foreground sessions execute queries while the MigrationExecutor
// evolves the schema (DESIGN.md §15, core/serving.h), three things can hurt
// them: the per-operator publish window must quiesce all in-flight readers
// (a long scan stalls it and, because the catalog latch is writer-
// preferring, every *new* reader queues behind the stall); the copy loop's
// per-batch shared latch contends with hot foreground scans of the same
// source tables; and a live query can be unservable on the intermediate
// schemas of the window. This analyzer predicts all three from the workload
// frequencies and entity cardinalities, before any data moves:
//
//   CONCURRENCY_QUIESCE_STALL    (warning) an operator's publish window can
//                                stall behind an active query whose scans
//                                exceed the configured row threshold;
//   CONCURRENCY_UNSERVABLE_PHASE (warning) an active query is unservable on
//                                an intermediate schema of the window, so
//                                live sessions will see BindErrors;
//   CONCURRENCY_HOT_SOURCE       (note) an operator's source tables are read
//                                by active queries — the copy loop's batch
//                                latch will contend with them;
//   CONCURRENCY_SINGLE_LANE      (note) the serve window is configured with
//                                fewer than two sessions, so it exercises no
//                                reader concurrency at all.
#pragma once

#include "analysis/diagnostic.h"
#include "core/mapping.h"
#include "core/physical_schema.h"
#include "core/workload.h"

namespace pse {

struct ConcurrencyOptions {
  /// Warn CONCURRENCY_QUIESCE_STALL when an active query scans more than
  /// this many rows (summed over its table accesses) on the schema an
  /// operator publishes from.
  uint64_t quiesce_drain_rows = 100000;
  /// Emit CONCURRENCY_HOT_SOURCE when the active-frequency share of queries
  /// reading an operator's source tables is at least this fraction.
  double hot_source_share = 0.25;
};

/// The serve window under analysis. `freqs` holds this phase's per-query
/// frequencies (arity must match `queries`); a query is *active* when its
/// frequency is positive. `applied` (optional) marks operators already
/// executed, which contribute their schema step but no diagnostics.
struct ConcurrencyInput {
  const PhysicalSchema* source = nullptr;
  const OperatorSet* opset = nullptr;
  const std::vector<bool>* applied = nullptr;
  const std::vector<WorkloadQuery>* queries = nullptr;
  const std::vector<double>* freqs = nullptr;
  /// Entity cardinalities for the scan-size estimates (optional; without
  /// them the quiesce-stall check is skipped).
  const LogicalStats* stats = nullptr;
  /// Foreground sessions the serve window will run (ServeOptions::sessions).
  size_t sessions = 0;
  /// The new application's layout (optional). When set, the writability
  /// matrix over the window's operator sequence is computed
  /// (analysis/writability.h) and its WRITE_* findings merge into the
  /// report, so serving-phase lints cover writes, not just reads.
  const PhysicalSchema* object = nullptr;
};

/// \brief Predicts reader/migration interference for one serve window.
/// Never fails — problems come back as diagnostics.
DiagnosticReport AnalyzeConcurrency(const ConcurrencyInput& input,
                                    const ConcurrencyOptions& options = {});

}  // namespace pse
