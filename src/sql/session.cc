#include "sql/session.h"

#include "common/lock_registry.h"

#include <mutex>
#include <shared_mutex>

#include "engine/executor.h"
#include "engine/planner.h"
#include "sql/ast.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace pse {

Result<ExecResult> Session::Execute(const std::string& sql) {
  PSE_ASSIGN_OR_RETURN(Statement stmt, ParseSql(sql));
  // DML holds the catalog latch shared for the whole statement — bind, plan,
  // and execute all see one consistent schema even while a migration runs
  // concurrently. DDL (and the migration executor's publish windows) holds
  // it exclusive. Row-level conflicts are the table latches' job
  // (DESIGN.md §15).
  PSE_LOCKDEP_SCOPE("Session::Execute");
  switch (stmt.kind) {
    case Statement::Kind::kSelect: {
      std::shared_lock<SharedMutex> schema_lock(db_->schema_latch());
      PSE_ASSIGN_OR_RETURN(BoundQuery q, BindSelect(*stmt.select, view_));
      return ExecuteSelect(q);
    }
    case Statement::Kind::kInsert: {
      std::shared_lock<SharedMutex> schema_lock(db_->schema_latch());
      return ExecuteInsert(*stmt.insert);
    }
    case Statement::Kind::kUpdate: {
      std::shared_lock<SharedMutex> schema_lock(db_->schema_latch());
      return ExecuteUpdate(*stmt.update);
    }
    case Statement::Kind::kDelete: {
      std::shared_lock<SharedMutex> schema_lock(db_->schema_latch());
      return ExecuteDelete(*stmt.del);
    }
    case Statement::Kind::kCreateTable: {
      std::unique_lock<SharedMutex> schema_lock(db_->schema_latch());
      PSE_RETURN_NOT_OK(db_->CreateTable(stmt.create_table->schema));
      return ExecResult{};
    }
    case Statement::Kind::kCreateIndex: {
      std::unique_lock<SharedMutex> schema_lock(db_->schema_latch());
      PSE_RETURN_NOT_OK(db_->CreateIndex(stmt.create_index->table, stmt.create_index->column));
      return ExecResult{};
    }
    case Statement::Kind::kDropTable: {
      std::unique_lock<SharedMutex> schema_lock(db_->schema_latch());
      PSE_RETURN_NOT_OK(db_->DropTable(stmt.drop_table->table));
      return ExecResult{};
    }
    case Statement::Kind::kAnalyze: {
      std::unique_lock<SharedMutex> schema_lock(db_->schema_latch());
      if (stmt.analyze->table.empty()) {
        PSE_RETURN_NOT_OK(db_->AnalyzeAll());
      } else {
        PSE_RETURN_NOT_OK(db_->Analyze(stmt.analyze->table));
      }
      return ExecResult{};
    }
  }
  return Status::Internal("unhandled statement kind");
}

Result<BoundQuery> Session::Bind(const std::string& sql) {
  PSE_ASSIGN_OR_RETURN(Statement stmt, ParseSql(sql));
  if (stmt.kind != Statement::Kind::kSelect) {
    return Status::InvalidArgument("Bind expects a SELECT statement");
  }
  std::shared_lock<SharedMutex> schema_lock(db_->schema_latch());
  return BindSelect(*stmt.select, view_);
}

Result<std::string> Session::Explain(const std::string& sql) {
  std::shared_lock<SharedMutex> schema_lock(db_->schema_latch());
  PSE_ASSIGN_OR_RETURN(Statement stmt, ParseSql(sql));
  if (stmt.kind != Statement::Kind::kSelect) {
    return Status::InvalidArgument("Explain expects a SELECT statement");
  }
  PSE_ASSIGN_OR_RETURN(BoundQuery q, BindSelect(*stmt.select, view_));
  PSE_ASSIGN_OR_RETURN(PlanPtr plan, PlanQuery(q, view_));
  return plan->ToString();
}

Result<ExecResult> Session::ExecuteSelect(const BoundQuery& q) {
  PSE_ASSIGN_OR_RETURN(PlanPtr plan, PlanQuery(q, view_));
  PSE_ASSIGN_OR_RETURN(std::vector<Row> rows, ExecutePlan(*plan, db_));
  ExecResult out;
  out.columns = plan->output_columns;
  out.rows = std::move(rows);
  out.affected = out.rows.size();
  return out;
}

Result<ExecResult> Session::ExecuteInsert(const InsertStmt& stmt) {
  if (dml_hook_ != nullptr) {
    ExecResult out;
    PSE_ASSIGN_OR_RETURN(bool handled, dml_hook_->OnInsert(stmt, &out.affected));
    if (handled) return out;
  }
  PSE_ASSIGN_OR_RETURN(TableInfo * t, db_->GetTable(stmt.table));
  const TableSchema& schema = *t->schema;
  // Map provided columns to schema positions.
  std::vector<size_t> positions;
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < schema.num_columns(); ++i) positions.push_back(i);
  } else {
    for (const auto& c : stmt.columns) {
      PSE_ASSIGN_OR_RETURN(size_t idx, schema.ColumnIndex(c));
      positions.push_back(idx);
    }
  }
  ExecResult out;
  for (const auto& literals : stmt.rows) {
    if (literals.size() != positions.size()) {
      return Status::InvalidArgument("INSERT arity mismatch: got " +
                                     std::to_string(literals.size()) + ", want " +
                                     std::to_string(positions.size()));
    }
    Row row(schema.num_columns());
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      row[i] = Value::Null(schema.column(i).type);
    }
    for (size_t i = 0; i < positions.size(); ++i) {
      PSE_ASSIGN_OR_RETURN(row[positions[i]],
                           literals[i].CastTo(schema.column(positions[i]).type));
    }
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      if (!schema.column(i).nullable && row[i].is_null()) {
        return Status::ConstraintViolation("column '" + schema.column(i).name +
                                           "' is NOT NULL");
      }
    }
    PSE_RETURN_NOT_OK(db_->Insert(stmt.table, row).status());
    ++out.affected;
  }
  return out;
}

namespace {
/// Collects (rid, row) pairs of a table matching `where` (may be null).
Status CollectMatches(TableInfo* t, const Expr* where,
                      std::vector<std::pair<Rid, Row>>* out) {
  ExprPtr resolved;
  if (where != nullptr) {
    resolved = where->Clone();
    const TableSchema* schema = t->schema.get();
    PSE_RETURN_NOT_OK(resolved->Resolve([schema](const std::string& n) -> Result<size_t> {
      // Accept both "col" and "table.col".
      size_t dot = n.find('.');
      return schema->ColumnIndex(dot == std::string::npos ? n : n.substr(dot + 1));
    }));
  }
  PSE_LOCKDEP_SCOPE("Session::CollectMatches");
  // Shared content latch for the scan only — released before the caller
  // re-enters Database::Update/Delete, which take it exclusive.
  std::shared_lock<SharedMutex> table_lock(t->latch);
  for (auto it = t->heap->Begin(); !it.AtEnd();) {
    bool pass = true;
    if (resolved) {
      PSE_ASSIGN_OR_RETURN(pass, EvalPredicate(*resolved, it.row()));
    }
    if (pass) out->emplace_back(it.rid(), it.row());
    PSE_RETURN_NOT_OK(it.Next());
  }
  return Status::OK();
}
}  // namespace

Result<ExecResult> Session::ExecuteUpdate(const UpdateStmt& stmt) {
  if (dml_hook_ != nullptr) {
    ExecResult out;
    PSE_ASSIGN_OR_RETURN(bool handled, dml_hook_->OnUpdate(stmt, &out.affected));
    if (handled) return out;
  }
  PSE_ASSIGN_OR_RETURN(TableInfo * t, db_->GetTable(stmt.table));
  const TableSchema& schema = *t->schema;
  // Resolve assignment expressions against the table row.
  std::vector<std::pair<size_t, ExprPtr>> assigns;
  for (const auto& [col, expr] : stmt.assignments) {
    PSE_ASSIGN_OR_RETURN(size_t idx, schema.ColumnIndex(col));
    ExprPtr e = expr->Clone();
    const TableSchema* sp = &schema;
    PSE_RETURN_NOT_OK(e->Resolve([sp](const std::string& n) -> Result<size_t> {
      size_t dot = n.find('.');
      return sp->ColumnIndex(dot == std::string::npos ? n : n.substr(dot + 1));
    }));
    assigns.emplace_back(idx, std::move(e));
  }
  std::vector<std::pair<Rid, Row>> matches;
  PSE_RETURN_NOT_OK(CollectMatches(t, stmt.where.get(), &matches));
  ExecResult out;
  for (auto& [rid, row] : matches) {
    Row updated = row;
    for (const auto& [idx, e] : assigns) {
      PSE_ASSIGN_OR_RETURN(Value v, e->Eval(row));
      PSE_ASSIGN_OR_RETURN(updated[idx], v.CastTo(schema.column(idx).type));
    }
    PSE_RETURN_NOT_OK(db_->Update(stmt.table, rid, updated).status());
    ++out.affected;
  }
  return out;
}

Result<ExecResult> Session::ExecuteDelete(const DeleteStmt& stmt) {
  if (dml_hook_ != nullptr) {
    ExecResult out;
    PSE_ASSIGN_OR_RETURN(bool handled, dml_hook_->OnDelete(stmt, &out.affected));
    if (handled) return out;
  }
  PSE_ASSIGN_OR_RETURN(TableInfo * t, db_->GetTable(stmt.table));
  std::vector<std::pair<Rid, Row>> matches;
  PSE_RETURN_NOT_OK(CollectMatches(t, stmt.where.get(), &matches));
  ExecResult out;
  for (auto& [rid, row] : matches) {
    PSE_RETURN_NOT_OK(db_->Delete(stmt.table, rid));
    ++out.affected;
  }
  return out;
}

}  // namespace pse
