// SQL tokenizer.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace pse {

enum class TokenType {
  kIdentifier,  // keywords are identifiers; the parser matches them
  kInteger,
  kFloat,
  kString,
  kComma,
  kDot,
  kLParen,
  kRParen,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kEq,      // =
  kNe,      // <> or !=
  kLt,
  kLe,
  kGt,
  kGe,
  kSemicolon,
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;      // identifier/keyword text (original case) or literal
  int64_t int_value = 0;
  double float_value = 0;
  size_t offset = 0;     // byte offset in the input, for error messages
};

/// Tokenizes SQL text. Comments ("-- ...") are skipped.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace pse
