// Binder: turns a parsed SELECT into a BoundQuery against a CatalogView.
//
// Responsibilities: table/column resolution, '*' expansion, qualifying every
// column reference to "alias.column", classifying WHERE/ON conjuncts into
// per-table filters / equi-joins / global filters, projection pushdown
// (column pruning), and ORDER BY resolution.
#pragma once

#include "engine/bound_query.h"
#include "engine/catalog_view.h"
#include "sql/ast.h"

namespace pse {

/// Binds a SELECT statement. BindError on unknown tables/columns, ambiguous
/// references, or unsupported shapes.
Result<BoundQuery> BindSelect(const SelectStmt& stmt, const CatalogView& catalog);

}  // namespace pse
