// SessionDmlHook: an interception point for parsed DML statements.
//
// A Session normally executes INSERT/UPDATE/DELETE directly against the
// physical table the statement names. Multi-version serving needs a
// different route: the statement names a *version table* (the logical table
// one application version sees — analysis/writability.h), which may be
// fanned out across several physical fragments of the current intermediate
// schema by the write rewriter (core/rewriter_dml.h). The hook lets the
// core layer claim such statements without the sql layer depending on it:
// sql sees only this interface; core implements it (SqlDmlBridge).
//
// Contract: each handler returns whether it handled the statement. On
// `false` the session falls through to its default physical-table path
// (how raw-table DDL/DML in tests and loaders keeps working); on `true`
// the session reports `*affected` and executes nothing itself. Handlers
// run under the session's shared catalog latch, so they may acquire latches
// ranked above it (DmlRouter's write mutex, table latches) but must not
// take the catalog latch again.
#pragma once

#include <cstdint>

#include "common/status.h"

namespace pse {

struct InsertStmt;
struct UpdateStmt;
struct DeleteStmt;

class SessionDmlHook {
 public:
  virtual ~SessionDmlHook() = default;

  virtual Result<bool> OnInsert(const InsertStmt& stmt, uint64_t* affected) = 0;
  virtual Result<bool> OnUpdate(const UpdateStmt& stmt, uint64_t* affected) = 0;
  virtual Result<bool> OnDelete(const DeleteStmt& stmt, uint64_t* affected) = 0;
};

}  // namespace pse
