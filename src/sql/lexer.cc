#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

namespace pse {

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = sql.size();
  auto push = [&](TokenType t, size_t off, std::string text = "") {
    Token tok;
    tok.type = t;
    tok.text = std::move(text);
    tok.offset = off;
    out.push_back(std::move(tok));
  };
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) || sql[i] == '_')) ++i;
      push(TokenType::kIdentifier, start, sql.substr(start, i - start));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(sql[i + 1]))) {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      std::string text = sql.substr(start, i - start);
      Token tok;
      tok.offset = start;
      tok.text = text;
      if (is_float) {
        tok.type = TokenType::kFloat;
        tok.float_value = std::strtod(text.c_str(), nullptr);
      } else {
        tok.type = TokenType::kInteger;
        tok.int_value = std::strtoll(text.c_str(), nullptr, 10);
      }
      out.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            text.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text.push_back(sql[i++]);
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      push(TokenType::kString, start, std::move(text));
      continue;
    }
    switch (c) {
      case ',':
        push(TokenType::kComma, start);
        ++i;
        break;
      case '.':
        push(TokenType::kDot, start);
        ++i;
        break;
      case '(':
        push(TokenType::kLParen, start);
        ++i;
        break;
      case ')':
        push(TokenType::kRParen, start);
        ++i;
        break;
      case '*':
        push(TokenType::kStar, start);
        ++i;
        break;
      case '+':
        push(TokenType::kPlus, start);
        ++i;
        break;
      case '-':
        push(TokenType::kMinus, start);
        ++i;
        break;
      case '/':
        push(TokenType::kSlash, start);
        ++i;
        break;
      case ';':
        push(TokenType::kSemicolon, start);
        ++i;
        break;
      case '=':
        push(TokenType::kEq, start);
        ++i;
        break;
      case '!':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenType::kNe, start);
          i += 2;
        } else {
          return Status::ParseError("unexpected '!' at offset " + std::to_string(start));
        }
        break;
      case '<':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenType::kLe, start);
          i += 2;
        } else if (i + 1 < n && sql[i + 1] == '>') {
          push(TokenType::kNe, start);
          i += 2;
        } else {
          push(TokenType::kLt, start);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenType::kGe, start);
          i += 2;
        } else {
          push(TokenType::kGt, start);
          ++i;
        }
        break;
      default:
        return Status::ParseError(std::string("unexpected character '") + c + "' at offset " +
                                  std::to_string(start));
    }
  }
  push(TokenType::kEnd, n);
  return out;
}

}  // namespace pse
