// Recursive-descent SQL parser.
//
// Supported statements:
//   SELECT [DISTINCT] items FROM t [a] {, t [a] | [INNER] JOIN t [a] ON cond}
//     [WHERE expr] [GROUP BY exprs] [ORDER BY item [ASC|DESC], ...] [LIMIT n]
//   INSERT INTO t [(cols)] VALUES (lits), ...
//   UPDATE t SET col = expr, ... [WHERE expr]
//   DELETE FROM t [WHERE expr]
//   CREATE TABLE t (col TYPE [NOT NULL], ..., PRIMARY KEY (col))
//   CREATE INDEX ON t (col)
//   ANALYZE [t]
//
// Expressions: OR / AND / NOT; comparisons (=, <>, !=, <, <=, >, >=), LIKE,
// NOT LIKE, IS [NOT] NULL, IN (literals), BETWEEN a AND b (desugared);
// + - * /; literals (integer, float, string, NULL, TRUE, FALSE); column
// references (qualified or not); aggregates COUNT(*)/COUNT/SUM/AVG/MIN/MAX
// at select-item level.
#pragma once

#include "common/status.h"
#include "sql/ast.h"

namespace pse {

/// Parses one SQL statement (trailing ';' optional).
Result<Statement> ParseSql(const std::string& sql);

}  // namespace pse
