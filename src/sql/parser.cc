#include "sql/parser.h"

#include "common/string_util.h"
#include "sql/lexer.h"

namespace pse {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement();

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool Check(TokenType t) const { return Peek().type == t; }
  bool CheckKeyword(const char* kw) const {
    return Peek().type == TokenType::kIdentifier && EqualsIgnoreCase(Peek().text, kw);
  }
  bool MatchKeyword(const char* kw) {
    if (CheckKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool Match(TokenType t) {
    if (Check(t)) {
      Advance();
      return true;
    }
    return false;
  }
  Status Expect(TokenType t, const char* what) {
    if (!Match(t)) {
      return Status::ParseError(std::string("expected ") + what + " near offset " +
                                std::to_string(Peek().offset));
    }
    return Status::OK();
  }
  Status ExpectKeyword(const char* kw) {
    if (!MatchKeyword(kw)) {
      return Status::ParseError(std::string("expected ") + kw + " near offset " +
                                std::to_string(Peek().offset));
    }
    return Status::OK();
  }
  Result<std::string> ExpectIdentifier(const char* what) {
    if (!Check(TokenType::kIdentifier)) {
      return Status::ParseError(std::string("expected ") + what + " near offset " +
                                std::to_string(Peek().offset));
    }
    return Advance().text;
  }

  Result<std::unique_ptr<SelectStmt>> ParseSelect();
  Result<std::unique_ptr<InsertStmt>> ParseInsert();
  Result<std::unique_ptr<UpdateStmt>> ParseUpdate();
  Result<std::unique_ptr<DeleteStmt>> ParseDelete();
  Result<Statement> ParseCreate();
  Result<std::unique_ptr<AnalyzeStmt>> ParseAnalyze();

  Result<ExprPtr> ParseExpr() { return ParseOr(); }
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParsePrimary();
  Result<Value> ParseLiteral();
  /// Column name, possibly qualified ("a.b").
  Result<std::string> ParseColumnName(std::string first);

  bool IsAggKeyword(const std::string& s, AggFunc* out) const;

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

bool Parser::IsAggKeyword(const std::string& s, AggFunc* out) const {
  if (EqualsIgnoreCase(s, "COUNT")) {
    *out = AggFunc::kCount;
    return true;
  }
  if (EqualsIgnoreCase(s, "SUM")) {
    *out = AggFunc::kSum;
    return true;
  }
  if (EqualsIgnoreCase(s, "AVG")) {
    *out = AggFunc::kAvg;
    return true;
  }
  if (EqualsIgnoreCase(s, "MIN")) {
    *out = AggFunc::kMin;
    return true;
  }
  if (EqualsIgnoreCase(s, "MAX")) {
    *out = AggFunc::kMax;
    return true;
  }
  return false;
}

Result<Statement> Parser::ParseStatement() {
  Statement stmt;
  if (CheckKeyword("SELECT")) {
    stmt.kind = Statement::Kind::kSelect;
    PSE_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
  } else if (CheckKeyword("INSERT")) {
    stmt.kind = Statement::Kind::kInsert;
    PSE_ASSIGN_OR_RETURN(stmt.insert, ParseInsert());
  } else if (CheckKeyword("UPDATE")) {
    stmt.kind = Statement::Kind::kUpdate;
    PSE_ASSIGN_OR_RETURN(stmt.update, ParseUpdate());
  } else if (CheckKeyword("DELETE")) {
    stmt.kind = Statement::Kind::kDelete;
    PSE_ASSIGN_OR_RETURN(stmt.del, ParseDelete());
  } else if (CheckKeyword("CREATE")) {
    PSE_ASSIGN_OR_RETURN(stmt, ParseCreate());
  } else if (CheckKeyword("DROP")) {
    Advance();
    PSE_RETURN_NOT_OK(ExpectKeyword("TABLE"));
    stmt.kind = Statement::Kind::kDropTable;
    stmt.drop_table = std::make_unique<DropTableStmt>();
    PSE_ASSIGN_OR_RETURN(stmt.drop_table->table, ExpectIdentifier("table name"));
  } else if (CheckKeyword("ANALYZE")) {
    stmt.kind = Statement::Kind::kAnalyze;
    PSE_ASSIGN_OR_RETURN(stmt.analyze, ParseAnalyze());
  } else {
    return Status::ParseError("expected a statement near offset " +
                              std::to_string(Peek().offset));
  }
  Match(TokenType::kSemicolon);
  if (!Check(TokenType::kEnd)) {
    return Status::ParseError("trailing input near offset " + std::to_string(Peek().offset));
  }
  return stmt;
}

Result<std::unique_ptr<SelectStmt>> Parser::ParseSelect() {
  PSE_RETURN_NOT_OK(ExpectKeyword("SELECT"));
  auto stmt = std::make_unique<SelectStmt>();
  stmt->distinct = MatchKeyword("DISTINCT");

  // Select list.
  while (true) {
    SelectItemAst item;
    if (Match(TokenType::kStar)) {
      item.star = true;
    } else if (Check(TokenType::kIdentifier)) {
      AggFunc agg;
      if (IsAggKeyword(Peek().text, &agg) && Peek(1).type == TokenType::kLParen) {
        Advance();  // function name
        Advance();  // (
        if (agg == AggFunc::kCount && Match(TokenType::kStar)) {
          item.agg = AggFunc::kCountStar;
        } else if (agg == AggFunc::kCount && MatchKeyword("DISTINCT")) {
          item.agg = AggFunc::kCountDistinct;
          PSE_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        } else {
          item.agg = agg;
          PSE_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        }
        PSE_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      } else {
        PSE_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      }
    } else {
      PSE_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    }
    if (MatchKeyword("AS")) {
      PSE_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("alias"));
    } else if (!item.star && Check(TokenType::kIdentifier) && !CheckKeyword("FROM")) {
      item.alias = Advance().text;  // bare alias
    }
    stmt->items.push_back(std::move(item));
    if (!Match(TokenType::kComma)) break;
  }

  // FROM.
  PSE_RETURN_NOT_OK(ExpectKeyword("FROM"));
  auto parse_table_ref = [this]() -> Result<TableRefAst> {
    TableRefAst ref;
    PSE_ASSIGN_OR_RETURN(ref.table, ExpectIdentifier("table name"));
    ref.alias = ref.table;
    if (MatchKeyword("AS")) {
      PSE_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier("alias"));
    } else if (Check(TokenType::kIdentifier) && !CheckKeyword("JOIN") &&
               !CheckKeyword("INNER") && !CheckKeyword("WHERE") && !CheckKeyword("GROUP") &&
               !CheckKeyword("HAVING") && !CheckKeyword("ORDER") && !CheckKeyword("LIMIT") &&
               !CheckKeyword("ON")) {
      ref.alias = Advance().text;
    }
    return ref;
  };
  PSE_ASSIGN_OR_RETURN(TableRefAst first, parse_table_ref());
  stmt->from.push_back(std::move(first));
  while (true) {
    if (Match(TokenType::kComma)) {
      PSE_ASSIGN_OR_RETURN(TableRefAst ref, parse_table_ref());
      stmt->from.push_back(std::move(ref));
      continue;
    }
    bool inner = MatchKeyword("INNER");
    if (MatchKeyword("JOIN")) {
      PSE_ASSIGN_OR_RETURN(TableRefAst ref, parse_table_ref());
      stmt->from.push_back(std::move(ref));
      PSE_RETURN_NOT_OK(ExpectKeyword("ON"));
      PSE_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
      stmt->conjuncts.push_back(std::move(cond));
      continue;
    }
    if (inner) return Status::ParseError("expected JOIN after INNER");
    break;
  }

  if (MatchKeyword("WHERE")) {
    PSE_ASSIGN_OR_RETURN(ExprPtr where, ParseExpr());
    stmt->conjuncts.push_back(std::move(where));
  }
  if (MatchKeyword("GROUP")) {
    PSE_RETURN_NOT_OK(ExpectKeyword("BY"));
    do {
      PSE_ASSIGN_OR_RETURN(ExprPtr g, ParseExpr());
      stmt->group_by.push_back(std::move(g));
    } while (Match(TokenType::kComma));
  }
  if (MatchKeyword("HAVING")) {
    PSE_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
  }
  if (MatchKeyword("ORDER")) {
    PSE_RETURN_NOT_OK(ExpectKeyword("BY"));
    do {
      OrderItemAst item;
      if (Check(TokenType::kInteger)) {
        item.position = Advance().int_value;
      } else {
        PSE_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      }
      if (MatchKeyword("DESC")) {
        item.desc = true;
      } else {
        MatchKeyword("ASC");
      }
      stmt->order_by.push_back(std::move(item));
    } while (Match(TokenType::kComma));
  }
  if (MatchKeyword("LIMIT")) {
    if (!Check(TokenType::kInteger)) return Status::ParseError("LIMIT expects an integer");
    stmt->limit = Advance().int_value;
  }
  return stmt;
}

Result<std::unique_ptr<InsertStmt>> Parser::ParseInsert() {
  PSE_RETURN_NOT_OK(ExpectKeyword("INSERT"));
  PSE_RETURN_NOT_OK(ExpectKeyword("INTO"));
  auto stmt = std::make_unique<InsertStmt>();
  PSE_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier("table name"));
  if (Match(TokenType::kLParen)) {
    do {
      PSE_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
      stmt->columns.push_back(std::move(col));
    } while (Match(TokenType::kComma));
    PSE_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
  }
  PSE_RETURN_NOT_OK(ExpectKeyword("VALUES"));
  do {
    PSE_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
    std::vector<Value> row;
    do {
      PSE_ASSIGN_OR_RETURN(Value v, ParseLiteral());
      row.push_back(std::move(v));
    } while (Match(TokenType::kComma));
    PSE_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    stmt->rows.push_back(std::move(row));
  } while (Match(TokenType::kComma));
  return stmt;
}

Result<std::unique_ptr<UpdateStmt>> Parser::ParseUpdate() {
  PSE_RETURN_NOT_OK(ExpectKeyword("UPDATE"));
  auto stmt = std::make_unique<UpdateStmt>();
  PSE_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier("table name"));
  PSE_RETURN_NOT_OK(ExpectKeyword("SET"));
  do {
    PSE_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
    PSE_RETURN_NOT_OK(Expect(TokenType::kEq, "'='"));
    PSE_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    stmt->assignments.emplace_back(std::move(col), std::move(e));
  } while (Match(TokenType::kComma));
  if (MatchKeyword("WHERE")) {
    PSE_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  return stmt;
}

Result<std::unique_ptr<DeleteStmt>> Parser::ParseDelete() {
  PSE_RETURN_NOT_OK(ExpectKeyword("DELETE"));
  PSE_RETURN_NOT_OK(ExpectKeyword("FROM"));
  auto stmt = std::make_unique<DeleteStmt>();
  PSE_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier("table name"));
  if (MatchKeyword("WHERE")) {
    PSE_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  return stmt;
}

Result<Statement> Parser::ParseCreate() {
  PSE_RETURN_NOT_OK(ExpectKeyword("CREATE"));
  Statement stmt;
  if (MatchKeyword("INDEX")) {
    stmt.kind = Statement::Kind::kCreateIndex;
    stmt.create_index = std::make_unique<CreateIndexStmt>();
    // Optional index name, ignored.
    if (Check(TokenType::kIdentifier) && !CheckKeyword("ON")) Advance();
    PSE_RETURN_NOT_OK(ExpectKeyword("ON"));
    PSE_ASSIGN_OR_RETURN(stmt.create_index->table, ExpectIdentifier("table name"));
    PSE_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
    PSE_ASSIGN_OR_RETURN(stmt.create_index->column, ExpectIdentifier("column name"));
    PSE_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    return stmt;
  }
  PSE_RETURN_NOT_OK(ExpectKeyword("TABLE"));
  stmt.kind = Statement::Kind::kCreateTable;
  stmt.create_table = std::make_unique<CreateTableStmt>();
  PSE_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("table name"));
  PSE_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
  std::vector<Column> columns;
  std::vector<std::string> keys;
  do {
    if (CheckKeyword("PRIMARY")) {
      Advance();
      PSE_RETURN_NOT_OK(ExpectKeyword("KEY"));
      PSE_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
      do {
        PSE_ASSIGN_OR_RETURN(std::string k, ExpectIdentifier("key column"));
        keys.push_back(std::move(k));
      } while (Match(TokenType::kComma));
      PSE_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      continue;
    }
    Column col;
    PSE_ASSIGN_OR_RETURN(col.name, ExpectIdentifier("column name"));
    PSE_ASSIGN_OR_RETURN(std::string type_name, ExpectIdentifier("type"));
    if (EqualsIgnoreCase(type_name, "BIGINT") || EqualsIgnoreCase(type_name, "INTEGER") ||
        EqualsIgnoreCase(type_name, "INT")) {
      col.type = TypeId::kInt64;
    } else if (EqualsIgnoreCase(type_name, "DOUBLE") || EqualsIgnoreCase(type_name, "FLOAT") ||
               EqualsIgnoreCase(type_name, "REAL") || EqualsIgnoreCase(type_name, "NUMERIC")) {
      col.type = TypeId::kDouble;
    } else if (EqualsIgnoreCase(type_name, "VARCHAR") || EqualsIgnoreCase(type_name, "TEXT") ||
               EqualsIgnoreCase(type_name, "CHAR")) {
      col.type = TypeId::kVarchar;
      if (Match(TokenType::kLParen)) {
        if (!Check(TokenType::kInteger)) return Status::ParseError("VARCHAR length expected");
        col.avg_width = static_cast<uint32_t>(Advance().int_value);
        PSE_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      }
    } else if (EqualsIgnoreCase(type_name, "BOOLEAN") || EqualsIgnoreCase(type_name, "BOOL")) {
      col.type = TypeId::kBoolean;
    } else {
      return Status::ParseError("unknown type " + type_name);
    }
    if (MatchKeyword("NOT")) {
      PSE_RETURN_NOT_OK(ExpectKeyword("NULL"));
      col.nullable = false;
    }
    columns.push_back(std::move(col));
  } while (Match(TokenType::kComma));
  PSE_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
  stmt.create_table->schema = TableSchema(name, std::move(columns), std::move(keys));
  return stmt;
}

Result<std::unique_ptr<AnalyzeStmt>> Parser::ParseAnalyze() {
  PSE_RETURN_NOT_OK(ExpectKeyword("ANALYZE"));
  auto stmt = std::make_unique<AnalyzeStmt>();
  if (Check(TokenType::kIdentifier)) {
    stmt->table = Advance().text;
  }
  return stmt;
}

Result<ExprPtr> Parser::ParseOr() {
  PSE_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
  while (MatchKeyword("OR")) {
    PSE_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
    left = std::make_unique<LogicExpr>(LogicOp::kOr, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseAnd() {
  PSE_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
  while (MatchKeyword("AND")) {
    PSE_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
    left = And(std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseNot() {
  if (MatchKeyword("NOT")) {
    PSE_ASSIGN_OR_RETURN(ExprPtr child, ParseNot());
    return ExprPtr(std::make_unique<NotExpr>(std::move(child)));
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseComparison() {
  PSE_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
  if (CheckKeyword("IS")) {
    Advance();
    bool negated = MatchKeyword("NOT");
    PSE_RETURN_NOT_OK(ExpectKeyword("NULL"));
    return ExprPtr(std::make_unique<IsNullExpr>(std::move(left), negated));
  }
  bool negated = false;
  if (CheckKeyword("NOT") &&
      (Peek(1).type == TokenType::kIdentifier &&
       (EqualsIgnoreCase(Peek(1).text, "LIKE") || EqualsIgnoreCase(Peek(1).text, "IN") ||
        EqualsIgnoreCase(Peek(1).text, "BETWEEN")))) {
    Advance();
    negated = true;
  }
  if (MatchKeyword("LIKE")) {
    if (!Check(TokenType::kString)) return Status::ParseError("LIKE expects a string literal");
    std::string pattern = Advance().text;
    return ExprPtr(std::make_unique<LikeExpr>(std::move(left), std::move(pattern), negated));
  }
  if (MatchKeyword("IN")) {
    PSE_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
    std::vector<Value> values;
    do {
      PSE_ASSIGN_OR_RETURN(Value v, ParseLiteral());
      values.push_back(std::move(v));
    } while (Match(TokenType::kComma));
    PSE_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    return ExprPtr(std::make_unique<InListExpr>(std::move(left), std::move(values), negated));
  }
  if (MatchKeyword("BETWEEN")) {
    PSE_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
    PSE_RETURN_NOT_OK(ExpectKeyword("AND"));
    PSE_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
    // a BETWEEN lo AND hi  ==>  a >= lo AND a <= hi.
    ExprPtr ge = Cmp(CompareOp::kGe, left->Clone(), std::move(lo));
    ExprPtr le = Cmp(CompareOp::kLe, std::move(left), std::move(hi));
    ExprPtr both = And(std::move(ge), std::move(le));
    if (negated) return ExprPtr(std::make_unique<NotExpr>(std::move(both)));
    return both;
  }
  if (negated) return Status::ParseError("dangling NOT");

  CompareOp op;
  switch (Peek().type) {
    case TokenType::kEq:
      op = CompareOp::kEq;
      break;
    case TokenType::kNe:
      op = CompareOp::kNe;
      break;
    case TokenType::kLt:
      op = CompareOp::kLt;
      break;
    case TokenType::kLe:
      op = CompareOp::kLe;
      break;
    case TokenType::kGt:
      op = CompareOp::kGt;
      break;
    case TokenType::kGe:
      op = CompareOp::kGe;
      break;
    default:
      return left;
  }
  Advance();
  PSE_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
  return Cmp(op, std::move(left), std::move(right));
}

Result<ExprPtr> Parser::ParseAdditive() {
  PSE_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
  while (Check(TokenType::kPlus) || Check(TokenType::kMinus)) {
    ArithOp op = Advance().type == TokenType::kPlus ? ArithOp::kAdd : ArithOp::kSub;
    PSE_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
    left = std::make_unique<ArithExpr>(op, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  PSE_ASSIGN_OR_RETURN(ExprPtr left, ParsePrimary());
  while (Check(TokenType::kStar) || Check(TokenType::kSlash)) {
    ArithOp op = Advance().type == TokenType::kStar ? ArithOp::kMul : ArithOp::kDiv;
    PSE_ASSIGN_OR_RETURN(ExprPtr right, ParsePrimary());
    left = std::make_unique<ArithExpr>(op, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParsePrimary() {
  if (Match(TokenType::kLParen)) {
    PSE_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    PSE_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    return e;
  }
  if (Check(TokenType::kInteger)) return Const(Value::Int(Advance().int_value));
  if (Check(TokenType::kFloat)) return Const(Value::Double(Advance().float_value));
  if (Check(TokenType::kString)) return Const(Value::Varchar(Advance().text));
  if (Check(TokenType::kMinus)) {
    Advance();
    if (Check(TokenType::kInteger)) return Const(Value::Int(-Advance().int_value));
    if (Check(TokenType::kFloat)) return Const(Value::Double(-Advance().float_value));
    PSE_ASSIGN_OR_RETURN(ExprPtr e, ParsePrimary());
    return ExprPtr(
        std::make_unique<ArithExpr>(ArithOp::kSub, Const(Value::Int(0)), std::move(e)));
  }
  if (Check(TokenType::kIdentifier)) {
    std::string name = Advance().text;
    if (EqualsIgnoreCase(name, "NULL")) return Const(Value());
    if (EqualsIgnoreCase(name, "TRUE")) return Const(Value::Bool(true));
    if (EqualsIgnoreCase(name, "FALSE")) return Const(Value::Bool(false));
    PSE_ASSIGN_OR_RETURN(std::string full, ParseColumnName(std::move(name)));
    return Col(std::move(full));
  }
  return Status::ParseError("expected an expression near offset " +
                            std::to_string(Peek().offset));
}

Result<std::string> Parser::ParseColumnName(std::string first) {
  if (Match(TokenType::kDot)) {
    PSE_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
    return first + "." + col;
  }
  return first;
}

Result<Value> Parser::ParseLiteral() {
  if (Check(TokenType::kInteger)) return Value::Int(Advance().int_value);
  if (Check(TokenType::kFloat)) return Value::Double(Advance().float_value);
  if (Check(TokenType::kString)) return Value::Varchar(Advance().text);
  if (Check(TokenType::kMinus)) {
    Advance();
    if (Check(TokenType::kInteger)) return Value::Int(-Advance().int_value);
    if (Check(TokenType::kFloat)) return Value::Double(-Advance().float_value);
    return Status::ParseError("expected a number after '-'");
  }
  if (CheckKeyword("NULL")) {
    Advance();
    return Value();
  }
  if (CheckKeyword("TRUE")) {
    Advance();
    return Value::Bool(true);
  }
  if (CheckKeyword("FALSE")) {
    Advance();
    return Value::Bool(false);
  }
  return Status::ParseError("expected a literal near offset " + std::to_string(Peek().offset));
}

}  // namespace

Result<Statement> ParseSql(const std::string& sql) {
  PSE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace pse
