// SQL abstract syntax. Scalar expressions reuse the engine's Expr tree;
// aggregates appear only at select-item level (no nesting).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "engine/bound_query.h"
#include "engine/expr.h"

namespace pse {

/// FROM-clause entry.
struct TableRefAst {
  std::string table;
  std::string alias;  // defaults to table name
};

/// SELECT-list entry.
struct SelectItemAst {
  ExprPtr expr;  // null for COUNT(*) or '*'
  AggFunc agg = AggFunc::kNone;
  std::string alias;   // AS name (may be empty)
  bool star = false;   // bare '*'
};

/// ORDER BY entry: either a 1-based select position or an expression.
struct OrderItemAst {
  std::optional<int64_t> position;
  ExprPtr expr;
  bool desc = false;
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItemAst> items;
  std::vector<TableRefAst> from;
  /// WHERE plus every JOIN ... ON condition, ANDed (inner-join semantics).
  std::vector<ExprPtr> conjuncts;
  std::vector<ExprPtr> group_by;
  /// HAVING predicate; may reference select-list aliases and group columns.
  ExprPtr having;
  std::vector<OrderItemAst> order_by;
  std::optional<int64_t> limit;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;      // empty = positional
  std::vector<std::vector<Value>> rows;  // literal rows
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  // may be null
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;  // may be null
};

struct CreateTableStmt {
  TableSchema schema;
};

struct CreateIndexStmt {
  std::string table;
  std::string column;
};

struct AnalyzeStmt {
  std::string table;  // empty = all tables
};

struct DropTableStmt {
  std::string table;
};

/// A parsed statement (exactly one member set).
struct Statement {
  enum class Kind {
    kSelect,
    kInsert,
    kUpdate,
    kDelete,
    kCreateTable,
    kCreateIndex,
    kDropTable,
    kAnalyze,
  };
  Kind kind = Kind::kSelect;
  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<UpdateStmt> update;
  std::unique_ptr<DeleteStmt> del;
  std::unique_ptr<CreateTableStmt> create_table;
  std::unique_ptr<CreateIndexStmt> create_index;
  std::unique_ptr<AnalyzeStmt> analyze;
  std::unique_ptr<DropTableStmt> drop_table;
};

}  // namespace pse
