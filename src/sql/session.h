// Session: end-to-end SQL execution against a Database. The facade used by
// the examples, the TPC-W loader, and the integration tests.
#pragma once

#include <string>
#include <vector>

#include "engine/bound_query.h"
#include "engine/catalog_view.h"
#include "engine/plan.h"
#include "sql/dml_hook.h"
#include "storage/database.h"

namespace pse {

/// Result of executing one statement.
struct ExecResult {
  std::vector<std::string> columns;  ///< output column names (SELECT)
  std::vector<Row> rows;             ///< result rows (SELECT)
  uint64_t affected = 0;             ///< rows touched (DML)
};

/// \brief Parses, binds, plans, and executes SQL statements.
class Session {
 public:
  explicit Session(Database* db) : db_(db), view_(db) {}

  /// Executes any supported statement.
  Result<ExecResult> Execute(const std::string& sql);

  /// Parses and binds a SELECT without executing (used by the evolution
  /// layer and tests).
  Result<BoundQuery> Bind(const std::string& sql);

  /// Returns the physical plan of a SELECT as text (EXPLAIN).
  Result<std::string> Explain(const std::string& sql);

  Database* db() { return db_; }
  const DatabaseCatalogView& catalog_view() const { return view_; }

  /// Intercepts parsed DML before the default physical-table path — the
  /// write rewriter's entry point (dml_hook.h). Null disables interception.
  /// The hook must outlive the session (or be reset first).
  void set_dml_hook(SessionDmlHook* hook) { dml_hook_ = hook; }
  SessionDmlHook* dml_hook() const { return dml_hook_; }

 private:
  Result<ExecResult> ExecuteSelect(const BoundQuery& q);
  Result<ExecResult> ExecuteInsert(const struct InsertStmt& stmt);
  Result<ExecResult> ExecuteUpdate(const struct UpdateStmt& stmt);
  Result<ExecResult> ExecuteDelete(const struct DeleteStmt& stmt);

  Database* db_;
  DatabaseCatalogView view_;
  SessionDmlHook* dml_hook_ = nullptr;
};

}  // namespace pse
