#include "sql/binder.h"

#include <set>

#include "common/string_util.h"

namespace pse {

namespace {

struct BoundTable {
  std::string table;
  std::string alias;
  const TableSchema* schema;
  std::vector<std::string> used_columns;  // insertion-ordered, deduped
  std::set<std::string> used_set;
};

class Binder {
 public:
  Binder(const SelectStmt& stmt, const CatalogView& catalog) : stmt_(stmt), catalog_(catalog) {}

  Result<BoundQuery> Bind();

 private:
  /// Resolves a possibly-qualified name to (table index, canonical column).
  Result<std::pair<size_t, std::string>> ResolveColumn(const std::string& name);
  /// Qualifies every ColumnRef in `e` to "alias.column" and records usage.
  Status Qualify(Expr* e);
  /// Marks a column of table t as used (for projection pushdown).
  void MarkUsed(size_t t, const std::string& column);
  /// Rewrites qualified refs of a single-table expr to unqualified names.
  static void Unqualify(Expr* e);
  /// Tables referenced by a (qualified) expression.
  std::set<size_t> TablesOf(const Expr& e);

  const SelectStmt& stmt_;
  const CatalogView& catalog_;
  std::vector<BoundTable> tables_;
};

Result<std::pair<size_t, std::string>> Binder::ResolveColumn(const std::string& name) {
  size_t dot = name.find('.');
  if (dot != std::string::npos) {
    std::string alias = name.substr(0, dot);
    std::string col = name.substr(dot + 1);
    for (size_t i = 0; i < tables_.size(); ++i) {
      if (!EqualsIgnoreCase(tables_[i].alias, alias)) continue;
      PSE_ASSIGN_OR_RETURN(size_t idx, tables_[i].schema->ColumnIndex(col));
      return std::make_pair(i, tables_[i].schema->column(idx).name);
    }
    return Status::BindError("unknown table alias '" + alias + "'");
  }
  size_t found_t = tables_.size();
  std::string found_c;
  for (size_t i = 0; i < tables_.size(); ++i) {
    auto idx = tables_[i].schema->ColumnIndex(name);
    if (idx.ok()) {
      if (found_t != tables_.size()) {
        return Status::BindError("ambiguous column '" + name + "'");
      }
      found_t = i;
      found_c = tables_[i].schema->column(*idx).name;
    }
  }
  if (found_t == tables_.size()) {
    return Status::BindError("unknown column '" + name + "'");
  }
  return std::make_pair(found_t, found_c);
}

void Binder::MarkUsed(size_t t, const std::string& column) {
  if (tables_[t].used_set.insert(ToLower(column)).second) {
    tables_[t].used_columns.push_back(column);
  }
}

Status Binder::Qualify(Expr* e) {
  Status status;
  e->VisitColumnRefs([this, &status](ColumnRefExpr* c) {
    if (!status.ok()) return;
    auto r = ResolveColumn(c->name());
    if (!r.ok()) {
      status = r.status();
      return;
    }
    auto [t, col] = *r;
    MarkUsed(t, col);
    c->set_name(tables_[t].alias + "." + col);
  });
  return status;
}

void Binder::Unqualify(Expr* e) {
  e->VisitColumnRefs([](ColumnRefExpr* c) {
    size_t dot = c->name().find('.');
    if (dot != std::string::npos) c->set_name(c->name().substr(dot + 1));
  });
}

std::set<size_t> Binder::TablesOf(const Expr& e) {
  std::vector<std::string> cols;
  e.CollectColumns(&cols);
  std::set<size_t> out;
  for (const auto& name : cols) {
    size_t dot = name.find('.');
    std::string alias = dot == std::string::npos ? "" : name.substr(0, dot);
    for (size_t i = 0; i < tables_.size(); ++i) {
      if (EqualsIgnoreCase(tables_[i].alias, alias)) out.insert(i);
    }
  }
  return out;
}

Result<BoundQuery> Binder::Bind() {
  // Tables.
  for (const auto& ref : stmt_.from) {
    PSE_ASSIGN_OR_RETURN(const TableSchema* schema, catalog_.GetSchema(ref.table));
    for (const auto& existing : tables_) {
      if (EqualsIgnoreCase(existing.alias, ref.alias)) {
        return Status::BindError("duplicate table alias '" + ref.alias + "'");
      }
    }
    tables_.push_back(BoundTable{ref.table, ref.alias, schema, {}, {}});
  }

  BoundQuery out;

  // Select items ('*' expansion, qualification, default names).
  std::vector<SelectItem> items;
  for (const auto& item : stmt_.items) {
    if (item.star) {
      for (size_t t = 0; t < tables_.size(); ++t) {
        for (const auto& col : tables_[t].schema->columns()) {
          MarkUsed(t, col.name);
          items.emplace_back(Col(tables_[t].alias + "." + col.name), AggFunc::kNone, col.name);
        }
      }
      continue;
    }
    SelectItem s;
    s.agg = item.agg;
    if (item.expr) {
      s.expr = item.expr->Clone();
      PSE_RETURN_NOT_OK(Qualify(s.expr.get()));
    }
    if (!item.alias.empty()) {
      s.name = item.alias;
    } else if (s.agg == AggFunc::kCountStar) {
      s.name = "count_star";
    } else if (const auto* c = dynamic_cast<const ColumnRefExpr*>(s.expr.get())) {
      std::string n = c->name();
      size_t dot = n.find('.');
      std::string base = dot == std::string::npos ? n : n.substr(dot + 1);
      s.name = s.agg == AggFunc::kNone ? base
                                       : ToLower(AggFuncToString(s.agg)) + "_" + base;
      // "count_distinct_col" reads fine; nothing extra needed.
    } else {
      s.name = "expr_" + std::to_string(items.size());
    }
    items.push_back(std::move(s));
  }

  // Conjunct classification.
  std::vector<std::pair<size_t, ExprPtr>> per_table_filters;
  for (const auto& conj_src : stmt_.conjuncts) {
    // Split top-level ANDs so each piece lands in the best place; clone
    // first so we can mutate (qualify) freely.
    ExprPtr cloned = conj_src->Clone();
    std::vector<ExprPtr> flat;
    std::function<void(ExprPtr)> flatten = [&](ExprPtr e) {
      auto* logic = dynamic_cast<LogicExpr*>(e.get());
      if (logic != nullptr && logic->op() == LogicOp::kAnd) {
        // Re-clone children since LogicExpr does not expose release().
        flatten(logic->left()->Clone());
        flatten(logic->right()->Clone());
        return;
      }
      flat.push_back(std::move(e));
    };
    flatten(std::move(cloned));

    for (auto& piece : flat) {
      PSE_RETURN_NOT_OK(Qualify(piece.get()));
      // Equi-join pattern?
      if (auto* cmp = dynamic_cast<CompareExpr*>(piece.get());
          cmp != nullptr && cmp->op() == CompareOp::kEq) {
        const auto* l = dynamic_cast<const ColumnRefExpr*>(cmp->left());
        const auto* r = dynamic_cast<const ColumnRefExpr*>(cmp->right());
        if (l != nullptr && r != nullptr) {
          auto lt = TablesOf(*cmp->left());
          auto rt = TablesOf(*cmp->right());
          if (lt.size() == 1 && rt.size() == 1 && *lt.begin() != *rt.begin()) {
            EquiJoin j;
            j.left_table = *lt.begin();
            j.right_table = *rt.begin();
            j.left_column = l->name().substr(l->name().find('.') + 1);
            j.right_column = r->name().substr(r->name().find('.') + 1);
            out.joins.push_back(j);
            continue;
          }
        }
      }
      std::set<size_t> refs = TablesOf(*piece);
      if (refs.size() == 1) {
        size_t t = *refs.begin();
        Unqualify(piece.get());
        per_table_filters.emplace_back(t, std::move(piece));
      } else {
        out.global_filters.push_back(std::move(piece));
      }
    }
  }

  // Group by.
  for (const auto& g : stmt_.group_by) {
    ExprPtr e = g->Clone();
    PSE_RETURN_NOT_OK(Qualify(e.get()));
    out.group_by.push_back(std::move(e));
  }

  // HAVING: resolved by the planner against the select output (aliases and
  // group columns). Only legal with aggregation.
  if (stmt_.having) {
    if (out.group_by.empty() && ![&] {
          for (const auto& item : items) {
            if (item.agg != AggFunc::kNone) return true;
          }
          return false;
        }()) {
      return Status::BindError("HAVING requires GROUP BY or aggregates");
    }
    out.having = stmt_.having->Clone();
  }

  // Order by.
  for (const auto& o : stmt_.order_by) {
    OrderKey key;
    key.desc = o.desc;
    if (o.position.has_value()) {
      if (*o.position < 1 || static_cast<size_t>(*o.position) > items.size()) {
        return Status::BindError("ORDER BY position out of range");
      }
      key.select_index = static_cast<size_t>(*o.position - 1);
    } else {
      ExprPtr e = o.expr->Clone();
      // Try alias match first (unqualified single identifier).
      bool matched = false;
      if (const auto* c = dynamic_cast<const ColumnRefExpr*>(e.get())) {
        for (size_t i = 0; i < items.size(); ++i) {
          if (EqualsIgnoreCase(items[i].name, c->name())) {
            key.select_index = i;
            matched = true;
            break;
          }
        }
      }
      if (!matched) {
        PSE_RETURN_NOT_OK(Qualify(e.get()));
        for (size_t i = 0; i < items.size(); ++i) {
          if (items[i].expr && items[i].agg == AggFunc::kNone &&
              EqualsIgnoreCase(items[i].expr->ToString(), e->ToString())) {
            key.select_index = i;
            matched = true;
            break;
          }
        }
      }
      if (!matched) {
        return Status::BindError("ORDER BY expression must appear in the select list: " +
                                 o.expr->ToString());
      }
    }
    out.order_by.push_back(key);
  }

  // Assemble table accesses with pruned columns and local filters.
  for (auto& bt : tables_) {
    TableAccess access;
    access.table = bt.table;
    access.alias = bt.alias;
    access.columns = bt.used_columns;
    out.tables.push_back(std::move(access));
  }
  for (auto& [t, filter] : per_table_filters) {
    out.tables[t].filters.push_back(std::move(filter));
  }

  out.select_items = std::move(items);
  out.select_distinct = stmt_.distinct;
  out.limit = stmt_.limit;
  return out;
}

}  // namespace

Result<BoundQuery> BindSelect(const SelectStmt& stmt, const CatalogView& catalog) {
  Binder binder(stmt, catalog);
  return binder.Bind();
}

}  // namespace pse
