// Runtime SQL value: a tagged union over the supported types plus NULL.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "catalog/type.h"
#include "common/status.h"

namespace pse {

/// \brief A single SQL value (possibly NULL).
///
/// Comparison follows SQL semantics for ordering within one type; NULLs sort
/// first and compare equal to each other under Compare() (useful for
/// grouping), while SqlEquals() returns false when either side is NULL.
class Value {
 public:
  /// NULL of unspecified type.
  Value() : type_(TypeId::kInt64), null_(true) {}

  static Value Null(TypeId t) {
    Value v;
    v.type_ = t;
    v.null_ = true;
    return v;
  }
  static Value Bool(bool b) { return Value(TypeId::kBoolean, b ? int64_t{1} : int64_t{0}); }
  static Value Int(int64_t i) { return Value(TypeId::kInt64, i); }
  static Value Double(double d) { return Value(TypeId::kDouble, d); }
  static Value Varchar(std::string s) { return Value(TypeId::kVarchar, std::move(s)); }

  TypeId type() const { return type_; }
  bool is_null() const { return null_; }

  bool AsBool() const { return std::get<int64_t>(data_) != 0; }
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const {
    if (type_ == TypeId::kDouble) return std::get<double>(data_);
    return static_cast<double>(std::get<int64_t>(data_));
  }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Three-way comparison: -1, 0, +1. NULL < non-NULL; NULL == NULL.
  /// Numeric types (int/double/bool) compare numerically across types;
  /// comparing a numeric with a string is an ordering by type id (stable but
  /// arbitrary — the binder rejects such predicates).
  int Compare(const Value& other) const;

  /// SQL '=' semantics: false if either side is NULL.
  bool SqlEquals(const Value& other) const {
    if (null_ || other.null_) return false;
    return Compare(other) == 0;
  }

  /// Hash consistent with Compare()==0 (NULLs hash alike; int/double that
  /// compare equal hash alike).
  size_t Hash() const;

  /// Casts to the target type. Int<->Double, anything->Varchar via ToString,
  /// Varchar->numeric via parsing. NULL casts to NULL of target type.
  Result<Value> CastTo(TypeId target) const;

  /// Display form ("NULL", "42", "3.14", "abc").
  std::string ToString() const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

 private:
  Value(TypeId t, int64_t i) : type_(t), null_(false), data_(i) {}
  Value(TypeId t, double d) : type_(t), null_(false), data_(d) {}
  Value(TypeId t, std::string s) : type_(t), null_(false), data_(std::move(s)) {}

  TypeId type_;
  bool null_;
  std::variant<int64_t, double, std::string> data_;
};

/// Equality functor for hash containers keyed by Value.
struct ValueEq {
  bool operator()(const Value& a, const Value& b) const { return a.Compare(b) == 0; }
};
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace pse
