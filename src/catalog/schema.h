// Physical table schemas: ordered, typed column lists plus key metadata.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "catalog/type.h"
#include "common/status.h"

namespace pse {

/// One column of a physical table.
struct Column {
  std::string name;
  TypeId type = TypeId::kInt64;
  /// Average payload width for VARCHAR columns (cost model); ignored for
  /// fixed-width types.
  uint32_t avg_width = 0;
  bool nullable = true;

  Column() = default;
  Column(std::string n, TypeId t, uint32_t w = 0, bool nul = true)
      : name(std::move(n)), type(t), avg_width(w), nullable(nul) {}

  /// Estimated stored width in bytes (cost model input).
  uint32_t EstimatedWidth() const {
    if (type == TypeId::kVarchar) return (avg_width ? avg_width : TypeFixedWidth(type)) + 4;
    return TypeFixedWidth(type);
  }
};

/// \brief Column layout of one table.
///
/// Column order is significant (tuples are stored/bound positionally).
/// `key_columns` names the primary-key prefix used by indexes and by the
/// migration operators' references.
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string table_name, std::vector<Column> columns,
              std::vector<std::string> key_columns = {})
      : name_(std::move(table_name)),
        columns_(std::move(columns)),
        key_columns_(std::move(key_columns)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  const std::vector<Column>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }

  const std::vector<std::string>& key_columns() const { return key_columns_; }

  /// Index of a column by (case-insensitive) name, or error.
  Result<size_t> ColumnIndex(const std::string& col_name) const;
  /// True if a column with this name exists.
  bool HasColumn(const std::string& col_name) const;

  /// Appends a column (used by schema-evolution helpers and tests).
  void AddColumn(Column c) { columns_.push_back(std::move(c)); }

  /// Estimated width in bytes of one stored tuple (cost model input);
  /// includes the null bitmap and per-tuple slot overhead.
  uint32_t EstimatedTupleWidth() const;

  /// "name(col TYPE, ...) KEY(k)" display form.
  std::string ToString() const;

  /// CREATE TABLE statement reproducing this schema (round-trips through
  /// the SQL parser).
  std::string ToDdl() const;

 private:
  std::string name_;
  std::vector<Column> columns_;
  std::vector<std::string> key_columns_;
};

}  // namespace pse
