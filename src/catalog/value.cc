#include "catalog/value.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>

namespace pse {

namespace {
bool IsNumeric(TypeId t) {
  return t == TypeId::kInt64 || t == TypeId::kDouble || t == TypeId::kBoolean;
}
}  // namespace

int Value::Compare(const Value& other) const {
  if (null_ && other.null_) return 0;
  if (null_) return -1;
  if (other.null_) return 1;
  if (IsNumeric(type_) && IsNumeric(other.type_)) {
    if (type_ == TypeId::kDouble || other.type_ == TypeId::kDouble) {
      double a = AsDouble(), b = other.AsDouble();
      if (a < b) return -1;
      if (a > b) return 1;
      return 0;
    }
    int64_t a = AsInt(), b = other.AsInt();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (type_ == TypeId::kVarchar && other.type_ == TypeId::kVarchar) {
    int c = AsString().compare(other.AsString());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  // Mixed string/numeric: stable arbitrary order by type id.
  return type_ < other.type_ ? -1 : 1;
}

size_t Value::Hash() const {
  if (null_) return 0x9E3779B9;
  switch (type_) {
    case TypeId::kBoolean:
    case TypeId::kInt64: {
      // Hash ints via their double-compatible value when integral fits, so
      // Int(2) and Double(2.0) (which Compare as equal) hash alike.
      double d = AsDouble();
      if (d == std::floor(d) && std::isfinite(d)) {
        return std::hash<int64_t>()(AsInt());
      }
      return std::hash<double>()(d);
    }
    case TypeId::kDouble: {
      double d = AsDouble();
      if (d == std::floor(d) && std::isfinite(d) && d >= -9.2e18 && d <= 9.2e18) {
        return std::hash<int64_t>()(static_cast<int64_t>(d));
      }
      return std::hash<double>()(d);
    }
    case TypeId::kVarchar:
      return std::hash<std::string>()(AsString());
  }
  return 0;
}

Result<Value> Value::CastTo(TypeId target) const {
  if (null_) return Value::Null(target);
  if (type_ == target) return *this;
  switch (target) {
    case TypeId::kBoolean:
      if (IsNumeric(type_)) return Value::Bool(AsDouble() != 0.0);
      break;
    case TypeId::kInt64:
      if (IsNumeric(type_)) return Value::Int(static_cast<int64_t>(AsDouble()));
      if (type_ == TypeId::kVarchar) {
        char* end = nullptr;
        long long v = std::strtoll(AsString().c_str(), &end, 10);
        if (end && *end == '\0' && !AsString().empty()) return Value::Int(v);
        return Status::InvalidArgument("cannot cast '" + AsString() + "' to BIGINT");
      }
      break;
    case TypeId::kDouble:
      if (IsNumeric(type_)) return Value::Double(AsDouble());
      if (type_ == TypeId::kVarchar) {
        char* end = nullptr;
        double v = std::strtod(AsString().c_str(), &end);
        if (end && *end == '\0' && !AsString().empty()) return Value::Double(v);
        return Status::InvalidArgument("cannot cast '" + AsString() + "' to DOUBLE");
      }
      break;
    case TypeId::kVarchar:
      return Value::Varchar(ToString());
  }
  return Status::InvalidArgument(std::string("unsupported cast to ") + TypeIdToString(target));
}

std::string Value::ToString() const {
  if (null_) return "NULL";
  switch (type_) {
    case TypeId::kBoolean:
      return AsBool() ? "true" : "false";
    case TypeId::kInt64:
      return std::to_string(AsInt());
    case TypeId::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", AsDouble());
      return buf;
    }
    case TypeId::kVarchar:
      return AsString();
  }
  return "?";
}

}  // namespace pse
