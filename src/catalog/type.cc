#include "catalog/type.h"

namespace pse {

const char* TypeIdToString(TypeId t) {
  switch (t) {
    case TypeId::kBoolean:
      return "BOOLEAN";
    case TypeId::kInt64:
      return "BIGINT";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kVarchar:
      return "VARCHAR";
  }
  return "UNKNOWN";
}

uint32_t TypeFixedWidth(TypeId t) {
  switch (t) {
    case TypeId::kBoolean:
      return 1;
    case TypeId::kInt64:
      return 8;
    case TypeId::kDouble:
      return 8;
    case TypeId::kVarchar:
      return 24;  // default assumption; schemas carry per-column averages
  }
  return 8;
}

}  // namespace pse
