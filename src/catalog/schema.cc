#include "catalog/schema.h"

#include "common/string_util.h"

namespace pse {

Result<size_t> TableSchema::ColumnIndex(const std::string& col_name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, col_name)) return i;
  }
  return Status::NotFound("column '" + col_name + "' not in table '" + name_ + "'");
}

bool TableSchema::HasColumn(const std::string& col_name) const {
  return ColumnIndex(col_name).ok();
}

uint32_t TableSchema::EstimatedTupleWidth() const {
  uint32_t w = 0;
  for (const auto& c : columns_) w += c.EstimatedWidth();
  uint32_t null_bitmap = static_cast<uint32_t>((columns_.size() + 7) / 8);
  return w + null_bitmap + 4 /* slot overhead */;
}

std::string TableSchema::ToString() const {
  std::string out = name_ + "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += TypeIdToString(columns_[i].type);
  }
  out += ")";
  if (!key_columns_.empty()) {
    out += " KEY(" + Join(key_columns_, ", ") + ")";
  }
  return out;
}

std::string TableSchema::ToDdl() const {
  std::string out = "CREATE TABLE " + name_ + " (";
  for (size_t i = 0; i < columns_.size(); ++i) {
    const Column& c = columns_[i];
    if (i > 0) out += ", ";
    out += c.name;
    out += " ";
    out += TypeIdToString(c.type);
    if (c.type == TypeId::kVarchar && c.avg_width > 0) {
      out += "(" + std::to_string(c.avg_width) + ")";
    }
    if (!c.nullable) out += " NOT NULL";
  }
  if (!key_columns_.empty()) {
    out += ", PRIMARY KEY (" + Join(key_columns_, ", ") + ")";
  }
  out += ")";
  return out;
}

}  // namespace pse
