// Row representation and its on-page serialization.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "catalog/value.h"
#include "common/status.h"

namespace pse {

/// A row as a vector of values (the execution-time representation).
using Row = std::vector<Value>;

/// \brief Serialization of rows to/from page bytes.
///
/// Layout: null bitmap (ceil(n/8) bytes), then per non-null column:
/// BOOLEAN 1 byte, BIGINT/DOUBLE 8 bytes little-endian, VARCHAR u32 length +
/// bytes. The layout is schema-dependent, so both directions take the schema.
class TupleCodec {
 public:
  /// Serializes `row` (which must match `schema` arity) into `out`.
  static Status Serialize(const TableSchema& schema, const Row& row, std::string* out);

  /// Deserializes bytes produced by Serialize back into a Row.
  static Status Deserialize(const TableSchema& schema, const char* data, size_t size, Row* out);

  /// Column-pruned form for the vectorized engine: decodes only the columns
  /// named by `wanted` (strictly ascending positions < schema arity),
  /// appending one value to the matching `cols[k]` vector each. Skipped
  /// columns cost a length hop — no Value and no string allocation — and
  /// decoding stops after the last wanted column.
  static Status DeserializeColumns(const TableSchema& schema, const char* data, size_t size,
                                   const std::vector<size_t>& wanted,
                                   const std::vector<std::vector<Value>*>& cols);

  /// Serialized size of a row without materializing the bytes.
  static size_t SerializedSize(const TableSchema& schema, const Row& row);
};

/// Display form "(v1, v2, ...)" for tests and examples.
std::string RowToString(const Row& row);

/// Hash/equality over whole rows (used by joins, DISTINCT, tests).
struct RowHash {
  size_t operator()(const Row& r) const;
};
struct RowEq {
  bool operator()(const Row& a, const Row& b) const;
};

}  // namespace pse
