// Table/column statistics consumed by the analytical cost estimator.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "catalog/value.h"

namespace pse {

/// Per-column statistics gathered by ANALYZE (or synthesized for virtual
/// schemas by the evolution layer).
struct ColumnStatistics {
  uint64_t num_distinct = 0;
  uint64_t null_count = 0;
  std::optional<Value> min;
  std::optional<Value> max;
};

/// Per-table statistics.
struct TableStatistics {
  uint64_t row_count = 0;
  uint64_t page_count = 0;
  /// Average serialized tuple width in bytes.
  double avg_tuple_width = 0.0;
  /// Keyed by column name.
  std::map<std::string, ColumnStatistics> columns;

  const ColumnStatistics* Column(const std::string& name) const {
    auto it = columns.find(name);
    return it == columns.end() ? nullptr : &it->second;
  }
};

}  // namespace pse
