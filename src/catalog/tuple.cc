#include "catalog/tuple.h"

#include <cstring>

namespace pse {

namespace {
void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}
void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}
}  // namespace

Status TupleCodec::Serialize(const TableSchema& schema, const Row& row, std::string* out) {
  const size_t n = schema.num_columns();
  if (row.size() != n) {
    return Status::InvalidArgument("row arity " + std::to_string(row.size()) +
                                   " != schema arity " + std::to_string(n));
  }
  const size_t bitmap_bytes = (n + 7) / 8;
  size_t bitmap_pos = out->size();
  out->append(bitmap_bytes, '\0');
  for (size_t i = 0; i < n; ++i) {
    const Value& v = row[i];
    if (v.is_null()) {
      (*out)[bitmap_pos + i / 8] |= static_cast<char>(1u << (i % 8));
      continue;
    }
    switch (schema.column(i).type) {
      case TypeId::kBoolean:
        out->push_back(v.AsBool() ? 1 : 0);
        break;
      case TypeId::kInt64:
        PutU64(out, static_cast<uint64_t>(v.AsInt()));
        break;
      case TypeId::kDouble: {
        double d = v.AsDouble();
        uint64_t bits;
        std::memcpy(&bits, &d, 8);
        PutU64(out, bits);
        break;
      }
      case TypeId::kVarchar: {
        const std::string& s = v.AsString();
        PutU32(out, static_cast<uint32_t>(s.size()));
        out->append(s);
        break;
      }
    }
  }
  return Status::OK();
}

Status TupleCodec::Deserialize(const TableSchema& schema, const char* data, size_t size,
                               Row* out) {
  const size_t n = schema.num_columns();
  const size_t bitmap_bytes = (n + 7) / 8;
  if (size < bitmap_bytes) return Status::Internal("tuple too short for null bitmap");
  const char* bitmap = data;
  size_t pos = bitmap_bytes;
  out->clear();
  out->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const TypeId t = schema.column(i).type;
    bool is_null = (bitmap[i / 8] >> (i % 8)) & 1;
    if (is_null) {
      out->push_back(Value::Null(t));
      continue;
    }
    switch (t) {
      case TypeId::kBoolean: {
        if (pos + 1 > size) return Status::Internal("tuple truncated (bool)");
        out->push_back(Value::Bool(data[pos] != 0));
        pos += 1;
        break;
      }
      case TypeId::kInt64: {
        if (pos + 8 > size) return Status::Internal("tuple truncated (int)");
        uint64_t v;
        std::memcpy(&v, data + pos, 8);
        out->push_back(Value::Int(static_cast<int64_t>(v)));
        pos += 8;
        break;
      }
      case TypeId::kDouble: {
        if (pos + 8 > size) return Status::Internal("tuple truncated (double)");
        uint64_t bits;
        std::memcpy(&bits, data + pos, 8);
        double d;
        std::memcpy(&d, &bits, 8);
        out->push_back(Value::Double(d));
        pos += 8;
        break;
      }
      case TypeId::kVarchar: {
        if (pos + 4 > size) return Status::Internal("tuple truncated (varchar len)");
        uint32_t len;
        std::memcpy(&len, data + pos, 4);
        pos += 4;
        if (pos + len > size) return Status::Internal("tuple truncated (varchar data)");
        out->push_back(Value::Varchar(std::string(data + pos, len)));
        pos += len;
        break;
      }
    }
  }
  return Status::OK();
}

Status TupleCodec::DeserializeColumns(const TableSchema& schema, const char* data, size_t size,
                                      const std::vector<size_t>& wanted,
                                      const std::vector<std::vector<Value>*>& cols) {
  const size_t n = schema.num_columns();
  const size_t bitmap_bytes = (n + 7) / 8;
  if (size < bitmap_bytes) return Status::Internal("tuple too short for null bitmap");
  const char* bitmap = data;
  size_t pos = bitmap_bytes;
  size_t k = 0;  // next entry of `wanted` to satisfy
  for (size_t i = 0; i < n && k < wanted.size(); ++i) {
    const bool want = wanted[k] == i;
    const TypeId t = schema.column(i).type;
    const bool is_null = (bitmap[i / 8] >> (i % 8)) & 1;
    if (is_null) {
      if (want) {
        cols[k]->push_back(Value::Null(t));
        ++k;
      }
      continue;
    }
    switch (t) {
      case TypeId::kBoolean: {
        if (pos + 1 > size) return Status::Internal("tuple truncated (bool)");
        if (want) cols[k]->push_back(Value::Bool(data[pos] != 0));
        pos += 1;
        break;
      }
      case TypeId::kInt64: {
        if (pos + 8 > size) return Status::Internal("tuple truncated (int)");
        if (want) {
          uint64_t v;
          std::memcpy(&v, data + pos, 8);
          cols[k]->push_back(Value::Int(static_cast<int64_t>(v)));
        }
        pos += 8;
        break;
      }
      case TypeId::kDouble: {
        if (pos + 8 > size) return Status::Internal("tuple truncated (double)");
        if (want) {
          uint64_t bits;
          std::memcpy(&bits, data + pos, 8);
          double d;
          std::memcpy(&d, &bits, 8);
          cols[k]->push_back(Value::Double(d));
        }
        pos += 8;
        break;
      }
      case TypeId::kVarchar: {
        if (pos + 4 > size) return Status::Internal("tuple truncated (varchar len)");
        uint32_t len;
        std::memcpy(&len, data + pos, 4);
        pos += 4;
        if (pos + len > size) return Status::Internal("tuple truncated (varchar data)");
        if (want) cols[k]->push_back(Value::Varchar(std::string(data + pos, len)));
        pos += len;
        break;
      }
    }
    if (want) ++k;
  }
  if (k != wanted.size()) {
    return Status::InvalidArgument("wanted column position out of range for schema");
  }
  return Status::OK();
}

size_t TupleCodec::SerializedSize(const TableSchema& schema, const Row& row) {
  const size_t n = schema.num_columns();
  size_t sz = (n + 7) / 8;
  for (size_t i = 0; i < n && i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    switch (schema.column(i).type) {
      case TypeId::kBoolean:
        sz += 1;
        break;
      case TypeId::kInt64:
      case TypeId::kDouble:
        sz += 8;
        break;
      case TypeId::kVarchar:
        sz += 4 + row[i].AsString().size();
        break;
    }
  }
  return sz;
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

size_t RowHash::operator()(const Row& r) const {
  size_t h = 0x345678;
  for (const auto& v : r) {
    h = h * 1000003 ^ v.Hash();
  }
  return h;
}

bool RowEq::operator()(const Row& a, const Row& b) const {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].Compare(b[i]) != 0) return false;
  }
  return true;
}

}  // namespace pse
