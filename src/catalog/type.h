// SQL value types supported by the engine.
#pragma once

#include <cstdint>
#include <string>

namespace pse {

/// Supported column types. Kept deliberately small: the TPC-W workload and
/// the evolution machinery only need these.
enum class TypeId : uint8_t {
  kBoolean = 0,
  kInt64 = 1,
  kDouble = 2,
  kVarchar = 3,
};

/// Name for display/parsing ("BOOLEAN", "BIGINT", "DOUBLE", "VARCHAR").
const char* TypeIdToString(TypeId t);

/// Average on-page width in bytes, used by the analytical cost model.
/// Varchar uses the column's declared average length instead (see Column).
uint32_t TypeFixedWidth(TypeId t);

}  // namespace pse
