#include "fleet/scheduler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <utility>

#include "common/thread_pool.h"
#include "engine/catalog_view.h"
#include "engine/executor.h"
#include "engine/planner.h"

namespace pse {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// Sorted-sample percentile (same interpolation as core/serving.cc).
double Percentile(const std::vector<double>& sorted, double q) {
  double pos = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

void IoTokenBucket::Acquire() {
  PSE_LOCKDEP_SCOPE("IoTokenBucket::Acquire");
  std::unique_lock<Mutex> lock(mu_);
  cv_.wait(lock, [this] { return outstanding_ < capacity_; });
  ++outstanding_;
  ++total_;
  peak_ = std::max(peak_, outstanding_);
}

void IoTokenBucket::Release() {
  {
    PSE_LOCKDEP_SCOPE("IoTokenBucket::Release");
    std::lock_guard<Mutex> lock(mu_);
    if (outstanding_ > 0) --outstanding_;
  }
  cv_.notify_one();
}

uint64_t IoTokenBucket::outstanding() const {
  std::lock_guard<Mutex> lock(mu_);
  return outstanding_;
}

uint64_t IoTokenBucket::peak_outstanding() const {
  std::lock_guard<Mutex> lock(mu_);
  return peak_;
}

uint64_t IoTokenBucket::total_acquired() const {
  std::lock_guard<Mutex> lock(mu_);
  return total_;
}

const char* FleetPolicyName(FleetPolicy policy) {
  switch (policy) {
    case FleetPolicy::kRoundRobin:
      return "round-robin";
    case FleetPolicy::kLaggardFirst:
      return "laggard-first";
    case FleetPolicy::kHotTenantDeferred:
      return "hot-tenant-deferred";
  }
  return "unknown";
}

/// Per-lane tallies, merged serially after the pool joins (gtest-unsafe
/// assertions never run inside workers — same discipline as core serving).
struct FleetScheduler::LaneResult {
  std::vector<double> latencies_ms;
  uint64_t writes = 0;
  uint64_t unservable = 0;
  uint64_t unservable_writes = 0;
  uint64_t errors = 0;
  Status first_error;
};

FleetScheduler::FleetScheduler(FleetSchedule schedule, SharedPlanCache* cache)
    : schedule_(std::move(schedule)), cache_(cache) {
  mu_.LockdepRegister("fleet", kLockRankFleet, /*allows_io=*/false);
}

void FleetScheduler::AddShard(std::unique_ptr<TenantShard> shard) {
  shards_.push_back(std::move(shard));
  busy_.push_back(0);
}

int FleetScheduler::PickNext(const FleetOptions& options) {
  PSE_LOCKDEP_SCOPE("FleetScheduler::PickNext");
  std::lock_guard<Mutex> lock(mu_);
  const size_t n = shards_.size();
  int best = -1;
  double best_key = 0;
  size_t best_step = 0;
  for (size_t k = 0; k < n; ++k) {
    // Round-robin scans from the cursor so successive picks cycle the
    // fleet; the other policies scan all shards and keep the best.
    size_t i = options.policy == FleetPolicy::kRoundRobin ? (rr_cursor_ + k) % n : k;
    if (busy_[i] != 0) continue;
    size_t step = shards_[i]->step();
    if (step >= schedule_.steps()) continue;
    if (options.policy == FleetPolicy::kRoundRobin) {
      best = static_cast<int>(i);
      break;
    }
    double key = options.policy == FleetPolicy::kLaggardFirst
                     ? static_cast<double>(step)
                     : (i < options.hotness.size() ? options.hotness[i] : 1.0);
    // Ties break toward the laggard, then the lower id — deterministic and
    // starvation-free (a deferred hot tenant is picked once it is the only
    // eligible shard left).
    if (best < 0 || key < best_key || (key == best_key && step < best_step)) {
      best = static_cast<int>(i);
      best_key = key;
      best_step = step;
    }
  }
  if (best >= 0) {
    busy_[static_cast<size_t>(best)] = 1;
    if (options.policy == FleetPolicy::kRoundRobin) {
      rr_cursor_ = (static_cast<size_t>(best) + 1) % n;
    }
  }
  return best;
}

void FleetScheduler::FinishShard(size_t shard) {
  PSE_LOCKDEP_SCOPE("FleetScheduler::FinishShard");
  std::lock_guard<Mutex> lock(mu_);
  busy_[shard] = 0;
}

Result<FleetMetrics> FleetScheduler::Run(const std::vector<WorkloadQuery>& queries,
                                         const std::vector<double>& freqs,
                                         const FleetOptions& options) {
  if (shards_.empty()) return Status::InvalidArgument("fleet has no shards");
  if (freqs.size() != queries.size()) {
    return Status::InvalidArgument("fleet frequency vector does not match the workload");
  }
  if (!options.hotness.empty() && options.hotness.size() != shards_.size()) {
    return Status::InvalidArgument("fleet hotness vector does not match the shard count");
  }
  const size_t n = shards_.size();

  std::vector<size_t> active;
  std::vector<double> weights;
  for (size_t q = 0; q < queries.size(); ++q) {
    if (freqs[q] > 0) {
      active.push_back(q);
      weights.push_back(freqs[q]);
    }
  }
  std::vector<double> shard_weights = options.hotness;
  if (shard_weights.empty()) shard_weights.assign(n, 1.0);

  ExecOptions exec_options = ExecOptions::Default();
  exec_options.vectorized = exec_options.vectorized || options.vectorized;

  uint64_t remaining = 0;
  uint64_t io_before = 0;
  uint64_t batches_before = 0;
  for (const auto& shard : shards_) {
    remaining += schedule_.steps() - std::min(shard->step(), schedule_.steps());
    io_before += shard->migration_io();
    batches_before += shard->batches();
  }
  const PlanCacheStats cache_before = cache_->Snapshot();

  IoTokenBucket bucket(options.io_tokens);
  std::atomic<uint64_t> remaining_ops{remaining};
  std::atomic<uint64_t> applied_ops{0};
  std::atomic<bool> abort{false};
  Status migrate_error;
  Mutex error_mu;  // plain data guard; deliberately unranked (leaf, error path)

  const size_t lanes = options.migration_lanes + options.serve_lanes;
  std::vector<LaneResult> results(lanes);

  Clock::time_point window_start = Clock::now();
  ThreadPool pool(lanes);
  pool.ParallelFor(lanes, [&](size_t lane) {
    if (lane < options.migration_lanes) {
      // -- migration lane: drain the fleet's remaining operators --
      while (!abort.load(std::memory_order_acquire) &&
             remaining_ops.load(std::memory_order_acquire) != 0) {
        int pick = PickNext(options);
        if (pick < 0) {
          std::this_thread::yield();
          continue;
        }
        size_t shard = static_cast<size_t>(pick);
        Status status = shards_[shard]->AdvanceOneOp(schedule_, options.migration, &bucket);
        size_t new_step = shards_[shard]->step();
        FinishShard(shard);
        if (!status.ok()) {
          {
            std::lock_guard<Mutex> lock(error_mu);
            if (migrate_error.ok()) migrate_error = status;
          }
          abort.store(true, std::memory_order_release);
          break;
        }
        remaining_ops.fetch_sub(1, std::memory_order_acq_rel);
        applied_ops.fetch_add(1, std::memory_order_relaxed);
        if (options.on_shard_op) options.on_shard_op(shard, new_step);
      }
      return;
    }

    // -- serve lane: mixed-version foreground traffic across the fleet --
    LaneResult& r = results[lane];
    const bool writes_on = options.write_fraction > 0 && options.make_write;
    if (active.empty() && !writes_on) return;
    std::mt19937_64 rng(options.seed + lane);
    std::discrete_distribution<size_t> pick_query;
    if (!active.empty()) {
      pick_query = std::discrete_distribution<size_t>(weights.begin(), weights.end());
    }
    std::discrete_distribution<size_t> pick_shard(shard_weights.begin(), shard_weights.end());
    std::bernoulli_distribution write_coin(writes_on ? options.write_fraction : 0.0);
    uint64_t lane_writes = 0;
    uint64_t attempts = 0;
    while (!abort.load(std::memory_order_acquire) &&
           (remaining_ops.load(std::memory_order_acquire) != 0 ||
            attempts < options.min_queries_per_lane)) {
      ++attempts;
      TenantShard* shard = shards_[pick_shard(rng)].get();
      const bool do_write = writes_on && (active.empty() || write_coin(rng));
      Clock::time_point t0 = Clock::now();
      Status failed;
      bool ran = false;
      if (do_write) {
        LogicalDml dml = options.make_write(shard->id(), lane_writes++, rng);
        PSE_LOCKDEP_SCOPE("FleetScheduler::serve_write");
        // Shard catalog latch shared, then the shard's router write mutex
        // (25) and table latches (30) underneath — single-database serving
        // discipline, per shard.
        std::shared_lock<SharedMutex> schema_lock(shard->db()->schema_latch());
        std::shared_ptr<const PhysicalSchema> schema = shard->serving()->Get();
        DmlExecOptions dml_options;
        dml_options.vectorized = exec_options.vectorized;
        Status status = shard->router()->Execute(dml, *schema, dml_options);
        if (!status.ok()) {
          if (status.IsBindError()) {
            ++r.unservable;
            ++r.unservable_writes;
            continue;
          }
          failed = status;
        } else {
          ran = true;
        }
      } else {
        const LogicalQuery& query = queries[active[pick_query(rng)]].query;
        PSE_LOCKDEP_SCOPE("FleetScheduler::serve_read");
        // The published step is read under the same catalog latch as the
        // serving snapshot, so the (step, snapshot) pair is consistent and
        // the fleet-shared rewrite for that step applies verbatim.
        std::shared_lock<SharedMutex> schema_lock(shard->db()->schema_latch());
        std::shared_ptr<const PhysicalSchema> schema = shard->serving()->Get();
        size_t step = shard->published_step();
        Result<BoundQuery> bound = cache_->GetOrRewrite(step, query, *schema);
        if (!bound.ok()) {
          if (bound.status().IsBindError()) {
            ++r.unservable;
            continue;
          }
          failed = bound.status();
        } else {
          DatabaseCatalogView view(shard->db());
          Result<PlanPtr> plan = PlanQuery(*bound, view);
          if (!plan.ok()) {
            failed = plan.status();
          } else {
            Status status = ExecutePlan(**plan, shard->db(), exec_options).status();
            if (!status.ok()) {
              failed = status;
            } else {
              ran = true;
            }
          }
        }
      }
      if (!ran) {
        ++r.errors;
        if (r.first_error.ok()) r.first_error = failed;
        continue;
      }
      if (do_write) ++r.writes;
      r.latencies_ms.push_back(MsSince(t0));
    }
  });

  FleetMetrics m;
  m.wall_ms = MsSince(window_start);
  m.tenants = n;
  for (const auto& shard : shards_) {
    if (shard->step() >= schedule_.steps()) ++m.tenants_migrated;
    m.migration_io += shard->migration_io();
    m.batches += shard->batches();
  }
  m.migration_io -= io_before;
  m.batches -= batches_before;
  m.ops_applied = applied_ops.load(std::memory_order_relaxed);
  std::vector<double> all;
  Status first_error;
  for (const LaneResult& r : results) {
    m.queries += r.latencies_ms.size() - r.writes;
    m.writes += r.writes;
    m.unservable += r.unservable;
    m.unservable_writes += r.unservable_writes;
    m.errors += r.errors;
    if (first_error.ok() && !r.first_error.ok()) first_error = r.first_error;
    all.insert(all.end(), r.latencies_ms.begin(), r.latencies_ms.end());
  }
  if (m.wall_ms > 0) {
    m.throughput_qps = static_cast<double>(m.queries + m.writes) / (m.wall_ms / 1000.0);
  }
  if (!all.empty()) {
    std::sort(all.begin(), all.end());
    m.p50_ms = Percentile(all, 0.50);
    m.p95_ms = Percentile(all, 0.95);
    m.p99_ms = Percentile(all, 0.99);
  }
  const PlanCacheStats cache_after = cache_->Snapshot();
  m.plan_cache.hits = cache_after.hits - cache_before.hits;
  m.plan_cache.misses = cache_after.misses - cache_before.misses;
  m.io_capacity = bucket.capacity();
  m.io_peak_outstanding = bucket.peak_outstanding();

  if (!migrate_error.ok()) return migrate_error;
  if (m.errors > 0) {
    return Status(first_error.code(),
                  "fleet foreground session failed during migration: " + first_error.message() +
                      " (" + std::to_string(m.errors) + " errors)");
  }
  return m;
}

}  // namespace pse
