// TenantShard: one tenant of the SaaS fleet — an embedded Database plus its
// write router, provenance store, and serving state, shared-nothing.
//
// Every shard walks the fleet's shared FleetSchedule (schedule.h) but owns
// its storage outright: its own buffer pool, its own catalog and latches,
// its own DmlRouter and — deliberately — its own ProvenanceStore. The store
// is per-*shard*, not per-router: a shard that crashes mid-operator resumes
// with a fresh router (the old one's attachment state died with the
// process), and DELETE-snapshot provenance captured before the crash must
// survive that router churn while never leaking into a neighbor tenant
// (tests/fleet/fleet_test.cc pins both properties).
//
// Locking: shard trajectory state (current schema + step) sits under a
// Mutex registered "shard:<id>" at kLockRankShard (6) — above the fleet
// scheduler's pick state (4), below every catalog latch (10), so the
// scheduler may inspect shard positions while picking and a shard may open
// its own catalog while advancing. The serving-visible position
// (published_step) is swapped inside the executor's exclusive-catalog
// publish window together with the ServingSchema snapshot, so foreground
// lanes reading both under the catalog latch shared never see them disagree.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/lock_registry.h"
#include "common/status.h"
#include "core/logical_database.h"
#include "core/migration_executor.h"
#include "core/rewriter_dml.h"
#include "core/serving.h"
#include "fleet/schedule.h"
#include "storage/database.h"
#include "storage/disk_manager.h"

namespace pse {

class IoTokenBucket;  // fleet/scheduler.h

/// Construction knobs for one shard.
struct ShardOptions {
  /// Buffer-pool frames of the embedded database (frames allocate lazily,
  /// so small tenants stay small).
  size_t pool_pages = 128;
  /// Backing store. Null = private in-memory pages. Pass a (fault-wrapped)
  /// FileDiskManager for a durable shard that can crash and be reopened.
  std::unique_ptr<DiskManager> disk;
};

/// \brief One tenant: embedded database + router + serving state.
class TenantShard {
 public:
  /// Creates a fresh shard at step 0: materializes `source` from `data`,
  /// analyzes, and (when disk-backed) checkpoints so the shard is durable
  /// from birth. `data` is the tenant's entity-level truth and must outlive
  /// the shard (CreateTable steps load new-attribute values from it).
  static Result<std::unique_ptr<TenantShard>> Create(size_t id, const PhysicalSchema& source,
                                                     const LogicalDatabase* data,
                                                     ShardOptions options = {});

  /// Reopens a durable shard mid-trajectory after a crash. Restores the
  /// database from `disk`, locates the shard's position on `schedule` —
  /// from the journal when an operator was in flight (and rolls it forward
  /// via MigrationExecutor::Resume with a fresh router), else by matching
  /// the catalog's table set against the schedule's intermediates — and
  /// returns the shard ready to keep advancing.
  static Result<std::unique_ptr<TenantShard>> Open(size_t id, const FleetSchedule& schedule,
                                                   const LogicalDatabase* data,
                                                   std::unique_ptr<DiskManager> disk,
                                                   size_t pool_pages = 128);

  size_t id() const { return id_; }
  const std::string& name() const { return name_; }
  Database* db() { return db_.get(); }
  DmlRouter* router() { return router_.get(); }
  ServingSchema* serving() { return &serving_; }
  ProvenanceStore* provenance() { return &provenance_; }

  /// Trajectory position: ops of the shared schedule fully applied.
  size_t step() const;
  /// Position the serving snapshot reflects. Read it under the shard's
  /// catalog latch (shared) to pair it consistently with serving()->Get().
  size_t published_step() const { return published_step_.load(std::memory_order_acquire); }
  /// Copy of the shard's current (migration-side) schema.
  PhysicalSchema CurrentSchema() const;
  bool done(const FleetSchedule& schedule) const { return step() >= schedule.steps(); }

  /// Cumulative migration accounting.
  uint64_t migration_io() const { return migration_io_.load(std::memory_order_relaxed); }
  uint64_t batches() const { return batches_.load(std::memory_order_relaxed); }

  /// \brief Applies the shard's next schedule operator (one step).
  ///
  /// `base` supplies batch sizing and optional user hooks (copied; the
  /// shard wires its own router and serving publish on top). While `bucket`
  /// is set, one global I/O token is held for the duration of every copy
  /// batch and returned between batches, so concurrently migrating shards
  /// never exceed the fleet budget. No-op at the end of the schedule.
  /// Callers must not advance one shard from two threads at once (the
  /// FleetScheduler's busy-marking guarantees this).
  Status AdvanceOneOp(const FleetSchedule& schedule, const MigrationOptions& base,
                      IoTokenBucket* bucket = nullptr);

 private:
  TenantShard(size_t id, std::unique_ptr<Database> db, const LogicalDatabase* data,
              PhysicalSchema schema, size_t step);

  size_t id_;
  std::string name_;
  std::unique_ptr<Database> db_;
  const LogicalDatabase* data_;
  /// Per-shard DELETE-snapshot store; outlives every router the shard makes.
  ProvenanceStore provenance_;
  std::unique_ptr<DmlRouter> router_;
  ServingSchema serving_;

  mutable Mutex state_mu_;  ///< "shard:<id>": guards schema_ and step_
  PhysicalSchema schema_;
  size_t step_ = 0;
  std::atomic<size_t> published_step_{0};
  std::atomic<uint64_t> migration_io_{0};
  std::atomic<uint64_t> batches_{0};
};

}  // namespace pse
