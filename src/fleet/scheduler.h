// FleetScheduler: advances thousands of tenant shards along the shared
// migration schedule while serve lanes keep answering mixed-version traffic
// on every shard — the paper's progressive rollout, fleet-wide.
//
// Three cooperating pieces:
//
//   IoTokenBucket   a global budget on concurrently copying shards. Every
//                   shard holds one token per in-flight copy batch (and
//                   returns it between batches), so however many migration
//                   lanes run, at most `capacity` shards do migration I/O
//                   at any instant — the SaaS operator's "don't melt the
//                   storage tier" knob.
//
//   staggering      which eligible shard migrates next: round-robin (fair
//   policies        interleave), laggard-first (minimize trajectory spread),
//                   hot-tenant-deferred (migrate cold tenants while hot ones
//                   keep serving; hot ones go last). Every policy drains the
//                   whole fleet — deferral reorders, never starves.
//
//   serve lanes     foreground sessions that pick a shard, snapshot its
//                   serving schema under its catalog latch, fetch the
//                   rewrite from the fleet's SharedPlanCache keyed on the
//                   shard's published step, then plan/execute against the
//                   shard's own catalog (plans stay per-tenant; rewrites
//                   amortize fleet-wide). Writes go through the shard's
//                   DmlRouter exactly like single-database serving.
//
// Lock classes (DESIGN.md §17/§20): "fleet" (rank 4) guards pick/busy
// state, "shard:<id>" (6) each shard's trajectory state, "fleet:iobudget"
// (8) the token bucket, "fleet:plancache" (28) the rewrite cache. All sort
// below/above the existing catalog (10) … bufferpool (40) ranks so lockdep
// checks the fleet paths end to end.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <random>
#include <vector>

#include "common/lock_registry.h"
#include "common/status.h"
#include "core/migration_executor.h"
#include "core/rewriter_dml.h"
#include "core/workload.h"
#include "fleet/plan_cache.h"
#include "fleet/schedule.h"
#include "fleet/tenant_shard.h"

namespace pse {

/// \brief Counting budget on concurrent migration I/O, blocking at capacity.
class IoTokenBucket {
 public:
  explicit IoTokenBucket(uint64_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
    mu_.LockdepRegister("fleet:iobudget", kLockRankFleetIo, /*allows_io=*/false);
  }

  /// Takes one token, blocking while the bucket is drained.
  void Acquire();
  /// Returns one token and wakes a waiter.
  void Release();

  uint64_t capacity() const { return capacity_; }
  uint64_t outstanding() const;
  /// High-water mark of simultaneously held tokens (exact: tracked under
  /// the bucket mutex). The scheduler invariant peak <= capacity is pinned
  /// by tests/fleet/scheduler_test.cc.
  uint64_t peak_outstanding() const;
  uint64_t total_acquired() const;

 private:
  mutable Mutex mu_;
  std::condition_variable_any cv_;
  uint64_t capacity_;
  uint64_t outstanding_ = 0;
  uint64_t peak_ = 0;
  uint64_t total_ = 0;
};

/// Which eligible shard a migration lane picks next.
enum class FleetPolicy {
  kRoundRobin,        ///< cycle shard ids, skipping busy/done
  kLaggardFirst,      ///< lowest trajectory step first
  kHotTenantDeferred  ///< lowest hotness first; hot tenants migrate last
};

const char* FleetPolicyName(FleetPolicy policy);

/// Knobs for one fleet run.
struct FleetOptions {
  FleetPolicy policy = FleetPolicy::kRoundRobin;
  /// Lanes advancing migrations (each works one shard at a time).
  size_t migration_lanes = 2;
  /// Lanes serving foreground traffic across all shards.
  size_t serve_lanes = 2;
  /// IoTokenBucket capacity: shards copying concurrently at any instant.
  uint64_t io_tokens = 4;
  /// Each serve lane issues at least this many statements even when the
  /// fleet migration finishes instantly.
  uint64_t min_queries_per_lane = 32;
  uint64_t seed = 42;
  /// Execute foreground queries through the vectorized batch engine
  /// (PSE_VECTORIZED forces this on, as everywhere).
  bool vectorized = false;
  /// Probability a serve-lane iteration issues a write; needs make_write.
  double write_fraction = 0.0;
  /// Produces the i-th write of a lane against `shard` (the lane's rng keeps
  /// the workload reproducible per (seed, lane)).
  std::function<LogicalDml(size_t shard, uint64_t i, std::mt19937_64& rng)> make_write;
  /// Base migration options per operator (batch sizing, durability, user
  /// hooks); each shard wires its router/publish on top — see
  /// TenantShard::AdvanceOneOp.
  MigrationOptions migration;
  /// Per-shard serve weight; hot-tenant-deferred migrates low weights first
  /// and serve lanes sample shards proportionally. Empty = uniform 1.0.
  std::vector<double> hotness;
  /// Observer called after every successfully applied operator (outside all
  /// fleet locks) with the shard index and its new step — the policy tests
  /// reconstruct migration order from it.
  std::function<void(size_t shard, size_t step)> on_shard_op;
};

/// Fleet-wide outcome of one Run window.
struct FleetMetrics {
  size_t tenants = 0;
  size_t tenants_migrated = 0;  ///< shards that reached the end of the schedule
  uint64_t ops_applied = 0;
  uint64_t batches = 0;
  uint64_t migration_io = 0;
  uint64_t queries = 0;
  uint64_t writes = 0;
  uint64_t unservable = 0;
  uint64_t unservable_writes = 0;
  uint64_t errors = 0;  ///< non-bind foreground failures (must stay 0)
  double wall_ms = 0;
  double throughput_qps = 0;  ///< (queries + writes) / wall seconds
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  PlanCacheStats plan_cache;      ///< delta of this run
  uint64_t io_capacity = 0;       ///< bucket capacity of the run
  uint64_t io_peak_outstanding = 0;
};

/// \brief Drives a fleet of shards through the shared schedule under load.
class FleetScheduler {
 public:
  /// `cache` is the fleet's shared rewrite/plan cache; must outlive the
  /// scheduler. The schedule is owned (all shards reference it via Run).
  FleetScheduler(FleetSchedule schedule, SharedPlanCache* cache);

  void AddShard(std::unique_ptr<TenantShard> shard);
  size_t size() const { return shards_.size(); }
  TenantShard* shard(size_t i) { return shards_[i].get(); }
  const FleetSchedule& schedule() const { return schedule_; }

  /// \brief Migrates every shard to the end of the schedule while serve
  /// lanes drive `queries` (weighted by `freqs`) across the fleet.
  ///
  /// Returns the merged fleet metrics; fails on the first migration error
  /// or any non-bind foreground failure (unservable statements are counted,
  /// never errors — the single-database serving contract, fleet-wide).
  Result<FleetMetrics> Run(const std::vector<WorkloadQuery>& queries,
                           const std::vector<double>& freqs, const FleetOptions& options);

 private:
  struct LaneResult;

  /// Picks and busy-marks the next shard per policy; -1 when none eligible.
  int PickNext(const FleetOptions& options);
  void FinishShard(size_t shard);

  Mutex mu_;  ///< "fleet": busy marks + round-robin cursor
  FleetSchedule schedule_;
  SharedPlanCache* cache_;
  std::vector<std::unique_ptr<TenantShard>> shards_;
  std::vector<uint8_t> busy_;
  size_t rr_cursor_ = 0;
};

}  // namespace pse
