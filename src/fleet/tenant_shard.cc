#include "fleet/tenant_shard.h"

#include <algorithm>
#include <mutex>
#include <utility>
#include <vector>

#include "fleet/scheduler.h"

namespace pse {

namespace {

/// Sorted table names of a schema, comparable against Database::TableNames().
std::vector<std::string> SortedTableNames(const PhysicalSchema& schema) {
  std::vector<std::string> names;
  names.reserve(schema.tables().size());
  for (const PhysicalTable& t : schema.tables()) names.push_back(t.name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace

TenantShard::TenantShard(size_t id, std::unique_ptr<Database> db, const LogicalDatabase* data,
                         PhysicalSchema schema, size_t step)
    : id_(id),
      name_("shard:" + std::to_string(id)),
      db_(std::move(db)),
      data_(data),
      router_(std::make_unique<DmlRouter>(db_.get(), &provenance_)),
      serving_(schema),
      schema_(std::move(schema)),
      step_(step),
      published_step_(step) {
  state_mu_.LockdepRegister(name_, kLockRankShard, /*allows_io=*/false);
}

Result<std::unique_ptr<TenantShard>> TenantShard::Create(size_t id, const PhysicalSchema& source,
                                                         const LogicalDatabase* data,
                                                         ShardOptions options) {
  std::unique_ptr<Database> db;
  const bool durable = options.disk != nullptr;
  if (durable) {
    Result<std::unique_ptr<Database>> opened =
        Database::Open(std::move(options.disk), options.pool_pages);
    if (!opened.ok()) return opened.status();
    db = std::move(*opened);
    if (!db->TableNames().empty()) {
      return Status::InvalidArgument("TenantShard::Create on a non-empty store; use Open");
    }
  } else {
    db = std::make_unique<Database>(options.pool_pages);
  }
  Status s = data->Materialize(db.get(), source);
  if (!s.ok()) return s;
  s = db->AnalyzeAll();
  if (!s.ok()) return s;
  if (durable) {
    s = db->Checkpoint();
    if (!s.ok()) return s;
  }
  return std::unique_ptr<TenantShard>(
      new TenantShard(id, std::move(db), data, source, /*step=*/0));
}

Result<std::unique_ptr<TenantShard>> TenantShard::Open(size_t id, const FleetSchedule& schedule,
                                                       const LogicalDatabase* data,
                                                       std::unique_ptr<DiskManager> disk,
                                                       size_t pool_pages) {
  Result<std::unique_ptr<Database>> opened = Database::Open(std::move(disk), pool_pages);
  if (!opened.ok()) return opened.status();
  std::unique_ptr<Database> db = std::move(*opened);

  if (db->HasPendingMigration()) {
    // An operator died in flight: its journal names it, the schedule places
    // it. Roll it forward with a fresh router — the shard-owned provenance
    // store (empty after a real process crash, populated after an in-process
    // failover) outlives the router churn either way.
    const MigrationJournal& journal = db->migration_journal();
    size_t step = schedule.steps();
    for (size_t i = 0; i < schedule.steps(); ++i) {
      if (schedule.ops[i].id == journal.op_id &&
          static_cast<uint8_t>(schedule.ops[i].kind) == journal.op_kind) {
        step = i;
        break;
      }
    }
    if (step == schedule.steps()) {
      return Status::Internal("journaled operator " + std::to_string(journal.op_id) +
                              " is not on the fleet schedule");
    }
    std::unique_ptr<TenantShard> shard(
        new TenantShard(id, std::move(db), data, schedule.at(step), step));
    MigrationExecutor exec(shard->db_.get(), data);
    MigrationOptions options;
    options.dml_router = shard->router_.get();
    options.on_publish = [&shard, step](const PhysicalSchema& schema) {
      shard->serving_.Publish(schema);
      shard->published_step_.store(step + 1, std::memory_order_release);
    };
    exec.set_options(std::move(options));
    Result<uint64_t> io = exec.Resume(schedule.ops[step], &shard->schema_);
    if (!io.ok()) return io.status();
    shard->migration_io_.fetch_add(*io, std::memory_order_relaxed);
    {
      PSE_LOCKDEP_SCOPE("TenantShard::Open");
      std::lock_guard<Mutex> lock(shard->state_mu_);
      shard->step_ = step + 1;
    }
    return shard;
  }

  // No operator in flight: the catalog matches exactly one point of the
  // trajectory (every operator changes the table set).
  std::vector<std::string> names = db->TableNames();
  std::sort(names.begin(), names.end());
  for (size_t s = 0; s <= schedule.steps(); ++s) {
    if (SortedTableNames(schedule.at(s)) == names) {
      return std::unique_ptr<TenantShard>(
          new TenantShard(id, std::move(db), data, schedule.at(s), s));
    }
  }
  return Status::Internal("reopened shard's catalog matches no schedule step");
}

size_t TenantShard::step() const {
  PSE_LOCKDEP_SCOPE("TenantShard::step");
  std::lock_guard<Mutex> lock(state_mu_);
  return step_;
}

PhysicalSchema TenantShard::CurrentSchema() const {
  PSE_LOCKDEP_SCOPE("TenantShard::CurrentSchema");
  std::lock_guard<Mutex> lock(state_mu_);
  return schema_;
}

Status TenantShard::AdvanceOneOp(const FleetSchedule& schedule, const MigrationOptions& base,
                                 IoTokenBucket* bucket) {
  size_t s = 0;
  PhysicalSchema working;
  {
    PSE_LOCKDEP_SCOPE("TenantShard::AdvanceOneOp");
    std::lock_guard<Mutex> lock(state_mu_);
    s = step_;
    if (s >= schedule.steps()) return Status::OK();
    working = schema_;
  }

  MigrationExecutor exec(db_.get(), data_);
  MigrationOptions options = base;
  options.dml_router = router_.get();
  // One global token is held for the duration of every copy batch and
  // returned while the hook runs (the hook executes foreground work, not
  // migration I/O) — the bucket caps how many shards copy at once.
  bool holding = false;
  options.on_batch = [this, &base, bucket, &holding](const MigrationBatchEvent& event) {
    batches_.fetch_add(1, std::memory_order_relaxed);
    if (bucket != nullptr && holding) {
      bucket->Release();
      holding = false;
    }
    Status hook = base.on_batch ? base.on_batch(event) : Status::OK();
    if (hook.ok() && bucket != nullptr) {
      bucket->Acquire();
      holding = true;
    }
    return hook;
  };
  options.on_publish = [this, &base, s](const PhysicalSchema& schema) {
    serving_.Publish(schema);
    published_step_.store(s + 1, std::memory_order_release);
    if (base.on_publish) base.on_publish(schema);
  };
  exec.set_options(std::move(options));

  if (bucket != nullptr) {
    bucket->Acquire();
    holding = true;
  }
  Result<uint64_t> io = exec.Apply(schedule.ops[s], &working);
  if (bucket != nullptr && holding) {
    bucket->Release();
    holding = false;
  }
  if (!io.ok()) return io.status();
  migration_io_.fetch_add(*io, std::memory_order_relaxed);
  {
    PSE_LOCKDEP_SCOPE("TenantShard::AdvanceOneOp");
    std::lock_guard<Mutex> lock(state_mu_);
    schema_ = std::move(working);
    step_ = s + 1;
  }
  return Status::OK();
}

}  // namespace pse
