#include "fleet/schedule.h"

#include <utility>

#include "analysis/interaction.h"
#include "core/mapping.h"
#include "core/migration_planner.h"

namespace pse {

Result<FleetSchedule> PlanFleetSchedule(const PhysicalSchema& source,
                                        const PhysicalSchema& object,
                                        const FleetScheduleInputs& inputs,
                                        QueryCostCache* cost_cache) {
  Result<OperatorSet> opset = ComputeOperatorSet(source, object);
  if (!opset.ok()) return opset.status();

  FleetSchedule schedule;
  schedule.source = source;
  schedule.object = object;

  std::vector<bool> applied(opset->ops.size(), false);
  PhysicalSchema current = source;

  const bool planned = inputs.queries != nullptr && inputs.phase_freqs != nullptr &&
                       inputs.stats != nullptr && !inputs.phase_freqs->empty();
  if (planned) {
    // LAA at every phase boundary, clairvoyant (the fleet schedules the
    // rollout ahead of time, so the upcoming phase's workload is the right
    // scoring target). Each phase's winning subset arrives topo-ordered.
    std::vector<LogicalStats> phase_stats{*inputs.stats};
    AnalysisOptions analysis;
    analysis.cost_cache = cost_cache;
    for (size_t p = 0; p < inputs.phase_freqs->size(); ++p) {
      MigrationContext ctx;
      ctx.current = &current;
      ctx.object = &object;
      ctx.opset = &*opset;
      ctx.applied = applied;
      ctx.phase_freqs = inputs.phase_freqs;
      ctx.phase_stats = &phase_stats;
      ctx.queries = inputs.queries;
      Result<LaaResult> laa = SelectOpsLaa(ctx, p, p, /*max_ops=*/30, analysis);
      if (!laa.ok()) return laa.status();
      for (int op : laa->ops_to_apply) {
        schedule.ops.push_back(opset->ops[static_cast<size_t>(op)]);
        Status s = ApplyOperator(schedule.ops.back(), &current);
        if (!s.ok()) return s;
        applied[static_cast<size_t>(op)] = true;
      }
    }
  }

  // Whatever no phase claimed (or everything, unplanned) rides in dependency
  // order at the tail — the trajectory must always end at the object schema.
  Result<std::vector<int>> topo = opset->TopologicalOrder();
  if (!topo.ok()) return topo.status();
  for (int op : *topo) {
    if (applied[static_cast<size_t>(op)]) continue;
    schedule.ops.push_back(opset->ops[static_cast<size_t>(op)]);
    Status s = ApplyOperator(schedule.ops.back(), &current);
    if (!s.ok()) return s;
    applied[static_cast<size_t>(op)] = true;
  }

  // Precompute every intermediate so shards can be positioned anywhere on
  // the trajectory structurally (no executor, no data movement).
  schedule.schemas.reserve(schedule.ops.size() + 1);
  schedule.schemas.push_back(source);
  for (const MigrationOperator& op : schedule.ops) {
    PhysicalSchema next = schedule.schemas.back();
    Status s = ApplyOperator(op, &next);
    if (!s.ok()) return s;
    schedule.schemas.push_back(std::move(next));
  }
  return schedule;
}

}  // namespace pse
