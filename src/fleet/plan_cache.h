// SharedPlanCache: fleet-wide rewrite memoization keyed on (schema step,
// query fingerprint).
//
// Every tenant shard walks the same migration trajectory, so two shards at
// the same step have structurally identical schemas and a query rewrites to
// the same BoundQuery on both. The fleet therefore rewrites each (step,
// query) pair once and hands every later shard a clone — with N tenants at
// one step, planning amortizes to (N-1)/N cache hits (see
// tests/fleet/scheduler_test.cc).
//
// Only the *rewrite* is shared. Physical plans stay per-shard: PlanQuery
// consults the shard's own catalog statistics, which diverge as tenants'
// data does, so caching a plan across shards would be unsound. The cache
// also owns the fleet's QueryCostCache, so schedule planning (LAA candidate
// costing, src/fleet/schedule.h) memoizes across the whole fleet too.
//
// Locking: the map mutex is registered as "fleet:plancache" at
// kLockRankPlanCache (28) — lookups happen while the serving lane holds a
// shard's catalog latch shared (rank 10), and must release before ExecutePlan
// takes table latches (rank 30). No I/O may happen under it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/lock_registry.h"
#include "common/status.h"
#include "core/logical_query.h"
#include "core/physical_schema.h"
#include "engine/bound_query.h"
#include "engine/cost_cache.h"

namespace pse {

/// Counters of one cache's activity. An unservable outcome (the query does
/// not bind on that step's schema) is cached and counted like any other hit.
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;

  uint64_t lookups() const { return hits + misses; }
  /// Hit percentage in [0, 100]; 0 when no lookups happened.
  double hit_pct() const {
    return lookups() == 0 ? 0.0
                          : 100.0 * static_cast<double>(hits) / static_cast<double>(lookups());
  }
};

/// \brief Thread-safe (step, query fingerprint) -> rewrite outcome map.
class SharedPlanCache {
 public:
  SharedPlanCache() {
    mu_.LockdepRegister("fleet:plancache", kLockRankPlanCache, /*allows_io=*/false);
  }

  /// Returns the rewrite of `query` on `schema`, which must be the shared
  /// trajectory's schema at `step` (the caller reads both from a shard's
  /// serving snapshot under its catalog latch). On a miss the rewrite runs
  /// and is stored; either way the returned BoundQuery is a private clone,
  /// so callers may bind and execute it without aliasing the cache.
  /// BindError when the query is unservable at that step (cached too —
  /// unservability is a property of the step, not the shard).
  Result<BoundQuery> GetOrRewrite(size_t step, const LogicalQuery& query,
                                  const PhysicalSchema& schema);

  PlanCacheStats Snapshot() const;
  size_t size() const;
  void Clear();

  /// The fleet-shared planner cost cache (schedule planning memoization).
  QueryCostCache* cost_cache() { return &cost_cache_; }

  /// Stable 64-bit fingerprint of a query's canonical form (name + full
  /// logical text). `logical` must be the fleet's shared logical schema.
  static uint64_t FingerprintQuery(const LogicalQuery& query, const LogicalSchema& logical);

 private:
  struct Entry {
    std::shared_ptr<const BoundQuery> bound;  ///< null when unservable
    Status unservable;                        ///< the cached BindError, else OK
  };

  mutable Mutex mu_;
  std::unordered_map<uint64_t, Entry> entries_;
  PlanCacheStats stats_;
  QueryCostCache cost_cache_;
};

}  // namespace pse
