// FleetSchedule: the one migration trajectory every tenant shard walks.
//
// The paper's SaaS premise is that tenants share the schema story — the same
// source schema, the same object schema, the same operator sequence — and
// differ only in *when* each one moves (and in their data). The fleet plans
// that sequence once: LAA walks the predicted phases (memoizing candidate
// costings in the fleet-shared QueryCostCache, so planning cost is paid once
// for thousands of tenants), and every per-step intermediate schema is
// precomputed structurally so shards can be (re)positioned anywhere on the
// trajectory without touching an executor.
#pragma once

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "core/operators.h"
#include "core/physical_schema.h"
#include "core/workload.h"
#include "engine/cost_cache.h"

namespace pse {

/// \brief The shared trajectory: one operator per step, all intermediate
/// schemas precomputed. A shard "at step s" has applied ops[0..s).
struct FleetSchedule {
  PhysicalSchema source;
  PhysicalSchema object;
  /// Dependency-ordered operator sequence (one step each).
  std::vector<MigrationOperator> ops;
  /// schemas[s] = schema after s steps; size() == ops.size() + 1,
  /// schemas.front() == source, schemas.back() == the fully-migrated layout.
  std::vector<PhysicalSchema> schemas;

  size_t steps() const { return ops.size(); }
  const PhysicalSchema& at(size_t step) const { return schemas[step]; }
};

/// Optional workload inputs for LAA-ordered planning. All three must be set
/// together; without them the schedule falls back to plain dependency
/// (topological) order.
struct FleetScheduleInputs {
  const std::vector<WorkloadQuery>* queries = nullptr;
  /// phase_freqs[p][q] — predicted per-phase frequencies over `queries`.
  const std::vector<std::vector<double>>* phase_freqs = nullptr;
  const LogicalStats* stats = nullptr;
};

/// \brief Plans the fleet's shared trajectory from source to object.
///
/// With workload inputs, LAA runs at every phase boundary (clairvoyant —
/// the fleet plans ahead of the rollout) and orders the opset by when each
/// operator pays off, memoizing candidate costings in `cost_cache` (pass
/// SharedPlanCache::cost_cache() to share the memo across replans);
/// operators no phase wants are appended in dependency order. Without
/// inputs the sequence is simply the opset's topological order.
Result<FleetSchedule> PlanFleetSchedule(const PhysicalSchema& source,
                                        const PhysicalSchema& object,
                                        const FleetScheduleInputs& inputs = {},
                                        QueryCostCache* cost_cache = nullptr);

}  // namespace pse
