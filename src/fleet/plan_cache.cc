#include "fleet/plan_cache.h"

#include <mutex>
#include <utility>

#include "core/rewriter.h"

namespace pse {

namespace {

/// Mixes the trajectory step into the query fingerprint (splitmix-style odd
/// constant, so adjacent steps land far apart).
uint64_t StepKey(size_t step, uint64_t fingerprint) {
  return fingerprint ^ (static_cast<uint64_t>(step) * 0x9E3779B97F4A7C15ULL + 0x2545F4914F6CDD1DULL);
}

}  // namespace

uint64_t SharedPlanCache::FingerprintQuery(const LogicalQuery& query,
                                           const LogicalSchema& logical) {
  return QueryCostCache::Fingerprint(query.name + "|" + query.ToString(logical));
}

Result<BoundQuery> SharedPlanCache::GetOrRewrite(size_t step, const LogicalQuery& query,
                                                 const PhysicalSchema& schema) {
  const uint64_t key = StepKey(step, FingerprintQuery(query, *schema.logical()));
  {
    std::lock_guard<Mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      if (!it->second.unservable.ok()) return it->second.unservable;
      return it->second.bound->Clone();
    }
  }
  // Miss: rewrite outside the lock. Two lanes racing the same key both
  // rewrite (the outcome is deterministic, so whichever insert wins is
  // equivalent); the loser's work only costs an extra recorded miss.
  Result<BoundQuery> bound = RewriteQuery(query, schema);
  Entry entry;
  if (!bound.ok()) {
    if (!bound.status().IsBindError()) return bound.status();
    entry.unservable = bound.status();
  } else {
    entry.bound = std::make_shared<const BoundQuery>(std::move(*bound));
  }
  std::lock_guard<Mutex> lock(mu_);
  ++stats_.misses;
  auto it = entries_.emplace(key, std::move(entry)).first;
  if (!it->second.unservable.ok()) return it->second.unservable;
  return it->second.bound->Clone();
}

PlanCacheStats SharedPlanCache::Snapshot() const {
  std::lock_guard<Mutex> lock(mu_);
  return stats_;
}

size_t SharedPlanCache::size() const {
  std::lock_guard<Mutex> lock(mu_);
  return entries_.size();
}

void SharedPlanCache::Clear() {
  std::lock_guard<Mutex> lock(mu_);
  entries_.clear();
  stats_ = PlanCacheStats{};
}

}  // namespace pse
