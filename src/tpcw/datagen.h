// Deterministic TPC-W data generator.
//
// The paper used 100 MB and 1 GB databases; kScale100MB / kScale1GB match
// those raw-tuple volumes. Because I/O costs are reported in page counts
// (which scale linearly with data size), the benches default to a 1:20
// linear scale-down of each (kScaled100MB / kScaled1GB) and honour
// PSE_FULL_SCALE=1 to run the paper sizes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/logical_database.h"
#include "tpcw/schema.h"

namespace pse {

/// Cardinality knobs. Derived counts follow TPC-W's ratios: one author per
/// four items (every author has items), one address per customer, ~1.4
/// orders per customer, 3 order lines and exactly one cc_xact per order.
struct TpcwScale {
  std::string label;
  size_t num_items = 1000;
  size_t num_customers = 2000;

  size_t num_authors() const { return std::max<size_t>(1, num_items / 4); }
  size_t num_addresses() const { return num_customers; }
  size_t num_orders() const { return num_customers + num_customers / 2; }
  size_t num_order_lines() const { return num_orders() * 3; }
  size_t num_countries() const { return 92; }  // per the TPC-W spec
};

/// Paper-size databases.
TpcwScale Scale100MB();
TpcwScale Scale1GB();
/// 1:20 scale-downs used by default in benches/tests.
TpcwScale Scaled100MB();
TpcwScale Scaled1GB();
/// Tiny (CI-friendly) scale for unit tests.
TpcwScale ScaleTiny();

/// Resolves a bench-facing scale name ("100mb"/"1gb"), honouring the
/// PSE_FULL_SCALE environment variable.
TpcwScale ResolveScale(const std::string& name);

/// Visible-rows plan for per-phase data growth: the orders family (orders,
/// order_line, cc_xacts — the entities that accumulate during operation)
/// grows linearly from `initial_fraction` of its generated volume in the
/// first phase to 100% in the last; all other entities are static. Feed the
/// result to SimulationConfig::visible_rows.
std::vector<std::vector<size_t>> TpcwGrowthPlan(const TpcwSchema& schema,
                                                const TpcwScale& scale, size_t phases,
                                                double initial_fraction = 0.5);

/// Generates the entity-level data. Deterministic in (scale, seed).
/// Coverage invariants (required by the denormalizing combines): every
/// author has at least one item; every order has exactly one cc_xact.
std::unique_ptr<LogicalDatabase> GenerateTpcwData(const TpcwSchema& schema,
                                                  const TpcwScale& scale, uint64_t seed = 42);

}  // namespace pse
