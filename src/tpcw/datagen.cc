#include "tpcw/datagen.h"

#include <cstdlib>

#include "common/rng.h"

namespace pse {

TpcwScale Scale100MB() {
  // ~120k customers x ~730 B across entities + 60k items x ~250 B ~= 100 MB.
  return TpcwScale{"100MB", 60000, 120000};
}

TpcwScale Scale1GB() { return TpcwScale{"1GB", 600000, 1200000}; }

TpcwScale Scaled100MB() { return TpcwScale{"100MB(1:20)", 3000, 6000}; }

TpcwScale Scaled1GB() { return TpcwScale{"1GB(1:20)", 30000, 60000}; }

TpcwScale ScaleTiny() { return TpcwScale{"tiny", 300, 500}; }

TpcwScale ResolveScale(const std::string& name) {
  const char* full = std::getenv("PSE_FULL_SCALE");
  bool full_scale = full != nullptr && full[0] == '1';
  if (name == "1gb" || name == "1GB") {
    return full_scale ? Scale1GB() : Scaled1GB();
  }
  return full_scale ? Scale100MB() : Scaled100MB();
}

std::vector<std::vector<size_t>> TpcwGrowthPlan(const TpcwSchema& schema,
                                                const TpcwScale& scale, size_t phases,
                                                double initial_fraction) {
  const size_t num_entities = schema.logical.num_entities();
  std::vector<std::vector<size_t>> out(phases, std::vector<size_t>(num_entities, SIZE_MAX));
  // SIZE_MAX = "all generated rows" for static entities (clamped by users).
  for (size_t p = 0; p < phases; ++p) {
    double t = phases == 1 ? 1.0 : static_cast<double>(p) / static_cast<double>(phases - 1);
    double f = initial_fraction + (1.0 - initial_fraction) * t;
    size_t orders = static_cast<size_t>(static_cast<double>(scale.num_orders()) * f);
    out[p][schema.country] = scale.num_countries();
    out[p][schema.author] = scale.num_authors();
    out[p][schema.item] = scale.num_items;
    out[p][schema.address] = scale.num_addresses();
    out[p][schema.customer] = scale.num_customers;
    out[p][schema.orders] = orders;
    out[p][schema.order_line] = orders * 3;  // lines align with their orders
    out[p][schema.cc_xacts] = orders;        // exactly one payment per order
  }
  return out;
}

std::unique_ptr<LogicalDatabase> GenerateTpcwData(const TpcwSchema& schema,
                                                  const TpcwScale& scale, uint64_t seed) {
  auto data = std::make_unique<LogicalDatabase>(&schema.logical);
  Rng rng(seed);

  const size_t countries = scale.num_countries();
  const size_t authors = scale.num_authors();
  const size_t items = scale.num_items;
  const size_t customers = scale.num_customers;
  const size_t addresses = scale.num_addresses();
  const size_t orders = scale.num_orders();
  const size_t order_lines = scale.num_order_lines();

  // country: co_id, co_name, co_currency, co_exchange
  for (size_t i = 0; i < countries; ++i) {
    (void)data->AddRow(schema.country,
                       {Value::Int(static_cast<int64_t>(i)),
                        Value::Varchar("country" + std::to_string(i)),
                        Value::Varchar("CUR" + std::to_string(i % 40)),
                        Value::Double(0.5 + rng.UniformDouble() * 2.0)});
  }
  // author: a_id, a_fname, a_lname, a_bio
  for (size_t i = 0; i < authors; ++i) {
    (void)data->AddRow(schema.author,
                       {Value::Int(static_cast<int64_t>(i)),
                        Value::Varchar("fn" + std::to_string(i % 200)),
                        Value::Varchar("ln" + std::to_string(i % 500)),
                        Value::Varchar("bio " + rng.AlphaString(70))});
  }
  // item: i_id, i_title, i_a_id, i_pub_date, i_subject, i_desc, i_cost,
  //       i_stock, i_abstract (new; realized here so the CreateTable
  //       operator has values to load)
  for (size_t i = 0; i < items; ++i) {
    int64_t author_id = static_cast<int64_t>(i % authors);  // covering
    (void)data->AddRow(
        schema.item,
        {Value::Int(static_cast<int64_t>(i)),
         Value::Varchar("title " + std::to_string(i) + " " + rng.AlphaString(10)),
         Value::Int(author_id), Value::Int(19900101 + static_cast<int64_t>(i % 12000)),
         Value::Varchar("SUBJ" + std::to_string(i % 10)),
         Value::Varchar("desc " + rng.AlphaString(90)),
         Value::Double(1.0 + static_cast<double>(rng.UniformInt(100, 9999)) / 100.0),
         Value::Int(rng.UniformInt(0, 500)),
         Value::Varchar("abstract " + rng.AlphaString(110))});
  }
  // address: addr_id, addr_street, addr_city, addr_zip, addr_co_id
  for (size_t i = 0; i < addresses; ++i) {
    (void)data->AddRow(schema.address,
                       {Value::Int(static_cast<int64_t>(i)),
                        Value::Varchar(std::to_string(rng.UniformInt(1, 9999)) + " " +
                                       rng.AlphaString(12) + " st"),
                        Value::Varchar("city" + std::to_string(i % 1000)),
                        Value::Varchar(std::to_string(10000 + i % 89999)),
                        Value::Int(rng.UniformInt(0, static_cast<int64_t>(countries) - 1))});
  }
  // customer: c_id, c_uname, c_fname, c_lname, c_email, c_phone, c_since,
  //           c_discount, c_addr_id, c_data, c_tier (new)
  for (size_t i = 0; i < customers; ++i) {
    (void)data->AddRow(
        schema.customer,
        {Value::Int(static_cast<int64_t>(i)), Value::Varchar("user" + std::to_string(i)),
         Value::Varchar("cf" + std::to_string(i % 300)),
         Value::Varchar("cl" + std::to_string(i % 700)),
         Value::Varchar("user" + std::to_string(i) + "@shop.example"),
         Value::Varchar("555" + std::to_string(1000000 + i % 8999999)),
         Value::Int(20000101 + static_cast<int64_t>(i % 9000)),
         Value::Double(static_cast<double>(rng.UniformInt(0, 50)) / 100.0),
         Value::Int(static_cast<int64_t>(i % addresses)),
         Value::Varchar("data " + rng.AlphaString(190)),
         Value::Int(rng.UniformInt(0, 4))});
  }
  // orders: o_id, o_c_id, o_date, o_total, o_status. The first |customers|
  // orders cover every customer (so per-customer lookups are never empty at
  // any scale); the rest are random.
  const char* statuses[] = {"PENDING", "PROCESSING", "SHIPPED", "DENIED"};
  for (size_t i = 0; i < orders; ++i) {
    int64_t customer_id = i < customers
                              ? static_cast<int64_t>(i)
                              : rng.UniformInt(0, static_cast<int64_t>(customers) - 1);
    (void)data->AddRow(
        schema.orders,
        {Value::Int(static_cast<int64_t>(i)), Value::Int(customer_id),
         Value::Int(20080101 + static_cast<int64_t>(i % 365)),
         Value::Double(static_cast<double>(rng.UniformInt(500, 50000)) / 100.0),
         Value::Varchar(statuses[rng.Index(4)])});
  }
  // order_line: ol_id, ol_o_id, ol_i_id, ol_qty, ol_discount
  for (size_t i = 0; i < order_lines; ++i) {
    (void)data->AddRow(schema.order_line,
                       {Value::Int(static_cast<int64_t>(i)),
                        Value::Int(static_cast<int64_t>(i / 3)),  // 3 lines per order
                        Value::Int(rng.UniformInt(0, static_cast<int64_t>(items) - 1)),
                        Value::Int(rng.UniformInt(1, 9)),
                        Value::Double(static_cast<double>(rng.UniformInt(0, 30)) / 100.0)});
  }
  // cc_xacts: cx_id, cx_o_id, cx_type, cx_amount, cx_date — exactly one per
  // order (covering, so the order_payment combine is lossless).
  const char* cc_types[] = {"VISA", "MASTERCARD", "AMEX", "DISCOVER", "DINERS"};
  for (size_t i = 0; i < orders; ++i) {
    (void)data->AddRow(schema.cc_xacts,
                       {Value::Int(static_cast<int64_t>(i)),
                        Value::Int(static_cast<int64_t>(i)),
                        Value::Varchar(cc_types[rng.Index(5)]),
                        Value::Double(static_cast<double>(rng.UniformInt(500, 50000)) / 100.0),
                        Value::Int(20080101 + static_cast<int64_t>(i % 365))});
  }
  return data;
}

}  // namespace pse
