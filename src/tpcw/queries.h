// The experiment's query workload: ten old-version queries (written against
// the source schema) and ten new-version queries (written against the
// object schema), mirroring Section IV.A. The paper does not list its
// queries; these span the TPC-W interactions (browse, detail, login, best
// sellers, order status, ...) with deliberately mixed sensitivity to each
// migration operator, which is what gives the schedule optimization room to
// work (see DESIGN.md).
#pragma once

#include <string>
#include <vector>

#include "core/workload.h"
#include "tpcw/schema.h"

namespace pse {

/// The raw SQL of the ten old-version queries (O1..O10).
std::vector<std::pair<std::string, std::string>> TpcwOldQuerySql();
/// The raw SQL of the ten new-version queries (N1..N10).
std::vector<std::pair<std::string, std::string>> TpcwNewQuerySql();

/// Lifts all twenty queries into the workload (old bound to source, new to
/// object). Order: O1..O10 then N1..N10.
Result<std::vector<WorkloadQuery>> BuildTpcwWorkload(const TpcwSchema& schema);

}  // namespace pse
