// TPC-W bookstore schemas (the paper's Fig 7, rebuilt from the TPC-W spec
// plus the paper's in-text examples).
//
// Source schema = the classical normalized TPC-W subset:
//   country, author, item, address, customer, orders, order_line, cc_xacts
//
// Object schema = the "new application version":
//   item_glossary     = item x author + NEW i_abstract   (CombineTable x2 +
//                       CreateTable — the paper's book/author/abstract
//                       examples)
//   customer_profile  = identity columns + NEW c_tier    (SplitTable +
//                       CreateTable + CombineTable)
//   customer_account  = billing columns                  (the split's other
//                       half)
//   address_full      = address x country                (CombineTable)
//   order_payment     = cc_xacts x orders                (CombineTable; the
//                       1:1 payment-per-order invariant keeps order-anchored
//                       queries exact)
//   order_line        = unchanged
#pragma once

#include <memory>

#include "core/logical_schema.h"
#include "core/physical_schema.h"

namespace pse {

/// The TPC-W logical universe plus both physical schema versions.
/// PhysicalSchema points into `logical`, so this struct is heap-allocated
/// and immovable.
struct TpcwSchema {
  TpcwSchema() = default;
  TpcwSchema(const TpcwSchema&) = delete;
  TpcwSchema& operator=(const TpcwSchema&) = delete;

  LogicalSchema logical;
  PhysicalSchema source;
  PhysicalSchema object;

  // Entity handles.
  EntityId country = kInvalidId;
  EntityId author = kInvalidId;
  EntityId item = kInvalidId;
  EntityId address = kInvalidId;
  EntityId customer = kInvalidId;
  EntityId orders = kInvalidId;
  EntityId order_line = kInvalidId;
  EntityId cc_xacts = kInvalidId;
};

/// Builds the schemas. Never fails for the built-in definition (checked by
/// an internal Validate; a violation would be a programming error).
std::unique_ptr<TpcwSchema> BuildTpcwSchema();

}  // namespace pse
