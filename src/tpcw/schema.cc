#include "tpcw/schema.h"

#include <cassert>

namespace pse {

std::unique_ptr<TpcwSchema> BuildTpcwSchema() {
  auto out = std::make_unique<TpcwSchema>();
  LogicalSchema& L = out->logical;

  // --- entities and attributes (TPC-W naming) ---
  out->country = L.AddEntity("country", "co_id");
  AttrId co_name = *L.AddAttribute(out->country, "co_name", TypeId::kVarchar, 16);
  AttrId co_currency = *L.AddAttribute(out->country, "co_currency", TypeId::kVarchar, 8);
  AttrId co_exchange = *L.AddAttribute(out->country, "co_exchange", TypeId::kDouble);

  out->author = L.AddEntity("author", "a_id");
  AttrId a_fname = *L.AddAttribute(out->author, "a_fname", TypeId::kVarchar, 12);
  AttrId a_lname = *L.AddAttribute(out->author, "a_lname", TypeId::kVarchar, 12);
  AttrId a_bio = *L.AddAttribute(out->author, "a_bio", TypeId::kVarchar, 80);

  out->item = L.AddEntity("item", "i_id");
  AttrId i_title = *L.AddAttribute(out->item, "i_title", TypeId::kVarchar, 24);
  AttrId i_a_id = *L.AddForeignKey(out->item, "i_a_id", out->author);
  AttrId i_pub_date = *L.AddAttribute(out->item, "i_pub_date", TypeId::kInt64);
  AttrId i_subject = *L.AddAttribute(out->item, "i_subject", TypeId::kVarchar, 8);
  AttrId i_desc = *L.AddAttribute(out->item, "i_desc", TypeId::kVarchar, 100);
  AttrId i_cost = *L.AddAttribute(out->item, "i_cost", TypeId::kDouble);
  AttrId i_stock = *L.AddAttribute(out->item, "i_stock", TypeId::kInt64);
  // New in the object schema: the paper's book-abstract example.
  AttrId i_abstract =
      *L.AddAttribute(out->item, "i_abstract", TypeId::kVarchar, 120, /*is_new=*/true);

  out->address = L.AddEntity("address", "addr_id");
  AttrId addr_street = *L.AddAttribute(out->address, "addr_street", TypeId::kVarchar, 24);
  AttrId addr_city = *L.AddAttribute(out->address, "addr_city", TypeId::kVarchar, 16);
  AttrId addr_zip = *L.AddAttribute(out->address, "addr_zip", TypeId::kVarchar, 8);
  AttrId addr_co_id = *L.AddForeignKey(out->address, "addr_co_id", out->country);

  out->customer = L.AddEntity("customer", "c_id");
  AttrId c_uname = *L.AddAttribute(out->customer, "c_uname", TypeId::kVarchar, 16);
  AttrId c_fname = *L.AddAttribute(out->customer, "c_fname", TypeId::kVarchar, 12);
  AttrId c_lname = *L.AddAttribute(out->customer, "c_lname", TypeId::kVarchar, 12);
  AttrId c_email = *L.AddAttribute(out->customer, "c_email", TypeId::kVarchar, 24);
  AttrId c_phone = *L.AddAttribute(out->customer, "c_phone", TypeId::kVarchar, 12);
  AttrId c_since = *L.AddAttribute(out->customer, "c_since", TypeId::kInt64);
  AttrId c_discount = *L.AddAttribute(out->customer, "c_discount", TypeId::kDouble);
  AttrId c_addr_id = *L.AddForeignKey(out->customer, "c_addr_id", out->address);
  AttrId c_data = *L.AddAttribute(out->customer, "c_data", TypeId::kVarchar, 200);
  // New in the object schema: loyalty tier.
  AttrId c_tier = *L.AddAttribute(out->customer, "c_tier", TypeId::kInt64, 0, /*is_new=*/true);

  out->orders = L.AddEntity("orders", "o_id");
  AttrId o_c_id = *L.AddForeignKey(out->orders, "o_c_id", out->customer);
  AttrId o_date = *L.AddAttribute(out->orders, "o_date", TypeId::kInt64);
  AttrId o_total = *L.AddAttribute(out->orders, "o_total", TypeId::kDouble);
  AttrId o_status = *L.AddAttribute(out->orders, "o_status", TypeId::kVarchar, 10);

  out->order_line = L.AddEntity("order_line", "ol_id");
  AttrId ol_o_id = *L.AddForeignKey(out->order_line, "ol_o_id", out->orders);
  AttrId ol_i_id = *L.AddForeignKey(out->order_line, "ol_i_id", out->item);
  AttrId ol_qty = *L.AddAttribute(out->order_line, "ol_qty", TypeId::kInt64);
  AttrId ol_discount = *L.AddAttribute(out->order_line, "ol_discount", TypeId::kDouble);

  out->cc_xacts = L.AddEntity("cc_xacts", "cx_id");
  AttrId cx_o_id = *L.AddForeignKey(out->cc_xacts, "cx_o_id", out->orders);
  AttrId cx_type = *L.AddAttribute(out->cc_xacts, "cx_type", TypeId::kVarchar, 10);
  AttrId cx_amount = *L.AddAttribute(out->cc_xacts, "cx_amount", TypeId::kDouble);
  AttrId cx_date = *L.AddAttribute(out->cc_xacts, "cx_date", TypeId::kInt64);

  // --- source schema: normalized, one table per entity ---
  PhysicalSchema& src = out->source;
  src = PhysicalSchema(&L);
  (void)src.AddTable("country", out->country, {co_name, co_currency, co_exchange});
  (void)src.AddTable("author", out->author, {a_fname, a_lname, a_bio});
  (void)src.AddTable("item", out->item,
                     {i_title, i_a_id, i_pub_date, i_subject, i_desc, i_cost, i_stock});
  (void)src.AddTable("address", out->address, {addr_street, addr_city, addr_zip, addr_co_id});
  (void)src.AddTable("customer", out->customer,
                     {c_uname, c_fname, c_lname, c_email, c_phone, c_since, c_discount,
                      c_addr_id, c_data});
  (void)src.AddTable("orders", out->orders, {o_c_id, o_date, o_total, o_status});
  (void)src.AddTable("order_line", out->order_line, {ol_o_id, ol_i_id, ol_qty, ol_discount});
  (void)src.AddTable("cc_xacts", out->cc_xacts, {cx_o_id, cx_type, cx_amount, cx_date});

  // --- object schema: the new version's layout ---
  PhysicalSchema& obj = out->object;
  obj = PhysicalSchema(&L);
  (void)obj.AddTable("item_glossary", out->item,
                     {i_title, i_a_id, i_pub_date, i_subject, i_desc, i_cost, i_stock,
                      i_abstract, a_fname, a_lname, a_bio});
  (void)obj.AddTable("customer_profile", out->customer,
                     {c_uname, c_fname, c_lname, c_email, c_phone, c_since, c_tier});
  (void)obj.AddTable("customer_account", out->customer, {c_discount, c_addr_id, c_data});
  (void)obj.AddTable("address_full", out->address,
                     {addr_street, addr_city, addr_zip, addr_co_id, co_name, co_currency,
                      co_exchange});
  (void)obj.AddTable("order_payment", out->cc_xacts,
                     {cx_o_id, cx_type, cx_amount, cx_date, o_c_id, o_date, o_total, o_status});
  (void)obj.AddTable("order_line", out->order_line, {ol_o_id, ol_i_id, ol_qty, ol_discount});

  assert(out->source.Validate().ok());
  assert(out->object.Validate().ok());
  return out;
}

}  // namespace pse
