// Workload frequency schedules (Section IV.C / Fig 9).
//
// Frequencies index the BuildTpcwWorkload order: O1..O10 then N1..N10.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace pse {

/// The paper's Fig 9 irregular-frequency matrix, verbatim: 5 phases
/// (P0-P1 .. P4-P5) x 20 queries.
std::vector<std::vector<double>> Fig9IrregularFrequencies();

/// Irregular schedule for an arbitrary number of migration points. For 5
/// points this is exactly Fig 9; for fewer, phase columns are subsampled
/// (start / middle / end); for other counts, random-rate decreasing
/// (old) / increasing (new) series are drawn deterministically from `seed`,
/// anchored at Fig 9's start and end values.
std::vector<std::vector<double>> IrregularFrequencies(size_t points, uint64_t seed = 2009);

/// Regular (determinate-rate) schedule: per query, linear interpolation
/// between Fig 9's first-phase and last-phase frequencies over `points`
/// phases. Used by the Fig 8(e)/(f) Overall-Cost experiments.
std::vector<std::vector<double>> RegularFrequencies(size_t points);

/// Formats a frequency matrix as the paper's Fig 9 table.
std::string FrequenciesToTable(const std::vector<std::vector<double>>& freqs);

}  // namespace pse
