#include "tpcw/queries.h"

#include "core/logical_query.h"

namespace pse {

std::vector<std::pair<std::string, std::string>> TpcwOldQuerySql() {
  return {
      // O1 customer admin lookup by username prefix: full customer row —
      // the split makes this a two-fragment join scan.
      {"O1",
       "SELECT c_uname, c_fname, c_lname, c_phone, c_discount, c_data FROM customer "
       "WHERE c_uname LIKE 'user12%'"},
      // O2 product detail: point lookup + author join.
      {"O2",
       "SELECT i_title, i_cost, i_stock, a_fname, a_lname FROM item "
       "JOIN author ON i_a_id = a_id WHERE i_id = 123"},
      // O3 author search: pure author scan — hurt badly once author is
      // denormalized into the (much larger) item glossary.
      {"O3",
       "SELECT a_id, a_fname, a_lname, a_bio FROM author WHERE a_lname LIKE 'ln2%'"},
      // O4 customer login: single point read of the customer row — the
      // customer split forces two index lookups instead of one.
      {"O4",
       "SELECT c_uname, c_email, c_discount FROM customer WHERE c_id = 77"},
      // O5 best sellers: order_line aggregate (indifferent to every op).
      {"O5",
       "SELECT ol_i_id, SUM(ol_qty) AS total_qty FROM order_line "
       "GROUP BY ol_i_id ORDER BY 2 DESC LIMIT 50"},
      // O6 order status by customer: orders scan — hurt when orders is
      // folded into the wider order_payment table.
      {"O6",
       "SELECT o_id, o_date, o_status, o_total FROM orders WHERE o_c_id = 211"},
      // O7 order lines of one order.
      {"O7",
       "SELECT ol_id, ol_qty, ol_discount FROM order_line WHERE ol_o_id = 55"},
      // O8 shipping address + country: three-way join on source — actually
      // HELPED by the address/country combine (mixed effects are the
      // point).
      {"O8",
       "SELECT addr_street, addr_city, addr_zip, co_name FROM customer "
       "JOIN address ON c_addr_id = addr_id JOIN country ON addr_co_id = co_id "
       "WHERE c_id = 77"},
      // O9 new-products browse: item scan on one subject (narrow item table
      // is ideal; denormalizing author into item widens the scan). Carries
      // the workload's slow-fading frequency row, so the glossary combine
      // stays expensive for old users deep into the migration.
      {"O9",
       "SELECT i_id, i_title, i_pub_date FROM item WHERE i_subject = 'SUBJ5' "
       "ORDER BY 3 DESC LIMIT 50"},
      // O10 payment records of one order: cc_xacts scan — hurt by the
      // order_payment combine (wider rows).
      {"O10",
       "SELECT cx_type, cx_amount, cx_date FROM cc_xacts WHERE cx_o_id = 99"},
  };
}

std::vector<std::pair<std::string, std::string>> TpcwNewQuerySql() {
  return {
      // N1 glossary browse: selective range over the one-stop glossary.
      {"N1",
       "SELECT i_title, a_fname, a_lname, i_abstract FROM item_glossary "
       "WHERE i_id BETWEEN 100 AND 199"},
      // N2 glossary detail: single point read replaces a 3-table gather.
      {"N2",
       "SELECT i_title, i_abstract, a_bio, i_cost FROM item_glossary WHERE i_id = 42"},
      // N3 subject browse incl. author and abstract.
      {"N3",
       "SELECT i_id, i_title, a_lname, i_abstract FROM item_glossary "
       "WHERE i_subject = 'SUBJ3' AND i_cost < 30.0"},
      // N4 profile fetch incl. the NEW loyalty tier.
      {"N4",
       "SELECT c_uname, c_fname, c_lname, c_email, c_tier FROM customer_profile "
       "WHERE c_id = 77"},
      // N5 account panel: narrow billing fragment.
      {"N5",
       "SELECT c_discount, c_data FROM customer_account WHERE c_id = 211"},
      // N6 address card: one-stop address + country.
      {"N6",
       "SELECT addr_street, addr_city, addr_zip, co_name, co_currency FROM address_full "
       "WHERE addr_id = 33"},
      // N7 payment receipt: one-stop payment + order.
      {"N7",
       "SELECT cx_amount, cx_date, o_date, o_total FROM order_payment WHERE cx_id = 99"},
      // N8 order history incl. payment, per customer.
      {"N8",
       "SELECT o_date, o_total, cx_amount FROM order_payment WHERE o_c_id = 211"},
      // N9 author page from the glossary.
      {"N9",
       "SELECT i_id, i_title, i_abstract FROM item_glossary WHERE a_lname LIKE 'ln1%'"},
      // N10 product-page sales panel: point gather of one glossary item and
      // its order lines (one-stop on the object schema).
      {"N10",
       "SELECT ol_qty, ol_discount, i_title, i_abstract FROM order_line "
       "JOIN item_glossary ON ol_i_id = i_id WHERE i_id = 177"},
  };
}

Result<std::vector<WorkloadQuery>> BuildTpcwWorkload(const TpcwSchema& schema) {
  std::vector<WorkloadQuery> out;
  for (const auto& [name, sql] : TpcwOldQuerySql()) {
    PSE_ASSIGN_OR_RETURN(LogicalQuery q, LiftSqlToLogical(sql, schema.source, name));
    out.emplace_back(std::move(q), /*is_old=*/true);
  }
  for (const auto& [name, sql] : TpcwNewQuerySql()) {
    PSE_ASSIGN_OR_RETURN(LogicalQuery q, LiftSqlToLogical(sql, schema.object, name));
    out.emplace_back(std::move(q), /*is_old=*/false);
  }
  return out;
}

}  // namespace pse
