#include "tpcw/workloads.h"

#include <algorithm>
#include <cstdio>

namespace pse {

namespace {
// Fig 9, by query: five per-phase frequencies for O1..O10 then N1..N10.
// (The paper's N10 row is cut off in the text; it mirrors O10 reversed,
// matching every other N row.)
constexpr double kFig9[20][5] = {
    // old
    {50, 40, 30, 20, 10},  // O1
    {12, 8, 5, 3, 2},      // O2
    {40, 35, 30, 10, 5},   // O3
    {7, 6, 5, 1, 1},       // O4
    {30, 28, 12, 6, 4},    // O5
    {22, 20, 10, 6, 2},    // O6
    {70, 30, 25, 15, 10},  // O7
    {30, 10, 5, 3, 2},     // O8
    {45, 43, 41, 40, 11},  // O9
    {40, 38, 35, 32, 15},  // O10
    // new (mirrors)
    {10, 20, 30, 40, 50},  // N1
    {2, 3, 5, 8, 12},      // N2
    {5, 10, 30, 35, 40},   // N3
    {1, 1, 5, 6, 7},       // N4
    {4, 6, 12, 28, 30},    // N5
    {2, 6, 10, 20, 22},    // N6
    {10, 15, 25, 30, 70},  // N7
    {2, 3, 5, 10, 30},     // N8
    {11, 40, 41, 43, 45},  // N9
    {15, 32, 35, 38, 40},  // N10
};
}  // namespace

std::vector<std::vector<double>> Fig9IrregularFrequencies() {
  std::vector<std::vector<double>> out(5, std::vector<double>(20));
  for (size_t p = 0; p < 5; ++p) {
    for (size_t q = 0; q < 20; ++q) out[p][q] = kFig9[q][p];
  }
  return out;
}

namespace {
/// Total stream volume of query q over the whole migration (Fig 9 row sum).
/// Schedules with a different number of points redistribute this SAME
/// volume — "the queries are partitioned into more groups" — which is what
/// makes Overall-Cost fall as migration points increase (Fig 8(e)/(f)).
double RowTotal(size_t q) {
  double total = 0;
  for (size_t p = 0; p < 5; ++p) total += kFig9[q][p];
  return total;
}

/// Scales one query's per-phase series so it sums to the Fig 9 row total.
void NormalizeRow(std::vector<std::vector<double>>* out, size_t q) {
  double sum = 0;
  for (auto& phase : *out) sum += phase[q];
  if (sum <= 0) return;
  double scale = RowTotal(q) / sum;
  for (auto& phase : *out) phase[q] *= scale;
}
}  // namespace

std::vector<std::vector<double>> IrregularFrequencies(size_t points, uint64_t seed) {
  if (points == 5) return Fig9IrregularFrequencies();
  std::vector<std::vector<double>> out;
  if (points == 3) {
    // Subsample start / middle / end columns of Fig 9, then restore the
    // row totals (each of the 3 phases covers a longer stretch of the
    // migration, so it carries proportionally more queries).
    auto five = Fig9IrregularFrequencies();
    out = {five[0], five[2], five[4]};
  } else {
    // General case: random-rate monotone series anchored at Fig 9 ends.
    Rng rng(seed);
    out.assign(points, std::vector<double>(20));
    for (size_t q = 0; q < 20; ++q) {
      double start = kFig9[q][0];
      double end = kFig9[q][4];
      // Random interior cut points, sorted so the series stays monotone.
      std::vector<double> fractions{0.0, 1.0};
      for (size_t p = 0; p + 2 < points; ++p) fractions.push_back(rng.UniformDouble());
      std::sort(fractions.begin(), fractions.end());
      for (size_t p = 0; p < points; ++p) {
        out[p][q] = start + (end - start) * fractions[p];
      }
    }
  }
  for (size_t q = 0; q < 20; ++q) NormalizeRow(&out, q);
  return out;
}

std::vector<std::vector<double>> RegularFrequencies(size_t points) {
  // The workload is ONE fixed stream whose mix drifts linearly over the
  // migration window [0, 1]; with `points` phases, phase p carries the
  // stream integral over its window (midpoint sampling x window volume).
  // This makes schedules with different point counts partitions of the SAME
  // stream, which is what lets finer migration schedules only ever lower
  // the overall cost (Fig 8(e)/(f)).
  std::vector<std::vector<double>> out(points, std::vector<double>(20));
  for (size_t q = 0; q < 20; ++q) {
    double start = kFig9[q][0];
    double end = kFig9[q][4];
    for (size_t p = 0; p < points; ++p) {
      double t = (static_cast<double>(p) + 0.5) / static_cast<double>(points);
      out[p][q] = start + (end - start) * t;
    }
    NormalizeRow(&out, q);
  }
  return out;
}

std::string FrequenciesToTable(const std::vector<std::vector<double>>& freqs) {
  if (freqs.empty()) return "";
  const size_t phases = freqs.size();
  std::string out = "Workload ";
  char buf[64];
  for (size_t p = 0; p < phases; ++p) {
    std::snprintf(buf, sizeof(buf), " P%zu-P%zu", p, p + 1);
    out += buf;
  }
  out += "\n";
  const size_t nq = freqs[0].size();
  for (size_t q = 0; q < nq; ++q) {
    std::string name = q < nq / 2 ? "O" + std::to_string(q + 1)
                                  : "N" + std::to_string(q - nq / 2 + 1);
    std::snprintf(buf, sizeof(buf), "%-9s", name.c_str());
    out += buf;
    for (size_t p = 0; p < phases; ++p) {
      std::snprintf(buf, sizeof(buf), " %6.0f", freqs[p][q]);
      out += buf;
    }
    out += "\n";
    if (q + 1 == nq / 2) out += "\n";  // blank line between old and new
  }
  return out;
}

}  // namespace pse
