#include "engine/planner.h"

#include <algorithm>

#include "common/string_util.h"
#include "engine/cost_model.h"

namespace pse {

namespace {

/// Resolver over a list of output column names: exact match first, then
/// unique unqualified-suffix match ("col" matches "alias.col").
ColumnResolver MakeResolver(const std::vector<std::string>& columns) {
  return [&columns](const std::string& name) -> Result<size_t> {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (EqualsIgnoreCase(columns[i], name)) return i;
    }
    size_t found = columns.size();
    for (size_t i = 0; i < columns.size(); ++i) {
      const std::string& c = columns[i];
      size_t dot = c.find('.');
      if (dot != std::string::npos && EqualsIgnoreCase(c.substr(dot + 1), name)) {
        if (found != columns.size()) {
          return Status::BindError("ambiguous column '" + name + "'");
        }
        found = i;
      }
    }
    if (found == columns.size()) {
      return Status::BindError("column '" + name + "' not found in " + Join(columns, ", "));
    }
    return found;
  };
}

/// Extracted single-column integer bound from a filter conjunct.
struct IndexBound {
  std::string column;
  std::optional<int64_t> lo, hi;
};

/// Splits an expression into AND-ed conjuncts (borrowed pointers).
void SplitConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (const auto* l = dynamic_cast<const LogicExpr*>(e); l && l->op() == LogicOp::kAnd) {
    SplitConjuncts(l->left(), out);
    SplitConjuncts(l->right(), out);
    return;
  }
  out->push_back(e);
}

/// Recognizes `col <op> int-const` (either side) and returns the bound.
std::optional<IndexBound> ExtractBound(const Expr* e) {
  const auto* cmp = dynamic_cast<const CompareExpr*>(e);
  if (cmp == nullptr) return std::nullopt;
  const auto* lcol = dynamic_cast<const ColumnRefExpr*>(cmp->left());
  const auto* rconst = dynamic_cast<const ConstantExpr*>(cmp->right());
  const auto* rcol = dynamic_cast<const ColumnRefExpr*>(cmp->right());
  const auto* lconst = dynamic_cast<const ConstantExpr*>(cmp->left());
  CompareOp op = cmp->op();
  const ColumnRefExpr* col = nullptr;
  const ConstantExpr* cst = nullptr;
  if (lcol != nullptr && rconst != nullptr) {
    col = lcol;
    cst = rconst;
  } else if (rcol != nullptr && lconst != nullptr) {
    col = rcol;
    cst = lconst;
    // Mirror the operator: c < col  ==  col > c.
    switch (op) {
      case CompareOp::kLt:
        op = CompareOp::kGt;
        break;
      case CompareOp::kLe:
        op = CompareOp::kGe;
        break;
      case CompareOp::kGt:
        op = CompareOp::kLt;
        break;
      case CompareOp::kGe:
        op = CompareOp::kLe;
        break;
      default:
        break;
    }
  } else {
    return std::nullopt;
  }
  if (cst->value().is_null() || cst->value().type() != TypeId::kInt64) return std::nullopt;
  int64_t v = cst->value().AsInt();
  IndexBound b;
  b.column = col->name();
  switch (op) {
    case CompareOp::kEq:
      b.lo = v;
      b.hi = v;
      break;
    case CompareOp::kLt:
      b.hi = v - 1;
      break;
    case CompareOp::kLe:
      b.hi = v;
      break;
    case CompareOp::kGt:
      b.lo = v + 1;
      break;
    case CompareOp::kGe:
      b.lo = v;
      break;
    case CompareOp::kNe:
      return std::nullopt;
  }
  return b;
}

/// Builds the scan (+ optional Distinct) subtree for one table access.
Result<PlanPtr> PlanTableAccess(const TableAccess& access, const CatalogView& catalog) {
  PSE_ASSIGN_OR_RETURN(const TableSchema* schema, catalog.GetSchema(access.table));
  auto node = std::make_unique<PlanNode>();
  node->table = access.table;
  node->alias = access.alias.empty() ? access.table : access.alias;

  std::vector<std::string> cols = access.columns;
  if (cols.empty()) {
    // Must produce something; prefer the table key.
    if (!schema->key_columns().empty()) {
      cols.push_back(schema->key_columns()[0]);
    } else {
      cols.push_back(schema->column(0).name);
    }
  }
  for (const auto& c : cols) {
    PSE_ASSIGN_OR_RETURN(size_t idx, schema->ColumnIndex(c));
    node->scan_column_idxs.push_back(idx);
    node->output_columns.push_back(node->alias + "." + schema->column(idx).name);
  }

  // Combine local filters; pick index bounds from the conjuncts.
  std::vector<ExprPtr> filters;
  for (const auto& f : access.filters) filters.push_back(f->Clone());
  ExprPtr combined = AndAll(std::move(filters));

  node->kind = PlanNode::Kind::kSeqScan;
  if (combined) {
    std::vector<const Expr*> conjuncts;
    SplitConjuncts(combined.get(), &conjuncts);
    // Prefer an equality bound, then any range bound, on an indexed column.
    std::optional<IndexBound> best;
    for (const Expr* c : conjuncts) {
      auto b = ExtractBound(c);
      if (!b.has_value()) continue;
      if (!schema->HasColumn(b->column)) continue;
      if (!catalog.HasIndex(access.table, b->column)) continue;
      if (best.has_value() && b->column == best->column) {
        // Merge bounds on the same column (e.g. col >= a AND col <= b).
        if (b->lo.has_value()) {
          best->lo = best->lo.has_value() ? std::max(*best->lo, *b->lo) : *b->lo;
        }
        if (b->hi.has_value()) {
          best->hi = best->hi.has_value() ? std::min(*best->hi, *b->hi) : *b->hi;
        }
        continue;
      }
      bool b_eq = b->lo.has_value() && b->hi.has_value() && *b->lo == *b->hi;
      bool best_eq =
          best.has_value() && best->lo.has_value() && best->hi.has_value() && *best->lo == *best->hi;
      if (!best.has_value() || (b_eq && !best_eq)) best = b;
    }
    if (best.has_value()) {
      node->kind = PlanNode::Kind::kIndexScan;
      node->index_column = best->column;
      node->lo = best->lo;
      node->hi = best->hi;
    }
    // The full predicate stays as the residual scan filter (correctness is
    // independent of the chosen bounds).
    PSE_RETURN_NOT_OK(combined->Resolve(
        [schema](const std::string& n) -> Result<size_t> { return schema->ColumnIndex(n); }));
    node->scan_filter = std::move(combined);
  }

  PlanPtr plan = std::move(node);
  if (access.distinct) {
    auto distinct = std::make_unique<PlanNode>();
    distinct->kind = PlanNode::Kind::kDistinct;
    distinct->output_columns = plan->output_columns;
    if (!access.distinct_key.empty()) {
      distinct->distinct_key_column = plan->output_columns[0];  // refined below
      for (const auto& oc : plan->output_columns) {
        size_t dot = oc.find('.');
        if (dot != std::string::npos && EqualsIgnoreCase(oc.substr(dot + 1), access.distinct_key)) {
          distinct->distinct_key_column = oc;
        }
      }
    }
    distinct->children.push_back(std::move(plan));
    plan = std::move(distinct);
  }
  return plan;
}

}  // namespace

ExprPtr MakeResolvedColumn(const std::string& name, size_t pos) {
  auto col = std::make_unique<ColumnRefExpr>(name);
  // Resolve against a one-shot resolver returning the fixed position.
  Status s = col->Resolve([pos](const std::string&) -> Result<size_t> { return pos; });
  (void)s;  // cannot fail
  return col;
}

Result<PlanPtr> PlanQuery(const BoundQuery& query, const CatalogView& catalog) {
  if (query.tables.empty()) return Status::InvalidArgument("query has no tables");
  if (query.select_items.empty()) return Status::InvalidArgument("query selects nothing");

  // 1. Per-table access plans.
  std::vector<PlanPtr> access_plans;
  for (const auto& t : query.tables) {
    PSE_ASSIGN_OR_RETURN(PlanPtr p, PlanTableAccess(t, catalog));
    access_plans.push_back(std::move(p));
  }

  // 2. Grow a left-deep join tree.
  std::vector<bool> in_tree(query.tables.size(), false);
  PlanPtr current = std::move(access_plans[0]);
  in_tree[0] = true;
  std::vector<EquiJoin> pending = query.joins;
  std::vector<ExprPtr> join_residuals;
  while (!pending.empty()) {
    bool progressed = false;
    for (size_t i = 0; i < pending.size(); ++i) {
      const EquiJoin& j = pending[i];
      bool l_in = in_tree[j.left_table], r_in = in_tree[j.right_table];
      if (l_in && r_in) {
        // Becomes a post-join equality filter.
        join_residuals.push_back(Cmp(CompareOp::kEq,
                                     Col(query.tables[j.left_table].alias + "." + j.left_column),
                                     Col(query.tables[j.right_table].alias + "." + j.right_column)));
        pending.erase(pending.begin() + i);
        progressed = true;
        break;
      }
      if (!l_in && !r_in) continue;  // defer until one side joins the tree
      size_t new_table = l_in ? j.right_table : j.left_table;
      const std::string& tree_col =
          (l_in ? query.tables[j.left_table].alias + "." + j.left_column
                : query.tables[j.right_table].alias + "." + j.right_column);
      const std::string& new_col =
          (l_in ? query.tables[j.right_table].alias + "." + j.right_column
                : query.tables[j.left_table].alias + "." + j.left_column);
      const std::string& new_col_bare = l_in ? j.right_column : j.left_column;

      PlanPtr inner = std::move(access_plans[new_table]);
      auto probe_resolver = MakeResolver(current->output_columns);

      // Index nested-loop when the inner is a plain scan with an index on
      // its join column and the outer is expected to produce few rows
      // relative to the inner's pages.
      bool inner_is_scan = inner->kind == PlanNode::Kind::kSeqScan ||
                           inner->kind == PlanNode::Kind::kIndexScan;
      bool use_inlj = false;
      if (inner_is_scan && catalog.HasIndex(inner->table, new_col_bare)) {
        CostModel model(&catalog);
        auto outer_est = model.Estimate(*current);
        auto inner_stats = catalog.GetStats(inner->table);
        if (outer_est.ok() && inner_stats.ok()) {
          double inner_pages = CostModel::TablePages(**inner_stats);
          double inner_rows = static_cast<double>((*inner_stats)->row_count);
          const ColumnStatistics* cs = (*inner_stats)->Column(new_col_bare);
          double fanout = (cs != nullptr && cs->num_distinct > 0)
                              ? inner_rows / static_cast<double>(cs->num_distinct)
                              : 1.0;
          use_inlj = outer_est->rows * std::max(1.0, fanout) < inner_pages * 0.8;
        }
      }

      if (use_inlj) {
        auto join = std::make_unique<PlanNode>();
        join->kind = PlanNode::Kind::kIndexNLJoin;
        join->table = inner->table;
        join->alias = inner->alias;
        join->scan_column_idxs = inner->scan_column_idxs;
        join->scan_filter = std::move(inner->scan_filter);
        join->index_column = new_col_bare;
        PSE_ASSIGN_OR_RETURN(join->left_key_pos, probe_resolver(tree_col));
        join->output_columns = current->output_columns;
        join->output_columns.insert(join->output_columns.end(),
                                    inner->output_columns.begin(),
                                    inner->output_columns.end());
        join->children.push_back(std::move(current));
        current = std::move(join);
      } else {
        auto join = std::make_unique<PlanNode>();
        join->kind = PlanNode::Kind::kHashJoin;
        // children[0] = build = the newly attached table; children[1] = probe.
        auto build_resolver = MakeResolver(inner->output_columns);
        PSE_ASSIGN_OR_RETURN(join->left_key_pos, build_resolver(new_col));
        PSE_ASSIGN_OR_RETURN(join->right_key_pos, probe_resolver(tree_col));
        join->output_columns = inner->output_columns;
        join->output_columns.insert(join->output_columns.end(),
                                    current->output_columns.begin(),
                                    current->output_columns.end());
        join->children.push_back(std::move(inner));
        join->children.push_back(std::move(current));
        current = std::move(join);
      }
      in_tree[new_table] = true;
      pending.erase(pending.begin() + i);
      progressed = true;
      break;
    }
    if (!progressed) return Status::BindError("disconnected join graph");
  }
  for (size_t i = 0; i < in_tree.size(); ++i) {
    if (!in_tree[i]) {
      return Status::BindError("table '" + query.tables[i].alias + "' is not joined");
    }
  }

  // 3. Residual filters (join-to-filter conversions + global filters).
  std::vector<ExprPtr> residuals = std::move(join_residuals);
  for (const auto& f : query.global_filters) residuals.push_back(f->Clone());
  if (ExprPtr combined = AndAll(std::move(residuals))) {
    PSE_RETURN_NOT_OK(combined->Resolve(MakeResolver(current->output_columns)));
    auto filter = std::make_unique<PlanNode>();
    filter->kind = PlanNode::Kind::kFilter;
    filter->output_columns = current->output_columns;
    filter->predicate = std::move(combined);
    filter->children.push_back(std::move(current));
    current = std::move(filter);
  }

  // 4. Aggregation or plain projection.
  if (query.HasAggregation()) {
    // Validate: plain select items must match a GROUP BY expression.
    for (const auto& s : query.select_items) {
      if (s.agg != AggFunc::kNone) continue;
      bool matched = false;
      for (const auto& g : query.group_by) {
        if (EqualsIgnoreCase(g->ToString(), s.expr->ToString())) matched = true;
      }
      if (!matched) {
        return Status::BindError("select item '" + s.expr->ToString() +
                                 "' is neither aggregated nor grouped");
      }
    }
    // Pre-project: group exprs then agg args.
    auto pre = std::make_unique<PlanNode>();
    pre->kind = PlanNode::Kind::kProject;
    auto resolver = MakeResolver(current->output_columns);
    for (const auto& g : query.group_by) {
      ExprPtr e = g->Clone();
      PSE_RETURN_NOT_OK(e->Resolve(resolver));
      pre->output_columns.push_back(g->ToString());
      pre->projections.push_back(std::move(e));
    }
    size_t group_n = query.group_by.size();
    std::vector<size_t> agg_arg_pos(query.select_items.size(), 0);
    size_t next_arg = group_n;
    for (size_t i = 0; i < query.select_items.size(); ++i) {
      const auto& s = query.select_items[i];
      if (s.agg == AggFunc::kNone || s.agg == AggFunc::kCountStar) continue;
      ExprPtr e = s.expr->Clone();
      PSE_RETURN_NOT_OK(e->Resolve(resolver));
      pre->output_columns.push_back("argof." + s.name);
      pre->projections.push_back(std::move(e));
      agg_arg_pos[i] = next_arg++;
    }
    pre->children.push_back(std::move(current));
    current = std::move(pre);

    // Aggregate node.
    auto agg = std::make_unique<PlanNode>();
    agg->kind = PlanNode::Kind::kAggregate;
    for (size_t g = 0; g < group_n; ++g) {
      agg->group_by_pos.push_back(g);
      agg->output_columns.push_back(current->output_columns[g]);
    }
    std::vector<size_t> select_to_agg_out(query.select_items.size(), 0);
    for (size_t i = 0; i < query.select_items.size(); ++i) {
      const auto& s = query.select_items[i];
      if (s.agg == AggFunc::kNone) continue;
      PlanAggSpec spec;
      spec.func = s.agg;
      spec.arg_pos = agg_arg_pos[i];
      select_to_agg_out[i] = group_n + agg->aggs.size();
      agg->aggs.push_back(spec);
      agg->output_columns.push_back(s.name);
    }
    agg->children.push_back(std::move(current));
    current = std::move(agg);

    // Final project mapping select items onto aggregate output.
    auto post = std::make_unique<PlanNode>();
    post->kind = PlanNode::Kind::kProject;
    for (size_t i = 0; i < query.select_items.size(); ++i) {
      const auto& s = query.select_items[i];
      size_t pos;
      if (s.agg == AggFunc::kNone) {
        // Find the matching group column by display string.
        pos = current->output_columns.size();
        for (size_t g = 0; g < group_n; ++g) {
          if (EqualsIgnoreCase(current->output_columns[g], s.expr->ToString())) pos = g;
        }
        if (pos == current->output_columns.size()) {
          return Status::Internal("group column lookup failed for " + s.expr->ToString());
        }
      } else {
        pos = select_to_agg_out[i];
      }
      post->projections.push_back(MakeResolvedColumn(s.name, pos));
      post->output_columns.push_back(s.name);
    }
    post->children.push_back(std::move(current));
    current = std::move(post);

    if (query.having) {
      ExprPtr pred = query.having->Clone();
      PSE_RETURN_NOT_OK(pred->Resolve(MakeResolver(current->output_columns)));
      auto having = std::make_unique<PlanNode>();
      having->kind = PlanNode::Kind::kFilter;
      having->output_columns = current->output_columns;
      having->predicate = std::move(pred);
      having->children.push_back(std::move(current));
      current = std::move(having);
    }
  } else {
    if (query.having) {
      return Status::BindError("HAVING requires aggregation");
    }
    auto proj = std::make_unique<PlanNode>();
    proj->kind = PlanNode::Kind::kProject;
    auto resolver = MakeResolver(current->output_columns);
    for (const auto& s : query.select_items) {
      ExprPtr e = s.expr->Clone();
      PSE_RETURN_NOT_OK(e->Resolve(resolver));
      proj->projections.push_back(std::move(e));
      proj->output_columns.push_back(s.name);
    }
    proj->children.push_back(std::move(current));
    current = std::move(proj);
    if (query.select_distinct) {
      auto distinct = std::make_unique<PlanNode>();
      distinct->kind = PlanNode::Kind::kDistinct;
      distinct->output_columns = current->output_columns;
      distinct->children.push_back(std::move(current));
      current = std::move(distinct);
    }
  }

  // 5. Sort.
  if (!query.order_by.empty()) {
    auto sort = std::make_unique<PlanNode>();
    sort->kind = PlanNode::Kind::kSort;
    sort->output_columns = current->output_columns;
    for (const auto& k : query.order_by) {
      if (k.select_index >= current->output_columns.size()) {
        return Status::BindError("ORDER BY index out of range");
      }
      sort->sort_keys.push_back(PlanSortKey{k.select_index, k.desc});
    }
    sort->children.push_back(std::move(current));
    current = std::move(sort);
  }

  // 6. Limit.
  if (query.limit.has_value()) {
    auto limit = std::make_unique<PlanNode>();
    limit->kind = PlanNode::Kind::kLimit;
    limit->output_columns = current->output_columns;
    limit->limit_n = *query.limit;
    limit->children.push_back(std::move(current));
    current = std::move(limit);
  }

  return current;
}

}  // namespace pse
