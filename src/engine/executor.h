// Volcano-style executors: each plan node becomes a pull-based iterator.
// Physical I/O flows through the Database's buffer pool, so executed plans
// are measured by the same counters the experiments report.
#pragma once

#include <memory>
#include <vector>

#include "engine/plan.h"
#include "storage/database.h"

namespace pse {

/// \brief Pull-based plan operator.
class Executor {
 public:
  virtual ~Executor() = default;
  /// Prepares the operator (may consume blocking inputs, e.g. sort/agg).
  virtual Status Init() = 0;
  /// Produces the next row into `out`; returns false at end of stream.
  virtual Result<bool> Next(Row* out) = 0;
};

/// Builds the executor tree for a planned query.
Result<std::unique_ptr<Executor>> BuildExecutor(const PlanNode& plan, Database* db);

/// Convenience: builds, runs, and collects all output rows.
Result<std::vector<Row>> ExecutePlan(const PlanNode& plan, Database* db);

}  // namespace pse
