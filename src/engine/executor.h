// Volcano-style executors: each plan node becomes a pull-based iterator.
// Physical I/O flows through the Database's buffer pool, so executed plans
// are measured by the same counters the experiments report.
#pragma once

#include <memory>
#include <vector>

#include "engine/plan.h"
#include "storage/database.h"

namespace pse {

/// \brief Engine selection and tuning knobs, shared by both engines.
///
/// The row engine stays the default; the vectorized engine is opt-in per
/// call site (serve lanes, probe queries, benches) or process-wide via the
/// PSE_VECTORIZED=1 environment variable (how CI forces the flag on for the
/// differential oracle and the stress suites without plumbing).
struct ExecOptions {
  /// Batch-at-a-time engine (TupleBatch + selection vectors).
  bool vectorized = false;
  /// Rows per TupleBatch in the vectorized engine.
  size_t batch_rows = 1024;
  /// Row engine: move pass-through projection columns out of the child row
  /// instead of re-evaluating ColumnRef expressions (zero-copy fast path).
  bool zero_copy_project = true;

  /// Process defaults: `vectorized` is forced on when PSE_VECTORIZED=1.
  static ExecOptions Default();
};

/// \brief Pull-based plan operator.
class Executor {
 public:
  virtual ~Executor() = default;
  /// Prepares the operator (may consume blocking inputs, e.g. sort/agg).
  virtual Status Init() = 0;
  /// Produces the next row into `out`; returns false at end of stream.
  virtual Result<bool> Next(Row* out) = 0;
};

/// Builds the row-engine executor tree for a planned query.
Result<std::unique_ptr<Executor>> BuildExecutor(const PlanNode& plan, Database* db);
Result<std::unique_ptr<Executor>> BuildExecutor(const PlanNode& plan, Database* db,
                                                const ExecOptions& options);

/// Convenience: builds, runs, and collects all output rows. Dispatches to
/// the engine `options` selects (the no-options overload uses
/// ExecOptions::Default()).
Result<std::vector<Row>> ExecutePlan(const PlanNode& plan, Database* db);
Result<std::vector<Row>> ExecutePlan(const PlanNode& plan, Database* db,
                                     const ExecOptions& options);

}  // namespace pse
