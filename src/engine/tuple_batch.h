// Columnar batch of rows plus an optional selection vector — the unit of
// work in the vectorized engine. Operators pass batches instead of single
// rows, so per-tuple virtual dispatch and Result<> wrapping amortize over
// ~1024 rows at a time.
//
// Layout: one std::vector<Value> per column, all of equal length
// (`num_rows()`, the *physical* row count). A selection vector, when
// installed, names the live physical row indices in ascending order;
// filters narrow it without copying any Value. `size()` is the live count.
#pragma once

#include <cstdint>
#include <vector>

#include "catalog/tuple.h"
#include "catalog/value.h"

namespace pse {

class TupleBatch {
 public:
  /// Target rows per batch; chosen so a batch of int columns stays cache
  /// resident while still amortizing per-batch overhead.
  static constexpr size_t kDefaultRows = 1024;

  TupleBatch() = default;

  /// Clears and shapes the batch: `num_cols` empty columns, each with
  /// `capacity` rows reserved. Drops any selection vector.
  void Reset(size_t num_cols, size_t capacity = kDefaultRows);

  size_t num_cols() const { return cols_.size(); }
  /// Physical rows stored (before selection).
  size_t num_rows() const { return num_rows_; }
  /// Live rows (after selection).
  size_t size() const { return use_sel_ ? sel_.size() : num_rows_; }
  bool empty() const { return size() == 0; }

  bool has_sel() const { return use_sel_; }
  const std::vector<uint32_t>& sel() const { return sel_; }
  /// Physical index of the i-th live row.
  size_t SelIndex(size_t i) const { return use_sel_ ? sel_[i] : i; }

  /// Installs a selection vector (ascending physical indices < num_rows()).
  void SetSel(std::vector<uint32_t> sel) {
    sel_ = std::move(sel);
    use_sel_ = true;
  }
  /// Drops the selection vector; every physical row is live again.
  void ClearSel() {
    use_sel_ = false;
    sel_.clear();
  }

  std::vector<Value>& col(size_t c) { return cols_[c]; }
  const std::vector<Value>& col(size_t c) const { return cols_[c]; }
  const Value& At(size_t c, size_t physical_row) const { return cols_[c][physical_row]; }

  /// Appends one physical row. Must not be called while a selection vector
  /// is installed (the selection would silently exclude the new row).
  void AppendRow(const Row& row);
  void AppendRow(Row&& row);

  /// Declares the physical row count after columns were written directly
  /// (bypassing AppendRow). Every column must hold exactly `n` values.
  void SetNumRows(size_t n) { num_rows_ = n; }

  /// Materializes the physical row at `physical_row`.
  Row RowAt(size_t physical_row) const;
  /// Moves the physical row out, leaving moved-from values behind. Only
  /// valid when the caller owns the batch and will Reset() before reuse.
  void MoveRowOut(size_t physical_row, Row* out);
  /// Appends every live row to `out` as materialized rows, in order.
  void EmitRows(std::vector<Row>* out) const;

  /// Rewrites live rows down to physical positions [0, size()) and drops
  /// the selection vector.
  void Compact();

 private:
  std::vector<std::vector<Value>> cols_;
  size_t num_rows_ = 0;
  bool use_sel_ = false;
  std::vector<uint32_t> sel_;
};

}  // namespace pse
