// Vector expression evaluators: a scalar Expr tree compiled once per query
// into a tree of column-at-a-time evaluators. Each node fills (or borrows) a
// Value vector for the live rows of a TupleBatch, so the per-row cost is a
// tight loop instead of a virtual Eval() returning Result<Value>.
//
// Semantics are bit-for-bit those of Expr::Eval (three-valued logic, NULL
// propagation types, div-by-zero degrading to NULL, LIKE's string-operand
// check) — the differential oracle and the seeded property test in
// tests/engine/tuple_batch_test.cc hold the two evaluators equal. The one
// intentional difference: logic operands are evaluated eagerly for the whole
// batch instead of short-circuited per row, which is observationally equal
// because operand errors are type errors the binder already rejects.
#pragma once

#include <memory>
#include <vector>

#include "engine/expr.h"
#include "engine/tuple_batch.h"

namespace pse {

/// \brief Compiled vector evaluator for one resolved scalar Expr tree.
///
/// Movable, not copyable; scratch vectors live in the nodes and are reused
/// across batches.
class ExprVecExecutor {
 public:
  class Node;

  ExprVecExecutor();
  ExprVecExecutor(ExprVecExecutor&&) noexcept;
  ExprVecExecutor& operator=(ExprVecExecutor&&) noexcept;
  ~ExprVecExecutor();

  /// Compiles `expr`; every ColumnRef must already be resolved.
  static Result<ExprVecExecutor> Create(const Expr& expr);

  /// True once Create() succeeded (default-constructed executors are inert).
  bool valid() const { return root_ != nullptr; }

  /// Evaluates over the live rows of `batch`. On return `*out` points at a
  /// vector of at least batch.num_rows() values in which every live
  /// physical index holds the expression result; dead indices are
  /// unspecified. The pointer stays valid until the next Eval call.
  Status Eval(const TupleBatch& batch, const std::vector<Value>** out);

  /// Predicate form: keeps the live rows where the expression is non-NULL
  /// true, writing their physical indices to `sel` (ascending). NULL counts
  /// as false; a non-NULL non-boolean result is InvalidArgument, matching
  /// EvalPredicate.
  Status EvalSelect(const TupleBatch& batch, std::vector<uint32_t>* sel);

 private:
  explicit ExprVecExecutor(std::unique_ptr<Node> root);

  std::unique_ptr<Node> root_;
};

}  // namespace pse
