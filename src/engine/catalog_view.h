// CatalogView: the read-only catalog interface the planner and cost
// estimator consume. Implemented by a live Database and — crucially for the
// paper's machinery — by VirtualSchemaCatalog (src/core/), which describes
// candidate intermediate schemas that are never materialized.
#pragma once

#include <string>

#include "catalog/schema.h"
#include "catalog/statistics.h"
#include "common/status.h"
#include "storage/database.h"

namespace pse {

/// Read-only schema/statistics/index metadata for planning and costing.
class CatalogView {
 public:
  virtual ~CatalogView() = default;
  /// Schema of a table. NotFound if absent.
  virtual Result<const TableSchema*> GetSchema(const std::string& table) const = 0;
  /// Statistics of a table (must be populated/synthesized by the provider).
  virtual Result<const TableStatistics*> GetStats(const std::string& table) const = 0;
  /// True if an index exists on table.column.
  virtual bool HasIndex(const std::string& table, const std::string& column) const = 0;
};

/// CatalogView backed by a live Database. Stats must have been computed via
/// Analyze(); GetStats falls back to row-count-only stats otherwise.
class DatabaseCatalogView : public CatalogView {
 public:
  explicit DatabaseCatalogView(const Database* db) : db_(db) {}

  Result<const TableSchema*> GetSchema(const std::string& table) const override {
    PSE_ASSIGN_OR_RETURN(const TableInfo* t, db_->GetTable(table));
    return t->schema.get();
  }

  Result<const TableStatistics*> GetStats(const std::string& table) const override {
    PSE_ASSIGN_OR_RETURN(const TableInfo* t, db_->GetTable(table));
    return &t->stats;
  }

  bool HasIndex(const std::string& table, const std::string& column) const override {
    auto t = db_->GetTable(table);
    if (!t.ok()) return false;
    return (*t)->FindIndex(column) != nullptr;
  }

 private:
  const Database* db_;
};

}  // namespace pse
