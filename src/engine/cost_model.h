// Analytical cost estimator. Walks a physical plan and predicts page I/O
// and cardinality from catalog statistics, WITHOUT touching data. This is
// the reproduction's stand-in for SAP MaxDB's optimizer cost estimates: the
// evolution layer prices candidate intermediate schemas by running this
// estimator over a VirtualSchemaCatalog.
//
// Model (matching how the executors actually behave):
//   seq scan     io = table pages
//   index scan   io = tree height + matching leaf pages + min(matches, pages)
//   hash join    io = build io + probe io    (hash table lives in memory)
//   sort/agg     io = child io               (in-memory)
//   limit        scales a streaming child's io by the fraction consumed
#pragma once

#include <functional>
#include <string>

#include "engine/catalog_view.h"
#include "engine/plan.h"

namespace pse {

/// Estimator output for one plan (sub)tree.
struct CostEstimate {
  double io_pages = 0;  ///< predicted physical page accesses
  double rows = 0;      ///< predicted output cardinality
  double width = 0;     ///< average output row width in bytes
};

/// \brief Statistics-driven plan cost estimator.
class CostModel {
 public:
  explicit CostModel(const CatalogView* catalog) : catalog_(catalog) {}

  /// Estimates a full plan tree.
  Result<CostEstimate> Estimate(const PlanNode& plan) const;

  /// Estimated selectivity of `filter` against a single table's stats
  /// (column names resolved unqualified). Exposed for tests.
  double FilterSelectivity(const Expr& filter, const std::string& table) const;

  /// Pages of a table given its stats (falls back to rows*width when the
  /// provider reports no page count).
  static double TablePages(const TableStatistics& stats);

 private:
  struct Context;  // alias -> table mapping collected from scans
  Result<CostEstimate> EstimateNode(const PlanNode& plan, Context* ctx) const;
  /// Column stats lookup used during selectivity estimation; returns nullptr
  /// when unknown.
  const ColumnStatistics* LookupColumn(const Context& ctx, const std::string& name,
                                       uint64_t* table_rows) const;
  double Selectivity(const Expr& e, const Context& ctx) const;

  const CatalogView* catalog_;
};

}  // namespace pse
