// Planner: lowers a BoundQuery into a physical PlanNode tree.
//
// Plan shape: per-table scans (index scan when a BIGINT filter matches an
// index) -> optional per-access Distinct -> left-deep hash joins following
// the join graph -> residual Filter -> Aggregate/Project -> Distinct ->
// Sort -> Limit. Column references are resolved to positions during
// planning; the returned tree is ready for both costing and execution.
#pragma once

#include "engine/bound_query.h"
#include "engine/catalog_view.h"
#include "engine/plan.h"

namespace pse {

/// Builds an executable physical plan for `query` against `catalog`.
Result<PlanPtr> PlanQuery(const BoundQuery& query, const CatalogView& catalog);

/// Makes a pre-resolved column reference (helper for plan construction).
ExprPtr MakeResolvedColumn(const std::string& name, size_t pos);

}  // namespace pse
