#include "engine/tuple_batch.h"

#include <algorithm>
#include <utility>

namespace pse {

void TupleBatch::Reset(size_t num_cols, size_t capacity) {
  cols_.resize(num_cols);
  for (auto& col : cols_) {
    col.clear();
    if (col.capacity() < capacity) col.reserve(capacity);
  }
  num_rows_ = 0;
  use_sel_ = false;
  sel_.clear();
}

void TupleBatch::AppendRow(const Row& row) {
  for (size_t c = 0; c < cols_.size(); ++c) cols_[c].push_back(row[c]);
  ++num_rows_;
}

void TupleBatch::AppendRow(Row&& row) {
  for (size_t c = 0; c < cols_.size(); ++c) cols_[c].push_back(std::move(row[c]));
  ++num_rows_;
}

Row TupleBatch::RowAt(size_t physical_row) const {
  Row out;
  out.reserve(cols_.size());
  for (const auto& col : cols_) out.push_back(col[physical_row]);
  return out;
}

void TupleBatch::MoveRowOut(size_t physical_row, Row* out) {
  out->clear();
  out->reserve(cols_.size());
  for (auto& col : cols_) out->push_back(std::move(col[physical_row]));
}

void TupleBatch::EmitRows(std::vector<Row>* out) const {
  const size_t n = size();
  // Grow geometrically: an exact reserve() per batch would reallocate `out`
  // on every call, moving all previously emitted rows each time.
  if (out->capacity() < out->size() + n) {
    out->reserve(std::max(out->size() + n, out->capacity() * 2));
  }
  for (size_t i = 0; i < n; ++i) out->push_back(RowAt(SelIndex(i)));
}

void TupleBatch::Compact() {
  if (!use_sel_) return;
  for (auto& col : cols_) {
    for (size_t i = 0; i < sel_.size(); ++i) {
      if (i != sel_[i]) col[i] = std::move(col[sel_[i]]);
    }
    col.resize(sel_.size());
  }
  num_rows_ = sel_.size();
  ClearSel();
}

}  // namespace pse
