#include "engine/expr_vec.h"

#include <utility>

#include "common/string_util.h"

namespace pse {

/// One compiled node. Eval() returns a pointer to either a borrowed column
/// (ColumnRef) or the node's own scratch vector, sized to the batch's
/// physical row count so results index by physical position.
class ExprVecExecutor::Node {
 public:
  virtual ~Node() = default;
  virtual Result<const std::vector<Value>*> Eval(const TupleBatch& batch) = 0;

 protected:
  /// Grows (never shrinks) the scratch to cover every physical index.
  std::vector<Value>* Scratch(size_t num_rows) {
    if (scratch_.size() < num_rows) scratch_.resize(num_rows);
    return &scratch_;
  }

 private:
  std::vector<Value> scratch_;
};

namespace {

using Node = ExprVecExecutor::Node;
using NodePtr = std::unique_ptr<Node>;

class ColumnRefNode : public Node {
 public:
  explicit ColumnRefNode(size_t pos) : pos_(pos) {}
  Result<const std::vector<Value>*> Eval(const TupleBatch& batch) override {
    if (pos_ >= batch.num_cols()) {
      return Status::Internal("column position " + std::to_string(pos_) + " out of batch");
    }
    return &batch.col(pos_);
  }

 private:
  size_t pos_;
};

class ConstantNode : public Node {
 public:
  explicit ConstantNode(Value v) : value_(std::move(v)) {}
  Result<const std::vector<Value>*> Eval(const TupleBatch& batch) override {
    // The constant never changes, so previously filled entries stay valid
    // and only the tail beyond the largest batch seen so far is written.
    if (filled_ < batch.num_rows()) {
      std::vector<Value>* out = Scratch(batch.num_rows());
      for (size_t i = filled_; i < out->size(); ++i) (*out)[i] = value_;
      filled_ = out->size();
    }
    return Scratch(batch.num_rows());
  }

 private:
  Value value_;
  size_t filled_ = 0;
};

class CompareNode : public Node {
 public:
  CompareNode(CompareOp op, NodePtr l, NodePtr r)
      : op_(op), left_(std::move(l)), right_(std::move(r)) {}
  Result<const std::vector<Value>*> Eval(const TupleBatch& batch) override {
    PSE_ASSIGN_OR_RETURN(const std::vector<Value>* lv, left_->Eval(batch));
    PSE_ASSIGN_OR_RETURN(const std::vector<Value>* rv, right_->Eval(batch));
    std::vector<Value>* out = Scratch(batch.num_rows());
    const size_t n = batch.size();
    for (size_t i = 0; i < n; ++i) {
      const size_t p = batch.SelIndex(i);
      const Value& l = (*lv)[p];
      const Value& r = (*rv)[p];
      if (l.is_null() || r.is_null()) {
        (*out)[p] = Value::Null(TypeId::kBoolean);
        continue;
      }
      const int c = l.Compare(r);
      bool pass = false;
      switch (op_) {
        case CompareOp::kEq: pass = c == 0; break;
        case CompareOp::kNe: pass = c != 0; break;
        case CompareOp::kLt: pass = c < 0; break;
        case CompareOp::kLe: pass = c <= 0; break;
        case CompareOp::kGt: pass = c > 0; break;
        case CompareOp::kGe: pass = c >= 0; break;
      }
      (*out)[p] = Value::Bool(pass);
    }
    return out;
  }

 private:
  CompareOp op_;
  NodePtr left_, right_;
};

class LogicNode : public Node {
 public:
  LogicNode(LogicOp op, NodePtr l, NodePtr r)
      : op_(op), left_(std::move(l)), right_(std::move(r)) {}
  Result<const std::vector<Value>*> Eval(const TupleBatch& batch) override {
    PSE_ASSIGN_OR_RETURN(const std::vector<Value>* lv, left_->Eval(batch));
    PSE_ASSIGN_OR_RETURN(const std::vector<Value>* rv, right_->Eval(batch));
    std::vector<Value>* out = Scratch(batch.num_rows());
    const size_t n = batch.size();
    for (size_t i = 0; i < n; ++i) {
      const size_t p = batch.SelIndex(i);
      const Value& l = (*lv)[p];
      const Value& r = (*rv)[p];
      const bool l_null = l.is_null();
      const bool r_null = r.is_null();
      const bool l_true = !l_null && l.AsBool();
      const bool r_true = !r_null && r.AsBool();
      if (op_ == LogicOp::kAnd) {
        if ((!l_null && !l_true) || (!r_null && !r_true)) {
          (*out)[p] = Value::Bool(false);
        } else if (l_null || r_null) {
          (*out)[p] = Value::Null(TypeId::kBoolean);
        } else {
          (*out)[p] = Value::Bool(true);
        }
      } else {
        if (l_true || r_true) {
          (*out)[p] = Value::Bool(true);
        } else if (l_null || r_null) {
          (*out)[p] = Value::Null(TypeId::kBoolean);
        } else {
          (*out)[p] = Value::Bool(false);
        }
      }
    }
    return out;
  }

 private:
  LogicOp op_;
  NodePtr left_, right_;
};

class NotNode : public Node {
 public:
  explicit NotNode(NodePtr child) : child_(std::move(child)) {}
  Result<const std::vector<Value>*> Eval(const TupleBatch& batch) override {
    PSE_ASSIGN_OR_RETURN(const std::vector<Value>* cv, child_->Eval(batch));
    std::vector<Value>* out = Scratch(batch.num_rows());
    const size_t n = batch.size();
    for (size_t i = 0; i < n; ++i) {
      const size_t p = batch.SelIndex(i);
      const Value& v = (*cv)[p];
      (*out)[p] = v.is_null() ? Value::Null(TypeId::kBoolean) : Value::Bool(!v.AsBool());
    }
    return out;
  }

 private:
  NodePtr child_;
};

class ArithNode : public Node {
 public:
  ArithNode(ArithOp op, NodePtr l, NodePtr r)
      : op_(op), left_(std::move(l)), right_(std::move(r)) {}
  Result<const std::vector<Value>*> Eval(const TupleBatch& batch) override {
    PSE_ASSIGN_OR_RETURN(const std::vector<Value>* lv, left_->Eval(batch));
    PSE_ASSIGN_OR_RETURN(const std::vector<Value>* rv, right_->Eval(batch));
    std::vector<Value>* out = Scratch(batch.num_rows());
    const size_t n = batch.size();
    for (size_t i = 0; i < n; ++i) {
      const size_t p = batch.SelIndex(i);
      const Value& l = (*lv)[p];
      const Value& r = (*rv)[p];
      if (l.is_null() || r.is_null()) {
        (*out)[p] = Value::Null(TypeId::kDouble);
        continue;
      }
      const bool both_int = l.type() == TypeId::kInt64 && r.type() == TypeId::kInt64;
      if (both_int && op_ != ArithOp::kDiv) {
        const int64_t a = l.AsInt();
        const int64_t b = r.AsInt();
        switch (op_) {
          case ArithOp::kAdd: (*out)[p] = Value::Int(a + b); break;
          case ArithOp::kSub: (*out)[p] = Value::Int(a - b); break;
          case ArithOp::kMul: (*out)[p] = Value::Int(a * b); break;
          default: break;
        }
        continue;
      }
      const double a = l.AsDouble();
      const double b = r.AsDouble();
      switch (op_) {
        case ArithOp::kAdd: (*out)[p] = Value::Double(a + b); break;
        case ArithOp::kSub: (*out)[p] = Value::Double(a - b); break;
        case ArithOp::kMul: (*out)[p] = Value::Double(a * b); break;
        case ArithOp::kDiv:
          // SQL: error; we degrade to NULL, matching ArithExpr::Eval.
          (*out)[p] = b == 0.0 ? Value::Null(TypeId::kDouble) : Value::Double(a / b);
          break;
      }
    }
    return out;
  }

 private:
  ArithOp op_;
  NodePtr left_, right_;
};

class LikeNode : public Node {
 public:
  LikeNode(NodePtr child, std::string pattern, bool negated)
      : child_(std::move(child)), pattern_(std::move(pattern)), negated_(negated) {}
  Result<const std::vector<Value>*> Eval(const TupleBatch& batch) override {
    PSE_ASSIGN_OR_RETURN(const std::vector<Value>* cv, child_->Eval(batch));
    std::vector<Value>* out = Scratch(batch.num_rows());
    const size_t n = batch.size();
    for (size_t i = 0; i < n; ++i) {
      const size_t p = batch.SelIndex(i);
      const Value& v = (*cv)[p];
      if (v.is_null()) {
        (*out)[p] = Value::Null(TypeId::kBoolean);
        continue;
      }
      if (v.type() != TypeId::kVarchar) {
        return Status::InvalidArgument("LIKE requires a string operand");
      }
      const bool m = LikeMatch(v.AsString(), pattern_);
      (*out)[p] = Value::Bool(negated_ ? !m : m);
    }
    return out;
  }

 private:
  NodePtr child_;
  std::string pattern_;
  bool negated_;
};

class IsNullNode : public Node {
 public:
  IsNullNode(NodePtr child, bool negated) : child_(std::move(child)), negated_(negated) {}
  Result<const std::vector<Value>*> Eval(const TupleBatch& batch) override {
    PSE_ASSIGN_OR_RETURN(const std::vector<Value>* cv, child_->Eval(batch));
    std::vector<Value>* out = Scratch(batch.num_rows());
    const size_t n = batch.size();
    for (size_t i = 0; i < n; ++i) {
      const size_t p = batch.SelIndex(i);
      const bool null = (*cv)[p].is_null();
      (*out)[p] = Value::Bool(negated_ ? !null : null);
    }
    return out;
  }

 private:
  NodePtr child_;
  bool negated_;
};

class InListNode : public Node {
 public:
  InListNode(NodePtr child, std::vector<Value> values, bool negated)
      : child_(std::move(child)), values_(std::move(values)), negated_(negated) {}
  Result<const std::vector<Value>*> Eval(const TupleBatch& batch) override {
    PSE_ASSIGN_OR_RETURN(const std::vector<Value>* cv, child_->Eval(batch));
    std::vector<Value>* out = Scratch(batch.num_rows());
    const size_t n = batch.size();
    for (size_t i = 0; i < n; ++i) {
      const size_t p = batch.SelIndex(i);
      const Value& v = (*cv)[p];
      if (v.is_null()) {
        (*out)[p] = Value::Null(TypeId::kBoolean);
        continue;
      }
      bool found = false;
      for (const auto& item : values_) {
        if (v.SqlEquals(item)) {
          found = true;
          break;
        }
      }
      (*out)[p] = Value::Bool(negated_ ? !found : found);
    }
    return out;
  }

 private:
  NodePtr child_;
  std::vector<Value> values_;
  bool negated_;
};

Result<NodePtr> Compile(const Expr& expr) {
  if (const auto* col = dynamic_cast<const ColumnRefExpr*>(&expr)) {
    if (!col->resolved()) {
      return Status::Internal("unresolved column '" + col->name() + "' in vector compile");
    }
    return NodePtr(new ColumnRefNode(col->position()));
  }
  if (const auto* cst = dynamic_cast<const ConstantExpr*>(&expr)) {
    return NodePtr(new ConstantNode(cst->value()));
  }
  if (const auto* cmp = dynamic_cast<const CompareExpr*>(&expr)) {
    PSE_ASSIGN_OR_RETURN(NodePtr l, Compile(*cmp->left()));
    PSE_ASSIGN_OR_RETURN(NodePtr r, Compile(*cmp->right()));
    return NodePtr(new CompareNode(cmp->op(), std::move(l), std::move(r)));
  }
  if (const auto* lg = dynamic_cast<const LogicExpr*>(&expr)) {
    PSE_ASSIGN_OR_RETURN(NodePtr l, Compile(*lg->left()));
    PSE_ASSIGN_OR_RETURN(NodePtr r, Compile(*lg->right()));
    return NodePtr(new LogicNode(lg->op(), std::move(l), std::move(r)));
  }
  if (const auto* nt = dynamic_cast<const NotExpr*>(&expr)) {
    PSE_ASSIGN_OR_RETURN(NodePtr c, Compile(*nt->child()));
    return NodePtr(new NotNode(std::move(c)));
  }
  if (const auto* ar = dynamic_cast<const ArithExpr*>(&expr)) {
    PSE_ASSIGN_OR_RETURN(NodePtr l, Compile(*ar->left()));
    PSE_ASSIGN_OR_RETURN(NodePtr r, Compile(*ar->right()));
    return NodePtr(new ArithNode(ar->op(), std::move(l), std::move(r)));
  }
  if (const auto* lk = dynamic_cast<const LikeExpr*>(&expr)) {
    PSE_ASSIGN_OR_RETURN(NodePtr c, Compile(*lk->child()));
    return NodePtr(new LikeNode(std::move(c), lk->pattern(), lk->negated()));
  }
  if (const auto* in = dynamic_cast<const IsNullExpr*>(&expr)) {
    PSE_ASSIGN_OR_RETURN(NodePtr c, Compile(*in->child()));
    return NodePtr(new IsNullNode(std::move(c), in->negated()));
  }
  if (const auto* il = dynamic_cast<const InListExpr*>(&expr)) {
    PSE_ASSIGN_OR_RETURN(NodePtr c, Compile(*il->child()));
    return NodePtr(new InListNode(std::move(c), il->values(), il->negated()));
  }
  return Status::Internal("vector compile: unsupported expression " + expr.ToString());
}

}  // namespace

ExprVecExecutor::ExprVecExecutor() = default;
ExprVecExecutor::ExprVecExecutor(std::unique_ptr<Node> root) : root_(std::move(root)) {}
ExprVecExecutor::ExprVecExecutor(ExprVecExecutor&&) noexcept = default;
ExprVecExecutor& ExprVecExecutor::operator=(ExprVecExecutor&&) noexcept = default;
ExprVecExecutor::~ExprVecExecutor() = default;

Result<ExprVecExecutor> ExprVecExecutor::Create(const Expr& expr) {
  PSE_ASSIGN_OR_RETURN(NodePtr root, Compile(expr));
  return ExprVecExecutor(std::move(root));
}

Status ExprVecExecutor::Eval(const TupleBatch& batch, const std::vector<Value>** out) {
  if (root_ == nullptr) return Status::Internal("Eval on an empty ExprVecExecutor");
  PSE_ASSIGN_OR_RETURN(*out, root_->Eval(batch));
  return Status::OK();
}

Status ExprVecExecutor::EvalSelect(const TupleBatch& batch, std::vector<uint32_t>* sel) {
  const std::vector<Value>* vals = nullptr;
  PSE_RETURN_NOT_OK(Eval(batch, &vals));
  sel->clear();
  const size_t n = batch.size();
  sel->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t p = batch.SelIndex(i);
    const Value& v = (*vals)[p];
    if (v.is_null()) continue;
    if (v.type() != TypeId::kBoolean) {
      return Status::InvalidArgument("predicate did not evaluate to boolean");
    }
    if (v.AsBool()) sel->push_back(static_cast<uint32_t>(p));
  }
  return Status::OK();
}

}  // namespace pse
