#include "engine/plan.h"

#include "common/string_util.h"

namespace pse {

std::string PlanNode::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad;
  switch (kind) {
    case Kind::kSeqScan:
      out += "SeqScan(" + table;
      if (scan_filter) out += ", filter=" + scan_filter->ToString();
      out += ")";
      break;
    case Kind::kIndexScan: {
      out += "IndexScan(" + table + "." + index_column + " in [";
      out += lo.has_value() ? std::to_string(*lo) : "-inf";
      out += ", ";
      out += hi.has_value() ? std::to_string(*hi) : "+inf";
      out += "]";
      if (scan_filter) out += ", filter=" + scan_filter->ToString();
      out += ")";
      break;
    }
    case Kind::kFilter:
      out += "Filter(" + (predicate ? predicate->ToString() : "true") + ")";
      break;
    case Kind::kProject: {
      std::vector<std::string> parts;
      for (const auto& p : projections) parts.push_back(p->ToString());
      out += "Project(" + Join(parts, ", ") + ")";
      break;
    }
    case Kind::kHashJoin:
      out += "HashJoin(build[" + std::to_string(left_key_pos) + "] = probe[" +
             std::to_string(right_key_pos) + "])";
      break;
    case Kind::kIndexNLJoin:
      out += "IndexNLJoin(outer[" + std::to_string(left_key_pos) + "] -> " + table + "." +
             index_column;
      if (scan_filter) out += ", filter=" + scan_filter->ToString();
      out += ")";
      break;
    case Kind::kDistinct:
      out += "Distinct(";
      if (!distinct_key_column.empty()) out += "key=" + distinct_key_column;
      out += ")";
      break;
    case Kind::kAggregate: {
      std::vector<std::string> parts;
      for (size_t g : group_by_pos) parts.push_back("g" + std::to_string(g));
      for (const auto& a : aggs) {
        parts.push_back(std::string(AggFuncToString(a.func)) + "[" + std::to_string(a.arg_pos) +
                        "]");
      }
      out += "Aggregate(" + Join(parts, ", ") + ")";
      break;
    }
    case Kind::kSort: {
      std::vector<std::string> parts;
      for (const auto& k : sort_keys) {
        parts.push_back(std::to_string(k.pos) + (k.desc ? " DESC" : ""));
      }
      out += "Sort(" + Join(parts, ", ") + ")";
      break;
    }
    case Kind::kLimit:
      out += "Limit(" + std::to_string(limit_n) + ")";
      break;
  }
  out += " -> [" + Join(output_columns, ", ") + "]\n";
  for (const auto& c : children) out += c->ToString(indent + 1);
  return out;
}

}  // namespace pse
