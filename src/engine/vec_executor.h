// Batch-at-a-time (vectorized) executors: the same physical plans the row
// engine runs, executed over TupleBatch instead of one Row per virtual
// call. Scans fill ~1024-row batches straight off heap pages (one page pin
// per page, not per tuple), filters narrow selection vectors without
// copying values, and expressions run through compiled ExprVecExecutors.
//
// Latching: the row engine's ExecutePlan holds every scanned table's shared
// latch for the whole execution. The vectorized engine instead takes the
// per-table shared latch *per batch* inside each scan — exactly the
// discipline the migration copy loop uses (and at the same `table:<name>`
// lockdep rank) — and never holds two table latches at once: joins fully
// drain or release one side before latching the other. Shared latches on
// the writer-preferring SharedMutex must never nest, so the per-batch style
// is also what makes it safe for a serve lane to run vectorized while the
// copy loop batches over the same source.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/executor.h"
#include "engine/expr_vec.h"
#include "engine/plan.h"
#include "engine/tuple_batch.h"
#include "storage/database.h"

namespace pse {

/// Per-executor output accounting, summed over the executor's lifetime.
struct VecExecutorStats {
  uint64_t batches = 0;      ///< batches produced (excluding end-of-stream)
  uint64_t output_rows = 0;  ///< live rows across those batches
};

/// \brief Pull-based batch operator.
///
/// Subclasses implement InternalNext(); the public Next() wraps it with
/// output-size stats. A produced batch may carry a selection vector;
/// consumers must index live rows through SelIndex()/EmitRows().
class VecExecutor {
 public:
  explicit VecExecutor(const ExecOptions& options) : options_(options) {}
  virtual ~VecExecutor() = default;

  /// Prepares the operator (may consume blocking inputs, e.g. sort/agg).
  virtual Status Init() = 0;

  /// Produces the next batch into `out`; returns false at end of stream.
  Result<bool> Next(TupleBatch* out) {
    PSE_ASSIGN_OR_RETURN(bool has, InternalNext(out));
    if (has) {
      ++stats_.batches;
      stats_.output_rows += out->size();
    }
    return has;
  }

  const VecExecutorStats& stats() const { return stats_; }

 protected:
  virtual Result<bool> InternalNext(TupleBatch* out) = 0;

  ExecOptions options_;

 private:
  VecExecutorStats stats_;
};

/// Builds the vectorized executor tree for a planned query.
Result<std::unique_ptr<VecExecutor>> BuildVecExecutor(const PlanNode& plan, Database* db,
                                                      const ExecOptions& options);

/// Builds, runs, and collects all output rows on the vectorized engine.
/// Row-for-row equal to the row engine's ExecutePlan (the differential
/// oracle gates this), including output order.
Result<std::vector<Row>> ExecutePlanVectorized(const PlanNode& plan, Database* db,
                                               const ExecOptions& options);

}  // namespace pse
